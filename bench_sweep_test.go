package efficsense_test

import (
	"context"
	"testing"

	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/eeg"
	"efficsense/internal/tech"
)

// BenchmarkSweepColdCS is the cold-cache sweep benchmark: a CS-family
// noise×resolution grid (one frame geometry, the Fig 7a SNR workload)
// swept through the engine with an empty memoisation cache on every
// iteration, so every point is a genuine evaluation. points/s is the
// headline throughput figure tracked across releases in BENCH_PR*.json.
func BenchmarkSweepColdCS(b *testing.B) {
	test := eeg.Synthesize(eeg.DefaultConfig(21, 2))
	ev, err := core.NewEvaluator(core.Config{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Dataset: test, Seed: 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := dse.Space{
		Architectures: []core.Architecture{core.ArchCS},
		Bits:          []int{6, 7, 8},
		LNANoise:      dse.GeomRange(2e-6, 16e-6, 4),
		M:             []int{150},
		CHold:         []float64{80e-15},
	}
	if err := space.Validate(); err != nil {
		b.Fatal(err)
	}
	pts := space.Points()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := dse.NewSweep(ev, dse.WithCache(dse.NewMemoryCache()))
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sw.Run(context.Background(), pts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Err != nil || r.TotalPower <= 0 {
				b.Fatal("bad sweep result")
			}
		}
	}
	b.ReportMetric(float64(len(pts))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}
