// Quickstart: wire up the paper's classical acquisition chain (Fig 1a),
// push one synthetic EEG record through it, and read back the three
// quantities EffiCSense couples — signal fidelity, power and area.
package main

import (
	"fmt"

	"efficsense"
)

func main() {
	// One Bonn-like EEG record (23.6 s @ 512 Hz after the paper's Step 4
	// upsampling).
	ds := efficsense.SynthesizeEEG(efficsense.DefaultEEGConfig(42, 2))
	record := ds.Records[0]
	fmt.Printf("input: %s record, %d samples @ %.0f Hz\n",
		record.Label, len(record.Samples), record.Rate)

	// The classical chain at the paper's Table III operating point:
	// 8-bit SAR, 3 µVrms LNA noise floor.
	cfg := efficsense.ChainCommon{
		Tech:     efficsense.GPDK045(),
		Sys:      efficsense.DefaultSystem(),
		Bits:     8,
		LNANoise: 3e-6,
		Seed:     42,
	}
	chain := efficsense.NewBaselineChain(cfg)
	out := chain.Run(record.Samples, record.Rate)

	fmt.Printf("output: %d samples @ %.1f Hz (LNA gain %.0f)\n",
		len(out.Samples), out.Rate, out.Gain)
	fmt.Printf("total power: %.3g W\n", out.Power.Total())
	for _, comp := range out.Power.Components() {
		fmt.Printf("  %-12s %.3g W\n", comp, out.Power[comp])
	}
	fmt.Printf("capacitor area: %.0f Cu,min\n", out.AreaCaps)

	// Fidelity against the band-limited ideal acquisition.
	ref := efficsense.ChainReference(cfg, record.Samples, record.Rate)
	n := min(len(ref), len(out.Samples))
	fmt.Printf("SNR vs reference: %.1f dB\n",
		efficsense.SNRVersusReference(ref[:n], out.Samples[:n]))
}
