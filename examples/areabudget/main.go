// Area-budgeted pathfinding (the paper's Fig 9/10 story): the CS
// architecture buys its power saving with a large capacitor array, so the
// optimal architecture flips with the silicon budget. This example sweeps
// a small design space and picks the best design under successively
// tighter capacitance caps.
package main

import (
	"context"
	"fmt"

	"efficsense"
)

func main() {
	train := efficsense.SynthesizeEEG(efficsense.DefaultEEGConfig(2001, 80))
	det := efficsense.TrainDetector(train, efficsense.DetectorConfig{
		Seed:  2,
		Train: efficsense.TrainOptions{Epochs: 120},
	})
	test := efficsense.SynthesizeEEG(efficsense.DefaultEEGConfig(2, 16))
	ev, err := efficsense.NewEvaluator(efficsense.EvaluatorConfig{
		Tech:     efficsense.GPDK045(),
		Sys:      efficsense.DefaultSystem(),
		Dataset:  test,
		Detector: det,
		Seed:     2,
	})
	if err != nil {
		panic(err)
	}

	// A reduced Table III grid.
	space := efficsense.Space{
		Architectures: []efficsense.Architecture{efficsense.ArchBaseline, efficsense.ArchCS},
		Bits:          []int{6, 8},
		LNANoise:      []float64{2e-6, 6e-6},
		M:             []int{75, 150},
	}
	if err := space.Validate(); err != nil {
		panic(err)
	}
	// The engine memoises per point: re-querying the same grid under a
	// different constraint (the Fig 9/10 workflow) reuses every result.
	sweep, err := efficsense.NewSweep(ev, efficsense.WithCache(efficsense.NewMemoryCache()))
	if err != nil {
		panic(err)
	}
	results, err := sweep.Run(context.Background(), space.Points())
	if err != nil {
		panic(err)
	}

	fmt.Println("area cap (Cu,min)   best design under accuracy >= 0.95")
	for _, areaCap := range []float64{400, 2000, 16000} {
		var kept []efficsense.Result
		for _, r := range results {
			if r.AreaCaps <= areaCap {
				kept = append(kept, r)
			}
		}
		if best, ok := efficsense.Optimum(kept, efficsense.QualityAccuracy, 0.95); ok {
			fmt.Printf("%17.0f   %s — %.3f accuracy, %.3g W, %.0f Cu\n",
				areaCap, best.Point, best.Accuracy, best.TotalPower, best.AreaCaps)
		} else {
			fmt.Printf("%17.0f   (no design meets the constraint)\n", areaCap)
		}
	}
	fmt.Println("\nTight budgets force the classical chain; once the encoder array")
	fmt.Println("fits, the CS system wins on power — the paper's Fig 10 conclusion.")
}
