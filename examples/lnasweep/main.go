// LNA-noise sweep (the paper's Fig 4 workflow): drive the baseline system
// with a sine and sweep the LNA's input-referred noise floor from 1 to
// 20 µVrms, printing SNDR, ENOB and the power split at each point. The
// characteristic trade-off appears immediately: below a few µV the SNDR
// saturates at the quantiser limit while the LNA's noise-limited supply
// current explodes as 1/vn².
package main

import (
	"fmt"

	"efficsense"
)

func main() {
	cfg := efficsense.EvaluatorConfig{
		Tech: efficsense.GPDK045(),
		Sys:  efficsense.DefaultSystem(),
		Seed: 7,
	}
	fmt.Println("vn (µVrms)  SNDR (dB)   ENOB   P total (µW)   P LNA (µW)   P TX (µW)")
	for _, vn := range []float64{1e-6, 1.7e-6, 3e-6, 5e-6, 8.5e-6, 14e-6, 20e-6} {
		point := efficsense.DesignPoint{
			Arch:     efficsense.ArchBaseline,
			Bits:     8,
			LNANoise: vn,
		}
		r := efficsense.EvaluateSine(cfg, point, 0, 15)
		fmt.Printf("%9.1f  %9.1f  %5.2f  %13.3f  %11.3f  %10.3f\n",
			vn*1e6, r.SNDRdB, r.ENOB,
			r.TotalPower*1e6,
			r.Power["LNA"]*1e6,
			r.Power["Transmitter"]*1e6)
	}
	fmt.Println("\nNote how power is noise-limited on the left (1/vn² LNA current)")
	fmt.Println("and transmitter-limited on the right — the paper's Fig 4 story.")
}
