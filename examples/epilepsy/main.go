// Epilepsy-detection pathfinding (the paper's Section IV headline): train
// the seizure detector, then compare the classical front-end with the
// passive charge-sharing compressive-sensing front-end at their respective
// operating points, reproducing the power/accuracy/area trade the paper
// reports (baseline 98.1 % @ 8.8 µW vs CS 99.3 % @ 2.44 µW, 3.6×).
package main

import (
	"fmt"

	"efficsense"
)

func main() {
	// Synthesize the Bonn-substitute dataset and train the detector (the
	// stand-in for the paper's pre-trained network [20]).
	fmt.Println("training seizure detector...")
	train := efficsense.SynthesizeEEG(efficsense.DefaultEEGConfig(1001, 120))
	det := efficsense.TrainDetector(train, efficsense.DetectorConfig{
		Seed:  1,
		Train: efficsense.TrainOptions{Epochs: 150},
	})

	test := efficsense.SynthesizeEEG(efficsense.DefaultEEGConfig(1, 24))
	ev, err := efficsense.NewEvaluator(efficsense.EvaluatorConfig{
		Tech:     efficsense.GPDK045(),
		Sys:      efficsense.DefaultSystem(),
		Dataset:  test,
		Detector: det,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}

	// Two candidate operating points: the baseline needs a quiet LNA; the
	// CS system tolerates a higher noise floor and transmits 2.56× less.
	points := []efficsense.DesignPoint{
		{Arch: efficsense.ArchBaseline, Bits: 8, LNANoise: 2e-6},
		{Arch: efficsense.ArchBaseline, Bits: 8, LNANoise: 6e-6},
		{Arch: efficsense.ArchCS, Bits: 8, LNANoise: 6e-6, M: 150},
		{Arch: efficsense.ArchCS, Bits: 8, LNANoise: 6e-6, M: 75},
	}
	fmt.Println("\npoint                                accuracy  SNR (dB)  power (µW)  area (Cu)")
	var results []efficsense.Result
	for _, p := range points {
		r := ev.Evaluate(p)
		results = append(results, r)
		fmt.Printf("%-36s %8.3f %9.1f %11.3f %10.0f\n",
			p.String(), r.Accuracy, r.MeanSNRdB, r.TotalPower*1e6, r.AreaCaps)
	}

	// The paper's selection rule: minimum power subject to accuracy ≥ 98 %.
	if best, ok := efficsense.Optimum(results, efficsense.QualityAccuracy, 0.98); ok {
		fmt.Printf("\noptimum under accuracy >= 0.98: %s at %.3g W\n",
			best.Point, best.TotalPower)
		fmt.Println("power breakdown:")
		for _, comp := range best.Power.Components() {
			fmt.Printf("  %-12s %.3g W\n", comp, best.Power[comp])
		}
	} else {
		fmt.Println("\nno point met the accuracy constraint — enlarge the search space")
	}
}
