GO ?= go

.PHONY: build test race bench verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# verify is the tier-1 gate: formatting, vet, build, the full test
# suite under the race detector, and a short fuzz smoke over the
# streaming report emitters.
verify: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -fuzz FuzzNDJSONRow -fuzztime 10s ./internal/report
