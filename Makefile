GO ?= go

.PHONY: build test race bench benchdiff chaos cluster-accept search-accept wal-fuzz verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes a machine-readable baseline (BENCH_PR10.json, ignored by
# git) for the hot paths: the obs histogram, the sweep engine, the HTTP
# serving stack, and the headline cold-sweep throughput benchmark
# (BenchmarkSweepColdCS, points/s). -count=6 gives benchstat enough
# samples to call a regression; the target is informational, not a gate.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=6 -json \
		./internal/obs ./internal/dse ./internal/serve > BENCH_PR10.json
	$(GO) test -run '^$$' -bench 'SweepColdCS' -benchmem -count=6 -json \
		. >> BENCH_PR10.json
	@echo "wrote BENCH_PR10.json"

# benchdiff prints a per-benchmark delta table between the release
# baselines and the capture `make bench` just wrote — points/s, ns/op
# and allocs/op side by side, each diffed against the best historical
# mean so an old regression cannot hide a further slide. Informational
# only: it never fails the build (a missing baseline is reported and
# skipped), it exists so the batch-dispatch throughput claim stays
# visible release over release.
benchdiff:
	$(GO) run ./cmd/benchdiff BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR10.json

# chaos runs the fault-injection acceptance suites — seeded schedules
# through the failpoint registry, the engine's retry path, the cache's
# singleflight, the full HTTP stack and the kill-and-restart-mid-sweep
# durability scenario (resumed fronts must be bit-identical to an
# uninterrupted run) — under the race detector. Deterministic by
# construction (every schedule is seeded), so it gates CI like any
# other test.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Retry|Inject' \
		./internal/fault ./internal/cache ./internal/cluster ./internal/dse ./internal/serve

# cluster-accept is the fleet-mode acceptance gate, race-enabled and
# deterministic: the full internal/cluster suite (ring placement, wire
# protocol, peer client, membership), plus the serve-layer fleet tests —
# a three-node fleet evaluating each design point exactly once for the
# same sweep submitted to two nodes, a peer killed mid-sweep degrading
# to local compute without a partial result, a restarted peer rejoining
# on a new address without double-evaluating journaled work, and
# single-node mode left bit-identical to a fleet of none.
cluster-accept:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -race -count=1 -run 'TestCluster|TestChaosCluster|TestJobNode' ./internal/serve

# search-accept is the adaptive-search acceptance gate: the budgeted
# search must recover >= 95 % of the exhaustive Pareto front while
# spending <= 10 % of its evaluations, deterministically. The
# search-vs-exhaustive comparison table lands in SEARCH_ACCEPT.txt
# (ignored by git; CI uploads it as a build artifact).
search-accept:
	SEARCH_ACCEPT_OUT=$(CURDIR)/SEARCH_ACCEPT.txt \
		$(GO) test -count=1 -run 'TestSearchAcceptance' ./internal/search
	@echo "wrote SEARCH_ACCEPT.txt"

# wal-fuzz is a short fuzz smoke over the journal's record decoder: any
# byte string must either decode to a record that re-encodes exactly or
# fail cleanly — never panic, never accept a corrupted line. Recovery
# feeds the decoder whatever a crashed process left on disk, so this is
# the durability path's input-hardening gate.
wal-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeRecord -fuzztime 10s ./internal/wal

# verify is the tier-1 gate: formatting, vet, build, the full test
# suite under the race detector with shuffled execution order (hidden
# inter-test dependencies fail loudly), and short fuzz smokes over the
# streaming report emitters, the search query parser and the scenario
# name validator (a wire-facing parser like the rest).
verify: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...
	$(GO) test -run '^$$' -fuzz FuzzNDJSONRow -fuzztime 10s ./internal/report
	$(GO) test -run '^$$' -fuzz FuzzParseGoal -fuzztime 10s ./internal/search
	$(GO) test -run '^$$' -fuzz FuzzDecodeRecord -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzParseScenarioName -fuzztime 10s ./internal/scenario
	$(GO) test -run '^$$' -fuzz FuzzDecodePeerRequest -fuzztime 10s ./internal/cluster
