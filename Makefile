GO ?= go

.PHONY: build test race bench verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# verify is the tier-1 gate: formatting, vet, build, and the full test
# suite under the race detector.
verify: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
