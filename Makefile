GO ?= go

.PHONY: build test race bench benchdiff chaos verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes a machine-readable baseline (BENCH_PR6.json, ignored by
# git) for the hot paths: the obs histogram, the sweep engine, the HTTP
# serving stack, and the headline cold-sweep throughput benchmark
# (BenchmarkSweepColdCS, points/s). -count=6 gives benchstat enough
# samples to call a regression; the target is informational, not a gate.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=6 -json \
		./internal/obs ./internal/dse ./internal/serve > BENCH_PR6.json
	$(GO) test -run '^$$' -bench 'SweepColdCS' -benchmem -count=6 -json \
		. >> BENCH_PR6.json
	@echo "wrote BENCH_PR6.json"

# benchdiff prints a per-benchmark delta table between the previous
# release's baseline and the one `make bench` just wrote — points/s,
# ns/op and allocs/op side by side. Informational only: it never fails
# the build (a missing baseline is reported and skipped), it exists so
# the batch-dispatch throughput claim stays visible release over
# release.
benchdiff:
	$(GO) run ./cmd/benchdiff BENCH_PR5.json BENCH_PR6.json

# chaos runs the fault-injection acceptance suites — seeded schedules
# through the failpoint registry, the engine's retry path, the cache's
# singleflight and the full HTTP stack — under the race detector.
# Deterministic by construction (every schedule is seeded), so it gates
# CI like any other test.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Retry|Inject' \
		./internal/fault ./internal/cache ./internal/dse ./internal/serve

# verify is the tier-1 gate: formatting, vet, build, the full test
# suite under the race detector with shuffled execution order (hidden
# inter-test dependencies fail loudly), and a short fuzz smoke over the
# streaming report emitters.
verify: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...
	$(GO) test -run '^$$' -fuzz FuzzNDJSONRow -fuzztime 10s ./internal/report
