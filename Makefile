GO ?= go

.PHONY: build test race bench verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes a machine-readable baseline (BENCH_PR4.json, ignored by
# git) for the hot paths: the obs histogram, the sweep engine, and the
# HTTP serving stack. -count=6 gives benchstat enough samples to call a
# regression; the target is informational, not a gate.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=6 -json \
		./internal/obs ./internal/dse ./internal/serve > BENCH_PR4.json
	@echo "wrote BENCH_PR4.json"

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# verify is the tier-1 gate: formatting, vet, build, the full test
# suite under the race detector, and a short fuzz smoke over the
# streaming report emitters.
verify: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -fuzz FuzzNDJSONRow -fuzztime 10s ./internal/report
