package efficsense_test

import (
	"context"
	"math"
	"testing"

	"efficsense"
)

func TestFacadeTechDefaults(t *testing.T) {
	tp := efficsense.GPDK045()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	sys := efficsense.DefaultSystem()
	if math.Abs(sys.FSample()-537.6) > 1e-9 {
		t.Fatalf("FSample = %g", sys.FSample())
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The README quickstart path: synthesize data, train, evaluate one
	// point of each architecture through the public surface only.
	ds := efficsense.SynthesizeEEG(efficsense.DefaultEEGConfig(1, 16))
	train, test := ds.Split(0.25)
	det := efficsense.TrainDetector(train, efficsense.DetectorConfig{
		Seed:  1,
		Train: efficsense.TrainOptions{Epochs: 60},
	})
	ev, err := efficsense.NewEvaluator(efficsense.EvaluatorConfig{
		Tech:     efficsense.GPDK045(),
		Sys:      efficsense.DefaultSystem(),
		Dataset:  test,
		Detector: det,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := ev.Evaluate(efficsense.DesignPoint{
		Arch: efficsense.ArchBaseline, Bits: 8, LNANoise: 2e-6,
	})
	cs := ev.Evaluate(efficsense.DesignPoint{
		Arch: efficsense.ArchCS, Bits: 8, LNANoise: 6e-6, M: 150,
	})
	if base.TotalPower <= cs.TotalPower {
		t.Fatalf("baseline power %g should exceed CS %g at these points",
			base.TotalPower, cs.TotalPower)
	}
	front := efficsense.ParetoFront([]efficsense.Result{base, cs}, efficsense.QualityAccuracy)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	if _, ok := efficsense.Optimum([]efficsense.Result{base, cs}, efficsense.QualityAccuracy, 2); ok {
		t.Fatal("impossible optimum accepted")
	}
}

func TestFacadeChains(t *testing.T) {
	cfg := efficsense.ChainCommon{
		Tech:     efficsense.GPDK045(),
		Sys:      efficsense.DefaultSystem(),
		Bits:     8,
		LNANoise: 5e-6,
		Seed:     2,
	}
	in := make([]float64, 4096)
	for i := range in {
		in[i] = 50e-6 * math.Sin(2*math.Pi*11*float64(i)/512)
	}
	out := efficsense.NewBaselineChain(cfg).Run(in, 512)
	if len(out.Samples) == 0 || out.Power.Total() <= 0 {
		t.Fatal("baseline chain produced nothing")
	}
	ref := efficsense.ChainReference(cfg, in, 512)
	if len(ref) == 0 {
		t.Fatal("empty reference")
	}
	csOut := efficsense.NewCSChain(efficsense.CSChainConfig{Common: cfg, M: 96, NPhi: 192}).Run(in, 512)
	if len(csOut.Samples) == 0 {
		t.Fatal("CS chain produced nothing")
	}
}

// facadeSearchEval is a closed-form evaluator for exercising the search
// surface through the facade without the full pipeline cost.
type facadeSearchEval struct{ points int }

func (e *facadeSearchEval) EvaluateBatch(_ context.Context, pts []efficsense.DesignPoint) []efficsense.Result {
	rs := make([]efficsense.Result, len(pts))
	for i, p := range pts {
		e.points++
		rs[i] = efficsense.Result{
			Point:      p,
			MeanSNRdB:  3 * float64(p.Bits),
			Accuracy:   0.9,
			TotalPower: p.LNANoise * 1e3 * float64(p.Bits),
			AreaCaps:   64 * float64(p.Bits),
		}
	}
	return rs
}

func TestFacadeSearch(t *testing.T) {
	spec, err := efficsense.ParseSearchQuery("max-snr")
	if err != nil {
		t.Fatal(err)
	}
	spec.MaxEvaluations = 40
	space := efficsense.PaperSpace(4)
	ev := &facadeSearchEval{}
	out, err := efficsense.RunSearch(context.Background(), efficsense.SearchConfig{
		Space:      space,
		Spec:       spec,
		Fidelities: []efficsense.SearchFidelity{{Name: "full", Eval: ev}},
		Strategy:   efficsense.NewHalvingStrategy(space, spec, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Partial || out.Errors != 0 {
		t.Fatalf("partial=%v errors=%d", out.Partial, out.Errors)
	}
	if !out.HaveBest || out.Best.MeanSNRdB != 24 { // 8-bit designs dominate SNR
		t.Fatalf("best = %+v (have=%v)", out.Best, out.HaveBest)
	}
	if out.Evaluations != ev.points || out.Evaluations > spec.MaxEvaluations {
		t.Fatalf("evaluations %d (dispatched %d, budget %d)",
			out.Evaluations, ev.points, spec.MaxEvaluations)
	}
	if len(out.Front) == 0 || out.Evaluations >= space.Size() {
		t.Fatalf("front %d points at %d/%d evaluations",
			len(out.Front), out.Evaluations, space.Size())
	}
}

func TestFacadeSineAndSpace(t *testing.T) {
	r := efficsense.EvaluateSine(efficsense.EvaluatorConfig{
		Tech: efficsense.GPDK045(), Sys: efficsense.DefaultSystem(), Seed: 3,
	}, efficsense.DesignPoint{Arch: efficsense.ArchBaseline, Bits: 8, LNANoise: 2e-6}, 0, 5)
	if r.SNDRdB < 20 {
		t.Fatalf("SNDR = %g", r.SNDRdB)
	}
	space := efficsense.PaperSpace(4)
	if space.Size() != 3*4+3*4*3 {
		t.Fatalf("space size %d", space.Size())
	}
}
