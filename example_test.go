package efficsense_test

import (
	"fmt"

	"efficsense"
	"efficsense/internal/units"
)

// ExampleGPDK045 shows the Table III technology constants and one derived
// quantity (the mismatch of an 80 fF hold capacitor).
func ExampleGPDK045() {
	tp := efficsense.GPDK045()
	fmt.Println(units.Format(tp.CLogic, "F"))
	fmt.Println(units.Format(tp.EBit, "J"))
	fmt.Printf("%.2e\n", tp.MismatchSigma(80e-15))
	// Output:
	// 1fF
	// 1nJ
	// 4.46e-13
}

// ExampleDefaultSystem derives the paper's clocking from the Table III
// application constants.
func ExampleDefaultSystem() {
	sys := efficsense.DefaultSystem()
	fmt.Printf("f_sample = %.1f Hz\n", sys.FSample())
	fmt.Printf("f_clk(8 bit) = %.1f Hz\n", sys.FClk(8))
	fmt.Printf("BW_LNA = %.0f Hz\n", sys.LNABandwidth())
	// Output:
	// f_sample = 537.6 Hz
	// f_clk(8 bit) = 4838.4 Hz
	// BW_LNA = 768 Hz
}

// ExampleParetoFront extracts the non-dominated designs from a result
// cloud under the accuracy goal function (paper Step 5).
func ExampleParetoFront() {
	cloud := []efficsense.Result{
		{Point: efficsense.DesignPoint{Arch: efficsense.ArchBaseline, Bits: 8}, Accuracy: 0.99, TotalPower: 8.8e-6},
		{Point: efficsense.DesignPoint{Arch: efficsense.ArchCS, Bits: 8, M: 150}, Accuracy: 0.993, TotalPower: 2.44e-6},
		{Point: efficsense.DesignPoint{Arch: efficsense.ArchBaseline, Bits: 6}, Accuracy: 0.90, TotalPower: 5e-6}, // dominated
	}
	for _, r := range efficsense.ParetoFront(cloud, efficsense.QualityAccuracy) {
		fmt.Printf("%s: %.3f @ %s\n", r.Point.Arch, r.Accuracy, units.Format(r.TotalPower, "W"))
	}
	// Output:
	// cs: 0.993 @ 2.44µW
}

// ExampleOptimum applies the paper's selection rule: minimum power subject
// to the application accuracy constraint.
func ExampleOptimum() {
	cloud := []efficsense.Result{
		{Point: efficsense.DesignPoint{Arch: efficsense.ArchBaseline}, Accuracy: 0.981, TotalPower: 8.8e-6},
		{Point: efficsense.DesignPoint{Arch: efficsense.ArchCS, M: 150}, Accuracy: 0.993, TotalPower: 2.44e-6},
		{Point: efficsense.DesignPoint{Arch: efficsense.ArchCS, M: 75}, Accuracy: 0.93, TotalPower: 1.6e-6},
	}
	best, ok := efficsense.Optimum(cloud, efficsense.QualityAccuracy, 0.98)
	fmt.Println(ok, units.Format(best.TotalPower, "W"))
	// Output:
	// true 2.44µW
}
