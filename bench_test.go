// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus component-level and ablation benches. Each
// figure bench regenerates its data end to end at a reduced, documented
// scale (the CLI regenerates them at arbitrary scale); custom metrics
// report the headline quantities next to the timing so `go test -bench`
// output doubles as a miniature results table.
package efficsense_test

import (
	"context"
	"math"
	"testing"
	"time"

	"efficsense"
	"efficsense/internal/chain"
	"efficsense/internal/classify"
	"efficsense/internal/core"
	"efficsense/internal/cs"
	"efficsense/internal/dse"
	"efficsense/internal/dsp"
	"efficsense/internal/eeg"
	"efficsense/internal/power"
	"efficsense/internal/tech"
)

// benchSuiteOptions is the reduced scale used by the figure benches: big
// enough to exercise every code path, small enough for -bench=. runs.
func benchSuiteOptions(seed int64) efficsense.SuiteOptions {
	return efficsense.SuiteOptions{
		Seed:         seed,
		Records:      4,
		TrainRecords: 40,
		NoiseSteps:   3,
		Epochs:       40,
	}
}

// BenchmarkTableIIPowerModels evaluates every Table II closed form.
func BenchmarkTableIIPowerModels(b *testing.B) {
	tp := tech.GPDK045()
	sys := tech.DefaultSystem()
	fclk, fs := sys.FClk(8), sys.FSample()
	d := power.LNAParams{GBW: 1e6, CLoad: 80e-15, NoiseRMS: 3e-6, Bandwidth: 768, FClk: fclk}
	var sink float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += power.LNA(tp, sys, d)
		sink += power.SampleHold(tp, sys, 8, fclk)
		sink += power.Comparator(tp, sys, 8, fclk, fs, 0)
		sink += power.SARLogic(tp, sys, 8, fclk, fs)
		sink += power.DAC(sys, 8, fclk, tp.CUnitMin, 0.5, 0)
		sink += power.Transmitter(tp, 8, fclk)
		sink += power.CSEncoderLogic(tp, sys, 384, fclk)
	}
	if sink == 0 {
		b.Fatal("power models returned zero")
	}
}

// BenchmarkTableIIITechnology exercises parameter validation and the
// derived quantities (mismatch law, areas) of the Table III parameter set.
func BenchmarkTableIIITechnology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tp := tech.GPDK045()
		if err := tp.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = tp.MismatchSigma(80e-15)
		_ = tp.CapArea(12e-12)
		sys := tech.DefaultSystem()
		if err := sys.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = sys.FClk(8)
	}
}

// BenchmarkFig4LNASweep regenerates the Fig 4 noise sweep (baseline
// system, sine stimulus) and reports the SNDR span it produces.
func BenchmarkFig4LNASweep(b *testing.B) {
	var span float64
	for i := 0; i < b.N; i++ {
		s := efficsense.NewSuite(benchSuiteOptions(1))
		pts := s.Fig4(8)
		span = pts[0].SNDRdB - pts[len(pts)-1].SNDRdB
	}
	b.ReportMetric(span, "sndr_span_db")
}

// BenchmarkFig7aSNRPareto regenerates the SNR-goal Pareto fronts.
func BenchmarkFig7aSNRPareto(b *testing.B) {
	var frontPts float64
	for i := 0; i < b.N; i++ {
		s := efficsense.NewSuite(benchSuiteOptions(2))
		f := s.Fig7a()
		frontPts = float64(len(f.Baseline) + len(f.CS))
	}
	b.ReportMetric(frontPts, "front_points")
}

// BenchmarkFig7bAccuracyPareto regenerates the accuracy-goal fronts and
// reports the measured CS power saving (paper headline: 3.6×).
func BenchmarkFig7bAccuracyPareto(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		s := efficsense.NewSuite(benchSuiteOptions(3))
		f := s.Fig7b()
		saving = f.PowerSavingsX
	}
	b.ReportMetric(saving, "power_saving_x")
}

// BenchmarkFig8Breakdown regenerates the optimal-point power breakdowns
// and reports the CS optimum's total power in µW (paper: 2.44 µW).
func BenchmarkFig8Breakdown(b *testing.B) {
	var csPower float64
	for i := 0; i < b.N; i++ {
		s := efficsense.NewSuite(benchSuiteOptions(4))
		_, cs, ok := s.Fig8()
		if ok {
			csPower = cs.TotalPower * 1e6
		}
	}
	b.ReportMetric(csPower, "cs_opt_uW")
}

// BenchmarkFig9AreaCloud regenerates the accuracy-vs-area cloud and
// reports the CS/baseline area ratio it exhibits.
func BenchmarkFig9AreaCloud(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		s := efficsense.NewSuite(benchSuiteOptions(5))
		pts := s.Fig9()
		minCS, maxBase := math.Inf(1), 0.0
		for _, p := range pts {
			if p.Arch == efficsense.ArchCS && p.AreaCaps < minCS {
				minCS = p.AreaCaps
			}
			if p.Arch == efficsense.ArchBaseline && p.AreaCaps > maxBase {
				maxBase = p.AreaCaps
			}
		}
		ratio = minCS / maxBase
	}
	b.ReportMetric(ratio, "area_ratio")
}

// BenchmarkFig10Constrained regenerates the area-constrained fronts and
// reports the accuracy forfeited by the tightest cap.
func BenchmarkFig10Constrained(b *testing.B) {
	var forfeit float64
	for i := 0; i < b.N; i++ {
		s := efficsense.NewSuite(benchSuiteOptions(6))
		fronts := s.Fig10(nil)
		forfeit = fronts[len(fronts)-1].BestAccuracy - fronts[0].BestAccuracy
	}
	b.ReportMetric(forfeit, "accuracy_forfeit")
}

// --- Component benches -------------------------------------------------

// BenchmarkEEGRecordSynthesis measures one Bonn-like record (including
// the Step 4 upsampling).
func BenchmarkEEGRecordSynthesis(b *testing.B) {
	cfg := eeg.DefaultConfig(7, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		ds := eeg.Synthesize(cfg)
		if len(ds.Records) != 2 {
			b.Fatal("bad dataset")
		}
	}
}

var benchRecord = func() eeg.Record {
	return eeg.Synthesize(eeg.DefaultConfig(8, 2)).Records[1]
}()

// BenchmarkBaselineChainRecord runs one EEG record through the classical
// chain.
func BenchmarkBaselineChainRecord(b *testing.B) {
	c := chain.NewBaseline(chain.Common{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Bits: 8, LNANoise: 3e-6, Seed: 8,
	})
	// 2150.4 Hz is the default simulation grid (4 × f_sample).
	grid := dsp.Resample(benchRecord.Samples, benchRecord.Rate, 2150.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := c.RunGrid(grid)
		if len(out.Samples) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkCSChainRecord runs one EEG record through the full
// compressive-sensing chain including OMP reconstruction.
func BenchmarkCSChainRecord(b *testing.B) {
	c := chain.NewCS(chain.CSConfig{
		Common: chain.Common{
			Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Bits: 8, LNANoise: 6e-6, Seed: 9,
		},
		M: 150,
	})
	grid := dsp.Resample(benchRecord.Samples, benchRecord.Rate, 2150.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := c.RunGrid(grid)
		if len(out.Samples) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkDetectorTraining measures detector training at a reduced size.
func BenchmarkDetectorTraining(b *testing.B) {
	train := eeg.Synthesize(eeg.DefaultConfig(10, 20))
	for i := 0; i < b.N; i++ {
		det := classify.TrainDetector(train, classify.DetectorConfig{
			Seed: int64(i), Train: classify.TrainOptions{Epochs: 30},
		})
		if det == nil {
			b.Fatal("nil detector")
		}
	}
}

// BenchmarkDetectorInference measures one record classification.
func BenchmarkDetectorInference(b *testing.B) {
	train := eeg.Synthesize(eeg.DefaultConfig(11, 20))
	det := classify.TrainDetector(train, classify.DetectorConfig{
		Seed: 11, Train: classify.TrainOptions{Epochs: 30},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Classify(benchRecord.Samples, benchRecord.Rate)
	}
}

// BenchmarkSweepCacheReuse measures the payoff of the sweep engine's
// memoisation cache: a cold Fig 7-style grid sweep, then the same grid
// re-queried for the Fig 9/10-style constrained searches through a second
// engine sharing the cache (the fingerprint keying makes the reuse safe).
// cache_speedup_x reports warm vs cold; the engine makes it ≥ 5×.
func BenchmarkSweepCacheReuse(b *testing.B) {
	s := efficsense.NewSuite(benchSuiteOptions(19))
	ev := s.Evaluator()
	space := dse.Space{
		Architectures: []core.Architecture{core.ArchBaseline, core.ArchCS},
		Bits:          []int{7, 8},
		LNANoise:      dse.GeomRange(2e-6, 12e-6, 2),
		M:             []int{150},
		CHold:         []float64{80e-15},
	}
	if err := space.Validate(); err != nil {
		b.Fatal(err)
	}
	pts := space.Points()
	var speedup float64
	for i := 0; i < b.N; i++ {
		cache := efficsense.NewMemoryCache()
		cold, err := efficsense.NewSweep(ev, efficsense.WithCache(cache))
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if _, err := cold.Run(context.Background(), pts); err != nil {
			b.Fatal(err)
		}
		coldDur := time.Since(t0)

		// A fresh engine over the same evaluator and cache: every point is
		// served from memory, so the constrained queries are nearly free.
		warm, err := efficsense.NewSweep(ev, efficsense.WithCache(cache))
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		rs, err := warm.Run(context.Background(), pts)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := dse.Optimum(dse.FilterArea(rs, 5000), dse.QualityAccuracy, 0); !ok {
			b.Fatal("constrained query found no optimum")
		}
		warmDur := time.Since(t1)
		if hits := warm.Metrics().CacheHits; hits != int64(len(pts)) {
			b.Fatalf("warm sweep hit cache %d/%d times", hits, len(pts))
		}
		speedup = float64(coldDur) / float64(warmDur)
		if speedup < 5 {
			b.Fatalf("cache speedup %.1fx < 5x (cold %v, warm %v)", speedup, coldDur, warmDur)
		}
	}
	b.ReportMetric(speedup, "cache_speedup_x")
}

// BenchmarkDesignPointEvaluation measures one full CS design-point
// evaluation (the unit of work of every sweep).
func BenchmarkDesignPointEvaluation(b *testing.B) {
	s := efficsense.NewSuite(benchSuiteOptions(12))
	ev := s.Evaluator()
	p := efficsense.DesignPoint{Arch: efficsense.ArchCS, Bits: 8, LNANoise: 6e-6, M: 150}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ev.Evaluate(p)
		if r.TotalPower <= 0 {
			b.Fatal("bad result")
		}
	}
}

// --- Ablation benches ----------------------------------------------------
// DESIGN.md calls out three modelling choices; each ablation reports the
// quality it costs or buys, so `-bench Ablation` quantifies the design.

// BenchmarkAblationLeakageDroop enables hold-capacitor droop at the
// Table III leakage current — the paper carries leakage only in the power
// model; this shows why (droop at 1 pA on fF holds destroys the frame).
func BenchmarkAblationLeakageDroop(b *testing.B) {
	grid := dsp.Resample(benchRecord.Samples, benchRecord.Rate, 2150.4)
	common := chain.Common{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Bits: 8, LNANoise: 3e-6, Seed: 13,
	}
	ref := chain.ReferenceGrid(common, grid)
	var snrOn, snrOff float64
	for i := 0; i < b.N; i++ {
		for _, leak := range []bool{false, true} {
			c := chain.NewCS(chain.CSConfig{Common: common, M: 150, ModelLeakage: leak})
			out := c.RunGrid(grid)
			n := min(len(ref), len(out.Samples))
			snr := dsp.SNRVersusReference(ref[:n], out.Samples[:n])
			if leak {
				snrOn = snr
			} else {
				snrOff = snr
			}
		}
	}
	b.ReportMetric(snrOff, "snr_db_no_droop")
	b.ReportMetric(snrOn, "snr_db_droop")
}

// BenchmarkAblationNoiseAugment compares a detector trained on clean
// records only against the default noise-augmented training, evaluated on
// a noisy baseline chain. Augmentation is what keeps the accuracy goal
// function meaningful across the Table III noise sweep.
func BenchmarkAblationNoiseAugment(b *testing.B) {
	var accAug, accClean float64
	for i := 0; i < b.N; i++ {
		for _, aug := range [][]float64{nil, {0}} {
			train := eeg.Synthesize(eeg.DefaultConfig(1014, 60))
			det := classify.TrainDetector(train, classify.DetectorConfig{
				Seed: 14, AugmentNoise: aug, Train: classify.TrainOptions{Epochs: 60},
			})
			test := eeg.Synthesize(eeg.DefaultConfig(14, 16))
			ev, err := core.NewEvaluator(core.Config{
				Tech: tech.GPDK045(), Sys: tech.DefaultSystem(),
				Dataset: test, Detector: det, Seed: 14,
			})
			if err != nil {
				b.Fatal(err)
			}
			r := ev.Evaluate(core.DesignPoint{Arch: core.ArchBaseline, Bits: 8, LNANoise: 10e-6})
			if aug == nil {
				accAug = r.Accuracy
			} else {
				accClean = r.Accuracy
			}
		}
	}
	b.ReportMetric(accAug, "acc_noise_aug")
	b.ReportMetric(accClean, "acc_clean_trained")
}

// BenchmarkAblationAtomBudget sweeps the OMP atom budget and reports the
// reconstruction SNR at the two extremes.
func BenchmarkAblationAtomBudget(b *testing.B) {
	grid := dsp.Resample(benchRecord.Samples, benchRecord.Rate, 2150.4)
	common := chain.Common{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Bits: 8, LNANoise: 3e-6, Seed: 15,
	}
	ref := chain.ReferenceGrid(common, grid)
	var snr8, snr64 float64
	for i := 0; i < b.N; i++ {
		for _, atoms := range []int{8, 64} {
			c := chain.NewCS(chain.CSConfig{Common: common, M: 150, MaxAtoms: atoms})
			out := c.RunGrid(grid)
			n := min(len(ref), len(out.Samples))
			snr := dsp.SNRVersusReference(ref[:n], out.Samples[:n])
			if atoms == 8 {
				snr8 = snr
			} else {
				snr64 = snr
			}
		}
	}
	b.ReportMetric(snr8, "snr_db_8_atoms")
	b.ReportMetric(snr64, "snr_db_64_atoms")
}

// BenchmarkVariantsComparison evaluates all four architectures at a
// matched operating point (the Section III digital/active/passive study)
// and reports the passive chain's advantage over the active one.
func BenchmarkVariantsComparison(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		s := efficsense.NewSuite(benchSuiteOptions(16))
		v := s.Variants(8, 6e-6, 150)
		var passive, active float64
		for _, r := range v.Points {
			switch r.Point.Arch {
			case efficsense.ArchCS:
				passive = r.TotalPower
			case efficsense.ArchCSActive:
				active = r.TotalPower
			}
		}
		if passive > 0 {
			advantage = active / passive
		}
	}
	b.ReportMetric(advantage, "passive_vs_active_x")
}

// BenchmarkAblationReconMethod compares the three reconstruction
// algorithms on the same encoded record and reports each one's SNR.
func BenchmarkAblationReconMethod(b *testing.B) {
	grid := dsp.Resample(benchRecord.Samples, benchRecord.Rate, 2150.4)
	common := chain.Common{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Bits: 8, LNANoise: 3e-6, Seed: 17,
	}
	ref := chain.ReferenceGrid(common, grid)
	snrs := map[cs.Method]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range []cs.Method{cs.MethodOMP, cs.MethodIHT, cs.MethodRidge} {
			c := chain.NewCS(chain.CSConfig{Common: common, M: 150, ReconMethod: m})
			out := c.RunGrid(grid)
			n := min(len(ref), len(out.Samples))
			snrs[m] = dsp.SNRVersusReference(ref[:n], out.Samples[:n])
		}
	}
	b.ReportMetric(snrs[cs.MethodOMP], "snr_db_omp")
	b.ReportMetric(snrs[cs.MethodIHT], "snr_db_iht")
	b.ReportMetric(snrs[cs.MethodRidge], "snr_db_ridge")
}

// BenchmarkAblationHoldCap sweeps the charge-sharing hold capacitor — the
// knob trading LNA load power and area against kT/C noise and matching —
// and reports the reconstruction SNR at the two extremes.
func BenchmarkAblationHoldCap(b *testing.B) {
	grid := dsp.Resample(benchRecord.Samples, benchRecord.Rate, 2150.4)
	common := chain.Common{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Bits: 8, LNANoise: 3e-6, Seed: 18,
	}
	ref := chain.ReferenceGrid(common, grid)
	var snrSmall, snrLarge float64
	for i := 0; i < b.N; i++ {
		for _, ch := range []float64{10e-15, 320e-15} {
			c := chain.NewCS(chain.CSConfig{Common: common, M: 150, CHold: ch})
			out := c.RunGrid(grid)
			n := min(len(ref), len(out.Samples))
			snr := dsp.SNRVersusReference(ref[:n], out.Samples[:n])
			if ch < 100e-15 {
				snrSmall = snr
			} else {
				snrLarge = snr
			}
		}
	}
	b.ReportMetric(snrSmall, "snr_db_ch10f")
	b.ReportMetric(snrLarge, "snr_db_ch320f")
}
