package cs

import (
	"fmt"
	"math"

	"efficsense/internal/xrand"
)

// EncoderConfig parameterises the passive charge-sharing CS encoder of
// paper Fig 5. CSample and CHold set the sharing ratio (Eq 1) and, with
// the technology's matching law and kT/C, the analog imperfections.
type EncoderConfig struct {
	// Phi is the sensing matrix (owned by the encoder afterwards).
	Phi *SRBM
	// CSample is the sampling capacitor C_sample (F).
	CSample float64
	// CHold is the per-measurement hold capacitor C_hold (F).
	CHold float64
	// MismatchSigmaSample and MismatchSigmaHold are the relative 1-sigma
	// value errors of the sampling and hold capacitors (from
	// tech.Params.MismatchSigma). Zero disables mismatch.
	MismatchSigmaSample float64
	MismatchSigmaHold   float64
	// Temperature (K) for the kT/C sharing noise; 0 disables noise.
	Temperature float64
	// LeakageCurrent models switch leakage droop on the hold capacitors
	// (A); 0 disables. Droop is applied per input-sample period.
	LeakageCurrent float64
	// SamplePeriod is the input sample period (s), needed for droop.
	SamplePeriod float64
	// Seed fixes the mismatch realisation and the noise stream.
	Seed int64
}

// Encoder implements the passive charge-sharing matrix multiplier. One
// frame consumes Phi.N input samples and produces Phi.M measurements, each
// the Eq (1) weighted sum of its column-selected samples.
type Encoder struct {
	cfg EncoderConfig
	// cs[k] is the actual value of sampling capacitor k (one per non-zero
	// per column position, i.e. S physical capacitors reused each sample).
	cs []float64
	// ch[i] is the actual value of hold capacitor i.
	ch    []float64
	noise *xrand.Source
}

// NewEncoder builds an encoder, drawing one mismatch realisation. It
// panics on a missing matrix or non-positive capacitors (programming
// errors in a sweep definition).
func NewEncoder(cfg EncoderConfig) *Encoder {
	if cfg.Phi == nil {
		panic("cs: encoder requires a sensing matrix")
	}
	if cfg.CSample <= 0 || cfg.CHold <= 0 {
		panic("cs: encoder capacitors must be positive")
	}
	rng := xrand.Derive(cfg.Seed, "cs-encoder")
	mm := rng.Derive("mismatch")
	e := &Encoder{
		cfg:   cfg,
		cs:    make([]float64, cfg.Phi.S),
		ch:    make([]float64, cfg.Phi.M),
		noise: rng.Derive("ktc"),
	}
	for k := range e.cs {
		e.cs[k] = cfg.CSample * (1 + mm.Normal(0, cfg.MismatchSigmaSample))
	}
	for i := range e.ch {
		e.ch[i] = cfg.CHold * (1 + mm.Normal(0, cfg.MismatchSigmaHold))
	}
	return e
}

// Phi returns the sensing matrix.
func (e *Encoder) Phi() *SRBM { return e.cfg.Phi }

// FrameLen returns the input samples consumed per frame (N_Φ).
func (e *Encoder) FrameLen() int { return e.cfg.Phi.N }

// Measurements returns the outputs produced per frame (M).
func (e *Encoder) Measurements() int { return e.cfg.Phi.M }

// EncodeFrame processes one frame of exactly N_Φ samples and returns the M
// hold-capacitor voltages at the end of the frame. Hold capacitors are
// reset (discharged) at frame start, as in the paper's frame-based
// operation.
func (e *Encoder) EncodeFrame(x []float64) []float64 {
	if len(x) != e.cfg.Phi.N {
		panic(fmt.Sprintf("cs: EncodeFrame needs %d samples, got %d", e.cfg.Phi.N, len(x)))
	}
	v := make([]float64, e.cfg.Phi.M)
	e.encodeFrameInto(v, x)
	return v
}

// Encode processes a waveform frame by frame, dropping a trailing partial
// frame, and returns the concatenated measurements (len = frames·M).
func (e *Encoder) Encode(x []float64) []float64 {
	n := e.cfg.Phi.N
	frames := len(x) / n
	out := make([]float64, 0, frames*e.cfg.Phi.M)
	for f := 0; f < frames; f++ {
		out = append(out, e.EncodeFrame(x[f*n:(f+1)*n])...)
	}
	return out
}

// EncodeInto is Encode against caller-owned storage: dst is grown
// (reallocating only when capacity is exceeded) to frames·M and fully
// overwritten; the returned slice aliases it. The per-frame arithmetic and
// the kT/C noise-stream consumption are exactly EncodeFrame's, so the
// measurements are bit-identical to Encode on the same encoder state.
func (e *Encoder) EncodeInto(dst, x []float64) []float64 {
	n := e.cfg.Phi.N
	frames := len(x) / n
	m := e.cfg.Phi.M
	need := frames * m
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	for f := 0; f < frames; f++ {
		e.encodeFrameInto(dst[f*m:(f+1)*m], x[f*n:(f+1)*n])
	}
	return dst
}

// encodeFrameInto is EncodeFrame writing into caller storage (length M).
func (e *Encoder) encodeFrameInto(v, x []float64) {
	for i := range v {
		v[i] = 0
	}
	kt := 0.0
	if e.cfg.Temperature > 0 {
		kt = 1.380649e-23 * e.cfg.Temperature
	}
	droop := 0.0
	if e.cfg.LeakageCurrent > 0 && e.cfg.SamplePeriod > 0 {
		droop = e.cfg.LeakageCurrent * e.cfg.SamplePeriod
	}
	for j := range x {
		if droop > 0 {
			for i := range v {
				// dV = I·t/C, pulled toward ground.
				d := droop / e.ch[i]
				switch {
				case v[i] > d:
					v[i] -= d
				case v[i] < -d:
					v[i] += d
				default:
					v[i] = 0
				}
			}
		}
		for k, row := range e.cfg.Phi.Support[j] {
			csk := e.cs[k%len(e.cs)]
			chi := e.ch[row]
			// φ1: sample x[j] on C_sample (kT/C sampling noise);
			sample := x[j]
			if kt > 0 {
				sample += e.noise.Normal(0, math.Sqrt(kt/csk))
			}
			// φ2: share with C_hold (kT/C redistribution noise on the sum
			// node, referred to the merged capacitance).
			alpha := csk / (csk + chi)
			v[row] = alpha*sample + (1-alpha)*v[row]
			if kt > 0 {
				v[row] += e.noise.Normal(0, math.Sqrt(kt/(csk+chi)))
			}
		}
	}
}

// EffectiveMatrix returns the M×N linear map actually implemented by the
// charge-sharing network: A[i][j] is the end-of-frame weight of sample j
// in measurement i, per Eq (1) with the per-row share ordering. If
// nominal is true the design-value capacitors are used (what the
// reconstructor knows); otherwise the mismatched realisation (what the
// silicon does).
func (e *Encoder) EffectiveMatrix(nominal bool) [][]float64 {
	m, n := e.cfg.Phi.M, e.cfg.Phi.N
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for k, row := range e.cfg.Phi.Support[j] {
			var csk, chi float64
			if nominal {
				csk, chi = e.cfg.CSample, e.cfg.CHold
			} else {
				csk, chi = e.cs[k%len(e.cs)], e.ch[row]
			}
			alpha := csk / (csk + chi)
			// This share scales everything already accumulated in row by
			// (1-alpha) and adds alpha·x[j].
			for jj := 0; jj < j; jj++ {
				a[row][jj] *= 1 - alpha
			}
			a[row][j] = alpha
		}
	}
	return a
}

// NominalEffectiveMatrix returns EffectiveMatrix(true) for the given
// sensing matrix and design-value capacitors without constructing an
// encoder (so no mismatch realisation is drawn). It runs the exact same
// share recurrence, making the result bit-identical to what any encoder
// built from (phi, csample, chold) reports — which is what lets a
// geometry-keyed plan cache build the reconstructor dictionary once and
// share it across every design point of that geometry.
func NominalEffectiveMatrix(phi *SRBM, csample, chold float64) [][]float64 {
	if phi == nil {
		panic("cs: nominal matrix requires a sensing matrix")
	}
	if csample <= 0 || chold <= 0 {
		panic("cs: encoder capacitors must be positive")
	}
	m, n := phi.M, phi.N
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for _, row := range phi.Support[j] {
			alpha := csample / (csample + chold)
			for jj := 0; jj < j; jj++ {
				a[row][jj] *= 1 - alpha
			}
			a[row][j] = alpha
		}
	}
	return a
}

// Eq1Weights returns the analytic Eq (1) weights for a row that receives
// shares at 1-based positions 1..count with capacitors c1 (sample) and c2
// (hold): weight of the m-th shared sample is a·b^(count-m) with
// a = c1/(c1+c2), b = c2/(c1+c2). Exposed for tests and documentation.
func Eq1Weights(c1, c2 float64, count int) []float64 {
	a := c1 / (c1 + c2)
	b := c2 / (c1 + c2)
	w := make([]float64, count)
	for m := 1; m <= count; m++ {
		w[m-1] = a * math.Pow(b, float64(count-m))
	}
	return w
}
