package cs

import "math"

// BatchOMP is an orthogonal-matching-pursuit solver specialised for a
// fixed dictionary reused across many measurement vectors (every frame of
// a record, every record of a sweep). It precomputes the Gram matrix
// G = DᵀD once, then solves each frame with correlation updates in the
// coefficient domain and an incrementally grown Cholesky factor — the
// "Batch-OMP" formulation. Results match the direct OMP function to
// numerical precision; the per-frame cost drops from O(atoms·M·K) to
// O(atoms·K + atoms²·K).
//
// The dictionary and Gram matrix are stored flat (column- and row-major
// respectively) so the two O(atoms·K) inner loops stream contiguous
// memory, and every solve can run against a caller-owned Scratch, which
// makes the steady state allocation-free. A BatchOMP is read-only after
// construction and safe for concurrent solves with distinct Scratches.
type BatchOMP struct {
	flat  []float64 // column-major dictionary: column j at [j*m, (j+1)*m)
	rows  []float64 // row-major mirror for the vector projections path; nil without AVX
	gram  []float64 // row-major K×K Gram matrix: row i at [i*k, (i+1)*k)
	norms []float64 // column norms
	k, m  int
}

// Scratch is the reusable working set of one solving goroutine. It grows
// to the largest (K, maxAtoms) it has seen and is then allocation-free.
// The zero value is ready to use. Not safe for concurrent use.
type Scratch struct {
	p, corr   []float64
	w, z      []float64
	lf, lfT   []float64
	coef, pS  []float64
	support   []int
	inSupport []bool
}

func (s *Scratch) grow(k, maxAtoms int) {
	if cap(s.p) < k {
		s.p = make([]float64, k)
		s.corr = make([]float64, k)
	}
	s.p, s.corr = s.p[:k], s.corr[:k]
	if cap(s.inSupport) < k {
		s.inSupport = make([]bool, k)
	}
	s.inSupport = s.inSupport[:k]
	if cap(s.w) < maxAtoms {
		s.w = make([]float64, maxAtoms)
		s.z = make([]float64, maxAtoms)
		s.coef = make([]float64, maxAtoms)
		s.pS = make([]float64, maxAtoms)
		s.support = make([]int, maxAtoms)
	}
	// The Cholesky factor (and its transpose, kept so back-substitution
	// streams rows instead of striding columns) is indexed with stride
	// maxAtoms; rows are written before they are read, so stale content
	// is harmless.
	if cap(s.lf) < maxAtoms*maxAtoms {
		s.lf = make([]float64, maxAtoms*maxAtoms)
		s.lfT = make([]float64, maxAtoms*maxAtoms)
	}
	s.lf = s.lf[:maxAtoms*maxAtoms]
	s.lfT = s.lfT[:maxAtoms*maxAtoms]
}

// NewBatchOMP precomputes the Gram matrix of the dictionary columns.
func NewBatchOMP(cols [][]float64) *BatchOMP {
	k := len(cols)
	b := &BatchOMP{k: k}
	if k == 0 {
		return b
	}
	b.m = len(cols[0])
	b.flat = make([]float64, k*b.m)
	for j, c := range cols {
		copy(b.flat[j*b.m:(j+1)*b.m], c)
	}
	if useAVX {
		// Row-major mirror: row i holds element i of every column, so the
		// vector projections path can accumulate four adjacent columns per
		// instruction instead of gathering down one column at a time.
		b.rows = make([]float64, k*b.m)
		for j, c := range cols {
			for i, v := range c {
				b.rows[i*k+j] = v
			}
		}
	}
	b.norms = make([]float64, k)
	b.gram = make([]float64, k*k)
	for i := 0; i < k; i++ {
		ci := cols[i]
		for j := i; j < k; j++ {
			cj := cols[j]
			var dot float64
			for t := range ci {
				dot += ci[t] * cj[t]
			}
			b.gram[i*k+j] = dot
			b.gram[j*k+i] = dot
		}
		b.norms[i] = math.Sqrt(b.gram[i*k+i])
	}
	return b
}

// Solve returns the sparse coefficient vector for measurement y, with the
// same maxAtoms/tol semantics (and the same diminishing-returns early
// exit) as OMP.
func (b *BatchOMP) Solve(y []float64, maxAtoms int, tol float64) []float64 {
	var sc Scratch
	return b.SolveInto(make([]float64, b.k), y, maxAtoms, tol, &sc)
}

// SolveInto is Solve against caller-owned storage: theta (length K)
// receives the coefficient vector and sc holds the working set, so
// repeated solves allocate nothing. theta is fully overwritten.
func (b *BatchOMP) SolveInto(theta, y []float64, maxAtoms int, tol float64, sc *Scratch) []float64 {
	for i := range theta {
		theta[i] = 0
	}
	support, coef := b.solve(y, maxAtoms, tol, sc)
	for i, j := range support {
		theta[j] = coef[i]
	}
	return theta
}

// solve runs the pursuit and returns the selected atoms with their
// least-squares coefficients, both backed by sc (valid until the next
// solve on the same Scratch).
func (b *BatchOMP) solve(y []float64, maxAtoms int, tol float64, sc *Scratch) ([]int, []float64) {
	if b.k == 0 || len(y) == 0 || maxAtoms <= 0 {
		return nil, nil
	}
	var yEnergy float64
	for _, v := range y {
		yEnergy += v * v
	}
	if yEnergy == 0 {
		return nil, nil
	}
	sc.grow(b.k, maxAtoms)
	// p = Dᵀy, the only O(K·M) step per solve.
	p := sc.p
	b.projections(p, y)
	support := sc.support[:0]
	inSupport := sc.inSupport
	lf, lfT := sc.lf, sc.lfT
	coef := sc.coef[:0]
	pS := sc.pS[:0]
	z := sc.z
	prevEnergy := yEnergy
	limit := maxAtoms
	if limit > b.m {
		limit = b.m
	}
	best, bestVal := b.updateSelect(sc.corr, p, support, coef, inSupport)
	for len(support) < limit {
		if best < 0 || bestVal < 1e-15 {
			break
		}
		// Grow the Cholesky factor with atom `best`.
		s := len(support)
		w := sc.w[:s]
		gBest := b.gram[best*b.k : (best+1)*b.k]
		for i, si := range support {
			w[i] = gBest[si]
		}
		// Forward substitution L·z = w.
		for i := 0; i < s; i++ {
			sum := w[i]
			row := lf[i*maxAtoms : i*maxAtoms+i]
			for t, lv := range row {
				sum -= lv * w[t] // w reused as z in place
			}
			w[i] = sum / lf[i*maxAtoms+i]
		}
		var zz float64
		for _, v := range w {
			zz += v * v
		}
		diag := gBest[best] - zz
		if diag <= 1e-300 {
			break // numerically dependent atom: stop
		}
		for t := 0; t < s; t++ {
			lf[s*maxAtoms+t] = w[t]
			lfT[t*maxAtoms+s] = w[t]
		}
		d := math.Sqrt(diag)
		lf[s*maxAtoms+s] = d
		lfT[s*maxAtoms+s] = d
		support = append(support, best)
		inSupport[best] = true
		pS = append(pS, p[best])
		// Solve L·Lᵀ·coef = p_S. The forward solve is incremental: z[i]
		// for i < s depends only on rows ≤ i of L and p_S, all untouched
		// by this append, so those entries are bitwise what a full
		// recompute would produce — only the new row's entry is computed,
		// O(s) instead of O(s²) per atom.
		{
			sum := pS[s]
			row := lf[s*maxAtoms : s*maxAtoms+s]
			for t, lv := range row {
				sum -= lv * z[t]
			}
			z[s] = sum / d
		}
		n := len(support)
		coef = coef[:n]
		// Back-substitution Lᵀ·coef = z reads column i of L, kept as the
		// contiguous row i of the transposed factor.
		for i := n - 1; i >= 0; i-- {
			sum := z[i]
			row := lfT[i*maxAtoms+i+1 : i*maxAtoms+n]
			for t, lv := range row {
				sum -= lv * coef[i+1+t]
			}
			coef[i] = sum / lf[i*maxAtoms+i]
		}
		// Residual energy for the exact LS solution: ||y||² - coefᵀ·p_S.
		// The exit checks run before the next selection — the correlation
		// update only feeds atom selection, so the final iteration's
		// O(atoms·K) update (the largest one) is skipped entirely when any
		// exit fires.
		rEnergy := yEnergy
		for i, c := range coef {
			rEnergy -= c * pS[i]
		}
		if rEnergy < 0 {
			rEnergy = 0
		}
		if rEnergy <= tol*yEnergy {
			break
		}
		if prevEnergy > 0 && (prevEnergy-rEnergy) < 0.005*prevEnergy {
			break
		}
		prevEnergy = rEnergy
		if len(support) >= limit {
			break
		}
		best, bestVal = b.updateSelect(sc.corr, p, support, coef, inSupport)
	}
	// Reset the membership flags so the Scratch is clean for reuse.
	for _, j := range support {
		inSupport[j] = false
	}
	return support, coef
}

// projections computes p = Dᵀy. Columns are processed four at a time with
// independent accumulators — each column's dot product still sums in the
// original sequential order (bit-identical results), but y is streamed
// once per group instead of once per column and the four dependency
// chains overlap (wider groups spill registers on amd64 and lose).
func (b *BatchOMP) projections(p, y []float64) {
	if b.rows != nil && len(y) == b.m {
		b.projectionsRows(p, y)
		return
	}
	m := b.m
	j := 0
	for ; j+4 <= b.k; j += 4 {
		c0 := b.flat[(j+0)*m : (j+1)*m]
		c1 := b.flat[(j+1)*m : (j+2)*m]
		c2 := b.flat[(j+2)*m : (j+3)*m]
		c3 := b.flat[(j+3)*m : (j+4)*m]
		var d0, d1, d2, d3 float64
		for i, v := range y {
			d0 += c0[i] * v
			d1 += c1[i] * v
			d2 += c2[i] * v
			d3 += c3[i] * v
		}
		p[j], p[j+1], p[j+2], p[j+3] = d0, d1, d2, d3
	}
	for ; j < b.k; j++ {
		c := b.flat[j*m : (j+1)*m]
		var dot float64
		for i, v := range y {
			dot += c[i] * v
		}
		p[j] = dot
	}
}

// projectionsRows is projections over the row-major mirror: p accumulates
// y[i]·row_i for ascending i, two rows per pass, which vectorises across
// adjacent columns. Each p[j] still sums its terms in ascending-i order
// starting from +0 — the exact order of the scalar dot product — so the
// two layouts produce bit-identical projections.
func (b *BatchOMP) projectionsRows(p, y []float64) {
	k := b.k
	for j := range p {
		p[j] = 0
	}
	i := 0
	for ; i+2 <= len(y); i += 2 {
		r0 := b.rows[(i+0)*k : (i+1)*k]
		r1 := b.rows[(i+1)*k : (i+2)*k]
		axpyPair(p, r0, r1, y[i], y[i+1])
	}
	for ; i < len(y); i++ {
		r := b.rows[i*k : (i+1)*k]
		yi := y[i]
		r = r[:len(p)]
		for j := range p {
			p[j] += yi * r[j]
		}
	}
}

// updateSelect computes the residual correlation corr = p - G_S·coef and
// returns the best next atom (index and |corr|/norm score) in one fused
// sweep. Support atoms are applied four at a time in support order, so
// every element sees the same sequence of subtractions as applying atoms
// one by one — bit-identical values. The last group of 1–4 atoms is
// folded into the selection scan itself: those values live only in
// registers and are never stored, because corr is consumed solely by this
// selection and the next call restarts from p. With an empty support the
// scan runs over p directly (the first selection needs no copy at all).
// Short groups are padded with zero coefficients against a positive dummy
// row (b.norms), and x - (+0) is exact for every float64 x.
func (b *BatchOMP) updateSelect(corr, p []float64, support []int, coef []float64, inSupport []bool) (int, float64) {
	k := b.k
	s := len(support)
	norms := b.norms
	src := p
	if s > 4 {
		// All but the final 1–4 atoms stream through corr, four atoms per
		// pass (wider passes spill registers on amd64 and lose); the first
		// pass reads p so no upfront copy is needed. Grouping only changes
		// how often corr is loaded and stored — each element still sees
		// the subtractions in support order.
		head := (s - 1) &^ 3
		in := p[:len(corr)]
		for si := 0; si < head; si += 4 {
			g0 := b.gram[support[si+0]*k : support[si+0]*k+k]
			g1 := b.gram[support[si+1]*k : support[si+1]*k+k]
			g2 := b.gram[support[si+2]*k : support[si+2]*k+k]
			g3 := b.gram[support[si+3]*k : support[si+3]*k+k]
			updatePass4(corr, in, g0, g1, g2, g3, coef[si+0], coef[si+1], coef[si+2], coef[si+3])
			in = corr
		}
		src = corr
	}
	base := 0
	if s > 4 {
		base = (s - 1) &^ 3
	}
	g0, g1, g2, g3 := norms, norms, norms, norms
	var c0, c1, c2, c3 float64
	if n := s - base; n > 0 {
		g0, c0 = b.gram[support[base+0]*k:support[base+0]*k+k], coef[base+0]
		if n > 1 {
			g1, c1 = b.gram[support[base+1]*k:support[base+1]*k+k], coef[base+1]
		}
		if n > 2 {
			g2, c2 = b.gram[support[base+2]*k:support[base+2]*k+k], coef[base+2]
		}
		if n > 3 {
			g3, c3 = b.gram[support[base+3]*k:support[base+3]*k+k], coef[base+3]
		}
	}
	g0, g1, g2, g3 = g0[:len(src)], g1[:len(src)], g2[:len(src)], g3[:len(src)]
	norms = norms[:len(src)]
	inSupport = inSupport[:len(src)]
	best, bestVal := -1, 0.0
	for j, v := range src {
		if inSupport[j] || norms[j] == 0 {
			continue
		}
		v = (((v - c0*g0[j]) - c1*g1[j]) - c2*g2[j]) - c3*g3[j]
		if a := math.Abs(v) / norms[j]; a > bestVal {
			best, bestVal = j, a
		}
	}
	return best, bestVal
}
