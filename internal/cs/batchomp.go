package cs

import "math"

// BatchOMP is an orthogonal-matching-pursuit solver specialised for a
// fixed dictionary reused across many measurement vectors (every frame of
// a record, every record of a sweep). It precomputes the Gram matrix
// G = DᵀD once, then solves each frame with correlation updates in the
// coefficient domain and an incrementally grown Cholesky factor — the
// "Batch-OMP" formulation. Results match the direct OMP function to
// numerical precision; the per-frame cost drops from O(atoms·M·K) to
// O(atoms·K + atoms²·K).
type BatchOMP struct {
	cols  [][]float64 // K dictionary columns, each length M
	gram  [][]float64 // K×K Gram matrix
	norms []float64   // column norms
	k, m  int
}

// NewBatchOMP precomputes the Gram matrix of the dictionary columns.
func NewBatchOMP(cols [][]float64) *BatchOMP {
	k := len(cols)
	b := &BatchOMP{cols: cols, k: k}
	if k == 0 {
		return b
	}
	b.m = len(cols[0])
	b.norms = make([]float64, k)
	b.gram = make([][]float64, k)
	for i := range b.gram {
		b.gram[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		ci := cols[i]
		for j := i; j < k; j++ {
			cj := cols[j]
			var dot float64
			for t := range ci {
				dot += ci[t] * cj[t]
			}
			b.gram[i][j] = dot
			b.gram[j][i] = dot
		}
		b.norms[i] = math.Sqrt(b.gram[i][i])
	}
	return b
}

// Solve returns the sparse coefficient vector for measurement y, with the
// same maxAtoms/tol semantics (and the same diminishing-returns early
// exit) as OMP.
func (b *BatchOMP) Solve(y []float64, maxAtoms int, tol float64) []float64 {
	theta := make([]float64, b.k)
	if b.k == 0 || len(y) == 0 || maxAtoms <= 0 {
		return theta
	}
	var yEnergy float64
	for _, v := range y {
		yEnergy += v * v
	}
	if yEnergy == 0 {
		return theta
	}
	// p = Dᵀy, the only O(K·M) step per solve.
	p := make([]float64, b.k)
	for j, c := range b.cols {
		var dot float64
		for i, v := range y {
			dot += c[i] * v
		}
		p[j] = dot
	}
	// c = p - G_S·coef is the running residual correlation.
	corr := make([]float64, b.k)
	copy(corr, p)
	support := make([]int, 0, maxAtoms)
	inSupport := make([]bool, b.k)
	// Incremental lower-triangular Cholesky factor of G restricted to the
	// support, stored row-major with stride maxAtoms.
	lf := make([]float64, maxAtoms*maxAtoms)
	coef := make([]float64, 0, maxAtoms)
	pS := make([]float64, 0, maxAtoms)
	prevEnergy := yEnergy
	limit := maxAtoms
	if limit > b.m {
		limit = b.m
	}
	for len(support) < limit {
		best, bestVal := -1, 0.0
		for j := 0; j < b.k; j++ {
			if inSupport[j] || b.norms[j] == 0 {
				continue
			}
			if a := math.Abs(corr[j]) / b.norms[j]; a > bestVal {
				best, bestVal = j, a
			}
		}
		if best < 0 || bestVal < 1e-15 {
			break
		}
		// Grow the Cholesky factor with atom `best`.
		s := len(support)
		w := make([]float64, s)
		for i, si := range support {
			w[i] = b.gram[si][best]
		}
		// Forward substitution L·z = w.
		for i := 0; i < s; i++ {
			sum := w[i]
			for t := 0; t < i; t++ {
				sum -= lf[i*maxAtoms+t] * w[t] // w reused as z in place
			}
			w[i] = sum / lf[i*maxAtoms+i]
		}
		var zz float64
		for _, v := range w {
			zz += v * v
		}
		diag := b.gram[best][best] - zz
		if diag <= 1e-300 {
			break // numerically dependent atom: stop
		}
		for t := 0; t < s; t++ {
			lf[s*maxAtoms+t] = w[t]
		}
		lf[s*maxAtoms+s] = math.Sqrt(diag)
		support = append(support, best)
		inSupport[best] = true
		pS = append(pS, p[best])
		// Solve L·Lᵀ·coef = p_S.
		coef = coef[:len(support)]
		z := make([]float64, len(support))
		for i := range support {
			sum := pS[i]
			for t := 0; t < i; t++ {
				sum -= lf[i*maxAtoms+t] * z[t]
			}
			z[i] = sum / lf[i*maxAtoms+i]
		}
		for i := len(support) - 1; i >= 0; i-- {
			sum := z[i]
			for t := i + 1; t < len(support); t++ {
				sum -= lf[t*maxAtoms+i] * coef[t]
			}
			coef[i] = sum / lf[i*maxAtoms+i]
		}
		// Update residual correlations: corr = p - G_S·coef.
		copy(corr, p)
		for si, sIdx := range support {
			g := b.gram[sIdx]
			c := coef[si]
			for j := 0; j < b.k; j++ {
				corr[j] -= c * g[j]
			}
		}
		// Residual energy for the exact LS solution: ||y||² - coefᵀ·p_S.
		rEnergy := yEnergy
		for i, c := range coef {
			rEnergy -= c * pS[i]
		}
		if rEnergy < 0 {
			rEnergy = 0
		}
		if rEnergy <= tol*yEnergy {
			break
		}
		if prevEnergy > 0 && (prevEnergy-rEnergy) < 0.005*prevEnergy {
			break
		}
		prevEnergy = rEnergy
	}
	for i, j := range support {
		theta[j] = coef[i]
	}
	return theta
}
