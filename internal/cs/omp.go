package cs

import "math"

// OMP solves y ≈ D·θ for a sparse θ via orthogonal matching pursuit.
// D is an M×K dictionary given as column vectors cols[k] (each length M);
// maxAtoms bounds the support size and tol stops early once the residual
// energy falls below tol·||y||². It returns the dense coefficient vector
// (length K). The implementation re-solves the least-squares subproblem
// with a Cholesky factorisation of the Gram matrix each iteration, which
// is robust and fast at the problem sizes of this framework (M ≤ ~200).
func OMP(cols [][]float64, y []float64, maxAtoms int, tol float64) []float64 {
	k := len(cols)
	theta := make([]float64, k)
	if k == 0 || len(y) == 0 || maxAtoms <= 0 {
		return theta
	}
	m := len(y)
	// Precompute column norms to normalise correlations.
	norms := make([]float64, k)
	for j, c := range cols {
		var s float64
		for _, v := range c {
			s += v * v
		}
		norms[j] = math.Sqrt(s)
	}
	var yEnergy float64
	for _, v := range y {
		yEnergy += v * v
	}
	if yEnergy == 0 {
		return theta
	}
	resid := make([]float64, m)
	copy(resid, y)
	support := make([]int, 0, maxAtoms)
	inSupport := make([]bool, k)
	coef := []float64(nil)
	prevEnergy := yEnergy
	for len(support) < maxAtoms && len(support) < m {
		// Select the column most correlated with the residual.
		best, bestVal := -1, 0.0
		for j := 0; j < k; j++ {
			if inSupport[j] || norms[j] == 0 {
				continue
			}
			var dot float64
			cj := cols[j]
			for i := 0; i < m; i++ {
				dot += cj[i] * resid[i]
			}
			if a := math.Abs(dot) / norms[j]; a > bestVal {
				best, bestVal = j, a
			}
		}
		if best < 0 || bestVal < 1e-15 {
			break
		}
		support = append(support, best)
		inSupport[best] = true
		// Least squares on the support via normal equations + Cholesky.
		var ok bool
		coef, ok = lsSolve(cols, support, y)
		if !ok {
			// Degenerate Gram matrix: drop the atom and stop.
			support = support[:len(support)-1]
			inSupport[best] = false
			break
		}
		// New residual.
		copy(resid, y)
		for si, j := range support {
			cj := cols[j]
			c := coef[si]
			for i := 0; i < m; i++ {
				resid[i] -= c * cj[i]
			}
		}
		var rEnergy float64
		for _, v := range resid {
			rEnergy += v * v
		}
		if rEnergy <= tol*yEnergy {
			break
		}
		// Diminishing returns: once an atom removes less than 0.5 % of the
		// remaining residual energy, the rest is noise — stop early. This
		// is what keeps noisy-frame reconstruction cheap in large sweeps.
		if prevEnergy > 0 && (prevEnergy-rEnergy) < 0.005*prevEnergy {
			break
		}
		prevEnergy = rEnergy
	}
	for si, j := range support {
		theta[j] = coef[si]
	}
	return theta
}

// lsSolve returns argmin ||y - D_S c|| for the columns indexed by support,
// using Cholesky on the Gram matrix. ok is false if the Gram matrix is not
// positive definite.
func lsSolve(cols [][]float64, support []int, y []float64) (c []float64, ok bool) {
	s := len(support)
	g := make([]float64, s*s)
	b := make([]float64, s)
	for a := 0; a < s; a++ {
		ca := cols[support[a]]
		for bb := a; bb < s; bb++ {
			cb := cols[support[bb]]
			var dot float64
			for i := range ca {
				dot += ca[i] * cb[i]
			}
			g[a*s+bb] = dot
			g[bb*s+a] = dot
		}
		var dot float64
		for i := range ca {
			dot += ca[i] * y[i]
		}
		b[a] = dot
	}
	l, ok := cholesky(g, s)
	if !ok {
		return nil, false
	}
	return choleskySolve(l, b, s), true
}

// cholesky factors the s×s symmetric matrix g (row-major) as L·Lᵀ,
// returning the lower factor, or ok=false if not positive definite.
func cholesky(g []float64, s int) (l []float64, ok bool) {
	l = make([]float64, s*s)
	for i := 0; i < s; i++ {
		for j := 0; j <= i; j++ {
			sum := g[i*s+j]
			for k := 0; k < j; k++ {
				sum -= l[i*s+k] * l[j*s+k]
			}
			if i == j {
				if sum <= 1e-300 {
					return nil, false
				}
				l[i*s+i] = math.Sqrt(sum)
			} else {
				l[i*s+j] = sum / l[j*s+j]
			}
		}
	}
	return l, true
}

// choleskySolve solves L·Lᵀ·x = b.
func choleskySolve(l, b []float64, s int) []float64 {
	// Forward substitution: L·z = b.
	z := make([]float64, s)
	for i := 0; i < s; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*s+k] * z[k]
		}
		z[i] = sum / l[i*s+i]
	}
	// Back substitution: Lᵀ·x = z.
	x := make([]float64, s)
	for i := s - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < s; k++ {
			sum -= l[k*s+i] * x[k]
		}
		x[i] = sum / l[i*s+i]
	}
	return x
}
