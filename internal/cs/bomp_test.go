package cs

import (
	"testing"

	"efficsense/internal/dsp"
)

// blockSparseFrameProblem builds an ideal passive encoder and a frame
// whose DCT energy lives in two contiguous coefficient blocks — the
// structure BOMP exploits and singleton-greedy OMP does not.
func blockSparseFrameProblem(n, m int, seed int64) (enc *Encoder, x, y []float64) {
	enc = idealEncoder(m, n, 2, seed)
	d := dsp.NewDCT(n)
	coeffs := make([]float64, n)
	for k := 4; k < 8; k++ {
		coeffs[k] = 1.0 - 0.1*float64(k-4)
	}
	for k := 20; k < 24; k++ {
		coeffs[k] = -0.5 + 0.08*float64(k-20)
	}
	x = d.Inverse(coeffs)
	y = enc.EncodeFrame(x)
	return enc, x, y
}

func TestMethodBOMPString(t *testing.T) {
	if MethodBOMP.String() != "bomp" {
		t.Fatalf("MethodBOMP renders %q", MethodBOMP.String())
	}
}

func TestMethodBOMPRecoversBlockSparse(t *testing.T) {
	enc, x, y := blockSparseFrameProblem(128, 64, 31)
	r := NewMethodReconstructor(enc.EffectiveMatrix(true), 128,
		ReconOptions{Method: MethodBOMP, MaxAtoms: 16, BlockLen: 4, Tol: 1e-12})
	snr := dsp.SNRVersusReference(x, r.ReconstructFrame(y))
	if snr < 50 {
		t.Fatalf("BOMP SNR on a block-sparse frame = %g dB", snr)
	}
}

func TestMethodBOMPDeterministic(t *testing.T) {
	enc, _, y := blockSparseFrameProblem(96, 48, 32)
	r := NewMethodReconstructor(enc.EffectiveMatrix(true), 96,
		ReconOptions{Method: MethodBOMP, MaxAtoms: 12, BlockLen: 4})
	a := r.ReconstructFrame(y)
	b := r.ReconstructFrame(y)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("BOMP reconstruction not deterministic at sample %d", i)
		}
	}
}

func TestMethodBOMPZeroMeasurements(t *testing.T) {
	enc, _, _ := blockSparseFrameProblem(64, 32, 33)
	r := NewMethodReconstructor(enc.EffectiveMatrix(true), 64,
		ReconOptions{Method: MethodBOMP})
	out := r.ReconstructFrame(make([]float64, 32))
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero measurements reconstructed nonzero sample %d = %g", i, v)
		}
	}
}
