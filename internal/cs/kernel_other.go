//go:build !amd64 || purego

package cs

// useAVX is always false without the amd64 assembly kernels; the wrappers
// in kernel.go then run their scalar loops, which compute the exact same
// per-element arithmetic.
const useAVX = false

func updatePass4AVX(dst, in, g0, g1, g2, g3 []float64, c0, c1, c2, c3 float64) {
	panic("cs: AVX kernel called without AVX support")
}

func axpyPairAVX(p, d0, d1 []float64, y0, y1 float64) {
	panic("cs: AVX kernel called without AVX support")
}
