//go:build amd64 && !purego

#include "textflag.h"

// func cpuidHasAVX() bool
// AVX needs CPUID.1:ECX bits 27 (OSXSAVE) and 28 (AVX), plus XCR0 bits
// 1 and 2 (the OS saves XMM and YMM state on context switch).
TEXT ·cpuidHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  no
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func updatePass4AVX(dst, in, g0, g1, g2, g3 []float64, c0, c1, c2, c3 float64)
// dst[j] = (((in[j] - c0*g0[j]) - c1*g1[j]) - c2*g2[j]) - c3*g3[j],
// 8 elements per iteration. VMULPD/VSUBPD are per-lane IEEE-754 double
// operations in the same order as the scalar loop: bit-identical.
TEXT ·updatePass4AVX(SB), NOSPLIT, $0-176
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         in_base+24(FP), SI
	MOVQ         g0_base+48(FP), R8
	MOVQ         g1_base+72(FP), R9
	MOVQ         g2_base+96(FP), R10
	MOVQ         g3_base+120(FP), R11
	VBROADCASTSD c0+144(FP), Y0
	VBROADCASTSD c1+152(FP), Y1
	VBROADCASTSD c2+160(FP), Y2
	VBROADCASTSD c3+168(FP), Y3
	XORQ         AX, AX
	SHRQ         $3, CX

uloop:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  (R8)(AX*8), Y0, Y6
	VSUBPD  Y6, Y4, Y4
	VMULPD  32(R8)(AX*8), Y0, Y7
	VSUBPD  Y7, Y5, Y5
	VMULPD  (R9)(AX*8), Y1, Y6
	VSUBPD  Y6, Y4, Y4
	VMULPD  32(R9)(AX*8), Y1, Y7
	VSUBPD  Y7, Y5, Y5
	VMULPD  (R10)(AX*8), Y2, Y6
	VSUBPD  Y6, Y4, Y4
	VMULPD  32(R10)(AX*8), Y2, Y7
	VSUBPD  Y7, Y5, Y5
	VMULPD  (R11)(AX*8), Y3, Y6
	VSUBPD  Y6, Y4, Y4
	VMULPD  32(R11)(AX*8), Y3, Y7
	VSUBPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	DECQ    CX
	JNZ     uloop
	VZEROUPPER
	RET

// func axpyPairAVX(p, d0, d1 []float64, y0, y1 float64)
// p[j] = (p[j] + y0*d0[j]) + y1*d1[j], 4 elements per iteration, same
// per-lane IEEE order as the scalar loop.
TEXT ·axpyPairAVX(SB), NOSPLIT, $0-88
	MOVQ         p_base+0(FP), DI
	MOVQ         p_len+8(FP), CX
	MOVQ         d0_base+24(FP), R8
	MOVQ         d1_base+48(FP), R9
	VBROADCASTSD y0+72(FP), Y0
	VBROADCASTSD y1+80(FP), Y1
	XORQ         AX, AX
	SHRQ         $2, CX

aloop:
	VMOVUPD (DI)(AX*8), Y2
	VMULPD  (R8)(AX*8), Y0, Y3
	VADDPD  Y3, Y2, Y2
	VMULPD  (R9)(AX*8), Y1, Y3
	VADDPD  Y3, Y2, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ    $4, AX
	DECQ    CX
	JNZ     aloop
	VZEROUPPER
	RET
