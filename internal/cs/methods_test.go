package cs

import (
	"math"
	"testing"

	"efficsense/internal/dsp"
	"efficsense/internal/xrand"
)

// sparseFrameProblem builds an ideal passive encoder, a DCT-sparse frame
// and its measurements.
func sparseFrameProblem(n, m int, seed int64) (enc *Encoder, x, y []float64) {
	enc = idealEncoder(m, n, 2, seed)
	d := dsp.NewDCT(n)
	coeffs := make([]float64, n)
	coeffs[2] = 1.0
	coeffs[9] = -0.5
	coeffs[17] = 0.3
	x = d.Inverse(coeffs)
	y = enc.EncodeFrame(x)
	return enc, x, y
}

func TestMethodStrings(t *testing.T) {
	if MethodOMP.String() != "omp" || MethodIHT.String() != "iht" || MethodRidge.String() != "ridge" {
		t.Fatal("method names")
	}
	if Method(7).String() == "" {
		t.Fatal("unknown method should render")
	}
}

func TestMethodOMPRecovers(t *testing.T) {
	enc, x, y := sparseFrameProblem(128, 64, 21)
	r := NewMethodReconstructor(enc.EffectiveMatrix(true), 128, ReconOptions{Method: MethodOMP, MaxAtoms: 12, Tol: 1e-12})
	snr := dsp.SNRVersusReference(x, r.ReconstructFrame(y))
	if snr < 50 {
		t.Fatalf("OMP method SNR = %g dB", snr)
	}
}

func TestMethodIHTRecovers(t *testing.T) {
	enc, x, y := sparseFrameProblem(128, 64, 22)
	r := NewMethodReconstructor(enc.EffectiveMatrix(true), 128, ReconOptions{Method: MethodIHT, MaxAtoms: 8, IHTIters: 150})
	snr := dsp.SNRVersusReference(x, r.ReconstructFrame(y))
	if snr < 25 {
		t.Fatalf("IHT method SNR = %g dB", snr)
	}
}

func TestMethodRidgeRecoversApproximately(t *testing.T) {
	// Ridge has no sparsity prior so recovery is rough, but must be
	// positively correlated and stable.
	enc, x, y := sparseFrameProblem(128, 96, 23)
	r := NewMethodReconstructor(enc.EffectiveMatrix(true), 128, ReconOptions{Method: MethodRidge, RidgeLambda: 0.01})
	xh := r.ReconstructFrame(y)
	if rho := dsp.CrossCorrelation(x, xh); rho < 0.5 {
		t.Fatalf("ridge correlation = %g", rho)
	}
}

func TestMethodReconstructorStream(t *testing.T) {
	enc, _, _ := sparseFrameProblem(64, 32, 24)
	r := NewMethodReconstructor(enc.EffectiveMatrix(true), 64, ReconOptions{Method: MethodRidge})
	y := enc.Encode(make([]float64, 3*64))
	out := r.Reconstruct(y)
	if len(out) != 3*64 {
		t.Fatalf("stream length %d", len(out))
	}
	if r.FrameLen() != 64 || r.Measurements() != 32 {
		t.Fatal("accessors")
	}
}

func TestMethodReconstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	enc, _, _ := sparseFrameProblem(64, 32, 25)
	a := enc.EffectiveMatrix(true)
	mustPanic("shape", func() { NewMethodReconstructor(a, 65, ReconOptions{}) })
	mustPanic("method", func() { NewMethodReconstructor(a, 64, ReconOptions{Method: Method(9)}) })
	r := NewMethodReconstructor(a, 64, ReconOptions{})
	mustPanic("frame length", func() { r.ReconstructFrame(make([]float64, 5)) })
}

func TestKthLargest(t *testing.T) {
	cases := []struct {
		v    []float64
		k    int
		want float64
	}{
		{[]float64{5, 1, 4, 2, 3}, 1, 5},
		{[]float64{5, 1, 4, 2, 3}, 3, 3},
		{[]float64{5, 1, 4, 2, 3}, 5, 1},
		{[]float64{7, 7, 7}, 2, 7},
	}
	for _, c := range cases {
		cp := append([]float64(nil), c.v...)
		if got := kthLargest(cp, c.k); got != c.want {
			t.Errorf("kthLargest(%v, %d) = %g, want %g", c.v, c.k, got, c.want)
		}
	}
	if got := kthLargest([]float64{1, 2}, 0); !math.IsInf(got, 1) {
		t.Errorf("k=0 should give +Inf, got %g", got)
	}
	if got := kthLargest([]float64{1, 2}, 3); !math.IsInf(got, -1) {
		t.Errorf("k>len should give -Inf, got %g", got)
	}
}

func TestKeepTopKAbs(t *testing.T) {
	v := []float64{0.1, -5, 3, -0.2, 4}
	keepTopKAbs(v, 2)
	nz := 0
	for _, x := range v {
		if x != 0 {
			nz++
		}
	}
	if nz != 2 || v[1] != -5 || v[4] != 4 {
		t.Fatalf("keepTopKAbs result %v", v)
	}
	w := []float64{1, 2}
	keepTopKAbs(w, 5) // no-op
	if w[0] != 1 || w[1] != 2 {
		t.Fatal("oversized k should be a no-op")
	}
}

func TestActiveEncoderExactSum(t *testing.T) {
	phi := GenerateSRBM(8, 32, 2, 26)
	enc := NewActiveEncoder(ActiveEncoderConfig{Phi: phi, Seed: 26})
	rng := xrand.New(26)
	x := make([]float64, 32)
	rng.FillNormal(x, 0, 1)
	y := enc.EncodeFrame(x)
	// Ideal active integration is the exact binary matrix product.
	want := DigitalEncode(phi, x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("row %d: active %g vs exact %g", i, y[i], want[i])
		}
	}
}

func TestActiveEncoderMatchesEffectiveMatrix(t *testing.T) {
	phi := GenerateSRBM(6, 24, 2, 27)
	enc := NewActiveEncoder(ActiveEncoderConfig{Phi: phi, GainError: 0.02, Seed: 27})
	rng := xrand.New(27)
	x := make([]float64, 24)
	rng.FillNormal(x, 0, 1)
	y := enc.EncodeFrame(x)
	a := enc.EffectiveMatrix()
	for i := range y {
		want := dsp.Dot(a[i], x)
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("row %d: encoder %g vs matrix %g", i, y[i], want)
		}
	}
}

func TestActiveEncoderNoiseAccumulates(t *testing.T) {
	phi := GenerateSRBM(4, 64, 2, 28)
	noisy := NewActiveEncoder(ActiveEncoderConfig{Phi: phi, OTANoise: 1e-3, Seed: 28})
	y := noisy.EncodeFrame(make([]float64, 64))
	if dsp.RMS(y) == 0 {
		t.Fatal("OTA noise missing")
	}
	// More accumulations per row → more noise: rows with higher counts
	// should show larger variance on average over repeated frames.
	counts := phi.RowCounts()
	var accum [4]float64
	const trials = 400
	for t := 0; t < trials; t++ {
		y := noisy.EncodeFrame(make([]float64, 64))
		for i, v := range y {
			accum[i] += v * v
		}
	}
	// Compare the busiest against the idlest row.
	hi, lo := 0, 0
	for i, c := range counts {
		if c > counts[hi] {
			hi = i
		}
		if c < counts[lo] {
			lo = i
		}
	}
	if counts[hi] > counts[lo] && accum[hi] <= accum[lo] {
		t.Fatalf("noise should accumulate with row count: var[hi]=%g var[lo]=%g (counts %v)",
			accum[hi], accum[lo], counts)
	}
}

func TestActiveEncoderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing matrix should panic")
		}
	}()
	NewActiveEncoder(ActiveEncoderConfig{})
}

func TestDigitalEncodeShape(t *testing.T) {
	phi := GenerateSRBM(8, 32, 2, 29)
	y := DigitalEncode(phi, make([]float64, 100)) // 3 frames + remainder
	if len(y) != 24 {
		t.Fatalf("digital encode length %d", len(y))
	}
}

func TestNewMatrixReconstructorEquivalence(t *testing.T) {
	// The generic constructor on the passive encoder's nominal matrix
	// must reproduce NewReconstructor exactly.
	enc, x, y := sparseFrameProblem(96, 48, 30)
	r1 := NewReconstructor(enc, 10, 1e-10)
	r2 := NewMatrixReconstructor(enc.EffectiveMatrix(true), 96, 10, 1e-10)
	a := r1.ReconstructFrame(y)
	b := r2.ReconstructFrame(y)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reconstructors diverge at %d", i)
		}
	}
	_ = x
}
