package cs

// Vector kernels for the two streaming loops of the Batch-OMP solver.
// The AVX paths (kernel_amd64.s) use only per-lane IEEE-754 multiply,
// subtract and add — no FMA, no reassociation — so every element sees
// exactly the arithmetic of the generic Go loops and results stay
// bit-identical across the scalar and vector paths. Lengths not divisible
// by the vector width fall back to the scalar tail in the wrappers here.

// updatePass4 computes dst[j] = (((in[j]-c0*g0[j]) - c1*g1[j]) -
// c2*g2[j]) - c3*g3[j] for j in [0, len(dst)). All slices must be at
// least len(dst) long; dst may alias in.
func updatePass4(dst, in, g0, g1, g2, g3 []float64, c0, c1, c2, c3 float64) {
	n := 0
	if useAVX {
		if n = len(dst) &^ 7; n > 0 {
			updatePass4AVX(dst[:n], in[:n], g0[:n], g1[:n], g2[:n], g3[:n], c0, c1, c2, c3)
		}
	}
	in = in[:len(dst)]
	g0, g1, g2, g3 = g0[:len(dst)], g1[:len(dst)], g2[:len(dst)], g3[:len(dst)]
	for j := n; j < len(dst); j++ {
		dst[j] = (((in[j] - c0*g0[j]) - c1*g1[j]) - c2*g2[j]) - c3*g3[j]
	}
}

// axpyPair computes p[j] = (p[j] + y0*d0[j]) + y1*d1[j] for j in
// [0, len(p)). d0 and d1 must be at least len(p) long.
func axpyPair(p, d0, d1 []float64, y0, y1 float64) {
	n := 0
	if useAVX {
		if n = len(p) &^ 3; n > 0 {
			axpyPairAVX(p[:n], d0[:n], d1[:n], y0, y1)
		}
	}
	d0, d1 = d0[:len(p)], d1[:len(p)]
	for j := n; j < len(p); j++ {
		p[j] = (p[j] + y0*d0[j]) + y1*d1[j]
	}
}
