package cs

import (
	"math"
	"testing"
	"testing/quick"

	"efficsense/internal/xrand"
)

// randomDict builds an m×k random dictionary as column vectors.
func randomDict(rng *xrand.Source, m, k int) [][]float64 {
	cols := make([][]float64, k)
	for j := range cols {
		cols[j] = make([]float64, m)
		rng.FillNormal(cols[j], 0, 1)
	}
	return cols
}

func TestBatchOMPMatchesDirectOMP(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		const m, k = 24, 60
		cols := randomDict(rng, m, k)
		// Sparse ground truth + noise.
		y := make([]float64, m)
		for _, j := range rng.Choose(k, 3) {
			c := rng.Normal(0, 1) + 1
			for i := range y {
				y[i] += c * cols[j][i]
			}
		}
		for i := range y {
			y[i] += rng.Normal(0, 0.01)
		}
		a := OMP(cols, y, 8, 1e-8)
		b := NewBatchOMP(cols).Solve(y, 8, 1e-8)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-6*(1+math.Abs(a[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchOMPRecoversSparse(t *testing.T) {
	rng := xrand.New(5)
	const m, k = 40, 100
	cols := randomDict(rng, m, k)
	truth := make([]float64, k)
	for _, j := range []int{4, 33, 71} {
		truth[j] = rng.Normal(0, 1) + 2
	}
	y := make([]float64, m)
	for j, c := range truth {
		if c == 0 {
			continue
		}
		for i := range y {
			y[i] += c * cols[j][i]
		}
	}
	got := NewBatchOMP(cols).Solve(y, 10, 1e-12)
	for j := range truth {
		if math.Abs(got[j]-truth[j]) > 1e-6 {
			t.Fatalf("coefficient %d = %g, want %g", j, got[j], truth[j])
		}
	}
}

func TestBatchOMPEdgeCases(t *testing.T) {
	b := NewBatchOMP(nil)
	if got := b.Solve([]float64{1}, 4, 0); len(got) != 0 {
		t.Fatal("empty dictionary")
	}
	cols := [][]float64{{1, 0}, {0, 1}}
	b = NewBatchOMP(cols)
	if got := b.Solve([]float64{0, 0}, 4, 0); got[0] != 0 || got[1] != 0 {
		t.Fatal("zero measurement")
	}
	if got := b.Solve([]float64{1, 2}, 0, 0); got[0] != 0 {
		t.Fatal("zero atom budget")
	}
	// Duplicate (dependent) columns must not break the factorisation.
	dup := [][]float64{{1, 0}, {1, 0}, {0, 1}}
	got := NewBatchOMP(dup).Solve([]float64{3, 4}, 3, 1e-12)
	nz := 0
	for _, v := range got {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("dependent dictionary produced empty solution")
	}
}

func TestBatchOMPSupportCappedByMeasurements(t *testing.T) {
	rng := xrand.New(6)
	cols := randomDict(rng, 4, 20) // only 4 measurements
	y := []float64{1, -2, 3, 0.5}
	got := NewBatchOMP(cols).Solve(y, 15, 0)
	nz := 0
	for _, v := range got {
		if v != 0 {
			nz++
		}
	}
	if nz > 4 {
		t.Fatalf("support size %d exceeds measurement count", nz)
	}
}

func BenchmarkDirectOMP(b *testing.B) {
	rng := xrand.New(7)
	cols := randomDict(rng, 150, 384)
	y := make([]float64, 150)
	rng.FillNormal(y, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OMP(cols, y, 24, 1e-6)
	}
}

func BenchmarkBatchOMPSolve(b *testing.B) {
	rng := xrand.New(7)
	cols := randomDict(rng, 150, 384)
	solver := NewBatchOMP(cols)
	y := make([]float64, 150)
	rng.FillNormal(y, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.Solve(y, 24, 1e-6)
	}
}

func TestBatchOMPSupportBudgetProperty(t *testing.T) {
	// The solution support never exceeds the atom budget, whatever the
	// measurement.
	rng := xrand.New(31)
	cols := randomDict(rng, 20, 50)
	solver := NewBatchOMP(cols)
	f := func(seed int64, budgetRaw uint8) bool {
		budget := int(budgetRaw%12) + 1
		y := make([]float64, 20)
		xrand.New(seed).FillNormal(y, 0, 1)
		theta := solver.Solve(y, budget, 0)
		nz := 0
		for _, v := range theta {
			if v != 0 {
				nz++
			}
		}
		return nz <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
