// Package cs implements the compressive-sensing subsystem of EffiCSense
// (paper Section III): s-sparse random binary measurement matrices
// (s-SRBM), the passive charge-sharing switched-capacitor encoder of
// Fig 5/6 with its analog imperfections (capacitor mismatch, kT/C noise,
// leakage droop), and sparse reconstruction (orthogonal matching pursuit
// in the DCT dictionary).
package cs

import (
	"fmt"

	"efficsense/internal/xrand"
)

// SRBM is an M×N s-sparse random binary matrix: every column holds exactly
// S ones. A one at (i, j) means input sample j is accumulated into
// measurement i. Rows are stored as per-column support lists because the
// encoder walks columns sample by sample.
type SRBM struct {
	M, N, S int
	// Support[j] lists the S row indices with a one in column j, ascending.
	Support [][]int
}

// GenerateSRBM draws an s-SRBM with the given shape from a stream derived
// from seed. Each column's S rows are chosen uniformly without
// replacement. It panics on impossible shapes (s > M, non-positive dims).
func GenerateSRBM(m, n, s int, seed int64) *SRBM {
	if m <= 0 || n <= 0 || s <= 0 || s > m {
		panic(fmt.Sprintf("cs: invalid SRBM shape M=%d N=%d S=%d", m, n, s))
	}
	rng := xrand.Derive(seed, fmt.Sprintf("srbm-%dx%d-s%d", m, n, s))
	mat := &SRBM{M: m, N: n, S: s, Support: make([][]int, n)}
	for j := 0; j < n; j++ {
		mat.Support[j] = rng.Choose(m, s)
	}
	return mat
}

// Validate checks the structural invariants: every column has exactly S
// strictly ascending in-range rows.
func (p *SRBM) Validate() error {
	if len(p.Support) != p.N {
		return fmt.Errorf("cs: SRBM has %d columns, want %d", len(p.Support), p.N)
	}
	for j, rows := range p.Support {
		if len(rows) != p.S {
			return fmt.Errorf("cs: column %d has %d ones, want %d", j, len(rows), p.S)
		}
		prev := -1
		for _, r := range rows {
			if r <= prev || r < 0 || r >= p.M {
				return fmt.Errorf("cs: column %d has invalid row list %v", j, rows)
			}
			prev = r
		}
	}
	return nil
}

// Dense materialises the matrix as M×N {0,1} floats (row-major slices).
func (p *SRBM) Dense() [][]float64 {
	out := make([][]float64, p.M)
	for i := range out {
		out[i] = make([]float64, p.N)
	}
	for j, rows := range p.Support {
		for _, i := range rows {
			out[i][j] = 1
		}
	}
	return out
}

// RowCounts returns how many samples land in each measurement row —
// relevant because the charge-sharing attenuation depends on the number
// of shares into a row.
func (p *SRBM) RowCounts() []int {
	counts := make([]int, p.M)
	for _, rows := range p.Support {
		for _, i := range rows {
			counts[i]++
		}
	}
	return counts
}

// CompressionRatio returns N/M, the data-rate reduction of the encoder.
func (p *SRBM) CompressionRatio() float64 { return float64(p.N) / float64(p.M) }
