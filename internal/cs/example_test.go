package cs_test

import (
	"fmt"

	"efficsense/internal/cs"
)

// ExampleEq1Weights reproduces the paper's Eq (1): repeated charge sharing
// weights the j-th of N sampled voltages by C1/(C1+C2)·(C2/(C1+C2))^(N−j).
func ExampleEq1Weights() {
	for _, w := range cs.Eq1Weights(1, 1, 3) {
		fmt.Printf("%.3f\n", w)
	}
	// Output:
	// 0.125
	// 0.250
	// 0.500
}

// ExampleGenerateSRBM draws a 2-sparse random binary sensing matrix and
// checks its column structure.
func ExampleGenerateSRBM() {
	phi := cs.GenerateSRBM(4, 6, 2, 1)
	fmt.Println(phi.Validate() == nil)
	fmt.Println(len(phi.Support), len(phi.Support[0]))
	fmt.Printf("%.1f\n", phi.CompressionRatio())
	// Output:
	// true
	// 6 2
	// 1.5
}
