package cs

import (
	"fmt"
	"math"

	"efficsense/internal/dsp"
)

// Method selects the reconstruction algorithm. The paper notes that the
// many degrees of freedom of compressive sensing (matrix, architecture,
// *reconstruction*) are exactly what a pathfinding framework must let the
// designer sweep; three standard recoveries are provided.
type Method int

const (
	// MethodOMP is orthogonal matching pursuit in the DCT dictionary (the
	// default, via the Batch-OMP solver).
	MethodOMP Method = iota
	// MethodIHT is iterative hard thresholding in the DCT dictionary —
	// cheaper per iteration, fixed sparsity budget.
	MethodIHT
	// MethodRidge is Tikhonov-regularised least squares directly in the
	// sample domain (no sparsity model) — the classical minimum-energy
	// recovery, a useful non-sparse baseline.
	MethodRidge
	// MethodBOMP is block orthogonal matching pursuit: support grows in
	// contiguous blocks of DCT atoms instead of singletons, exploiting
	// the block-sparse structure of physiological signals whose spectral
	// energy clusters (the BSBL insight of Liu et al., arXiv:1309.7843,
	// applied to a greedy solver). Right for telemonitoring waveforms —
	// ECG in particular — that are not strictly sparse atom by atom.
	MethodBOMP
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodOMP:
		return "omp"
	case MethodIHT:
		return "iht"
	case MethodRidge:
		return "ridge"
	case MethodBOMP:
		return "bomp"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ReconOptions parameterises a reconstructor.
type ReconOptions struct {
	// Method selects the algorithm (default OMP).
	Method Method
	// MaxAtoms bounds the sparse support (OMP/IHT). 0 → M/3.
	MaxAtoms int
	// Tol is the relative residual-energy stop (OMP). <= 0 → 1e-6.
	Tol float64
	// IHTIters is the iteration count for IHT (0 → 40).
	IHTIters int
	// RidgeLambda is the Tikhonov weight relative to the mean diagonal of
	// A·Aᵀ (0 → 0.05).
	RidgeLambda float64
	// BlockLen is the contiguous-atom block size for BOMP (0 → 4).
	BlockLen int
}

// MethodReconstructor recovers frames with a selectable algorithm. It
// wraps the same effective-matrix machinery as Reconstructor.
type MethodReconstructor struct {
	opts ReconOptions
	n, m int
	dct  *dsp.DCT
	// Sparse-domain dictionary (OMP/IHT).
	dict   [][]float64
	solver *BatchOMP
	// IHT step size 1/L with L ≈ the dictionary's largest squared
	// singular value.
	ihtStep float64
	// Ridge: a (M×nPhi) and the Cholesky factor of A·Aᵀ + λI.
	a     [][]float64
	ridge []float64
}

// NewMethodReconstructor precomputes whatever the chosen method needs for
// the given effective measurement matrix.
func NewMethodReconstructor(a [][]float64, nPhi int, opts ReconOptions) *MethodReconstructor {
	m := len(a)
	if m == 0 || len(a[0]) != nPhi {
		panic("cs: effective matrix shape mismatch")
	}
	if opts.MaxAtoms <= 0 {
		opts.MaxAtoms = m / 3
		if opts.MaxAtoms < 4 {
			opts.MaxAtoms = 4
		}
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.IHTIters <= 0 {
		opts.IHTIters = 40
	}
	if opts.RidgeLambda <= 0 {
		opts.RidgeLambda = 0.05
	}
	if opts.BlockLen <= 0 {
		opts.BlockLen = 4
	}
	r := &MethodReconstructor{opts: opts, n: nPhi, m: m, dct: dsp.NewDCT(nPhi), a: a}
	switch opts.Method {
	case MethodOMP, MethodIHT, MethodBOMP:
		dict := make([][]float64, nPhi)
		for k := 0; k < nPhi; k++ {
			psi := r.dct.Column(k)
			col := make([]float64, m)
			for i := 0; i < m; i++ {
				col[i] = dsp.Dot(a[i], psi)
			}
			dict[k] = col
		}
		r.dict = dict
		// BOMP solves its own block least squares on the support; only the
		// singleton-greedy methods need the Batch-OMP Gram machinery.
		if opts.Method != MethodBOMP {
			r.solver = NewBatchOMP(dict)
		}
		if opts.Method == MethodIHT {
			r.ihtStep = 1 / spectralNormSq(r.solver)
		}
	case MethodRidge:
		// G = A·Aᵀ + λ·mean(diag)·I, factored once.
		g := make([]float64, m*m)
		var trace float64
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				dot := dsp.Dot(a[i], a[j])
				g[i*m+j] = dot
				g[j*m+i] = dot
			}
			trace += g[i*m+i]
		}
		lambda := opts.RidgeLambda * trace / float64(m)
		if lambda <= 0 {
			lambda = 1e-12
		}
		for i := 0; i < m; i++ {
			g[i*m+i] += lambda
		}
		l, ok := cholesky(g, m)
		if !ok {
			panic("cs: ridge system not positive definite")
		}
		r.ridge = l
	default:
		panic(fmt.Sprintf("cs: unknown reconstruction method %d", opts.Method))
	}
	return r
}

// spectralNormSq estimates the largest eigenvalue of DᵀD via power
// iteration on the precomputed Gram matrix.
func spectralNormSq(b *BatchOMP) float64 {
	k := b.k
	if k == 0 {
		return 1
	}
	v := make([]float64, k)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(k))
	}
	w := make([]float64, k)
	var lambda float64
	for iter := 0; iter < 30; iter++ {
		for i := 0; i < k; i++ {
			w[i] = dsp.Dot(b.gram[i*k:(i+1)*k], v)
		}
		norm := math.Sqrt(dsp.Energy(w))
		if norm == 0 {
			return 1
		}
		lambda = norm
		for i := range v {
			v[i] = w[i] / norm
		}
	}
	if lambda <= 0 {
		return 1
	}
	return lambda
}

// FrameLen returns N_Φ.
func (r *MethodReconstructor) FrameLen() int { return r.n }

// Measurements returns M.
func (r *MethodReconstructor) Measurements() int { return r.m }

// ReconstructFrame recovers one frame from its M measurements.
func (r *MethodReconstructor) ReconstructFrame(y []float64) []float64 {
	if len(y) != r.m {
		panic("cs: measurement vector length mismatch")
	}
	switch r.opts.Method {
	case MethodOMP:
		return r.dct.Inverse(r.solver.Solve(y, r.opts.MaxAtoms, r.opts.Tol))
	case MethodIHT:
		return r.dct.Inverse(r.iht(y))
	case MethodBOMP:
		return r.dct.Inverse(r.bomp(y))
	default:
		return r.ridgeSolve(y)
	}
}

// bomp runs block orthogonal matching pursuit: the DCT dictionary is cut
// into contiguous blocks of BlockLen atoms, each greedy step admits the
// block with the largest aggregate residual correlation, and the
// coefficients on the grown support are re-fit by least squares before
// the residual is updated — OMP's orthogonalisation at block granularity.
func (r *MethodReconstructor) bomp(y []float64) []float64 {
	blockLen := r.opts.BlockLen
	nBlocks := (r.n + blockLen - 1) / blockLen
	resid := make([]float64, r.m)
	copy(resid, y)
	energy0 := dsp.Energy(y)
	theta := make([]float64, r.n)
	if energy0 == 0 {
		return theta
	}
	selected := make([]bool, nBlocks)
	var support []int
	for len(support) < r.opts.MaxAtoms {
		best, bestScore := -1, 0.0
		for b := 0; b < nBlocks; b++ {
			if selected[b] {
				continue
			}
			var s float64
			for k := b * blockLen; k < (b+1)*blockLen && k < r.n; k++ {
				d := dsp.Dot(r.dict[k], resid)
				s += d * d
			}
			if s > bestScore {
				best, bestScore = b, s
			}
		}
		if best < 0 || bestScore <= 0 {
			break
		}
		selected[best] = true
		for k := best * blockLen; k < (best+1)*blockLen && k < r.n; k++ {
			support = append(support, k)
		}
		// Least squares on the support: (DᵀD + εI)·c = Dᵀy, refactored each
		// step (supports stay small — a handful of blocks).
		p := len(support)
		g := make([]float64, p*p)
		rhs := make([]float64, p)
		for i := 0; i < p; i++ {
			di := r.dict[support[i]]
			for j := i; j < p; j++ {
				dot := dsp.Dot(di, r.dict[support[j]])
				g[i*p+j] = dot
				g[j*p+i] = dot
			}
			g[i*p+i] += 1e-12
			rhs[i] = dsp.Dot(di, y)
		}
		l, ok := cholesky(g, p)
		if !ok {
			break
		}
		c := choleskySolve(l, rhs, p)
		copy(resid, y)
		for i, k := range support {
			ci := c[i]
			if ci == 0 {
				continue
			}
			col := r.dict[k]
			for t := range resid {
				resid[t] -= ci * col[t]
			}
		}
		for k := range theta {
			theta[k] = 0
		}
		for i, k := range support {
			theta[k] = c[i]
		}
		if dsp.Energy(resid) <= r.opts.Tol*energy0 {
			break
		}
	}
	return theta
}

// Reconstruct recovers a concatenated measurement stream.
func (r *MethodReconstructor) Reconstruct(y []float64) []float64 {
	frames := len(y) / r.m
	out := make([]float64, 0, frames*r.n)
	for f := 0; f < frames; f++ {
		out = append(out, r.ReconstructFrame(y[f*r.m:(f+1)*r.m])...)
	}
	return out
}

// iht runs iterative hard thresholding: θ ← H_K(θ + µ·Dᵀ(y − D·θ)).
func (r *MethodReconstructor) iht(y []float64) []float64 {
	theta := make([]float64, r.n)
	resid := make([]float64, r.m)
	grad := make([]float64, r.n)
	for iter := 0; iter < r.opts.IHTIters; iter++ {
		// resid = y - D·theta.
		copy(resid, y)
		for k, c := range theta {
			if c == 0 {
				continue
			}
			col := r.dict[k]
			for i := range resid {
				resid[i] -= c * col[i]
			}
		}
		// grad = Dᵀ·resid.
		for k := range grad {
			grad[k] = dsp.Dot(r.dict[k], resid)
		}
		for k := range theta {
			theta[k] += r.ihtStep * grad[k]
		}
		keepTopKAbs(theta, r.opts.MaxAtoms)
	}
	return theta
}

// keepTopKAbs zeroes all but the k largest-magnitude entries, in place.
func keepTopKAbs(v []float64, k int) {
	if k >= len(v) {
		return
	}
	// Selection by threshold: find the k-th largest magnitude with a
	// simple partial pass (n is a few hundred; O(n·k) is fine and
	// allocation-free in the hot loop is not required here).
	mags := make([]float64, len(v))
	for i, x := range v {
		mags[i] = math.Abs(x)
	}
	thr := kthLargest(mags, k)
	kept := 0
	for i, x := range v {
		if math.Abs(x) >= thr && kept < k {
			kept++
			continue
		}
		v[i] = 0
	}
}

// kthLargest returns the k-th largest value of a (destructive, quickselect).
func kthLargest(a []float64, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	if k > len(a) {
		return math.Inf(-1)
	}
	lo, hi := 0, len(a)-1
	target := k - 1 // index in descending order
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] > p {
				i++
			}
			for a[j] < p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if target <= j {
			hi = j
		} else if target >= i {
			lo = i
		} else {
			break
		}
	}
	return a[target]
}

// ridgeSolve computes x̂ = Aᵀ·(A·Aᵀ + λI)⁻¹·y.
func (r *MethodReconstructor) ridgeSolve(y []float64) []float64 {
	w := choleskySolve(r.ridge, y, r.m)
	out := make([]float64, r.n)
	for i, wi := range w {
		if wi == 0 {
			continue
		}
		row := r.a[i]
		for j := range out {
			out[j] += wi * row[j]
		}
	}
	return out
}
