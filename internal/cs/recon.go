package cs

import (
	"efficsense/internal/dsp"
)

// Reconstructor recovers frames of N_Φ input samples from M charge-sharing
// measurements. It solves y ≈ A·Ψ·θ with OMP, where A is the *nominal*
// effective matrix of the encoder (the designer knows the intended
// capacitor ratio, not the silicon's mismatch realisation) and Ψ the
// orthonormal DCT dictionary in which EEG frames are approximately sparse.
type Reconstructor struct {
	n, m int
	dct  *dsp.DCT
	// dict[k] is column k of D = A·Ψ, length M.
	dict     [][]float64
	solver   *BatchOMP
	maxAtoms int
	tol      float64
}

// NewReconstructor precomputes the D = A·Ψ dictionary for the encoder.
// maxAtoms = 0 picks the default budget M/3 (sub-Nyquist recovery needs
// the support well below M); tol <= 0 selects 1e-6 relative residual.
func NewReconstructor(enc *Encoder, maxAtoms int, tol float64) *Reconstructor {
	n, m := enc.FrameLen(), enc.Measurements()
	if maxAtoms <= 0 {
		maxAtoms = m / 3
		if maxAtoms < 4 {
			maxAtoms = 4
		}
	}
	if tol <= 0 {
		tol = 1e-6
	}
	return newReconstructorFromMatrix(enc.EffectiveMatrix(true), n, maxAtoms, tol)
}

// newReconstructorFromMatrix builds the D = A·Ψ dictionary for any
// effective measurement matrix A (M×nPhi).
func newReconstructorFromMatrix(a [][]float64, nPhi, maxAtoms int, tol float64) *Reconstructor {
	m := len(a)
	if m == 0 || len(a[0]) != nPhi {
		panic("cs: effective matrix shape mismatch")
	}
	if maxAtoms <= 0 {
		maxAtoms = m / 3
		if maxAtoms < 4 {
			maxAtoms = 4
		}
	}
	if tol <= 0 {
		tol = 1e-6
	}
	d := dsp.NewDCT(nPhi)
	dict := make([][]float64, nPhi)
	for k := 0; k < nPhi; k++ {
		psi := d.Column(k)
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = dsp.Dot(a[i], psi)
		}
		dict[k] = col
	}
	return &Reconstructor{
		n: nPhi, m: m, dct: d, dict: dict,
		solver: NewBatchOMP(dict), maxAtoms: maxAtoms, tol: tol,
	}
}

// FrameLen returns N_Φ.
func (r *Reconstructor) FrameLen() int { return r.n }

// Measurements returns M.
func (r *Reconstructor) Measurements() int { return r.m }

// ReconstructFrame recovers one frame from its M measurements.
func (r *Reconstructor) ReconstructFrame(y []float64) []float64 {
	if len(y) != r.m {
		panic("cs: measurement vector length mismatch")
	}
	theta := r.solver.Solve(y, r.maxAtoms, r.tol)
	return r.dct.Inverse(theta)
}

// Reconstruct recovers a concatenated measurement stream (frames·M values)
// into the corresponding frames·N_Φ sample stream.
func (r *Reconstructor) Reconstruct(y []float64) []float64 {
	frames := len(y) / r.m
	out := make([]float64, 0, frames*r.n)
	for f := 0; f < frames; f++ {
		out = append(out, r.ReconstructFrame(y[f*r.m:(f+1)*r.m])...)
	}
	return out
}

// ReconScratch holds the per-goroutine working set of the allocation-free
// reconstruction path: the coefficient vector plus the solver scratch. The
// zero value is ready to use; it grows to the largest geometry seen.
type ReconScratch struct {
	theta []float64
	omp   Scratch
}

// ReconstructInto is Reconstruct against caller-owned storage. dst is
// grown (reallocating only when capacity is exceeded) to frames·N_Φ and
// fully overwritten; the returned slice aliases it. Every frame is solved
// through the same Batch-OMP arithmetic as ReconstructFrame, so results
// are bit-identical to Reconstruct. A single Reconstructor may serve many
// goroutines concurrently as long as each brings its own ReconScratch.
func (r *Reconstructor) ReconstructInto(dst, y []float64, sc *ReconScratch) []float64 {
	frames := len(y) / r.m
	need := frames * r.n
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	if cap(sc.theta) < r.n {
		sc.theta = make([]float64, r.n)
	}
	theta := sc.theta[:r.n]
	for f := 0; f < frames; f++ {
		r.solver.SolveInto(theta, y[f*r.m:(f+1)*r.m], r.maxAtoms, r.tol, &sc.omp)
		r.dct.InverseInto(dst[f*r.n:(f+1)*r.n], theta)
	}
	return dst
}
