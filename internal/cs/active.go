package cs

import (
	"fmt"

	"efficsense/internal/xrand"
)

// ActiveEncoder models the classical *active* analog CS front-end the
// paper positions its passive charge-sharing technique against ([2],
// [10]): one switched-capacitor integrator per measurement row performs
// y_i = Σ_j Φ_ij·x_j exactly (no Eq-1 decay — the OTA's virtual ground
// removes the charge-sharing attenuation), at the cost of OTA noise on
// every accumulation and a finite-gain error.
type ActiveEncoderConfig struct {
	// Phi is the sensing matrix.
	Phi *SRBM
	// OTANoise is the input-referred noise of one integration step (V
	// rms); it accumulates with every addition into a row.
	OTANoise float64
	// GainError is the relative per-step integration loss from finite OTA
	// gain (e.g. 1/A0). Zero is ideal.
	GainError float64
	// Seed fixes the noise stream.
	Seed int64
}

// ActiveEncoder accumulates frames with ideal (OTA-assisted) integration.
type ActiveEncoder struct {
	cfg   ActiveEncoderConfig
	noise *xrand.Source
}

// NewActiveEncoder builds the encoder. It panics without a matrix.
func NewActiveEncoder(cfg ActiveEncoderConfig) *ActiveEncoder {
	if cfg.Phi == nil {
		panic("cs: active encoder requires a sensing matrix")
	}
	return &ActiveEncoder{
		cfg:   cfg,
		noise: xrand.Derive(cfg.Seed, "cs-active-encoder"),
	}
}

// Phi returns the sensing matrix.
func (e *ActiveEncoder) Phi() *SRBM { return e.cfg.Phi }

// FrameLen returns N_Φ.
func (e *ActiveEncoder) FrameLen() int { return e.cfg.Phi.N }

// Measurements returns M.
func (e *ActiveEncoder) Measurements() int { return e.cfg.Phi.M }

// EncodeFrame integrates one frame of exactly N_Φ samples.
func (e *ActiveEncoder) EncodeFrame(x []float64) []float64 {
	n := e.cfg.Phi.N
	if len(x) != n {
		panic(fmt.Sprintf("cs: EncodeFrame needs %d samples, got %d", n, len(x)))
	}
	v := make([]float64, e.cfg.Phi.M)
	keep := 1 - e.cfg.GainError
	for j := 0; j < n; j++ {
		for _, row := range e.cfg.Phi.Support[j] {
			sample := x[j]
			if e.cfg.OTANoise > 0 {
				sample += e.noise.Normal(0, e.cfg.OTANoise)
			}
			v[row] = v[row]*keep + sample
		}
	}
	return v
}

// Encode processes whole frames, dropping a trailing partial frame.
func (e *ActiveEncoder) Encode(x []float64) []float64 {
	n := e.cfg.Phi.N
	frames := len(x) / n
	out := make([]float64, 0, frames*e.cfg.Phi.M)
	for f := 0; f < frames; f++ {
		out = append(out, e.EncodeFrame(x[f*n:(f+1)*n])...)
	}
	return out
}

// EffectiveMatrix returns the linear map of the active encoder: the plain
// {0,1} sensing matrix scaled by the finite-gain survival of each
// contribution (the m-th of k entries in a row decays by keep^(k-m)).
func (e *ActiveEncoder) EffectiveMatrix() [][]float64 {
	m, n := e.cfg.Phi.M, e.cfg.Phi.N
	keep := 1 - e.cfg.GainError
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for _, row := range e.cfg.Phi.Support[j] {
			for jj := 0; jj < j; jj++ {
				a[row][jj] *= keep
			}
			a[row][j] = 1
		}
	}
	return a
}

// DigitalEncode computes the exact digital matrix product y = Φ·x frame by
// frame — what the digital-CS architecture's MAC unit does after the ADC.
// No analog imperfections apply (the samples are already quantised).
func DigitalEncode(phi *SRBM, x []float64) []float64 {
	n := phi.N
	frames := len(x) / n
	out := make([]float64, 0, frames*phi.M)
	for f := 0; f < frames; f++ {
		v := make([]float64, phi.M)
		base := f * n
		for j := 0; j < n; j++ {
			for _, row := range phi.Support[j] {
				v[row] += x[base+j]
			}
		}
		out = append(out, v...)
	}
	return out
}

// NewMatrixReconstructor builds a Reconstructor for an arbitrary effective
// matrix (used by the active and digital CS chains, whose maps are not the
// charge-sharing one).
func NewMatrixReconstructor(a [][]float64, nPhi, maxAtoms int, tol float64) *Reconstructor {
	return newReconstructorFromMatrix(a, nPhi, maxAtoms, tol)
}
