package cs

import (
	"math"
	"testing"
	"testing/quick"

	"efficsense/internal/dsp"
	"efficsense/internal/xrand"
)

func TestGenerateSRBMValid(t *testing.T) {
	for _, m := range []int{75, 150, 192} {
		p := GenerateSRBM(m, 384, 2, 1)
		if err := p.Validate(); err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if p.CompressionRatio() != 384.0/float64(m) {
			t.Fatalf("compression ratio wrong for M=%d", m)
		}
	}
}

func TestGenerateSRBMReproducible(t *testing.T) {
	a := GenerateSRBM(50, 100, 2, 7)
	b := GenerateSRBM(50, 100, 2, 7)
	for j := range a.Support {
		for k := range a.Support[j] {
			if a.Support[j][k] != b.Support[j][k] {
				t.Fatal("same seed should reproduce the matrix")
			}
		}
	}
	c := GenerateSRBM(50, 100, 2, 8)
	diff := false
	for j := range a.Support {
		for k := range a.Support[j] {
			if a.Support[j][k] != c.Support[j][k] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestSRBMDenseConsistent(t *testing.T) {
	p := GenerateSRBM(10, 20, 3, 2)
	d := p.Dense()
	for j := 0; j < p.N; j++ {
		ones := 0
		for i := 0; i < p.M; i++ {
			if d[i][j] == 1 {
				ones++
			}
		}
		if ones != p.S {
			t.Fatalf("dense column %d has %d ones", j, ones)
		}
	}
	counts := p.RowCounts()
	var total int
	for _, c := range counts {
		total += c
	}
	if total != p.N*p.S {
		t.Fatalf("row counts sum %d, want %d", total, p.N*p.S)
	}
}

func TestSRBMValidateCatchesCorruption(t *testing.T) {
	p := GenerateSRBM(10, 20, 2, 3)
	p.Support[5] = []int{3} // wrong sparsity
	if p.Validate() == nil {
		t.Fatal("Validate missed wrong column sparsity")
	}
	p = GenerateSRBM(10, 20, 2, 3)
	p.Support[0] = []int{4, 4} // duplicate
	if p.Validate() == nil {
		t.Fatal("Validate missed duplicate rows")
	}
	p = GenerateSRBM(10, 20, 2, 3)
	p.Support[0] = []int{2, 99} // out of range
	if p.Validate() == nil {
		t.Fatal("Validate missed out-of-range row")
	}
}

func TestGenerateSRBMPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("s > M should panic")
		}
	}()
	GenerateSRBM(2, 10, 3, 1)
}

func idealEncoder(m, n, s int, seed int64) *Encoder {
	return NewEncoder(EncoderConfig{
		Phi:     GenerateSRBM(m, n, s, seed),
		CSample: 1e-13,
		CHold:   1.6e-12,
		Seed:    seed,
	})
}

func TestEq1Weights(t *testing.T) {
	// Two shares with C1 = C2: weights are [0.25, 0.5] (first sample
	// halved twice, second halved once).
	w := Eq1Weights(1, 1, 2)
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Fatalf("Eq1Weights(1,1,2) = %v", w)
	}
	// Weights must sum to a·(1-b^count)/(1-b) < 1.
	w = Eq1Weights(1, 9, 5)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if sum >= 1 {
		t.Fatalf("weights sum %g, want < 1", sum)
	}
}

func TestEncodeFrameMatchesEffectiveMatrix(t *testing.T) {
	// The simulated charge sharing must agree exactly with the derived
	// linear map when noise and leakage are off.
	enc := idealEncoder(12, 48, 2, 5)
	rng := xrand.New(9)
	x := make([]float64, 48)
	rng.FillNormal(x, 0, 1)
	y := enc.EncodeFrame(x)
	a := enc.EffectiveMatrix(false)
	for i := range y {
		want := dsp.Dot(a[i], x)
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("row %d: encoder %g vs matrix %g", i, y[i], want)
		}
	}
}

func TestEffectiveMatrixNominalEqualsActualWithoutMismatch(t *testing.T) {
	enc := idealEncoder(10, 30, 2, 6)
	nom := enc.EffectiveMatrix(true)
	act := enc.EffectiveMatrix(false)
	for i := range nom {
		for j := range nom[i] {
			if math.Abs(nom[i][j]-act[i][j]) > 1e-15 {
				t.Fatal("nominal and actual matrices differ without mismatch")
			}
		}
	}
}

func TestEffectiveMatrixRowWeightsFollowEq1(t *testing.T) {
	// Build a 1×N matrix (every sample shares into the single row) and
	// check against the analytic Eq (1) weights.
	phi := &SRBM{M: 1, N: 6, S: 1, Support: [][]int{{0}, {0}, {0}, {0}, {0}, {0}}}
	enc := NewEncoder(EncoderConfig{Phi: phi, CSample: 1, CHold: 3, Seed: 1})
	a := enc.EffectiveMatrix(true)[0]
	want := Eq1Weights(1, 3, 6)
	for j := range a {
		if math.Abs(a[j]-want[j]) > 1e-12 {
			t.Fatalf("weight %d = %g, want %g", j, a[j], want[j])
		}
	}
}

func TestEncoderMismatchChangesActualMatrix(t *testing.T) {
	enc := NewEncoder(EncoderConfig{
		Phi:                 GenerateSRBM(10, 40, 2, 3),
		CSample:             1e-13,
		CHold:               1.6e-12,
		MismatchSigmaSample: 0.02,
		MismatchSigmaHold:   0.02,
		Seed:                3,
	})
	nom := enc.EffectiveMatrix(true)
	act := enc.EffectiveMatrix(false)
	var maxDiff float64
	for i := range nom {
		for j := range nom[i] {
			if d := math.Abs(nom[i][j] - act[i][j]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff == 0 {
		t.Fatal("mismatch should perturb the actual matrix")
	}
}

func TestEncoderNoiseAddsVariance(t *testing.T) {
	cfg := EncoderConfig{
		Phi:         GenerateSRBM(8, 32, 2, 4),
		CSample:     1e-15, // tiny caps → large kT/C
		CHold:       16e-15,
		Temperature: 300,
		Seed:        4,
	}
	noisy := NewEncoder(cfg)
	cfg.Temperature = 0
	clean := NewEncoder(cfg)
	x := make([]float64, 32)
	yc := clean.EncodeFrame(x)
	yn := noisy.EncodeFrame(x)
	if dsp.RMS(yc) != 0 {
		t.Fatal("clean encoder with zero input should output zeros")
	}
	if dsp.RMS(yn) == 0 {
		t.Fatal("kT/C noise missing")
	}
}

func TestEncoderLeakageDroops(t *testing.T) {
	phi := &SRBM{M: 1, N: 4, S: 1, Support: [][]int{{0}, {0}, {0}, {0}}}
	mk := func(leak float64) float64 {
		enc := NewEncoder(EncoderConfig{
			Phi: phi, CSample: 1e-12, CHold: 1e-12,
			LeakageCurrent: leak, SamplePeriod: 1e-3, Seed: 5,
		})
		return enc.EncodeFrame([]float64{1, 1, 1, 1})[0]
	}
	ideal := mk(0)
	leaky := mk(1e-9) // 1 nA on 1 pF for ms periods: visible droop
	if leaky >= ideal {
		t.Fatalf("leakage should reduce the held value: %g vs %g", leaky, ideal)
	}
}

func TestEncodeStreamShape(t *testing.T) {
	enc := idealEncoder(8, 32, 2, 6)
	y := enc.Encode(make([]float64, 100)) // 3 full frames, 4 dropped
	if len(y) != 3*8 {
		t.Fatalf("stream length %d, want 24", len(y))
	}
}

func TestEncoderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("nil phi", func() { NewEncoder(EncoderConfig{CSample: 1, CHold: 1}) })
	mustPanic("zero caps", func() {
		NewEncoder(EncoderConfig{Phi: GenerateSRBM(2, 4, 1, 1)})
	})
	mustPanic("frame length", func() {
		idealEncoder(4, 16, 2, 1).EncodeFrame(make([]float64, 5))
	})
}

func TestOMPRecoversSparseVector(t *testing.T) {
	// Random 40×100 dictionary, 4-sparse ground truth.
	rng := xrand.New(11)
	const m, k = 40, 100
	cols := make([][]float64, k)
	for j := range cols {
		cols[j] = make([]float64, m)
		rng.FillNormal(cols[j], 0, 1)
	}
	truth := make([]float64, k)
	for _, j := range []int{3, 20, 55, 90} {
		truth[j] = rng.Normal(0, 1) + 2
	}
	y := make([]float64, m)
	for j, c := range truth {
		if c == 0 {
			continue
		}
		for i := range y {
			y[i] += c * cols[j][i]
		}
	}
	got := OMP(cols, y, 10, 1e-10)
	for j := range truth {
		if math.Abs(got[j]-truth[j]) > 1e-6 {
			t.Fatalf("coefficient %d = %g, want %g", j, got[j], truth[j])
		}
	}
}

func TestOMPEdgeCases(t *testing.T) {
	if got := OMP(nil, []float64{1}, 5, 0); len(got) != 0 {
		t.Fatal("empty dictionary")
	}
	cols := [][]float64{{1, 0}, {0, 1}}
	if got := OMP(cols, []float64{0, 0}, 5, 0); got[0] != 0 || got[1] != 0 {
		t.Fatal("zero measurement should give zero solution")
	}
	if got := OMP(cols, []float64{1, 1}, 0, 0); got[0] != 0 {
		t.Fatal("zero atom budget should give zero solution")
	}
}

func TestOMPToleranceStopsEarly(t *testing.T) {
	cols := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	y := []float64{1, 0.001, 0}
	got := OMP(cols, y, 3, 1e-2) // 1e-2 relative energy: stop after atom 1
	nonzero := 0
	for _, v := range got {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("expected early stop with 1 atom, got %d", nonzero)
	}
}

func TestCholeskyKnownSystem(t *testing.T) {
	// [[4,2],[2,3]] x = [8, 7] → x = [1.0, 5/3... ] solve precisely:
	// 4a+2b=8, 2a+3b=7 → a=1.25, b=1.5
	g := []float64{4, 2, 2, 3}
	l, ok := cholesky(g, 2)
	if !ok {
		t.Fatal("PD matrix rejected")
	}
	x := choleskySolve(l, []float64{8, 7}, 2)
	if math.Abs(x[0]-1.25) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Fatalf("solution %v", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	g := []float64{1, 2, 2, 1} // indefinite
	if _, ok := cholesky(g, 2); ok {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestCholeskyProperty(t *testing.T) {
	// A = BᵀB + εI is always PD; Cholesky must solve it accurately.
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		const s = 6
		bmat := make([]float64, s*s)
		for i := range bmat {
			bmat[i] = rng.Normal(0, 1)
		}
		g := make([]float64, s*s)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				var sum float64
				for k := 0; k < s; k++ {
					sum += bmat[k*s+i] * bmat[k*s+j]
				}
				g[i*s+j] = sum
				if i == j {
					g[i*s+j] += 0.1
				}
			}
		}
		rhs := make([]float64, s)
		rng.FillNormal(rhs, 0, 1)
		l, ok := cholesky(g, s)
		if !ok {
			return false
		}
		x := choleskySolve(l, rhs, s)
		// Check G·x = rhs.
		for i := 0; i < s; i++ {
			var sum float64
			for j := 0; j < s; j++ {
				sum += g[i*s+j] * x[j]
			}
			if math.Abs(sum-rhs[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructorRecoversDCTSparseFrame(t *testing.T) {
	// A frame that is exactly 5-sparse in the DCT basis must be recovered
	// nearly perfectly from M=96 of N=192 measurements by an ideal encoder.
	const n, m = 192, 96
	enc := idealEncoder(m, n, 2, 12)
	d := dsp.NewDCT(n)
	coeffs := make([]float64, n)
	coeffs[2] = 1.0
	coeffs[7] = -0.6
	coeffs[15] = 0.4
	coeffs[31] = 0.25
	coeffs[50] = -0.2
	x := d.Inverse(coeffs)
	y := enc.EncodeFrame(x)
	r := NewReconstructor(enc, 20, 1e-12)
	xh := r.ReconstructFrame(y)
	snr := dsp.SNRVersusReference(x, xh)
	if snr < 50 {
		t.Fatalf("sparse frame recovery SNR = %g dB, want > 50", snr)
	}
}

func TestReconstructorDegradesGracefullyWithNoise(t *testing.T) {
	const n, m = 192, 96
	mk := func(temp float64) float64 {
		enc := NewEncoder(EncoderConfig{
			Phi:         GenerateSRBM(m, n, 2, 13),
			CSample:     5e-15,
			CHold:       80e-15,
			Temperature: temp,
			Seed:        13,
		})
		d := dsp.NewDCT(n)
		coeffs := make([]float64, n)
		coeffs[3] = 1e-3 // millivolt scale so kT/C on fF caps matters
		coeffs[11] = -0.5e-3
		x := d.Inverse(coeffs)
		y := enc.EncodeFrame(x)
		r := NewReconstructor(enc, 16, 1e-10)
		return dsp.SNRVersusReference(x, r.ReconstructFrame(y))
	}
	clean := mk(0)
	noisy := mk(300)
	if clean <= noisy {
		t.Fatalf("noise should reduce reconstruction SNR: clean %g vs noisy %g", clean, noisy)
	}
}

func TestReconstructStreamShape(t *testing.T) {
	const n, m = 64, 32
	enc := idealEncoder(m, n, 2, 14)
	r := NewReconstructor(enc, 8, 1e-8)
	y := enc.Encode(make([]float64, 3*n))
	xh := r.Reconstruct(y)
	if len(xh) != 3*n {
		t.Fatalf("reconstructed length %d, want %d", len(xh), 3*n)
	}
	if r.FrameLen() != n || r.Measurements() != m {
		t.Fatal("reconstructor accessors wrong")
	}
}

func TestReconstructorPanicsOnBadLength(t *testing.T) {
	enc := idealEncoder(8, 32, 2, 15)
	r := NewReconstructor(enc, 4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad measurement length should panic")
		}
	}()
	r.ReconstructFrame(make([]float64, 7))
}

func TestSRBMValidityProperty(t *testing.T) {
	f := func(seed int64, mRaw, nRaw, sRaw uint8) bool {
		m := int(mRaw%20) + 2
		n := int(nRaw%40) + 1
		s := int(sRaw)%m + 1
		p := GenerateSRBM(m, n, s, seed)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEq1WeightsSumProperty(t *testing.T) {
	// The Eq (1) weights of a row always sum to 1 - b^count (< 1): charge
	// conservation of the sharing network.
	f := func(c1Raw, c2Raw uint16, countRaw uint8) bool {
		c1 := float64(c1Raw) + 1
		c2 := float64(c2Raw) + 1
		count := int(countRaw)%10 + 1
		w := Eq1Weights(c1, c2, count)
		var sum float64
		for _, x := range w {
			sum += x
		}
		b := c2 / (c1 + c2)
		want := 1 - math.Pow(b, float64(count))
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
