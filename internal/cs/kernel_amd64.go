//go:build amd64 && !purego

package cs

// useAVX gates the assembly kernels: AVX requires both the CPU flag and
// OS support for saving the YMM state (OSXSAVE + XCR0), checked once at
// init via CPUID/XGETBV.
var useAVX = cpuidHasAVX()

// cpuidHasAVX reports whether the CPU and OS support AVX.
func cpuidHasAVX() bool

// updatePass4AVX is the vector body of updatePass4; len(dst) must be a
// positive multiple of 8 and every slice exactly that long.
//
//go:noescape
func updatePass4AVX(dst, in, g0, g1, g2, g3 []float64, c0, c1, c2, c3 float64)

// axpyPairAVX is the vector body of axpyPair; len(p) must be a positive
// multiple of 4 and every slice exactly that long.
//
//go:noescape
func axpyPairAVX(p, d0, d1 []float64, y0, y1 float64)
