package dsp

import (
	"math"
	"testing"

	"efficsense/internal/xrand"
)

func makeSine(n int, freq, fs, amp float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = amp * math.Sin(2*math.Pi*freq*float64(i)/fs)
	}
	return v
}

func TestAnalyzeSineCleanTone(t *testing.T) {
	const fs = 4096.0
	v := makeSine(4096, 131, fs, 1) // prime-ish bin, on-grid
	m := AnalyzeSine(v, fs)
	if math.Abs(m.FundamentalHz-131) > 2 {
		t.Errorf("fundamental = %g, want 131", m.FundamentalHz)
	}
	if m.SNDRdB < 80 {
		t.Errorf("clean tone SNDR = %g dB, want > 80", m.SNDRdB)
	}
}

func TestAnalyzeSineKnownSNR(t *testing.T) {
	const fs = 4096.0
	const n = 16384
	rng := xrand.New(5)
	// Sine amplitude 1 (power 0.5) + white noise sigma such that SNR=40dB.
	sigma := math.Sqrt(0.5 / 1e4)
	v := makeSine(n, 131, fs, 1)
	for i := range v {
		v[i] += rng.Normal(0, sigma)
	}
	m := AnalyzeSine(v, fs)
	if math.Abs(m.SNRdB-40) > 2 {
		t.Errorf("SNR = %g dB, want ~40", m.SNRdB)
	}
	if math.Abs(m.SNDRdB-40) > 2 {
		t.Errorf("SNDR = %g dB, want ~40", m.SNDRdB)
	}
}

func TestAnalyzeSineQuantised(t *testing.T) {
	// An ideal N-bit quantised full-scale sine has SNDR ≈ 6.02N+1.76 dB.
	const fs = 4096.0
	const n = 16384
	for _, bits := range []int{6, 8, 10} {
		steps := math.Pow(2, float64(bits))
		v := makeSine(n, 130.99, fs, 1) // slightly off-bin to decorrelate
		for i := range v {
			v[i] = math.Round(v[i]*steps/2) / (steps / 2)
		}
		m := AnalyzeSine(v, fs)
		want := 6.02*float64(bits) + 1.76
		if math.Abs(m.SNDRdB-want) > 3 {
			t.Errorf("%d-bit quantised SNDR = %g dB, want ~%g", bits, m.SNDRdB, want)
		}
		if math.Abs(m.ENOB-float64(bits)) > 0.5 {
			t.Errorf("%d-bit ENOB = %g", bits, m.ENOB)
		}
	}
}

func TestAnalyzeSineDistortion(t *testing.T) {
	const fs = 4096.0
	const n = 16384
	v := makeSine(n, 131, fs, 1)
	h3 := makeSine(n, 393, fs, 0.01) // 3rd harmonic at -40 dB
	for i := range v {
		v[i] += h3[i]
	}
	m := AnalyzeSine(v, fs)
	if math.Abs(m.THDdB+40) > 2 {
		t.Errorf("THD = %g dB, want ~-40", m.THDdB)
	}
	// SNDR should be ~40 dB (distortion dominated), SNR much higher.
	if math.Abs(m.SNDRdB-40) > 2 {
		t.Errorf("SNDR = %g dB, want ~40", m.SNDRdB)
	}
	if m.SNRdB < 60 {
		t.Errorf("SNR = %g dB, want > 60", m.SNRdB)
	}
}

func TestAnalyzeSineShortInput(t *testing.T) {
	m := AnalyzeSine(make([]float64, 4), 1000)
	if m.SignalPower != 0 {
		t.Fatal("short input should return zero metrics")
	}
}

func TestSNRVersusReference(t *testing.T) {
	rng := xrand.New(11)
	ref := make([]float64, 4096)
	rng.FillNormal(ref, 0, 1)
	// out = 3·ref + noise at -30 dB relative to ref: gain must be removed.
	out := make([]float64, len(ref))
	sigma := math.Sqrt(1e-3)
	for i := range out {
		out[i] = 3*ref[i] + 3*rng.Normal(0, sigma)
	}
	got := SNRVersusReference(ref, out)
	if math.Abs(got-30) > 1.5 {
		t.Fatalf("SNR vs reference = %g dB, want ~30", got)
	}
}

func TestSNRVersusReferencePerfect(t *testing.T) {
	ref := makeSine(1000, 5, 1000, 1)
	got := SNRVersusReference(ref, Scale(Clone(ref), 0.25))
	if !math.IsInf(got, 1) && got < 200 {
		t.Fatalf("scaled copy SNR = %g, want ~infinite", got)
	}
}

func TestNMSEGainInvariant(t *testing.T) {
	ref := makeSine(2048, 7, 1000, 1)
	a := NMSE(ref, Scale(Clone(ref), 10))
	if a > 1e-20 {
		t.Fatalf("NMSE of scaled copy = %g, want 0", a)
	}
}

func TestNMSEWorsensWithNoise(t *testing.T) {
	rng := xrand.New(13)
	ref := makeSine(2048, 7, 1000, 1)
	small := Clone(ref)
	big := Clone(ref)
	for i := range ref {
		small[i] += rng.Normal(0, 0.01)
		big[i] += rng.Normal(0, 0.1)
	}
	if NMSE(ref, small) >= NMSE(ref, big) {
		t.Fatal("NMSE should increase with noise")
	}
}

func TestCrossCorrelation(t *testing.T) {
	a := makeSine(1000, 3, 1000, 1)
	if got := CrossCorrelation(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self-correlation = %g", got)
	}
	if got := CrossCorrelation(a, Scale(Clone(a), -2)); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti-correlation = %g", got)
	}
	b := makeSine(1000, 6, 1000, 1) // orthogonal harmonic
	if got := CrossCorrelation(a, b); math.Abs(got) > 0.01 {
		t.Errorf("orthogonal correlation = %g", got)
	}
}
