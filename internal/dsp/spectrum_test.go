package dsp

import (
	"math"
	"testing"

	"efficsense/internal/xrand"
)

func TestWelchParseval(t *testing.T) {
	rng := xrand.New(21)
	v := make([]float64, 8192)
	rng.FillNormal(v, 0, 2) // power 4
	psd := Welch(v, 1000, 512)
	total := psd.TotalPower()
	if math.Abs(total-4) > 0.4 {
		t.Fatalf("Welch total power = %g, want ~4", total)
	}
}

func TestWelchTonePosition(t *testing.T) {
	const fs = 1024.0
	v := makeSine(8192, 100, fs, 1)
	psd := Welch(v, fs, 1024)
	_, idx := Peak(psd.Density)
	if math.Abs(psd.Freqs[idx]-100) > 2*psd.BinWidth {
		t.Fatalf("tone found at %g Hz, want 100", psd.Freqs[idx])
	}
	// The tone's power (0.5) should land in a narrow band around 100 Hz.
	band := psd.BandPower(90, 110)
	if math.Abs(band-0.5) > 0.05 {
		t.Fatalf("band power = %g, want ~0.5", band)
	}
}

func TestWelchEmpty(t *testing.T) {
	psd := Welch(nil, 1000, 256)
	if psd.TotalPower() != 0 {
		t.Fatal("empty input should give zero PSD")
	}
}

func TestWelchShortInput(t *testing.T) {
	v := makeSine(100, 10, 100, 1)
	psd := Welch(v, 100, 256)
	if len(psd.Density) == 0 {
		t.Fatal("short input should still produce a PSD")
	}
}

func TestBandPowerSplit(t *testing.T) {
	const fs = 1024.0
	v := makeSine(16384, 50, fs, 1)
	hi := makeSine(16384, 300, fs, 0.5)
	for i := range v {
		v[i] += hi[i]
	}
	lo := BandPower(v, fs, 20, 80)
	high := BandPower(v, fs, 270, 330)
	if math.Abs(lo-0.5) > 0.05 {
		t.Errorf("low band power = %g, want 0.5", lo)
	}
	if math.Abs(high-0.125) > 0.02 {
		t.Errorf("high band power = %g, want 0.125", high)
	}
}

func TestMedianFrequency(t *testing.T) {
	const fs = 1024.0
	// Two equal tones at 50 and 200: median frequency between them.
	v := makeSine(16384, 50, fs, 1)
	b := makeSine(16384, 200, fs, 1)
	for i := range v {
		v[i] += b[i]
	}
	psd := Welch(v, fs, 1024)
	mf := psd.MedianFrequency()
	if mf < 45 || mf > 205 {
		t.Fatalf("median frequency = %g, want between the tones", mf)
	}
}

func TestSpectralEdge(t *testing.T) {
	const fs = 1024.0
	v := makeSine(16384, 100, fs, 1)
	psd := Welch(v, fs, 1024)
	edge := psd.SpectralEdge(0.95)
	if edge < 90 || edge > 120 {
		t.Fatalf("95%% spectral edge = %g, want ~100", edge)
	}
	if got := psd.SpectralEdge(0); got > psd.Freqs[len(psd.Freqs)-1] {
		t.Fatalf("edge(0) = %g out of range", got)
	}
}
