package dsp

import (
	"math"
	"testing"

	"efficsense/internal/xrand"
)

// toneRMSGain measures the amplitude gain of a filter at the given
// frequency by filtering a long sine and comparing steady-state RMS.
func toneRMSGain(apply func([]float64) []float64, freq, fs float64) float64 {
	n := 8192
	in := make([]float64, n)
	for i := range in {
		in[i] = math.Sin(2 * math.Pi * freq * float64(i) / fs)
	}
	out := apply(in)
	// Skip the transient half.
	return RMS(out[n/2:]) / RMS(in[n/2:])
}

func TestLowpassFIRResponse(t *testing.T) {
	const fs = 4096.0
	fir := LowpassFIR(256, fs, 101)
	pass := toneRMSGain(fir.Apply, 50, fs)
	cut := toneRMSGain(fir.Apply, 256, fs)
	stop := toneRMSGain(fir.Apply, 1024, fs)
	if math.Abs(pass-1) > 0.02 {
		t.Errorf("passband gain = %g, want ~1", pass)
	}
	if cut < 0.3 || cut > 0.8 {
		t.Errorf("cutoff gain = %g, want ~0.5", cut)
	}
	if stop > 0.01 {
		t.Errorf("stopband gain = %g, want < 0.01", stop)
	}
}

func TestLowpassFIRDCGain(t *testing.T) {
	fir := LowpassFIR(100, 1000, 51)
	var sum float64
	for _, tap := range fir.Taps {
		sum += tap
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("DC gain = %g, want 1", sum)
	}
}

func TestLowpassFIROddTaps(t *testing.T) {
	if got := len(LowpassFIR(10, 100, 10).Taps); got%2 != 1 {
		t.Fatalf("tap count %d, want odd", got)
	}
	if got := len(LowpassFIR(10, 100, 1).Taps); got < 3 {
		t.Fatalf("tap count %d, want >= 3", got)
	}
}

func TestBandpassFIRResponse(t *testing.T) {
	const fs = 4096.0
	bp := BandpassFIR(100, 400, fs, 201)
	low := toneRMSGain(bp.Apply, 10, fs)
	mid := toneRMSGain(bp.Apply, 250, fs)
	high := toneRMSGain(bp.Apply, 1500, fs)
	if mid < 0.9 {
		t.Errorf("in-band gain = %g, want ~1", mid)
	}
	if low > 0.05 || high > 0.05 {
		t.Errorf("out-of-band gain = %g / %g, want < 0.05", low, high)
	}
}

func TestFIRDelayCompensated(t *testing.T) {
	// A delta through the centered filter should peak at the same index.
	fir := LowpassFIR(200, 1000, 31)
	in := make([]float64, 101)
	in[50] = 1
	out := fir.Apply(in)
	_, idx := Peak(out)
	if idx != 50 {
		t.Fatalf("impulse peak moved to %d, want 50", idx)
	}
}

func TestButterworthLPResponse(t *testing.T) {
	const fs = 4096.0
	mk := func() func([]float64) []float64 { return NewButterworthLP(256, fs).Apply }
	pass := toneRMSGain(mk(), 20, fs)
	cut := toneRMSGain(mk(), 256, fs)
	stop := toneRMSGain(mk(), 2000, fs)
	if math.Abs(pass-1) > 0.02 {
		t.Errorf("passband gain = %g", pass)
	}
	if math.Abs(cut-math.Sqrt2/2) > 0.05 {
		t.Errorf("cutoff gain = %g, want ~0.707", cut)
	}
	if stop > 0.03 {
		t.Errorf("stopband gain = %g", stop)
	}
}

func TestButterworthHPResponse(t *testing.T) {
	const fs = 4096.0
	mk := func() func([]float64) []float64 { return NewButterworthHP(256, fs).Apply }
	stop := toneRMSGain(mk(), 20, fs)
	pass := toneRMSGain(mk(), 1500, fs)
	if pass < 0.95 {
		t.Errorf("passband gain = %g", pass)
	}
	if stop > 0.03 {
		t.Errorf("stopband gain = %g", stop)
	}
}

func TestBiquadReset(t *testing.T) {
	b := NewButterworthLP(100, 1000)
	b.Step(1)
	b.Step(1)
	b.Reset()
	first := b.Step(1)
	b2 := NewButterworthLP(100, 1000)
	if got := b2.Step(1); got != first {
		t.Fatalf("Reset did not restore initial state: %g vs %g", first, got)
	}
}

func TestOnePoleCutoff(t *testing.T) {
	const fs = 8192.0
	mk := func() func([]float64) []float64 { return NewOnePoleLP(256, fs).Apply }
	pass := toneRMSGain(mk(), 10, fs)
	cut := toneRMSGain(mk(), 256, fs)
	if math.Abs(pass-1) > 0.02 {
		t.Errorf("one-pole passband gain = %g", pass)
	}
	// One-pole -3 dB point: gain ~0.707 (tolerant: matched-z approximation).
	if cut < 0.6 || cut > 0.8 {
		t.Errorf("one-pole cutoff gain = %g, want ~0.707", cut)
	}
}

func TestOnePoleStepResponseMonotone(t *testing.T) {
	p := NewOnePoleLP(100, 10000)
	prev := 0.0
	for i := 0; i < 200; i++ {
		y := p.Step(1)
		if y < prev-1e-12 {
			t.Fatalf("step response not monotone at %d", i)
		}
		prev = y
	}
	if prev < 0.5 {
		t.Fatalf("step response did not settle: %g", prev)
	}
}

func TestFiltersPreserveLength(t *testing.T) {
	rng := xrand.New(9)
	v := make([]float64, 777)
	rng.FillNormal(v, 0, 1)
	if got := len(LowpassFIR(50, 1000, 41).Apply(v)); got != len(v) {
		t.Errorf("FIR output length %d", got)
	}
	if got := len(NewButterworthLP(50, 1000).Apply(v)); got != len(v) {
		t.Errorf("biquad output length %d", got)
	}
	if got := len(NewOnePoleLP(50, 1000).Apply(v)); got != len(v) {
		t.Errorf("one-pole output length %d", got)
	}
}
