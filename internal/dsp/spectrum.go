package dsp

import "math"

// PSD is a one-sided power spectral density estimate.
type PSD struct {
	// Freqs holds the bin center frequencies (Hz).
	Freqs []float64
	// Density holds the PSD values (signal-units²/Hz).
	Density []float64
	// BinWidth is the frequency resolution (Hz).
	BinWidth float64
}

// Welch estimates the one-sided PSD of v sampled at sampleRate using
// Welch's method: Hann-windowed segments of length segLen (rounded up to a
// power of two) with 50 % overlap. Parseval holds: integrating the density
// over frequency recovers the signal power.
func Welch(v []float64, sampleRate float64, segLen int) PSD {
	if len(v) == 0 || sampleRate <= 0 {
		return PSD{}
	}
	n := NextPow2(segLen)
	if n > len(v) {
		n = NextPow2(len(v)) / 2
		if n < 2 {
			n = 2
		}
	}
	if n > len(v) {
		n = len(v) // tiny input: single rectangular-ish segment
	}
	win := Hann(n)
	var winPower float64
	for _, w := range win {
		winPower += w * w
	}
	hop := n / 2
	if hop == 0 {
		hop = 1
	}
	m := n/2 + 1
	acc := make([]float64, m)
	segments := 0
	buf := make([]complex128, NextPow2(n))
	for start := 0; start+n <= len(v); start += hop {
		for i := range buf {
			buf[i] = 0
		}
		for i := 0; i < n; i++ {
			buf[i] = complex(v[start+i]*win[i], 0)
		}
		FFT(buf)
		scale := 1 / (sampleRate * winPower)
		for k := 0; k < m; k++ {
			re, im := real(buf[k]), imag(buf[k])
			p := (re*re + im*im) * scale
			if k != 0 && k != len(buf)/2 {
				p *= 2 // fold negative frequencies
			}
			acc[k] += p
		}
		segments++
	}
	if segments == 0 {
		return PSD{}
	}
	binW := sampleRate / float64(NextPow2(n))
	freqs := make([]float64, m)
	for k := range freqs {
		freqs[k] = float64(k) * binW
		acc[k] /= float64(segments)
	}
	return PSD{Freqs: freqs, Density: acc, BinWidth: binW}
}

// BandPower integrates the PSD between lo and hi Hz (inclusive).
func (p PSD) BandPower(lo, hi float64) float64 {
	var sum float64
	for i, f := range p.Freqs {
		if f >= lo && f <= hi {
			sum += p.Density[i] * p.BinWidth
		}
	}
	return sum
}

// TotalPower integrates the full PSD.
func (p PSD) TotalPower() float64 {
	if len(p.Freqs) == 0 {
		return 0
	}
	return p.BandPower(0, p.Freqs[len(p.Freqs)-1])
}

// BandPower computes the power of v (sampled at sampleRate) in [lo, hi] Hz
// directly via a Welch estimate with a default segment length.
func BandPower(v []float64, sampleRate, lo, hi float64) float64 {
	seg := 256
	if len(v) < seg {
		seg = len(v)
	}
	return Welch(v, sampleRate, seg).BandPower(lo, hi)
}

// MedianFrequency returns the frequency below which half the spectral
// power of the PSD lies, a classic EEG feature.
func (p PSD) MedianFrequency() float64 {
	total := p.TotalPower()
	if total == 0 {
		return 0
	}
	var cum float64
	for i, d := range p.Density {
		cum += d * p.BinWidth
		if cum >= total/2 {
			return p.Freqs[i]
		}
	}
	return p.Freqs[len(p.Freqs)-1]
}

// SpectralEdge returns the frequency below which frac (0..1) of the power
// lies.
func (p PSD) SpectralEdge(frac float64) float64 {
	total := p.TotalPower()
	if total == 0 || len(p.Freqs) == 0 {
		return 0
	}
	target := math.Min(math.Max(frac, 0), 1) * total
	var cum float64
	for i, d := range p.Density {
		cum += d * p.BinWidth
		if cum >= target {
			return p.Freqs[i]
		}
	}
	return p.Freqs[len(p.Freqs)-1]
}
