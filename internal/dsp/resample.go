package dsp

import "math"

// Resample converts v from srcRate to dstRate using windowed-sinc
// interpolation (Hann-windowed, 16 taps per side). This implements the
// paper's Step 4 upsampling of the 173.61 Hz EEG records to 512 Hz to
// mimic a continuous-time signal. Downsampling first applies an
// anti-aliasing lowpass at 0.45·dstRate.
func Resample(v []float64, srcRate, dstRate float64) []float64 {
	if len(v) == 0 || srcRate <= 0 || dstRate <= 0 {
		return nil
	}
	if srcRate == dstRate {
		return Clone(v)
	}
	src := v
	if dstRate < srcRate {
		fir := LowpassFIR(0.45*dstRate, srcRate, 63)
		src = fir.Apply(v)
	}
	ratio := srcRate / dstRate
	// Multiply before dividing: (n-1)/ratio loses a sample when the
	// exact span is an integer but src/dst is not representable (e.g.
	// 225 samples at 150→136 Hz spans exactly 204 steps, yet
	// 225/(150/136) rounds to 203.999…).
	outLen := int(math.Floor(float64(len(v)-1)*dstRate/srcRate)) + 1
	out := make([]float64, outLen)
	const halfTaps = 16
	for i := range out {
		t := float64(i) * ratio // fractional source index
		c := int(math.Floor(t))
		var acc, wsum float64
		for k := c - halfTaps + 1; k <= c+halfTaps; k++ {
			if k < 0 || k >= len(src) {
				continue
			}
			d := t - float64(k)
			w := sincHann(d, halfTaps)
			acc += src[k] * w
			wsum += w
		}
		if wsum != 0 {
			acc /= wsum
		}
		out[i] = acc
	}
	return out
}

// sincHann is a Hann-windowed sinc kernel with support |d| < half.
func sincHann(d float64, half int) float64 {
	ad := math.Abs(d)
	if ad >= float64(half) {
		return 0
	}
	s := 1.0
	if d != 0 {
		s = math.Sin(math.Pi*d) / (math.Pi * d)
	}
	w := 0.5 * (1 + math.Cos(math.Pi*ad/float64(half)))
	return s * w
}

// Decimate keeps every k-th sample of v starting at offset 0, without
// filtering (the caller is responsible for bandwidth). Used by the
// sample-and-hold model where the analog chain runs on an oversampled
// "continuous-time" grid and the ADC picks instants off it.
func Decimate(v []float64, k int) []float64 {
	if k <= 0 {
		panic("dsp: Decimate factor must be positive")
	}
	out := make([]float64, 0, len(v)/k+1)
	for i := 0; i < len(v); i += k {
		out = append(out, v[i])
	}
	return out
}

// HoldInterp expands a sampled sequence back to length n by zero-order
// hold with factor k (inverse companion of Decimate for visualisation).
func HoldInterp(v []float64, k, n int) []float64 {
	if k <= 0 {
		panic("dsp: HoldInterp factor must be positive")
	}
	out := make([]float64, n)
	for i := range out {
		j := i / k
		if j >= len(v) {
			j = len(v) - 1
		}
		if j >= 0 {
			out[i] = v[j]
		}
	}
	return out
}
