package dsp

import "math"

// SineMetrics summarises the spectral quality of a digitised sine wave.
type SineMetrics struct {
	// FundamentalHz is the detected fundamental frequency (Hz).
	FundamentalHz float64
	// SignalPower is the power attributed to the fundamental.
	SignalPower float64
	// NoisePower is everything that is neither fundamental, DC, nor a
	// counted harmonic.
	NoisePower float64
	// DistortionPower is the power in harmonics 2..H.
	DistortionPower float64
	// SNRdB, SNDRdB, THDdB are the derived decibel figures.
	SNRdB  float64
	SNDRdB float64
	THDdB  float64
	// ENOB is the effective number of bits implied by SNDRdB.
	ENOB float64
}

// AnalyzeSine estimates SNR/SNDR/THD of v (sampled at sampleRate) that is
// expected to contain a single dominant tone. A Blackman-Harris window
// suppresses leakage; energy within ±spread bins of the fundamental (and
// of each of the first 5 harmonics) is attributed to signal (distortion),
// the rest to noise. This mirrors the standard ADC test procedure used to
// produce figures like the paper's Fig 4 SNDR curve.
func AnalyzeSine(v []float64, sampleRate float64) SineMetrics {
	n := len(v)
	if n < 16 {
		return SineMetrics{}
	}
	work := Clone(v)
	RemoveMean(work)
	win := BlackmanHarris(n)
	spec := MagnitudeSpectrum(work, win)
	nBins := len(spec)
	power := make([]float64, nBins)
	for k, m := range spec {
		power[k] = m * m / 2 // amplitude → power of a sine
	}
	power[0] = 0 // DC removed
	// Locate the fundamental (skip the first couple of bins: residual DC).
	peakIdx := 2
	for k := 3; k < nBins; k++ {
		if power[k] > power[peakIdx] {
			peakIdx = k
		}
	}
	fftLen := NextPow2(n)
	binHz := sampleRate / float64(fftLen)
	const spread = 8 // Blackman-Harris main-lobe half-width in bins (generous)
	sumAround := func(center int) float64 {
		var s float64
		for k := center - spread; k <= center+spread; k++ {
			if k >= 1 && k < nBins {
				s += power[k]
				power[k] = 0
			}
		}
		return s
	}
	sig := sumAround(peakIdx)
	var dist float64
	for h := 2; h <= 6; h++ {
		c := peakIdx * h
		// Alias harmonics that fold back.
		c = c % (2 * (fftLen / 2))
		if c > fftLen/2 {
			c = fftLen - c
		}
		if c >= 1 && c < nBins {
			dist += sumAround(c)
		}
	}
	var noise float64
	for k := 1; k < nBins; k++ {
		noise += power[k]
	}
	m := SineMetrics{
		FundamentalHz:   float64(peakIdx) * binHz,
		SignalPower:     sig,
		NoisePower:      noise,
		DistortionPower: dist,
	}
	m.SNRdB = ratioDB(sig, noise)
	m.SNDRdB = ratioDB(sig, noise+dist)
	m.THDdB = ratioDB(dist, sig)
	m.ENOB = (m.SNDRdB - 1.76) / 6.02
	return m
}

func ratioDB(num, den float64) float64 {
	if den <= 0 {
		if num <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	if num <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(num/den)
}

// SNRVersusReference computes the signal-to-noise-and-distortion ratio in
// dB between a reference waveform and a processed one: a least-squares
// gain aligns the two (the chain gain is irrelevant), then
// SNR = P(ref) / P(ref - g·out). Both slices must have equal length
// (extra tail samples on either side are ignored). This is the goal
// function used for Fig 7 a).
func SNRVersusReference(ref, out []float64) float64 {
	n := len(ref)
	if len(out) < n {
		n = len(out)
	}
	if n == 0 {
		return 0
	}
	r := ref[:n]
	o := out[:n]
	g := LeastSquaresGain(r, o)
	var errP, sigP float64
	for i := 0; i < n; i++ {
		d := r[i] - g*o[i]
		errP += d * d
		sigP += r[i] * r[i]
	}
	return ratioDB(sigP, errP)
}

// NMSE returns the normalised mean-squared error between ref and out after
// least-squares gain alignment (linear, not dB). 0 = perfect.
func NMSE(ref, out []float64) float64 {
	n := len(ref)
	if len(out) < n {
		n = len(out)
	}
	if n == 0 {
		return 0
	}
	r, o := ref[:n], out[:n]
	g := LeastSquaresGain(r, o)
	var errP, sigP float64
	for i := 0; i < n; i++ {
		d := r[i] - g*o[i]
		errP += d * d
		sigP += r[i] * r[i]
	}
	if sigP == 0 {
		return 0
	}
	return errP / sigP
}

// CrossCorrelation returns the normalised correlation coefficient between
// a and b (|ρ| ≤ 1).
func CrossCorrelation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	am, bm := Mean(a[:n]), Mean(b[:n])
	var num, da, db float64
	for i := 0; i < n; i++ {
		x, y := a[i]-am, b[i]-bm
		num += x * y
		da += x * x
		db += y * y
	}
	den := math.Sqrt(da * db)
	if den == 0 {
		return 0
	}
	return num / den
}
