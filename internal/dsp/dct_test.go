package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"efficsense/internal/xrand"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{1, 2, 16, 384} {
		d := NewDCT(n)
		x := make([]float64, n)
		rng.FillNormal(x, 0, 1)
		y := d.Inverse(d.Forward(x))
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip error at %d: %g vs %g", n, i, x[i], y[i])
			}
		}
	}
}

func TestDCTOrthonormal(t *testing.T) {
	d := NewDCT(32)
	for i := 0; i < 32; i++ {
		for j := i; j < 32; j++ {
			got := Dot(d.Basis(i), d.Basis(j))
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("<b%d, b%d> = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestDCTParsevalProperty(t *testing.T) {
	d := NewDCT(64)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		x := make([]float64, 64)
		rng.FillNormal(x, 0, 1)
		c := d.Forward(x)
		return math.Abs(Energy(x)-Energy(c)) < 1e-8*Energy(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTSparseCosine(t *testing.T) {
	// A pure basis-aligned cosine transforms to (almost) a single coefficient.
	const n = 128
	d := NewDCT(n)
	x := d.Basis(5)
	c := d.Forward(x)
	if math.Abs(c[5]-1) > 1e-9 {
		t.Fatalf("c[5] = %g, want 1", c[5])
	}
	for k, v := range c {
		if k != 5 && math.Abs(v) > 1e-9 {
			t.Fatalf("leakage at coefficient %d: %g", k, v)
		}
	}
}

func TestDCTCached(t *testing.T) {
	if NewDCT(48) != NewDCT(48) {
		t.Fatal("DCT instances should be cached per length")
	}
}

func TestDCTPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("NewDCT(0)", func() { NewDCT(0) })
	mustPanic("Forward mismatch", func() { NewDCT(4).Forward(make([]float64, 5)) })
	mustPanic("Inverse mismatch", func() { NewDCT(4).Inverse(make([]float64, 3)) })
	mustPanic("Basis range", func() { NewDCT(4).Basis(4) })
}
