package dsp

import (
	"math"
	"sync"
)

// DCT implements the orthonormal DCT-II and its inverse (DCT-III) for a
// fixed length N. EEG windows are approximately sparse in this basis; the
// compressive-sensing reconstructor (internal/cs) uses it as the sparsity
// dictionary Ψ. Cosine tables are precomputed once per length, so a DCT
// value is cheap to share across goroutines (all methods are read-only
// after construction).
type DCT struct {
	n     int
	table [][]float64 // table[k][i] = basis k evaluated at sample i
}

var (
	dctCacheMu sync.Mutex
	dctCache   = map[int]*DCT{}
)

// NewDCT returns a DCT transformer for length n (n >= 1). Instances are
// cached per length because the table is O(n²).
func NewDCT(n int) *DCT {
	if n < 1 {
		panic("dsp: DCT length must be >= 1")
	}
	dctCacheMu.Lock()
	defer dctCacheMu.Unlock()
	if d, ok := dctCache[n]; ok {
		return d
	}
	d := &DCT{n: n, table: make([][]float64, n)}
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for k := 0; k < n; k++ {
		row := make([]float64, n)
		s := scale
		if k == 0 {
			s = scale0
		}
		for i := 0; i < n; i++ {
			row[i] = s * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		d.table[k] = row
	}
	dctCache[n] = d
	return d
}

// N returns the transform length.
func (d *DCT) N() int { return d.n }

// Forward computes the orthonormal DCT-II coefficients of x
// (len(x) == N, panic otherwise).
func (d *DCT) Forward(x []float64) []float64 {
	if len(x) != d.n {
		panic("dsp: DCT Forward length mismatch")
	}
	out := make([]float64, d.n)
	for k := 0; k < d.n; k++ {
		out[k] = Dot(d.table[k], x)
	}
	return out
}

// Inverse reconstructs the signal from orthonormal DCT-II coefficients
// (exact inverse of Forward).
func (d *DCT) Inverse(c []float64) []float64 {
	if len(c) != d.n {
		panic("dsp: DCT Inverse length mismatch")
	}
	out := make([]float64, d.n)
	for k, ck := range c {
		if ck == 0 {
			continue
		}
		row := d.table[k]
		for i := range out {
			out[i] += ck * row[i]
		}
	}
	return out
}

// InverseInto is Inverse against caller-owned storage: dst (length N) is
// fully overwritten with the reconstruction. Coefficients are applied in
// the same ascending-k order as Inverse, so the result is bit-identical.
func (d *DCT) InverseInto(dst, c []float64) []float64 {
	if len(c) != d.n || len(dst) != d.n {
		panic("dsp: DCT InverseInto length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	// Apply four nonzero coefficients per pass: each element still
	// accumulates its terms in ascending-k order (bit-identical to
	// one-by-one application) while dst is loaded and stored 4× less
	// often. The sparse solver leaves only a few dozen nonzeros, so the
	// gather is cheap relative to the N-length passes it batches.
	var idx [4]int
	cnt := 0
	for k, ck := range c {
		if ck == 0 {
			continue
		}
		idx[cnt] = k
		cnt++
		if cnt < 4 {
			continue
		}
		cnt = 0
		r0, r1 := d.table[idx[0]], d.table[idx[1]]
		r2, r3 := d.table[idx[2]], d.table[idx[3]]
		c0, c1, c2, c3 := c[idx[0]], c[idx[1]], c[idx[2]], c[idx[3]]
		r0, r1, r2, r3 = r0[:len(dst)], r1[:len(dst)], r2[:len(dst)], r3[:len(dst)]
		for i := range dst {
			dst[i] = (((dst[i] + c0*r0[i]) + c1*r1[i]) + c2*r2[i]) + c3*r3[i]
		}
	}
	for t := 0; t < cnt; t++ {
		row := d.table[idx[t]]
		ck := c[idx[t]]
		row = row[:len(dst)]
		for i := range dst {
			dst[i] += ck * row[i]
		}
	}
	return dst
}

// Basis returns the k-th orthonormal basis vector (a copy).
func (d *DCT) Basis(k int) []float64 {
	if k < 0 || k >= d.n {
		panic("dsp: DCT basis index out of range")
	}
	return Clone(d.table[k])
}

// Column returns, without copying, the k-th basis row for read-only use by
// hot loops (the CS reconstructor). Mutating the result corrupts the cache.
func (d *DCT) Column(k int) []float64 { return d.table[k] }
