package dsp

import "math"

// FIR is a finite-impulse-response filter described by its taps.
type FIR struct {
	Taps []float64
}

// LowpassFIR designs a windowed-sinc lowpass FIR with the given cutoff
// (Hz), sample rate (Hz) and tap count (made odd for a symmetric,
// linear-phase design). A Hamming window shapes the sinc.
func LowpassFIR(cutoff, sampleRate float64, taps int) *FIR {
	if taps < 3 {
		taps = 3
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoff / sampleRate // normalised cutoff (cycles/sample)
	if fc > 0.5 {
		fc = 0.5
	}
	h := make([]float64, taps)
	mid := (taps - 1) / 2
	w := Hamming(taps)
	var sum float64
	for i := range h {
		m := float64(i - mid)
		var s float64
		if m == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*m) / (math.Pi * m)
		}
		h[i] = s * w[i]
		sum += h[i]
	}
	// Normalise to unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return &FIR{Taps: h}
}

// BandpassFIR designs a windowed-sinc bandpass FIR between lo and hi Hz.
func BandpassFIR(lo, hi, sampleRate float64, taps int) *FIR {
	lp := LowpassFIR(hi, sampleRate, taps)
	lpLo := LowpassFIR(lo, sampleRate, len(lp.Taps))
	h := make([]float64, len(lp.Taps))
	for i := range h {
		h[i] = lp.Taps[i] - lpLo.Taps[i]
	}
	return &FIR{Taps: h}
}

// Apply convolves v with the filter, compensating the group delay so the
// output is time-aligned with the input (same length, edges zero-padded).
func (f *FIR) Apply(v []float64) []float64 {
	n := len(v)
	taps := f.Taps
	delay := (len(taps) - 1) / 2
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		// Output sample i uses inputs around i (centered kernel).
		for k, t := range taps {
			j := i + delay - k
			if j >= 0 && j < n {
				acc += t * v[j]
			}
		}
		out[i] = acc
	}
	return out
}

// Biquad is a single second-order IIR section in direct form II transposed.
type Biquad struct {
	b0, b1, b2, a1, a2 float64
	z1, z2             float64
}

// NewButterworthLP returns a 2nd-order Butterworth lowpass biquad with the
// given -3 dB cutoff (Hz) at the given sample rate, via the bilinear
// transform with prewarping.
func NewButterworthLP(cutoff, sampleRate float64) *Biquad {
	if cutoff >= sampleRate/2 {
		cutoff = 0.499 * sampleRate
	}
	k := math.Tan(math.Pi * cutoff / sampleRate)
	q := math.Sqrt2 / 2
	norm := 1 / (1 + k/q + k*k)
	return &Biquad{
		b0: k * k * norm,
		b1: 2 * k * k * norm,
		b2: k * k * norm,
		a1: 2 * (k*k - 1) * norm,
		a2: (1 - k/q + k*k) * norm,
	}
}

// NewButterworthHP returns a 2nd-order Butterworth highpass biquad.
func NewButterworthHP(cutoff, sampleRate float64) *Biquad {
	if cutoff >= sampleRate/2 {
		cutoff = 0.499 * sampleRate
	}
	k := math.Tan(math.Pi * cutoff / sampleRate)
	q := math.Sqrt2 / 2
	norm := 1 / (1 + k/q + k*k)
	return &Biquad{
		b0: 1 * norm,
		b1: -2 * norm,
		b2: 1 * norm,
		a1: 2 * (k*k - 1) * norm,
		a2: (1 - k/q + k*k) * norm,
	}
}

// Step processes one sample through the section.
func (b *Biquad) Step(x float64) float64 {
	y := b.b0*x + b.z1
	b.z1 = b.b1*x - b.a1*y + b.z2
	b.z2 = b.b2*x - b.a2*y
	return y
}

// Reset clears the filter state.
func (b *Biquad) Reset() { b.z1, b.z2 = 0, 0 }

// Apply filters v into a new slice, starting from zero state.
func (b *Biquad) Apply(v []float64) []float64 {
	b.Reset()
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = b.Step(x)
	}
	return out
}

// OnePole is a first-order lowpass y[n] = a·y[n-1] + (1-a)·x[n], the
// discrete-time equivalent of the single-pole LNA bandwidth limit in the
// paper's Fig 3 block model.
type OnePole struct {
	a float64
	y float64
}

// NewOnePoleLP returns a one-pole lowpass with the given -3 dB cutoff.
func NewOnePoleLP(cutoff, sampleRate float64) *OnePole {
	a := math.Exp(-2 * math.Pi * cutoff / sampleRate)
	return &OnePole{a: a}
}

// Step processes one sample.
func (p *OnePole) Step(x float64) float64 {
	p.y = p.a*p.y + (1-p.a)*x
	return p.y
}

// Reset clears the state.
func (p *OnePole) Reset() { p.y = 0 }

// ApplyInPlace filters v in place from zero state — the allocation-free
// form of Apply (identical arithmetic).
func (p *OnePole) ApplyInPlace(v []float64) {
	p.Reset()
	for i, x := range v {
		v[i] = p.Step(x)
	}
}

// Apply filters v into a new slice from zero state.
func (p *OnePole) Apply(v []float64) []float64 {
	p.Reset()
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = p.Step(x)
	}
	return out
}
