package dsp

import "math"

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two (panic otherwise). The
// transform is unnormalised: IFFT(FFT(x)) == x.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalisation. len(x) must be a power of two.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("dsp: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// FFTReal computes the FFT of a real sequence, zero-padding to the next
// power of two, and returns the complex spectrum (length NextPow2(len(v))).
func FFTReal(v []float64) []complex128 {
	n := NextPow2(len(v))
	x := make([]complex128, n)
	for i, s := range v {
		x[i] = complex(s, 0)
	}
	FFT(x)
	return x
}

// MagnitudeSpectrum returns |X[k]| for k in [0, N/2], computed from the
// real input v after applying the given window (nil = rectangular). The
// result is amplitude-normalised so a full-scale sine of amplitude A in
// the middle of a bin reads approximately A.
func MagnitudeSpectrum(v []float64, window []float64) []float64 {
	n := len(v)
	if n == 0 {
		return nil
	}
	buf := make([]float64, n)
	copy(buf, v)
	var coherentGain float64 = 1
	if window != nil {
		if len(window) != n {
			panic("dsp: window length mismatch")
		}
		var wsum float64
		for i := range buf {
			buf[i] *= window[i]
			wsum += window[i]
		}
		coherentGain = wsum / float64(n)
	}
	spec := FFTReal(buf)
	m := len(spec)/2 + 1
	out := make([]float64, m)
	norm := 2 / (float64(n) * coherentGain)
	for k := 0; k < m; k++ {
		mag := math.Hypot(real(spec[k]), imag(spec[k]))
		if k == 0 || k == len(spec)/2 {
			out[k] = mag / (float64(n) * coherentGain)
		} else {
			out[k] = mag * norm
		}
	}
	return out
}
