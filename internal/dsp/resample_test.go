package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResampleIdentity(t *testing.T) {
	v := makeSine(500, 10, 500, 1)
	out := Resample(v, 500, 500)
	for i := range v {
		if v[i] != out[i] {
			t.Fatalf("identity resample altered sample %d", i)
		}
	}
}

func TestResampleUpsamplePreservesTone(t *testing.T) {
	// The paper's Step 4: 173.61 Hz records upsampled to 512 Hz.
	const srcRate = 173.61
	const dstRate = 512.0
	const freq = 20.0
	n := 4097 // Bonn record length
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(2 * math.Pi * freq * float64(i) / srcRate)
	}
	out := Resample(v, srcRate, dstRate)
	wantLen := int(math.Floor(float64(n-1)*dstRate/srcRate)) + 1
	if len(out) != wantLen {
		t.Fatalf("output length %d, want %d", len(out), wantLen)
	}
	// Compare against the analytically resampled tone (skip edges).
	var errP, sigP float64
	for i := 200; i < len(out)-200; i++ {
		want := math.Sin(2 * math.Pi * freq * float64(i) / dstRate)
		d := out[i] - want
		errP += d * d
		sigP += want * want
	}
	snr := 10 * math.Log10(sigP/errP)
	if snr < 60 {
		t.Fatalf("upsample SNR = %g dB, want > 60", snr)
	}
}

func TestResampleDownsampleAntialias(t *testing.T) {
	// A tone above the destination Nyquist must be strongly attenuated.
	const srcRate = 2048.0
	const dstRate = 256.0
	v := makeSine(8192, 400, srcRate, 1) // 400 Hz > 128 Hz Nyquist
	out := Resample(v, srcRate, dstRate)
	if RMS(out) > 0.05 {
		t.Fatalf("aliased tone RMS = %g, want < 0.05", RMS(out))
	}
}

func TestResampleEmpty(t *testing.T) {
	if out := Resample(nil, 100, 200); out != nil {
		t.Fatal("nil input should give nil output")
	}
	if out := Resample([]float64{1}, 0, 200); out != nil {
		t.Fatal("invalid rate should give nil output")
	}
}

func TestDecimate(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := Decimate(v, 3)
	want := []float64{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("Decimate length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decimate[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestDecimatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Decimate(0) should panic")
		}
	}()
	Decimate([]float64{1}, 0)
}

func TestHoldInterp(t *testing.T) {
	v := []float64{1, 2, 3}
	got := HoldInterp(v, 2, 7)
	want := []float64{1, 1, 2, 2, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HoldInterp[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestVecHelpers(t *testing.T) {
	v := []float64{1, -2, 3}
	if got := Mean(v); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if got := Energy(v); got != 14 {
		t.Errorf("Energy = %g", got)
	}
	if got := RMS(v); math.Abs(got-math.Sqrt(14.0/3)) > 1e-12 {
		t.Errorf("RMS = %g", got)
	}
	if got := MaxAbs(v); got != 3 {
		t.Errorf("MaxAbs = %g", got)
	}
	if got := Variance([]float64{1, 1, 1}); got != 0 {
		t.Errorf("Variance of constant = %g", got)
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4, 5}); got != 11 {
		t.Errorf("Dot = %g", got)
	}
	if got := NextPow2(100); got != 128 {
		t.Errorf("NextPow2(100) = %d", got)
	}
	if got := NextPow2(1); got != 1 {
		t.Errorf("NextPow2(1) = %d", got)
	}
	s := Sub([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Errorf("Sub = %v", s)
	}
	if g := LeastSquaresGain([]float64{2, 4}, []float64{1, 2}); math.Abs(g-2) > 1e-12 {
		t.Errorf("LeastSquaresGain = %g", g)
	}
	if g := LeastSquaresGain([]float64{1}, []float64{0}); g != 0 {
		t.Errorf("LeastSquaresGain zero-denominator = %g", g)
	}
	max, idx := Peak([]float64{1, 9, 3})
	if max != 9 || idx != 1 {
		t.Errorf("Peak = %g@%d", max, idx)
	}
	if _, idx := Peak(nil); idx != -1 {
		t.Errorf("Peak(nil) idx = %d", idx)
	}
	rm := RemoveMean([]float64{1, 2, 3})
	if Mean(rm) > 1e-12 {
		t.Errorf("RemoveMean left mean %g", Mean(rm))
	}
}

func TestWindows(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    []float64
	}{
		{"Hann", Hann(64)},
		{"Hamming", Hamming(64)},
		{"Blackman", Blackman(64)},
		{"BlackmanHarris", BlackmanHarris(64)},
	} {
		if len(tc.w) != 64 {
			t.Errorf("%s length %d", tc.name, len(tc.w))
		}
		// Symmetric; peak near center; near-unity maximum.
		for i := 0; i < 32; i++ {
			if math.Abs(tc.w[i]-tc.w[63-i]) > 1e-9 {
				t.Errorf("%s asymmetric at %d", tc.name, i)
				break
			}
		}
		peak, _ := Peak(tc.w)
		if peak < 0.98 || peak > 1.02 {
			t.Errorf("%s peak = %g", tc.name, peak)
		}
	}
	if w := Hann(1); w[0] != 1 {
		t.Errorf("Hann(1) = %v", w)
	}
	for _, x := range Rectangular(5) {
		if x != 1 {
			t.Error("Rectangular should be all ones")
		}
	}
}

func TestResampleLengthProperty(t *testing.T) {
	f := func(nRaw, srcRaw, dstRaw uint8) bool {
		n := int(nRaw) + 2
		src := float64(srcRaw) + 50
		dst := float64(dstRaw) + 50
		out := Resample(make([]float64, n), src, dst)
		want := int(math.Floor(float64(n-1)*dst/src)) + 1
		return len(out) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
