// Package dsp is the signal-processing substrate of EffiCSense: FFT/DCT
// transforms, window functions, FIR and biquad filters, arbitrary-ratio
// resampling, Welch spectral estimation, and the SNR/SNDR/ENOB metrics
// that the pathfinding goal functions are built on. It replaces the parts
// of the MATLAB/Simulink toolchain the paper relies on.
package dsp

import "math"

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// RMS returns the root-mean-square of v (0 for empty input).
func RMS(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return math.Sqrt(Energy(v) / float64(len(v)))
}

// Energy returns the sum of squares of v.
func Energy(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Power returns the mean square of v (0 for empty input).
func Power(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Energy(v) / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Dot returns the inner product of a and b; the shorter length governs.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Scale multiplies v in place by k and returns v.
func Scale(v []float64, k float64) []float64 {
	for i := range v {
		v[i] *= k
	}
	return v
}

// AddTo adds src into dst element-wise (dst += src); the shorter length
// governs. Returns dst.
func AddTo(dst, src []float64) []float64 {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
	return dst
}

// Sub returns a new slice a-b; the shorter length governs.
func Sub(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] - b[i]
	}
	return out
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// MaxAbs returns the largest absolute value in v (0 for empty input).
func MaxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Peak returns the maximum value and its index (-1 for empty input).
func Peak(v []float64) (max float64, idx int) {
	idx = -1
	max = math.Inf(-1)
	for i, x := range v {
		if x > max {
			max, idx = x, i
		}
	}
	if idx == -1 {
		max = 0
	}
	return max, idx
}

// RemoveMean subtracts the mean from v in place and returns v.
func RemoveMean(v []float64) []float64 {
	m := Mean(v)
	for i := range v {
		v[i] -= m
	}
	return v
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// LeastSquaresGain returns the scalar g minimising ||ref - g·x||².
// It is used to align a processed waveform with its reference before
// computing distortion power, removing the (irrelevant) chain gain.
func LeastSquaresGain(ref, x []float64) float64 {
	den := Dot(x, x)
	if den == 0 {
		return 0
	}
	return Dot(ref, x) / den
}
