package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"efficsense/internal/xrand"
)

func TestFFTRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{1, 2, 4, 64, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 256
	const bin = 10
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * bin * float64(i) / n
		x[i] = complex(math.Cos(ang), 0)
	}
	FFT(x)
	// Real cosine at bin 10: energy split between bins 10 and n-10, each n/2.
	if got := cmplx.Abs(x[bin]); math.Abs(got-n/2) > 1e-6 {
		t.Fatalf("|X[%d]| = %g, want %d", bin, got, n/2)
	}
	if got := cmplx.Abs(x[n-bin]); math.Abs(got-n/2) > 1e-6 {
		t.Fatalf("|X[%d]| = %g, want %d", n-bin, got, n/2)
	}
	for k, v := range x {
		if k != bin && k != n-bin && cmplx.Abs(v) > 1e-6 {
			t.Fatalf("leakage at bin %d: %g", k, cmplx.Abs(v))
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := xrand.New(7)
	const n = 512
	x := make([]complex128, n)
	var timePower float64
	for i := range x {
		v := rng.Normal(0, 1)
		x[i] = complex(v, 0)
		timePower += v * v
	}
	FFT(x)
	var freqPower float64
	for _, v := range x {
		freqPower += real(v)*real(v) + imag(v)*imag(v)
	}
	freqPower /= n
	if math.Abs(timePower-freqPower) > 1e-6*timePower {
		t.Fatalf("Parseval violated: time %g vs freq %g", timePower, freqPower)
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 12 should panic")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		rng := xrand.New(seed)
		scale := float64(scaleRaw)/16 + 0.5
		const n = 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.Normal(0, 1), 0)
			b[i] = complex(rng.Normal(0, 1), 0)
			sum[i] = complex(scale, 0)*a[i] + b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := range sum {
			want := complex(scale, 0)*a[i] + b[i]
			if cmplx.Abs(sum[i]-want) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMagnitudeSpectrumAmplitude(t *testing.T) {
	const n = 1024
	const fs = 1024.0
	const freq = 128.0 // exactly on a bin
	const amp = 0.75
	v := make([]float64, n)
	for i := range v {
		v[i] = amp * math.Sin(2*math.Pi*freq*float64(i)/fs)
	}
	spec := MagnitudeSpectrum(v, nil)
	got := spec[128]
	if math.Abs(got-amp) > 1e-9 {
		t.Fatalf("on-bin amplitude = %g, want %g", got, amp)
	}
	// Windowed: coherent gain compensation keeps amplitude approximately.
	specW := MagnitudeSpectrum(v, Hann(n))
	var peak float64
	for _, m := range specW {
		if m > peak {
			peak = m
		}
	}
	if math.Abs(peak-amp) > 0.05*amp {
		t.Fatalf("windowed peak amplitude = %g, want ~%g", peak, amp)
	}
}
