package core

import (
	"context"
	"testing"

	"efficsense/internal/classify"
	"efficsense/internal/eeg"
	"efficsense/internal/tech"
)

func batchTestEvaluator(t testing.TB, det bool) *Evaluator {
	t.Helper()
	ds := eeg.Synthesize(eeg.DefaultConfig(7, 2))
	cfg := Config{Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Dataset: ds, Seed: 7}
	if det {
		train := eeg.Synthesize(eeg.DefaultConfig(8, 4))
		cfg.Detector = classify.TrainDetector(train, classify.DetectorConfig{
			Seed: 8, Train: classify.TrainOptions{Epochs: 10},
		})
		cfg.WindowSeconds = classify.DefaultWindowSeconds
	}
	ev, err := NewEvaluator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func requireIdentical(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.MeanSNRdB != want.MeanSNRdB {
		t.Fatalf("%s: SNR %v != %v", label, got.MeanSNRdB, want.MeanSNRdB)
	}
	if got.TotalPower != want.TotalPower {
		t.Fatalf("%s: power %v != %v", label, got.TotalPower, want.TotalPower)
	}
	if got.AreaCaps != want.AreaCaps {
		t.Fatalf("%s: area %v != %v", label, got.AreaCaps, want.AreaCaps)
	}
	if got.Accuracy != want.Accuracy || got.Confusion != want.Confusion {
		t.Fatalf("%s: accuracy %v/%+v != %v/%+v",
			label, got.Accuracy, got.Confusion, want.Accuracy, want.Confusion)
	}
	for c, v := range want.Power {
		if got.Power[c] != v {
			t.Fatalf("%s: power[%s] %v != %v", label, c, got.Power[c], v)
		}
	}
	if got.Point != want.Point || got.Err != nil || want.Err != nil {
		t.Fatalf("%s: point/err mismatch", label)
	}
}

// goldenPoints is a seeded sweep slice covering every architecture, mixed
// resolutions and noise floors, and two CS geometries — so grouping,
// group sharing and the classic fallback are all exercised.
func goldenPoints() []DesignPoint {
	return []DesignPoint{
		{Arch: ArchCS, Bits: 6, LNANoise: 3e-6, M: 96},
		{Arch: ArchCS, Bits: 8, LNANoise: 3e-6, M: 96},
		{Arch: ArchBaseline, Bits: 7, LNANoise: 3e-6},
		{Arch: ArchCS, Bits: 7, LNANoise: 9e-6, M: 96},
		{Arch: ArchBaseline, Bits: 6, LNANoise: 3e-6},
		{Arch: ArchCS, Bits: 7, LNANoise: 3e-6, M: 128},
		{Arch: ArchCSDigital, Bits: 7, LNANoise: 3e-6, M: 96},
		{Arch: ArchCSActive, Bits: 7, LNANoise: 3e-6, M: 96},
		{Arch: ArchCS, Bits: 7, LNANoise: 3e-6, M: 96, CHold: 120e-15},
	}
}

// TestEvaluateBatchGoldenEquivalence is the golden test of the batch
// redesign: for a seeded sweep slice, the batch path must reproduce the
// classic per-point evaluation loop bit for bit — every figure of
// interest, every power component.
func TestEvaluateBatchGoldenEquivalence(t *testing.T) {
	for _, det := range []bool{false, true} {
		ev := batchTestEvaluator(t, det)
		pts := goldenPoints()
		batch := ev.EvaluateBatch(context.Background(), pts)
		if len(batch) != len(pts) {
			t.Fatalf("batch returned %d results for %d points", len(batch), len(pts))
		}
		for i, p := range pts {
			requireIdentical(t, p.String(), batch[i], ev.evaluateClassic(p))
		}
		// And batches of one (the Evaluate wrapper) agree too.
		for _, p := range pts[:3] {
			requireIdentical(t, "single "+p.String(), ev.Evaluate(p), ev.evaluateClassic(p))
		}
	}
}

// TestEvaluateBatchContextCancel pins the degradation contract: a
// cancelled context yields per-point error rows, never a panic or a
// half-written result.
func TestEvaluateBatchContextCancel(t *testing.T) {
	ev := batchTestEvaluator(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := ev.EvaluateBatch(ctx, goldenPoints()[:3])
	for i, r := range rs {
		if r.Err == nil {
			t.Fatalf("result %d: expected context error", i)
		}
		if r.TotalPower != 0 {
			t.Fatalf("result %d: partial figures alongside error", i)
		}
	}
}
