// Package core is the EffiCSense pathfinding framework itself: it couples
// the behavioural chains (internal/chain), the power/area models
// (internal/power), the application dataset (internal/eeg) and the
// accuracy metric (internal/classify) behind a single
// design-point → figures-of-interest evaluation, the operation every
// sweep and Pareto search in the paper is built from (framework Steps 1–5,
// Fig 2).
package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync"

	"efficsense/internal/chain"
	"efficsense/internal/classify"
	"efficsense/internal/cs"
	"efficsense/internal/dsp"
	"efficsense/internal/eeg"
	"efficsense/internal/power"
	"efficsense/internal/siggen"
	"efficsense/internal/tech"
	"efficsense/internal/units"
)

// Architecture selects one of the paper's two systems (Fig 1).
type Architecture int

const (
	// ArchBaseline is the classical chain (Fig 1a).
	ArchBaseline Architecture = iota
	// ArchCS is the passive charge-sharing analog CS chain (Fig 1b).
	ArchCS
	// ArchCSDigital is the digital CS variant: Nyquist ADC + MAC
	// compression (refs [2], [12]).
	ArchCSDigital
	// ArchCSActive is the active analog CS variant: OTA integrators
	// instead of passive sharing (the counterpoint of ref [10]).
	ArchCSActive
)

// String implements fmt.Stringer.
func (a Architecture) String() string {
	switch a {
	case ArchBaseline:
		return "baseline"
	case ArchCS:
		return "cs"
	case ArchCSDigital:
		return "cs-digital"
	case ArchCSActive:
		return "cs-active"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Architectures returns every defined architecture in enum order.
func Architectures() []Architecture {
	return []Architecture{ArchBaseline, ArchCS, ArchCSDigital, ArchCSActive}
}

// ParseArchitecture inverts Architecture.String: wire names, CSV columns
// and CLI flags all resolve through this one table, so an architecture's
// external name can never drift from its String form.
func ParseArchitecture(name string) (Architecture, error) {
	for _, a := range Architectures() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown architecture %q", name)
}

// DesignPoint is one configuration in the search space of Table III.
type DesignPoint struct {
	// Arch selects the system.
	Arch Architecture
	// Bits is the ADC resolution N (6–8).
	Bits int
	// LNANoise is the input-referred LNA noise floor (V rms, swept
	// 1–20 µV).
	LNANoise float64
	// M is the CS measurement count (75/150/192); ignored for baseline.
	M int
	// CHold is the CS hold capacitor (F); 0 selects the default. Ignored
	// for baseline.
	CHold float64
}

// String renders the point compactly for reports.
func (d DesignPoint) String() string {
	if d.Arch == ArchBaseline {
		return fmt.Sprintf("baseline N=%d vn=%s", d.Bits, units.Format(d.LNANoise, "V"))
	}
	s := fmt.Sprintf("%s N=%d vn=%s M=%d", d.Arch, d.Bits, units.Format(d.LNANoise, "V"), d.M)
	if d.CHold > 0 {
		s += " Ch=" + units.Format(d.CHold, "F")
	}
	return s
}

// Key returns a stable, collision-free identity for the point, usable as
// a memoisation-cache key. Two points compare equal exactly when their
// keys compare equal; float axes are keyed on their exact bit patterns so
// no two distinct sweep values alias.
func (d DesignPoint) Key() string { return string(d.AppendKey(nil)) }

// AppendKey appends Key's bytes to dst and returns the extended slice,
// so hot paths — the sweep engine's per-lookup cache keys — can build
// keys into a reused buffer without fmt or intermediate strings. Key is
// defined in terms of AppendKey, so the two can never drift.
func (d DesignPoint) AppendKey(dst []byte) []byte {
	dst = append(dst, 'a')
	dst = strconv.AppendInt(dst, int64(d.Arch), 10)
	dst = append(dst, ':', 'n')
	dst = strconv.AppendInt(dst, int64(d.Bits), 10)
	dst = append(dst, ':', 'v')
	dst = appendHex16(dst, math.Float64bits(d.LNANoise))
	dst = append(dst, ':', 'm')
	dst = strconv.AppendInt(dst, int64(d.M), 10)
	dst = append(dst, ':', 'c')
	return appendHex16(dst, math.Float64bits(d.CHold))
}

// appendHex16 appends v as 16 zero-padded lowercase hex digits (%016x).
func appendHex16(dst []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return append(dst, b[:]...)
}

// GroupKey returns the point with its ADC resolution cleared: the
// coordinates that determine everything batch evaluation can share
// between points. The LNA realisation depends on the noise floor, the CS
// encoder realisation on (M, C_hold, seed) — never on Bits — so points
// equal under GroupKey share one amplified (baseline) or encoded (CS)
// waveform per record, and a batch engine co-locates them in one
// EvaluateBatch call to pay for that waveform once.
func (d DesignPoint) GroupKey() DesignPoint {
	d.Bits = 0
	return d
}

// Result carries every figure of interest for one design point — the
// quantities the paper's Figs 4 and 7–10 are plotted from.
type Result struct {
	Point DesignPoint
	// MeanSNRdB is the record-averaged SNR versus the band-limited
	// reference (goal function of Fig 7a).
	MeanSNRdB float64
	// Accuracy is the seizure-detection accuracy (goal function of
	// Fig 7b); Confusion carries the full matrix.
	Accuracy  float64
	Confusion classify.Confusion
	// Power is the record-averaged Table II breakdown; TotalPower its sum.
	Power      power.Breakdown
	TotalPower float64
	// AreaCaps is the total design capacitance in C_u,min multiples
	// (Fig 9/10 metric).
	AreaCaps float64
	// Err marks a point whose evaluation failed (for example a recovered
	// panic in a sweep worker): the other fields are zero and the result
	// must be excluded from fronts and optima. Nil for a sound evaluation.
	Err error
}

// Config assembles an Evaluator.
type Config struct {
	Tech tech.Params
	Sys  tech.System
	// Dataset holds the evaluation records (typically a test split).
	Dataset *eeg.Dataset
	// Detector is the trained accuracy metric. Nil skips accuracy (SNR
	// sweeps like Fig 4 don't need it).
	Detector *classify.Detector
	// Metric is the pluggable application-quality metric. When nil, a
	// non-nil Detector is adapted automatically (DetectorMetric), which
	// is the historical behaviour; setting Metric directly lets a
	// scenario score quality without a trained detector.
	Metric Metric
	// Scenario names the registered workload this evaluator scores (""
	// for the default EEG chain). It is folded into the fingerprint so
	// the shared sweep cache never mixes results across workloads whose
	// other inputs happen to coincide.
	Scenario string
	// InputPeak is the expected electrode-signal peak (V) the LNA gain
	// is set from; 0 selects the chain default (250 µV, the EEG scale).
	InputPeak float64
	// ReconMethod selects the CS reconstruction algorithm (OMP default).
	ReconMethod cs.Method
	// NPhi and Sparsity fix the CS frame geometry (defaults 384 / 2).
	NPhi     int
	Sparsity int
	// SimOversample is the grid multiple (default 4).
	SimOversample int
	// WindowSeconds selects the windowed detection protocol: each record
	// is split into windows of this duration, classified per window and
	// decided by majority vote (ref [20] classifies ≈3 s segments). Zero
	// classifies whole records. Use classify.DefaultWindowSeconds for the
	// paper-faithful protocol; the detector should be trained with the
	// same WindowSeconds.
	WindowSeconds float64
	// Seed drives every stochastic realisation.
	Seed int64
}

// Evaluator scores design points on a fixed dataset. It pre-resamples all
// records to the simulation grid once, so sweeping many points stays
// cheap. Evaluate is safe for concurrent use on *different* points
// (internal state is read-only after construction).
type Evaluator struct {
	cfg         Config
	metric      Metric       // resolved quality metric (nil skips accuracy)
	common      chain.Common // template (per-point fields zeroed)
	grids       [][]float64  // records on the simulation grid
	refs        [][]float64  // band-limited references at f_sample
	labels      []eeg.Class
	fingerprint string
	scratch     sync.Pool // per-worker *evalScratch for the batch path
}

// NewEvaluator precomputes the per-record grid inputs and references.
func NewEvaluator(cfg Config) (*Evaluator, error) {
	if cfg.Dataset == nil || len(cfg.Dataset.Records) == 0 {
		return nil, fmt.Errorf("core: evaluator requires a dataset")
	}
	if err := cfg.Tech.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Sys.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.NPhi <= 0 {
		cfg.NPhi = 384
	}
	if cfg.Sparsity <= 0 {
		cfg.Sparsity = 2
	}
	if cfg.SimOversample < 2 {
		cfg.SimOversample = 4
	}
	if cfg.Metric == nil && cfg.Detector != nil {
		cfg.Metric = DetectorMetric{Detector: cfg.Detector}
	}
	e := &Evaluator{
		cfg:    cfg,
		metric: cfg.Metric,
		common: chain.Common{
			Tech:          cfg.Tech,
			Sys:           cfg.Sys,
			InputPeak:     cfg.InputPeak,
			SimOversample: cfg.SimOversample,
			Seed:          cfg.Seed,
		},
	}
	e.scratch.New = func() any {
		return &evalScratch{sess: chain.NewEvalSession(cfg.Seed)}
	}
	gridRate := e.common.GridRate()
	for _, r := range cfg.Dataset.Records {
		grid := dsp.Resample(r.Samples, r.Rate, gridRate)
		e.grids = append(e.grids, grid)
		e.refs = append(e.refs, chain.ReferenceGrid(e.common, grid))
		e.labels = append(e.labels, r.Label)
	}
	e.fingerprint = fingerprintConfig(cfg)
	return e, nil
}

// fingerprintConfig digests everything Evaluate's output depends on: the
// technology and system constants, the frame geometry, the seed, the
// dataset contents and the detector weights. Two evaluators with equal
// fingerprints produce bit-identical results for any design point, which
// is what lets sweep caches be shared across evaluator instances — and,
// because every input is hashed by value (the exact bit pattern of every
// dataset sample, the trained detector parameters), the fingerprint is
// stable across processes and detector rebuilds, never keyed on pointer
// identity or on a collision-prone aggregate like a sample sum.
func fingerprintConfig(cfg Config) string {
	h := fnv.New64a()
	var det uint64
	if cfg.Metric != nil {
		det = cfg.Metric.Fingerprint()
	} else if cfg.Detector != nil {
		det = cfg.Detector.Fingerprint()
	}
	fmt.Fprintf(h, "%+v|%+v|%d|%d|%d|%g|%d|det:%016x",
		cfg.Tech, cfg.Sys, cfg.NPhi, cfg.Sparsity, cfg.SimOversample,
		cfg.WindowSeconds, cfg.Seed, det)
	// Scenario identity and the per-scenario evaluator knobs: keyed so the
	// shared LRU can never serve one workload's result to another even if
	// every numeric input happens to coincide.
	fmt.Fprintf(h, "|scn:%s|ip:%016x|rm:%d",
		cfg.Scenario, math.Float64bits(cfg.InputPeak), cfg.ReconMethod)
	var buf [8]byte
	for _, r := range cfg.Dataset.Records {
		fmt.Fprintf(h, "|r:%d:%d:%016x:",
			r.Label, len(r.Samples), math.Float64bits(r.Rate))
		for _, v := range r.Samples {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("core-ev-%016x", h.Sum64())
}

// Fingerprint identifies the evaluation function this instance computes:
// evaluators with equal fingerprints return identical results for every
// design point. The design-space sweep engine uses it to key its
// memoisation cache, so repeated constrained queries (the Fig 9/10
// workload) reuse evaluations across sweeps and evaluator rebuilds.
func (e *Evaluator) Fingerprint() string { return e.fingerprint }

// csConfig assembles the CS-family chain configuration for a point.
func (e *Evaluator) csConfig(common chain.Common, p DesignPoint) chain.CSConfig {
	return chain.CSConfig{
		Common:      common,
		M:           p.M,
		NPhi:        e.cfg.NPhi,
		Sparsity:    e.cfg.Sparsity,
		CHold:       p.CHold,
		ReconMethod: e.cfg.ReconMethod,
	}
}

// Records returns the number of evaluation records.
func (e *Evaluator) Records() int { return len(e.grids) }

// OutputRate returns the rate of chain outputs (f_sample).
func (e *Evaluator) OutputRate() float64 { return e.cfg.Sys.FSample() }

// Evaluate scores one design point over every record. It is a batch of
// one: results are identical to (and produced by) the EvaluateBatch path.
func (e *Evaluator) Evaluate(p DesignPoint) Result {
	return e.EvaluateBatch(context.Background(), []DesignPoint{p})[0]
}

// evaluateClassic is the original per-point evaluation loop. It remains
// the reference implementation the batch path is pinned against (the
// golden equivalence tests), and the execution path for the CS variants
// whose chains have no session form.
func (e *Evaluator) evaluateClassic(p DesignPoint) Result {
	common := e.common
	common.Bits = p.Bits
	common.LNANoise = p.LNANoise
	var run func(grid []float64) chain.Output
	var area float64
	switch p.Arch {
	case ArchBaseline:
		b := chain.NewBaseline(common)
		run = b.RunGrid
		area = b.Area()
	case ArchCS:
		c := chain.NewCS(e.csConfig(common, p))
		run = c.RunGrid
		area = c.Area()
	case ArchCSDigital:
		c := chain.NewDigitalCS(e.csConfig(common, p))
		run = c.RunGrid
		area = c.Area()
	case ArchCSActive:
		c := chain.NewActiveCS(e.csConfig(common, p))
		run = c.RunGrid
		area = c.Area()
	default:
		panic(fmt.Sprintf("core: unknown architecture %d", p.Arch))
	}
	res := Result{Point: p, AreaCaps: area, Power: power.Breakdown{}}
	waves := make([][]float64, len(e.grids))
	var snrSum float64
	var rate float64
	for i, grid := range e.grids {
		out := run(grid)
		rate = out.Rate
		// Refer the output back to electrode scale for the detector (the
		// chain gain is a known design value, not information).
		if out.Gain > 0 {
			for j := range out.Samples {
				out.Samples[j] /= out.Gain
			}
		}
		waves[i] = out.Samples
		n := len(out.Samples)
		ref := e.refs[i]
		if len(ref) < n {
			n = len(ref)
		}
		snrSum += dsp.SNRVersusReference(ref[:n], out.Samples[:n])
		for c, v := range out.Power {
			res.Power[c] += v
		}
	}
	nRec := float64(len(e.grids))
	for c := range res.Power {
		res.Power[c] /= nRec
	}
	res.TotalPower = res.Power.Total()
	res.MeanSNRdB = snrSum / nRec
	if e.metric != nil {
		win := 0
		if e.cfg.WindowSeconds > 0 {
			win = int(e.cfg.WindowSeconds * rate)
		}
		res.Accuracy, res.Confusion = e.metric.Score(MetricContext{
			Waves: waves, Refs: e.refs, Rate: rate, Labels: e.labels, WindowSamples: win,
		})
	}
	return res
}

// SineResult is the outcome of a single-tone characterisation (Fig 4).
type SineResult struct {
	Point      DesignPoint
	SNDRdB     float64
	ENOB       float64
	Power      power.Breakdown
	TotalPower float64
}

// EvaluateSine characterises a design point with a full-signal-band sine
// (the paper's Fig 4 stimulus: a sine through the Fig 1a system),
// returning SNDR and the power breakdown. freq of 0 selects a tone near
// one third of the input bandwidth; seconds of 0 selects 30 s.
func EvaluateSine(cfg Config, p DesignPoint, freq, seconds float64) SineResult {
	if cfg.NPhi <= 0 {
		cfg.NPhi = 384
	}
	if cfg.Sparsity <= 0 {
		cfg.Sparsity = 2
	}
	if cfg.SimOversample < 2 {
		cfg.SimOversample = 4
	}
	if freq <= 0 {
		freq = cfg.Sys.BWInput / 3.1
	}
	if seconds <= 0 {
		seconds = 30
	}
	common := chain.Common{
		Tech:          cfg.Tech,
		Sys:           cfg.Sys,
		Bits:          p.Bits,
		LNANoise:      p.LNANoise,
		InputPeak:     cfg.InputPeak,
		SimOversample: cfg.SimOversample,
		Seed:          cfg.Seed,
	}
	gridRate := common.GridRate()
	n := int(seconds * gridRate)
	// Drive at ~70 % of the input range (matching the chain headroom).
	amp := 175e-6
	if cfg.InputPeak > 0 {
		amp = 0.7 * cfg.InputPeak
	}
	in := siggen.Sine(n, freq, gridRate, amp, 0)
	csCfg := chain.CSConfig{
		Common: common, M: p.M, NPhi: cfg.NPhi, Sparsity: cfg.Sparsity, CHold: p.CHold,
		ReconMethod: cfg.ReconMethod,
	}
	var out chain.Output
	switch p.Arch {
	case ArchBaseline:
		out = chain.NewBaseline(common).RunGrid(in)
	case ArchCS:
		out = chain.NewCS(csCfg).RunGrid(in)
	case ArchCSDigital:
		out = chain.NewDigitalCS(csCfg).RunGrid(in)
	case ArchCSActive:
		out = chain.NewActiveCS(csCfg).RunGrid(in)
	default:
		panic(fmt.Sprintf("core: unknown architecture %d", p.Arch))
	}
	m := dsp.AnalyzeSine(out.Samples, out.Rate)
	return SineResult{
		Point:      p,
		SNDRdB:     m.SNDRdB,
		ENOB:       m.ENOB,
		Power:      out.Power,
		TotalPower: out.Power.Total(),
	}
}
