package core

import (
	"context"

	"efficsense/internal/chain"
	"efficsense/internal/dsp"
	"efficsense/internal/power"
)

// evalScratch is the per-worker reusable state of the batch path: the
// chain evaluation session (noise banks and waveform buffers) plus the
// retained output rows the detector scores at the end of each point.
type evalScratch struct {
	sess *chain.EvalSession
	rows [][]float64
}

func (sc *evalScratch) row(i int) []float64 {
	for len(sc.rows) <= i {
		sc.rows = append(sc.rows, nil)
	}
	return sc.rows[i]
}

// pointAccum accumulates one design point's per-record outputs into the
// figures of interest, mirroring the classic Evaluate loop exactly.
type pointAccum struct {
	res    Result
	snrSum float64
	rate   float64
	waves  [][]float64 // retained for the quality metric; nil without one
}

func (a *pointAccum) add(e *Evaluator, ri int, o chain.Output) {
	a.rate = o.Rate
	// Refer the output back to electrode scale for the detector (the
	// chain gain is a known design value, not information).
	if o.Gain > 0 {
		for j := range o.Samples {
			o.Samples[j] /= o.Gain
		}
	}
	if a.waves != nil {
		a.waves[ri] = o.Samples
	}
	n := len(o.Samples)
	ref := e.refs[ri]
	if len(ref) < n {
		n = len(ref)
	}
	a.snrSum += dsp.SNRVersusReference(ref[:n], o.Samples[:n])
	for c, v := range o.Power {
		a.res.Power[c] += v
	}
	a.res.AreaCaps = o.AreaCaps
}

// EvaluateBatch scores a batch of design points over every record and
// returns one Result per point, in input order. Results are bit-identical
// to calling Evaluate per point; the batch form exists so work that is
// invariant across points — the amplified waveform of a noise level, the
// encoded measurements of a CS geometry, the session noise banks and
// scratch buffers — is paid for once per group instead of once per point.
//
// Points sharing (Arch, LNANoise, M, CHold) are grouped internally; input
// order is otherwise irrelevant. A cancelled ctx marks the not-yet-
// evaluated points with Err = ctx.Err() (the PR 5 degradation contract:
// per-point error rows, never a lost batch). Safe for concurrent use.
func (e *Evaluator) EvaluateBatch(ctx context.Context, pts []DesignPoint) []Result {
	out := make([]Result, len(pts))
	if len(pts) == 0 {
		return out
	}
	sc := e.scratch.Get().(*evalScratch)
	defer e.scratch.Put(sc)
	var order []DesignPoint
	groups := map[DesignPoint][]int{}
	for i, p := range pts {
		// Points in a group differ only in ADC resolution (see
		// DesignPoint.GroupKey), so they share every record's amplified or
		// encoded waveform.
		k := p.GroupKey()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		idxs := groups[k]
		if err := ctx.Err(); err != nil {
			for _, i := range idxs {
				out[i] = Result{Point: pts[i], Err: err}
			}
			continue
		}
		switch k.Arch {
		case ArchBaseline:
			e.evalBaselineGroup(sc, pts, idxs, out)
		case ArchCS:
			e.evalCSGroup(sc, pts, idxs, out)
		default:
			// The digital and active CS variants build bespoke per-point
			// reconstructors; they take the classic path unchanged.
			for _, i := range idxs {
				out[i] = e.evaluateClassic(pts[i])
			}
		}
	}
	return out
}

// newAccums prepares one accumulator per group member. Only the quality
// metric needs every record's waveform at once; without a metric a
// single output row per point is reused across records.
func (e *Evaluator) newAccums(pts []DesignPoint, idxs []int) ([]*pointAccum, int) {
	rowsPer := 1
	if e.metric != nil {
		rowsPer = len(e.grids)
	}
	accs := make([]*pointAccum, len(idxs))
	for j, i := range idxs {
		a := &pointAccum{res: Result{Point: pts[i], Power: power.Breakdown{}}}
		if e.metric != nil {
			a.waves = make([][]float64, len(e.grids))
		}
		accs[j] = a
	}
	return accs, rowsPer
}

func (e *Evaluator) finishAccums(accs []*pointAccum, idxs []int, out []Result) {
	nRec := float64(len(e.grids))
	for j, a := range accs {
		res := a.res
		for c := range res.Power {
			res.Power[c] /= nRec
		}
		res.TotalPower = res.Power.Total()
		res.MeanSNRdB = a.snrSum / nRec
		if e.metric != nil {
			win := 0
			if e.cfg.WindowSeconds > 0 {
				win = int(e.cfg.WindowSeconds * a.rate)
			}
			res.Accuracy, res.Confusion = e.metric.Score(MetricContext{
				Waves: a.waves, Refs: e.refs, Rate: a.rate, Labels: e.labels, WindowSamples: win,
			})
		}
		out[idxs[j]] = res
	}
}

func (e *Evaluator) evalBaselineGroup(sc *evalScratch, pts []DesignPoint, idxs []int, out []Result) {
	chains := make([]*chain.Baseline, len(idxs))
	for j, i := range idxs {
		common := e.common
		common.Bits = pts[i].Bits
		common.LNANoise = pts[i].LNANoise
		chains[j] = chain.NewBaseline(common)
	}
	accs, rowsPer := e.newAccums(pts, idxs)
	for ri, grid := range e.grids {
		// The LNA settings are identical across the group, so the lead
		// chain's amplified waveform serves every member.
		amplified := chains[0].AmplifySession(sc.sess, grid)
		for j, c := range chains {
			slot := j*rowsPer + ri%rowsPer
			o := c.DigitizeSession(sc.sess, amplified, sc.row(slot))
			sc.rows[slot] = o.Samples
			accs[j].add(e, ri, o)
		}
	}
	e.finishAccums(accs, idxs, out)
}

func (e *Evaluator) evalCSGroup(sc *evalScratch, pts []DesignPoint, idxs []int, out []Result) {
	chains := make([]*chain.CSChain, len(idxs))
	for j, i := range idxs {
		common := e.common
		common.Bits = pts[i].Bits
		common.LNANoise = pts[i].LNANoise
		chains[j] = chain.NewCS(e.csConfig(common, pts[i]))
	}
	accs, rowsPer := e.newAccums(pts, idxs)
	for ri, grid := range e.grids {
		// The encoder realisation is resolution-independent, so the lead
		// chain's measurement vector serves every member; each member's
		// own stateful SAR converts it.
		y := chains[0].EncodeSession(sc.sess, grid)
		for j, c := range chains {
			slot := j*rowsPer + ri%rowsPer
			o := c.FinishSession(sc.sess, y, sc.row(slot))
			sc.rows[slot] = o.Samples
			accs[j].add(e, ri, o)
		}
	}
	e.finishAccums(accs, idxs, out)
}
