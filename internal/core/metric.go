package core

import (
	"efficsense/internal/classify"
	"efficsense/internal/eeg"
)

// MetricContext carries everything a quality metric may score after a
// design point has been pushed through the chain: the retained output
// waveforms (referred back to electrode scale), the band-limited
// references they were acquired from, and the dataset ground truth.
type MetricContext struct {
	// Waves holds one electrode-referred output waveform per record.
	Waves [][]float64
	// Refs holds the band-limited references at the output rate, one per
	// record (reconstruction-quality metrics score against these).
	Refs [][]float64
	// Rate is the output sample rate (f_sample).
	Rate float64
	// Labels is the per-record ground truth.
	Labels []eeg.Class
	// WindowSamples is the windowed-protocol length (0 = whole records).
	WindowSamples int
}

// Metric is the pluggable application-quality contract: it turns a design
// point's per-record outputs into the scalar quality the paper's Step 5
// goal functions optimise (Result.Accuracy) plus a confusion matrix. The
// seizure detector is one Metric; a scenario registers whatever quality
// its workload defines (an SNDR gate for telemonitoring, a detector for
// inference chains).
type Metric interface {
	// Score evaluates one design point's outputs. The returned quality
	// lands in Result.Accuracy and must be in [0, 1] for the accuracy
	// goal functions to stay meaningful.
	Score(ctx MetricContext) (quality float64, conf classify.Confusion)
	// Fingerprint digests every parameter the score depends on, by value.
	// It is folded into the evaluator fingerprint, so metrics with equal
	// fingerprints must score identically.
	Fingerprint() uint64
}

// DetectorMetric adapts a trained seizure detector to the Metric
// interface — the historical (and default-scenario) quality metric.
type DetectorMetric struct {
	Detector *classify.Detector
}

// Score runs the windowed detection protocol over the output waveforms.
func (m DetectorMetric) Score(ctx MetricContext) (float64, classify.Confusion) {
	conf := m.Detector.EvaluateWavesWindowed(ctx.Waves, ctx.Rate, ctx.Labels, ctx.WindowSamples)
	return conf.Accuracy(), conf
}

// Fingerprint returns the detector's weight fingerprint.
func (m DetectorMetric) Fingerprint() uint64 { return m.Detector.Fingerprint() }
