package core

import (
	"math"
	"sync"
	"testing"

	"efficsense/internal/classify"
	"efficsense/internal/eeg"
	"efficsense/internal/power"
	"efficsense/internal/tech"
)

// testEvaluator builds a small evaluator shared by the tests (training the
// detector once keeps the suite fast).
var (
	evalOnce sync.Once
	evalInst *Evaluator
)

func testEvaluator(t *testing.T) *Evaluator {
	t.Helper()
	evalOnce.Do(func() {
		ds := eeg.Synthesize(eeg.DefaultConfig(42, 24))
		train, test := ds.Split(0.34)
		det := classify.TrainDetector(train, classify.DetectorConfig{
			Seed:  42,
			Train: classify.TrainOptions{Epochs: 80},
		})
		ev, err := NewEvaluator(Config{
			Tech:     tech.GPDK045(),
			Sys:      tech.DefaultSystem(),
			Dataset:  test,
			Detector: det,
			Seed:     42,
		})
		if err != nil {
			panic(err)
		}
		evalInst = ev
	})
	if evalInst == nil {
		t.Fatal("evaluator construction failed")
	}
	return evalInst
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(Config{Tech: tech.GPDK045(), Sys: tech.DefaultSystem()}); err == nil {
		t.Fatal("missing dataset should error")
	}
	bad := tech.GPDK045()
	bad.EBit = 0
	ds := eeg.Synthesize(eeg.DefaultConfig(1, 2))
	if _, err := NewEvaluator(Config{Tech: bad, Sys: tech.DefaultSystem(), Dataset: ds}); err == nil {
		t.Fatal("invalid technology should error")
	}
	badSys := tech.DefaultSystem()
	badSys.BWInput = -1
	if _, err := NewEvaluator(Config{Tech: tech.GPDK045(), Sys: badSys, Dataset: ds}); err == nil {
		t.Fatal("invalid system should error")
	}
}

func TestEvaluateBaselinePoint(t *testing.T) {
	ev := testEvaluator(t)
	res := ev.Evaluate(DesignPoint{Arch: ArchBaseline, Bits: 8, LNANoise: 2e-6})
	if res.TotalPower < 4e-6 || res.TotalPower > 16e-6 {
		t.Errorf("baseline power = %g W, outside expected band", res.TotalPower)
	}
	if res.MeanSNRdB < 10 {
		t.Errorf("baseline SNR = %g dB, too low", res.MeanSNRdB)
	}
	if res.Accuracy < 0.8 {
		t.Errorf("baseline accuracy = %g, want high at low noise", res.Accuracy)
	}
	if res.AreaCaps < 256 {
		t.Errorf("baseline area = %g", res.AreaCaps)
	}
	if res.Power[power.CompTransmitter] <= 0 {
		t.Error("transmitter power missing")
	}
}

func TestEvaluateCSPoint(t *testing.T) {
	ev := testEvaluator(t)
	res := ev.Evaluate(DesignPoint{Arch: ArchCS, Bits: 8, LNANoise: 6e-6, M: 150})
	if res.TotalPower > 6e-6 {
		t.Errorf("CS power = %g W, should be well below baseline's ~9 µW", res.TotalPower)
	}
	if res.Power[power.CompCSEncoder] <= 0 {
		t.Error("CS encoder power missing")
	}
	if res.MeanSNRdB < 3 {
		t.Errorf("CS SNR = %g dB, too low", res.MeanSNRdB)
	}
	if res.Accuracy < 0.7 {
		t.Errorf("CS accuracy = %g", res.Accuracy)
	}
}

func TestSNRImprovesWithLowerNoise(t *testing.T) {
	ev := testEvaluator(t)
	lo := ev.Evaluate(DesignPoint{Arch: ArchBaseline, Bits: 8, LNANoise: 1e-6})
	hi := ev.Evaluate(DesignPoint{Arch: ArchBaseline, Bits: 8, LNANoise: 20e-6})
	if lo.MeanSNRdB <= hi.MeanSNRdB {
		t.Fatalf("SNR should improve with a lower noise floor: %g vs %g dB",
			lo.MeanSNRdB, hi.MeanSNRdB)
	}
	if lo.TotalPower <= hi.TotalPower {
		t.Fatalf("power should grow with a lower noise floor: %g vs %g W",
			lo.TotalPower, hi.TotalPower)
	}
}

func TestCSAreaExceedsBaseline(t *testing.T) {
	ev := testEvaluator(t)
	b := ev.Evaluate(DesignPoint{Arch: ArchBaseline, Bits: 8, LNANoise: 5e-6})
	c := ev.Evaluate(DesignPoint{Arch: ArchCS, Bits: 8, LNANoise: 5e-6, M: 150})
	if c.AreaCaps < 3*b.AreaCaps {
		t.Fatalf("CS area %g should far exceed baseline %g (Fig 9)", c.AreaCaps, b.AreaCaps)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	ev := testEvaluator(t)
	p := DesignPoint{Arch: ArchCS, Bits: 7, LNANoise: 4e-6, M: 96}
	a := ev.Evaluate(p)
	b := ev.Evaluate(p)
	if a.MeanSNRdB != b.MeanSNRdB || a.Accuracy != b.Accuracy || a.TotalPower != b.TotalPower {
		t.Fatal("evaluation not deterministic for a fixed seed")
	}
}

func TestEvaluateConcurrent(t *testing.T) {
	ev := testEvaluator(t)
	points := []DesignPoint{
		{Arch: ArchBaseline, Bits: 6, LNANoise: 5e-6},
		{Arch: ArchBaseline, Bits: 8, LNANoise: 5e-6},
		{Arch: ArchCS, Bits: 8, LNANoise: 5e-6, M: 75},
	}
	serial := make([]Result, len(points))
	for i, p := range points {
		serial[i] = ev.Evaluate(p)
	}
	parallel := make([]Result, len(points))
	var wg sync.WaitGroup
	for i, p := range points {
		wg.Add(1)
		go func(i int, p DesignPoint) {
			defer wg.Done()
			parallel[i] = ev.Evaluate(p)
		}(i, p)
	}
	wg.Wait()
	for i := range points {
		if serial[i].MeanSNRdB != parallel[i].MeanSNRdB ||
			serial[i].TotalPower != parallel[i].TotalPower {
			t.Fatalf("point %d differs under concurrency", i)
		}
	}
}

func TestEvaluateSineFig4Shape(t *testing.T) {
	cfg := Config{Tech: tech.GPDK045(), Sys: tech.DefaultSystem(), Seed: 7}
	quiet := EvaluateSine(cfg, DesignPoint{Arch: ArchBaseline, Bits: 8, LNANoise: 1e-6}, 0, 20)
	noisy := EvaluateSine(cfg, DesignPoint{Arch: ArchBaseline, Bits: 8, LNANoise: 20e-6}, 0, 20)
	if quiet.SNDRdB <= noisy.SNDRdB {
		t.Fatalf("SNDR should fall with the noise floor: %g vs %g dB", quiet.SNDRdB, noisy.SNDRdB)
	}
	// Quiet chain approaches the 8-bit quantisation limit (49.9 dB) minus
	// implementation losses.
	if quiet.SNDRdB < 30 || quiet.SNDRdB > 52 {
		t.Fatalf("quiet-chain SNDR = %g dB, implausible for 8 bits", quiet.SNDRdB)
	}
	if quiet.TotalPower <= noisy.TotalPower {
		t.Fatal("quiet chain must burn more power (Fig 4 trade-off)")
	}
	if quiet.ENOB <= noisy.ENOB {
		t.Fatal("ENOB ordering wrong")
	}
}

func TestArchitectureAndPointStrings(t *testing.T) {
	if ArchBaseline.String() != "baseline" || ArchCS.String() != "cs" {
		t.Fatal("architecture names")
	}
	if Architecture(9).String() == "" {
		t.Fatal("unknown architecture should render")
	}
	p := DesignPoint{Arch: ArchCS, Bits: 8, LNANoise: 5e-6, M: 150, CHold: 80e-15}
	s := p.String()
	if s == "" || math.Signbit(1) {
		t.Fatalf("point string = %q", s)
	}
	if (DesignPoint{Arch: ArchBaseline, Bits: 6, LNANoise: 1e-6}).String() == "" {
		t.Fatal("baseline point string empty")
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	ev := testEvaluator(t)
	if ev.Records() == 0 {
		t.Fatal("no records")
	}
	if math.Abs(ev.OutputRate()-537.6) > 1e-9 {
		t.Fatalf("output rate = %g", ev.OutputRate())
	}
}

func TestEvaluateVariantArchitectures(t *testing.T) {
	ev := testEvaluator(t)
	dig := ev.Evaluate(DesignPoint{Arch: ArchCSDigital, Bits: 8, LNANoise: 5e-6, M: 96})
	act := ev.Evaluate(DesignPoint{Arch: ArchCSActive, Bits: 8, LNANoise: 5e-6, M: 96})
	pas := ev.Evaluate(DesignPoint{Arch: ArchCS, Bits: 8, LNANoise: 5e-6, M: 96})
	if dig.TotalPower <= 0 || act.TotalPower <= 0 {
		t.Fatal("variant evaluation failed")
	}
	if pas.TotalPower >= act.TotalPower || pas.TotalPower >= dig.TotalPower {
		t.Fatalf("passive CS (%g) should be the cheapest CS variant (active %g, digital %g)",
			pas.TotalPower, act.TotalPower, dig.TotalPower)
	}
	if dig.MeanSNRdB < 3 || act.MeanSNRdB < 3 {
		t.Fatalf("variant SNRs too low: digital %g, active %g", dig.MeanSNRdB, act.MeanSNRdB)
	}
	if (DesignPoint{Arch: ArchCSDigital, Bits: 8, LNANoise: 1e-6, M: 96}).String() == "" {
		t.Fatal("variant point string empty")
	}
	if ArchCSDigital.String() != "cs-digital" || ArchCSActive.String() != "cs-active" {
		t.Fatal("variant architecture names")
	}
}
