package core

import (
	"strings"
	"testing"
)

// TestArchitectureRoundTrip pins String/ParseArchitecture as exact
// inverses over the full enum — the one table every wire name, CSV
// column and CLI flag resolves through.
func TestArchitectureRoundTrip(t *testing.T) {
	archs := Architectures()
	if len(archs) != 4 {
		t.Fatalf("enum has %d architectures, update this test deliberately", len(archs))
	}
	seen := map[string]bool{}
	for _, a := range archs {
		name := a.String()
		if name == "" || strings.HasPrefix(name, "Architecture(") {
			t.Fatalf("architecture %d has no wire name", int(a))
		}
		if seen[name] {
			t.Fatalf("duplicate wire name %q", name)
		}
		seen[name] = true
		got, err := ParseArchitecture(name)
		if err != nil {
			t.Fatalf("ParseArchitecture(%q): %v", name, err)
		}
		if got != a {
			t.Fatalf("round-trip %v -> %q -> %v", a, name, got)
		}
	}
	for _, bad := range []string{"", "CS", "baseline ", "cs_digital", "analog"} {
		if _, err := ParseArchitecture(bad); err == nil {
			t.Fatalf("ParseArchitecture(%q) accepted a non-wire name", bad)
		}
	}
	// An out-of-range value renders its diagnostic form, which must not
	// parse back.
	if _, err := ParseArchitecture(Architecture(99).String()); err == nil {
		t.Fatal("diagnostic String form parsed as a wire name")
	}
}
