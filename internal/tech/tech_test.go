package tech

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGPDK045Valid(t *testing.T) {
	if err := GPDK045().Validate(); err != nil {
		t.Fatalf("default technology invalid: %v", err)
	}
}

func TestGPDK045TableIIIValues(t *testing.T) {
	p := GPDK045()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"CLogic", p.CLogic, 1e-15},
		{"GmOverId", p.GmOverId, 20},
		{"CapDensity", p.CapDensity, 1.025e-15},
		{"CUnitMin", p.CUnitMin, 1e-15},
		{"ILeak", p.ILeak, 1e-12},
		{"EBit", p.EBit, 1e-9},
		{"VT", p.VT, 25.27e-3},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 1e-30+1e-9*math.Abs(c.want) {
			t.Errorf("%s = %g, want %g (Table III)", c.name, c.got, c.want)
		}
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	fields := []struct {
		name   string
		damage func(*Params)
	}{
		{"CLogic", func(p *Params) { p.CLogic = 0 }},
		{"GmOverId", func(p *Params) { p.GmOverId = -1 }},
		{"CapDensity", func(p *Params) { p.CapDensity = 0 }},
		{"CUnitMin", func(p *Params) { p.CUnitMin = 0 }},
		{"CPk", func(p *Params) { p.CPk = 0 }},
		{"ILeak", func(p *Params) { p.ILeak = -2 }},
		{"EBit", func(p *Params) { p.EBit = 0 }},
		{"VT", func(p *Params) { p.VT = 0 }},
		{"Temperature", func(p *Params) { p.Temperature = 0 }},
		{"NEF", func(p *Params) { p.NEF = 0 }},
		{"VEff", func(p *Params) { p.VEff = 0 }},
	}
	for _, f := range fields {
		p := GPDK045()
		f.damage(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("Validate missed broken %s", f.name)
			continue
		}
		if !strings.Contains(err.Error(), f.name) {
			t.Errorf("error for broken %s does not name it: %v", f.name, err)
		}
	}
}

func TestCapAreaAndMismatch(t *testing.T) {
	p := GPDK045()
	// 1.025 fF occupies exactly 1 µm².
	area := p.CapArea(1.025e-15)
	if math.Abs(area-1) > 1e-9 {
		t.Fatalf("CapArea(1.025fF) = %g µm², want 1", area)
	}
	// Mismatch sigma follows 1/area: quadrupled cap → quartered sigma.
	s1 := p.MismatchSigma(1e-15)
	s4 := p.MismatchSigma(4e-15)
	if math.Abs(s1/s4-4) > 1e-9 {
		t.Fatalf("mismatch area law violated: sigma(1fF)/sigma(4fF) = %g, want 4", s1/s4)
	}
}

func TestMismatchSigmaMonotoneProperty(t *testing.T) {
	p := GPDK045()
	f := func(a, b uint16) bool {
		ca := (float64(a) + 1) * 1e-16
		cb := (float64(b) + 1) * 1e-16
		sa, sb := p.MismatchSigma(ca), p.MismatchSigma(cb)
		if ca < cb {
			return sa >= sb
		}
		return sb >= sa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSystemValues(t *testing.T) {
	s := DefaultSystem()
	if err := s.Validate(); err != nil {
		t.Fatalf("default system invalid: %v", err)
	}
	if got := s.FSample(); math.Abs(got-537.6) > 1e-9 {
		t.Errorf("FSample = %g, want 537.6 (2.1·256)", got)
	}
	if got := s.FClk(8); math.Abs(got-9*537.6) > 1e-9 {
		t.Errorf("FClk(8) = %g, want %g", got, 9*537.6)
	}
	if got := s.LNABandwidth(); math.Abs(got-768) > 1e-9 {
		t.Errorf("LNABandwidth = %g, want 768 (3·256)", got)
	}
}

func TestSystemValidateNyquist(t *testing.T) {
	s := DefaultSystem()
	s.OversampleRatio = 1.5
	if err := s.Validate(); err == nil {
		t.Fatal("sub-Nyquist oversample ratio should fail validation")
	}
}

func TestSystemValidateNegative(t *testing.T) {
	s := DefaultSystem()
	s.VDD = 0
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "VDD") {
		t.Fatalf("expected VDD error, got %v", err)
	}
}

func TestKTPositive(t *testing.T) {
	p := GPDK045()
	kt := p.KT()
	if kt <= 0 || kt > 1e-20 {
		t.Fatalf("KT = %g out of plausible range", kt)
	}
}
