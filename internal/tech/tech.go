// Package tech holds the technology and system design parameters of
// EffiCSense (paper Table III). The paper extracts these from a gpdk045
// predictive technology with Cadence Virtuoso; since that tooling is
// proprietary, the published Table III values are hard-coded as the
// GPDK045 parameter set and arbitrary sets can be constructed and
// validated for other technologies.
package tech

import (
	"errors"
	"fmt"

	"efficsense/internal/units"
)

// Params bundles the technology constants consumed by the power and
// behavioural models (paper Table III, top half).
type Params struct {
	// CLogic is the minimal logic gate capacitance (F). Table III: 1 fF.
	CLogic float64
	// GmOverId is the transconductance efficiency used in the LNA speed
	// term (1/V). Table III: 20 /V.
	GmOverId float64
	// CapDensity is the MIM/MOM capacitor density (F/µm²).
	// Table III: 0.001025 pF/µm² = 1.025 fF/µm².
	CapDensity float64
	// CUnitMin is the minimum realisable unit capacitor (F). Table III: 1 fF.
	CUnitMin float64
	// CPk is the capacitor mismatch (Pelgrom) coefficient expressed as the
	// relative sigma·area product: sigma(ΔC/C) = CPk / area[µm²] (fraction,
	// not percent). Table III lists 3.48e-9 %/µm²; see MismatchSigma.
	CPk float64
	// ILeak is the switch leakage current (A). Table III: 1 pA.
	ILeak float64
	// EBit is the transmitter energy per bit (J). Table III: 1 nJ.
	EBit float64
	// VT is the thermal voltage kT/q used in the power bounds (V).
	// Table III: 25.27 mV.
	VT float64
	// Temperature is the simulation temperature (K) used for kT noise.
	Temperature float64
	// NEF is the LNA noise-efficiency factor used in the noise-limited
	// power term. Not tabulated in the paper; 2.0 is a typical value for
	// the instrumentation-amplifier topologies of ref [16].
	NEF float64
	// VEff is the comparator effective (overdrive) voltage in the
	// Sundström comparator bound. The paper does not tabulate it; the
	// thermal voltage VT is the customary lower bound and the default.
	VEff float64
}

// GPDK045 returns the parameter set the paper extracted from the gpdk045
// predictive technology (Table III).
func GPDK045() Params {
	return Params{
		CLogic:      1e-15,
		GmOverId:    20,
		CapDensity:  1.025e-15, // 0.001025 pF/µm² in F/µm²
		CUnitMin:    1e-15,
		CPk:         3.48e-11, // 3.48e-9 %/µm² as a fraction·µm²
		ILeak:       1e-12,
		EBit:        1e-9,
		VT:          25.27e-3,
		Temperature: units.RoomTemperature,
		NEF:         2.0,
		VEff:        25.27e-3,
	}
}

// Validate reports whether every parameter is physically sensible.
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if !(v > 0) {
			return fmt.Errorf("tech: %s must be positive, got %g", name, v)
		}
		return nil
	}
	var errs []error
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"CLogic", p.CLogic},
		{"GmOverId", p.GmOverId},
		{"CapDensity", p.CapDensity},
		{"CUnitMin", p.CUnitMin},
		{"CPk", p.CPk},
		{"ILeak", p.ILeak},
		{"EBit", p.EBit},
		{"VT", p.VT},
		{"Temperature", p.Temperature},
		{"NEF", p.NEF},
		{"VEff", p.VEff},
	} {
		if err := check(c.name, c.v); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// KT returns k·T for this technology's temperature (J).
func (p Params) KT() float64 { return units.KT(p.Temperature) }

// CapArea returns the layout area (µm²) of a capacitor of value c (F).
func (p Params) CapArea(c float64) float64 { return c / p.CapDensity }

// MismatchSigma returns the relative 1-sigma mismatch of a capacitor of
// value c (F) from the Pelgrom-style area law: sigma = CPk / area(µm²).
// Larger capacitors match better.
func (p Params) MismatchSigma(c float64) float64 {
	area := p.CapArea(c)
	if area <= 0 {
		return 0
	}
	return p.CPk / area
}

// System bundles the application-level design constants (Table III, bottom
// half) shared by both architectures. The per-design-point variables (LNA
// noise, ADC bits, CS M) live in the DSE search space, not here.
type System struct {
	// BWInput is the application signal bandwidth (Hz). Table III: 256 Hz.
	BWInput float64
	// VDD is the supply voltage (V). Table III: 2 V.
	VDD float64
	// VFS is the ADC full-scale voltage (V). Table III: 2 V.
	VFS float64
	// VRef is the reference voltage (V). Table III: 2 V.
	VRef float64
	// OversampleRatio relates the Nyquist sample rate to the bandwidth:
	// f_sample = OversampleRatio · BWInput. Table III: 2.1.
	OversampleRatio float64
	// LNABWRatio relates the LNA bandwidth to the signal bandwidth:
	// BW_LNA = LNABWRatio · BWInput. Table III: 3.
	LNABWRatio float64
}

// DefaultSystem returns the Table III application constants used in the
// paper's epilepsy-detection demonstrator.
func DefaultSystem() System {
	return System{
		BWInput:         256,
		VDD:             2,
		VFS:             2,
		VRef:            2,
		OversampleRatio: 2.1,
		LNABWRatio:      3,
	}
}

// Validate reports whether the system constants are sensible.
func (s System) Validate() error {
	var errs []error
	pos := func(name string, v float64) {
		if !(v > 0) {
			errs = append(errs, fmt.Errorf("tech: system %s must be positive, got %g", name, v))
		}
	}
	pos("BWInput", s.BWInput)
	pos("VDD", s.VDD)
	pos("VFS", s.VFS)
	pos("VRef", s.VRef)
	pos("OversampleRatio", s.OversampleRatio)
	pos("LNABWRatio", s.LNABWRatio)
	if s.OversampleRatio < 2 && s.OversampleRatio > 0 {
		errs = append(errs, fmt.Errorf("tech: OversampleRatio %g violates Nyquist (need >= 2)", s.OversampleRatio))
	}
	return errors.Join(errs...)
}

// FSample returns the ADC sample rate f_sample = ratio·BW (Hz).
func (s System) FSample() float64 { return s.OversampleRatio * s.BWInput }

// FClk returns the SAR clock f_clk = (N+1)·f_sample for an N-bit converter
// (Table III).
func (s System) FClk(bits int) float64 { return float64(bits+1) * s.FSample() }

// LNABandwidth returns BW_LNA = LNABWRatio·BWInput (Hz).
func (s System) LNABandwidth() float64 { return s.LNABWRatio * s.BWInput }
