package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// smallSearch asks for the best-SNR design over the smallSweep-shaped
// grid (2 bits × 8 noise points of baseline = 16 designs) with budget
// to spare. Under slowEval's figures (SNR = 3·bits, power rising with
// bits and noise) the true front is two points: each ADC resolution at
// its cheapest noise setting.
const smallSearch = `{"query":"max-snr","max_evaluations":12,
	"space":{"architectures":["baseline"],"bits":[4,6],"noise_steps":8}}`

// waitTerminalAt polls an arbitrary status URL until the job finishes.
func waitTerminalAt(t *testing.T, url string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		if JobState(st.State).Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobStatus{}
}

// TestSearchJobEndToEnd is the search acceptance e2e over the full HTTP
// stack: submit, watch front events stream over SSE, poll to
// completion, check the discovered front and best design against the
// evaluator's closed form, fetch the NDJSON front, find the job in the
// listing, and reconcile the budget accounting across the status JSON,
// the terminal SSE event and /metrics.
func TestSearchJobEndToEnd(t *testing.T) {
	ts, mgr, eval := newTestServer(t, 0, ManagerConfig{})

	resp := postJSON(t, ts.URL+"/v1/search", smallSearch)
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	loc := resp.Header.Get("Location")
	st := decodeStatus(t, resp)
	if st.Kind != "search" || !strings.HasPrefix(st.ID, "search-") {
		t.Fatalf("submitted job: kind %q id %q", st.Kind, st.ID)
	}
	if st.StatusURL != "/v1/search/"+st.ID || loc != st.StatusURL {
		t.Fatalf("status URL %q, Location %q", st.StatusURL, loc)
	}

	evResp, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, evResp.Body)
	evResp.Body.Close()
	fronts, dones := 0, 0
	var done *sseEvent
	lastEvals := 0.0
	for i, ev := range events {
		switch ev.name {
		case "front":
			fronts++
			evals := ev.data["evaluations"].(float64)
			if evals < lastEvals {
				t.Fatalf("front events regressed: %g after %g", evals, lastEvals)
			}
			lastEvals = evals
			if ev.data["budget"].(float64) != 12 {
				t.Fatalf("front event budget: %v", ev.data)
			}
		case "done":
			dones++
			done = &events[i]
		}
	}
	if fronts == 0 || dones != 1 {
		t.Fatalf("stream had %d front events and %d done events", fronts, dones)
	}
	if done.data["state"] != "completed" || done.data["partial"] != false {
		t.Fatalf("done event: %v", done.data)
	}
	if done.data["evaluations"].(float64)+done.data["budget_remaining"].(float64) != done.data["budget"].(float64) {
		t.Fatalf("done event budget accounting: %v", done.data)
	}

	final := waitTerminalAt(t, ts.URL+st.StatusURL)
	if final.State != string(StateCompleted) || final.Search == nil {
		t.Fatalf("final status: %+v", final)
	}
	so := final.Search
	if so.Partial || so.Errors != 0 {
		t.Fatalf("clean search outcome: %+v", so)
	}
	if so.Evaluations <= 0 || so.Evaluations > so.Budget || so.Evaluations+so.BudgetRemaining != so.Budget {
		t.Fatalf("budget accounting: %+v", so)
	}
	if got := eval.calls.Load(); got > 12 {
		t.Fatalf("evaluator saw %d calls, budget was 12", got)
	}
	// The true front: each ADC resolution at its cheapest noise floor.
	if len(so.Front) != 2 {
		t.Fatalf("front size %d, want 2: %+v", len(so.Front), so.Front)
	}
	for i, row := range so.Front {
		if row.SNRdB != 3*float64(row.Point.Bits) || row.Err != "" {
			t.Fatalf("front row %d off closed form: %+v", i, row)
		}
		if i > 0 && (row.TotalW <= so.Front[i-1].TotalW || row.SNRdB <= so.Front[i-1].SNRdB) {
			t.Fatalf("front not strictly ascending at %d: %+v", i, so.Front)
		}
	}
	if so.Best == nil || so.Best.SNRdB != 18 {
		t.Fatalf("best design should be the 6-bit point: %+v", so.Best)
	}

	rResp, err := http.Get(ts.URL + final.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rResp.Body)
	rResp.Body.Close()
	if rResp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("results content type %q", rResp.Header.Get("Content-Type"))
	}
	if lines := strings.Count(string(body), "\n"); lines != len(so.Front) {
		t.Fatalf("results NDJSON lines %d, want %d:\n%s", lines, len(so.Front), body)
	}

	// The job appears in the shared listing, discriminated by kind.
	lResp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var list JobListJSON
	if err := json.NewDecoder(lResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lResp.Body.Close()
	foundListed := false
	for _, sum := range list.Jobs {
		if sum.ID == st.ID {
			foundListed = true
			if sum.Kind != "search" || sum.StatusURL != st.StatusURL {
				t.Fatalf("listing row: %+v", sum)
			}
		}
	}
	if !foundListed {
		t.Fatalf("search job missing from GET /v1/sweeps: %+v", list)
	}

	c := mgr.Counters()
	if c.SearchSubmitted != 1 || c.SearchCompleted != 1 || c.SearchEvaluations != int64(so.Evaluations) {
		t.Fatalf("search counters: %+v", c)
	}
	metrics := fetchMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "efficsense_search_jobs_submitted_total"); got != 1 {
		t.Errorf("exposed submitted %g, want 1", got)
	}
	if got := metricValue(t, metrics, "efficsense_search_evaluations_total"); got != float64(so.Evaluations) {
		t.Errorf("exposed evaluations %g, want %d", got, so.Evaluations)
	}
	if got := metricValue(t, metrics, "efficsense_search_front_size"); got != float64(len(so.Front)) {
		t.Errorf("exposed front size %g, want %d", got, len(so.Front))
	}
	if got := metricValue(t, metrics, "efficsense_search_budget_remaining"); got != float64(so.BudgetRemaining) {
		t.Errorf("exposed budget remaining %g, want %d", got, so.BudgetRemaining)
	}
}

// TestSearchDeterminismOverHTTP pins the wire-level determinism
// contract: two identical submissions (same seed, budget, space) return
// byte-identical NDJSON fronts — the second served warm from the shared
// cache, which must not change the answer.
func TestSearchDeterminismOverHTTP(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{})
	body := `{"query":"max-snr","max_evaluations":12,"seed":5,
		"space":{"architectures":["baseline"],"bits":[4,6],"noise_steps":8}}`

	fetch := func() string {
		st := decodeStatus(t, postJSON(t, ts.URL+"/v1/search", body))
		final := waitTerminalAt(t, ts.URL+st.StatusURL)
		if final.State != string(StateCompleted) {
			t.Fatalf("state %s: %s", final.State, final.Error)
		}
		resp, err := http.Get(ts.URL + final.ResultsURL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return string(raw)
	}
	a, b := fetch(), fetch()
	if a != b {
		t.Fatalf("identical searches returned different fronts:\n%s\nvs\n%s", a, b)
	}
}

// TestSearchMinPowerStructuredFields exercises the structured-field
// request path and the other goal direction: with slowEval's constant
// accuracy, the cheapest design in the space is the answer and the
// accuracy front collapses to that single point.
func TestSearchMinPowerStructuredFields(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/search",
		`{"goal":"min-power","min_quality":0.9,"max_evaluations":12,
		  "space":{"architectures":["baseline"],"bits":[4,6],"noise_steps":8}}`))
	final := waitTerminalAt(t, ts.URL+st.StatusURL)
	if final.State != string(StateCompleted) || final.Search == nil {
		t.Fatalf("final: %+v", final)
	}
	so := final.Search
	if so.Query != "min-power@accuracy>=0.9" {
		t.Fatalf("canonical query %q", so.Query)
	}
	if so.Best == nil {
		t.Fatalf("no feasible design: %+v", so)
	}
	// Cheapest point of the grid: 4 bits at the 1 µV noise floor.
	if so.Best.Point.Bits != 4 || so.Best.Point.LNANoise != 1e-6 {
		t.Fatalf("best design: %+v", so.Best)
	}
	if want := so.Best.Point.LNANoise * 1e3 * 4; so.Best.TotalW != want {
		t.Fatalf("best power %g, want %g", so.Best.TotalW, want)
	}
}

// TestSearchCancelKeepsPartialFront: DELETE mid-run lands the job in
// cancelled with the partial front intact and the budget accounted.
func TestSearchCancelKeepsPartialFront(t *testing.T) {
	ts, _, _ := newTestServer(t, 30*time.Millisecond, ManagerConfig{})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/search",
		`{"query":"max-snr","max_evaluations":16,
		  "space":{"architectures":["baseline"],"bits":[4,6],"noise_steps":8}}`))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+st.StatusURL, nil)
	dResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dResp.Body.Close()
	if dResp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", dResp.StatusCode)
	}

	final := waitTerminalAt(t, ts.URL+st.StatusURL)
	if final.State != string(StateCancelled) {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if final.Search == nil || !final.Search.Partial {
		t.Fatalf("cancelled search outcome: %+v", final.Search)
	}
	if so := final.Search; so.Evaluations+so.BudgetRemaining != so.Budget {
		t.Fatalf("budget accounting after cancel: %+v", so)
	}
}

// TestSearchValidation walks the 400 edges of POST /v1/search and the
// 404 of an unknown search ID.
func TestSearchValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{})
	cases := []struct {
		name, body, wantIn string
	}{
		{"query and structured goal", `{"query":"max-accuracy","goal":"min-power"}`, "mutually exclusive"},
		{"unknown goal", `{"query":"best-accuracy"}`, "unknown goal"},
		{"min-power without floor", `{"goal":"min-power"}`, "must be positive"},
		{"min_quality on a max goal", `{"goal":"max-accuracy","min_quality":0.9}`, "min_quality"},
		{"metric on a max goal", `{"goal":"max-snr","metric":"accuracy"}`, "metric"},
		{"budget above the cap", `{"query":"max-accuracy","max_evaluations":999999}`, "exceeds the limit"},
		{"negative probe records", `{"query":"max-accuracy","probe_records":-1}`, "probe_records"},
		{"bad space", `{"query":"max-accuracy","space":{"architectures":["warp"]}}`, "warp"},
		{"unknown field", `{"quarry":"max-accuracy"}`, "quarry"},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/search", c.body)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, raw)
			continue
		}
		if !strings.Contains(string(raw), c.wantIn) {
			t.Errorf("%s: error %s does not mention %q", c.name, raw, c.wantIn)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/search/search-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown search id: status %d, want 404", resp.StatusCode)
	}
}

// TestSearchBudgetDefaultsSmallSpaces pins the default-budget clamp on
// degenerate spaces: a request without max_evaluations defaults to a
// tenth of its space, which rounds to zero for spaces under ten points —
// the clamp keeps it at one evaluation minimum, so tiny spaces are
// accepted and searched instead of failing spec validation. The budget
// accounting must still reconcile at every size.
func TestSearchBudgetDefaultsSmallSpaces(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{})

	cases := []struct {
		name       string
		space      string // size = |bits| x |lna_noise|
		size       int
		wantBudget int
	}{
		{"single point", `{"architectures":["baseline"],"bits":[4],"lna_noise":[1.0]}`, 1, 1},
		{"two points", `{"architectures":["baseline"],"bits":[4,6],"lna_noise":[1.0]}`, 2, 1},
		{"nine points", `{"architectures":["baseline"],"bits":[4,6,8],"lna_noise":[1.0,2.0,3.0]}`, 9, 1},
		{"just past the clamp", `{"architectures":["baseline"],"bits":[4,6],"lna_noise":[1.0,2.0,3.0,4.0,5.0]}`, 10, 1},
		{"a tenth rounds down", `{"architectures":["baseline"],"bits":[4,6,8,10,12],"lna_noise":[1.0,2.0,3.0,4.0,5.0]}`, 25, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/search", `{"query":"max-snr","space":`+c.space+`}`)
			if resp.StatusCode != http.StatusAccepted {
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
			}
			st := decodeStatus(t, resp)
			final := waitTerminalAt(t, ts.URL+st.StatusURL)
			if final.State != string(StateCompleted) || final.Search == nil {
				t.Fatalf("final status: %+v", final)
			}
			so := final.Search
			if so.Budget != c.wantBudget {
				t.Fatalf("space of %d points defaulted to budget %d, want %d",
					c.size, so.Budget, c.wantBudget)
			}
			if so.Evaluations < 1 || so.Evaluations+so.BudgetRemaining != so.Budget {
				t.Fatalf("budget accounting: %+v", so)
			}
			if len(so.Front) == 0 {
				t.Fatalf("degenerate space produced an empty front: %+v", so)
			}
		})
	}
}
