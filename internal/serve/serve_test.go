package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
)

// slowEval is a deterministic stand-in for the real evaluator: fast,
// tunable latency, every design point admissible for the fronts.
type slowEval struct {
	delay time.Duration
	calls atomic.Int64
}

func (e *slowEval) Evaluate(p core.DesignPoint) core.Result {
	e.calls.Add(1)
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	return core.Result{
		Point:      p,
		MeanSNRdB:  3 * float64(p.Bits),
		Accuracy:   0.99,
		TotalPower: p.LNANoise * 1e3 * float64(p.Bits),
		AreaCaps:   float64(64 * p.Bits),
	}
}

// newTestServer wires a real dse.Sweep over slowEval behind the full
// HTTP stack, memoising through a bounded store so the tests exercise
// exactly the production (daemon) cache path. Every option set resolves
// to the same engine, so the warm cache behaviour is production's.
func newTestServer(t *testing.T, delay time.Duration, cfg ManagerConfig) (*httptest.Server, *Manager, *slowEval) {
	t.Helper()
	return newTestServerWithCache(t, delay, cfg, cache.New(128))
}

// newTestServerWithCache is newTestServer with the memoisation store
// chosen by the caller (a tiny capacity, say, to force evictions).
func newTestServerWithCache(t *testing.T, delay time.Duration, cfg ManagerConfig, store dse.Cache) (*httptest.Server, *Manager, *slowEval) {
	t.Helper()
	eval := &slowEval{delay: delay}
	eng, err := dse.NewSweep(eval,
		dse.WithCache(store), dse.WithWorkers(2), dse.WithEvaluatorID("test-eval"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engines = func(opts experiments.Options) (Engine, error) { return eng, nil }
	cfg.Cache = store
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		ts.Close()
	})
	return ts, mgr, eval
}

// metricValue extracts the value of an unlabelled metric from a
// Prometheus text exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s absent from exposition:\n%s", name, exposition)
	return 0
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls the status endpoint until the job finishes.
func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		if JobState(st.State).Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobStatus{}
}

type sseEvent struct {
	id   int
	name string
	data map[string]interface{}
}

// readSSE consumes an SSE stream to EOF (the server closes terminal
// streams itself) and parses the frames.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != nil {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = map[string]interface{}{}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// smallSweep is 2 bits × 3 noise points of baseline = 6 design points.
const smallSweep = `{"space":{"architectures":["baseline"],"bits":[4,6],"noise_steps":3}}`

// TestSweepLifecycleAndWarmCache is the acceptance e2e: submit a sweep,
// watch monotonic SSE progress, poll to completion, fetch the fronts,
// then run the identical sweep again and observe it complete warm via
// the shared cache, with the hits visible in /metrics.
func TestSweepLifecycleAndWarmCache(t *testing.T) {
	ts, _, eval := newTestServer(t, time.Millisecond, ManagerConfig{})

	resp := postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/sweeps/") {
		t.Fatalf("Location %q", loc)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" || st.Progress.Total != 6 {
		t.Fatalf("submit body: %+v", st)
	}

	// Stream events to EOF; the server ends the stream once terminal.
	evResp, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	events := readSSE(t, evResp.Body)
	evResp.Body.Close()

	var (
		lastDone float64
		points   int
		sawDone  bool
	)
	for _, ev := range events {
		switch ev.name {
		case "point":
			points++
			done := ev.data["done"].(float64)
			if done <= lastDone {
				t.Fatalf("SSE progress not monotonic: %v after %v", done, lastDone)
			}
			lastDone = done
		case "done":
			sawDone = true
			if ev.data["state"] != "completed" || ev.data["partial"] != false {
				t.Fatalf("done event: %v", ev.data)
			}
		}
	}
	if points != 6 || lastDone != 6 || !sawDone {
		t.Fatalf("events: %d point events, lastDone %v, done=%v", points, lastDone, sawDone)
	}
	for i, ev := range events {
		if ev.id != i+1 {
			t.Fatalf("SSE ids not sequential: %d at index %d", ev.id, i)
		}
	}

	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateCompleted) || final.Result == nil {
		t.Fatalf("final status: %+v", final)
	}
	if final.Result.Partial || final.Result.Points != 6 || len(final.Result.Fronts["snr"].Baseline) == 0 {
		t.Fatalf("outcome: %+v", final.Result)
	}
	if final.Result.Optima["baseline"] == nil {
		t.Fatal("no baseline optimum")
	}

	// The result cloud streams as NDJSON, one line per point.
	rResp, err := http.Get(ts.URL + final.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rResp.Body)
	rResp.Body.Close()
	if lines := bytes.Count(body, []byte("\n")); lines != 6 {
		t.Fatalf("results NDJSON lines %d:\n%s", lines, body)
	}

	// Second identical sweep: every point served from the shared cache.
	calls := eval.calls.Load()
	resp2 := postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
	st2 := decodeStatus(t, resp2)
	final2 := waitTerminal(t, ts.URL, st2.ID)
	if final2.State != string(StateCompleted) {
		t.Fatalf("second sweep state %s", final2.State)
	}
	if eval.calls.Load() != calls {
		t.Fatalf("warm sweep re-evaluated: %d calls, want %d", eval.calls.Load(), calls)
	}
	if final2.Metrics == nil || final2.Metrics.CacheHits < 6 {
		t.Fatalf("engine metrics after warm sweep: %+v", final2.Metrics)
	}

	// The hits are visible in the Prometheus exposition.
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	for _, want := range []string{
		"efficsense_engine_cache_hits_total 6",
		"efficsense_cache_hits_total 6",
		"efficsense_jobs_completed_total 2",
		"efficsense_cache_entries 6",
		"efficsense_cache_capacity 128",
		"efficsense_cache_evictions_total 0",
		`efficsense_http_requests_total{code="202"} 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestEvaluateCacheBoundAndEvictions drives a stream of distinct
// /v1/evaluate requests past the cache's entry cap and checks the bound
// is a hard invariant — occupancy never exceeds capacity, however many
// distinct points flow through — while the evictions that enforce it
// surface in the Prometheus exposition.
func TestEvaluateCacheBoundAndEvictions(t *testing.T) {
	store := cache.New(4)
	ts, _, eval := newTestServerWithCache(t, 0, ManagerConfig{}, store)

	const distinct = 10
	for i := 0; i < distinct; i++ {
		body := fmt.Sprintf(`{"point":{"arch":"baseline","bits":8,"lna_noise":%g}}`, float64(i+1)*1e-6)
		resp := postJSON(t, ts.URL+"/v1/evaluate", body)
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("evaluate %d status %d: %s", i, resp.StatusCode, raw)
		}
		resp.Body.Close()
		if n := store.Len(); n > store.Cap() {
			t.Fatalf("after %d distinct points the cache holds %d entries, above its cap %d",
				i+1, n, store.Cap())
		}
	}
	if got := eval.calls.Load(); got != distinct {
		t.Fatalf("distinct points must all evaluate: %d calls, want %d", got, distinct)
	}
	// 10 inserts into 4 slots: at least 6 must have been evicted (the
	// exact count depends on how the keys shard, never the bound).
	if st := store.Stats(); st.Evictions < distinct-4 {
		t.Fatalf("evictions %d, want >= %d (stats %+v)", st.Evictions, distinct-4, st)
	}

	metrics := fetchMetrics(t, ts.URL)
	if !strings.Contains(metrics, "efficsense_cache_capacity 4") {
		t.Errorf("/metrics missing capacity gauge:\n%s", metrics)
	}
	if ev := metricValue(t, metrics, "efficsense_cache_evictions_total"); ev < distinct-4 {
		t.Errorf("exposed evictions %g, want >= %d", ev, distinct-4)
	}
	if entries := metricValue(t, metrics, "efficsense_cache_entries"); entries > 4 {
		t.Errorf("exposed occupancy %g above cap 4", entries)
	}
}

// TestConcurrentIdenticalSweepsSingleflight is the de-duplication
// acceptance test: K identical sweeps racing through one engine incur
// exactly one underlying evaluation per design point — every other
// request settles from the cache or by joining the in-flight
// computation — and the split shows up in /metrics.
func TestConcurrentIdenticalSweepsSingleflight(t *testing.T) {
	const k = 3
	ts, mgr, eval := newTestServer(t, 20*time.Millisecond, ManagerConfig{MaxConcurrentJobs: k})

	ids := make(chan string, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smallSweep))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit status %d", resp.StatusCode)
				return
			}
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids <- st.ID
		}()
	}
	wg.Wait()
	close(ids)
	if t.Failed() {
		t.FailNow()
	}
	for id := range ids {
		if st := waitTerminal(t, ts.URL, id); st.State != string(StateCompleted) {
			t.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
		}
	}

	if got := eval.calls.Load(); got != 6 {
		t.Fatalf("6 distinct points across %d identical sweeps cost %d evaluations, want exactly 6", k, got)
	}
	c := mgr.Counters()
	if c.EngineCacheHits+c.EngineDeduped != (k-1)*6 {
		t.Fatalf("hits %d + deduped %d, want %d together",
			c.EngineCacheHits, c.EngineDeduped, (k-1)*6)
	}

	metrics := fetchMetrics(t, ts.URL)
	hits := metricValue(t, metrics, "efficsense_engine_cache_hits_total")
	dedup := metricValue(t, metrics, "efficsense_engine_dedup_total")
	if hits+dedup != (k-1)*6 {
		t.Errorf("exposed hits %g + dedup %g, want %d together", hits, dedup, (k-1)*6)
	}
}

// TestSSEResumesFromLastEventID reconnects mid-stream and checks the
// buffer replays exactly the missed suffix.
func TestSSEResumesFromLastEventID(t *testing.T) {
	ts, _, _ := newTestServer(t, time.Millisecond, ManagerConfig{})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	waitTerminal(t, ts.URL, st.ID)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+st.EventsURL, nil)
	req.Header.Set("Last-Event-ID", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp.Body)
	resp.Body.Close()
	// Full stream is state + 6 points + done = 8 events; after id 3 we
	// get 5, starting at id 4.
	if len(events) != 5 || events[0].id != 4 || events[len(events)-1].name != "done" {
		t.Fatalf("resume replay: %d events, first id %d", len(events), events[0].id)
	}
}

// TestCancelStopsJobPromptly covers the DELETE path: the job stops well
// before the full sweep would finish and reports partial results.
func TestCancelStopsJobPromptly(t *testing.T) {
	ts, _, _ := newTestServer(t, 30*time.Millisecond, ManagerConfig{})
	// 3 bits × 8 noise = 24 points × 30ms / 2 workers ≈ 360ms of work.
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))

	// Wait until at least one point completed so cancellation is mid-run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur := decodeStatus(t, resp); cur.Progress.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	resp.Body.Close()

	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateCancelled) {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if final.Result == nil || !final.Result.Partial {
		t.Fatalf("cancelled job should carry a partial outcome: %+v", final.Result)
	}
	if final.Result.Points == 0 || final.Result.Points >= final.Result.Total {
		t.Fatalf("partial points %d of %d", final.Result.Points, final.Result.Total)
	}
	// Cancelling a finished job is a harmless no-op.
	resp2, err := http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("re-cancel status %d", resp2.StatusCode)
	}
	resp2.Body.Close()
}

// TestSaturationReturns429 fills the single job slot and checks the
// backpressure contract: 429 plus a Retry-After hint.
func TestSaturationReturns429(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 30*time.Millisecond, ManagerConfig{MaxConcurrentJobs: 1})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))

	resp := postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status %d", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", resp.Header.Get("Retry-After"))
	}
	if mgr.Counters().Rejected != 1 {
		t.Fatalf("rejected counter %d", mgr.Counters().Rejected)
	}
	if _, err := mgr.Cancel(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts.URL, st.ID)
}

// TestEvaluateSyncAndWarm covers the synchronous endpoint: validation,
// the cached flag on a repeat, and the deadline → 504 mapping.
func TestEvaluateSyncAndWarm(t *testing.T) {
	ts, _, _ := newTestServer(t, 20*time.Millisecond, ManagerConfig{})
	body := `{"point":{"arch":"cs","bits":8,"lna_noise":2e-6,"m":100}}`

	resp := postJSON(t, ts.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, raw)
	}
	var rj ResultJSON
	if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rj.SNRdB != 24 || rj.Cached {
		t.Fatalf("first evaluation: %+v", rj)
	}

	resp = postJSON(t, ts.URL+"/v1/evaluate", body)
	var rj2 ResultJSON
	if err := json.NewDecoder(resp.Body).Decode(&rj2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rj2.Cached || rj2.SNRdB != rj.SNRdB {
		t.Fatalf("repeat evaluation should be cached: %+v", rj2)
	}

	// An impossible deadline maps to 504 (the point is cold: different bits).
	resp = postJSON(t, ts.URL+"/v1/evaluate",
		`{"point":{"arch":"cs","bits":9,"lna_noise":2e-6,"m":100},"timeout_ms":1}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status %d", resp.StatusCode)
	}
}

// TestRequestValidation walks the 400/404/409 edges.
func TestRequestValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{MaxSweepPoints: 5})
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/evaluate", `{"point":{"arch":"warp","bits":8,"lna_noise":1e-6}}`, 400},
		{"POST", "/v1/evaluate", `{"point":{"arch":"cs","bits":0,"lna_noise":1e-6}}`, 400},
		{"POST", "/v1/evaluate", `{"point":{"arch":"cs","bits":8,"lna_noise":1e-6}}`, 400}, // missing m
		{"POST", "/v1/evaluate", `{"pont":{}}`, 400},                                       // unknown field
		{"POST", "/v1/sweeps", `{"space":{"architectures":["warp"]}}`, 400},
		{"POST", "/v1/sweeps", smallSweep, 400}, // 6 points > MaxSweepPoints 5
		{"GET", "/v1/sweeps/sweep-99", "", 404},
		{"GET", "/v1/sweeps/sweep-99/events", "", 404},
		{"GET", "/v1/sweeps/sweep-99/results", "", 404},
		{"DELETE", "/v1/sweeps/sweep-99", "", 404},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if c.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			raw, _ := io.ReadAll(resp.Body)
			t.Errorf("%s %s → %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.want, raw)
		}
		resp.Body.Close()
	}
}

// TestResultsConflictWhileRunning: the NDJSON stream is only available
// once the job is terminal.
func TestResultsConflictWhileRunning(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 30*time.Millisecond, ManagerConfig{})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))
	resp, err := http.Get(ts.URL + st.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results of a running job: %d, want 409", resp.StatusCode)
	}
	if _, err := mgr.Cancel(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts.URL, st.ID)
}

// TestShutdownDrainsAndRejects: draining flips /healthz, rejects new
// work, and a shutdown deadline cancels in-flight jobs into the
// cancelled state.
func TestShutdownDrainsAndRejects(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 30*time.Millisecond, ManagerConfig{})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("impatient shutdown returned %v", err)
	}
	job, err := mgr.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s := job.State(); s != StateCancelled {
		t.Fatalf("job state after shutdown: %s", s)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d", resp.StatusCode)
	}
	var h healthJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("healthz status %q", h.Status)
	}
	if _, err := mgr.Submit(context.Background(), SweepRequest{}); err != ErrShuttingDown {
		t.Fatalf("submit while draining: %v", err)
	}
	if _, _, err := mgr.Evaluate(context.Background(), nil, core.DesignPoint{}, 0); err != ErrShuttingDown {
		t.Fatalf("evaluate while draining: %v", err)
	}
}

// TestJobTTLEviction: finished jobs disappear after the TTL.
func TestJobTTLEviction(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 0, ManagerConfig{JobTTL: 50 * time.Millisecond})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	waitTerminal(t, ts.URL, st.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := mgr.Job(st.ID); err == ErrNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job status %d, want 404", resp.StatusCode)
	}
}

// TestOptionsKeyCanonicalises pins the dedup key the warm cache depends
// on: explicit defaults and implied defaults must collide, and sinks
// must not matter.
func TestOptionsKeyCanonicalises(t *testing.T) {
	implied := experiments.NewSuite(experiments.Options{Seed: 1}).Options()
	explicit := experiments.NewSuite(experiments.Options{
		Seed: 1, Records: 40, NoiseSteps: 8, MinAccuracy: 0.98,
		Progress: func(done, total int) {},
	}).Options()
	if optionsKey(implied) != optionsKey(explicit) {
		t.Fatalf("defaulted option sets diverge: %q vs %q", optionsKey(implied), optionsKey(explicit))
	}
	other := experiments.NewSuite(experiments.Options{Seed: 2}).Options()
	if optionsKey(implied) == optionsKey(other) {
		t.Fatal("distinct seeds collide")
	}
}

// TestSuiteEnginesShareByOptions pins the engine-identity contract the
// warm cache depends on (resolving an engine trains its tiny suite).
func TestSuiteEnginesShareByOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two (tiny) detectors")
	}
	tiny := experiments.Options{Seed: 1, Records: 1, TrainRecords: 4, NoiseSteps: 1, Epochs: 1}
	se := NewSuiteEngines(0)
	a, err := se.Engine(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := se.Engine(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal options should resolve to the same engine")
	}
	tiny.Seed = 2
	c, err := se.Engine(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct options should resolve to distinct engines")
	}
	if se.Suites() != 2 {
		t.Fatalf("suite count %d", se.Suites())
	}
}

// TestServeRealSuite drives one tiny sweep through a real training
// suite, end to end — the integration path the fakes bypass.
func TestServeRealSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a (tiny) detector")
	}
	engines := NewSuiteEngines(0)
	mgr, err := NewManager(ManagerConfig{
		// MinAccuracy is loosened: a 2-epoch detector on 2 records cannot
		// clear the paper's 98 % constraint, and this test is about the
		// serving path, not detection quality.
		Defaults: experiments.Options{Seed: 7, Records: 2, TrainRecords: 6, NoiseSteps: 2, Epochs: 2, MinAccuracy: 0.01},
		Engines:  engines.Engine,
		Cache:    engines.Cache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, nil))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline","cs"],"bits":[6],"noise_steps":2,"m":[75]}}`))
	deadline := time.Now().Add(2 * time.Minute)
	var final JobStatus
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		final = decodeStatus(t, resp)
		if JobState(final.State).Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("real-suite sweep did not finish")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if final.State != string(StateCompleted) {
		t.Fatalf("real-suite sweep %s: %s", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Points != 4 {
		t.Fatalf("real-suite outcome: %+v", final.Result)
	}
	if final.Result.Optima["baseline"] == nil {
		t.Fatal("real-suite sweep found no baseline optimum")
	}
	// A result has a real power breakdown (the fakes have none).
	front := final.Result.Fronts["snr"]
	if len(front.Baseline) == 0 || len(front.Baseline[0].PowerW) == 0 {
		t.Fatalf("front missing power breakdown: %+v", front.Baseline)
	}
}
