package serve

// Multi-tenant traffic shaping. Every request carries a tenant identity
// (the X-API-Key header; absent or unusable keys fall into the default
// tenant), and the Manager shapes three things per tenant:
//
//   - admission: a token bucket per tenant for job submissions and a
//     second, independent bucket for synchronous evaluations, each with
//     an honest Retry-After when it rejects;
//   - quotas: per-tenant bounds on concurrently running jobs and queued
//     work, so one noisy tenant can never occupy every slot or build
//     unbounded queue state;
//   - fairness: queued jobs drain through a weighted-fair (stride)
//     scheduler, so a tenant with weight 2 gets twice the dispatch
//     share of a weight-1 tenant while both have work queued, and an
//     idle tenant's unused share never accrues into a later burst.
//
// Synchronous /v1/evaluate calls are the priority lane: they never take
// a job slot and never queue behind bulk sweeps — only their tenant's
// own evaluate bucket bounds them — so interactive latency stays flat
// while bulk tenants saturate the job queues.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// TenantHeader is the HTTP header carrying the tenant identity.
const TenantHeader = "X-API-Key"

// DefaultTenant is the identity of requests without a usable API key.
const DefaultTenant = "default"

// ErrRateLimited rejects a request that exceeded its tenant's token
// bucket (429 + honest Retry-After).
var ErrRateLimited = errors.New("serve: tenant rate limit exceeded")

// RetryAfterError decorates a rejection with the honest wait after
// which the same request would be admitted. The HTTP layer surfaces it
// as the Retry-After header.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After.Round(time.Millisecond))
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfter extracts an honest Retry-After from err, or fallback.
func retryAfter(err error, fallback time.Duration) time.Duration {
	var ra *RetryAfterError
	if errors.As(err, &ra) && ra.After > 0 {
		return ra.After
	}
	return fallback
}

// TenantLimits shapes one tenant. The zero value of every field picks
// the permissive default: weight 1, concurrency bounded only by the
// global slots, no queueing (submissions beyond capacity are rejected,
// the pre-tenancy contract), and unlimited submission/evaluation rates.
type TenantLimits struct {
	// Weight is the tenant's fair-share weight: while several tenants
	// have queued jobs, dispatch slots divide proportionally to weight.
	Weight int
	// MaxConcurrentJobs bounds this tenant's simultaneously running jobs
	// (<=0: the manager's global MaxConcurrentJobs).
	MaxConcurrentJobs int
	// MaxQueuedJobs bounds this tenant's queued (admitted, not yet
	// dispatched) jobs. 0 disables queueing: a submission that cannot
	// start immediately is rejected with a Retry-After instead.
	MaxQueuedJobs int
	// SubmitRate is the sustained job-submission rate (jobs/second)
	// with SubmitBurst of burst capacity; 0 = unlimited.
	SubmitRate  float64
	SubmitBurst int
	// EvalRate bounds synchronous evaluation requests the same way
	// (requests/second, EvalBurst burst); 0 = unlimited.
	EvalRate  float64
	EvalBurst int
}

// withDefaults resolves the zero fields; globalSlots is the manager's
// MaxConcurrentJobs.
func (l TenantLimits) withDefaults(globalSlots int) TenantLimits {
	if l.Weight <= 0 {
		l.Weight = 1
	}
	if l.MaxConcurrentJobs <= 0 || l.MaxConcurrentJobs > globalSlots {
		l.MaxConcurrentJobs = globalSlots
	}
	if l.MaxQueuedJobs < 0 {
		l.MaxQueuedJobs = 0
	}
	if l.SubmitBurst <= 0 {
		l.SubmitBurst = 1
	}
	if l.EvalBurst <= 0 {
		l.EvalBurst = 1
	}
	return l
}

// TenantPolicy maps tenant identities to limits. The zero value admits
// everything the pre-tenancy manager admitted: one shared default
// tenant, no rate limits, no queueing.
type TenantPolicy struct {
	// Default applies to tenants without an explicit entry.
	Default TenantLimits
	// Tenants overrides limits per tenant identity.
	Tenants map[string]TenantLimits
}

func (p TenantPolicy) limits(name string, globalSlots int) TenantLimits {
	if l, ok := p.Tenants[name]; ok {
		return l.withDefaults(globalSlots)
	}
	return p.Default.withDefaults(globalSlots)
}

// tenantKey carries the tenant identity through request contexts.
type tenantKey struct{}

// WithTenant attaches a tenant identity to ctx (the HTTP middleware
// calls it; tests may too).
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantOf extracts the request's tenant, or DefaultTenant.
func TenantOf(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}

// tenantName sanitises an API key header into a tenant identity: keys
// are used as accounting labels (metrics, logs), so they must be short
// printable ASCII without quoting hazards. Anything else — including an
// absent key — lands in the default tenant.
func tenantName(apiKey string) string {
	if apiKey == "" || len(apiKey) > 64 {
		return DefaultTenant
	}
	for i := 0; i < len(apiKey); i++ {
		c := apiKey[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return DefaultTenant
		}
	}
	return apiKey
}

// bucket is a token bucket over wall-clock time: take admits when a
// token is available and otherwise reports how long until one is.
// rate 0 admits everything. Not goroutine-safe; callers hold m.mu.
type bucket struct {
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) bucket {
	return bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take refills from elapsed time, then spends one token or reports the
// wait until the next token accrues.
func (b *bucket) take(now time.Time) time.Duration {
	if b.rate <= 0 {
		return 0
	}
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	need := 1 - b.tokens
	return time.Duration(need / b.rate * float64(time.Second))
}

// restore reinstates a journaled level: tokens clamp into [0, burst]
// (the policy may have changed between runs) and last feeds the next
// refill, so elapsed downtime still accrues tokens exactly as uptime
// would. A bucket without a rate has nothing to restore.
func (b *bucket) restore(tokens float64, last time.Time) {
	if b.rate <= 0 {
		return
	}
	b.tokens = math.Min(b.burst, math.Max(0, tokens))
	b.last = last
}

// tenantState is the manager's per-tenant accounting and scheduling
// state. All fields are guarded by the manager's mutex.
type tenantState struct {
	name   string
	limits TenantLimits

	submit bucket
	eval   bucket

	// pass is the stride scheduler's virtual time: dispatching a job
	// advances it by 1/Weight, so the min-pass tenant is always the one
	// furthest below its fair share.
	pass    float64
	queue   []*Job
	running int

	// Counters for /metrics (efficsense_tenant_*).
	submitted     int64
	rejectedRate  int64
	rejectedQuota int64
	evaluations   int64
	evalLimited   int64
}

// tenantLocked returns (creating on first use) the tenant's state.
// Callers hold m.mu.
func (m *Manager) tenantLocked(name string) *tenantState {
	if ts, ok := m.tenants[name]; ok {
		return ts
	}
	limits := m.cfg.Tenancy.limits(name, m.cfg.MaxConcurrentJobs)
	ts := &tenantState{
		name:   name,
		limits: limits,
		submit: newBucket(limits.SubmitRate, limits.SubmitBurst),
		eval:   newBucket(limits.EvalRate, limits.EvalBurst),
		// A new tenant starts at the scheduler's current virtual time, so
		// it cannot claim "credit" for the time before it arrived.
		pass: m.vtime,
	}
	m.tenants[name] = ts
	return ts
}

// admitJobLocked runs the tenancy admission pipeline for one submission:
// token bucket, then the concurrency+queue quota. It reports nil when
// the job may be enqueued. Callers hold m.mu.
func (m *Manager) admitJobLocked(ts *tenantState, now time.Time) error {
	if wait := ts.submit.take(now); wait > 0 {
		ts.rejectedRate++
		m.rejected.Add(1)
		return &RetryAfterError{
			Err:   fmt.Errorf("%w: tenant %q over its submission rate", ErrRateLimited, ts.name),
			After: wait,
		}
	}
	// The token is spent even if the quota check below rejects, so the
	// bucket level journals here — quota persistence must survive a
	// SIGKILL, or a crash-looping client resets its own rate limit.
	m.journalTenant(ts)
	if ts.running >= ts.limits.MaxConcurrentJobs || m.runningJobs >= m.cfg.MaxConcurrentJobs {
		// The job cannot start now; it must queue — if the tenant still
		// has queue room.
		if len(ts.queue) >= ts.limits.MaxQueuedJobs {
			ts.rejectedQuota++
			m.rejected.Add(1)
			return &RetryAfterError{
				Err: fmt.Errorf("%w (tenant %q: %d running, %d queued)",
					ErrSaturated, ts.name, ts.running, len(ts.queue)),
				After: m.retryAfterLocked(),
			}
		}
	}
	return nil
}

// enqueueLocked queues an admitted job on its tenant and dispatches as
// much queued work as the slots allow. Callers hold m.mu.
func (m *Manager) enqueueLocked(ts *tenantState, job *Job) {
	ts.queue = append(ts.queue, job)
	m.dispatchLocked()
}

// dispatchLocked drains queued jobs into free slots in weighted-fair
// order: among tenants with queued work and concurrency headroom, the
// one with the smallest virtual time (ties broken by name, for
// determinism) dispatches next and its virtual time advances by
// 1/weight. Runs whenever a slot frees or a job is enqueued; spawns job
// goroutines but never blocks. Callers hold m.mu.
func (m *Manager) dispatchLocked() {
	for m.runningJobs < m.cfg.MaxConcurrentJobs {
		var pick *tenantState
		for _, ts := range m.tenants {
			if len(ts.queue) == 0 || ts.running >= ts.limits.MaxConcurrentJobs {
				continue
			}
			if pick == nil || ts.pass < pick.pass ||
				(ts.pass == pick.pass && ts.name < pick.name) {
				pick = ts
			}
		}
		if pick == nil {
			return
		}
		job := pick.queue[0]
		pick.queue = pick.queue[1:]
		pick.running++
		m.runningJobs++
		m.vtime = pick.pass
		pick.pass += 1 / float64(pick.limits.Weight)
		go m.runJob(job)
	}
}

// releaseLocked returns a finished job's slot and dispatches the next
// queued work. Callers hold m.mu.
func (m *Manager) releaseLocked(job *Job) {
	if ts, ok := m.tenants[job.tenant]; ok && ts.running > 0 {
		ts.running--
	}
	if m.runningJobs > 0 {
		m.runningJobs--
	}
	m.dispatchLocked()
}

// release is releaseLocked behind the manager lock (the job goroutine's
// deferred slot return).
func (m *Manager) release(job *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(job)
}

// admitEval is the priority lane's admission: synchronous evaluations
// spend from the tenant's evaluate bucket only — no slot, no queue —
// so they are shaped per tenant but never starved behind bulk jobs.
// points counts the design points the request carries (for accounting).
func (m *Manager) admitEval(ctx context.Context, points int) error {
	tenant := TenantOf(ctx)
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tenantLocked(tenant)
	if wait := ts.eval.take(time.Now()); wait > 0 {
		ts.evalLimited++
		return &RetryAfterError{
			Err:   fmt.Errorf("%w: tenant %q over its evaluation rate", ErrRateLimited, tenant),
			After: wait,
		}
	}
	m.journalTenant(ts)
	ts.evaluations += int64(points)
	return nil
}

// TenantCounters is one tenant's point-in-time accounting for /metrics.
type TenantCounters struct {
	Tenant        string
	Weight        int
	Running       int
	Queued        int
	Submitted     int64
	RejectedRate  int64
	RejectedQuota int64
	Evaluations   int64
	EvalLimited   int64
}

// TenantCounters snapshots every tenant's accounting, sorted by tenant
// name so the /metrics exposition is deterministic.
func (m *Manager) TenantCounters() []TenantCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TenantCounters, 0, len(m.tenants))
	for _, ts := range m.tenants {
		out = append(out, TenantCounters{
			Tenant:        ts.name,
			Weight:        ts.limits.Weight,
			Running:       ts.running,
			Queued:        len(ts.queue),
			Submitted:     ts.submitted,
			RejectedRate:  ts.rejectedRate,
			RejectedQuota: ts.rejectedQuota,
			Evaluations:   ts.evaluations,
			EvalLimited:   ts.evalLimited,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
