package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"efficsense/internal/cluster"
	"efficsense/internal/core"
	"efficsense/internal/experiments"
	"efficsense/internal/obs"
	"efficsense/internal/scenario"
)

// Server is the HTTP face of a job Manager.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	log     *slog.Logger
	started time.Time

	reqMu     sync.Mutex
	reqByCode map[int]int64

	// reqDur holds one fixed-bucket latency histogram per registered
	// endpoint pattern, built at construction so the request path never
	// allocates or locks to find its histogram; endpoints keeps the
	// registration order so the /metrics exposition is deterministic.
	reqDur    map[string]*obs.Histogram
	endpoints []string

	sseActive atomic.Int64
}

// NewServer wires the routes around a Manager. logger may be nil for a
// silent server (tests); when set, every request completion and error
// is logged through it with the request's request_id attached.
func NewServer(mgr *Manager, logger *slog.Logger) *Server {
	s := &Server{
		mgr:       mgr,
		mux:       http.NewServeMux(),
		log:       logger,
		started:   time.Now(),
		reqByCode: make(map[int]int64),
		reqDur:    make(map[string]*obs.Histogram),
	}
	s.route("POST /v1/evaluate", s.handleEvaluate)
	s.route("POST /v1/sweeps", s.handleSubmit)
	s.route("GET /v1/sweeps", s.handleList)
	s.route("GET /v1/sweeps/{id}", s.handleStatus)
	s.route("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.route("GET /v1/sweeps/{id}/results", s.handleResults)
	s.route("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.route("POST /v1/search", s.handleSearchSubmit)
	s.route("GET /v1/search/{id}", s.handleStatus)
	s.route("GET /v1/search/{id}/events", s.handleEvents)
	s.route("GET /v1/search/{id}/results", s.handleResults)
	s.route("DELETE /v1/search/{id}", s.handleCancel)
	s.route("GET /v1/scenarios", s.handleScenarios)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	// Fleet mode only: the peer protocol and the cluster view exist
	// solely when a peer group is configured, so a single-node daemon's
	// surface — routes, metrics series, job-ID shapes — is bit-identical
	// to the pre-fleet contract.
	if mgr.cfg.Cluster != nil {
		s.route("POST "+cluster.PeerPath, s.handlePeerEval)
		s.route("GET /v1/cluster", s.handleClusterStatus)
	}
	return s
}

// route registers a handler under its mux pattern and gives it a
// latency histogram labelled by that pattern. The observation wraps the
// handler alone (mux dispatch and middleware cost stay out), and
// unmatched requests (404/405 straight from the mux) are counted by
// code but not timed — there is no endpoint to attribute them to.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	hist := obs.NewHistogram(obs.DurationBuckets)
	s.reqDur[pattern] = hist
	s.endpoints = append(s.endpoints, pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	})
}

// ServeHTTP is the request middleware: it assigns or propagates the
// X-Request-ID (a valid caller-supplied ID is echoed and reused, an
// absent or unsafe one is replaced), attaches it to the request context
// for every downstream log line and job record, echoes it on the
// response, and records the status-code counters plus one structured
// completion log line per request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := strings.TrimSpace(r.Header.Get("X-Request-ID"))
	if !obs.ValidRequestID(reqID) {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	ctx := obs.WithRequestID(r.Context(), reqID)
	ctx = WithTenant(ctx, tenantName(r.Header.Get(TenantHeader)))
	r = r.WithContext(ctx)

	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	code := rec.code
	if code == 0 {
		code = http.StatusOK
	}
	s.reqMu.Lock()
	s.reqByCode[code]++
	s.reqMu.Unlock()
	if s.log != nil {
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", code),
			slog.Duration("duration", time.Since(start)))
	}
}

// statusRecorder captures the response code for the request counters. It
// forwards Flush so SSE streaming keeps working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) requestCounts() map[int]int64 {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	out := make(map[int]int64, len(s.reqByCode))
	for k, v := range s.reqByCode {
		out[k] = v
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// error writes the v1 error envelope and logs the failure with the
// request's request_id — client errors at INFO (they are the caller's
// problem), server errors at WARN.
func (s *Server) error(w http.ResponseWriter, r *http.Request, status int, code ErrorCode, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if s.log != nil {
		lvl := slog.LevelInfo
		if status >= 500 {
			lvl = slog.LevelWarn
		}
		s.log.LogAttrs(r.Context(), lvl, "request error",
			slog.String("request_id", obs.RequestID(r.Context())),
			slog.String("code", string(code)),
			slog.Int("status", status),
			slog.String("message", msg))
	}
	writeJSON(w, status, errorJSON{Error: ErrorDetail{Code: code, Message: msg}})
}

// decodeBody strictly decodes a JSON request body: unknown fields are
// rejected so typos fail loudly instead of silently sweeping the wrong
// space, and trailing data after the first JSON value is rejected so a
// concatenated or corrupted body cannot half-parse. An empty body
// decodes to the zero value.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		// encoding/json reports an unknown key as `json: unknown field
		// "name"` with no typed error; rewrap it so the envelope names
		// the offending field in the API's own words.
		if field, ok := strings.CutPrefix(err.Error(), "json: unknown field "); ok {
			return fmt.Errorf("unknown field %s in request body", field)
		}
		return err
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("request body holds more than one JSON value")
	}
	return nil
}

// handleEvaluate scores design points synchronously, bounded by the
// request deadline (timeout_ms, capped by the server's EvalTimeout). A
// single-object body ({"point": ...}) returns one ResultJSON; a batch
// body ({"points": [...]}) flows through the engines' batch dispatch
// and returns an EvaluateBatchResponse with per-point rows.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeBody(r, &req); err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "decoding request: %v", err)
		return
	}
	if req.TimeoutMS < 0 {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest,
			"timeout_ms must be non-negative, got %d", req.TimeoutMS)
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	scn, err := s.mgr.Scenario(req.Options)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if req.Points != nil {
		s.evaluateBatch(w, r, req, scn, timeout)
		return
	}
	dp, err := req.Point.DesignPoint(scn)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "point: %v", err)
		return
	}
	result, cached, err := s.mgr.Evaluate(r.Context(), req.Options, dp, timeout)
	switch {
	case err == nil:
	case errors.Is(err, ErrRateLimited):
		retry := retrySeconds(retryAfter(err, time.Second))
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		s.error(w, r, http.StatusTooManyRequests, CodeRateLimited, "%v (retry after ~%ds)", err, retry)
		return
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", fmt.Sprint(retrySeconds(drainRetryAfter)))
		s.error(w, r, http.StatusServiceUnavailable, CodeShuttingDown, "%v", err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.error(w, r, http.StatusGatewayTimeout, CodeDeadline, "evaluation exceeded the deadline")
		return
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		return
	default:
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	rj := resultJSON(result)
	rj.Cached = cached
	writeJSON(w, http.StatusOK, rj)
}

// evaluateBatch is handleEvaluate's batch arm. Spec validation is
// all-or-nothing (a malformed point is the caller's bug: 400 naming the
// index); evaluation failures degrade per point into error rows with
// partial: true, the same shape sweep outcomes use.
func (s *Server) evaluateBatch(w http.ResponseWriter, r *http.Request, req EvaluateRequest, scn *scenario.Scenario, timeout time.Duration) {
	if req.Point != (PointSpec{}) {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest,
			"provide either point or points, not both")
		return
	}
	if len(req.Points) == 0 {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "points must not be empty")
		return
	}
	pts := make([]core.DesignPoint, len(req.Points))
	for i, ps := range req.Points {
		dp, err := ps.DesignPoint(scn)
		if err != nil {
			s.error(w, r, http.StatusBadRequest, CodeBadRequest, "points[%d]: %v", i, err)
			return
		}
		pts[i] = dp
	}
	rs, cached, err := s.mgr.EvaluateBatch(r.Context(), req.Options, pts, timeout)
	switch {
	case err == nil:
	case errors.Is(err, ErrBadRequest):
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	case errors.Is(err, ErrRateLimited):
		retry := retrySeconds(retryAfter(err, time.Second))
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		s.error(w, r, http.StatusTooManyRequests, CodeRateLimited, "%v (retry after ~%ds)", err, retry)
		return
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", fmt.Sprint(retrySeconds(drainRetryAfter)))
		s.error(w, r, http.StatusServiceUnavailable, CodeShuttingDown, "%v", err)
		return
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		return
	default:
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	resp := EvaluateBatchResponse{Count: len(rs), Results: make([]ResultJSON, len(rs))}
	for i, res := range rs {
		rj := resultJSON(res)
		rj.Cached = cached[i]
		resp.Results[i] = rj
		if res.Err != nil {
			resp.Errors++
			resp.Partial = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// retrySeconds rounds an honest Retry-After up to whole seconds (the
// header's unit), never below 1 — a client that retries instantly would
// just be rejected again.
func retrySeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// submitError maps Submit/SubmitSearch sentinel errors onto the wire,
// reporting whether an error response was written. Every backpressure
// response — rate-limited (429), saturated (429) and draining (503)
// alike — carries an honest Retry-After so clients never guess.
func (s *Server) submitError(w http.ResponseWriter, r *http.Request, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrBadRequest):
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
	case errors.Is(err, ErrRateLimited):
		retry := retrySeconds(retryAfter(err, time.Second))
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		s.error(w, r, http.StatusTooManyRequests, CodeRateLimited, "%v (retry after ~%ds)", err, retry)
	case errors.Is(err, ErrSaturated):
		retry := retrySeconds(retryAfter(err, s.mgr.RetryAfter()))
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		s.error(w, r, http.StatusTooManyRequests, CodeSaturated, "%v (retry after ~%ds)", err, retry)
	case errors.Is(err, ErrShuttingDown):
		// A draining daemon is typically restarting: tell the client when
		// trying again is worthwhile instead of shipping a bare 503.
		w.Header().Set("Retry-After", fmt.Sprint(retrySeconds(drainRetryAfter)))
		s.error(w, r, http.StatusServiceUnavailable, CodeShuttingDown, "%v", err)
	default:
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	return true
}

// drainRetryAfter is the Retry-After a draining daemon advertises: long
// enough for a restart, short enough that clients reconnect promptly.
const drainRetryAfter = 10 * time.Second

// handleSubmit accepts an asynchronous sweep: 202 + Location on success,
// 429 + Retry-After when every slot is busy.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "decoding request: %v", err)
		return
	}
	job, err := s.mgr.Submit(r.Context(), req)
	if s.submitError(w, r, err) {
		return
	}
	st := job.Status()
	w.Header().Set("Location", st.StatusURL)
	writeJSON(w, http.StatusAccepted, st)
}

// handleSearchSubmit accepts an asynchronous goal-directed search: the
// same 202/429/503 contract as sweeps, with the job under /v1/search.
func (s *Server) handleSearchSubmit(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := decodeBody(r, &req); err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "decoding request: %v", err)
		return
	}
	job, err := s.mgr.SubmitSearch(r.Context(), req)
	if s.submitError(w, r, err) {
		return
	}
	st := job.Status()
	w.Header().Set("Location", st.StatusURL)
	writeJSON(w, http.StatusAccepted, st)
}

// validStateFilter accepts the JobState names a ?state= filter may use.
func validStateFilter(s string) bool {
	switch JobState(s) {
	case StatePending, StateRunning, StateCompleted, StateCancelled, StateFailed:
		return true
	}
	return false
}

// handleList returns every tracked job (running and TTL-retained
// finished ones), newest first, optionally filtered by ?state= and/or
// ?scenario=. This is the discovery endpoint: clients find their jobs
// here — by the request_id they submitted with — instead of scraping
// /metrics.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("state")
	if filter != "" && !validStateFilter(filter) {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest,
			"unknown state %q (want pending, running, completed, cancelled or failed)", filter)
		return
	}
	scnFilter := r.URL.Query().Get("scenario")
	if scnFilter != "" {
		scn, err := scenario.Lookup(scnFilter)
		if err != nil {
			s.error(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		scnFilter = scn.Name
	}
	jobs := s.mgr.Jobs()
	summaries := make([]JobSummary, 0, len(jobs))
	for _, j := range jobs {
		sum := j.Summary()
		if filter != "" && sum.State != filter {
			continue
		}
		if scnFilter != "" && sum.Scenario != scnFilter {
			continue
		}
		summaries = append(summaries, sum)
	}
	sort.Slice(summaries, func(i, k int) bool {
		if !summaries[i].CreatedAt.Equal(summaries[k].CreatedAt) {
			return summaries[i].CreatedAt.After(summaries[k].CreatedAt)
		}
		return summaries[i].ID > summaries[k].ID
	})
	writeJSON(w, http.StatusOK, JobListJSON{Jobs: summaries, Count: len(summaries)})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, err := s.mgr.Job(r.PathValue("id"))
	if err != nil {
		if s.redirectJob(w, r) {
			return nil, false
		}
		s.error(w, r, http.StatusNotFound, CodeNotFound, "%v", err)
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

// handleResults streams the finished (or cancelled) job's result cloud
// as NDJSON, one design point per line — the same rows the CLI's CSV
// emitter writes.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	if !job.State().Terminal() {
		s.error(w, r, http.StatusConflict, CodeConflict,
			"job %s is still %s; results stream after it finishes", job.ID, job.State())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = experiments.NDJSONResults(w, job.Results())
}

// handleCancel requests cancellation and reports the (possibly already
// terminal) status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.mgr.Cancel(r.Context(), r.PathValue("id"))
	if err != nil {
		if s.redirectJob(w, r) {
			return
		}
		s.error(w, r, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleScenarios lists the registered workload scenarios — the names a
// request's options.scenario field may select, each with its
// architecture set and default design space (sized by the server's
// default noise resolution).
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	list := scenario.All()
	out := ScenarioListJSON{
		Scenarios: make([]ScenarioJSON, 0, len(list)),
		Default:   scenario.DefaultName,
	}
	for _, sc := range list {
		out.Scenarios = append(out.Scenarios, scenarioJSON(sc, s.mgr.cfg.Defaults.NoiseSteps))
	}
	out.Count = len(out.Scenarios)
	writeJSON(w, http.StatusOK, out)
}

// healthJSON is the /healthz body.
type healthJSON struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	JobsRunning   int     `json:"jobs_running"`
	JobsTracked   int     `json:"jobs_tracked"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	h := healthJSON{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		JobsRunning:   c.Running,
		JobsTracked:   c.Tracked,
	}
	code := http.StatusOK
	if s.mgr.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// sortedCodes returns the request-counter keys in ascending order so the
// Prometheus exposition is deterministic.
func sortedCodes(m map[int]int64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
