package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"efficsense/internal/experiments"
)

// Server is the HTTP face of a job Manager.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	log     *log.Logger
	started time.Time

	reqMu     sync.Mutex
	reqByCode map[int]int64

	sseActive atomic.Int64
}

// NewServer wires the routes around a Manager. logger may be nil for a
// silent server (tests).
func NewServer(mgr *Manager, logger *log.Logger) *Server {
	s := &Server{
		mgr:       mgr,
		mux:       http.NewServeMux(),
		log:       logger,
		started:   time.Now(),
		reqByCode: make(map[int]int64),
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP dispatches through the status-recording middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	code := rec.code
	if code == 0 {
		code = http.StatusOK
	}
	s.reqMu.Lock()
	s.reqByCode[code]++
	s.reqMu.Unlock()
	if s.log != nil {
		s.log.Printf("%s %s %d %s", r.Method, r.URL.Path, code, time.Since(start).Round(time.Millisecond))
	}
}

// statusRecorder captures the response code for the request counters. It
// forwards Flush so SSE streaming keeps working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) requestCounts() map[int]int64 {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	out := make(map[int]int64, len(s.reqByCode))
	for k, v := range s.reqByCode {
		out[k] = v
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON request body; unknown fields are
// rejected so typos fail loudly instead of silently sweeping the wrong
// space. An empty body decodes to the zero value.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}

// handleEvaluate scores one design point synchronously, bounded by the
// request deadline (timeout_ms, capped by the server's EvalTimeout).
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	dp, err := req.Point.DesignPoint()
	if err != nil {
		writeError(w, http.StatusBadRequest, "point: %v", err)
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	result, cached, err := s.mgr.Evaluate(r.Context(), req.Options, dp, timeout)
	switch {
	case err == nil:
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "evaluation exceeded the deadline")
		return
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	rj := resultJSON(result)
	rj.Cached = cached
	writeJSON(w, http.StatusOK, rj)
}

// handleSubmit accepts an asynchronous sweep: 202 + Location on success,
// 429 + Retry-After when every slot is busy.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	job, err := s.mgr.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrSaturated):
		retry := int(s.mgr.RetryAfter().Round(time.Second) / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		writeError(w, http.StatusTooManyRequests, "%v (retry after ~%ds)", err, retry)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := job.Status()
	w.Header().Set("Location", st.StatusURL)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, err := s.mgr.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

// handleResults streams the finished (or cancelled) job's result cloud
// as NDJSON, one design point per line — the same rows the CLI's CSV
// emitter writes.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	if !job.State().Terminal() {
		writeError(w, http.StatusConflict, "job %s is still %s; results stream after it finishes", job.ID, job.State())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = experiments.NDJSONResults(w, job.Results())
}

// handleCancel requests cancellation and reports the (possibly already
// terminal) status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// healthJSON is the /healthz body.
type healthJSON struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	JobsRunning   int     `json:"jobs_running"`
	JobsTracked   int     `json:"jobs_tracked"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	h := healthJSON{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		JobsRunning:   c.Running,
		JobsTracked:   c.Tracked,
	}
	code := http.StatusOK
	if s.mgr.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// sortedCodes returns the request-counter keys in ascending order so the
// Prometheus exposition is deterministic.
func sortedCodes(m map[int]int64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
