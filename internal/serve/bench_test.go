package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
)

// newBenchServer wires the full middleware + handler stack (request-ID
// assignment, latency histograms, status counters) over an instant
// evaluator, so the benchmarks price the serving path itself.
func newBenchServer(b *testing.B) *Server {
	b.Helper()
	eval := &slowEval{}
	store := cache.New(1024)
	eng, err := dse.NewSweep(eval,
		dse.WithCache(store), dse.WithWorkers(2), dse.WithEvaluatorID("bench-eval"))
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := NewManager(ManagerConfig{
		Engines: func(opts experiments.Options) (Engine, error) { return eng, nil },
		Cache:   store,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	return NewServer(mgr, nil)
}

// BenchmarkHealthz prices the fixed per-request overhead: middleware,
// histogram observation, counters, JSON encoding.
func BenchmarkHealthz(b *testing.B) {
	srv := newBenchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// BenchmarkEvaluateWarmHTTP prices a cache-hit evaluation through the
// whole HTTP stack: decode, validate, memoised engine call, encode.
func BenchmarkEvaluateWarmHTTP(b *testing.B) {
	srv := newBenchServer(b)
	const body = `{"point":{"arch":"baseline","bits":8,"lna_noise":1e-6}}`
	warm := httptest.NewRecorder()
	srv.ServeHTTP(warm, httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body)))
	if warm.Code != http.StatusOK {
		b.Fatalf("prime status %d: %s", warm.Code, warm.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
