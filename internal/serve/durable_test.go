package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/wal"
)

// newDurableServer wires a Manager over its own engine, cache and WAL —
// the daemon's -wal-dir topology. The caller drives Recover itself (the
// replayed records are under test); cleanup shuts the manager down,
// which compacts and closes the journal.
func newDurableServer(t *testing.T, walLog *wal.Log, eval dse.PointEvaluator, cfg ManagerConfig) (*httptest.Server, *Manager) {
	t.Helper()
	store := cache.New(256)
	eng, err := dse.NewSweep(eval,
		dse.WithCache(store), dse.WithWorkers(1), dse.WithEvaluatorID("test-eval"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engines = func(opts experiments.Options) (Engine, error) { return eng, nil }
	cfg.Cache = store
	cfg.WAL = walLog
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		ts.Close()
	})
	return ts, mgr
}

// gatedEval evaluates like slowEval but blocks from call limit+1 on
// until its gate closes, signalling blocked once — the deterministic
// stand-in for "the process was killed after k points".
type gatedEval struct {
	calls   atomic.Int64
	limit   int64
	gate    chan struct{}
	blocked chan struct{}
}

func (e *gatedEval) Evaluate(p core.DesignPoint) core.Result {
	if e.calls.Add(1) > e.limit {
		select {
		case e.blocked <- struct{}{}:
		default:
		}
		<-e.gate
	}
	return (&slowEval{}).Evaluate(p)
}

// fetchNDJSON downloads a finished job's results stream.
func fetchNDJSON(t *testing.T, base, statusURL string) []byte {
	t.Helper()
	resp, err := http.Get(base + statusURL + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestChaosRestartResumesMidSweep is the durability acceptance test: a
// sweep is killed after three of six points (the journal file is copied
// byte-for-byte — the WAL uses unbuffered appends, so the copy IS the
// SIGKILL disk image), a new manager over the copied journal resumes
// it, evaluates only the complement, and the finished result stream is
// bit-identical to an uninterrupted run's. The replay is accounted in
// /metrics.
func TestChaosRestartResumesMidSweep(t *testing.T) {
	const totalPoints, journaled = 6, 3
	req := SweepRequest{Space: &SpaceSpec{
		Architectures: []string{"baseline"}, Bits: []int{4, 6}, NoiseSteps: 3,
	}}

	// Phase 1: run the sweep and "crash" after three journaled rows.
	dirA := t.TempDir()
	walA, recsA, err := wal.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsA) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recsA))
	}
	evalA := &gatedEval{limit: journaled, gate: make(chan struct{}), blocked: make(chan struct{}, 1)}
	released := false
	release := func() {
		if !released {
			released = true
			close(evalA.gate)
		}
	}
	defer release()
	_, mgrA := newDurableServer(t, walA, evalA, ManagerConfig{MaxConcurrentJobs: 1})

	jobA, err := mgrA.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-evalA.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("evaluator never reached the gate")
	}
	// The worker is blocked inside point journaled+1; wait until the
	// completion hooks (which append the row records) of the first
	// `journaled` points have all run before snapshotting the journal.
	deadlineA := time.Now().Add(10 * time.Second)
	for jobA.Status().Progress.Done < journaled {
		if time.Now().After(deadlineA) {
			t.Fatalf("only %d rows journaled before the crash point", jobA.Status().Progress.Done)
		}
		time.Sleep(time.Millisecond)
	}
	snapshot, err := os.ReadFile(filepath.Join(dirA, wal.FileName))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: the reference — the same sweep, uninterrupted, with no
	// journal at all.
	_, mgrRef := newDurableServer(t, nil, &slowEval{}, ManagerConfig{})
	jobRef, err := mgrRef.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 3: restart against the copied journal.
	dirB := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirB, wal.FileName), snapshot, 0o644); err != nil {
		t.Fatal(err)
	}
	walB, recsB, err := wal.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsB) != 1+journaled { // the job record plus its rows
		t.Fatalf("journal snapshot held %d records, want %d", len(recsB), 1+journaled)
	}
	evalB := &slowEval{}
	srvB, mgrB := newDurableServer(t, walB, evalB, ManagerConfig{MaxConcurrentJobs: 1})
	if err := mgrB.Recover(recsB); err != nil {
		t.Fatal(err)
	}

	resumed, err := mgrB.Job(jobA.ID)
	if err != nil {
		t.Fatalf("resumed job %s not tracked: %v", jobA.ID, err)
	}
	stB := waitTerminal(t, srvB.URL, resumed.ID)
	if stB.State != string(StateCompleted) {
		t.Fatalf("resumed job state %q: %+v", stB.State, stB)
	}
	if stB.Progress.Done != totalPoints || stB.Progress.Total != totalPoints {
		t.Fatalf("resumed progress %d/%d, want %d/%d",
			stB.Progress.Done, stB.Progress.Total, totalPoints, totalPoints)
	}

	// The journaled rows were restored, never re-evaluated.
	if got := evalB.calls.Load(); got != totalPoints-journaled {
		t.Fatalf("restarted evaluator ran %d points, want %d (the complement)",
			got, totalPoints-journaled)
	}

	// Bit-identical to the uninterrupted run.
	deadline := time.Now().Add(10 * time.Second)
	for !jobRef.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("reference sweep never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var ref bytes.Buffer
	if err := experiments.NDJSONResults(&ref, jobRef.Results()); err != nil {
		t.Fatal(err)
	}
	got := fetchNDJSON(t, srvB.URL, "/v1/sweeps/"+resumed.ID)
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("resumed results differ from the uninterrupted run:\nresumed:\n%s\nreference:\n%s", got, ref.Bytes())
	}

	// The replay is accounted in /metrics.
	metrics := fetchMetrics(t, srvB.URL)
	if v := metricValue(t, metrics, "efficsense_wal_resumed_jobs_total"); v != 1 {
		t.Fatalf("efficsense_wal_resumed_jobs_total = %g, want 1", v)
	}
	if v := metricValue(t, metrics, "efficsense_wal_replayed_rows_total"); v != journaled {
		t.Fatalf("efficsense_wal_replayed_rows_total = %g, want %d", v, journaled)
	}
	if v := metricValue(t, metrics, "efficsense_wal_appends_total"); v < totalPoints-journaled {
		t.Fatalf("efficsense_wal_appends_total = %g, want at least the fresh rows", v)
	}

	// Unblock the "crashed" manager so its cleanup can drain.
	release()
}

// journalLines hand-writes a journal file from encoded records (plus
// optional raw tail bytes), bypassing the Log — the way to fabricate
// crash artefacts and future-version records.
func journalLines(t *testing.T, dir string, lines ...[]byte) {
	t.Helper()
	journal := bytes.Join(lines, nil)
	if err := os.WriteFile(filepath.Join(dir, wal.FileName), journal, 0o644); err != nil {
		t.Fatal(err)
	}
}

func encodeRecord(t *testing.T, kind string, payload interface{}) []byte {
	t.Helper()
	line, err := wal.Encode(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	return line
}

// twoPointSpace is a 2-design-point sweep space whose points (and their
// journal rows) the corner tests construct by hand.
var twoPointSpace = &SpaceSpec{
	Architectures: []string{"baseline"}, Bits: []int{4, 6}, LNANoise: []float64{1.0},
}

func twoPoints(t *testing.T) []core.DesignPoint {
	t.Helper()
	space, err := twoPointSpace.space(experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := space.Points()
	if len(pts) != 2 {
		t.Fatalf("fixture space has %d points, want 2", len(pts))
	}
	return pts
}

func sweepJobRecord(id string) walJobRecord {
	return walJobRecord{
		ID: id, Kind: jobKindSweep, Tenant: DefaultTenant,
		Created: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
		Sweep:   &SweepRequest{Space: twoPointSpace},
	}
}

// TestWALReplayTruncatedTail: a journal whose final line was torn
// mid-append (the crash signature) resumes the job from the rows that
// survived; the torn row is simply re-evaluated.
func TestWALReplayTruncatedTail(t *testing.T) {
	pts := twoPoints(t)
	eval := &slowEval{}
	row0 := encodeRecord(t, walKindRow,
		walRowRecord{Job: "sweep-1", I: 0, Result: walResultOf(eval.Evaluate(pts[0]))})
	row1 := encodeRecord(t, walKindRow,
		walRowRecord{Job: "sweep-1", I: 1, Result: walResultOf(eval.Evaluate(pts[1]))})
	eval.calls.Store(0)

	dir := t.TempDir()
	journalLines(t, dir,
		encodeRecord(t, walKindJob, sweepJobRecord("sweep-1")),
		row0,
		row1[:len(row1)/2]) // torn mid-append: no newline, half a record
	walLog, recs, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("open replayed %d records, want 2 (torn tail dropped)", len(recs))
	}
	if st := walLog.Stats(); st.Dropped != 1 {
		t.Fatalf("open dropped %d records, want 1", st.Dropped)
	}

	srv, mgr := newDurableServer(t, walLog, eval, ManagerConfig{})
	if err := mgr.Recover(recs); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, srv.URL, "sweep-1")
	if st.State != string(StateCompleted) || st.Progress.Done != 2 {
		t.Fatalf("resumed job: %+v", st)
	}
	if got := eval.calls.Load(); got != 1 {
		t.Fatalf("evaluator ran %d points, want 1 (only the torn row)", got)
	}
	if v := metricValue(t, fetchMetrics(t, srv.URL), "efficsense_wal_dropped_records_total"); v != 1 {
		t.Fatalf("efficsense_wal_dropped_records_total = %g, want 1", v)
	}
}

// TestWALReplayUnknownKinds: records and jobs of kinds this binary does
// not know — a journal written by a future version — are skipped with a
// warning, never a startup failure, and the known jobs around them
// still replay.
func TestWALReplayUnknownKinds(t *testing.T) {
	dir := t.TempDir()
	futureJob := walJobRecord{ID: "quantum-7", Kind: "quantum",
		Created: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
	journalLines(t, dir,
		encodeRecord(t, "telemetry", map[string]int{"v": 2}), // unknown record kind
		encodeRecord(t, walKindJob, futureJob),               // unknown job kind
		encodeRecord(t, walKindJob, sweepJobRecord("sweep-3")),
	)
	walLog, recs, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("open replayed %d records, want 3", len(recs))
	}

	eval := &slowEval{}
	srv, mgr := newDurableServer(t, walLog, eval, ManagerConfig{})
	if err := mgr.Recover(recs); err != nil {
		t.Fatalf("recovery must skip unknown kinds, not fail: %v", err)
	}
	if _, err := mgr.Job("quantum-7"); err == nil {
		t.Fatal("job of unknown kind was tracked")
	}
	st := waitTerminal(t, srv.URL, "sweep-3")
	if st.State != string(StateCompleted) {
		t.Fatalf("known job after unknown records: %+v", st)
	}
	// The daemon keeps serving: new submissions still work, with IDs
	// bumped past every replayed one — including the skipped future-kind
	// job, whose ID a newer version may still be using.
	resp := postJSON(t, srv.URL+"/v1/sweeps", smallSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submission: status %d", resp.StatusCode)
	}
	if id := decodeStatus(t, resp).ID; id != "sweep-8" {
		t.Fatalf("post-recovery job ID %q, want sweep-8 (sequence past quantum-7)", id)
	}
}

// TestWALReplayIdempotent: replaying a doubled journal (every record
// twice — the shape of an interrupted compaction retry) yields one job
// table, not two, and terminal history replays without touching the
// evaluator.
func TestWALReplayIdempotent(t *testing.T) {
	pts := twoPoints(t)
	ref := &slowEval{}
	lines := [][]byte{
		encodeRecord(t, walKindJob, sweepJobRecord("sweep-1")),
		encodeRecord(t, walKindRow,
			walRowRecord{Job: "sweep-1", I: 0, Result: walResultOf(ref.Evaluate(pts[0]))}),
		encodeRecord(t, walKindRow,
			walRowRecord{Job: "sweep-1", I: 1, Result: walResultOf(ref.Evaluate(pts[1]))}),
		encodeRecord(t, walKindState, walStateRecord{Job: "sweep-1", State: string(StateCompleted)}),
	}
	dir := t.TempDir()
	journalLines(t, dir, append(append([][]byte{}, lines...), lines...)...)
	walLog, recs, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*len(lines) {
		t.Fatalf("open replayed %d records, want %d", len(recs), 2*len(lines))
	}

	eval := &slowEval{}
	srv, mgr := newDurableServer(t, walLog, eval, ManagerConfig{})
	if err := mgr.Recover(recs); err != nil {
		t.Fatal(err)
	}
	jobs := mgr.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("doubled journal produced %d jobs, want 1", len(jobs))
	}
	st := waitTerminal(t, srv.URL, "sweep-1")
	if st.State != string(StateCompleted) || st.Progress.Done != 2 {
		t.Fatalf("replayed history: %+v", st)
	}
	if got := eval.calls.Load(); got != 0 {
		t.Fatalf("terminal history replay ran %d evaluations, want 0", got)
	}
	// The history is fully queryable: the results stream renders the
	// journaled rows, identical to what the original run produced.
	var want bytes.Buffer
	if err := experiments.NDJSONResults(&want, []core.Result{
		ref.Evaluate(pts[0]), ref.Evaluate(pts[1])}); err != nil {
		t.Fatal(err)
	}
	if got := fetchNDJSON(t, srv.URL, "/v1/sweeps/sweep-1"); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("replayed results differ:\n%s\nwant:\n%s", got, want.Bytes())
	}
	if v := metricValue(t, fetchMetrics(t, srv.URL), "efficsense_wal_replayed_jobs_total"); v != 1 {
		t.Fatalf("efficsense_wal_replayed_jobs_total = %g, want 1", v)
	}
}
