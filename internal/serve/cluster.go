package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"efficsense/internal/cache"
	"efficsense/internal/cluster"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
)

// Fleet mode. Each node owns a segment of the evaluation keyspace via
// the consistent-hash ring in internal/cluster; the clusterCache below
// is the glue between the sweep engine and the peer group. On a miss
// for a remotely-owned key the node asks the owner (POST
// /internal/peer/eval) to produce the result — served hot from the
// owner's cache or computed there once, with the owner's singleflight
// collapsing concurrent fills from the whole fleet — before falling
// back to computing locally. Peer failures degrade, never error: the
// fleet's worst case is the single-node cost.

// peerEvalSpec is the payload inside a PeerRequest: everything the
// owner needs to evaluate the point on a cold cache. Options travel as
// the public wire spec, so the owner resolves them through exactly the
// submission pipeline and a fleet with identical defaults derives an
// identical evaluator fingerprint — which is what the response-key
// check verifies.
type peerEvalSpec struct {
	Options *OptionsSpec `json:"options,omitempty"`
	Point   PointSpec    `json:"point"`
}

// peerEvalResult is the payload inside a PeerResponse. Result reuses
// the WAL row encoding (exact float64 round-trip); Hit reports the
// owner served it without a fresh evaluation.
type peerEvalResult struct {
	Result walResult `json:"r"`
	Hit    bool      `json:"hit,omitempty"`
}

// optionsSpecOf inverts OptionsSpec.apply: a spec that sets every
// field, so the receiving node's own defaults cannot skew the
// evaluation a peer request describes.
func optionsSpecOf(o experiments.Options) *OptionsSpec {
	return &OptionsSpec{
		Scenario:      &o.Scenario,
		Seed:          &o.Seed,
		Records:       &o.Records,
		TrainRecords:  &o.TrainRecords,
		NoiseSteps:    &o.NoiseSteps,
		Workers:       &o.Workers,
		Epochs:        &o.Epochs,
		MinAccuracy:   &o.MinAccuracy,
		WindowSeconds: &o.WindowSeconds,
	}
}

// clusterCache wraps the shared bounded LRU with ring-aware fills. It
// implements dse.Cache, dse.PointFlight and dse.Partitioned: local
// reads and writes delegate to the LRU; a miss on a remotely-owned key
// tries the owner before computing. One clusterCache exists per engine
// option set (it carries that suite's option spec for the peer wire),
// all sharing one LRU and one peer client.
type clusterCache struct {
	lru   *cache.LRU
	peers *cluster.Peers
	spec  *OptionsSpec
}

func newClusterCache(lru *cache.LRU, peers *cluster.Peers, opts experiments.Options) *clusterCache {
	return &clusterCache{lru: lru, peers: peers, spec: optionsSpecOf(opts)}
}

// Get and Put implement dse.Cache against the shared local store.
func (c *clusterCache) Get(key string) (core.Result, bool) { return c.lru.Get(key) }
func (c *clusterCache) Put(key string, r core.Result)      { c.lru.Put(key, r) }

// Owned implements dse.Partitioned for the batch dispatcher.
func (c *clusterCache) Owned(key string) bool { return c.peers.Owned(key) }

// DoPoint implements dse.PointFlight. Locally-owned keys (and every key
// once peering is disabled — the serving side of a peer request, so a
// skewed membership view can bounce a key at most one hop) take the
// LRU's singleflight exactly as in single-node mode. For a
// remotely-owned key the local cache still answers warm hits; a cold
// miss asks the owner and stores the verified result (hit=true: this
// node spent a lookup, not an evaluation). Any failure on that path
// degrades to local compute under the singleflight — never an error
// row, never a lost point.
func (c *clusterCache) DoPoint(ctx context.Context, key string, p core.DesignPoint, fn func() core.Result) (core.Result, bool, bool) {
	owner, remote := c.peers.Owner(key)
	if !remote || cluster.PeeringDisabled(ctx) {
		return c.lru.Do(key, fn)
	}
	if r, ok := c.lru.Get(key); ok {
		return r, true, false
	}
	if r, ok := c.fetchRemote(ctx, owner, key, p); ok {
		c.lru.Put(key, r)
		return r, true, false
	}
	return c.lru.Do(key, fn)
}

// fetchRemote asks owner for key's result. false means "compute
// locally": transport and protocol failures are already accounted by
// the peer client, payload-level ones (undecodable result, an
// error-carrying row — the owner degrades too, but its error must not
// become ours) count here.
func (c *clusterCache) fetchRemote(ctx context.Context, owner cluster.Member, key string, p core.DesignPoint) (core.Result, bool) {
	spec, err := json.Marshal(peerEvalSpec{Options: c.spec, Point: pointSpecOf(p)})
	if err != nil {
		c.peers.CountError()
		return core.Result{}, false
	}
	payload, err := c.peers.Fetch(ctx, owner, key, spec)
	if err != nil {
		return core.Result{}, false
	}
	var pr peerEvalResult
	if err := json.Unmarshal(payload, &pr); err != nil {
		c.peers.CountError()
		return core.Result{}, false
	}
	res := pr.Result.result()
	if res.Err != nil {
		c.peers.CountError()
		return core.Result{}, false
	}
	if pr.Hit {
		c.peers.CountHit()
	} else {
		c.peers.CountMiss()
	}
	return res, true
}

// PeerEvaluate serves one peer-protocol request: evaluate (or serve
// warm) the design point the spec describes, returning the result, the
// owner-side cache fingerprint for the response key, and whether it was
// a cache hit. Peer traffic is node-to-node plumbing on behalf of a
// request already admitted elsewhere, so it skips tenant admission; it
// runs with peering disabled so a skewed ring cannot bounce the key
// onward.
func (m *Manager) PeerEvaluate(ctx context.Context, spec peerEvalSpec) (core.Result, string, bool, error) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return core.Result{}, "", false, ErrShuttingDown
	}
	opts := spec.Options.apply(m.cfg.Defaults)
	scn, err := resolveScenario(&opts)
	if err != nil {
		return core.Result{}, "", false, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	p, err := spec.Point.DesignPoint(scn)
	if err != nil {
		return core.Result{}, "", false, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	engine, err := m.cfg.Engines(opts)
	if err != nil {
		return core.Result{}, "", false, fmt.Errorf("engine: %w", err)
	}
	m.registerEngine(engine)
	ctx = cluster.WithoutPeering(ctx)
	ctx, cancel := context.WithTimeout(ctx, m.cfg.EvalTimeout)
	defer cancel()
	var hit bool
	rs, err := engine.RunWithHook(ctx, []core.DesignPoint{p}, func(ev dse.Event) {
		hit = ev.Cached
	})
	if err != nil {
		return core.Result{}, "", false, err
	}
	key := ""
	if f, ok := engine.(interface{ EvaluatorID() string }); ok {
		key = f.EvaluatorID() + "/" + p.Key()
	}
	return rs[0], key, hit, nil
}

// ClusterStatus snapshots the peer group, when fleet mode is on.
func (m *Manager) ClusterStatus() (cluster.Status, bool) {
	if m.cfg.Cluster == nil {
		return cluster.Status{}, false
	}
	return m.cfg.Cluster.Status(), true
}

// handlePeerEval is the serving side of the peer protocol. The response
// carries this node's own fingerprint for the point, so a requester
// with a skewed view detects the mismatch and computes locally instead
// of caching a result evaluated under different options.
func (s *Server) handlePeerEval(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "reading peer request: %v", err)
		return
	}
	req, err := cluster.DecodePeerRequest(body)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	var spec peerEvalSpec
	if err := json.Unmarshal(req.Spec, &spec); err != nil {
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "parsing peer spec: %v", err)
		return
	}
	res, key, hit, err := s.mgr.PeerEvaluate(r.Context(), spec)
	switch {
	case errors.Is(err, ErrShuttingDown):
		s.error(w, r, http.StatusServiceUnavailable, CodeShuttingDown, "%v", err)
		return
	case errors.Is(err, ErrBadRequest):
		s.error(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	case err != nil:
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	if key == "" {
		// An engine without a fingerprint cannot prove what it answered.
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "engine exposes no evaluator identity")
		return
	}
	payload, err := json.Marshal(peerEvalResult{Result: walResultOf(res), Hit: hit})
	if err == nil {
		payload, err = cluster.EncodePeerResponse(key, payload)
	}
	if err != nil {
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "encoding peer response: %v", err)
		return
	}
	s.mgr.cfg.Cluster.CountFill()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// ClusterMemberJSON is one member's row in GET /v1/cluster.
type ClusterMemberJSON struct {
	Name              string  `json:"name"`
	Addr              string  `json:"addr"`
	Self              bool    `json:"self,omitempty"`
	RingShare         float64 `json:"ring_share"`
	Requests          int64   `json:"requests"`
	Errors            int64   `json:"errors"`
	ConsecutiveErrors int64   `json:"consecutive_errors"`
	LastError         string  `json:"last_error,omitempty"`
	LatencyP50Ms      float64 `json:"latency_p50_ms"`
	LatencyP99Ms      float64 `json:"latency_p99_ms"`
}

// ClusterStatusJSON is the GET /v1/cluster body: the ring as this node
// sees it, group-wide peering accounting, and per-peer health.
type ClusterStatusJSON struct {
	Self       string              `json:"self"`
	VNodes     int                 `json:"vnodes"`
	RingSize   int                 `json:"ring_size"`
	PeerHits   int64               `json:"peer_hits"`
	PeerMisses int64               `json:"peer_misses"`
	PeerFills  int64               `json:"peer_fills"`
	PeerErrors int64               `json:"peer_errors"`
	Members    []ClusterMemberJSON `json:"members"`
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.mgr.ClusterStatus()
	if !ok {
		s.error(w, r, http.StatusNotFound, CodeNotFound, "fleet mode is not enabled")
		return
	}
	out := ClusterStatusJSON{
		Self:       st.Self.Name,
		VNodes:     st.VNodes,
		RingSize:   st.RingSize,
		PeerHits:   st.Hits,
		PeerMisses: st.Misses,
		PeerFills:  st.Fills,
		PeerErrors: st.Errors,
		Members:    make([]ClusterMemberJSON, 0, len(st.Peers)),
	}
	for _, ps := range st.Peers {
		out.Members = append(out.Members, ClusterMemberJSON{
			Name:              ps.Member.Name,
			Addr:              ps.Member.Addr,
			Self:              ps.Self,
			RingShare:         ps.Share,
			Requests:          ps.Requests,
			Errors:            ps.Errors,
			ConsecutiveErrors: ps.Consecutive,
			LastError:         ps.LastError,
			LatencyP50Ms:      ps.Latency.Quantile(0.50) * 1000,
			LatencyP99Ms:      ps.Latency.Quantile(0.99) * 1000,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// jobNode extracts the accepting node's name from a cluster-mode job ID
// ("sweep-<node>-<seq>" / "search-<node>-<seq>"). Single-node IDs
// ("sweep-7") and anything else return "".
func jobNode(id string) string {
	rest, ok := strings.CutPrefix(id, "sweep-")
	if !ok {
		rest, ok = strings.CutPrefix(id, "search-")
	}
	if !ok {
		return ""
	}
	dash := strings.LastIndexByte(rest, '-')
	if dash <= 0 {
		return ""
	}
	if _, err := strconv.ParseUint(rest[dash+1:], 10, 64); err != nil {
		return ""
	}
	return rest[:dash]
}

// redirectJob implements sticky routing: jobs — and above all their SSE
// event streams — live on the node that accepted them. A request for a
// job this node does not know, whose ID names another live member,
// answers 307 with a Location on that member; anything else falls
// through to the caller's 404. Reports whether it redirected.
func (s *Server) redirectJob(w http.ResponseWriter, r *http.Request) bool {
	peers := s.mgr.cfg.Cluster
	if peers == nil {
		return false
	}
	node := jobNode(r.PathValue("id"))
	if node == "" || node == peers.Self().Name {
		return false
	}
	m, ok := peers.Lookup(node)
	if !ok || m.Addr == "" {
		return false
	}
	target := strings.TrimSuffix(m.Addr, "/") + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
	return true
}
