package serve

import (
	"fmt"
	"net/http"
	"strconv"
)

// handleEvents streams a job's buffered events as Server-Sent Events.
// Every event carries its per-job sequence number as the SSE id, so a
// client that reconnects with Last-Event-ID resumes exactly where its
// previous stream broke — the buffer replays the missed suffix first,
// then the stream goes live. The stream closes itself once the job is
// terminal and fully replayed.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "response writer cannot stream")
		return
	}

	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	// Ask clients to back off a little between reconnects.
	fmt.Fprint(w, "retry: 2000\n\n")
	flusher.Flush()

	s.sseActive.Add(1)
	defer s.sseActive.Add(-1)

	ctx := r.Context()
	for {
		evs, more := job.WaitEvents(ctx, after)
		for _, ev := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, ev.Data)
			after = ev.ID
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if !more {
			return
		}
	}
}
