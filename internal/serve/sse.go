package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"efficsense/internal/fault"
)

// handleEvents streams a job's buffered events as Server-Sent Events.
// Every event carries its per-job sequence number as the SSE id, so a
// client that reconnects with Last-Event-ID resumes exactly where its
// previous stream broke — the buffer replays the missed suffix first,
// then the stream goes live. The stream closes itself once the job is
// terminal and fully replayed.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		s.error(w, r, http.StatusInternalServerError, CodeInternal, "response writer cannot stream")
		return
	}

	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	// Ask clients to back off a little between reconnects.
	fmt.Fprint(w, "retry: 2000\n\n")
	flusher.Flush()

	s.sseActive.Add(1)
	defer s.sseActive.Add(-1)

	ctx := r.Context()
	for {
		evs, more := job.WaitEvents(ctx, after)
		for _, ev := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, ev.Data)
			after = ev.ID
		}
		if len(evs) > 0 {
			// The serve/sse-flush failpoint models a dying client
			// connection: an injected error drops the stream mid-job
			// (everything already written in this batch may or may not
			// have reached the client — exactly the ambiguity
			// Last-Event-ID resumption exists for); an injected latency
			// stalls the flush like a congested peer.
			if err := fault.Fire(fault.PointSSEFlush); err != nil {
				return
			}
			flusher.Flush()
		}
		if !more {
			return
		}
	}
}
