package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
)

// postJSONKey is postJSON with a tenant identity attached.
func postJSONKey(t *testing.T, url, body, apiKey string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, apiKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// retryAfterHeader parses the Retry-After header, failing on anything
// but a positive integer (the honesty contract: a 429/503 must always
// say when to come back).
func retryAfterHeader(t *testing.T, resp *http.Response) int {
	t.Helper()
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	return ra
}

// TestTenantSubmitRateLimit pins the submission token bucket: with a
// burst of one and a near-zero refill rate, the first submission is
// admitted and the second is rejected 429/rate_limited with an honest
// Retry-After, while a different tenant's bucket is untouched.
func TestTenantSubmitRateLimit(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{
		Tenancy: TenantPolicy{Default: TenantLimits{SubmitRate: 0.001, SubmitBurst: 1}},
	})

	resp := postJSONKey(t, ts.URL+"/v1/sweeps", smallSweep, "team-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSONKey(t, ts.URL+"/v1/sweeps", smallSweep, "team-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: status %d, want 429", resp.StatusCode)
	}
	retryAfterHeader(t, resp)
	if env := decodeErrorEnvelope(t, resp); env.Code != CodeRateLimited {
		t.Fatalf("second submission: code %q, want %q", env.Code, CodeRateLimited)
	}

	// Buckets are per tenant: team-b still has its own token.
	resp = postJSONKey(t, ts.URL+"/v1/sweeps", smallSweep, "team-b")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant's submission: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTenantEvalRateLimit pins the priority lane's bucket: synchronous
// evaluations are shaped by the tenant's evaluate bucket (429 +
// Retry-After beyond it) independently of submissions.
func TestTenantEvalRateLimit(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{
		Tenancy: TenantPolicy{Default: TenantLimits{EvalRate: 0.001, EvalBurst: 1}},
	})
	const body = `{"point":{"arch":"baseline","bits":8,"lna_noise":1e-6}}`

	resp := postJSONKey(t, ts.URL+"/v1/evaluate", body, "team-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first evaluate: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSONKey(t, ts.URL+"/v1/evaluate", body, "team-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second evaluate: status %d, want 429", resp.StatusCode)
	}
	retryAfterHeader(t, resp)
	if env := decodeErrorEnvelope(t, resp); env.Code != CodeRateLimited {
		t.Fatalf("second evaluate: code %q, want %q", env.Code, CodeRateLimited)
	}
}

// blockingEval blocks every evaluation until its gate closes — the
// deterministic way to hold job slots occupied while a test probes the
// admission pipeline.
type blockingEval struct {
	gate chan struct{}
}

func (e *blockingEval) Evaluate(p core.DesignPoint) core.Result {
	<-e.gate
	return (&slowEval{}).Evaluate(p)
}

// newShapedServer is newTestServer with a caller-chosen evaluator, for
// tests that need to control evaluation timing.
func newShapedServer(t *testing.T, eval dse.PointEvaluator, cfg ManagerConfig) (*httptest.Server, *Manager) {
	t.Helper()
	store := cache.New(256)
	eng, err := dse.NewSweep(eval,
		dse.WithCache(store), dse.WithWorkers(2), dse.WithEvaluatorID("test-eval"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engines = func(opts experiments.Options) (Engine, error) { return eng, nil }
	cfg.Cache = store
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		ts.Close()
	})
	return ts, mgr
}

// TestTenantQuotaRejectsWithHonestRetryAfter pins the concurrency+queue
// quota: with one global slot and a one-deep queue per tenant, the
// third submission of a tenant is rejected 429/saturated with an honest
// Retry-After — while another tenant can still queue its own first job
// (quota state is per tenant, not global).
func TestTenantQuotaRejectsWithHonestRetryAfter(t *testing.T) {
	eval := &blockingEval{gate: make(chan struct{})}
	released := false
	release := func() {
		if !released {
			released = true
			close(eval.gate)
		}
	}
	defer release()

	ts, mgr := newShapedServer(t, eval, ManagerConfig{
		MaxConcurrentJobs: 1,
		Tenancy:           TenantPolicy{Default: TenantLimits{MaxQueuedJobs: 1}},
	})

	var accepted []string
	for i := 0; i < 2; i++ { // first runs (blocked), second queues
		resp := postJSONKey(t, ts.URL+"/v1/sweeps", smallSweep, "bulk")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
		accepted = append(accepted, decodeStatus(t, resp).ID)
	}

	resp := postJSONKey(t, ts.URL+"/v1/sweeps", smallSweep, "bulk")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: status %d, want 429", resp.StatusCode)
	}
	retryAfterHeader(t, resp)
	if env := decodeErrorEnvelope(t, resp); env.Code != CodeSaturated {
		t.Fatalf("over-quota submission: code %q, want %q", env.Code, CodeSaturated)
	}

	// Quota state is per tenant: another tenant still queues its first.
	resp = postJSONKey(t, ts.URL+"/v1/sweeps", smallSweep, "other")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant's submission: status %d, want 202", resp.StatusCode)
	}
	accepted = append(accepted, decodeStatus(t, resp).ID)

	// The rejection is visible in the tenant's own accounting.
	found := false
	for _, tc := range mgr.TenantCounters() {
		if tc.Tenant == "bulk" {
			found = true
			if tc.RejectedQuota != 1 || tc.Submitted != 2 {
				t.Fatalf("bulk counters: %+v", tc)
			}
		}
	}
	if !found {
		t.Fatal("tenant \"bulk\" missing from counters")
	}

	release()
	for _, id := range accepted {
		if st := waitTerminal(t, ts.URL, id); st.State != string(StateCompleted) {
			t.Fatalf("job %s: state %q", id, st.State)
		}
	}
}

// TestTenantFairnessShapesTraffic is the fairness acceptance test: two
// bulk tenants each flood more jobs than their per-tenant concurrency
// quota, and while their backlog drains a third tenant's synchronous
// evaluations stay fast (the priority lane never queues behind bulk
// sweeps). The per-tenant running gauge never exceeds the quota, and
// every queued job eventually completes.
func TestTenantFairnessShapesTraffic(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 2*time.Millisecond, ManagerConfig{
		MaxConcurrentJobs: 2,
		Tenancy:           TenantPolicy{Default: TenantLimits{MaxConcurrentJobs: 1, MaxQueuedJobs: 8}},
	})

	const jobsPerTenant = 4
	var ids []string
	for i := 0; i < jobsPerTenant; i++ {
		for _, tenant := range []string{"team-a", "team-b"} {
			resp := postJSONKey(t, ts.URL+"/v1/sweeps", smallSweep, tenant)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("%s submission %d: status %d", tenant, i, resp.StatusCode)
			}
			ids = append(ids, decodeStatus(t, resp).ID)
		}
	}

	// The priority lane: synchronous evaluations during the bulk storm.
	// Each is bounded well below the backlog's drain time — they never
	// wait for a job slot.
	const evalBody = `{"point":{"arch":"baseline","bits":8,"lna_noise":1e-6}}`
	done := make(chan struct{})
	var evalErr error
	var evalMu sync.Mutex
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			start := time.Now()
			resp := postJSONKey(t, ts.URL+"/v1/evaluate", evalBody, "interactive")
			lat := time.Since(start)
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusOK || lat > 2*time.Second {
				evalMu.Lock()
				evalErr = fmt.Errorf("evaluate %d: status %d after %s", i, code, lat)
				evalMu.Unlock()
				return
			}
		}
	}()

	// While the backlog drains, no tenant ever exceeds its quota of one
	// running job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		running := 0
		for _, tc := range mgr.TenantCounters() {
			if tc.Tenant == "team-a" || tc.Tenant == "team-b" {
				if tc.Running > 1 {
					t.Fatalf("tenant %s runs %d jobs, quota is 1", tc.Tenant, tc.Running)
				}
				running += tc.Running + tc.Queued
			}
		}
		if running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bulk backlog never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-done
	evalMu.Lock()
	defer evalMu.Unlock()
	if evalErr != nil {
		t.Fatal(evalErr)
	}

	for _, id := range ids {
		if st := waitTerminal(t, ts.URL, id); st.State != string(StateCompleted) {
			t.Fatalf("job %s: state %q", id, st.State)
		}
	}

	// The shaping is observable: per-tenant series appear in /metrics.
	metrics := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		`efficsense_tenant_jobs_submitted_total{tenant="team-a"} 4`,
		`efficsense_tenant_jobs_submitted_total{tenant="team-b"} 4`,
		`efficsense_tenant_weight{tenant="team-a"} 1`,
		`efficsense_tenant_evaluations_total{tenant="interactive"} 10`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// orderEval records the order design points are evaluated in, keyed by
// their LNANoise value, and blocks points tagged with gateNoise until
// the gate closes.
type orderEval struct {
	mu        sync.Mutex
	order     []float64
	gate      chan struct{}
	gateNoise float64
}

func (e *orderEval) Evaluate(p core.DesignPoint) core.Result {
	if p.LNANoise == e.gateNoise {
		<-e.gate
	}
	e.mu.Lock()
	e.order = append(e.order, p.LNANoise)
	e.mu.Unlock()
	return (&slowEval{}).Evaluate(p)
}

// onePoint is a single-design-point sweep whose point is identified by
// its noise value.
func onePoint(noise float64) SweepRequest {
	return SweepRequest{Space: &SpaceSpec{
		Architectures: []string{"baseline"}, Bits: []int{4}, LNANoise: []float64{noise},
	}}
}

// TestWeightedFairDispatchOrder pins the stride scheduler's exact
// dispatch sequence: with one slot held by a blocker, tenant a (weight
// 2) and tenant b (weight 1) each queue four one-point sweeps; on
// release the backlog drains a b a a b a b b — a receives twice b's
// share while both have work, and the tail is b's leftover.
func TestWeightedFairDispatchOrder(t *testing.T) {
	eval := &orderEval{gate: make(chan struct{}), gateNoise: 99}
	released := false
	release := func() {
		if !released {
			released = true
			close(eval.gate)
		}
	}
	defer release()

	_, mgr := newShapedServer(t, eval, ManagerConfig{
		MaxConcurrentJobs: 1,
		Tenancy: TenantPolicy{
			Default: TenantLimits{MaxQueuedJobs: 1},
			Tenants: map[string]TenantLimits{
				"a": {Weight: 2, MaxQueuedJobs: 10},
				"b": {Weight: 1, MaxQueuedJobs: 10},
			},
		},
	})
	ctx := context.Background()

	blocker, err := mgr.Submit(WithTenant(ctx, "z"), onePoint(99))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	// Interleaved submission order; dispatch order is the scheduler's.
	for i := 0; i < 4; i++ {
		ja, err := mgr.Submit(WithTenant(ctx, "a"), onePoint(float64(11+i)))
		if err != nil {
			t.Fatalf("a submission %d: %v", i, err)
		}
		jb, err := mgr.Submit(WithTenant(ctx, "b"), onePoint(float64(21+i)))
		if err != nil {
			t.Fatalf("b submission %d: %v", i, err)
		}
		jobs = append(jobs, ja, jb)
	}

	release()
	deadline := time.Now().Add(10 * time.Second)
	for _, j := range append(jobs, blocker) {
		for !j.State().Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", j.ID)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	eval.mu.Lock()
	var got []float64
	for _, n := range eval.order {
		if n != eval.gateNoise {
			got = append(got, n)
		}
	}
	eval.mu.Unlock()
	want := []float64{11, 21, 12, 13, 22, 14, 23, 24} // a b a a b a b b
	if len(got) != len(want) {
		t.Fatalf("evaluated %d points, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (weight-2 tenant gets twice the share)", got, want)
		}
	}
}

// TestShutdownStopsEvictionTimers pins satellite 1's fix: every
// finished job arms a TTL-eviction timer, and Shutdown stops and drops
// them all — a drained manager leaks no timers into its embedder, and
// the finished jobs stay queryable (no eviction fires post-drain).
func TestShutdownStopsEvictionTimers(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 0, ManagerConfig{JobTTL: time.Hour})

	resp := postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := decodeStatus(t, resp).ID
	waitTerminal(t, ts.URL, id)

	mgr.mu.Lock()
	armed := len(mgr.timers)
	mgr.mu.Unlock()
	if armed != 1 {
		t.Fatalf("%d eviction timers armed after one finished job, want 1", armed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	mgr.mu.Lock()
	leaked := len(mgr.timers)
	mgr.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d eviction timers still armed after Shutdown, want 0", leaked)
	}
	if _, err := mgr.Job(id); err != nil {
		t.Fatalf("finished job evicted after Shutdown: %v", err)
	}
}
