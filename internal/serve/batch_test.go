package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
)

// slowBatchEval upgrades slowEval with the batch contract, so the serve
// tests exercise the engines' batch dispatch end to end.
type slowBatchEval struct {
	slowEval
	batches     atomic.Int64
	batchPoints atomic.Int64
}

func (e *slowBatchEval) EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result {
	e.batches.Add(1)
	e.batchPoints.Add(int64(len(pts)))
	out := make([]core.Result, len(pts))
	for i, p := range pts {
		out[i] = e.Evaluate(p)
	}
	return out
}

// newBatchTestServer is newTestServer over a batch-capable evaluator,
// with extra engine options chosen by the test.
func newBatchTestServer(t *testing.T, cfg ManagerConfig, extra ...dse.Option) (*httptest.Server, *Manager, *slowBatchEval) {
	t.Helper()
	eval := &slowBatchEval{}
	opts := append([]dse.Option{
		dse.WithCache(cache.New(128)), dse.WithWorkers(2), dse.WithEvaluatorID("test-eval"),
	}, extra...)
	eng, err := dse.NewSweep(eval, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engines = func(o experiments.Options) (Engine, error) { return eng, nil }
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		ts.Close()
	})
	return ts, mgr, eval
}

func decodeBatch(t *testing.T, resp *http.Response) EvaluateBatchResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch evaluate status %d: %s", resp.StatusCode, raw)
	}
	var br EvaluateBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	return br
}

// batchBody is 6 points in two ADC-resolution groups (bits vary within
// a shared noise floor), so the engine's group-ordered chunking has
// something to share.
const batchBody = `{"points":[
	{"arch":"baseline","bits":4,"lna_noise":1e-6},
	{"arch":"baseline","bits":5,"lna_noise":1e-6},
	{"arch":"baseline","bits":6,"lna_noise":1e-6},
	{"arch":"baseline","bits":4,"lna_noise":2e-6},
	{"arch":"baseline","bits":5,"lna_noise":2e-6},
	{"arch":"baseline","bits":6,"lna_noise":2e-6}]}`

// TestEvaluateBatchEndToEnd covers the batch arm of POST /v1/evaluate:
// rows come back in input order through the engine's batch dispatch, a
// repeat is served warm, the single-object body keeps working on the
// same endpoint, and the batch counters and histograms surface in
// /metrics.
func TestEvaluateBatchEndToEnd(t *testing.T) {
	ts, _, eval := newBatchTestServer(t, ManagerConfig{})

	br := decodeBatch(t, postJSON(t, ts.URL+"/v1/evaluate", batchBody))
	if br.Count != 6 || br.Partial || br.Errors != 0 || len(br.Results) != 6 {
		t.Fatalf("batch response: %+v", br)
	}
	wantBits := []int{4, 5, 6, 4, 5, 6}
	for i, row := range br.Results {
		if row.Point.Bits != wantBits[i] {
			t.Fatalf("row %d out of input order: %+v", i, row.Point)
		}
		if row.Err != "" || row.Cached {
			t.Fatalf("cold row %d: %+v", i, row)
		}
		if row.SNRdB != 3*float64(row.Point.Bits) {
			t.Fatalf("row %d figures wrong: %+v", i, row)
		}
	}
	if eval.batches.Load() == 0 {
		t.Fatal("batch request bypassed the batch evaluator")
	}
	if got := eval.calls.Load(); got != 6 {
		t.Fatalf("evaluations %d, want 6", got)
	}

	// The identical batch again: every row warm, no new evaluator calls.
	calls, batches := eval.calls.Load(), eval.batches.Load()
	br2 := decodeBatch(t, postJSON(t, ts.URL+"/v1/evaluate", batchBody))
	for i, row := range br2.Results {
		if !row.Cached {
			t.Fatalf("warm row %d not cached: %+v", i, row)
		}
	}
	if eval.calls.Load() != calls || eval.batches.Load() != batches {
		t.Fatalf("warm batch re-evaluated: %d calls %d batches", eval.calls.Load(), eval.batches.Load())
	}

	// The single-object body still works on the same endpoint.
	resp := postJSON(t, ts.URL+"/v1/evaluate", `{"point":{"arch":"baseline","bits":4,"lna_noise":1e-6}}`)
	var rj ResultJSON
	if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rj.SNRdB != 12 || !rj.Cached {
		t.Fatalf("single-object evaluation: %+v", rj)
	}

	metrics := fetchMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "efficsense_engine_batches_total"); got != float64(eval.batches.Load()) {
		t.Errorf("exposed batches %g, want %d", got, eval.batches.Load())
	}
	if got := metricValue(t, metrics, "efficsense_engine_batch_points_total"); got != float64(eval.batchPoints.Load()) {
		t.Errorf("exposed batch points %g, want %d", got, eval.batchPoints.Load())
	}
	if got := metricValue(t, metrics, "efficsense_batch_size_points_count"); got != float64(eval.batches.Load()) {
		t.Errorf("batch-size histogram count %g, want %d", got, eval.batches.Load())
	}
	if got := metricValue(t, metrics, "efficsense_batch_duration_seconds_count"); got != float64(eval.batches.Load()) {
		t.Errorf("batch-duration histogram count %g, want %d", got, eval.batches.Load())
	}
}

// TestEvaluateBatchHistogramsExistCold pins the zero-layout fallback:
// the batch histograms exist in /metrics from the first scrape, before
// any engine has resolved.
func TestEvaluateBatchHistogramsExistCold(t *testing.T) {
	ts, _, _ := newBatchTestServer(t, ManagerConfig{})
	metrics := fetchMetrics(t, ts.URL)
	for _, name := range []string{
		"efficsense_batch_size_points_count 0",
		"efficsense_batch_duration_seconds_count 0",
		"efficsense_engine_batches_total 0",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing cold series %q", name)
		}
	}
}

// TestEvaluateBatchValidation walks the batch arm's 400 edges.
func TestEvaluateBatchValidation(t *testing.T) {
	ts, _, _ := newBatchTestServer(t, ManagerConfig{MaxSweepPoints: 3})
	cases := []struct {
		name, body, wantIn string
	}{
		{"both point and points",
			`{"point":{"arch":"baseline","bits":4,"lna_noise":1e-6},"points":[{"arch":"baseline","bits":4,"lna_noise":1e-6}]}`,
			"not both"},
		{"empty points", `{"points":[]}`, "empty"},
		{"invalid row", `{"points":[{"arch":"baseline","bits":4,"lna_noise":1e-6},{"arch":"warp","bits":4,"lna_noise":1e-6}]}`,
			"points[1]"},
		{"negative timeout", `{"points":[{"arch":"baseline","bits":4,"lna_noise":1e-6}],"timeout_ms":-1}`,
			"timeout_ms"},
		{"oversize batch", `{"points":[
			{"arch":"baseline","bits":4,"lna_noise":1e-6},
			{"arch":"baseline","bits":5,"lna_noise":1e-6},
			{"arch":"baseline","bits":6,"lna_noise":1e-6},
			{"arch":"baseline","bits":7,"lna_noise":1e-6}]}`,
			"exceeds the limit"},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/evaluate", c.body)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, raw)
			continue
		}
		if !strings.Contains(string(raw), c.wantIn) {
			t.Errorf("%s: error %s does not mention %q", c.name, raw, c.wantIn)
		}
	}
}

// TestEvaluateBatchDeadlineDegradesRows: a deadline that fires mid-batch
// yields HTTP 200 with error rows for the unfinished points — the batch
// shape degrades, it does not turn into the single-point 504. The
// timing pins the deadline inside the second evaluation (one worker,
// 80 ms per point, 100 ms budget), so the points the engine never
// dispatched must come back as deadline rows.
func TestEvaluateBatchDeadlineDegradesRows(t *testing.T) {
	ts, _, eval := newBatchTestServer(t, ManagerConfig{}, dse.WithWorkers(1), dse.WithBatchSize(1))
	eval.delay = 80 * time.Millisecond

	body := `{"points":[
		{"arch":"baseline","bits":4,"lna_noise":1e-6},
		{"arch":"baseline","bits":5,"lna_noise":1e-6},
		{"arch":"baseline","bits":6,"lna_noise":1e-6},
		{"arch":"baseline","bits":7,"lna_noise":1e-6}],"timeout_ms":100}`
	br := decodeBatch(t, postJSON(t, ts.URL+"/v1/evaluate", body))
	if !br.Partial || br.Errors == 0 || br.Errors >= br.Count {
		t.Fatalf("deadline batch should degrade some rows and keep others: %+v", br)
	}
	for _, row := range br.Results {
		if row.Err != "" && !strings.Contains(row.Err, "deadline") {
			t.Fatalf("degraded row carries the wrong error: %q", row.Err)
		}
	}
}
