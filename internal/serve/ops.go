package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
)

// NewOpsHandler builds the handler for the private operations listener
// (-ops-addr). It exposes the Go profiling and introspection endpoints
// that must never face the public API:
//
//	/debug/pprof/     runtime profiles (net/http/pprof)
//	/debug/vars       expvar JSON (memstats, cmdline)
//	/debug/build      module, VCS and toolchain info as JSON
//
// The handler is self-contained: importing net/http/pprof registers its
// handlers on http.DefaultServeMux as a side effect, but the public API
// server uses its own mux, so nothing here leaks onto the public
// listener. Mount this handler only on a loopback or otherwise
// access-controlled address.
func NewOpsHandler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/build", handleBuildInfo)

	// A tiny index so operators hitting the root see what is here.
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "efficsensed ops listener\n\n"+
			"/debug/pprof/   runtime profiles\n"+
			"/debug/vars     expvar JSON\n"+
			"/debug/build    build info JSON\n")
	})

	return mux
}

// buildInfoJSON is the /debug/build response shape.
type buildInfoJSON struct {
	GoVersion string            `json:"go_version"`
	Path      string            `json:"path,omitempty"`
	Module    string            `json:"module,omitempty"`
	Version   string            `json:"version,omitempty"`
	Settings  map[string]string `json:"settings,omitempty"`
	NumCPU    int               `json:"num_cpu"`
}

func handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	out := buildInfoJSON{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out.Path = bi.Path
		out.Module = bi.Main.Path
		out.Version = bi.Main.Version
		out.Settings = make(map[string]string, len(bi.Settings))
		for _, s := range bi.Settings {
			out.Settings[s.Key] = s.Value
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // best-effort diagnostics endpoint
}
