package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"efficsense/internal/wal"
)

// singleNodeReference runs fleetSweep on a plain single-node server and
// returns its NDJSON result stream — the correctness yardstick every
// degraded fleet run must still match bit for bit.
func singleNodeReference(t *testing.T) []byte {
	t.Helper()
	srv, _, _ := newTestServer(t, 0, ManagerConfig{})
	st := submitSweep(t, srv.URL)
	done := waitTerminal(t, srv.URL, st.ID)
	if done.State != string(StateCompleted) {
		t.Fatalf("reference state %q", done.State)
	}
	return fetchNDJSON(t, srv.URL, "/v1/sweeps/"+st.ID)
}

// TestChaosClusterPeerKillMidSweep: losing a member must cost only the
// peer shortcut, never a row. A dead owner degrades every fetch for its
// segment to local compute — the sweep completes, is not partial, and
// its results are bit-identical to a single-node run.
func TestChaosClusterPeerKillMidSweep(t *testing.T) {
	ref := singleNodeReference(t)

	// Deterministic variant: the peer is already dead when the sweep
	// starts, so every fetch for its segment fails and is accounted.
	nodes := newFleet(t, []string{"node-a", "node-b", "node-c"}, 0)
	a, c := nodes[0], nodes[2]
	c.srv.Close()

	st := submitSweep(t, a.srv.URL)
	done := waitTerminal(t, a.srv.URL, st.ID)
	if done.State != string(StateCompleted) {
		t.Fatalf("sweep with a dead peer: state %q, error %q", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Partial {
		t.Fatalf("degraded fetches produced a partial result: %+v", done.Result)
	}
	rows := fetchNDJSON(t, a.srv.URL, "/v1/sweeps/"+st.ID)
	if !bytes.Equal(rows, ref) {
		t.Fatalf("degraded results differ from reference:\ndegraded:\n%s\nreference:\n%s", rows, ref)
	}
	if errs := a.peers.Status().Errors; errs == 0 {
		t.Fatal("fetches against the dead peer were not accounted as errors")
	}
	// The dead member's health row carries the failure for /v1/cluster.
	cs := clusterStatusJSON(t, a.srv.URL)
	var sawDead bool
	for _, m := range cs.Members {
		if m.Name == "node-c" {
			sawDead = m.Errors > 0 && m.LastError != ""
		}
	}
	if !sawDead {
		t.Fatalf("dead peer's health missing from /v1/cluster: %+v", cs.Members)
	}

	// Mid-sweep variant: the peer dies while the sweep is in flight.
	// Whenever the kill lands, the outcome contract is the same —
	// completed, never partial, values correct.
	nodes2 := newFleet(t, []string{"node-a", "node-b", "node-c"}, 2*time.Millisecond)
	a2, c2 := nodes2[0], nodes2[2]
	st2 := submitSweep(t, a2.srv.URL)
	time.Sleep(3 * time.Millisecond)
	c2.srv.Close()
	done2 := waitTerminal(t, a2.srv.URL, st2.ID)
	if done2.State != string(StateCompleted) {
		t.Fatalf("mid-sweep kill: state %q, error %q", done2.State, done2.Error)
	}
	if done2.Result == nil || done2.Result.Partial {
		t.Fatalf("mid-sweep kill produced a partial result: %+v", done2.Result)
	}
	rows2 := fetchNDJSON(t, a2.srv.URL, "/v1/sweeps/"+st2.ID)
	if !bytes.Equal(rows2, ref) {
		t.Fatalf("mid-sweep-kill results differ from reference:\ngot:\n%s\nwant:\n%s", rows2, ref)
	}
}

// TestChaosClusterRestartedPeerRejoins: a node crashes mid-sweep (its
// journal file copied byte-for-byte as the SIGKILL disk image), restarts
// on a NEW address, rejoins the ring and resumes the journaled job —
// evaluating only the complement, fleet-wide, with some of it served by
// the peer it rejoined. Its keyspace segment survives the address
// change, so the other node's fetches find it again.
func TestChaosClusterRestartedPeerRejoins(t *testing.T) {
	const totalPoints, journaled = 6, 3
	const sweep = `{"space":{"architectures":["baseline"],"bits":[4,6],"noise_steps":3}}`

	// Reference: the same 6-point sweep, uninterrupted, single node.
	refSrv, _, _ := newTestServer(t, 0, ManagerConfig{})
	refResp := postJSON(t, refSrv.URL+"/v1/sweeps", sweep)
	refSt := decodeStatus(t, refResp)
	if waitTerminal(t, refSrv.URL, refSt.ID).State != string(StateCompleted) {
		t.Fatal("reference sweep failed")
	}
	ref := fetchNDJSON(t, refSrv.URL, "/v1/sweeps/"+refSt.ID)

	// Phase 1: node-a runs alone (a fleet of one — peering idle, so the
	// crash point is deterministic) and dies after three journaled rows.
	dirA := t.TempDir()
	walA, _, err := wal.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	evalA := &gatedEval{limit: journaled, gate: make(chan struct{}), blocked: make(chan struct{}, 1)}
	released := false
	release := func() {
		if !released {
			released = true
			close(evalA.gate)
		}
	}
	defer release()
	nodeA := newFleetNode(t, "node-a", evalA, walA)
	nodeA.peers.SetMembers(nil)

	resp := postJSON(t, nodeA.srv.URL+"/v1/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID != "sweep-node-a-1" {
		t.Fatalf("job ID %q", st.ID)
	}
	select {
	case <-evalA.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("evaluator never reached the gate")
	}
	jobA, err := nodeA.mgr.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for jobA.Status().Progress.Done < journaled {
		if time.Now().After(deadline) {
			t.Fatal("rows never journaled before the crash point")
		}
		time.Sleep(time.Millisecond)
	}
	snapshot, err := os.ReadFile(filepath.Join(dirA, wal.FileName))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: node-b comes up, and node-a restarts from the snapshot on
	// a fresh listener (a new address — the ring hashes names, so its
	// segment is unchanged). Both learn the new two-node roster.
	dirB := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirB, wal.FileName), snapshot, 0o644); err != nil {
		t.Fatal(err)
	}
	walRestarted, recs, err := wal.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	evalRestarted := &slowEval{}
	restarted := newFleetNode(t, "node-a", evalRestarted, walRestarted)
	evalB := &slowEval{}
	nodeB := newFleetNode(t, "node-b", evalB, nil)
	installMembership(restarted, nodeB)
	if err := restarted.mgr.Recover(recs); err != nil {
		t.Fatal(err)
	}

	done := waitTerminal(t, restarted.srv.URL, st.ID)
	if done.State != string(StateCompleted) || done.Progress.Done != totalPoints {
		t.Fatalf("resumed job: %+v", done)
	}
	rows := fetchNDJSON(t, restarted.srv.URL, "/v1/sweeps/"+st.ID)
	if !bytes.Equal(rows, ref) {
		t.Fatalf("resumed results differ from reference:\nresumed:\n%s\nreference:\n%s", rows, ref)
	}

	// No double evaluation of journaled work, fleet-wide: the restarted
	// node and the peer together ran exactly the complement.
	if got := evalRestarted.calls.Load() + evalB.calls.Load(); got != totalPoints-journaled {
		t.Fatalf("fleet evaluated %d points after restart, want %d (the complement)",
			got, totalPoints-journaled)
	}

	// The rejoined node serves its segment again: the peer can run the
	// same sweep with every fetch answered, none degraded.
	respB := postJSON(t, nodeB.srv.URL+"/v1/sweeps", sweep)
	stB := decodeStatus(t, respB)
	doneB := waitTerminal(t, nodeB.srv.URL, stB.ID)
	if doneB.State != string(StateCompleted) || doneB.Result == nil || doneB.Result.Partial {
		t.Fatalf("post-rejoin sweep on the peer: %+v", doneB)
	}
	if !bytes.Equal(fetchNDJSON(t, nodeB.srv.URL, "/v1/sweeps/"+stB.ID), ref) {
		t.Fatal("post-rejoin results differ from reference")
	}
	if errs := nodeB.peers.Status().Errors; errs != 0 {
		t.Fatalf("peer counted %d fetch errors against the rejoined node", errs)
	}

	release()
}

// TestChaosTenantBucketSurvivesRestart pins the PR 8 follow-on fix: a
// tenant's token-bucket levels are journaled, so a crash-restart cannot
// refill an exhausted bucket and hand the tenant a fresh burst.
func TestChaosTenantBucketSurvivesRestart(t *testing.T) {
	const sweep = `{"space":{"architectures":["baseline"],"bits":[4],"noise_steps":1}}`
	tenancy := TenantPolicy{Default: TenantLimits{
		// Refill is negligible on test timescales: the burst is the
		// whole budget.
		SubmitRate:  0.0001,
		SubmitBurst: 2,
	}}

	dirA := t.TempDir()
	walA, _, err := wal.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	srvA, mgrA := newDurableServer(t, walA, &slowEval{}, ManagerConfig{Tenancy: tenancy})

	// Spend the whole burst, then confirm the bucket is empty.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, srvA.URL+"/v1/sweeps", sweep)
		st := decodeStatus(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d rejected: %d", i+1, resp.StatusCode)
		}
		waitTerminal(t, srvA.URL, st.ID)
	}
	if _, err := mgrA.Submit(context.Background(), SweepRequest{}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third submission before restart: %v, want ErrRateLimited", err)
	}

	// SIGKILL disk image, restart, recover.
	snapshot, err := os.ReadFile(filepath.Join(dirA, wal.FileName))
	if err != nil {
		t.Fatal(err)
	}
	dirB := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirB, wal.FileName), snapshot, 0o644); err != nil {
		t.Fatal(err)
	}
	walB, recs, err := wal.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	srvB, mgrB := newDurableServer(t, walB, &slowEval{}, ManagerConfig{Tenancy: tenancy})
	if err := mgrB.Recover(recs); err != nil {
		t.Fatal(err)
	}

	// The exhausted bucket survived the restart: still rate-limited.
	if _, err := mgrB.Submit(context.Background(), SweepRequest{}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("submission after restart: %v, want ErrRateLimited (bucket state lost)", err)
	}
	resp := postJSON(t, srvB.URL+"/v1/sweeps", sweep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP submission after restart: %d, want 429", resp.StatusCode)
	}

	// Control: an unrelated fresh deployment (no journal) does get its
	// burst — the limit above came from the restored levels, not the
	// policy alone.
	srvC, _ := newDurableServer(t, nil, &slowEval{}, ManagerConfig{Tenancy: tenancy})
	resp = postJSON(t, srvC.URL+"/v1/sweeps", sweep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh deployment first submission: %d, want 202", resp.StatusCode)
	}
}
