package serve

// Search jobs: the asynchronous POST /v1/search pipeline. A search job
// shares everything structural with a sweep job — tenant admission and
// weighted-fair dispatch, the event buffer and SSE replay, TTL
// eviction, cancellation, drain —
// but runs the internal/search driver instead of an exhaustive sweep:
// a budget-bounded propose/observe loop that streams "front" events as
// the Pareto front grows and finishes with a budget-accounted outcome.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/fault"
	"efficsense/internal/obs"
	"efficsense/internal/report"
	"efficsense/internal/search"
)

// searchEventHeaders are the keys of "front" event payloads: the budget
// window, the fidelity rung the round ran at, and the front's size and
// hypervolume after it.
var searchEventHeaders = []string{
	"evaluations", "budget", "rung", "rung_name", "front_size", "hypervolume", "improved",
}

// SubmitSearch validates a goal-directed search request, admits it
// through the tenant's shaping pipeline and enqueues it for
// weighted-fair dispatch. Like Submit it never blocks: a submission the
// tenant may not queue is rejected with an honest Retry-After, and the
// job outlives the submitting request's context.
func (m *Manager) SubmitSearch(ctx context.Context, req SearchRequest) (*Job, error) {
	opts := req.Options.apply(m.cfg.Defaults)
	if _, err := resolveScenario(&opts); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	spec, err := req.spec()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	space, err := req.Space.space(opts)
	if err != nil {
		return nil, fmt.Errorf("%w: space: %v", ErrBadRequest, err)
	}
	size := space.Size()
	if size > m.cfg.MaxSweepPoints {
		return nil, fmt.Errorf("%w: space enumerates %d points, limit %d",
			ErrBadRequest, size, m.cfg.MaxSweepPoints)
	}
	if req.ProbeRecords < 0 {
		return nil, fmt.Errorf("%w: probe_records must be non-negative, got %d",
			ErrBadRequest, req.ProbeRecords)
	}
	spec.Seed = req.Seed
	spec.MaxEvaluations = req.MaxEvaluations
	if spec.MaxEvaluations <= 0 {
		// The search's reason to exist: a tenth of the exhaustive count.
		spec.MaxEvaluations = min(max(size/10, 1), m.cfg.MaxSearchEvaluations)
	}
	if spec.MaxEvaluations > m.cfg.MaxSearchEvaluations {
		return nil, fmt.Errorf("%w: max_evaluations %d exceeds the limit %d",
			ErrBadRequest, spec.MaxEvaluations, m.cfg.MaxSearchEvaluations)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	tenant := TenantOf(ctx)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	ts := m.tenantLocked(tenant)
	if err := m.admitJobLocked(ts, time.Now()); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.seq++
	job := m.newJob(opts, space, nil)
	job.kind = jobKindSearch
	job.ID = m.jobID("search")
	job.requestID = obs.RequestID(ctx)
	job.tenant = tenant
	job.spec = spec
	job.total = spec.MaxEvaluations
	if req.ProbeRecords > 0 && req.ProbeRecords != opts.Records {
		probe := opts
		probe.Records = req.ProbeRecords
		job.probeOpts = &probe
	}
	m.jobs[job.ID] = job
	m.searchSubmitted.Add(1)
	ts.submitted++
	m.wg.Add(1)
	m.journalJob(job, nil, &req)
	m.logJob(job, "search accepted",
		slog.String("query", spec.Query()),
		slog.Int("budget", spec.MaxEvaluations),
		slog.Int("space", size),
		slog.String("tenant", tenant))
	m.enqueueLocked(ts, job)
	m.mu.Unlock()
	return job, nil
}

// runSearch owns a search job goroutine end to end: resolve the fidelity
// engines, drive the search, distil the outcome. Like run, a panic
// anywhere degrades this one job to failed, never the daemon.
func (m *Manager) runSearch(job *Job) {
	defer m.wg.Done()
	defer m.release(job)
	defer func() {
		if r := recover(); r != nil {
			if !job.State().Terminal() {
				m.finishSearch(job, search.Outcome{Budget: job.spec.MaxEvaluations},
					fmt.Errorf("serve: job goroutine panicked: %v", r))
			}
		}
	}()

	fids := make([]search.Fidelity, 0, 2)
	if job.probeOpts != nil {
		probe, err := m.cfg.Engines(*job.probeOpts)
		if err != nil {
			m.finishSearch(job, search.Outcome{Budget: job.spec.MaxEvaluations},
				fmt.Errorf("probe engine: %w", err))
			return
		}
		m.registerEngine(probe)
		fids = append(fids, search.Fidelity{Name: "probe", Eval: searchEvaluator(probe)})
	}
	engine, err := m.cfg.Engines(job.opts)
	if err != nil {
		m.finishSearch(job, search.Outcome{Budget: job.spec.MaxEvaluations},
			fmt.Errorf("engine: %w", err))
		return
	}
	if err := fault.Fire(fault.PointJob); err != nil {
		m.finishSearch(job, search.Outcome{Budget: job.spec.MaxEvaluations},
			fmt.Errorf("job: %w", err))
		return
	}
	m.registerEngine(engine)
	job.mu.Lock()
	job.engine = engine
	job.mu.Unlock()
	fids = append(fids, search.Fidelity{Name: "full", Eval: searchEvaluator(engine)})
	if job.ctx.Err() != nil { // cancelled while the engines were building
		m.finishSearch(job, search.Outcome{Budget: job.spec.MaxEvaluations}, job.ctx.Err())
		return
	}
	job.setState(StateRunning)
	m.logJob(job, "search started",
		slog.String("query", job.spec.Query()),
		slog.Int("budget", job.spec.MaxEvaluations))

	out, err := search.Run(job.ctx, search.Config{
		Space:      job.space,
		Spec:       job.spec,
		Fidelities: fids,
		OnProgress: func(p search.Progress) { m.searchProgress(job, p) },
	})
	m.finishSearch(job, out, err)
}

// searchEvaluator adapts the serving Engine surface to the search
// driver's batch contract. Engines that batch natively (*dse.Sweep)
// are used directly; others are wrapped so a run-level failure degrades
// into per-point error rows — never a short slice.
func searchEvaluator(e Engine) search.Evaluator {
	if ev, ok := e.(search.Evaluator); ok {
		return ev
	}
	return engineEvaluator{e}
}

type engineEvaluator struct{ e Engine }

func (a engineEvaluator) EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result {
	out := make([]core.Result, len(pts))
	done := make([]bool, len(pts))
	rs, err := a.e.RunWithHook(ctx, pts, func(ev dse.Event) {
		if ev.Index >= 0 && ev.Index < len(out) {
			out[ev.Index] = ev.Result
			done[ev.Index] = true
		}
	})
	if err == nil && len(rs) == len(pts) {
		return rs
	}
	if err == nil {
		err = errors.New("serve: engine returned a short result slice")
	}
	for i := range out {
		if !done[i] {
			out[i] = core.Result{Point: pts[i], Err: err}
		}
	}
	return out
}

// searchProgress is the driver's per-round hook: it serialises one
// "front" SSE event, moves the job's progress window (evaluations spent
// against budget) and refreshes the manager's live gauges. Called
// serially from the driver goroutine.
func (m *Manager) searchProgress(j *Job, p search.Progress) {
	m.searchFrontSize.Store(int64(p.FrontSize))
	m.searchBudget.Store(int64(p.Budget - p.Evaluations))
	data, err := report.NDJSONRow(searchEventHeaders, []interface{}{
		p.Evaluations, p.Budget, p.Rung, p.RungName, p.FrontSize, p.Hypervolume, p.Improved,
	})
	if err != nil {
		data = []byte(`{}`)
	}
	j.mu.Lock()
	j.done, j.total = p.Evaluations, p.Budget
	j.appendEventLocked("front", data)
	j.mu.Unlock()
}

// finishSearch is finish's search-job counterpart: classify the end
// state, account the budget exactly (evaluations + remaining == budget,
// on the outcome, the gauges and the terminal event alike) and schedule
// eviction. A run that degraded rows or ran out of budget still lands
// in StateCompleted with partial: true — the front is then a sound
// lower bound, the same degradation contract sweeps honour.
func (m *Manager) finishSearch(job *Job, out search.Outcome, err error) {
	state, errMsg, elapsed := m.finishSearchLocked(job, out, err)
	m.searchEvaluations.Add(int64(out.Evaluations))
	m.searchFrontSize.Store(int64(len(out.Front)))
	m.searchBudget.Store(int64(out.Budget - out.Evaluations))

	attrs := []slog.Attr{
		slog.String("state", string(state)),
		slog.Int("evaluations", out.Evaluations),
		slog.Int("budget", out.Budget),
		slog.Int("front", len(out.Front)),
		slog.Duration("elapsed", elapsed),
	}
	if out.Errors > 0 {
		attrs = append(attrs, slog.Int("degraded", out.Errors))
	}
	if errMsg != "" {
		attrs = append(attrs, slog.String("error", errMsg))
	}
	m.logJob(job, "search finished", attrs...)

	m.journalFinish(job)
	m.scheduleEvict(job)
}

func (m *Manager) finishSearchLocked(job *Job, out search.Outcome, err error) (state JobState, errMsg string, elapsed time.Duration) {
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	job.results = out.Front // /results streams the front as NDJSON rows
	switch {
	case err == nil:
		job.state = StateCompleted
		m.searchCompleted.Add(1)
	case job.cancelRequested && errors.Is(err, context.Canceled):
		job.state = StateCancelled
		m.searchCancelled.Add(1)
	default:
		job.state = StateFailed
		job.err = err
		m.searchFailed.Add(1)
	}
	job.done, job.total = out.Evaluations, out.Budget
	partial := out.Partial || job.state != StateCompleted
	job.searchOut = searchOutcomeOf(job.spec, out, partial)
	state = job.state
	if job.err != nil {
		errMsg = job.err.Error()
	}
	data, jerr := report.NDJSONRow(
		[]string{"state", "scenario", "evaluations", "budget", "budget_remaining",
			"front_size", "partial", "errors", "error"},
		[]interface{}{string(state), job.opts.Scenario, out.Evaluations, out.Budget,
			out.Budget - out.Evaluations, len(out.Front), partial, out.Errors, errMsg})
	if jerr != nil {
		data = []byte(`{}`)
	}
	job.appendEventLocked("done", data)
	return state, errMsg, job.finished.Sub(job.created)
}
