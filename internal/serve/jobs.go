package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/cluster"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/fault"
	"efficsense/internal/obs"
	"efficsense/internal/report"
	"efficsense/internal/scenario"
	"efficsense/internal/search"
	"efficsense/internal/wal"
)

// JobState is the lifecycle of an asynchronous sweep job.
type JobState string

const (
	// StatePending: submitted, slot held, evaluator not yet ready.
	StatePending JobState = "pending"
	// StateRunning: the engine is evaluating points.
	StateRunning JobState = "running"
	// StateCompleted: every point evaluated; the outcome is final.
	StateCompleted JobState = "completed"
	// StateCancelled: stopped by DELETE; the outcome holds the partial
	// results completed before cancellation.
	StateCancelled JobState = "cancelled"
	// StateFailed: the suite could not be built or the run errored.
	StateFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateCompleted || s == StateCancelled || s == StateFailed
}

// resolveScenario looks the option set's scenario up and canonicalises
// the name in place (empty → the default's registered name), so
// engine-key derivation and status rendering always see the same
// identity regardless of how the request spelled it.
func resolveScenario(opts *experiments.Options) (*scenario.Scenario, error) {
	scn, err := scenario.Lookup(opts.Scenario)
	if err != nil {
		return nil, err
	}
	opts.Scenario = scn.Name
	return scn, nil
}

// Scenario resolves the workload a request's options select, with the
// server defaults applied — the handler-side counterpart of the
// admission paths, used to scope point parsing before evaluation.
func (m *Manager) Scenario(spec *OptionsSpec) (*scenario.Scenario, error) {
	opts := spec.apply(m.cfg.Defaults)
	return scenario.Lookup(opts.Scenario)
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrSaturated: every job slot is busy (429 + Retry-After).
	ErrSaturated = errors.New("serve: all sweep slots are busy")
	// ErrShuttingDown: the manager is draining (503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrNotFound: unknown job ID (404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrBadRequest wraps spec validation failures (400).
	ErrBadRequest = errors.New("serve: invalid request")
)

// ManagerConfig sizes a job Manager. The zero value of every field picks
// a sensible default except Engines, which is required.
type ManagerConfig struct {
	// Defaults are the base suite options; request options override them
	// field by field.
	Defaults experiments.Options
	// Engines resolves option sets to sweep engines
	// ((*SuiteEngines).Engine in production).
	Engines EngineFunc
	// Cache, if set, is reported under /metrics (pass the SuiteEngines
	// shared cache). Both the bounded *cache.LRU (occupancy, capacity,
	// evictions, singleflight shares) and the unbounded *dse.MemoryCache
	// (occupancy, hit/miss) are understood.
	Cache dse.Cache
	// MaxConcurrentJobs bounds simultaneously running sweeps (default 2).
	// Submissions beyond it are rejected with ErrSaturated — the caller
	// retries after Retry-After — rather than queued, so a burst cannot
	// build unbounded state.
	MaxConcurrentJobs int
	// JobTTL is how long finished jobs stay queryable (default 15m).
	JobTTL time.Duration
	// MaxSweepPoints rejects spaces bigger than this (default 100000).
	MaxSweepPoints int
	// MaxSearchEvaluations caps a search job's evaluation budget
	// (default 20000): requests asking for more are rejected, and a
	// request without a budget defaults to a tenth of its space,
	// clamped to this.
	MaxSearchEvaluations int
	// EvalTimeout caps the synchronous /v1/evaluate deadline (default 2m).
	EvalTimeout time.Duration
	// Log receives structured job lifecycle records (accepted, started,
	// finished, cancel requested), each carrying job_id and the
	// submitting request's request_id so a slow sweep correlates back to
	// the call that created it. nil disables lifecycle logging.
	Log *slog.Logger
	// Tenancy shapes traffic per tenant (API key): submission and
	// evaluation token buckets, concurrency and queue quotas, and
	// weighted-fair dispatch of queued jobs. The zero value reproduces
	// the pre-tenancy contract: one default tenant, no rate limits, no
	// queueing.
	Tenancy TenantPolicy
	// Cluster, when set, puts the manager in fleet mode: job IDs embed
	// this node's name so any member can redirect a request to the job's
	// accepting node (sticky routing), /v1/cluster and the
	// efficsense_cluster_* series go live, and the peer-protocol
	// endpoint serves the keyspace segment this node owns. Pass the same
	// client given to SuiteEngines.UseCluster.
	Cluster *cluster.Peers
	// WAL, when set, makes jobs durable: specs and completed result rows
	// are journaled (fsync on job-state transitions), Recover replays
	// terminal jobs as history and resumes in-flight sweeps from their
	// last journaled row, and Shutdown compacts the journal. The Manager
	// owns the log once passed: Shutdown closes it.
	WAL *wal.Log
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 100000
	}
	if c.MaxSearchEvaluations <= 0 {
		c.MaxSearchEvaluations = 20000
	}
	if c.EvalTimeout <= 0 {
		c.EvalTimeout = 2 * time.Minute
	}
	return c
}

// Manager owns the server's sweep jobs: it admits them through
// per-tenant token buckets and quotas, dispatches queued work through a
// weighted-fair scheduler into a bounded pool of job slots, runs each
// job against the shared engine layer, buffers per-point events for SSE
// replay, journals specs and rows to the WAL (when configured), evicts
// finished jobs after a TTL and drains cleanly on shutdown.
type Manager struct {
	cfg ManagerConfig

	mu      sync.Mutex
	jobs    map[string]*Job
	engines map[Engine]struct{}
	seq     int64
	closed  bool
	wg      sync.WaitGroup
	// Traffic shaping: per-tenant state (buckets, quotas, queues), the
	// count of occupied job slots, the stride scheduler's virtual time,
	// and the TTL-eviction timers (stopped on Shutdown so a drained
	// manager leaks no timers into embedders or tests).
	tenants     map[string]*tenantState
	runningJobs int
	vtime       float64
	timers      map[string]*time.Timer
	// Durability counters (efficsense_wal_* series): jobs replayed as
	// history, sweeps resumed mid-flight, rows restored from the journal
	// instead of re-evaluated.
	walReplayedJobs atomic.Int64
	walResumedJobs  atomic.Int64
	walReplayedRows atomic.Int64

	submitted, rejected  atomic.Int64
	completed, cancelled atomic.Int64
	failed, evaluations  atomic.Int64

	// Search-job accounting: lifecycle counters, the total evaluation
	// spend of every search driver, and two live gauges tracking the
	// most recent search round (front size, unspent budget).
	searchSubmitted, searchCompleted atomic.Int64
	searchCancelled, searchFailed    atomic.Int64
	searchEvaluations                atomic.Int64
	searchFrontSize, searchBudget    atomic.Int64
}

// NewManager builds a Manager; cfg.Engines must be set.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Engines == nil {
		return nil, errors.New("serve: ManagerConfig.Engines is required")
	}
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		engines: make(map[Engine]struct{}),
		tenants: make(map[string]*tenantState),
		timers:  make(map[string]*time.Timer),
	}, nil
}

// JobEvent is one buffered job event, ready for SSE framing: ID is the
// per-job monotonic sequence number (the SSE id, so Last-Event-ID
// resumption replays exactly the missed suffix), Name the SSE event name
// ("state", "point" or "done") and Data a single-line JSON payload.
type JobEvent struct {
	ID   int
	Name string
	Data []byte
}

// pointEventHeaders are the keys of "point" event payloads: the progress
// window plus the ResultHeaders columns the CSV/NDJSON emitters share.
var pointEventHeaders = func() []string {
	h := []string{"done", "total", "cached", "duration_ms"}
	h = append(h, experiments.ResultHeaders...)
	return append(h, "err")
}()

func pointEventRow(ev dse.Event) []interface{} {
	row := []interface{}{ev.Done, ev.Total, ev.Cached,
		float64(ev.Duration) / float64(time.Millisecond)}
	row = append(row, experiments.ResultRow(ev.Result)...)
	errStr := ""
	if ev.Result.Err != nil {
		errStr = ev.Result.Err.Error()
	}
	return append(row, errStr)
}

// Job kinds: the discriminator picks the URL prefix, the run loop and
// the outcome shape. Immutable after submission.
const (
	jobKindSweep  = "sweep"
	jobKindSearch = "search"
)

// Job is one asynchronous job: an exhaustive sweep or a goal-directed
// search, by kind.
type Job struct {
	ID string
	// requestID is the X-Request-ID of the submitting request, immutable
	// after Submit: status responses and every lifecycle log line carry
	// it, so "which call started this sweep" is always answerable.
	requestID string
	kind      string
	// tenant is the submitting tenant's identity (API key, or
	// DefaultTenant), immutable after Submit: quota release, fairness
	// accounting and the status response all key on it.
	tenant string
	// replayed holds WAL-journaled results by original point index for a
	// resumed sweep: those points are never re-evaluated, the engine only
	// runs the complement. Immutable after Recover; nil for fresh jobs.
	replayed map[int]core.Result
	// walJob is the journaled job record (nil when durability is off),
	// re-emitted verbatim by the clean-shutdown compaction. Immutable
	// after Submit/Recover.
	walJob *walJobRecord

	opts   experiments.Options
	space  dse.Space
	points []core.DesignPoint
	// spec is the parsed query of a search job; probeOpts, when set, are
	// the reduced-fidelity engine options of its probe rung (nil = every
	// evaluation runs at full fidelity). Immutable after SubmitSearch.
	spec      search.Spec
	probeOpts *experiments.Options
	ctx       context.Context
	cancel    context.CancelFunc

	mu              sync.Mutex
	cond            *sync.Cond
	state           JobState
	cancelRequested bool
	created         time.Time
	started         time.Time
	finished        time.Time
	done, total     int
	events          []JobEvent
	results         []core.Result
	outcome         *SweepOutcome
	searchOut       *SearchOutcome
	err             error
	engine          Engine
}

// jobID mints the next job identifier under m.mu. Single-node IDs stay
// "<kind>-<seq>", bit-identical to the pre-fleet contract; in fleet
// mode the accepting node's name rides in the middle
// ("<kind>-<node>-<seq>") so every member can route a request for the
// job back to the node running it. Recovery's bumpSeq parses the suffix
// after the last '-', which both shapes satisfy.
func (m *Manager) jobID(kind string) string {
	if m.cfg.Cluster != nil {
		return fmt.Sprintf("%s-%s-%d", kind, m.cfg.Cluster.Self().Name, m.seq)
	}
	return fmt.Sprintf("%s-%d", kind, m.seq)
}

func (m *Manager) newJob(opts experiments.Options, space dse.Space, points []core.DesignPoint) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		kind: jobKindSweep,
		opts: opts, space: space, points: points,
		ctx: ctx, cancel: cancel,
		state: StatePending, created: time.Now(), total: len(points),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// logJob emits one structured lifecycle record for a job, always
// carrying job_id and the submitting request's request_id. Safe without
// the job lock: both fields are immutable after Submit.
func (m *Manager) logJob(j *Job, msg string, attrs ...slog.Attr) {
	if m.cfg.Log == nil {
		return
	}
	base := append([]slog.Attr{
		slog.String("job_id", j.ID),
		slog.String("request_id", j.requestID),
	}, attrs...)
	m.cfg.Log.LogAttrs(context.Background(), slog.LevelInfo, msg, base...)
}

// Submit validates the request, admits it through the tenant's shaping
// pipeline (token bucket, concurrency and queue quotas) and enqueues the
// sweep for weighted-fair dispatch. It never blocks: a submission the
// tenant may not queue is rejected immediately with an honest
// Retry-After. ctx is the submitting request's context — its request ID
// and tenant are recorded on the job; the sweep itself outlives the
// request and is NOT cancelled when ctx ends.
func (m *Manager) Submit(ctx context.Context, req SweepRequest) (*Job, error) {
	opts := req.Options.apply(m.cfg.Defaults)
	if _, err := resolveScenario(&opts); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	space, err := req.Space.space(opts)
	if err != nil {
		return nil, fmt.Errorf("%w: space: %v", ErrBadRequest, err)
	}
	if n := space.Size(); n > m.cfg.MaxSweepPoints {
		return nil, fmt.Errorf("%w: space enumerates %d points, limit %d",
			ErrBadRequest, n, m.cfg.MaxSweepPoints)
	}
	points := space.Points()
	tenant := TenantOf(ctx)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	ts := m.tenantLocked(tenant)
	if err := m.admitJobLocked(ts, time.Now()); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.seq++
	job := m.newJob(opts, space, points)
	job.ID = m.jobID("sweep")
	job.requestID = obs.RequestID(ctx)
	job.tenant = tenant
	m.jobs[job.ID] = job
	m.submitted.Add(1)
	ts.submitted++
	m.wg.Add(1)
	m.journalJob(job, &req, nil)
	m.logJob(job, "sweep accepted",
		slog.Int("points", len(points)), slog.String("tenant", tenant))
	m.enqueueLocked(ts, job)
	m.mu.Unlock()
	return job, nil
}

// runJob is the scheduler's dispatch target: one goroutine per job,
// branching on the job kind.
func (m *Manager) runJob(job *Job) {
	if job.kind == jobKindSearch {
		m.runSearch(job)
		return
	}
	m.run(job)
}

// run owns a job goroutine end to end: resolve the engine (which may
// train a detector on a cold option set), sweep, distil the outcome.
func (m *Manager) run(job *Job) {
	defer m.wg.Done()
	defer m.release(job)
	// A panic anywhere in the job goroutine (engine resolution, the
	// serve/job failpoint, a bug in outcome distillation) must degrade
	// this one job to failed, never take the daemon down. finish is
	// idempotence-guarded by the terminal check: a panic after a clean
	// finish is swallowed rather than double-finishing.
	defer func() {
		if r := recover(); r != nil {
			if !job.State().Terminal() {
				m.finish(job, nil, fmt.Errorf("serve: job goroutine panicked: %v", r))
			}
		}
	}()

	engine, err := m.cfg.Engines(job.opts)
	if err != nil {
		m.finish(job, nil, fmt.Errorf("engine: %w", err))
		return
	}
	if err := fault.Fire(fault.PointJob); err != nil {
		m.finish(job, nil, fmt.Errorf("job: %w", err))
		return
	}
	m.registerEngine(engine)
	job.mu.Lock()
	job.engine = engine
	job.mu.Unlock()
	if job.ctx.Err() != nil { // cancelled while the suite was building
		m.finish(job, nil, job.ctx.Err())
		return
	}
	job.setState(StateRunning)
	m.logJob(job, "sweep started", slog.Int("points", len(job.points)))

	// A resumed sweep evaluates only the complement of its journaled
	// rows: remap maps complement indices back to original point indices
	// so events, journaled rows and the merged result cloud all speak the
	// original space. For fresh jobs remap is nil and the hook is a thin
	// journaling wrapper around onPoint.
	pts := job.points
	var remap []int
	base := len(job.replayed)
	if base > 0 {
		remap = make([]int, 0, len(job.points)-base)
		pts = make([]core.DesignPoint, 0, len(job.points)-base)
		for i, p := range job.points {
			if _, ok := job.replayed[i]; !ok {
				remap = append(remap, i)
				pts = append(pts, p)
			}
		}
		m.logJob(job, "sweep resumed",
			slog.Int("replayed_rows", base), slog.Int("remaining", len(pts)))
	}
	// got captures results by original index; the hook runs under the
	// engine's completion lock, so no extra synchronisation is needed.
	got := make(map[int]core.Result, len(pts))
	hook := func(ev dse.Event) {
		orig := ev.Index
		if remap != nil && ev.Index >= 0 && ev.Index < len(remap) {
			orig = remap[ev.Index]
		}
		got[orig] = ev.Result
		m.journalRow(job, orig, ev.Result)
		ev.Index = orig
		ev.Done += base
		ev.Total = job.total
		job.onPoint(ev)
	}

	rs, err := engine.RunWithHook(job.ctx, pts, hook)
	if base > 0 {
		rs = mergeResults(job, got)
	}
	m.finish(job, rs, err)
}

// mergeResults assembles a resumed job's result cloud — journaled rows
// plus freshly evaluated ones — in original point order, skipping
// indices that never completed (cancellation mid-resume).
func mergeResults(job *Job, got map[int]core.Result) []core.Result {
	out := make([]core.Result, 0, len(job.replayed)+len(got))
	for i := 0; i < job.total; i++ {
		if r, ok := job.replayed[i]; ok {
			out = append(out, r)
		} else if r, ok := got[i]; ok {
			out = append(out, r)
		}
	}
	return out
}

// onPoint is the engine's per-run hook: it runs under the engine's
// completion lock (serial, strictly increasing Done), so it only
// serialises the event and wakes the streams.
func (j *Job) onPoint(ev dse.Event) {
	data, err := report.NDJSONRow(pointEventHeaders, pointEventRow(ev))
	if err != nil {
		data = []byte(`{}`)
	}
	j.mu.Lock()
	j.done, j.total = ev.Done, ev.Total
	j.appendEventLocked("point", data)
	j.mu.Unlock()
}

func (j *Job) appendEventLocked(name string, data []byte) {
	j.events = append(j.events, JobEvent{ID: len(j.events) + 1, Name: name, Data: data})
	j.cond.Broadcast()
}

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	if s == StateRunning {
		j.started = time.Now()
	}
	j.appendEventLocked("state", []byte(fmt.Sprintf(`{"state":%q}`, s)))
}

// finish classifies the run's end, computes the outcome over whatever
// results exist (full, partial or none) and schedules eviction. A job
// whose sweep completed but degraded points along the way (evaluator
// errors, recovered panics, exhausted retries) still lands in
// StateCompleted — graceful degradation, never an aborted job — but its
// outcome and "done" SSE event carry partial: true plus the degraded
// count, so a client knows the cloud is not the full schedule. The
// terminal "done" event also carries the engine's eval-duration
// quantiles so a streaming client gets the latency story without a
// second round trip.
func (m *Manager) finish(job *Job, rs []core.Result, err error) {
	errs := 0
	for _, r := range rs {
		if r.Err != nil {
			errs++
		}
	}
	state, errMsg, total, elapsed := m.finishLocked(job, rs, err, errs)

	attrs := []slog.Attr{
		slog.String("state", string(state)),
		slog.Int("points", len(rs)),
		slog.Int("total", total),
		slog.Duration("elapsed", elapsed),
	}
	if errs > 0 {
		attrs = append(attrs, slog.Int("degraded", errs))
	}
	if errMsg != "" {
		attrs = append(attrs, slog.String("error", errMsg))
	}
	m.logJob(job, "sweep finished", attrs...)

	m.journalFinish(job)
	m.scheduleEvict(job)
}

// scheduleEvict arms (and tracks) the job's TTL-eviction timer. A
// draining manager schedules none: Shutdown stops every tracked timer,
// and a timer armed after that would leak into the embedder.
func (m *Manager) scheduleEvict(job *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.timers[job.ID] = time.AfterFunc(m.cfg.JobTTL, func() { m.evict(job.ID) })
}

// finishLocked is finish's under-lock half; the deferred unlock keeps
// the job lock released even if outcome distillation panics (the job
// goroutine's recover then degrades the job instead of deadlocking).
func (m *Manager) finishLocked(job *Job, rs []core.Result, err error, errs int) (state JobState, errMsg string, total int, elapsed time.Duration) {
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	job.results = rs
	switch {
	case err == nil:
		job.state = StateCompleted
		m.completed.Add(1)
	case job.cancelRequested && errors.Is(err, context.Canceled):
		job.state = StateCancelled
		m.cancelled.Add(1)
	default:
		job.state = StateFailed
		job.err = err
		m.failed.Add(1)
	}
	partial := job.state != StateCompleted || errs > 0
	if len(rs) > 0 || job.state == StateCompleted {
		job.outcome = outcomeOf(rs, job.total, partial, job.opts.MinAccuracy)
	}
	state = job.state
	if job.err != nil {
		errMsg = job.err.Error()
	}
	var p50, p90, p99 float64
	if job.engine != nil { // nil when engine resolution itself failed
		snap := job.engine.Metrics()
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		p50, p90, p99 = ms(snap.P50Eval), ms(snap.P90Eval), ms(snap.P99Eval)
	}
	data, jerr := report.NDJSONRow(
		[]string{"state", "scenario", "done", "total", "partial", "errors", "error",
			"eval_p50_ms", "eval_p90_ms", "eval_p99_ms"},
		[]interface{}{string(state), job.opts.Scenario, len(rs), job.total, partial, errs, errMsg, p50, p90, p99})
	if jerr != nil {
		data = []byte(`{}`)
	}
	job.appendEventLocked("done", data)
	return state, errMsg, job.total, job.finished.Sub(job.created)
}

// evict forgets a finished job (jobs cannot leave a terminal state, so
// checking once is enough) and drops its TTL timer.
func (m *Manager) evict(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.timers[id]; ok {
		t.Stop()
		delete(m.timers, id)
	}
	if j, ok := m.jobs[id]; ok && j.State().Terminal() {
		delete(m.jobs, id)
	}
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j, nil
	}
	return nil, ErrNotFound
}

// Jobs snapshots every tracked job, newest first not guaranteed.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	return out
}

// Cancel requests cancellation: the engine stops dispatching, in-flight
// points finish, and the job lands in StateCancelled with its partial
// results. Cancelling a finished job is a no-op. ctx identifies the
// cancelling request in the lifecycle log (which may differ from the
// submitting request's ID on the job itself).
func (m *Manager) Cancel(ctx context.Context, id string) (*Job, error) {
	job, err := m.Job(id)
	if err != nil {
		return nil, err
	}
	job.requestCancel()
	m.logJob(job, "sweep cancel requested",
		slog.String("cancelled_by_request_id", obs.RequestID(ctx)))
	return job, nil
}

// requestCancel flags a deliberate cancellation (so the job finishes in
// StateCancelled, not StateFailed) and fires the context.
func (j *Job) requestCancel() {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.cancelRequested = true
	}
	j.mu.Unlock()
	j.cancel()
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Results returns the job's (possibly partial) result cloud.
func (j *Job) Results() []core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results
}

// Status renders the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	base := "/v1/sweeps/"
	if j.kind == jobKindSearch {
		base = "/v1/search/"
	}
	st := JobStatus{
		ID:              j.ID,
		Kind:            j.kind,
		Scenario:        j.opts.Scenario,
		State:           string(j.state),
		Tenant:          j.tenant,
		RequestID:       j.requestID,
		CancelRequested: j.cancelRequested && !j.state.Terminal(),
		CreatedAt:       j.created,
		Progress:        ProgressJSON{Done: j.done, Total: j.total},
		Error:           "",
		Result:          j.outcome,
		Search:          j.searchOut,
		StatusURL:       base + j.ID,
		EventsURL:       base + j.ID + "/events",
		ResultsURL:      base + j.ID + "/results",
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.engine != nil {
		st.Metrics = engineMetricsJSON(j.engine.Metrics())
	}
	return st
}

// Summary renders the job's listing row (GET /v1/sweeps).
func (j *Job) Summary() JobSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	base := "/v1/sweeps/"
	if j.kind == jobKindSearch {
		base = "/v1/search/"
	}
	return JobSummary{
		ID:        j.ID,
		Kind:      j.kind,
		Scenario:  j.opts.Scenario,
		State:     string(j.state),
		Tenant:    j.tenant,
		RequestID: j.requestID,
		CreatedAt: j.created,
		Progress:  ProgressJSON{Done: j.done, Total: j.total},
		StatusURL: base + j.ID,
	}
}

// WaitEvents blocks until events after the given sequence number exist,
// then returns them. more is false when the stream is over: the job is
// terminal and fully replayed, or ctx ended.
func (j *Job) WaitEvents(ctx context.Context, after int) (evs []JobEvent, more bool) {
	stop := context.AfterFunc(ctx, func() {
		// Broadcast under the lock so the wakeup cannot slip between a
		// waiter's ctx check and its cond.Wait (the classic lost wakeup).
		j.mu.Lock()
		defer j.mu.Unlock()
		j.cond.Broadcast()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil, false
		}
		if after < len(j.events) {
			evs = make([]JobEvent, len(j.events)-after)
			copy(evs, j.events[after:])
			return evs, true
		}
		if j.state.Terminal() {
			return nil, false
		}
		j.cond.Wait()
	}
}

// estimateRemaining guesses the job's remaining wall-clock time from its
// own progress window.
func (j *Job) estimateRemaining() (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.done == 0 || j.started.IsZero() {
		return 0, false
	}
	elapsed := time.Since(j.started)
	remaining := float64(elapsed) / float64(j.done) * float64(j.total-j.done)
	return time.Duration(remaining), true
}

// RetryAfter estimates how soon a rejected submission is worth retrying:
// the smallest remaining-time estimate over the running jobs, clamped to
// [1s, 5m]; 5s when nothing is measurable yet.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retryAfterLocked()
}

// retryAfterLocked is RetryAfter under an already-held manager lock (the
// admission pipeline computes honest Retry-After values there). Job
// locks nest inside the manager lock, so estimateRemaining is safe here.
func (m *Manager) retryAfterLocked() time.Duration {
	best := time.Duration(math.MaxInt64)
	for _, j := range m.jobs {
		if est, ok := j.estimateRemaining(); ok && est < best {
			best = est
		}
	}
	if best == time.Duration(math.MaxInt64) {
		return 5 * time.Second
	}
	return min(max(best, time.Second), 5*time.Minute)
}

// Evaluate scores one design point synchronously through the shared
// engine layer, honouring ctx and the configured deadline cap. The
// cached flag reports a memoisation hit. Single evaluations bypass the
// job slots: they are the interactive fast path, bounded by EvalTimeout
// rather than queueing.
func (m *Manager) Evaluate(ctx context.Context, spec *OptionsSpec, p core.DesignPoint, timeout time.Duration) (core.Result, bool, error) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return core.Result{}, false, ErrShuttingDown
	}
	if err := m.admitEval(ctx, 1); err != nil {
		return core.Result{}, false, err
	}
	m.evaluations.Add(1)
	opts := spec.apply(m.cfg.Defaults)
	if _, err := resolveScenario(&opts); err != nil {
		return core.Result{}, false, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	engine, err := m.cfg.Engines(opts)
	if err != nil {
		return core.Result{}, false, fmt.Errorf("engine: %w", err)
	}
	m.registerEngine(engine)
	if timeout <= 0 || timeout > m.cfg.EvalTimeout {
		timeout = m.cfg.EvalTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var cached bool
	rs, err := engine.RunWithHook(ctx, []core.DesignPoint{p}, func(ev dse.Event) {
		cached = ev.Cached
	})
	if err != nil {
		return core.Result{}, false, err
	}
	return rs[0], cached, nil
}

// EvaluateBatch scores a batch of design points synchronously through
// the shared engine layer, returning one result per point in input
// order plus a parallel cached-flags slice. Like the sweep path it
// degrades rather than fails: a point that errors (injected fault,
// evaluator panic, deadline expiry mid-batch) comes back as an error
// row with Result.Err set, never as a lost point, and the call itself
// only errors when no rows can be produced at all (draining, engine
// resolution failure, client disconnect).
func (m *Manager) EvaluateBatch(ctx context.Context, spec *OptionsSpec, pts []core.DesignPoint, timeout time.Duration) ([]core.Result, []bool, error) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, nil, ErrShuttingDown
	}
	if max := m.cfg.MaxSweepPoints; len(pts) > max {
		return nil, nil, fmt.Errorf("%w: batch of %d points exceeds the limit %d", ErrBadRequest, len(pts), max)
	}
	if err := m.admitEval(ctx, len(pts)); err != nil {
		return nil, nil, err
	}
	m.evaluations.Add(int64(len(pts)))
	opts := spec.apply(m.cfg.Defaults)
	if _, err := resolveScenario(&opts); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	engine, err := m.cfg.Engines(opts)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: %w", err)
	}
	m.registerEngine(engine)
	if timeout <= 0 || timeout > m.cfg.EvalTimeout {
		timeout = m.cfg.EvalTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	out := make([]core.Result, len(pts))
	cached := make([]bool, len(pts))
	completed := make([]bool, len(pts))
	rs, err := engine.RunWithHook(ctx, pts, func(ev dse.Event) {
		if ev.Index >= 0 && ev.Index < len(out) {
			out[ev.Index] = ev.Result
			cached[ev.Index] = ev.Cached
			completed[ev.Index] = true
		}
	})
	switch {
	case err == nil:
		return rs, cached, nil
	case errors.Is(err, context.DeadlineExceeded):
		// The deadline fired mid-batch: the points that finished keep
		// their results, the rest become error rows.
		for i := range out {
			if !completed[i] {
				out[i] = core.Result{Point: pts[i], Err: err}
			}
		}
		return out, cached, nil
	default:
		return nil, nil, err
	}
}

func (m *Manager) registerEngine(e Engine) {
	m.mu.Lock()
	m.engines[e] = struct{}{}
	m.mu.Unlock()
}

// Counters is the manager's point-in-time accounting for /metrics and
// /healthz.
type Counters struct {
	Submitted, Rejected  int64
	Completed, Cancelled int64
	Failed, Evaluations  int64
	Running, Tracked     int
	// Search-job accounting: lifecycle counters, the design points
	// dispatched by search drivers (any fidelity rung), and two gauges
	// tracking the most recent search round.
	SearchSubmitted, SearchCompleted int64
	SearchCancelled, SearchFailed    int64
	SearchEvaluations                int64
	SearchFrontSize                  int64
	SearchBudgetRemaining            int64
	EngineEvaluated                  int64
	EngineCacheHits                  int64
	EngineDeduped                    int64
	EnginePanics                     int64
	EngineRetries                    int64
	EngineMeanEval                   time.Duration
	// EngineBatches counts batched evaluator calls across every engine,
	// and EngineBatchPoints the cache-miss points they carried.
	EngineBatches     int64
	EngineBatchPoints int64
	// WAL accounting (zero when durability is off): startup replay
	// (terminal jobs restored as history, in-flight sweeps resumed, rows
	// restored instead of re-evaluated) plus the journal's own stats.
	WALReplayedJobs int64
	WALResumedJobs  int64
	WALReplayedRows int64
	WALAppends      int64
	WALFsyncs       int64
	WALDropped      int64
	WALSizeBytes    int64
	// EvalHist is the eval-duration histogram merged across every engine
	// the manager has resolved — the efficsense_eval_duration_seconds
	// exposition.
	EvalHist obs.Snapshot
	// BatchSizeHist (points per batched call) and BatchLatencyHist
	// (seconds per batched call) are the batch-dispatch histograms merged
	// across every engine — the efficsense_batch_size_points and
	// efficsense_batch_duration_seconds expositions.
	BatchSizeHist          obs.Snapshot
	BatchLatencyHist       obs.Snapshot
	CacheEntries           int
	CacheCapacity          int // 0 = unbounded
	CacheHits, CacheMisses int64
	CacheEvictions         int64
	CacheDeduped           int64
	CacheFlightPanics      int64
}

// Counters aggregates the manager's counters and every engine's metrics.
func (m *Manager) Counters() Counters {
	c := Counters{
		Submitted:             m.submitted.Load(),
		Rejected:              m.rejected.Load(),
		Completed:             m.completed.Load(),
		Cancelled:             m.cancelled.Load(),
		Failed:                m.failed.Load(),
		Evaluations:           m.evaluations.Load(),
		SearchSubmitted:       m.searchSubmitted.Load(),
		SearchCompleted:       m.searchCompleted.Load(),
		SearchCancelled:       m.searchCancelled.Load(),
		SearchFailed:          m.searchFailed.Load(),
		SearchEvaluations:     m.searchEvaluations.Load(),
		SearchFrontSize:       m.searchFrontSize.Load(),
		SearchBudgetRemaining: m.searchBudget.Load(),
		WALReplayedJobs:       m.walReplayedJobs.Load(),
		WALResumedJobs:        m.walResumedJobs.Load(),
		WALReplayedRows:       m.walReplayedRows.Load(),
	}
	if m.cfg.WAL != nil {
		st := m.cfg.WAL.Stats()
		c.WALAppends, c.WALFsyncs = st.Appends, st.Fsyncs
		c.WALDropped, c.WALSizeBytes = st.Dropped, st.SizeBytes
	}
	m.mu.Lock()
	c.Tracked = len(m.jobs)
	engines := make([]Engine, 0, len(m.engines))
	for e := range m.engines {
		engines = append(engines, e)
	}
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		if s := j.State(); s == StateRunning || s == StatePending {
			c.Running++
		}
	}
	var meanSum time.Duration
	var meanN int64
	for _, e := range engines {
		s := e.Metrics()
		c.EngineEvaluated += s.Evaluated
		c.EngineCacheHits += s.CacheHits
		c.EngineDeduped += s.Deduped
		c.EnginePanics += s.Panics
		c.EngineRetries += s.Retries
		c.EngineBatches += s.Batches
		c.EngineBatchPoints += s.BatchPoints
		c.EvalHist.Merge(s.EvalHist)
		c.BatchSizeHist.Merge(s.BatchSizeHist)
		c.BatchLatencyHist.Merge(s.BatchLatencyHist)
		if s.Evaluated > 0 {
			meanSum += time.Duration(int64(s.MeanEval) * s.Evaluated)
			meanN += s.Evaluated
		}
	}
	if meanN > 0 {
		c.EngineMeanEval = meanSum / time.Duration(meanN)
	}
	switch cc := m.cfg.Cache.(type) {
	case *cache.LRU:
		st := cc.Stats()
		c.CacheEntries, c.CacheCapacity = st.Entries, st.Capacity
		c.CacheHits, c.CacheMisses = st.Hits, st.Misses
		c.CacheEvictions, c.CacheDeduped = st.Evictions, st.FlightShared
		c.CacheFlightPanics = st.FlightPanics
	case *dse.MemoryCache:
		c.CacheEntries = cc.Len()
		c.CacheHits, c.CacheMisses = cc.Stats()
	}
	return c
}

// Draining reports whether Shutdown has begun (new work is rejected).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Shutdown drains the manager: new submissions and evaluations are
// rejected immediately, queued jobs still dispatch and drain, and
// in-flight jobs get until ctx expires to finish before being
// cancelled. It returns nil on a clean drain and ctx.Err() when jobs
// had to be cancelled; either way every job goroutine has exited by
// return, so the HTTP server can be shut down next (SSE streams of
// finished jobs close themselves). After the drain every TTL-eviction
// timer is stopped — a drained manager leaks no timers — and the WAL,
// if configured, is compacted to a snapshot of the surviving jobs and
// closed.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		for _, j := range m.Jobs() {
			j.requestCancel()
		}
		<-drained
		err = ctx.Err()
	}
	m.mu.Lock()
	for id, t := range m.timers {
		t.Stop()
		delete(m.timers, id)
	}
	m.mu.Unlock()
	if m.cfg.WAL != nil {
		if cerr := m.compactWAL(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := m.cfg.WAL.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
