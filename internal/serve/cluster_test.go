package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/cluster"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/wal"
)

// fleetNode is one efficsensed of a test fleet: its own engine, cache,
// peer client and HTTP listener, all wired exactly as cmd/efficsensed
// wires them in fleet mode.
type fleetNode struct {
	name  string
	srv   *httptest.Server
	mgr   *Manager
	eval  dse.PointEvaluator
	peers *cluster.Peers
	store *cache.LRU
}

func (n *fleetNode) member() cluster.Member {
	return cluster.Member{Name: n.name, Addr: n.srv.URL}
}

// newFleetNode builds one fleet member — engine, shared cache wrapped in
// the peering cache, manager and listener, wired exactly as
// cmd/efficsensed wires them — with no membership yet (addresses exist
// only after the listener starts). walLog nil runs without durability.
func newFleetNode(t *testing.T, name string, eval dse.PointEvaluator, walLog *wal.Log) *fleetNode {
	t.Helper()
	store := cache.New(256)
	peers, err := cluster.NewPeers(cluster.Config{
		Self:      cluster.Member{Name: name},
		VNodes:    16,
		Seed:      1,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dse.NewSweep(eval,
		dse.WithCache(newClusterCache(store, peers, experiments.Options{})),
		dse.WithWorkers(2), dse.WithEvaluatorID("test-eval"))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(ManagerConfig{
		Engines: func(opts experiments.Options) (Engine, error) { return eng, nil },
		Cache:   store,
		Cluster: peers,
		WAL:     walLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mgr, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		srv.Close()
	})
	return &fleetNode{name: name, srv: srv, mgr: mgr, eval: eval, peers: peers, store: store}
}

// newFleet builds one node per name — every node running the same
// deterministic evaluator under the same evaluator identity, so cache
// fingerprints agree fleet-wide — then installs the full membership on
// all of them.
func newFleet(t *testing.T, names []string, delay time.Duration) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, 0, len(names))
	for _, name := range names {
		nodes = append(nodes, newFleetNode(t, name, &slowEval{delay: delay}, nil))
	}
	installMembership(nodes...)
	return nodes
}

// installMembership points every node at the full fleet roster.
func installMembership(nodes ...*fleetNode) {
	members := make([]cluster.Member, 0, len(nodes))
	for _, n := range nodes {
		members = append(members, n.member())
	}
	for _, n := range nodes {
		n.peers.SetMembers(members)
	}
}

// fleetSweep is the shared acceptance scenario: an explicit 12-point
// grid, so every test (and the single-node reference) enumerates the
// identical space.
const fleetSweep = `{"space":{"architectures":["baseline"],"bits":[4,6,8],"noise_steps":4}}`

const fleetSweepPoints = 12

func submitSweep(t *testing.T, base string) JobStatus {
	t.Helper()
	resp := postJSON(t, base+"/v1/sweeps", fleetSweep)
	if resp.StatusCode != http.StatusAccepted {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	return decodeStatus(t, resp)
}

func clusterStatusJSON(t *testing.T, base string) ClusterStatusJSON {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster status %d", resp.StatusCode)
	}
	var st ClusterStatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestClusterAcceptanceExactlyOnce is the fleet acceptance gate: the
// same sweep submitted to two different nodes of a three-node fleet
// completes on both with identical result streams, while the fleet as a
// whole evaluates each design point exactly once — the second node's
// run is served entirely from local warmth and peer fetches.
func TestClusterAcceptanceExactlyOnce(t *testing.T) {
	nodes := newFleet(t, []string{"node-a", "node-b", "node-c"}, 0)
	a, b := nodes[0], nodes[1]

	// Reference: the identical sweep on a plain single-node server —
	// fleet mode must not change a single result bit.
	refSrv, _, _ := newTestServer(t, 0, ManagerConfig{})
	refStatus := submitSweep(t, refSrv.URL)
	if !strings.HasPrefix(refStatus.ID, "sweep-") || strings.Count(refStatus.ID, "-") != 1 {
		t.Fatalf("single-node job ID %q grew cluster structure", refStatus.ID)
	}
	refDone := waitTerminal(t, refSrv.URL, refStatus.ID)
	if refDone.State != string(StateCompleted) {
		t.Fatalf("reference state %q", refDone.State)
	}
	refRows := fetchNDJSON(t, refSrv.URL, "/v1/sweeps/"+refStatus.ID)

	stA := submitSweep(t, a.srv.URL)
	if want := "sweep-node-a-1"; stA.ID != want {
		t.Fatalf("fleet job ID %q, want %q", stA.ID, want)
	}
	doneA := waitTerminal(t, a.srv.URL, stA.ID)
	if doneA.State != string(StateCompleted) || doneA.Result == nil || doneA.Result.Partial {
		t.Fatalf("node-a sweep: %+v", doneA)
	}
	rowsA := fetchNDJSON(t, a.srv.URL, "/v1/sweeps/"+stA.ID)
	if !bytes.Equal(rowsA, refRows) {
		t.Fatalf("fleet results differ from single-node reference:\nfleet:\n%s\nreference:\n%s", rowsA, refRows)
	}

	stB := submitSweep(t, b.srv.URL)
	doneB := waitTerminal(t, b.srv.URL, stB.ID)
	if doneB.State != string(StateCompleted) || doneB.Result == nil || doneB.Result.Partial {
		t.Fatalf("node-b sweep: %+v", doneB)
	}
	rowsB := fetchNDJSON(t, b.srv.URL, "/v1/sweeps/"+stB.ID)
	if !bytes.Equal(rowsB, rowsA) {
		t.Fatalf("node-b results differ from node-a's:\nb:\n%s\na:\n%s", rowsB, rowsA)
	}

	// Exactly once, pinned two independent ways: the engines' own
	// evaluation counters and the fake evaluator's call counts.
	var evaluated, calls, hits, misses, fills, errors int64
	for _, n := range nodes {
		evaluated += n.mgr.Counters().EngineEvaluated
		calls += n.eval.(*slowEval).calls.Load()
		st := n.peers.Status()
		hits += st.Hits
		misses += st.Misses
		fills += st.Fills
		errors += st.Errors
	}
	if evaluated != fleetSweepPoints {
		t.Fatalf("fleet evaluated %d points, want exactly %d", evaluated, fleetSweepPoints)
	}
	if calls != fleetSweepPoints {
		t.Fatalf("fleet evaluator calls %d, want exactly %d", calls, fleetSweepPoints)
	}
	if errors != 0 {
		t.Fatalf("healthy fleet counted %d peer errors", errors)
	}
	// Every successful fetch someone counted as hit or miss was served
	// by an owner counting a fill.
	if fills != hits+misses {
		t.Fatalf("peer accounting drifted: %d fills vs %d hits + %d misses", fills, hits, misses)
	}
	if fills == 0 {
		t.Fatal("no peer traffic at all: the ring routed nothing remotely")
	}

	// The cluster surfaces agree on every node: /v1/cluster and the
	// efficsense_cluster_* series see a three-member ring.
	for _, n := range nodes {
		cs := clusterStatusJSON(t, n.srv.URL)
		if cs.RingSize != 3 || len(cs.Members) != 3 || cs.Self != n.name {
			t.Fatalf("%s /v1/cluster = %+v", n.name, cs)
		}
		metrics := fetchMetrics(t, n.srv.URL)
		if v := metricValue(t, metrics, "efficsense_cluster_ring_size"); v != 3 {
			t.Fatalf("%s ring_size metric = %g", n.name, v)
		}
		if v := metricValue(t, metrics, "efficsense_cluster_ring_vnodes"); v != 16 {
			t.Fatalf("%s ring_vnodes metric = %g", n.name, v)
		}
	}
}

// TestClusterSingleNodeUnchanged pins the bit-identity contract from
// the other side: without fleet mode the cluster surfaces simply do not
// exist — no /v1/cluster, no peer endpoint, no cluster metrics, plain
// job IDs.
func TestClusterSingleNodeUnchanged(t *testing.T) {
	srv, _, _ := newTestServer(t, 0, ManagerConfig{})
	resp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/cluster without fleet mode: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+cluster.PeerPath, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer endpoint without fleet mode: status %d, want 404", resp.StatusCode)
	}
	if metrics := fetchMetrics(t, srv.URL); strings.Contains(metrics, "efficsense_cluster_") {
		t.Fatal("cluster series rendered without fleet mode")
	}
}

// TestClusterStickyRouting: a job lives on the node that accepted it;
// any other member answers requests for it with a 307 pointing home.
func TestClusterStickyRouting(t *testing.T) {
	nodes := newFleet(t, []string{"node-a", "node-b"}, 0)
	a, b := nodes[0], nodes[1]
	st := submitSweep(t, a.srv.URL)
	waitTerminal(t, a.srv.URL, st.ID)

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Get(b.srv.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("other node answered %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if want := a.srv.URL + "/v1/sweeps/" + st.ID; loc != want {
		t.Fatalf("Location = %q, want %q", loc, want)
	}

	// A default client follows the redirect to the accepting node.
	resp, err = http.Get(b.srv.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeStatus(t, resp)
	if got.ID != st.ID || got.State != string(StateCompleted) {
		t.Fatalf("followed redirect got %+v", got)
	}

	// The results stream redirects the same way (SSE and NDJSON attach
	// to the accepting node's job state).
	resp, err = noFollow.Get(b.srv.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("results on other node answered %d, want 307", resp.StatusCode)
	}

	// IDs naming this node, an unknown member, or nothing at all still
	// 404 — no redirect loops, no open redirect.
	for _, id := range []string{"sweep-node-b-99", "sweep-ghost-1", "sweep-7", "bogus"} {
		resp, err := noFollow.Get(b.srv.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", id, resp.StatusCode)
		}
	}
}

func TestJobNode(t *testing.T) {
	cases := map[string]string{
		"sweep-node-a-1":  "node-a",
		"search-node-b-7": "node-b",
		"sweep-7":         "",
		"search-9":        "",
		"sweep-node-a-x":  "",
		"sweep-":          "",
		"evaluate-a-1":    "",
		"":                "",
	}
	for id, want := range cases {
		if got := jobNode(id); got != want {
			t.Errorf("jobNode(%q) = %q, want %q", id, got, want)
		}
	}
}
