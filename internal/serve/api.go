// Package serve exposes the EffiCSense pathfinding framework over HTTP:
// the efficsensed daemon wires a Server (handlers.go) around a job
// Manager (jobs.go) that owns the sweep engines, the shared memoisation
// cache and the asynchronous sweep and search jobs. Everything is
// stdlib net/http; the paper's "framework other designers query"
// becomes a small set of endpoints:
//
//	POST   /v1/evaluate            synchronous single-point evaluation
//	POST   /v1/sweeps              submit an async design-space sweep
//	GET    /v1/sweeps              list tracked jobs (?state= filter)
//	GET    /v1/sweeps/{id}         job status, metrics, fronts, optima
//	GET    /v1/sweeps/{id}/events  SSE stream of engine progress events
//	GET    /v1/sweeps/{id}/results NDJSON stream of the result cloud
//	DELETE /v1/sweeps/{id}         cancel the job (partial results kept)
//	POST   /v1/search              submit an async goal-directed search
//	GET    /v1/search/{id}         search status, front, best design
//	GET    /v1/search/{id}/events  SSE stream of front-update events
//	GET    /v1/search/{id}/results NDJSON stream of the discovered front
//	DELETE /v1/search/{id}         cancel the search (partial front kept)
//	GET    /v1/scenarios           list the registered workload scenarios
//	GET    /healthz, GET /metrics  liveness and Prometheus exposition
//
// Every request that evaluates designs selects a workload through the
// options' "scenario" field (absent = the server default, normally
// eeg-epilepsy); architecture names, the default design space and the
// evaluator identity all resolve against the selected scenario.
//
// Every response carries an X-Request-ID header (echoing the caller's,
// when valid, else freshly assigned); error responses share the v1
// envelope {"error": {"code", "message"}} with machine-readable codes.
//
// This file holds the wire types (requests, responses, conversions).
package serve

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/scenario"
	"efficsense/internal/search"
)

// PointSpec is the wire form of a core.DesignPoint.
type PointSpec struct {
	Arch     string  `json:"arch"`
	Bits     int     `json:"bits"`
	LNANoise float64 `json:"lna_noise"`
	M        int     `json:"m,omitempty"`
	CHold    float64 `json:"chold,omitempty"`
}

// parseArch maps a wire architecture name back to its value without any
// scenario scoping — the names derive from core.Architecture.String, the
// single source of truth. WAL replay uses this (a journaled row must
// round-trip whatever architecture produced it); request paths parse
// through the selected scenario instead, so a workload only accepts the
// architectures it supports.
func parseArch(s string) (core.Architecture, error) {
	return core.ParseArchitecture(s)
}

// DesignPoint validates the spec and converts it. The architecture name
// resolves within the selected scenario's architecture set; a nil
// scenario falls back to the unscoped global parse.
func (p PointSpec) DesignPoint(scn *scenario.Scenario) (core.DesignPoint, error) {
	var arch core.Architecture
	var err error
	if scn != nil {
		arch, err = scn.ParseArch(p.Arch)
	} else {
		arch, err = parseArch(p.Arch)
	}
	if err != nil {
		return core.DesignPoint{}, err
	}
	if p.Bits <= 0 {
		return core.DesignPoint{}, fmt.Errorf("bits must be positive, got %d", p.Bits)
	}
	if p.LNANoise <= 0 {
		return core.DesignPoint{}, fmt.Errorf("lna_noise must be positive, got %g", p.LNANoise)
	}
	dp := core.DesignPoint{Arch: arch, Bits: p.Bits, LNANoise: p.LNANoise}
	if arch != core.ArchBaseline {
		if p.M <= 0 {
			return core.DesignPoint{}, fmt.Errorf("%s needs a positive measurement count m, got %d", p.Arch, p.M)
		}
		dp.M, dp.CHold = p.M, p.CHold
	}
	return dp, nil
}

func pointSpecOf(p core.DesignPoint) PointSpec {
	return PointSpec{Arch: p.Arch.String(), Bits: p.Bits, LNANoise: p.LNANoise, M: p.M, CHold: p.CHold}
}

// OptionsSpec overrides the server's default suite options field by
// field; absent fields inherit the default. Progress/trace sinks are
// server-owned and not settable over the wire.
type OptionsSpec struct {
	// Scenario names the workload (GET /v1/scenarios lists them); absent
	// or empty selects the server default.
	Scenario      *string  `json:"scenario,omitempty"`
	Seed          *int64   `json:"seed,omitempty"`
	Records       *int     `json:"records,omitempty"`
	TrainRecords  *int     `json:"train_records,omitempty"`
	NoiseSteps    *int     `json:"noise_steps,omitempty"`
	Workers       *int     `json:"workers,omitempty"`
	Epochs        *int     `json:"epochs,omitempty"`
	MinAccuracy   *float64 `json:"min_accuracy,omitempty"`
	WindowSeconds *float64 `json:"window_seconds,omitempty"`
}

func (o *OptionsSpec) apply(base experiments.Options) experiments.Options {
	if o == nil {
		return base
	}
	if o.Scenario != nil {
		base.Scenario = *o.Scenario
	}
	if o.Seed != nil {
		base.Seed = *o.Seed
	}
	if o.Records != nil {
		base.Records = *o.Records
	}
	if o.TrainRecords != nil {
		base.TrainRecords = *o.TrainRecords
	}
	if o.NoiseSteps != nil {
		base.NoiseSteps = *o.NoiseSteps
	}
	if o.Workers != nil {
		base.Workers = *o.Workers
	}
	if o.Epochs != nil {
		base.Epochs = *o.Epochs
	}
	if o.MinAccuracy != nil {
		base.MinAccuracy = *o.MinAccuracy
	}
	if o.WindowSeconds != nil {
		base.WindowSeconds = *o.WindowSeconds
	}
	return base
}

// SpaceSpec selects the design-space grid of a sweep. Absent fields
// inherit the selected scenario's default axes (the paper's Table III
// grid for eeg-epilepsy); lna_noise, when set, wins over noise_steps.
type SpaceSpec struct {
	Architectures []string  `json:"architectures,omitempty"`
	Bits          []int     `json:"bits,omitempty"`
	LNANoise      []float64 `json:"lna_noise,omitempty"`
	NoiseSteps    int       `json:"noise_steps,omitempty"`
	M             []int     `json:"m,omitempty"`
	CHold         []float64 `json:"chold,omitempty"`
}

func (sp *SpaceSpec) space(opts experiments.Options) (dse.Space, error) {
	scn, err := scenario.Lookup(opts.Scenario)
	if err != nil {
		return dse.Space{}, err
	}
	s := scn.Space(opts.NoiseSteps)
	if sp == nil {
		return s, s.Validate()
	}
	if len(sp.Architectures) > 0 {
		s.Architectures = s.Architectures[:0]
		for _, name := range sp.Architectures {
			arch, err := scn.ParseArch(name)
			if err != nil {
				return dse.Space{}, err
			}
			s.Architectures = append(s.Architectures, arch)
		}
	}
	if len(sp.Bits) > 0 {
		s.Bits = sp.Bits
	}
	switch {
	case len(sp.LNANoise) > 0:
		s.LNANoise = sp.LNANoise
	case sp.NoiseSteps > 0:
		// Re-derive the scenario's own noise axis at the requested
		// resolution, not a hard-wired EEG range.
		s.LNANoise = scn.Space(sp.NoiseSteps).LNANoise
	}
	if len(sp.M) > 0 {
		s.M = sp.M
	}
	if len(sp.CHold) > 0 {
		s.CHold = sp.CHold
	}
	return s, s.Validate()
}

// EvaluateRequest is the POST /v1/evaluate body. Exactly one of Point
// and Points must be set: a single-object body ({"point": ...}) returns
// one ResultJSON, a batch body ({"points": [...]}) returns an
// EvaluateBatchResponse with one row per input point. Batches flow
// through the engines' batch dispatch, so points that can share
// amplification and encoding work actually do.
type EvaluateRequest struct {
	Options   *OptionsSpec `json:"options,omitempty"`
	Point     PointSpec    `json:"point,omitempty"`
	Points    []PointSpec  `json:"points,omitempty"`
	TimeoutMS int          `json:"timeout_ms,omitempty"`
}

// EvaluateBatchResponse is the POST /v1/evaluate response for a batch
// request: one row per input point, in input order. Failures degrade
// per point — an error row with Err set, never a lost point or a failed
// batch — and Partial flags their presence, the same degradation shape
// sweep outcomes use.
type EvaluateBatchResponse struct {
	// Partial is true when at least one row is an error row.
	Partial bool `json:"partial"`
	// Count is the number of rows; Errors the degraded ones.
	Count  int `json:"count"`
	Errors int `json:"errors"`
	// Results holds one row per input point, in input order.
	Results []ResultJSON `json:"results"`
}

// SweepRequest is the POST /v1/sweeps body.
type SweepRequest struct {
	Options *OptionsSpec `json:"options,omitempty"`
	Space   *SpaceSpec   `json:"space,omitempty"`
}

// SearchRequest is the POST /v1/search body. The goal arrives either as
// the compact query grammar ("max-accuracy@power<=3e-6") or as the
// structured fields — never both; the structured path composes into the
// same grammar so one parser validates everything. max_evaluations
// defaults to a tenth of the space (the search's headline ratio),
// capped by the server's MaxSearchEvaluations. probe_records, when
// positive, adds a cheap probe fidelity: early probes evaluate that
// many records per point, and only survivors reach the full engine.
type SearchRequest struct {
	// Query is the goal grammar: goal *( "@" constraint ), e.g.
	// "max-accuracy@power<=3e-6@area<=500" or "min-power@accuracy>=0.98".
	Query string `json:"query,omitempty"`
	// Goal is the structured alternative: "max-accuracy", "max-snr" or
	// "min-power". Metric names a min-power floor's quality function
	// (default "accuracy"); max goals name theirs in the goal itself.
	Goal       string  `json:"goal,omitempty"`
	Metric     string  `json:"metric,omitempty"`
	MaxPowerW  float64 `json:"max_power_w,omitempty"`
	MinQuality float64 `json:"min_quality,omitempty"`
	// MaxAreaCaps, when positive, is the Fig 10 capacitor-area cap.
	MaxAreaCaps float64 `json:"max_area_caps,omitempty"`
	// MaxEvaluations is the hard budget; 0 picks a tenth of the space.
	MaxEvaluations int   `json:"max_evaluations,omitempty"`
	Seed           int64 `json:"seed,omitempty"`
	// ProbeRecords, when positive, evaluates early probes at this
	// record count before promoting survivors to full fidelity.
	ProbeRecords int          `json:"probe_records,omitempty"`
	Options      *OptionsSpec `json:"options,omitempty"`
	Space        *SpaceSpec   `json:"space,omitempty"`
}

// spec parses the request's goal into a search.Spec. The query string
// wins; the structured fields compose into the same grammar so both
// paths share one validator. Budget and seed are attached by
// SubmitSearch, not here.
func (r SearchRequest) spec() (search.Spec, error) {
	structured := r.Goal != "" || r.Metric != "" || r.MaxPowerW != 0 ||
		r.MinQuality != 0 || r.MaxAreaCaps != 0
	if r.Query != "" {
		if structured {
			return search.Spec{}, errors.New("query and the structured goal fields are mutually exclusive")
		}
		return search.ParseQuery(r.Query)
	}
	if r.Goal == "min-power" {
		if r.MaxPowerW != 0 {
			return search.Spec{}, errors.New("max_power_w only bounds max goals; min-power takes min_quality")
		}
	} else {
		if r.Metric != "" {
			return search.Spec{}, errors.New(`metric applies to min-power only; max goals name their metric ("max-accuracy", "max-snr")`)
		}
		if r.MinQuality != 0 {
			return search.Spec{}, errors.New("min_quality only bounds min-power queries")
		}
	}
	return search.ParseQuery(r.composeQuery())
}

// composeQuery renders the structured fields in the query grammar.
func (r SearchRequest) composeQuery() string {
	var b strings.Builder
	b.WriteString(r.Goal)
	if r.Goal == "min-power" {
		metric := r.Metric
		if metric == "" {
			metric = "accuracy"
		}
		fmt.Fprintf(&b, "@%s>=%g", metric, r.MinQuality)
	} else if r.MaxPowerW != 0 {
		fmt.Fprintf(&b, "@power<=%g", r.MaxPowerW)
	}
	if r.MaxAreaCaps != 0 {
		fmt.Fprintf(&b, "@area<=%g", r.MaxAreaCaps)
	}
	return b.String()
}

// ResultJSON is the wire form of a core.Result.
type ResultJSON struct {
	Point    PointSpec          `json:"point"`
	SNRdB    float64            `json:"snr_db"`
	Accuracy float64            `json:"accuracy"`
	TotalW   float64            `json:"total_w"`
	PowerW   map[string]float64 `json:"power_w,omitempty"`
	AreaCaps float64            `json:"area_caps"`
	Cached   bool               `json:"cached,omitempty"`
	Err      string             `json:"err,omitempty"`
}

func resultJSON(r core.Result) ResultJSON {
	out := ResultJSON{
		Point:    pointSpecOf(r.Point),
		SNRdB:    r.MeanSNRdB,
		Accuracy: r.Accuracy,
		TotalW:   r.TotalPower,
		AreaCaps: r.AreaCaps,
	}
	for _, c := range r.Power.Components() {
		if out.PowerW == nil {
			out.PowerW = make(map[string]float64)
		}
		out.PowerW[string(c)] = r.Power[c]
	}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	return out
}

func resultsJSON(rs []core.Result) []ResultJSON {
	out := make([]ResultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON(r)
	}
	return out
}

// FrontJSON is one goal function's Pareto fronts.
type FrontJSON struct {
	Baseline []ResultJSON `json:"baseline"`
	CS       []ResultJSON `json:"cs"`
}

// SweepOutcome is the result payload of a finished (or cancelled —
// Partial true) sweep job.
type SweepOutcome struct {
	// Partial marks an incomplete cloud: the job was cancelled, failed
	// mid-run, or completed with degraded points (Errors > 0). The
	// fronts and optima below are computed over the sound results only,
	// so a client must treat them as a lower bound, not the full space.
	Partial bool `json:"partial"`
	// Points counts completed evaluations; Errors the degraded ones.
	Points int `json:"points"`
	Total  int `json:"total"`
	Errors int `json:"errors"`
	// Fronts holds the Pareto fronts per goal function ("snr",
	// "accuracy"); Optima the minimum-power designs meeting the accuracy
	// constraint, per architecture.
	Fronts        map[string]FrontJSON   `json:"fronts"`
	Optima        map[string]*ResultJSON `json:"optima"`
	MinAccuracy   float64                `json:"min_accuracy"`
	PowerSavingsX float64                `json:"power_savings_x,omitempty"`
}

// outcomeOf distils a result cloud into the response payload, reusing
// the experiments-layer front/optimum extraction.
func outcomeOf(rs []core.Result, total int, partial bool, minAccuracy float64) *SweepOutcome {
	figs := experiments.NewFigsFromResults(rs, minAccuracy)
	f7a, f7b := figs.Fig7a(), figs.Fig7b()
	out := &SweepOutcome{
		Partial: partial,
		Points:  len(rs),
		Total:   total,
		Fronts: map[string]FrontJSON{
			"snr":      {Baseline: resultsJSON(f7a.Baseline), CS: resultsJSON(f7a.CS)},
			"accuracy": {Baseline: resultsJSON(f7b.Baseline), CS: resultsJSON(f7b.CS)},
		},
		Optima:        map[string]*ResultJSON{"baseline": nil, "cs": nil},
		MinAccuracy:   f7b.MinAccuracy,
		PowerSavingsX: f7b.PowerSavingsX,
	}
	for _, r := range rs {
		if r.Err != nil {
			out.Errors++
		}
	}
	if f7b.HaveBaseline {
		rj := resultJSON(f7b.BaselineOpt)
		out.Optima["baseline"] = &rj
	}
	if f7b.HaveCS {
		rj := resultJSON(f7b.CSOpt)
		out.Optima["cs"] = &rj
	}
	return out
}

// SearchOutcome is the result payload of a search job, embedded in its
// status response and summarised in the terminal SSE event.
type SearchOutcome struct {
	// Query is the canonical form of the goal the job ran.
	Query string `json:"query"`
	// Partial marks a front that is a lower bound, not the converged
	// answer: the run was cancelled, failed, exhausted its budget with
	// proposals pending, or degraded rows along the way.
	Partial bool `json:"partial"`
	// Evaluations counts every dispatched point at any fidelity rung;
	// Evaluations + BudgetRemaining == Budget always.
	Evaluations     int `json:"evaluations"`
	Budget          int `json:"budget"`
	BudgetRemaining int `json:"budget_remaining"`
	Errors          int `json:"errors"`
	// Hypervolume is the front's dominated area against the run's
	// observed extremes — a progress figure, comparable within a run.
	Hypervolume float64 `json:"hypervolume"`
	// Best answers the query: the feasible front design with the best
	// goal value (nil when nothing feasible was found). Front is the
	// discovered Pareto front, ascending power.
	Best  *ResultJSON  `json:"best,omitempty"`
	Front []ResultJSON `json:"front"`
}

func searchOutcomeOf(spec search.Spec, out search.Outcome, partial bool) *SearchOutcome {
	so := &SearchOutcome{
		Query:           spec.Query(),
		Partial:         partial,
		Evaluations:     out.Evaluations,
		Budget:          out.Budget,
		BudgetRemaining: out.Budget - out.Evaluations,
		Errors:          out.Errors,
		Hypervolume:     out.Hypervolume,
		Front:           resultsJSON(out.Front),
	}
	if out.HaveBest {
		rj := resultJSON(out.Best)
		so.Best = &rj
	}
	return so
}

// EngineMetricsJSON is the wire form of a dse.Snapshot. The eval
// quantiles come from the engine's fixed-bucket duration histogram, so
// a slow sweep's tail is visible right on its status response instead
// of only in aggregate /metrics.
type EngineMetricsJSON struct {
	Evaluated  int64   `json:"evaluated"`
	CacheHits  int64   `json:"cache_hits"`
	Deduped    int64   `json:"deduped"`
	Panics     int64   `json:"panics"`
	Retries    int64   `json:"retries"`
	MeanEvalMS float64 `json:"mean_eval_ms"`
	P50EvalMS  float64 `json:"p50_eval_ms"`
	P90EvalMS  float64 `json:"p90_eval_ms"`
	P99EvalMS  float64 `json:"p99_eval_ms"`
	Throughput float64 `json:"throughput_pts_per_s"`
	ETAMS      float64 `json:"eta_ms"`
}

func engineMetricsJSON(s dse.Snapshot) *EngineMetricsJSON {
	return &EngineMetricsJSON{
		Evaluated:  s.Evaluated,
		CacheHits:  s.CacheHits,
		Deduped:    s.Deduped,
		Panics:     s.Panics,
		Retries:    s.Retries,
		MeanEvalMS: float64(s.MeanEval) / float64(time.Millisecond),
		P50EvalMS:  float64(s.P50Eval) / float64(time.Millisecond),
		P90EvalMS:  float64(s.P90Eval) / float64(time.Millisecond),
		P99EvalMS:  float64(s.P99Eval) / float64(time.Millisecond),
		Throughput: s.Throughput,
		ETAMS:      float64(s.ETA) / float64(time.Millisecond),
	}
}

// ProgressJSON is a job's progress window.
type ProgressJSON struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobStatus is the GET /v1/sweeps/{id} response (and the body of the
// 202 returned on submission). RequestID is the X-Request-ID of the
// submitting request, so a designer can correlate a job — and every log
// line it produced — back to the call that created it.
type JobStatus struct {
	ID              string             `json:"id"`
	Kind            string             `json:"kind"`
	Scenario        string             `json:"scenario,omitempty"`
	State           string             `json:"state"`
	Tenant          string             `json:"tenant,omitempty"`
	RequestID       string             `json:"request_id,omitempty"`
	CancelRequested bool               `json:"cancel_requested,omitempty"`
	CreatedAt       time.Time          `json:"created_at"`
	StartedAt       *time.Time         `json:"started_at,omitempty"`
	FinishedAt      *time.Time         `json:"finished_at,omitempty"`
	Progress        ProgressJSON       `json:"progress"`
	Metrics         *EngineMetricsJSON `json:"metrics,omitempty"`
	Error           string             `json:"error,omitempty"`
	Result          *SweepOutcome      `json:"result,omitempty"`
	Search          *SearchOutcome     `json:"search,omitempty"`
	StatusURL       string             `json:"status_url"`
	EventsURL       string             `json:"events_url"`
	ResultsURL      string             `json:"results_url"`
}

// JobSummary is one row of the GET /v1/sweeps listing: enough to find a
// job (and the request that submitted it) without scraping /metrics.
type JobSummary struct {
	ID        string       `json:"id"`
	Kind      string       `json:"kind"`
	Scenario  string       `json:"scenario,omitempty"`
	State     string       `json:"state"`
	Tenant    string       `json:"tenant,omitempty"`
	RequestID string       `json:"request_id,omitempty"`
	CreatedAt time.Time    `json:"created_at"`
	Progress  ProgressJSON `json:"progress"`
	StatusURL string       `json:"status_url"`
}

// JobListJSON is the GET /v1/sweeps response.
type JobListJSON struct {
	Jobs  []JobSummary `json:"jobs"`
	Count int          `json:"count"`
}

// ScenarioSpaceJSON describes a scenario's default design-space axes, so
// a client can see what an unconstrained sweep would enumerate.
type ScenarioSpaceJSON struct {
	Architectures []string  `json:"architectures"`
	Bits          []int     `json:"bits"`
	LNANoise      []float64 `json:"lna_noise"`
	M             []int     `json:"m"`
	CHold         []float64 `json:"chold"`
}

// ScenarioJSON is one row of the GET /v1/scenarios listing: the name a
// request's options.scenario field selects, what the workload evaluates,
// and the architecture set its point specs accept.
type ScenarioJSON struct {
	Name          string            `json:"name"`
	Description   string            `json:"description"`
	Default       bool              `json:"default,omitempty"`
	Architectures []string          `json:"architectures"`
	InputPeakV    float64           `json:"input_peak_v,omitempty"`
	ReconMethod   string            `json:"recon_method"`
	Space         ScenarioSpaceJSON `json:"space"`
}

// ScenarioListJSON is the GET /v1/scenarios response.
type ScenarioListJSON struct {
	Scenarios []ScenarioJSON `json:"scenarios"`
	Count     int            `json:"count"`
	Default   string         `json:"default"`
}

// scenarioJSON renders one registered scenario; noiseSteps sizes the
// default space's noise axis (the server's default NoiseSteps).
func scenarioJSON(sc *scenario.Scenario, noiseSteps int) ScenarioJSON {
	sp := sc.Space(noiseSteps)
	spaceArchs := make([]string, len(sp.Architectures))
	for i, a := range sp.Architectures {
		spaceArchs[i] = a.String()
	}
	return ScenarioJSON{
		Name:          sc.Name,
		Description:   sc.Description,
		Default:       sc.Name == scenario.DefaultName,
		Architectures: sc.ArchNames(),
		InputPeakV:    sc.InputPeak,
		ReconMethod:   sc.ReconMethod.String(),
		Space: ScenarioSpaceJSON{
			Architectures: spaceArchs,
			Bits:          sp.Bits,
			LNANoise:      sp.LNANoise,
			M:             sp.M,
			CHold:         sp.CHold,
		},
	}
}

// ErrorCode is the machine-readable error taxonomy of the v1 API: the
// code names the failure class (what a client should branch on), the
// accompanying message is for humans and makes no stability promise.
type ErrorCode string

const (
	// CodeBadRequest: the request body or parameters failed validation (400).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound: no such job — never existed or TTL-evicted (404).
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict: the resource exists but is in the wrong state, e.g.
	// results of a still-running job (409).
	CodeConflict ErrorCode = "conflict"
	// CodeSaturated: the tenant's job slots and queue are full; retry
	// after Retry-After (429).
	CodeSaturated ErrorCode = "saturated"
	// CodeRateLimited: the tenant's token bucket is empty; retry after
	// Retry-After (429).
	CodeRateLimited ErrorCode = "rate_limited"
	// CodeShuttingDown: the daemon is draining and rejects new work (503).
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeDeadline: the evaluation exceeded its deadline (504).
	CodeDeadline ErrorCode = "deadline"
	// CodeInternal: an unclassified server-side failure (500).
	CodeInternal ErrorCode = "internal"
)

// ErrorDetail is the payload of the v1 error envelope.
type ErrorDetail struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// errorJSON is the uniform v1 error body:
// {"error": {"code": "...", "message": "..."}}.
type errorJSON struct {
	Error ErrorDetail `json:"error"`
}
