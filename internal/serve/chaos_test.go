package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/fault"
)

// This file is the chaos acceptance suite: seeded fault schedules driven
// through the full HTTP stack (submit → SSE → status → results →
// /metrics), asserting the resilience contract end to end. Every test
// arms the process-global fault registry, so each one resets it on the
// way out; the serve package's tests run sequentially, which keeps the
// armed window private to the owning test.

// armFault arms one failpoint for the duration of the test.
func armFault(t *testing.T, name string, cfg fault.Config) {
	t.Helper()
	if err := fault.Enable(name, cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
}

// newChaosServer is newTestServerWithCache plus engine options (retry
// policies, worker counts) chosen by the test.
func newChaosServer(t *testing.T, delay time.Duration, cfg ManagerConfig, store dse.Cache, extra ...dse.Option) (*httptest.Server, *Manager, *slowEval) {
	t.Helper()
	eval := &slowEval{delay: delay}
	opts := append([]dse.Option{
		dse.WithCache(store), dse.WithWorkers(2), dse.WithEvaluatorID("test-eval"),
	}, extra...)
	eng, err := dse.NewSweep(eval, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engines = func(o experiments.Options) (Engine, error) { return eng, nil }
	cfg.Cache = store
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		ts.Close()
	})
	return ts, mgr, eval
}

// labeledMetric extracts the value of a labelled series from a
// Prometheus exposition by its full "name{labels}" prefix.
func labeledMetric(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("series %s: unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s absent from exposition:\n%s", series, exposition)
	return 0
}

// TestChaosDegradedSweepCompletesPartial injects a bounded budget of
// evaluation faults and checks graceful degradation through every
// surface: the job still completes, the status JSON and the terminal SSE
// event carry partial: true with the degraded count, the NDJSON cloud
// has per-point error rows, and — because degraded results are never
// cached — a rerun after disarming heals exactly the failed points.
func TestChaosDegradedSweepCompletesPartial(t *testing.T) {
	const budget = 2
	armFault(t, fault.PointEvaluate, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: budget, Seed: 3,
	})
	ts, _, eval := newTestServer(t, time.Millisecond, ManagerConfig{})

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	evResp, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, evResp.Body)
	evResp.Body.Close()

	var done *sseEvent
	errRows := 0
	for i, ev := range events {
		switch ev.name {
		case "point":
			if s, _ := ev.data["err"].(string); s != "" {
				errRows++
				if !strings.Contains(s, "injected fault") {
					t.Fatalf("degraded point carries the wrong error: %q", s)
				}
			}
		case "done":
			done = &events[i]
		}
	}
	if errRows != budget {
		t.Fatalf("%d degraded point events, want %d", errRows, budget)
	}
	if done == nil {
		t.Fatal("no done event")
	}
	if done.data["state"] != "completed" || done.data["partial"] != true || done.data["errors"] != float64(budget) {
		t.Fatalf("done event: %v", done.data)
	}

	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateCompleted) {
		t.Fatalf("degraded sweep state %s, want completed", final.State)
	}
	if final.Result == nil || !final.Result.Partial ||
		final.Result.Points != 6 || final.Result.Errors != budget {
		t.Fatalf("outcome: %+v", final.Result)
	}
	// The fronts are computed over the sound points only, and still exist.
	if len(final.Result.Fronts["snr"].Baseline) == 0 {
		t.Fatal("degraded sweep lost its front entirely")
	}

	rResp, err := http.Get(ts.URL + final.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rResp.Body)
	rResp.Body.Close()
	if lines := strings.Count(string(body), "\n"); lines != 6 {
		t.Fatalf("results NDJSON lines %d, want 6", lines)
	}
	if got := strings.Count(string(body), `"err":"`); got != budget {
		t.Fatalf("results NDJSON error rows %d, want %d:\n%s", got, budget, body)
	}

	// Faults were injected before the evaluator ran, so the degraded
	// points cost no evaluation — and, crucially, were not cached.
	if got := eval.calls.Load(); got != 6-budget {
		t.Fatalf("evaluator calls %d, want %d", got, 6-budget)
	}
	fault.Reset()
	st2 := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	final2 := waitTerminal(t, ts.URL, st2.ID)
	if final2.State != string(StateCompleted) || final2.Result.Partial || final2.Result.Errors != 0 {
		t.Fatalf("healed rerun: %+v", final2.Result)
	}
	if got := eval.calls.Load(); got != 6 {
		t.Fatalf("healed rerun re-evaluated sound points: %d calls, want 6", got)
	}
}

// TestChaosRetryAbsorbsFaultBudgetExactly is the reconciliation test:
// with retries allowed more attempts than the fault budget can consume,
// a chaos run must end clean — zero degraded points — and the retry
// counter must equal the injection counter exactly, on the engine
// snapshot, the job's metrics JSON and the Prometheus exposition alike.
func TestChaosRetryAbsorbsFaultBudgetExactly(t *testing.T) {
	const budget = 5
	armFault(t, fault.PointEvaluate, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: budget, Seed: 9,
	})
	ts, _, _ := newChaosServer(t, 0, ManagerConfig{}, cache.New(128),
		dse.WithRetry(dse.RetryPolicy{
			// More attempts per point than the whole budget: no schedule,
			// however adversarial, can exhaust a point.
			MaxAttempts: budget + 2,
			BaseDelay:   100 * time.Microsecond,
			Jitter:      0.5,
			Seed:        9,
		}))

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateCompleted) {
		t.Fatalf("state %s: %s", final.State, final.Error)
	}
	if final.Result.Partial || final.Result.Errors != 0 {
		t.Fatalf("retries should have absorbed every fault: %+v", final.Result)
	}
	if inj := fault.Injected(fault.PointEvaluate); inj != budget {
		t.Fatalf("injected %d, want the full budget %d", inj, budget)
	}
	if final.Metrics == nil || final.Metrics.Retries != budget {
		t.Fatalf("status metrics retries: %+v", final.Metrics)
	}

	metrics := fetchMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "efficsense_engine_retries_total"); got != budget {
		t.Errorf("exposed retries %g, want %d", got, budget)
	}
	if got := labeledMetric(t, metrics,
		`efficsense_fault_injections_total{point="dse/evaluate",kind="error"}`); got != budget {
		t.Errorf("exposed injections %g, want %d", got, budget)
	}
	// Fire consults the point once per attempt: 6 first tries + 5 retries.
	if got := labeledMetric(t, metrics,
		`efficsense_fault_calls_total{point="dse/evaluate",kind="error"}`); got != 6+budget {
		t.Errorf("exposed fault calls %g, want %d", got, 6+budget)
	}
}

// TestChaosFlightPanicsKeepCacheBoundedOverHTTP drives a sweep through a
// tiny cache while the singleflight failpoint panics probabilistically,
// and checks the bound is undisturbed, the panics degrade points instead
// of killing the daemon, and the three layers of accounting — fault
// registry, cache stats, engine metrics — agree to the unit.
func TestChaosFlightPanicsKeepCacheBoundedOverHTTP(t *testing.T) {
	armFault(t, fault.PointFlight, fault.Config{
		Kind: fault.KindPanic, Probability: 0.3, Seed: 7,
	})
	store := cache.New(4)
	ts, mgr, _ := newTestServerWithCache(t, 0, ManagerConfig{}, store)

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateCompleted) {
		t.Fatalf("state %s: %s", final.State, final.Error)
	}

	injected := fault.Injected(fault.PointFlight)
	if injected == 0 {
		t.Fatal("seed 7 injected nothing; the test exercised no chaos")
	}
	if final.Result.Errors != int(injected) {
		t.Fatalf("degraded points %d, want the injected panic count %d",
			final.Result.Errors, injected)
	}
	if !final.Result.Partial || final.Result.Points != 24 {
		t.Fatalf("outcome: %+v", final.Result)
	}
	if n := store.Len(); n > store.Cap() {
		t.Fatalf("cache holds %d entries above its cap %d under panic injection", n, store.Cap())
	}
	c := mgr.Counters()
	if c.EnginePanics != injected || c.CacheFlightPanics != injected {
		t.Fatalf("engine panics %d, flight panics %d, want both %d",
			c.EnginePanics, c.CacheFlightPanics, injected)
	}
	metrics := fetchMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "efficsense_cache_flight_panics_total"); got != float64(injected) {
		t.Errorf("exposed flight panics %g, want %d", got, injected)
	}
	if got := metricValue(t, metrics, "efficsense_engine_panics_total"); got != float64(injected) {
		t.Errorf("exposed engine panics %g, want %d", got, injected)
	}
}

// TestChaosJobPanicFailsOneJobNotTheDaemon arms the job-lifecycle
// failpoint to panic: the job must land in failed with a descriptive
// error and a terminal SSE event, and the daemon must keep serving —
// the very next submission (failpoint disarmed) runs clean.
func TestChaosJobPanicFailsOneJobNotTheDaemon(t *testing.T) {
	armFault(t, fault.PointJob, fault.Config{
		Kind: fault.KindPanic, Probability: 1, MaxInjections: 1, Seed: 1,
	})
	ts, mgr, _ := newTestServer(t, 0, ManagerConfig{})

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateFailed) {
		t.Fatalf("state %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "panicked") {
		t.Fatalf("error %q does not say the job panicked", final.Error)
	}
	// The stream of a failed job still terminates with a done event.
	evResp, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, evResp.Body)
	evResp.Body.Close()
	if len(events) == 0 || events[len(events)-1].name != "done" {
		t.Fatalf("failed job's stream did not end in done: %+v", events)
	}
	if last := events[len(events)-1]; last.data["state"] != "failed" || last.data["partial"] != true {
		t.Fatalf("failed job's done event: %v", last.data)
	}
	if c := mgr.Counters(); c.Failed != 1 {
		t.Fatalf("failed counter %d, want 1", c.Failed)
	}

	fault.Reset()
	st2 := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	final2 := waitTerminal(t, ts.URL, st2.ID)
	if final2.State != string(StateCompleted) || final2.Result.Partial {
		t.Fatalf("daemon did not survive the job panic: %+v", final2)
	}
}

// TestChaosSSEResumeDeliversExactlyOnce is the resume-under-failure
// acceptance test: the SSE flush failpoint severs the stream mid-sweep,
// the client reconnects with Last-Event-ID each time, and across every
// connection the event sequence must arrive exactly once — no gaps, no
// duplicates — while evaluation faults degrade points concurrently.
func TestChaosSSEResumeDeliversExactlyOnce(t *testing.T) {
	if err := fault.Enable(fault.PointSSEFlush, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: 3, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable(fault.PointEvaluate, fault.Config{
		Kind: fault.KindError, Probability: 0.2, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	ts, _, _ := newTestServer(t, 5*time.Millisecond, ManagerConfig{})

	const total = 24
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))

	var (
		collected []sseEvent
		lastID    int
		conns     int
		sawDone   bool
	)
	for !sawDone {
		conns++
		if conns > 50 {
			t.Fatal("stream never completed across 50 reconnects")
		}
		req, _ := http.NewRequest(http.MethodGet, ts.URL+st.EventsURL, nil)
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", fmt.Sprint(lastID))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		evs := readSSE(t, resp.Body)
		resp.Body.Close()
		for _, ev := range evs {
			collected = append(collected, ev)
			lastID = ev.id
			if ev.name == "done" {
				sawDone = true
			}
		}
	}
	// The flush failpoint fired its whole budget: at least as many
	// reconnects as injected drops, plus the final clean connection.
	if conns < 2 {
		t.Fatalf("stream was never severed (%d connection)", conns)
	}
	if inj := fault.Injected(fault.PointSSEFlush); inj != 3 {
		t.Fatalf("flush failpoint injected %d, want its full budget 3", inj)
	}

	// Exactly-once: ids are the contiguous sequence 1..n with one done.
	points, dones := 0, 0
	for i, ev := range collected {
		if ev.id != i+1 {
			t.Fatalf("event %d has id %d: a gap or duplicate across reconnects", i, ev.id)
		}
		switch ev.name {
		case "point":
			points++
		case "done":
			dones++
		}
	}
	if points != total || dones != 1 {
		t.Fatalf("collected %d point events and %d done events, want %d and 1", points, dones, total)
	}
}

// TestChaosBatchFaultDegradesOnlyItsBatch arms the batch failpoint with
// a single injection and drives a sweep through a batch-dispatching
// engine: exactly the points of the faulted batch must degrade into
// error rows — the job completes with partial: true, every other batch
// is untouched, and the daemon keeps serving.
func TestChaosBatchFaultDegradesOnlyItsBatch(t *testing.T) {
	armFault(t, fault.PointBatch, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: 1, Seed: 11,
	})
	// One worker and a batch size of 4: the 24-point space (8 noise
	// groups × 3 bits) flattens into exactly 6 full chunks, so the one
	// injected fault costs exactly 4 points.
	ts, mgr, eval := newBatchTestServer(t, ManagerConfig{},
		dse.WithWorkers(1), dse.WithBatchSize(4))

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateCompleted) {
		t.Fatalf("state %s, want completed: %s", final.State, final.Error)
	}
	if !final.Result.Partial || final.Result.Points != 24 || final.Result.Errors != 4 {
		t.Fatalf("one faulted batch should cost exactly its 4 points: %+v", final.Result)
	}
	// The faulted batch never reached the evaluator; the other 5 did.
	// The engine counters record all 6 dispatched batches — the faulted
	// one included, just as Evaluated counts failpoint-degraded points.
	if got := eval.batchPoints.Load(); got != 20 {
		t.Fatalf("evaluator saw %d batched points, want 20", got)
	}
	if c := mgr.Counters(); c.EngineBatches != 6 || c.EngineBatchPoints != 24 {
		t.Fatalf("batch counters: %d batches, %d points", c.EngineBatches, c.EngineBatchPoints)
	}

	// Degraded rows are never cached, so a rerun after disarming heals
	// exactly the faulted batch.
	fault.Reset()
	st2 := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))
	final2 := waitTerminal(t, ts.URL, st2.ID)
	if final2.State != string(StateCompleted) || final2.Result.Partial || final2.Result.Errors != 0 {
		t.Fatalf("healed rerun: %+v", final2.Result)
	}
	if got := eval.calls.Load(); got != 24 {
		t.Fatalf("healed rerun should evaluate only the faulted 4: %d calls, want 24", got)
	}
}

// TestChaosBatchEvaluateDegradesRowsNotRequest is the wire-level batch
// degradation test: with the batch failpoint armed, POST /v1/evaluate
// {"points": [...]} returns 200 with partial: true and per-point error
// rows — never a failed request — and the very next batch (budget
// exhausted) runs clean.
func TestChaosBatchEvaluateDegradesRowsNotRequest(t *testing.T) {
	armFault(t, fault.PointBatch, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: 1, Seed: 4,
	})
	ts, _, eval := newBatchTestServer(t, ManagerConfig{})

	// Four points of one ADC-resolution group: a single chunk, a single
	// EvaluateBatch call, so the injection degrades all four rows.
	body := `{"points":[
		{"arch":"baseline","bits":4,"lna_noise":1e-6},
		{"arch":"baseline","bits":5,"lna_noise":1e-6},
		{"arch":"baseline","bits":6,"lna_noise":1e-6},
		{"arch":"baseline","bits":7,"lna_noise":1e-6}]}`
	br := decodeBatch(t, postJSON(t, ts.URL+"/v1/evaluate", body))
	if !br.Partial || br.Errors != 4 || br.Count != 4 {
		t.Fatalf("faulted batch response: %+v", br)
	}
	for i, row := range br.Results {
		if !strings.Contains(row.Err, "injected fault") {
			t.Fatalf("row %d should carry the injected fault: %+v", i, row)
		}
	}
	if eval.calls.Load() != 0 {
		t.Fatal("faulted batch should never reach the evaluator")
	}

	// The budget is spent: the same batch now evaluates clean, proving
	// the degraded rows were not cached.
	br2 := decodeBatch(t, postJSON(t, ts.URL+"/v1/evaluate", body))
	if br2.Partial || br2.Errors != 0 {
		t.Fatalf("post-budget batch: %+v", br2)
	}
	if eval.calls.Load() != 4 {
		t.Fatalf("post-budget batch evaluated %d points, want 4", eval.calls.Load())
	}
}

// TestChaosNoGoroutineLeaks runs a full chaos scenario — evaluation
// faults, severed SSE streams, a resumed client — then tears the stack
// down and requires the goroutine count to return to its baseline:
// injected failures must not strand workers, streams or job goroutines.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	func() {
		if err := fault.EnableSpec(
			"dse/evaluate=error:0.3,serve/sse-flush=error:0.5", 13); err != nil {
			t.Fatal(err)
		}
		defer fault.Reset()

		store := cache.New(64)
		eval := &slowEval{delay: 2 * time.Millisecond}
		eng, err := dse.NewSweep(eval,
			dse.WithCache(store), dse.WithWorkers(2), dse.WithEvaluatorID("test-eval"),
			dse.WithRetry(dse.RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, Seed: 13}))
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := NewManager(ManagerConfig{
			Engines: func(o experiments.Options) (Engine, error) { return eng, nil },
			Cache:   store,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewServer(mgr, nil))
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = mgr.Shutdown(ctx)
		}()

		st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
			`{"space":{"architectures":["baseline"],"bits":[4,5,6],"noise_steps":8}}`))
		lastID, sawDone := 0, false
		for i := 0; !sawDone && i < 50; i++ {
			req, _ := http.NewRequest(http.MethodGet, ts.URL+st.EventsURL, nil)
			if lastID > 0 {
				req.Header.Set("Last-Event-ID", fmt.Sprint(lastID))
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range readSSE(t, resp.Body) {
				lastID = ev.id
				sawDone = sawDone || ev.name == "done"
			}
			resp.Body.Close()
		}
		if !sawDone {
			t.Fatal("chaos sweep never streamed its done event")
		}
		if final := waitTerminal(t, ts.URL, st.ID); final.State != string(StateCompleted) {
			t.Fatalf("state %s: %s", final.State, final.Error)
		}
	}()

	// Idle keep-alive connections hold client goroutines; drop them, then
	// give stragglers a bounded window to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosSearchBatchFaultDegradesBudgetExactly drives a search job
// through a batch-dispatching engine with one injected batch fault: the
// job must still complete — partial, with exactly the faulted chunk
// counted as errors, a sound subset front, and the evaluation budget
// accounted to the point. A healed resubmission then converges clean on
// the full front, riding the cache for the rows that survived.
func TestChaosSearchBatchFaultDegradesBudgetExactly(t *testing.T) {
	armFault(t, fault.PointBatch, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: 1, Seed: 11,
	})
	// One worker and a batch size of 4: the strategy's opening proposal
	// (2 groups × 3 noise quantiles = 6 probes) dispatches as chunks of
	// 4 and 2, so the single injection degrades exactly 4 points.
	ts, mgr, _ := newBatchTestServer(t, ManagerConfig{},
		dse.WithWorkers(1), dse.WithBatchSize(4))
	body := `{"query":"max-snr","max_evaluations":16,
		"space":{"architectures":["baseline"],"bits":[4,6],"noise_steps":8}}`

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/search", body))
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != string(StateCompleted) {
		t.Fatalf("state %s, want completed: %s", final.State, final.Error)
	}
	so := final.Search
	if so == nil || !so.Partial || so.Errors != 4 {
		t.Fatalf("faulted search outcome: %+v", so)
	}
	if so.Evaluations+so.BudgetRemaining != so.Budget || so.Budget != 16 {
		t.Fatalf("budget accounting under chaos: %+v", so)
	}
	if c := mgr.Counters(); c.SearchEvaluations != int64(so.Evaluations) {
		t.Fatalf("counter evaluations %d, status says %d", c.SearchEvaluations, so.Evaluations)
	}
	// The front is a sound subset: no error rows, every member on the
	// evaluator's closed form.
	if len(so.Front) == 0 {
		t.Fatalf("degraded search kept no front at all: %+v", so)
	}
	for i, row := range so.Front {
		if row.Err != "" || row.SNRdB != 3*float64(row.Point.Bits) {
			t.Fatalf("front row %d unsound: %+v", i, row)
		}
	}
	rResp, err := http.Get(ts.URL + final.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(rResp.Body)
	rResp.Body.Close()
	if strings.Contains(string(raw), `"err"`) {
		t.Fatalf("results NDJSON leaked error rows:\n%s", raw)
	}

	// Healed rerun: budget spent, cache warm for the sound rows — the
	// same query now converges clean on the full two-point front.
	fault.Reset()
	st2 := decodeStatus(t, postJSON(t, ts.URL+"/v1/search", body))
	final2 := waitTerminal(t, ts.URL, st2.ID)
	if final2.State != string(StateCompleted) || final2.Search == nil {
		t.Fatalf("healed search: %+v", final2)
	}
	so2 := final2.Search
	if so2.Partial || so2.Errors != 0 || len(so2.Front) != 2 {
		t.Fatalf("healed search outcome: %+v", so2)
	}
}
