package serve

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"efficsense/internal/dse"
	"efficsense/internal/fault"
	"efficsense/internal/obs"
)

// handleMetrics renders the Prometheus text exposition (format 0.0.4) by
// hand — the server stays stdlib-only. It aggregates three layers: HTTP
// request counters, the job manager's accounting, and the sweep engines'
// own metrics (evaluations, memoisation hits, recovered panics) plus the
// shared cache occupancy.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	gauge := func(name, help string, v interface{}) {
		writeMetric(w, name, help, "gauge", v)
	}
	counter := func(name, help string, v interface{}) {
		writeMetric(w, name, help, "counter", v)
	}

	gauge("efficsense_uptime_seconds", "Seconds since the server started.",
		time.Since(s.started).Seconds())

	reqs := s.requestCounts()
	fmt.Fprintf(w, "# HELP efficsense_http_requests_total HTTP requests served, by status code.\n")
	fmt.Fprintf(w, "# TYPE efficsense_http_requests_total counter\n")
	for _, code := range sortedCodes(reqs) {
		fmt.Fprintf(w, "efficsense_http_requests_total{code=%q} %d\n", fmt.Sprint(code), reqs[code])
	}

	fmt.Fprintf(w, "# HELP efficsense_http_request_duration_seconds HTTP request latency, by endpoint pattern.\n")
	fmt.Fprintf(w, "# TYPE efficsense_http_request_duration_seconds histogram\n")
	for _, ep := range s.endpoints {
		s.reqDur[ep].Snapshot().WritePrometheus(w,
			"efficsense_http_request_duration_seconds", fmt.Sprintf("endpoint=%q", ep))
	}

	fmt.Fprintf(w, "# HELP efficsense_eval_duration_seconds Per-point evaluation duration across all engines (cache hits excluded).\n")
	fmt.Fprintf(w, "# TYPE efficsense_eval_duration_seconds histogram\n")
	evalHist := c.EvalHist
	if len(evalHist.Counts) == 0 {
		// No engine resolved yet: render the standard layout at zero so
		// the series exists from the first scrape.
		evalHist = obs.NewHistogram(obs.EvalBuckets).Snapshot()
	}
	evalHist.WritePrometheus(w, "efficsense_eval_duration_seconds", "")

	counter("efficsense_jobs_submitted_total", "Sweep jobs accepted.", c.Submitted)
	counter("efficsense_jobs_rejected_total", "Job submissions rejected for saturation (sweeps and searches).", c.Rejected)
	counter("efficsense_jobs_completed_total", "Sweep jobs that ran to completion.", c.Completed)
	counter("efficsense_jobs_cancelled_total", "Sweep jobs cancelled by clients.", c.Cancelled)
	counter("efficsense_jobs_failed_total", "Sweep jobs that failed.", c.Failed)
	gauge("efficsense_jobs_running", "Jobs currently pending or running (sweeps and searches).", c.Running)
	gauge("efficsense_jobs_tracked", "Jobs retained for status queries (TTL-bounded).", c.Tracked)
	counter("efficsense_evaluate_requests_total", "Design points requested through synchronous evaluation (single and batch).", c.Evaluations)
	gauge("efficsense_sse_streams_active", "Open SSE event streams.", s.sseActive.Load())

	counter("efficsense_search_jobs_submitted_total", "Goal-directed search jobs accepted.", c.SearchSubmitted)
	counter("efficsense_search_jobs_completed_total", "Search jobs that ran to completion.", c.SearchCompleted)
	counter("efficsense_search_jobs_cancelled_total", "Search jobs cancelled by clients.", c.SearchCancelled)
	counter("efficsense_search_jobs_failed_total", "Search jobs that failed.", c.SearchFailed)
	counter("efficsense_search_evaluations_total", "Design points dispatched by search drivers, at any fidelity rung.", c.SearchEvaluations)
	gauge("efficsense_search_front_size", "Pareto-front size after the most recent search round.", c.SearchFrontSize)
	gauge("efficsense_search_budget_remaining", "Unspent evaluation budget after the most recent search round.", c.SearchBudgetRemaining)

	counter("efficsense_engine_evaluations_total", "Design points scored by the evaluators (cache misses).", c.EngineEvaluated)
	counter("efficsense_engine_cache_hits_total", "Design points served from the memoisation cache.", c.EngineCacheHits)
	counter("efficsense_engine_dedup_total", "Design points served by joining an identical in-flight evaluation (singleflight).", c.EngineDeduped)
	counter("efficsense_engine_panics_total", "Evaluator panics recovered into error results.", c.EnginePanics)
	counter("efficsense_engine_retries_total", "Evaluations re-attempted under the engines' retry policy.", c.EngineRetries)
	gauge("efficsense_engine_mean_eval_seconds", "Mean wall-clock seconds per real evaluation.", c.EngineMeanEval.Seconds())
	counter("efficsense_engine_batches_total", "Batched evaluator calls dispatched by the engines.", c.EngineBatches)
	counter("efficsense_engine_batch_points_total", "Cache-miss design points carried by batched evaluator calls.", c.EngineBatchPoints)

	fmt.Fprintf(w, "# HELP efficsense_batch_size_points Design points per batched evaluator call.\n")
	fmt.Fprintf(w, "# TYPE efficsense_batch_size_points histogram\n")
	batchSize := c.BatchSizeHist
	if len(batchSize.Counts) == 0 {
		batchSize = obs.NewHistogram(dse.BatchSizeBuckets).Snapshot()
	}
	batchSize.WritePrometheus(w, "efficsense_batch_size_points", "")

	fmt.Fprintf(w, "# HELP efficsense_batch_duration_seconds Wall-clock duration of batched evaluator calls.\n")
	fmt.Fprintf(w, "# TYPE efficsense_batch_duration_seconds histogram\n")
	batchDur := c.BatchLatencyHist
	if len(batchDur.Counts) == 0 {
		batchDur = obs.NewHistogram(obs.EvalBuckets).Snapshot()
	}
	batchDur.WritePrometheus(w, "efficsense_batch_duration_seconds", "")

	// Fault-injection accounting, rendered only while chaos is armed
	// (efficsensed -chaos or a test schedule): reconciling these against
	// the retry/panic/degradation counters above is how a chaos run
	// proves the stack absorbed exactly the faults it was dealt.
	if snap := fault.Snapshot(); len(snap) > 0 {
		fmt.Fprintf(w, "# HELP efficsense_fault_injections_total Faults injected, by armed failpoint.\n")
		fmt.Fprintf(w, "# TYPE efficsense_fault_injections_total counter\n")
		for _, p := range snap {
			fmt.Fprintf(w, "efficsense_fault_injections_total{point=%q,kind=%q} %d\n", p.Name, p.Kind.String(), p.Injected)
		}
		fmt.Fprintf(w, "# HELP efficsense_fault_calls_total Fire calls consulting each armed failpoint.\n")
		fmt.Fprintf(w, "# TYPE efficsense_fault_calls_total counter\n")
		for _, p := range snap {
			fmt.Fprintf(w, "efficsense_fault_calls_total{point=%q,kind=%q} %d\n", p.Name, p.Kind.String(), p.Calls)
		}
	}

	// Per-tenant traffic-shaping series, labelled by tenant. Tenants are
	// sorted by name, so the exposition is deterministic.
	if tcs := s.mgr.TenantCounters(); len(tcs) > 0 {
		tenantSeries := []struct {
			name, help, kind string
			value            func(TenantCounters) int64
		}{
			{"efficsense_tenant_weight", "Fair-share weight of the tenant.", "gauge",
				func(t TenantCounters) int64 { return int64(t.Weight) }},
			{"efficsense_tenant_jobs_running", "Jobs the tenant is currently running.", "gauge",
				func(t TenantCounters) int64 { return int64(t.Running) }},
			{"efficsense_tenant_jobs_queued", "Jobs the tenant has admitted but not yet dispatched.", "gauge",
				func(t TenantCounters) int64 { return int64(t.Queued) }},
			{"efficsense_tenant_jobs_submitted_total", "Jobs the tenant submitted successfully.", "counter",
				func(t TenantCounters) int64 { return t.Submitted }},
			{"efficsense_tenant_rejected_rate_total", "Submissions rejected by the tenant's token bucket.", "counter",
				func(t TenantCounters) int64 { return t.RejectedRate }},
			{"efficsense_tenant_rejected_quota_total", "Submissions rejected by the tenant's concurrency/queue quota.", "counter",
				func(t TenantCounters) int64 { return t.RejectedQuota }},
			{"efficsense_tenant_evaluations_total", "Design points the tenant evaluated through the synchronous lane.", "counter",
				func(t TenantCounters) int64 { return t.Evaluations }},
			{"efficsense_tenant_eval_limited_total", "Synchronous evaluations rejected by the tenant's token bucket.", "counter",
				func(t TenantCounters) int64 { return t.EvalLimited }},
		}
		for _, series := range tenantSeries {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", series.name, series.help, series.name, series.kind)
			for _, t := range tcs {
				fmt.Fprintf(w, "%s{tenant=%q} %d\n", series.name, t.Tenant, series.value(t))
			}
		}
	}

	// Fleet-mode series, rendered only when a peer group is configured —
	// a single-node exposition stays byte-compatible with the pre-fleet
	// contract. Reconciliation invariant: summed over the fleet,
	// peer_fills equals peer_hits + peer_misses (every filled request
	// was someone's successful fetch), and peer_errors counts fetches
	// that degraded to local compute instead.
	if st, ok := s.mgr.ClusterStatus(); ok {
		gauge("efficsense_cluster_ring_size", "Members on the consistent-hash ring, as this node sees it.", st.RingSize)
		gauge("efficsense_cluster_ring_vnodes", "Virtual nodes per member on the ring.", st.VNodes)
		counter("efficsense_cluster_peer_hits_total", "Peer fetches answered from the owner's cache.", st.Hits)
		counter("efficsense_cluster_peer_misses_total", "Peer fetches the owner had to compute.", st.Misses)
		counter("efficsense_cluster_peer_fills_total", "Peer requests this node served as keyspace owner.", st.Fills)
		counter("efficsense_cluster_peer_errors_total", "Peer fetches that failed and degraded to local compute.", st.Errors)
		fmt.Fprintf(w, "# HELP efficsense_cluster_peer_request_duration_seconds Peer-protocol request latency, by peer.\n")
		fmt.Fprintf(w, "# TYPE efficsense_cluster_peer_request_duration_seconds histogram\n")
		for _, ps := range st.Peers {
			if ps.Self {
				continue
			}
			ps.Latency.WritePrometheus(w,
				"efficsense_cluster_peer_request_duration_seconds", fmt.Sprintf("peer=%q", ps.Member.Name))
		}
	}

	// Durability series (all zero when no -wal-dir is configured).
	counter("efficsense_wal_replayed_jobs_total", "Terminal jobs restored from the journal at startup.", c.WALReplayedJobs)
	counter("efficsense_wal_resumed_jobs_total", "In-flight jobs resumed from the journal at startup.", c.WALResumedJobs)
	counter("efficsense_wal_replayed_rows_total", "Result rows restored from the journal instead of re-evaluated.", c.WALReplayedRows)
	counter("efficsense_wal_appends_total", "Records appended to the journal since it was opened.", c.WALAppends)
	counter("efficsense_wal_fsyncs_total", "Explicit journal fsyncs (job-state transitions).", c.WALFsyncs)
	counter("efficsense_wal_dropped_records_total", "Journal records dropped on open (torn tail, corrupt records).", c.WALDropped)
	gauge("efficsense_wal_size_bytes", "Current journal file size.", c.WALSizeBytes)

	gauge("efficsense_cache_entries", "Entries in the shared memoisation cache.", c.CacheEntries)
	gauge("efficsense_cache_capacity", "Entry bound of the shared memoisation cache (0 = unbounded).", c.CacheCapacity)
	counter("efficsense_cache_hits_total", "Shared cache lookups that hit.", c.CacheHits)
	counter("efficsense_cache_misses_total", "Shared cache lookups that missed.", c.CacheMisses)
	counter("efficsense_cache_evictions_total", "Entries evicted from the shared cache to honour its bound.", c.CacheEvictions)
	counter("efficsense_cache_singleflight_shared_total", "Shared-cache lookups served by joining an identical in-flight evaluation.", c.CacheDeduped)
	counter("efficsense_cache_flight_panics_total", "Singleflight computations that panicked out of the shared cache.", c.CacheFlightPanics)
}

func writeMetric(w io.Writer, name, help, kind string, v interface{}) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
	switch n := v.(type) {
	case float64:
		fmt.Fprintf(w, "%s %g\n", name, n)
	default:
		fmt.Fprintf(w, "%s %v\n", name, n)
	}
}
