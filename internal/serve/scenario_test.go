package serve

// Scenario-aware wire contract: options.scenario selection, scoped
// architecture parsing, the /v1/scenarios discovery endpoint, the
// ?scenario= listing filter, and the cache-disjointness guarantee that
// keeps two workloads' evaluations from ever aliasing each other.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"efficsense/internal/experiments"
	"efficsense/internal/scenario"
)

// TestOptionsSpecApply pins the override contract: every settable field
// independently overrides the base, absent fields inherit it.
func TestOptionsSpecApply(t *testing.T) {
	base := experiments.Options{
		Scenario: "eeg-epilepsy", Seed: 1, Records: 40, TrainRecords: 120,
		NoiseSteps: 8, Workers: 0, Epochs: 150, MinAccuracy: 0.98, WindowSeconds: 1,
	}
	ptrS := func(v string) *string { return &v }
	ptrI64 := func(v int64) *int64 { return &v }
	ptrI := func(v int) *int { return &v }
	ptrF := func(v float64) *float64 { return &v }
	cases := []struct {
		name string
		spec *OptionsSpec
		want func(o experiments.Options) experiments.Options
	}{
		{"nil spec inherits everything", nil,
			func(o experiments.Options) experiments.Options { return o }},
		{"empty spec inherits everything", &OptionsSpec{},
			func(o experiments.Options) experiments.Options { return o }},
		{"scenario", &OptionsSpec{Scenario: ptrS("ecg-telemonitoring")},
			func(o experiments.Options) experiments.Options { o.Scenario = "ecg-telemonitoring"; return o }},
		{"seed", &OptionsSpec{Seed: ptrI64(9)},
			func(o experiments.Options) experiments.Options { o.Seed = 9; return o }},
		{"records", &OptionsSpec{Records: ptrI(7)},
			func(o experiments.Options) experiments.Options { o.Records = 7; return o }},
		{"train_records", &OptionsSpec{TrainRecords: ptrI(11)},
			func(o experiments.Options) experiments.Options { o.TrainRecords = 11; return o }},
		{"noise_steps", &OptionsSpec{NoiseSteps: ptrI(3)},
			func(o experiments.Options) experiments.Options { o.NoiseSteps = 3; return o }},
		{"workers", &OptionsSpec{Workers: ptrI(2)},
			func(o experiments.Options) experiments.Options { o.Workers = 2; return o }},
		{"epochs", &OptionsSpec{Epochs: ptrI(5)},
			func(o experiments.Options) experiments.Options { o.Epochs = 5; return o }},
		{"min_accuracy", &OptionsSpec{MinAccuracy: ptrF(0.5)},
			func(o experiments.Options) experiments.Options { o.MinAccuracy = 0.5; return o }},
		{"window_seconds", &OptionsSpec{WindowSeconds: ptrF(2.5)},
			func(o experiments.Options) experiments.Options { o.WindowSeconds = 2.5; return o }},
		{"explicit zero overrides, not inherits", &OptionsSpec{MinAccuracy: ptrF(0)},
			func(o experiments.Options) experiments.Options { o.MinAccuracy = 0; return o }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.spec.apply(base)
			// Options carries a (nil here) progress callback, so compare
			// with DeepEqual rather than ==.
			if want := tc.want(base); !reflect.DeepEqual(got, want) {
				t.Fatalf("apply mismatch:\n got  %+v\n want %+v", got, want)
			}
		})
	}
}

// TestUnknownFieldRejected pins satellite behaviour: a typo'd request
// key comes back as a bad_request envelope naming the offending field.
func TestUnknownFieldRejected(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{})
	for _, tc := range []struct {
		path, body string
	}{
		{"/v1/evaluate", `{"point":{"arch":"cs","bits":8,"lna_noise":5e-6,"m":75},"scenaro":"x"}`},
		{"/v1/sweeps", `{"spacee":{}}`},
		{"/v1/search", `{"query":"max-snr","budgett":5}`},
	} {
		resp := postJSON(t, ts.URL+tc.path, tc.body)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", tc.path, resp.StatusCode, body)
		}
		var env errorJSON
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("%s: non-envelope error body %s", tc.path, body)
		}
		if env.Error.Code != CodeBadRequest {
			t.Fatalf("%s: code %q", tc.path, env.Error.Code)
		}
		if !strings.Contains(env.Error.Message, "unknown field") ||
			!strings.Contains(env.Error.Message, `"`) {
			t.Fatalf("%s: message does not name the field: %q", tc.path, env.Error.Message)
		}
	}
}

// TestScenariosEndpoint is the golden shape test for GET /v1/scenarios:
// the key sets are pinned exactly, so accidental wire drift fails here.
func TestScenariosEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	keys := func(m map[string]json.RawMessage) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	if got, want := keys(raw), []string{"count", "default", "scenarios"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("top-level keys %v, want %v", got, want)
	}
	var list ScenarioListJSON
	full, _ := json.Marshal(raw)
	if err := json.Unmarshal(full, &list); err != nil {
		t.Fatal(err)
	}
	if list.Default != scenario.DefaultName {
		t.Fatalf("default %q", list.Default)
	}
	if list.Count < 2 || list.Count != len(list.Scenarios) {
		t.Fatalf("count %d over %d scenarios", list.Count, len(list.Scenarios))
	}
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(raw["scenarios"], &rows); err != nil {
		t.Fatal(err)
	}
	byName := map[string]ScenarioJSON{}
	for i, sc := range list.Scenarios {
		byName[sc.Name] = sc
		rowKeys := keys(rows[i])
		// Optional fields (default, input_peak_v) may be absent; the
		// mandatory shape must hold for every row.
		for _, want := range []string{"name", "description", "architectures", "recon_method", "space"} {
			if !slicesContains(rowKeys, want) {
				t.Fatalf("scenario %s missing key %q (have %v)", sc.Name, want, rowKeys)
			}
		}
		var space map[string]json.RawMessage
		if err := json.Unmarshal(rows[i]["space"], &space); err != nil {
			t.Fatal(err)
		}
		if got, want := keys(space), []string{"architectures", "bits", "chold", "lna_noise", "m"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("scenario %s space keys %v, want %v", sc.Name, got, want)
		}
	}
	eeg, ok := byName["eeg-epilepsy"]
	if !ok || !eeg.Default || len(eeg.Architectures) != 4 || eeg.ReconMethod != "omp" {
		t.Fatalf("eeg-epilepsy row: %+v", eeg)
	}
	ecg, ok := byName["ecg-telemonitoring"]
	if !ok || ecg.Default || len(ecg.Architectures) != 2 || ecg.ReconMethod != "bomp" {
		t.Fatalf("ecg-telemonitoring row: %+v", ecg)
	}
	if ecg.InputPeakV <= 0 {
		t.Fatalf("ecg input peak %g", ecg.InputPeakV)
	}
}

func slicesContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestScenarioSelectionOnWire drives submission, status, listing filter
// and the terminal SSE event for a non-default scenario, plus the
// bad-request paths (unknown scenario, out-of-set architecture).
func TestScenarioSelectionOnWire(t *testing.T) {
	ts, _, _ := newTestServer(t, 0, ManagerConfig{})

	// Unknown scenario: rejected before any work happens.
	resp := postJSON(t, ts.URL+"/v1/sweeps", `{"options":{"scenario":"no-such-workload"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// An architecture outside the scenario's set is rejected even though
	// the registry knows it globally.
	resp = postJSON(t, ts.URL+"/v1/evaluate",
		`{"options":{"scenario":"ecg-telemonitoring"},"point":{"arch":"cs-digital","bits":8,"lna_noise":5e-6,"m":75}}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "ecg-telemonitoring") {
		t.Fatalf("out-of-set arch: status %d, body %s", resp.StatusCode, body)
	}

	// One default-scenario sweep, one ECG sweep.
	def := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"space":{"architectures":["baseline"],"bits":[8],"lna_noise":[5e-6]}}`))
	ecg := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"options":{"scenario":"ecg-telemonitoring"},"space":{"architectures":["cs"],"bits":[8],"lna_noise":[5e-6],"m":[75]}}`))
	if def.Scenario != scenario.DefaultName {
		t.Fatalf("default sweep scenario %q (canonicalisation broken)", def.Scenario)
	}
	if ecg.Scenario != "ecg-telemonitoring" {
		t.Fatalf("ecg sweep scenario %q", ecg.Scenario)
	}
	waitTerminal(t, ts.URL, def.ID)
	waitTerminal(t, ts.URL, ecg.ID)

	// Listing filter: ?scenario= selects exactly the matching jobs.
	for filter, wantID := range map[string]string{
		"ecg-telemonitoring": ecg.ID,
		scenario.DefaultName: def.ID,
	} {
		resp, err := http.Get(ts.URL + "/v1/sweeps?scenario=" + filter)
		if err != nil {
			t.Fatal(err)
		}
		var list JobListJSON
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if list.Count != 1 || list.Jobs[0].ID != wantID || list.Jobs[0].Scenario != filter {
			t.Fatalf("?scenario=%s: %+v", filter, list)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps?scenario=not-registered")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad filter status %d", resp.StatusCode)
	}

	// The terminal SSE event names the scenario.
	evResp, err := http.Get(ts.URL + "/v1/sweeps/" + ecg.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, evResp.Body)
	evResp.Body.Close()
	var done map[string]interface{}
	for _, ev := range events {
		if ev.name == "done" {
			done = ev.data
		}
	}
	if done == nil || done["scenario"] != "ecg-telemonitoring" {
		t.Fatalf("done event scenario: %v", done)
	}
}

// TestScenarioCacheDisjoint is the end-to-end acceptance test: the same
// design point evaluated under two scenarios must occupy two cache
// entries (fingerprint-disjoint), an ECG sweep and /v1/search must run
// through the real suite stack, and re-evaluation within one scenario
// must still hit its own warm entry.
func TestScenarioCacheDisjoint(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a (tiny) detector and runs real reconstructions")
	}
	engines := NewSuiteEngines(0)
	mgr, err := NewManager(ManagerConfig{
		Defaults: experiments.Options{Seed: 7, Records: 2, TrainRecords: 6,
			NoiseSteps: 2, Epochs: 2, MinAccuracy: 0.01},
		Engines: engines.Engine,
		Cache:   engines.Cache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, nil))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()
	point := `{"arch":"cs","bits":6,"lna_noise":5e-6,"m":75}`
	eval := func(scenarioField string) ResultJSON {
		t.Helper()
		body := `{"point":` + point + `}`
		if scenarioField != "" {
			body = `{"options":{"scenario":"` + scenarioField + `"},"point":` + point + `}`
		}
		resp := postJSON(t, ts.URL+"/v1/evaluate", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("evaluate (%q): status %d, body %s", scenarioField, resp.StatusCode, b)
		}
		var rj ResultJSON
		if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
			t.Fatal(err)
		}
		return rj
	}

	first := eval("")
	if first.Cached {
		t.Fatal("first EEG evaluation reported a cache hit")
	}
	ecgFirst := eval("ecg-telemonitoring")
	if ecgFirst.Cached {
		t.Fatal("first ECG evaluation hit the EEG cache entry: fingerprints alias")
	}
	st := engines.Cache().Stats()
	if st.Entries < 2 {
		t.Fatalf("expected >=2 disjoint cache entries, have %d", st.Entries)
	}
	if again := eval("ecg-telemonitoring"); !again.Cached {
		t.Fatal("repeat ECG evaluation missed its own warm entry")
	} else if again.SNRdB != ecgFirst.SNRdB || again.TotalW != ecgFirst.TotalW {
		t.Fatalf("cached ECG result drifted: %+v vs %+v", again, ecgFirst)
	}
	// Explicitly naming the default scenario must land on the implicit
	// default's entry — they are the same workload by contract.
	if again := eval(scenario.DefaultName); !again.Cached {
		t.Fatal("explicit eeg-epilepsy missed the implicit default's cache entry")
	} else if again.SNRdB != first.SNRdB || again.Accuracy != first.Accuracy {
		t.Fatalf("explicit default diverged from implicit: %+v vs %+v", again, first)
	}
	if engines.Suites() != 2 {
		t.Fatalf("expected 2 materialised suites (one per scenario), have %d", engines.Suites())
	}

	// Real reconstructions are slower than the fake engines waitTerminal
	// was sized for, so poll with a sweep-scale deadline here.
	waitLong := func(id string) JobStatus {
		t.Helper()
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
			if err != nil {
				t.Fatal(err)
			}
			st := decodeStatus(t, resp)
			if JobState(st.State).Terminal() {
				return st
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatal("real-suite job never reached a terminal state")
		return JobStatus{}
	}

	// An ECG sweep and a goal query run end to end through the registry.
	sweep := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps",
		`{"options":{"scenario":"ecg-telemonitoring"},"space":{"bits":[6],"noise_steps":1,"m":[75]}}`))
	final := waitLong(sweep.ID)
	if final.State != string(StateCompleted) || final.Scenario != "ecg-telemonitoring" {
		t.Fatalf("ecg sweep: state %s scenario %s error %s", final.State, final.Scenario, final.Error)
	}
	if final.Result == nil || final.Result.Points != 2 { // {baseline, cs} x 1 noise x 1 bits
		t.Fatalf("ecg sweep outcome: %+v", final.Result)
	}
	srch := decodeStatus(t, postJSON(t, ts.URL+"/v1/search",
		`{"query":"max-snr","max_evaluations":4,"options":{"scenario":"ecg-telemonitoring"},"space":{"bits":[6],"noise_steps":2,"m":[75]}}`))
	sfinal := waitLong(srch.ID)
	if sfinal.State != string(StateCompleted) || sfinal.Scenario != "ecg-telemonitoring" {
		t.Fatalf("ecg search: state %s scenario %s error %s", sfinal.State, sfinal.Scenario, sfinal.Error)
	}
	if sfinal.Search == nil || len(sfinal.Search.Front) == 0 {
		t.Fatalf("ecg search outcome: %+v", sfinal.Search)
	}
}
