package serve

// Durable jobs: the Manager's write-ahead journal. When ManagerConfig.WAL
// is set, every accepted job appends a "job" record (fsynced — a job the
// client was told about must survive a power cut), every completed
// design-point evaluation appends a "row" record (unsynced: losing the
// tail re-evaluates exactly the tail), and every terminal transition
// appends an fsynced "state" record. Recover replays a journal produced
// by a previous process: terminal jobs come back as queryable history,
// and a sweep that was mid-flight when the process died resumes from its
// last journaled row — the journaled rows are never re-evaluated, and the
// resumed result cloud is bit-identical to an uninterrupted run
// (encoding/json round-trips float64 exactly).
//
// Forward compatibility: a record kind or a job kind this binary does not
// know (written by a future version) is skipped with a warning, never a
// startup failure.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"time"

	"efficsense/internal/core"
	"efficsense/internal/power"
	"efficsense/internal/wal"
)

// WAL record kinds (the wal.Record Kind discriminator).
const (
	walKindJob    = "job"
	walKindRow    = "row"
	walKindState  = "state"
	walKindTenant = "tenant"
)

// walPoint is the journal form of a core.DesignPoint.
type walPoint struct {
	Arch     string  `json:"arch"`
	Bits     int     `json:"bits"`
	LNANoise float64 `json:"noise"`
	M        int     `json:"m,omitempty"`
	CHold    float64 `json:"chold,omitempty"`
}

// walResult is the journal form of a core.Result: every field the NDJSON
// results stream and the outcome distillation read, so a replayed row is
// indistinguishable from a freshly evaluated one.
type walResult struct {
	Point    walPoint           `json:"p"`
	SNRdB    float64            `json:"snr"`
	Accuracy float64            `json:"acc"`
	TP       int                `json:"tp,omitempty"`
	TN       int                `json:"tn,omitempty"`
	FP       int                `json:"fp,omitempty"`
	FN       int                `json:"fn,omitempty"`
	Power    map[string]float64 `json:"pw,omitempty"`
	TotalW   float64            `json:"total_w"`
	AreaCaps float64            `json:"area"`
	Err      string             `json:"err,omitempty"`
}

func walResultOf(r core.Result) walResult {
	out := walResult{
		Point: walPoint{Arch: r.Point.Arch.String(), Bits: r.Point.Bits,
			LNANoise: r.Point.LNANoise, M: r.Point.M, CHold: r.Point.CHold},
		SNRdB: r.MeanSNRdB, Accuracy: r.Accuracy,
		TP: r.Confusion.TP, TN: r.Confusion.TN,
		FP: r.Confusion.FP, FN: r.Confusion.FN,
		TotalW: r.TotalPower, AreaCaps: r.AreaCaps,
	}
	if len(r.Power) > 0 {
		out.Power = make(map[string]float64, len(r.Power))
		for c, w := range r.Power {
			out.Power[string(c)] = w
		}
	}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	return out
}

func (w walResult) result() core.Result {
	arch, err := parseArch(w.Point.Arch)
	if err != nil {
		arch = core.ArchBaseline
	}
	r := core.Result{
		Point: core.DesignPoint{Arch: arch, Bits: w.Point.Bits,
			LNANoise: w.Point.LNANoise, M: w.Point.M, CHold: w.Point.CHold},
		MeanSNRdB: w.SNRdB, Accuracy: w.Accuracy,
		TotalPower: w.TotalW, AreaCaps: w.AreaCaps,
	}
	r.Confusion.TP, r.Confusion.TN = w.TP, w.TN
	r.Confusion.FP, r.Confusion.FN = w.FP, w.FN
	if len(w.Power) > 0 {
		r.Power = make(power.Breakdown, len(w.Power))
		for c, v := range w.Power {
			r.Power[power.Component(c)] = v
		}
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return r
}

// walJobRecord journals one accepted job: its identity plus the original
// wire request, so recovery re-derives options, space and points through
// exactly the submission pipeline.
type walJobRecord struct {
	ID        string         `json:"id"`
	Kind      string         `json:"kind"`
	Tenant    string         `json:"tenant,omitempty"`
	RequestID string         `json:"request_id,omitempty"`
	Created   time.Time      `json:"created"`
	Sweep     *SweepRequest  `json:"sweep,omitempty"`
	Search    *SearchRequest `json:"search,omitempty"`
}

// walRowRecord journals one completed evaluation, keyed by the job and
// the point's index in the job's original point order.
type walRowRecord struct {
	Job    string    `json:"job"`
	I      int       `json:"i"`
	Result walResult `json:"r"`
}

// walStateRecord journals a terminal transition. Sweep results live in
// their row records; a search job's outcome and front travel here (the
// driver's evaluations are not row-journaled — a search interrupted
// mid-flight re-runs from scratch, deterministically).
type walStateRecord struct {
	Job    string         `json:"job"`
	State  string         `json:"state"`
	Error  string         `json:"error,omitempty"`
	Search *SearchOutcome `json:"search,omitempty"`
	Front  []walResult    `json:"front,omitempty"`
}

// walWarn logs a durability problem; the journal is an enhancement, so
// journal failures degrade to log lines, never failed jobs.
func (m *Manager) walWarn(msg string, err error, attrs ...slog.Attr) {
	if m.cfg.Log == nil {
		return
	}
	base := append([]slog.Attr{slog.String("error", err.Error())}, attrs...)
	m.cfg.Log.LogAttrs(context.Background(), slog.LevelWarn, msg, base...)
}

// journalJob appends (and fsyncs) the job-accepted record. Callers hold
// m.mu; the job's spec fields are immutable from here on.
func (m *Manager) journalJob(job *Job, sweep *SweepRequest, srch *SearchRequest) {
	if m.cfg.WAL == nil {
		return
	}
	rec := walJobRecord{
		ID: job.ID, Kind: job.kind, Tenant: job.tenant,
		RequestID: job.requestID, Created: job.created,
		Sweep: sweep, Search: srch,
	}
	job.walJob = &rec
	if err := m.cfg.WAL.AppendSync(walKindJob, rec); err != nil {
		m.walWarn("wal: journaling job", err, slog.String("job_id", job.ID))
	}
}

// journalRow appends one completed evaluation (no fsync: the row rate is
// the sweep rate, and a lost tail only re-evaluates that tail).
func (m *Manager) journalRow(job *Job, i int, r core.Result) {
	if m.cfg.WAL == nil || job.kind != jobKindSweep {
		return
	}
	rec := walRowRecord{Job: job.ID, I: i, Result: walResultOf(r)}
	if err := m.cfg.WAL.Append(walKindRow, rec); err != nil {
		m.walWarn("wal: journaling row", err, slog.String("job_id", job.ID))
	}
}

// journalFinish appends (and fsyncs) the terminal-state record.
func (m *Manager) journalFinish(job *Job) {
	if m.cfg.WAL == nil {
		return
	}
	job.mu.Lock()
	rec := walStateRecord{Job: job.ID, State: string(job.state)}
	if job.err != nil {
		rec.Error = job.err.Error()
	}
	if job.kind == jobKindSearch {
		rec.Search = job.searchOut
		rec.Front = make([]walResult, len(job.results))
		for i, r := range job.results {
			rec.Front[i] = walResultOf(r)
		}
	}
	job.mu.Unlock()
	if err := m.cfg.WAL.AppendSync(walKindState, rec); err != nil {
		m.walWarn("wal: journaling terminal state", err, slog.String("job_id", job.ID))
	}
}

// walBucket is the journal form of one token-bucket level.
type walBucket struct {
	Tokens float64   `json:"tokens"`
	Last   time.Time `json:"last"`
}

// walTenantRecord journals a tenant's bucket levels after a token is
// spent. Last-record-wins on recovery, so the steady state is one live
// record per rate-limited tenant.
type walTenantRecord struct {
	Tenant string    `json:"tenant"`
	Submit walBucket `json:"submit"`
	Eval   walBucket `json:"eval"`
}

// journalTenant appends the tenant's current bucket levels (no fsync:
// losing the very last spend costs one token, while fsyncing every
// admission would put a disk flush on the request path). Without this
// record a restart would refill every bucket to burst — a crash-looping
// client could launder its own rate limit through SIGKILL. Callers hold
// m.mu.
func (m *Manager) journalTenant(ts *tenantState) {
	if m.cfg.WAL == nil || (ts.limits.SubmitRate <= 0 && ts.limits.EvalRate <= 0) {
		return
	}
	rec := walTenantRecord{
		Tenant: ts.name,
		Submit: walBucket{Tokens: ts.submit.tokens, Last: ts.submit.last},
		Eval:   walBucket{Tokens: ts.eval.tokens, Last: ts.eval.last},
	}
	if err := m.cfg.WAL.Append(walKindTenant, rec); err != nil {
		m.walWarn("wal: journaling tenant buckets", err, slog.String("tenant", ts.name))
	}
}

// compactWAL rewrites the journal as a snapshot of the still-tracked
// jobs — the clean-shutdown snapshot+truncate. Rows are reconstructed
// from each job's result cloud (points are unique within a space, so a
// result maps back to its original index); evicted jobs leave the
// journal entirely. Called after the drain, so every tracked job is
// terminal and quiescent.
func (m *Manager) compactWAL() error {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	// Deterministic snapshot order: by ID.
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k].ID < jobs[k-1].ID; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
	var records []wal.Record
	add := func(kind string, payload interface{}) error {
		line, err := wal.Encode(kind, payload)
		if err != nil {
			return err
		}
		rec, err := wal.Decode(line)
		if err != nil {
			return err
		}
		records = append(records, rec)
		return nil
	}
	for _, j := range jobs {
		j.mu.Lock()
		jobRec := j.walJob
		state := j.state
		results := j.results
		searchOut := j.searchOut
		var errMsg string
		if j.err != nil {
			errMsg = j.err.Error()
		}
		j.mu.Unlock()
		if jobRec == nil || !state.Terminal() {
			continue // journalling was off for this job, or it never drained
		}
		if err := add(walKindJob, jobRec); err != nil {
			return err
		}
		if j.kind == jobKindSweep {
			idx := make(map[core.DesignPoint]int, len(j.points))
			for i, p := range j.points {
				idx[p] = i
			}
			for _, r := range results {
				if i, ok := idx[r.Point]; ok {
					if err := add(walKindRow, walRowRecord{Job: j.ID, I: i, Result: walResultOf(r)}); err != nil {
						return err
					}
				}
			}
		}
		st := walStateRecord{Job: j.ID, State: string(state), Error: errMsg}
		if j.kind == jobKindSearch {
			st.Search = searchOut
			st.Front = make([]walResult, len(results))
			for i, r := range results {
				st.Front[i] = walResultOf(r)
			}
		}
		if err := add(walKindState, st); err != nil {
			return err
		}
	}
	// One tenant record each, so restored quota state survives the
	// snapshot+truncate too. Deterministic order: by tenant name.
	m.mu.Lock()
	tenantRecs := make([]walTenantRecord, 0, len(m.tenants))
	for _, ts := range m.tenants {
		if ts.limits.SubmitRate <= 0 && ts.limits.EvalRate <= 0 {
			continue
		}
		tenantRecs = append(tenantRecs, walTenantRecord{
			Tenant: ts.name,
			Submit: walBucket{Tokens: ts.submit.tokens, Last: ts.submit.last},
			Eval:   walBucket{Tokens: ts.eval.tokens, Last: ts.eval.last},
		})
	}
	m.mu.Unlock()
	for i := 1; i < len(tenantRecs); i++ {
		for k := i; k > 0 && tenantRecs[k].Tenant < tenantRecs[k-1].Tenant; k-- {
			tenantRecs[k], tenantRecs[k-1] = tenantRecs[k-1], tenantRecs[k]
		}
	}
	for _, tr := range tenantRecs {
		if err := add(walKindTenant, tr); err != nil {
			return err
		}
	}
	return m.cfg.WAL.Compact(records)
}

// Recover replays a journal produced by a previous process (the records
// wal.Open returned for the Manager's configured log). Terminal jobs are
// restored as queryable history with their results and outcomes;
// in-flight sweeps are re-enqueued with their journaled rows attached,
// so dispatch evaluates only the complement; in-flight searches re-run
// from scratch (the driver is deterministic). Records of unknown kinds
// and jobs of unknown kinds — both the signature of a journal written by
// a newer version — are skipped with a warning, never a startup failure.
// Replaying the same journal twice (doubled records) is idempotent: jobs
// key by ID, rows by (job, index), last record wins.
func (m *Manager) Recover(records []wal.Record) error {
	type jobEntry struct {
		rec  walJobRecord
		rows map[int]core.Result
		st   *walStateRecord
	}
	byID := make(map[string]*jobEntry)
	var order []string
	tenantRecs := make(map[string]walTenantRecord)
	for _, rec := range records {
		switch rec.Kind {
		case walKindJob:
			var jr walJobRecord
			if err := json.Unmarshal(rec.Data, &jr); err != nil || jr.ID == "" {
				m.walWarn("wal: skipping malformed job record", errOrDefault(err))
				continue
			}
			if e, ok := byID[jr.ID]; ok {
				e.rec = jr // doubled journal: last record wins, one job table
				continue
			}
			byID[jr.ID] = &jobEntry{rec: jr, rows: make(map[int]core.Result)}
			order = append(order, jr.ID)
		case walKindRow:
			var rr walRowRecord
			if err := json.Unmarshal(rec.Data, &rr); err != nil {
				m.walWarn("wal: skipping malformed row record", errOrDefault(err))
				continue
			}
			if e, ok := byID[rr.Job]; ok {
				e.rows[rr.I] = rr.Result.result()
			}
		case walKindState:
			var sr walStateRecord
			if err := json.Unmarshal(rec.Data, &sr); err != nil {
				m.walWarn("wal: skipping malformed state record", errOrDefault(err))
				continue
			}
			if e, ok := byID[sr.Job]; ok {
				st := sr
				e.st = &st
			}
		case walKindTenant:
			var tr walTenantRecord
			if err := json.Unmarshal(rec.Data, &tr); err != nil || tr.Tenant == "" {
				m.walWarn("wal: skipping malformed tenant record", errOrDefault(err))
				continue
			}
			tenantRecs[tr.Tenant] = tr // last record wins
		default:
			m.walWarn("wal: skipping record of unknown kind",
				fmt.Errorf("kind %q (written by a newer version?)", rec.Kind))
		}
	}
	m.mu.Lock()
	for name, tr := range tenantRecs {
		ts := m.tenantLocked(name)
		ts.submit.restore(tr.Submit.Tokens, tr.Submit.Last)
		ts.eval.restore(tr.Eval.Tokens, tr.Eval.Last)
	}
	m.mu.Unlock()
	for _, id := range order {
		e := byID[id]
		m.bumpSeq(id)
		switch e.rec.Kind {
		case jobKindSweep:
			if err := m.recoverSweep(e.rec, e.rows, e.st); err != nil {
				m.walWarn("wal: skipping unrecoverable sweep job", err,
					slog.String("job_id", id))
			}
		case jobKindSearch:
			if err := m.recoverSearch(e.rec, e.st); err != nil {
				m.walWarn("wal: skipping unrecoverable search job", err,
					slog.String("job_id", id))
			}
		default:
			// A job kind from a future version: skip it, keep starting.
			m.walWarn("wal: skipping job of unknown kind",
				fmt.Errorf("kind %q (written by a newer version?)", e.rec.Kind),
				slog.String("job_id", id))
		}
	}
	return nil
}

func errOrDefault(err error) error {
	if err == nil {
		return errors.New("incomplete record")
	}
	return err
}

// bumpSeq keeps new job IDs from colliding with replayed ones.
func (m *Manager) bumpSeq(id string) {
	dash := strings.LastIndexByte(id, '-')
	if dash < 0 {
		return
	}
	n, err := strconv.ParseInt(id[dash+1:], 10, 64)
	if err != nil {
		return
	}
	m.mu.Lock()
	if n > m.seq {
		m.seq = n
	}
	m.mu.Unlock()
}

// recoverSweep rebuilds one journaled sweep job: terminal jobs become
// queryable history, in-flight ones re-enqueue with their journaled rows
// attached so only the complement is evaluated.
func (m *Manager) recoverSweep(rec walJobRecord, rows map[int]core.Result, st *walStateRecord) error {
	var req SweepRequest
	if rec.Sweep != nil {
		req = *rec.Sweep
	}
	opts := req.Options.apply(m.cfg.Defaults)
	if _, err := resolveScenario(&opts); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	space, err := req.Space.space(opts)
	if err != nil {
		return fmt.Errorf("space: %w", err)
	}
	points := space.Points()
	job := m.newJob(opts, space, points)
	job.ID = rec.ID
	job.requestID = rec.RequestID
	job.tenant = rec.Tenant
	if job.tenant == "" {
		job.tenant = DefaultTenant
	}
	job.created = rec.Created
	job.walJob = &rec

	if st != nil && JobState(st.State).Terminal() {
		// History: rebuild the terminal job exactly as finish left it.
		results := make([]core.Result, 0, len(rows))
		errs := 0
		for i := 0; i < len(points); i++ {
			if r, ok := rows[i]; ok {
				results = append(results, r)
				if r.Err != nil {
					errs++
				}
			}
		}
		job.state = JobState(st.State)
		job.results = results
		job.done, job.total = len(results), len(points)
		if st.Error != "" {
			job.err = errors.New(st.Error)
		}
		partial := job.state != StateCompleted || errs > 0
		if len(results) > 0 || job.state == StateCompleted {
			job.outcome = outcomeOf(results, job.total, partial, opts.MinAccuracy)
		}
		job.appendEventLocked("state", []byte(fmt.Sprintf(`{"state":%q,"replayed":true}`, job.state)))
		m.trackReplayedJob(job)
		m.walReplayedJobs.Add(1)
		m.walReplayedRows.Add(int64(len(results)))
		m.logJob(job, "sweep replayed from wal",
			slog.String("state", string(job.state)), slog.Int("rows", len(results)))
		return nil
	}

	// In-flight: resume from the journaled rows.
	if len(rows) > 0 {
		job.replayed = rows
	}
	m.mu.Lock()
	m.jobs[job.ID] = job
	ts := m.tenantLocked(job.tenant)
	m.wg.Add(1)
	m.enqueueLocked(ts, job)
	m.mu.Unlock()
	m.walResumedJobs.Add(1)
	m.walReplayedRows.Add(int64(len(rows)))
	m.logJob(job, "sweep resumed from wal",
		slog.Int("replayed_rows", len(rows)), slog.Int("points", len(points)))
	return nil
}

// recoverSearch rebuilds one journaled search job. Terminal jobs replay
// with their stored outcome and front; an in-flight search re-runs from
// scratch — the driver is deterministic, and its evaluations flow
// through the shared memoisation cache anyway.
func (m *Manager) recoverSearch(rec walJobRecord, st *walStateRecord) error {
	var req SearchRequest
	if rec.Search != nil {
		req = *rec.Search
	}
	opts := req.Options.apply(m.cfg.Defaults)
	if _, err := resolveScenario(&opts); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	spec, err := req.spec()
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	space, err := req.Space.space(opts)
	if err != nil {
		return fmt.Errorf("space: %w", err)
	}
	spec.Seed = req.Seed
	spec.MaxEvaluations = req.MaxEvaluations
	if spec.MaxEvaluations <= 0 {
		spec.MaxEvaluations = min(max(space.Size()/10, 1), m.cfg.MaxSearchEvaluations)
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	job := m.newJob(opts, space, nil)
	job.kind = jobKindSearch
	job.ID = rec.ID
	job.requestID = rec.RequestID
	job.tenant = rec.Tenant
	if job.tenant == "" {
		job.tenant = DefaultTenant
	}
	job.created = rec.Created
	job.walJob = &rec
	job.spec = spec
	job.total = spec.MaxEvaluations
	if req.ProbeRecords > 0 && req.ProbeRecords != opts.Records {
		probe := opts
		probe.Records = req.ProbeRecords
		job.probeOpts = &probe
	}

	if st != nil && JobState(st.State).Terminal() {
		job.state = JobState(st.State)
		job.searchOut = st.Search
		job.results = make([]core.Result, len(st.Front))
		for i, w := range st.Front {
			job.results[i] = w.result()
		}
		if st.Search != nil {
			job.done, job.total = st.Search.Evaluations, st.Search.Budget
		}
		if st.Error != "" {
			job.err = errors.New(st.Error)
		}
		job.appendEventLocked("state", []byte(fmt.Sprintf(`{"state":%q,"replayed":true}`, job.state)))
		m.trackReplayedJob(job)
		m.walReplayedJobs.Add(1)
		m.logJob(job, "search replayed from wal", slog.String("state", string(job.state)))
		return nil
	}

	m.mu.Lock()
	m.jobs[job.ID] = job
	ts := m.tenantLocked(job.tenant)
	m.wg.Add(1)
	m.enqueueLocked(ts, job)
	m.mu.Unlock()
	m.walResumedJobs.Add(1)
	m.logJob(job, "search restarted from wal", slog.Int("budget", spec.MaxEvaluations))
	return nil
}

// trackReplayedJob registers a terminal replayed job and arms its TTL
// eviction, exactly as finish would have.
func (m *Manager) trackReplayedJob(job *Job) {
	m.mu.Lock()
	m.jobs[job.ID] = job
	m.mu.Unlock()
	m.scheduleEvict(job)
}
