package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/obs"
)

// logSink is a slog.Handler that records every log line (message, level,
// resolved attributes) so tests can assert what the serving path logged.
type logSink struct {
	mu   sync.Mutex
	recs []sunkRecord
}

type sunkRecord struct {
	msg   string
	level slog.Level
	attrs map[string]string
}

type sinkHandler struct {
	sink *logSink
	base []slog.Attr
}

func (h sinkHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h sinkHandler) Handle(_ context.Context, r slog.Record) error {
	attrs := make(map[string]string, r.NumAttrs()+len(h.base))
	for _, a := range h.base {
		attrs[a.Key] = a.Value.String()
	}
	r.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value.String()
		return true
	})
	h.sink.mu.Lock()
	defer h.sink.mu.Unlock()
	h.sink.recs = append(h.sink.recs, sunkRecord{msg: r.Message, level: r.Level, attrs: attrs})
	return nil
}

func (h sinkHandler) WithAttrs(as []slog.Attr) slog.Handler {
	base := append(append([]slog.Attr{}, h.base...), as...)
	return sinkHandler{sink: h.sink, base: base}
}

func (h sinkHandler) WithGroup(string) slog.Handler { return h }

// find returns the first record with the given message whose attributes
// include all of want, polling briefly: lifecycle records are written by
// job goroutines and may land just after the status API turns terminal.
func (s *logSink) find(t *testing.T, msg string, want map[string]string) sunkRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
	scan:
		for _, r := range s.recs {
			if r.msg != msg {
				continue
			}
			for k, v := range want {
				if r.attrs[k] != v {
					continue scan
				}
			}
			s.mu.Unlock()
			return r
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("no %q record with attrs %v", msg, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newLoggedServer is newTestServer with a log sink wired into both the
// HTTP layer and the job manager, so request and lifecycle records can
// be asserted together.
func newLoggedServer(t *testing.T, delay time.Duration, cfg ManagerConfig) (*httptest.Server, *Manager, *logSink) {
	t.Helper()
	sink := &logSink{}
	logger := slog.New(sinkHandler{sink: sink})
	eval := &slowEval{delay: delay}
	store := cache.New(128)
	eng, err := dse.NewSweep(eval,
		dse.WithCache(store), dse.WithWorkers(2), dse.WithEvaluatorID("test-eval"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engines = func(opts experiments.Options) (Engine, error) { return eng, nil }
	cfg.Cache = store
	cfg.Log = logger
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, logger))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		ts.Close()
	})
	return ts, mgr, sink
}

// decodeErrorEnvelope parses the v1 error body and fails on anything
// that is not exactly {"error": {"code", "message"}}.
func decodeErrorEnvelope(t *testing.T, resp *http.Response) ErrorDetail {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env errorJSON
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("error body is not the v1 envelope: %v\n%s", err, raw)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("error envelope missing code or message: %s", raw)
	}
	return env.Error
}

// TestErrorContract drives every stateless error path through the full
// stack and pins the triple the v1 contract promises: HTTP status,
// machine-readable code, and the caller's X-Request-ID echoed back.
func TestErrorContract(t *testing.T) {
	ts, _, _ := newLoggedServer(t, 20*time.Millisecond, ManagerConfig{})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 ErrorCode
	}{
		{"negative timeout", "POST", "/v1/evaluate",
			`{"point":{"arch":"baseline","bits":8,"lna_noise":1e-6},"timeout_ms":-5}`,
			400, CodeBadRequest},
		{"trailing garbage", "POST", "/v1/evaluate",
			`{"point":{"arch":"baseline","bits":8,"lna_noise":1e-6}} trailing`,
			400, CodeBadRequest},
		{"second JSON value", "POST", "/v1/evaluate",
			`{"point":{"arch":"baseline","bits":8,"lna_noise":1e-6}}{"x":1}`,
			400, CodeBadRequest},
		{"unknown field", "POST", "/v1/evaluate", `{"pont":{}}`, 400, CodeBadRequest},
		{"bad architecture", "POST", "/v1/sweeps",
			`{"space":{"architectures":["warp"]}}`, 400, CodeBadRequest},
		{"unknown job status", "GET", "/v1/sweeps/sweep-404", "", 404, CodeNotFound},
		{"unknown job results", "GET", "/v1/sweeps/sweep-404/results", "", 404, CodeNotFound},
		{"unknown job cancel", "DELETE", "/v1/sweeps/sweep-404", "", 404, CodeNotFound},
		{"bad state filter", "GET", "/v1/sweeps?state=bogus", "", 400, CodeBadRequest},
		{"deadline", "POST", "/v1/evaluate",
			`{"point":{"arch":"baseline","bits":9,"lna_noise":3e-6},"timeout_ms":1}`,
			504, CodeDeadline},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			const rid = "err-contract-rid"
			req.Header.Set("X-Request-ID", rid)
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			if got := resp.Header.Get("X-Request-ID"); got != rid {
				t.Errorf("X-Request-ID echo: got %q, want %q", got, rid)
			}
			detail := decodeErrorEnvelope(t, resp)
			if detail.Code != tc.wantCode {
				t.Errorf("error code %q, want %q (message %q)", detail.Code, tc.wantCode, detail.Message)
			}
		})
	}
}

// TestErrorContractStatefulCodes covers the codes that need the server
// in a particular state: conflict (results of a running job), saturated
// (all slots busy) and shutting_down (draining).
func TestErrorContractStatefulCodes(t *testing.T) {
	ts, mgr, _ := newLoggedServer(t, 30*time.Millisecond, ManagerConfig{MaxConcurrentJobs: 1})

	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	if st.ID == "" {
		t.Fatal("submit returned no job id")
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results of running job: %d, want 409", resp.StatusCode)
	}
	if d := decodeErrorEnvelope(t, resp); d.Code != CodeConflict {
		t.Errorf("conflict code %q", d.Code)
	}

	resp = postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit with full slots: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if d := decodeErrorEnvelope(t, resp); d.Code != CodeSaturated {
		t.Errorf("saturated code %q", d.Code)
	}

	drained := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		close(drained)
	}()
	for !mgr.Draining() {
		time.Sleep(time.Millisecond)
	}
	resp = postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	// A draining daemon is usually restarting: the 503 must tell the
	// client when retrying is worthwhile, exactly like the 429s do.
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("503 while draining carries Retry-After %q, want a positive integer",
			resp.Header.Get("Retry-After"))
	}
	if d := decodeErrorEnvelope(t, resp); d.Code != CodeShuttingDown {
		t.Errorf("shutting_down code %q", d.Code)
	}
	<-drained
}

// TestRequestIDPropagation is the end-to-end request-ID check: a
// caller-supplied X-Request-ID is echoed on the response, stored on the
// job (status + listing), and stamped on every HTTP and job lifecycle
// log record the request produced.
func TestRequestIDPropagation(t *testing.T) {
	ts, _, sink := newLoggedServer(t, 0, ManagerConfig{})

	const rid = "client-rid-42"
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweeps", strings.NewReader(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", rid)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("X-Request-ID echo: got %q, want %q", got, rid)
	}
	st := decodeStatus(t, resp)
	if st.RequestID != rid {
		t.Fatalf("submit status request_id %q, want %q", st.RequestID, rid)
	}

	st = waitTerminal(t, ts.URL, st.ID)
	if st.RequestID != rid {
		t.Fatalf("terminal status request_id %q, want %q", st.RequestID, rid)
	}

	// The listing row carries the same request_id.
	lresp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var list JobListJSON
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if list.Count != 1 || len(list.Jobs) != 1 {
		t.Fatalf("listing: %+v", list)
	}
	if list.Jobs[0].ID != st.ID || list.Jobs[0].RequestID != rid {
		t.Fatalf("listing row: %+v", list.Jobs[0])
	}

	// Every log record of the request and the job lifecycle carries it.
	want := map[string]string{"request_id": rid}
	sink.find(t, "http request", want)
	accepted := sink.find(t, "sweep accepted", want)
	if accepted.attrs["job_id"] != st.ID {
		t.Errorf("sweep accepted job_id %q, want %q", accepted.attrs["job_id"], st.ID)
	}
	sink.find(t, "sweep started", want)
	finished := sink.find(t, "sweep finished", want)
	if finished.attrs["state"] != string(StateCompleted) {
		t.Errorf("sweep finished state %q", finished.attrs["state"])
	}

	// An unsafe caller ID (embedded whitespace) is replaced with a fresh
	// valid one rather than reflected.
	req, err = http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "two words")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "two words" || !obs.ValidRequestID(got) {
		t.Fatalf("invalid caller ID handling: echoed %q", got)
	}
}

// TestMetricsHistogramExposition checks the two new histogram families
// appear in /metrics with the Prometheus shape: per-endpoint le-labelled
// buckets, a +Inf bucket, and _sum/_count series.
func TestMetricsHistogramExposition(t *testing.T) {
	ts, _, _ := newLoggedServer(t, 0, ManagerConfig{})

	// One timed request and one real evaluation so both families have data.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/evaluate", `{"point":{"arch":"baseline","bits":8,"lna_noise":1e-6}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d", resp.StatusCode)
	}
	resp.Body.Close()

	exp := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		"# TYPE efficsense_http_request_duration_seconds histogram",
		`efficsense_http_request_duration_seconds_bucket{endpoint="GET /healthz",le="0.001"}`,
		`efficsense_http_request_duration_seconds_bucket{endpoint="GET /healthz",le="+Inf"}`,
		`efficsense_http_request_duration_seconds_bucket{endpoint="POST /v1/evaluate",le="+Inf"}`,
		`efficsense_http_request_duration_seconds_sum{endpoint="GET /healthz"}`,
		`efficsense_http_request_duration_seconds_count{endpoint="GET /healthz"}`,
		"# TYPE efficsense_eval_duration_seconds histogram",
		`efficsense_eval_duration_seconds_bucket{le="0.0001"}`,
		`efficsense_eval_duration_seconds_bucket{le="+Inf"}`,
		"efficsense_eval_duration_seconds_sum",
		"efficsense_eval_duration_seconds_count",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if n := metricValue(t, exp, "efficsense_eval_duration_seconds_count"); n < 1 {
		t.Errorf("eval histogram count %g after a real evaluation", n)
	}

	// The healthz bucket counts are cumulative: +Inf carries at least one
	// observation and every bucket line parses as an integer.
	var infCount float64
	for _, line := range strings.Split(exp, "\n") {
		if strings.HasPrefix(line, `efficsense_http_request_duration_seconds_bucket{endpoint="GET /healthz",le="+Inf"} `) {
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%f", &infCount); err != nil {
				t.Fatalf("unparsable bucket line %q", line)
			}
		}
	}
	if infCount < 1 {
		t.Errorf("healthz +Inf bucket %g, want >= 1", infCount)
	}
}

// TestStatusReportsEvalQuantiles checks GET /v1/sweeps/{id} surfaces
// the engine's p50/p90/p99 evaluation-duration quantiles once the sweep
// has scored real points.
func TestStatusReportsEvalQuantiles(t *testing.T) {
	ts, _, _ := newLoggedServer(t, 3*time.Millisecond, ManagerConfig{})
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	st = waitTerminal(t, ts.URL, st.ID)
	if st.State != string(StateCompleted) {
		t.Fatalf("sweep state %q", st.State)
	}
	if st.Metrics == nil {
		t.Fatal("terminal status has no metrics")
	}
	m := st.Metrics
	if m.P50EvalMS <= 0 || m.P90EvalMS < m.P50EvalMS || m.P99EvalMS < m.P90EvalMS {
		t.Fatalf("quantiles not ordered/positive: p50=%g p90=%g p99=%g",
			m.P50EvalMS, m.P90EvalMS, m.P99EvalMS)
	}
	// The evaluator sleeps 3ms per point; the quantile interpolates
	// within its bucket, so the estimate may undershoot but never below
	// the containing (2.5ms, 5ms] bucket's lower edge.
	if m.P50EvalMS < 2.5 {
		t.Errorf("p50 %gms below the containing bucket's 2.5ms lower edge", m.P50EvalMS)
	}
}

// TestJobListingAndStateFilter covers GET /v1/sweeps: newest-first
// ordering, the state filter, and an empty filter result.
func TestJobListingAndStateFilter(t *testing.T) {
	ts, _, _ := newLoggedServer(t, 0, ManagerConfig{})

	first := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	waitTerminal(t, ts.URL, first.ID)
	second := decodeStatus(t, postJSON(t, ts.URL+"/v1/sweeps", smallSweep))
	waitTerminal(t, ts.URL, second.ID)

	fetch := func(query string) JobListJSON {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/sweeps" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list%s status %d", query, resp.StatusCode)
		}
		var list JobListJSON
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return list
	}

	list := fetch("")
	if list.Count != 2 || len(list.Jobs) != 2 {
		t.Fatalf("full listing: %+v", list)
	}
	if list.Jobs[0].ID != second.ID || list.Jobs[1].ID != first.ID {
		t.Fatalf("listing not newest-first: %s then %s", list.Jobs[0].ID, list.Jobs[1].ID)
	}
	for _, row := range list.Jobs {
		if row.State != string(StateCompleted) || row.StatusURL == "" {
			t.Fatalf("listing row: %+v", row)
		}
	}

	if got := fetch("?state=completed"); got.Count != 2 {
		t.Fatalf("state=completed count %d", got.Count)
	}
	if got := fetch("?state=running"); got.Count != 0 || got.Jobs == nil {
		t.Fatalf("state=running: %+v (jobs must be [] not null)", got)
	}
}

// TestOpsHandlerAndPublicIsolation checks the debug surface: the ops
// handler serves pprof/expvar/build info, and none of it is mounted on
// the public API server.
func TestOpsHandlerAndPublicIsolation(t *testing.T) {
	ops := httptest.NewServer(NewOpsHandler())
	defer ops.Close()

	for _, path := range []string{"/", "/debug/pprof/", "/debug/vars", "/debug/build"} {
		resp, err := http.Get(ops.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("ops %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("ops %s: empty body", path)
		}
	}

	resp, err := http.Get(ops.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("goroutine profile: status %d body %q…", resp.StatusCode, firstN(string(body), 60))
	}

	ts, _, _ := newLoggedServer(t, 0, ManagerConfig{})
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/debug/build"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("public %s: status %d, want 404 (debug surface leaked)", path, resp.StatusCode)
		}
	}
}

func firstN(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
