package serve

import (
	"context"
	"fmt"
	"sync"

	"efficsense/internal/cache"
	"efficsense/internal/cluster"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/scenario"
)

// Engine is the slice of the sweep engine the serving layer depends on.
// *dse.Sweep implements it; tests substitute engines over fake
// evaluators.
type Engine interface {
	RunWithHook(ctx context.Context, points []core.DesignPoint, hook func(dse.Event)) ([]core.Result, error)
	Metrics() dse.Snapshot
}

// EngineFunc resolves the engine serving one option set. Implementations
// must return the same Engine for equal options, so a repeated sweep of
// the same space lands on a warm memoisation cache. Resolution may be
// expensive (the production implementation trains a detector on first
// use of an option set); the Manager calls it from job goroutines, never
// from request handlers that must stay fast.
type EngineFunc func(opts experiments.Options) (Engine, error)

// DefaultCacheEntries bounds the daemon's shared evaluation cache when
// the operator does not pick a capacity. Results are a few hundred
// bytes each, so the default costs tens of megabytes at worst while a
// paper-scale sweep (~10³ points) still fits entirely warm.
const DefaultCacheEntries = 65536

// SuiteEngines is the production EngineFunc: one experiments.Suite per
// distinct option set, every suite sharing a single bounded memoisation
// cache (a sharded LRU with singleflight de-duplication, so the
// daemon's memory stays provably bounded under sustained distinct
// traffic and concurrent identical requests evaluate once). Cache keys
// embed the evaluator fingerprint, so the sharing is safe by
// construction; the payoff is that every request against one option set
// — sweeps, re-sweeps, single-point evaluations — reuses each other's
// evaluations.
type SuiteEngines struct {
	mu     sync.Mutex
	cache  *cache.LRU
	suites map[string]*experiments.Suite
	peers  *cluster.Peers
}

// NewSuiteEngines builds an empty provider around a fresh shared
// bounded cache; cacheEntries <= 0 selects DefaultCacheEntries.
func NewSuiteEngines(cacheEntries int) *SuiteEngines {
	if cacheEntries <= 0 {
		cacheEntries = DefaultCacheEntries
	}
	return &SuiteEngines{
		cache:  cache.New(cacheEntries),
		suites: make(map[string]*experiments.Suite),
	}
}

// Cache exposes the shared memoisation store (for /metrics exposition).
func (se *SuiteEngines) Cache() *cache.LRU { return se.cache }

// UseCluster puts the provider in fleet mode: every engine built from
// here on fills remotely-owned cache misses through the peer group
// before computing. Call once, before serving — membership changes go
// through the Peers client, not through this method.
func (se *SuiteEngines) UseCluster(p *cluster.Peers) { se.peers = p }

// optionsKey canonicalises an option set: two option sets that build
// equivalent evaluators map to the same key. Sinks (Progress, Trace),
// the cache pointer, the batch size and the retry policy are
// deliberately excluded — they change how points are dispatched, never
// what a point evaluates to, and retry/batch size are server-wide
// defaults (not settable over the wire), so they never split
// otherwise-identical suites.
func optionsKey(o experiments.Options) string {
	// The scenario is part of the evaluator identity: an unset name
	// canonicalises to the default, so "no scenario" and the default
	// scenario share one suite (they are the same workload by contract).
	name := o.Scenario
	if name == "" {
		name = scenario.DefaultName
	}
	return fmt.Sprintf("scn:%s|s%d|r%d|t%d|n%d|w%d|e%d|a%g|win%g",
		name, o.Seed, o.Records, o.TrainRecords, o.NoiseSteps, o.Workers,
		o.Epochs, o.MinAccuracy, o.WindowSeconds)
}

// Engine returns the (possibly shared) engine for opts, building the
// backing suite on first use. The build — detector training, evaluator
// precomputation — happens lazily inside the suite, on the calling
// goroutine's first sweep; a misconfigured option set surfaces as an
// error, not a panic.
func (se *SuiteEngines) Engine(opts experiments.Options) (eng Engine, err error) {
	opts.Progress, opts.Trace = nil, nil
	opts.Cache = se.cache
	if se.peers != nil {
		// The peering cache carries this option set's wire spec so the
		// owner evaluates exactly what this suite would; it wraps (and
		// shares) the same LRU, so local behaviour is unchanged.
		opts.Cache = newClusterCache(se.cache, se.peers, opts)
	}
	suite := experiments.NewSuite(opts)
	key := optionsKey(suite.Options())

	se.mu.Lock()
	if existing, ok := se.suites[key]; ok {
		suite = existing
	} else {
		se.suites[key] = suite
	}
	se.mu.Unlock()

	// The suite's lazy init panics on an invalid configuration; degrade
	// that into an error the job layer can report.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("building evaluation suite: %v", r)
			se.mu.Lock()
			if se.suites[key] == suite {
				delete(se.suites, key)
			}
			se.mu.Unlock()
		}
	}()
	return suite.Engine(), nil
}

// Suites reports how many distinct option sets have been materialised.
func (se *SuiteEngines) Suites() int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return len(se.suites)
}
