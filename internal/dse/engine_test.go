package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/core"
)

// fakeEvaluator is a deterministic PointEvaluator for engine tests: no
// EEG synthesis, optional per-point delay, optional panic injection.
type fakeEvaluator struct {
	delay   time.Duration
	panicOn func(core.DesignPoint) bool
	calls   atomic.Int64
}

func (f *fakeEvaluator) Evaluate(p core.DesignPoint) core.Result {
	f.calls.Add(1)
	if f.panicOn != nil && f.panicOn(p) {
		panic(fmt.Sprintf("injected failure at %s", p))
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return core.Result{
		Point:      p,
		MeanSNRdB:  float64(p.Bits),
		Accuracy:   0.99,
		TotalPower: p.LNANoise,
		AreaCaps:   float64(p.M),
	}
}

func fakePoints(n int) []core.DesignPoint {
	pts := make([]core.DesignPoint, n)
	for i := range pts {
		pts[i] = core.DesignPoint{
			Arch: core.ArchCS, Bits: 6 + i%3, LNANoise: float64(i+1) * 1e-6, M: 75 + i,
		}
	}
	return pts
}

func TestNewSweepValidation(t *testing.T) {
	if _, err := NewSweep(nil); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	var nilEval *core.Evaluator
	if _, err := NewSweep(nilEval); err == nil {
		t.Fatal("typed-nil *core.Evaluator accepted")
	}
	if _, err := NewSweep(&fakeEvaluator{}, WithWorkers(-2)); err == nil {
		t.Fatal("negative worker count accepted")
	}
	if _, err := NewSweep(&fakeEvaluator{}, WithEvaluatorID("")); err == nil {
		t.Fatal("empty evaluator ID accepted")
	}
	s, err := NewSweep(&fakeEvaluator{}, WithWorkers(0), WithProgress(nil), WithCache(nil), WithTrace(nil))
	if err != nil {
		t.Fatalf("valid configuration rejected: %v", err)
	}
	if s.EvaluatorID() == "" {
		t.Fatal("missing anonymous evaluator ID")
	}
}

func TestRunEmptyAndNilContext(t *testing.T) {
	s, err := NewSweep(&fakeEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1012 nil context tolerance is part of the API contract
	rs, err := s.Run(nil, nil)
	if err != nil || len(rs) != 0 {
		t.Fatalf("empty run: %v, %d results", err, len(rs))
	}
}

func TestRunReturnsPointOrder(t *testing.T) {
	fe := &fakeEvaluator{}
	s, err := NewSweep(fe, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(100)
	rs, err := s.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(pts) {
		t.Fatalf("result count %d", len(rs))
	}
	for i, r := range rs {
		if r.Point != pts[i] {
			t.Fatalf("result %d out of order", i)
		}
	}
	if got := fe.calls.Load(); got != int64(len(pts)) {
		t.Fatalf("evaluator called %d times", got)
	}
}

func TestRunCancellationReturnsPartialResultsPromptly(t *testing.T) {
	const (
		delay   = 20 * time.Millisecond
		nPoints = 64
		workers = 4
	)
	fe := &fakeEvaluator{delay: delay}
	s, err := NewSweep(fe, WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * delay)
		cancel()
	}()
	start := time.Now()
	rs, err := s.Run(ctx, fakePoints(nPoints))
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Full run would take nPoints/workers * delay = 320 ms; cancellation
	// must return within one in-flight point of the cancel instant.
	if elapsed > 8*delay {
		t.Fatalf("cancellation took %v, want well under the full sweep time", elapsed)
	}
	if len(rs) == 0 || len(rs) >= nPoints {
		t.Fatalf("partial results %d of %d", len(rs), nPoints)
	}
	for i, r := range rs {
		if r.Err != nil || r.TotalPower <= 0 {
			t.Fatalf("partial result %d incomplete: %+v", i, r)
		}
	}
	// The evaluator was never asked for the undispatched tail.
	if got := fe.calls.Load(); got >= int64(nPoints) {
		t.Fatalf("evaluator saw %d calls after cancellation", got)
	}
}

func TestRunRecoversPanicsWithoutLosingOtherPoints(t *testing.T) {
	bad := func(p core.DesignPoint) bool { return p.M == 80 }
	fe := &fakeEvaluator{panicOn: bad}
	s, err := NewSweep(fe, WithWorkers(4), WithCache(NewMemoryCache()))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(20)
	rs, err := s.Run(context.Background(), pts)
	if err != nil {
		t.Fatalf("panicking point must not fail the run: %v", err)
	}
	nBad := 0
	for i, r := range rs {
		if bad(pts[i]) {
			nBad++
			if r.Err == nil {
				t.Fatalf("point %d should carry the panic error", i)
			}
			if r.TotalPower != 0 {
				t.Fatalf("degraded point %d carries data", i)
			}
		} else if r.Err != nil || r.TotalPower <= 0 {
			t.Fatalf("healthy point %d lost: %+v", i, r)
		}
	}
	if nBad != 1 {
		t.Fatalf("expected exactly one injected failure, saw %d", nBad)
	}
	if got := s.Metrics().Panics; got != 1 {
		t.Fatalf("panic counter %d", got)
	}
	// Error results are not cached: a second run retries the bad point.
	before := fe.calls.Load()
	if _, err := s.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if got := fe.calls.Load() - before; got != 1 {
		t.Fatalf("second run re-evaluated %d points, want only the failed one", got)
	}
	// Fronts and optima exclude the degraded result.
	if front := ParetoFront(rs, QualitySNR); len(front) == 0 {
		t.Fatal("front empty")
	} else {
		for _, r := range front {
			if r.Err != nil {
				t.Fatal("error result leaked into the Pareto front")
			}
		}
	}
	if best, ok := Optimum(rs, QualityAccuracy, 0); !ok || best.Err != nil {
		t.Fatal("optimum selection mishandled the degraded result")
	}
}

func TestCacheSharingIsKeyedOnEvaluatorIdentity(t *testing.T) {
	cache := NewMemoryCache()
	pts := fakePoints(10)

	feA, feB := &fakeEvaluator{}, &fakeEvaluator{}
	a, _ := NewSweep(feA, WithCache(cache))
	b, _ := NewSweep(feB, WithCache(cache))
	if _, err := a.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	// Anonymous evaluators must never share entries.
	if got := feB.calls.Load(); got != int64(len(pts)) {
		t.Fatalf("anonymous evaluators shared cache entries: %d calls", got)
	}

	// Explicit shared identity opts in to reuse.
	feC, feD := &fakeEvaluator{}, &fakeEvaluator{}
	c, _ := NewSweep(feC, WithCache(cache), WithEvaluatorID("shared"))
	d, _ := NewSweep(feD, WithCache(cache), WithEvaluatorID("shared"))
	if _, err := c.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	rs, err := d.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := feD.calls.Load(); got != 0 {
		t.Fatalf("shared-ID evaluator still evaluated %d points", got)
	}
	if got := d.Metrics().CacheHits; got != int64(len(pts)) {
		t.Fatalf("cache hits %d, want %d", got, len(pts))
	}
	for i, r := range rs {
		if r.Point != pts[i] {
			t.Fatalf("cached result %d out of order", i)
		}
	}
	hits, misses := cache.Stats()
	if hits == 0 || misses == 0 || cache.Len() == 0 {
		t.Fatalf("cache accounting broken: hits %d misses %d len %d", hits, misses, cache.Len())
	}
}

func TestProgressIsMonotonicAcrossManyWorkers(t *testing.T) {
	var calls []int
	s, err := NewSweep(&fakeEvaluator{}, WithWorkers(16), WithProgress(func(done, total int) {
		calls = append(calls, done) // serial by contract: no lock needed
		if total != 200 {
			t.Errorf("total = %d", total)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), fakePoints(200)); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 200 {
		t.Fatalf("progress calls %d", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress not monotonic at %d: %v...", i, calls[:i+1])
		}
	}
}

func TestTraceSinkEmitsOneJSONLinePerPoint(t *testing.T) {
	var buf bytes.Buffer
	cache := NewMemoryCache()
	s, err := NewSweep(&fakeEvaluator{panicOn: func(p core.DesignPoint) bool { return p.M == 77 }},
		WithWorkers(4), WithTrace(&buf), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(12)
	if _, err := s.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), pts); err != nil { // second run: cached + retried panic
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2*len(pts) {
		t.Fatalf("trace lines %d, want %d", len(lines), 2*len(pts))
	}
	var cached, errored int
	for _, ln := range lines {
		var ev struct {
			Index      int     `json:"index"`
			Point      string  `json:"point"`
			Cached     bool    `json:"cached"`
			DurationMS float64 `json:"duration_ms"`
			Done       int     `json:"done"`
			Total      int     `json:"total"`
			Err        string  `json:"err"`
		}
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", ln, err)
		}
		if ev.Point == "" || ev.Total != len(pts) || ev.Done < 1 || ev.Done > len(pts) {
			t.Fatalf("malformed trace event: %+v", ev)
		}
		if ev.Cached {
			cached++
		}
		if ev.Err != "" {
			errored++
		}
	}
	if cached != len(pts)-1 {
		t.Fatalf("cached trace events %d, want %d", cached, len(pts)-1)
	}
	if errored != 2 {
		t.Fatalf("errored trace events %d, want 2 (one per run)", errored)
	}
}

func TestMetricsSnapshotFields(t *testing.T) {
	s, err := NewSweep(&fakeEvaluator{delay: time.Millisecond}, WithWorkers(2), WithCache(NewMemoryCache()))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(8)
	if _, err := s.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Total != len(pts) || m.Done != len(pts) {
		t.Fatalf("total/done %d/%d", m.Total, m.Done)
	}
	if m.Evaluated != int64(len(pts)) || m.CacheHits != 0 {
		t.Fatalf("evaluated %d, hits %d", m.Evaluated, m.CacheHits)
	}
	if m.MeanEval < time.Millisecond || m.MinEval <= 0 || m.MaxEval < m.MinEval {
		t.Fatalf("duration stats: mean %v min %v max %v", m.MeanEval, m.MinEval, m.MaxEval)
	}
	if m.Elapsed <= 0 || m.Throughput <= 0 {
		t.Fatalf("elapsed %v throughput %g", m.Elapsed, m.Throughput)
	}
	if m.ETA != 0 {
		t.Fatalf("finished run should have zero ETA, got %v", m.ETA)
	}
	// Warm re-run: counters accumulate, evaluations do not.
	if _, err := s.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	m = s.Metrics()
	if m.Evaluated != int64(len(pts)) || m.CacheHits != int64(len(pts)) {
		t.Fatalf("after warm run: evaluated %d, hits %d", m.Evaluated, m.CacheHits)
	}
}

// TestMetricsEvalQuantilesAndHistogram checks the Snapshot's histogram
// layer: every real evaluation (and nothing else) lands in EvalHist,
// the quantiles are ordered and bracket the observed durations, and
// cache hits do not pollute the distribution.
func TestMetricsEvalQuantilesAndHistogram(t *testing.T) {
	s, err := NewSweep(&fakeEvaluator{delay: 2 * time.Millisecond},
		WithWorkers(2), WithCache(NewMemoryCache()))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(8)
	if _, err := s.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if got := m.EvalHist.Count; got != uint64(len(pts)) {
		t.Fatalf("histogram count %d, want %d", got, len(pts))
	}
	if m.P50Eval <= 0 || m.P50Eval > m.P90Eval || m.P90Eval > m.P99Eval {
		t.Fatalf("quantiles not ordered: p50 %v p90 %v p99 %v", m.P50Eval, m.P90Eval, m.P99Eval)
	}
	// Every evaluation slept 2ms, so every observation lands in a bucket
	// whose span includes 2ms or higher. The quantile interpolates
	// within its bucket (Prometheus histogram_quantile semantics), so
	// the estimate can undershoot the true value but never below the
	// containing bucket's lower edge — 1ms for the (1ms, 2.5ms] bucket.
	if m.P50Eval < time.Millisecond {
		t.Fatalf("p50 %v below the containing bucket's 1ms lower edge", m.P50Eval)
	}
	if m.P99Eval > 10*time.Second {
		t.Fatalf("p99 %v absurdly high for 2ms evaluations", m.P99Eval)
	}
	if m.EvalHist.Sum < (2*time.Millisecond).Seconds()*float64(len(pts)) {
		t.Fatalf("histogram sum %g below the slept total", m.EvalHist.Sum)
	}
	// A warm re-run is all cache hits: the distribution must not move.
	if _, err := s.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if m2 := s.Metrics(); m2.EvalHist.Count != uint64(len(pts)) {
		t.Fatalf("cache hits polluted the histogram: count %d", m2.EvalHist.Count)
	}
}

func TestEventHooksAreSerialAndCarryResults(t *testing.T) {
	var global []Event
	s, err := NewSweep(&fakeEvaluator{}, WithWorkers(8), WithCache(NewMemoryCache()),
		WithEventHook(func(ev Event) {
			global = append(global, ev) // serial by contract: no lock needed
		}))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(40)
	var run []Event
	if _, err := s.RunWithHook(context.Background(), pts, func(ev Event) {
		run = append(run, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(global) != len(pts) || len(run) != len(pts) {
		t.Fatalf("event counts: global %d, run %d, want %d", len(global), len(run), len(pts))
	}
	for i, ev := range run {
		if ev.Done != i+1 || ev.Total != len(pts) {
			t.Fatalf("event %d progress not monotonic: done %d total %d", i, ev.Done, ev.Total)
		}
		if ev.Point != pts[ev.Index] || ev.Result.Point != pts[ev.Index] {
			t.Fatalf("event %d carries the wrong point", i)
		}
		if ev.Cached || ev.Result.TotalPower <= 0 {
			t.Fatalf("cold event %d malformed: %+v", i, ev)
		}
	}
	// A warm re-run delivers cached events to the per-run hook only.
	run = nil
	if _, err := s.RunWithHook(context.Background(), pts, func(ev Event) {
		run = append(run, ev)
	}); err != nil {
		t.Fatal(err)
	}
	for i, ev := range run {
		if !ev.Cached || ev.Duration != 0 {
			t.Fatalf("warm event %d not cached: %+v", i, ev)
		}
	}
	if len(global) != 2*len(pts) {
		t.Fatalf("construction hook saw %d events, want %d", len(global), 2*len(pts))
	}
}

func TestRunWithHookObservesOnlyItsOwnRun(t *testing.T) {
	s, err := NewSweep(&fakeEvaluator{delay: time.Millisecond}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var a, b atomic.Int64
	var wg sync.WaitGroup
	for i, ctr := range []*atomic.Int64{&a, &b} {
		wg.Add(1)
		go func(n int, ctr *atomic.Int64) {
			defer wg.Done()
			if _, err := s.RunWithHook(context.Background(), fakePoints(8+4*n), func(Event) {
				ctr.Add(1)
			}); err != nil {
				t.Error(err)
			}
		}(i, ctr)
	}
	wg.Wait()
	if a.Load() != 8 || b.Load() != 12 {
		t.Fatalf("per-run hooks leaked across runs: %d, %d", a.Load(), b.Load())
	}
}

func TestSpaceValidate(t *testing.T) {
	good := Space{
		Architectures: []core.Architecture{core.ArchBaseline, core.ArchCS},
		Bits:          []int{6, 8},
		LNANoise:      []float64{1e-6, 5e-6},
		M:             []int{75},
		CHold:         []float64{80e-15},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
	if err := PaperSpace(8).Validate(); err != nil {
		t.Fatalf("paper space rejected: %v", err)
	}
	nan := 0.0
	nan /= nan
	for name, s := range map[string]Space{
		"no archs":  {Bits: []int{8}, LNANoise: []float64{1e-6}},
		"no bits":   {Architectures: good.Architectures, LNANoise: []float64{1e-6}},
		"no noise":  {Architectures: good.Architectures, Bits: []int{8}},
		"bad bits":  {Architectures: good.Architectures, Bits: []int{0}, LNANoise: []float64{1e-6}},
		"nan noise": {Architectures: good.Architectures, Bits: []int{8}, LNANoise: []float64{nan}},
		"neg noise": {Architectures: good.Architectures, Bits: []int{8}, LNANoise: []float64{-1e-6}},
		"bad m":     {Architectures: good.Architectures, Bits: []int{8}, LNANoise: []float64{1e-6}, M: []int{-1}},
		"nan chold": {Architectures: good.Architectures, Bits: []int{8}, LNANoise: []float64{1e-6}, CHold: []float64{nan}},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid space accepted", name)
		}
	}
}

func TestSizeMatchesPointsWithoutEnumerating(t *testing.T) {
	// Property: the arithmetic Size always equals len(Points()).
	f := func(nArch, nBits, nNoise, nM, nCh uint8) bool {
		s := Space{}
		for i := 0; i < int(nArch%5); i++ {
			s.Architectures = append(s.Architectures, core.Architecture(i%4))
		}
		for i := 0; i < int(nBits%4); i++ {
			s.Bits = append(s.Bits, 6+i)
		}
		for i := 0; i < int(nNoise%4); i++ {
			s.LNANoise = append(s.LNANoise, float64(i+1)*1e-6)
		}
		for i := 0; i < int(nM%3); i++ {
			s.M = append(s.M, 75*(i+1))
		}
		for i := 0; i < int(nCh%3); i++ {
			s.CHold = append(s.CHold, float64(i+1)*1e-14)
		}
		return s.Size() == len(s.Points())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDesignPointKeyIsInjective(t *testing.T) {
	pts := fakePoints(50)
	pts = append(pts, core.DesignPoint{Arch: core.ArchBaseline, Bits: 8, LNANoise: 1e-6})
	pts = append(pts, core.DesignPoint{Arch: core.ArchBaseline, Bits: 8, LNANoise: 1e-6 + 1e-18})
	seen := map[string]core.DesignPoint{}
	for _, p := range pts {
		k := p.Key()
		if prev, dup := seen[k]; dup && prev != p {
			t.Fatalf("key collision: %v and %v both map to %q", prev, p, k)
		}
		seen[k] = p
	}
}

// TestConcurrentRunsSingleflightOneEvalPerPoint pins the daemon-path
// guarantee: concurrent identical runs over one bounded cache evaluate
// each design point exactly once — late arrivals either hit the cache
// or join the in-flight computation, never recompute. Run under -race
// this doubles as the engine/cache coherence stress.
func TestConcurrentRunsSingleflightOneEvalPerPoint(t *testing.T) {
	const (
		k       = 4
		nPoints = 16
	)
	fe := &fakeEvaluator{delay: 2 * time.Millisecond}
	s, err := NewSweep(fe, WithCache(cache.New(64)), WithWorkers(4), WithEvaluatorID("shared"))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(nPoints)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := s.Run(context.Background(), pts)
			if err != nil {
				t.Error(err)
				return
			}
			for j, r := range rs {
				if r.Err != nil || r.Point != pts[j] {
					t.Errorf("result %d malformed: %+v", j, r)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := fe.calls.Load(); got != nPoints {
		t.Fatalf("%d concurrent identical runs cost %d evaluations, want exactly %d", k, got, nPoints)
	}
	snap := s.Metrics()
	if snap.CacheHits+snap.Deduped != (k-1)*nPoints {
		t.Fatalf("hits %d + deduped %d, want %d together", snap.CacheHits, snap.Deduped, (k-1)*nPoints)
	}
}

// TestConcurrentSweepsTinyCacheBoundHolds squeezes concurrent sweeps
// through a cache far smaller than the space: a monitor goroutine
// watches occupancy throughout, and the bound must never give.
func TestConcurrentSweepsTinyCacheBoundHolds(t *testing.T) {
	store := cache.New(8)
	fe := &fakeEvaluator{}
	s, err := NewSweep(fe, WithCache(store), WithWorkers(4), WithEvaluatorID("shared"))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(64)

	stop := make(chan struct{})
	violated := make(chan int, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := store.Len(); n > store.Cap() {
				violated <- n
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Run(context.Background(), pts); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(stop)

	select {
	case n := <-violated:
		t.Fatalf("cache occupancy reached %d, above its cap %d", n, store.Cap())
	default:
	}
	st := store.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("final occupancy %d over cap %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("64 distinct points through an 8-slot cache must evict")
	}
}

func TestSweepCacheHitSpeedup(t *testing.T) {
	// The acceptance workload: a cold sweep, then a Fig 9/10-style
	// constrained re-query of the same grid through the shared cache. The
	// per-point work is a real (if small) sleep, so the ≥5× bound is far
	// from the observed ~1000× and does not flake under load.
	fe := &fakeEvaluator{delay: 5 * time.Millisecond}
	s, err := NewSweep(fe, WithWorkers(4), WithCache(NewMemoryCache()))
	if err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(32)
	t0 := time.Now()
	if _, err := s.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(t0)
	t1 := time.Now()
	warm, err := s.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(t1)
	if fe.calls.Load() != int64(len(pts)) {
		t.Fatalf("warm run re-evaluated: %d calls", fe.calls.Load())
	}
	if got, _ := Optimum(warm, QualityAccuracy, 0.9); got.Err != nil {
		t.Fatal("constrained query over cached results failed")
	}
	if warmDur*5 > cold {
		t.Fatalf("cache speedup %.1fx < 5x (cold %v, warm %v)",
			float64(cold)/float64(warmDur), cold, warmDur)
	}
}
