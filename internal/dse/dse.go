// Package dse is the design-space-exploration layer of EffiCSense: it
// enumerates the Table III search grid, fans evaluations out over a worker
// pool, extracts Pareto fronts (paper Fig 7), and answers the constrained
// queries behind Figs 9 and 10 (area-capped searches, minimum-accuracy
// optima).
package dse

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"efficsense/internal/core"
)

// Space is a rectangular design-space grid. CS-only axes (M, CHold) are
// ignored for baseline architectures.
type Space struct {
	Architectures []core.Architecture
	Bits          []int
	LNANoise      []float64
	M             []int
	CHold         []float64
}

// PaperSpace returns the Table III search space: both architectures,
// N ∈ {6,7,8}, the 1–20 µVrms LNA-noise range on a geometric grid of
// noiseSteps points (0 → 8), M ∈ {75, 150, 192} with N_Φ = 384, and the
// default hold capacitor.
func PaperSpace(noiseSteps int) Space {
	if noiseSteps <= 0 {
		noiseSteps = 8
	}
	return Space{
		Architectures: []core.Architecture{core.ArchBaseline, core.ArchCS},
		Bits:          []int{6, 7, 8},
		LNANoise:      GeomRange(1e-6, 20e-6, noiseSteps),
		M:             []int{75, 150, 192},
		CHold:         []float64{80e-15},
	}
}

// GeomRange returns n geometrically spaced values from lo to hi inclusive.
func GeomRange(lo, hi float64, n int) []float64 {
	if n <= 1 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

// LinRange returns n linearly spaced values from lo to hi inclusive.
func LinRange(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + step*float64(i)
	}
	return out
}

// Points enumerates every design point in the grid, baseline first.
func (s Space) Points() []core.DesignPoint {
	var pts []core.DesignPoint
	for _, arch := range s.Architectures {
		for _, bits := range s.Bits {
			for _, vn := range s.LNANoise {
				if arch == core.ArchBaseline {
					pts = append(pts, core.DesignPoint{Arch: arch, Bits: bits, LNANoise: vn})
					continue
				}
				ms := s.M
				if len(ms) == 0 {
					ms = []int{150}
				}
				chs := s.CHold
				if len(chs) == 0 {
					chs = []float64{0}
				}
				for _, m := range ms {
					for _, ch := range chs {
						pts = append(pts, core.DesignPoint{
							Arch: arch, Bits: bits, LNANoise: vn, M: m, CHold: ch,
						})
					}
				}
			}
		}
	}
	return pts
}

// Size returns the number of points the grid enumerates.
func (s Space) Size() int { return len(s.Points()) }

// Sweep evaluates design points in parallel on a core.Evaluator.
type Sweep struct {
	// Evaluator scores the points.
	Evaluator *core.Evaluator
	// Workers bounds parallelism (0 → GOMAXPROCS).
	Workers int
	// Progress, if set, is called after each completed point.
	Progress func(done, total int)
}

// Run evaluates every point and returns results in point order.
func (s *Sweep) Run(points []core.DesignPoint) []core.Result {
	if s.Evaluator == nil {
		panic("dse: sweep requires an evaluator")
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]core.Result, len(points))
	if len(points) == 0 {
		return results
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = s.Evaluator.Evaluate(points[idx])
				if s.Progress != nil {
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					s.Progress(d, len(points))
				}
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Quality extracts the goal-function value from a result (paper Step 5:
// the choice of metric changes the optimum, the central point of Fig 7).
type Quality func(core.Result) float64

// QualitySNR is the Fig 7a goal function.
func QualitySNR(r core.Result) float64 { return r.MeanSNRdB }

// QualityAccuracy is the Fig 7b goal function.
func QualityAccuracy(r core.Result) float64 { return r.Accuracy }

// ParetoFront returns the non-dominated subset of results under
// (minimise power, maximise quality), sorted by ascending power. A point
// is dominated if another point has no higher power and no lower quality,
// with at least one strict inequality.
func ParetoFront(results []core.Result, q Quality) []core.Result {
	if len(results) == 0 {
		return nil
	}
	sorted := make([]core.Result, len(results))
	copy(sorted, results)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TotalPower != sorted[j].TotalPower {
			return sorted[i].TotalPower < sorted[j].TotalPower
		}
		return q(sorted[i]) > q(sorted[j])
	})
	var front []core.Result
	best := math.Inf(-1)
	for _, r := range sorted {
		if v := q(r); v > best {
			front = append(front, r)
			best = v
		}
	}
	return front
}

// FilterArea keeps results whose capacitor count is within maxAreaCaps
// (the Fig 10 constraint). maxAreaCaps <= 0 keeps everything.
func FilterArea(results []core.Result, maxAreaCaps float64) []core.Result {
	if maxAreaCaps <= 0 {
		return results
	}
	var out []core.Result
	for _, r := range results {
		if r.AreaCaps <= maxAreaCaps {
			out = append(out, r)
		}
	}
	return out
}

// FilterArch keeps results of one architecture.
func FilterArch(results []core.Result, arch core.Architecture) []core.Result {
	var out []core.Result
	for _, r := range results {
		if r.Point.Arch == arch {
			out = append(out, r)
		}
	}
	return out
}

// Optimum returns the minimum-power result meeting the quality floor (the
// paper's "power as optimisation goal, accuracy >= 98 %" selection). ok is
// false when no point qualifies.
func Optimum(results []core.Result, q Quality, minQuality float64) (core.Result, bool) {
	var best core.Result
	found := false
	for _, r := range results {
		if q(r) < minQuality {
			continue
		}
		if !found || r.TotalPower < best.TotalPower {
			best = r
			found = true
		}
	}
	return best, found
}

// BisectNoiseFloor refines the continuous LNA-noise axis around a design
// point: power falls monotonically as the noise floor rises, so the
// cheapest acceptable design is the largest vn still meeting the quality
// floor. A bisection over [lo, hi] finds it to within the given number of
// evaluations — the "local refinement after the grid sweep" step a
// pathfinding flow runs once the architecture is chosen. ok is false if
// even vn = lo misses the constraint.
func BisectNoiseFloor(ev *core.Evaluator, p core.DesignPoint, q Quality, minQuality, lo, hi float64, iters int) (core.Result, bool) {
	if iters <= 0 {
		iters = 6
	}
	eval := func(vn float64) core.Result {
		pt := p
		pt.LNANoise = vn
		return ev.Evaluate(pt)
	}
	best := eval(lo)
	if q(best) < minQuality {
		return best, false
	}
	for i := 0; i < iters; i++ {
		mid := math.Sqrt(lo * hi) // geometric midpoint: vn spans decades
		r := eval(mid)
		if q(r) >= minQuality {
			best = r
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, true
}

// Describe summarises a result in one line for logs and CLI output.
func Describe(r core.Result) string {
	return fmt.Sprintf("%s: SNR %.1f dB, accuracy %.3f, power %.3g W, area %.0f Cu",
		r.Point, r.MeanSNRdB, r.Accuracy, r.TotalPower, r.AreaCaps)
}
