// Package dse is the design-space-exploration layer of EffiCSense: it
// enumerates the Table III search grid, fans evaluations out over a worker
// pool, extracts Pareto fronts (paper Fig 7), and answers the constrained
// queries behind Figs 9 and 10 (area-capped searches, minimum-accuracy
// optima).
package dse

import (
	"fmt"
	"math"
	"sort"

	"efficsense/internal/core"
)

// Space is a rectangular design-space grid. CS-only axes (M, CHold) are
// ignored for baseline architectures.
type Space struct {
	Architectures []core.Architecture
	Bits          []int
	LNANoise      []float64
	M             []int
	CHold         []float64
}

// PaperSpace returns the Table III search space: both architectures,
// N ∈ {6,7,8}, the 1–20 µVrms LNA-noise range on a geometric grid of
// noiseSteps points (0 → 8), M ∈ {75, 150, 192} with N_Φ = 384, and the
// default hold capacitor.
func PaperSpace(noiseSteps int) Space {
	if noiseSteps <= 0 {
		noiseSteps = 8
	}
	return Space{
		Architectures: []core.Architecture{core.ArchBaseline, core.ArchCS},
		Bits:          []int{6, 7, 8},
		LNANoise:      GeomRange(1e-6, 20e-6, noiseSteps),
		M:             []int{75, 150, 192},
		CHold:         []float64{80e-15},
	}
}

// GeomRange returns n geometrically spaced values from lo to hi inclusive.
func GeomRange(lo, hi float64, n int) []float64 {
	if n <= 1 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

// LinRange returns n linearly spaced values from lo to hi inclusive.
func LinRange(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + step*float64(i)
	}
	return out
}

// Points enumerates every design point in the grid, baseline first.
func (s Space) Points() []core.DesignPoint {
	var pts []core.DesignPoint
	for _, arch := range s.Architectures {
		for _, bits := range s.Bits {
			for _, vn := range s.LNANoise {
				if arch == core.ArchBaseline {
					pts = append(pts, core.DesignPoint{Arch: arch, Bits: bits, LNANoise: vn})
					continue
				}
				ms := s.M
				if len(ms) == 0 {
					ms = []int{150}
				}
				chs := s.CHold
				if len(chs) == 0 {
					chs = []float64{0}
				}
				for _, m := range ms {
					for _, ch := range chs {
						pts = append(pts, core.DesignPoint{
							Arch: arch, Bits: bits, LNANoise: vn, M: m, CHold: ch,
						})
					}
				}
			}
		}
	}
	return pts
}

// Size returns the number of points the grid enumerates, computed
// arithmetically — enumerating nothing — so sizing a progress bar or an
// ETA for a huge space stays O(1).
func (s Space) Size() int {
	base := len(s.Bits) * len(s.LNANoise)
	csPer := base * max(len(s.M), 1) * max(len(s.CHold), 1)
	n := 0
	for _, arch := range s.Architectures {
		if arch == core.ArchBaseline {
			n += base
		} else {
			n += csPer
		}
	}
	return n
}

// Validate rejects grids a sweep cannot evaluate: missing axes,
// non-positive resolutions or noise floors, NaN axis values. Points and
// Size tolerate such spaces (they enumerate what they can), so call
// Validate at API boundaries for a descriptive error instead of a
// silently empty or broken sweep.
func (s Space) Validate() error {
	if len(s.Architectures) == 0 {
		return fmt.Errorf("dse: space has no architectures")
	}
	if len(s.Bits) == 0 {
		return fmt.Errorf("dse: space has no ADC resolutions (Bits)")
	}
	if len(s.LNANoise) == 0 {
		return fmt.Errorf("dse: space has no LNA noise values")
	}
	for i, b := range s.Bits {
		if b <= 0 {
			return fmt.Errorf("dse: Bits[%d] = %d is not a valid ADC resolution", i, b)
		}
	}
	for i, v := range s.LNANoise {
		if math.IsNaN(v) || v <= 0 {
			return fmt.Errorf("dse: LNANoise[%d] = %g is not a valid noise floor", i, v)
		}
	}
	for i, m := range s.M {
		if m <= 0 {
			return fmt.Errorf("dse: M[%d] = %d is not a valid measurement count", i, m)
		}
	}
	for i, ch := range s.CHold {
		if math.IsNaN(ch) || ch < 0 {
			return fmt.Errorf("dse: CHold[%d] = %g is not a valid hold capacitance", i, ch)
		}
	}
	return nil
}

// Quality extracts the goal-function value from a result (paper Step 5:
// the choice of metric changes the optimum, the central point of Fig 7).
type Quality func(core.Result) float64

// QualitySNR is the Fig 7a goal function.
func QualitySNR(r core.Result) float64 { return r.MeanSNRdB }

// QualityAccuracy is the Fig 7b goal function.
func QualityAccuracy(r core.Result) float64 { return r.Accuracy }

// ParetoFront returns the non-dominated subset of results under
// (minimise power, maximise quality), sorted by ascending power. A point
// is dominated if another point has no higher power and no lower quality,
// with at least one strict inequality. Error-carrying results (failed
// evaluations) are excluded.
func ParetoFront(results []core.Result, q Quality) []core.Result {
	sorted := make([]core.Result, 0, len(results))
	for _, r := range results {
		if r.Err == nil {
			sorted = append(sorted, r)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TotalPower != sorted[j].TotalPower {
			return sorted[i].TotalPower < sorted[j].TotalPower
		}
		return q(sorted[i]) > q(sorted[j])
	})
	var front []core.Result
	best := math.Inf(-1)
	for _, r := range sorted {
		if v := q(r); v > best {
			front = append(front, r)
			best = v
		}
	}
	return front
}

// FilterArea keeps results whose capacitor count is within maxAreaCaps
// (the Fig 10 constraint). maxAreaCaps <= 0 keeps everything.
func FilterArea(results []core.Result, maxAreaCaps float64) []core.Result {
	if maxAreaCaps <= 0 {
		return results
	}
	var out []core.Result
	for _, r := range results {
		if r.AreaCaps <= maxAreaCaps {
			out = append(out, r)
		}
	}
	return out
}

// FilterArch keeps results of one architecture.
func FilterArch(results []core.Result, arch core.Architecture) []core.Result {
	var out []core.Result
	for _, r := range results {
		if r.Point.Arch == arch {
			out = append(out, r)
		}
	}
	return out
}

// Optimum returns the minimum-power result meeting the quality floor (the
// paper's "power as optimisation goal, accuracy >= 98 %" selection). ok is
// false when no point qualifies. Error-carrying results are excluded.
func Optimum(results []core.Result, q Quality, minQuality float64) (core.Result, bool) {
	var best core.Result
	found := false
	for _, r := range results {
		if r.Err != nil || q(r) < minQuality {
			continue
		}
		if !found || r.TotalPower < best.TotalPower {
			best = r
			found = true
		}
	}
	return best, found
}

// BisectNoiseFloor refines the continuous LNA-noise axis around a design
// point: power falls monotonically as the noise floor rises, so the
// cheapest acceptable design is the largest vn still meeting the quality
// floor. A bisection over [lo, hi] finds it to within the given number of
// evaluations — the "local refinement after the grid sweep" step a
// pathfinding flow runs once the architecture is chosen. ok is false if
// even vn = lo misses the constraint. Pass a *Sweep as ev to serve the
// bisection from the sweep's memoisation cache.
//
// Degenerate intervals (lo <= 0, hi < lo, or a NaN endpoint) cannot
// bracket a geometric bisection; they collapse to a single evaluation at
// lo so callers still get the floor's verdict instead of NaN midpoints.
// A failed evaluation (error row) never satisfies the quality floor.
func BisectNoiseFloor(ev PointEvaluator, p core.DesignPoint, q Quality, minQuality, lo, hi float64, iters int) (core.Result, bool) {
	if iters <= 0 {
		iters = 6
	}
	eval := func(vn float64) core.Result {
		pt := p
		pt.LNANoise = vn
		return ev.Evaluate(pt)
	}
	meets := func(r core.Result) bool { return r.Err == nil && q(r) >= minQuality }
	best := eval(lo)
	if !meets(best) {
		return best, false
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || lo <= 0 || hi < lo {
		return best, true
	}
	for i := 0; i < iters; i++ {
		mid := math.Sqrt(lo * hi) // geometric midpoint: vn spans decades
		r := eval(mid)
		if meets(r) {
			best = r
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, true
}

// Describe summarises a result in one line for logs and CLI output.
func Describe(r core.Result) string {
	return fmt.Sprintf("%s: SNR %.1f dB, accuracy %.3f, power %.3g W, area %.0f Cu",
		r.Point, r.MeanSNRdB, r.Accuracy, r.TotalPower, r.AreaCaps)
}
