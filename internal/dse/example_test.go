package dse_test

import (
	"fmt"

	"efficsense/internal/dse"
)

// ExampleGeomRange builds the Table III noise grid: geometric steps from
// 1 to 20 µVrms.
func ExampleGeomRange() {
	for _, v := range dse.GeomRange(1e-6, 20e-6, 4) {
		fmt.Printf("%.2f µV\n", v*1e6)
	}
	// Output:
	// 1.00 µV
	// 2.71 µV
	// 7.37 µV
	// 20.00 µV
}

// ExamplePaperSpace enumerates the paper's search grid.
func ExamplePaperSpace() {
	space := dse.PaperSpace(8)
	fmt.Println(space.Size())
	// Output:
	// 96
}
