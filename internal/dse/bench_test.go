package dse

import (
	"context"
	"testing"

	"efficsense/internal/core"
)

// BenchmarkEvaluateWarm measures the engine's warm fast path — cache
// lookup, metrics, histogram observation — the cost every memoised
// point pays on a repeat sweep or a warm /v1/evaluate.
func BenchmarkEvaluateWarm(b *testing.B) {
	s, err := NewSweep(&fakeEvaluator{}, WithCache(NewMemoryCache()), WithEvaluatorID("bench"))
	if err != nil {
		b.Fatal(err)
	}
	p := core.DesignPoint{Arch: core.ArchCS, Bits: 8, LNANoise: 2e-6, M: 100}
	s.Evaluate(p) // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Evaluate(p)
	}
}

// BenchmarkRunColdFake measures per-point engine overhead (dispatch,
// completion lock, metrics, events) over a trivial evaluator, i.e. the
// serving stack's fixed cost per design point.
func BenchmarkRunColdFake(b *testing.B) {
	pts := fakePoints(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSweep(&fakeEvaluator{}, WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(context.Background(), pts); err != nil {
			b.Fatal(err)
		}
	}
}
