package dse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"efficsense/internal/core"
	"efficsense/internal/fault"
)

// PointEvaluator scores one design point. *core.Evaluator implements it;
// tests and alternative backends can substitute their own.
//
// Evaluate must be safe for concurrent calls on different points.
type PointEvaluator interface {
	Evaluate(core.DesignPoint) core.Result
}

// Fingerprinter is optionally implemented by evaluators (notably
// *core.Evaluator) whose scoring is a pure function of construction-time
// state. The fingerprint becomes part of every cache key, so evaluators
// with equal fingerprints share cached results and evaluators with
// different fingerprints never collide.
type Fingerprinter interface {
	Fingerprint() string
}

// anonEvalID hands out process-unique identities for evaluators that
// carry no fingerprint, so caching stays safe (a shared cache can never
// serve one anonymous evaluator the results of another).
var anonEvalID atomic.Int64

// Event is one structured engine observation: exactly one is emitted per
// completed point, carrying the evaluated result and the per-run progress
// window. The JSONL trace sink (WithTrace), the construction-time hook
// (WithEventHook) and any per-run hook (RunWithHook) all render from the
// same events.
type Event struct {
	// Index is the point's position in the Run's input slice.
	Index int
	// Point is the evaluated design point.
	Point core.DesignPoint
	// Result carries the point's figures of interest; Result.Err is
	// non-nil for degraded (panicked) evaluations.
	Result core.Result
	// Cached reports that the result was served without a fresh
	// evaluation: a memoisation-cache hit, or the shared outcome of an
	// identical in-flight evaluation (singleflight).
	Cached bool
	// Duration is the evaluation time (zero for cache hits).
	Duration time.Duration
	// Done and Total describe the run's progress after this point.
	Done, Total int
}

// Sweep evaluates design points in parallel: the production engine behind
// every figure reproduction. Construct with NewSweep; the zero value is
// not usable.
//
// A Sweep provides, on top of a bare worker pool:
//
//   - cancellation: Run honours its context and returns promptly with the
//     results completed so far;
//   - memoisation: with a Cache attached, each (evaluator, point) pair is
//     evaluated once, so repeated constrained queries over the same grid
//     (the Fig 9 area-capped and Fig 10 minimum-accuracy searches over
//     the Fig 7 cloud) cost nothing after the first sweep;
//   - fault tolerance: a panic while evaluating one point is recovered in
//     the worker and degraded into an error-carrying result instead of
//     killing the run, and WithRetry re-attempts transient failures with
//     exponential backoff and jitter before degrading;
//   - observability: atomic counters, per-point duration statistics, ETA,
//     structured per-point events (WithEventHook, RunWithHook) and an
//     optional JSONL trace sink.
//
// A Sweep may be reused for any number of Runs; metrics accumulate across
// them. Concurrent Runs on one Sweep are safe but interleave the per-run
// progress window (Total/Done/ETA); per-run hooks observe only their own
// run.
type Sweep struct {
	ev        PointEvaluator
	batch     BatchEvaluator // non-nil when ev implements it
	batchSize int
	evalID    string
	workers   int
	progress  func(done, total int)
	hook      func(Event)
	cache     Cache
	retry     *retrier
	metrics   Metrics

	traceMu sync.Mutex
	trace   io.Writer
}

// Option configures a Sweep at construction.
type Option func(*Sweep) error

// WithWorkers bounds parallelism. n = 0 selects GOMAXPROCS; negative n is
// a construction error.
func WithWorkers(n int) Option {
	return func(s *Sweep) error {
		if n < 0 {
			return fmt.Errorf("dse: negative worker count %d", n)
		}
		s.workers = n
		return nil
	}
}

// WithProgress installs a progress callback. The engine invokes it
// serially — never from two workers at once — with strictly increasing
// done counts, ending at done == total for a completed run. Keep it
// fast: it runs under the engine's completion lock. A nil fn is a no-op.
func WithProgress(fn func(done, total int)) Option {
	return func(s *Sweep) error {
		s.progress = fn
		return nil
	}
}

// WithCache attaches a memoisation cache. Entries are keyed on the
// evaluator identity plus core.DesignPoint.Key, so a single cache may be
// shared between sweeps and across evaluator rebuilds (see
// Fingerprinter). Error-carrying results are never cached. A cache
// that additionally implements Flight de-duplicates concurrent
// evaluations of one key (the engine calls Do instead of Get/Put). A
// nil cache is a no-op.
func WithCache(c Cache) Option {
	return func(s *Sweep) error {
		s.cache = c
		return nil
	}
}

// WithTrace attaches a JSONL trace sink: one JSON object per completed
// point ({index, point, cached, duration_ms, done, total, err?}), written
// serially. A nil writer is a no-op.
func WithTrace(w io.Writer) Option {
	return func(s *Sweep) error {
		s.trace = w
		return nil
	}
}

// WithEventHook installs a structured per-point hook: the engine invokes
// it once per completed point with the same Event the JSONL trace renders,
// serially — never from two workers at once — with strictly increasing
// Done counts within a run. Keep it fast: like the progress callback, it
// runs under the engine's completion lock. A nil fn is a no-op.
func WithEventHook(fn func(Event)) Option {
	return func(s *Sweep) error {
		s.hook = fn
		return nil
	}
}

// WithEvaluatorID overrides the evaluator identity used in cache keys.
// Use it to share a cache between evaluators the engine cannot prove
// equivalent (no Fingerprint), when the caller knows they are.
func WithEvaluatorID(id string) Option {
	return func(s *Sweep) error {
		if id == "" {
			return errors.New("dse: empty evaluator ID")
		}
		s.evalID = id
		return nil
	}
}

// NewSweep builds a sweep engine over ev. It validates its inputs — a
// nil evaluator or an invalid option is a construction error, not a
// panic at Run time.
func NewSweep(ev PointEvaluator, opts ...Option) (*Sweep, error) {
	if ev == nil {
		return nil, errors.New("dse: sweep requires an evaluator")
	}
	if ce, ok := ev.(*core.Evaluator); ok && ce == nil {
		return nil, errors.New("dse: sweep requires a non-nil evaluator")
	}
	s := &Sweep{ev: ev}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.evalID == "" {
		if f, ok := ev.(Fingerprinter); ok {
			s.evalID = f.Fingerprint()
		} else {
			s.evalID = fmt.Sprintf("anon-ev-%d", anonEvalID.Add(1))
		}
	}
	// The batch-first upgrade: an evaluator that can score several points
	// in one call gets cache misses dispatched in group-ordered chunks.
	s.batch, _ = ev.(BatchEvaluator)
	if s.batchSize == 0 {
		s.batchSize = DefaultBatchSize
	}
	s.metrics.initHistogram()
	return s, nil
}

// Metrics returns a snapshot of the engine's counters (see Snapshot).
func (s *Sweep) Metrics() Snapshot { return s.metrics.Snapshot() }

// Evaluate scores one point through the engine, so a Sweep is itself a
// PointEvaluator. It is a batch of one: the same cache lookup, panic
// recovery, retry and metrics path EvaluateBatch runs per miss, without
// the batch's slice allocations — which is what keeps a memoised
// (steady-state) Evaluate at zero allocations. Single-point paths (local
// refinement, variant studies, the CLI's `point` subcommand) share the
// sweep cache this way.
func (s *Sweep) Evaluate(p core.DesignPoint) core.Result {
	res, _, _ := s.evalPoint(context.Background(), p)
	return res
}

// EvaluatorID returns the identity under which this sweep's results are
// cached.
func (s *Sweep) EvaluatorID() string { return s.evalID }

// Run evaluates every point and returns results in point order.
//
// Cancellation contract: when ctx is cancelled mid-sweep, Run stops
// dispatching, waits only for the evaluations already in flight (at most
// one point's evaluation time per worker), and returns the completed
// results — still in point order, but possibly fewer than len(points) —
// together with ctx.Err(). A nil error means results has exactly one
// sound-or-degraded entry per input point.
//
// A point whose evaluation panics yields a Result with Err set and the
// run continues; Run itself only returns a non-nil error for context
// cancellation.
func (s *Sweep) Run(ctx context.Context, points []core.DesignPoint) ([]core.Result, error) {
	return s.RunWithHook(ctx, points, nil)
}

// RunWithHook is Run with an additional per-run event hook: hook observes
// only this run's events (unlike the construction-time WithEventHook,
// which sees every run), under the same delivery contract — serial calls,
// strictly increasing Done. A serving layer multiplexing concurrent
// sweeps over one shared engine uses it to give each job its own event
// stream. A nil hook is a no-op.
func (s *Sweep) RunWithHook(ctx context.Context, points []core.DesignPoint, hook func(Event)) ([]core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.metrics.beginRun(len(points))
	results := make([]core.Result, len(points))
	if len(points) == 0 {
		return results, ctx.Err()
	}
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	var (
		mu        sync.Mutex // guards results, completed, done, progress
		completed = make([]bool, len(points))
		done      int
	)
	complete := func(idx int, res core.Result, cached bool, dur time.Duration) {
		mu.Lock()
		results[idx] = res
		completed[idx] = true
		done++
		d := done
		s.metrics.done.Store(int64(d))
		ev := Event{
			Index: idx, Point: points[idx], Result: res,
			Cached: cached, Duration: dur,
			Done: d, Total: len(points),
		}
		if s.progress != nil {
			s.progress(d, len(points))
		}
		if s.hook != nil {
			s.hook(ev)
		}
		if hook != nil {
			hook(ev)
		}
		mu.Unlock()
		s.writeTrace(ev)
	}
	if s.batch != nil && s.batchSize > 1 && len(points) > 1 {
		s.runBatched(ctx, points, workers, complete)
	} else {
		s.runPerPoint(ctx, points, workers, complete)
	}
	if err := ctx.Err(); err != nil {
		partial := make([]core.Result, 0, len(points))
		for i, ok := range completed {
			if ok {
				partial = append(partial, results[i])
			}
		}
		return partial, err
	}
	return results, nil
}

// runPerPoint is Run's historical worker pool: workers drain single
// point indices and every point goes through evalPoint.
func (s *Sweep) runPerPoint(ctx context.Context, points []core.DesignPoint, workers int, complete func(idx int, res core.Result, cached bool, dur time.Duration)) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				res, cached, dur := s.evalPoint(ctx, points[idx])
				complete(idx, res, cached, dur)
			}
		}()
	}
dispatch:
	for i := range points {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
}

// evalPoint serves one point from the cache or the evaluator, recovering
// panics into error-carrying results. When the cache implements Flight,
// concurrent misses on one key collapse into a single evaluation whose
// result every caller shares (counted as Deduped in the metrics). ctx
// only bounds retry backoff (see WithRetry); an in-flight evaluation
// always runs to its end.
func (s *Sweep) evalPoint(ctx context.Context, p core.DesignPoint) (res core.Result, cached bool, dur time.Duration) {
	if pf, ok := s.cache.(PointFlight); ok {
		key := s.evalID + "/" + p.Key()
		var evalDur time.Duration
		res, hit, shared := s.flightDoPoint(ctx, pf, key, p, func() core.Result {
			start := time.Now()
			r := s.evaluate(ctx, p)
			evalDur = time.Since(start)
			return r
		})
		switch {
		case hit:
			s.metrics.cacheHits.Add(1)
			return res, true, 0
		case shared:
			s.metrics.deduped.Add(1)
			return res, true, 0
		}
		return res, false, evalDur
	}
	if fl, ok := s.cache.(Flight); ok {
		key := s.evalID + "/" + p.Key()
		var evalDur time.Duration
		res, hit, shared := s.flightDo(fl, key, p, func() core.Result {
			start := time.Now()
			r := s.evaluate(ctx, p)
			evalDur = time.Since(start)
			return r
		})
		switch {
		case hit:
			s.metrics.cacheHits.Add(1)
			return res, true, 0
		case shared:
			s.metrics.deduped.Add(1)
			return res, true, 0
		}
		return res, false, evalDur
	}
	if s.cache != nil {
		// The key lives in a pooled buffer and warm hits are served off
		// the raw bytes, so the steady state — a memoised point — costs
		// zero allocations.
		kb := keyBufPool.Get().(*keyBuf)
		kb.b = s.appendKey(kb.b[:0], p)
		if r, ok := s.cacheGetBytes(kb.b); ok {
			keyBufPool.Put(kb)
			s.metrics.cacheHits.Add(1)
			return r, true, 0
		}
		key := string(kb.b)
		keyBufPool.Put(kb)
		start := time.Now()
		res = s.evaluate(ctx, p)
		dur = time.Since(start)
		if res.Err == nil {
			s.cache.Put(key, res)
		}
		return res, false, dur
	}
	start := time.Now()
	res = s.evaluate(ctx, p)
	return res, false, time.Since(start)
}

// flightDo guards the cache's singleflight path with the same no-panic
// contract safeEvaluate gives the evaluator: a panic inside the cache
// layer itself (a bug, or an armed cache/flight failpoint) degrades
// this point instead of killing the worker — and with it the daemon.
func (s *Sweep) flightDo(fl Flight, key string, p core.DesignPoint, fn func() core.Result) (res core.Result, hit, shared bool) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			res = core.Result{Point: p, Err: fmt.Errorf("dse: cache flight for %s panicked: %v", p, r)}
		}
	}()
	return fl.Do(key, fn)
}

// flightDoPoint is flightDo for the context-and-point-aware variant
// (the cluster peering cache): the same recovery contract, so a panic
// anywhere in the peer path degrades one point, never a worker.
func (s *Sweep) flightDoPoint(ctx context.Context, pf PointFlight, key string, p core.DesignPoint, fn func() core.Result) (res core.Result, hit, shared bool) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			res = core.Result{Point: p, Err: fmt.Errorf("dse: cache flight for %s panicked: %v", p, r)}
		}
	}()
	return pf.DoPoint(ctx, key, p, fn)
}

// safeEvaluate is one guarded evaluator call: the dse/evaluate failpoint
// fires first (errors degrade the point, injected panics land in the
// same recovery as evaluator panics), then the evaluator runs.
func (s *Sweep) safeEvaluate(p core.DesignPoint) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			res = core.Result{Point: p, Err: fmt.Errorf("dse: evaluating %s panicked: %v", p, r)}
		}
	}()
	if err := fault.Fire(fault.PointEvaluate); err != nil {
		return core.Result{Point: p, Err: err}
	}
	return s.ev.Evaluate(p)
}

// traceEvent is one JSONL trace line.
type traceEvent struct {
	Index      int     `json:"index"`
	Point      string  `json:"point"`
	Cached     bool    `json:"cached"`
	DurationMS float64 `json:"duration_ms"`
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	Err        string  `json:"err,omitempty"`
}

func (s *Sweep) writeTrace(ev Event) {
	if s.trace == nil {
		return
	}
	te := traceEvent{
		Index:      ev.Index,
		Point:      ev.Point.String(),
		Cached:     ev.Cached,
		DurationMS: float64(ev.Duration) / float64(time.Millisecond),
		Done:       ev.Done,
		Total:      ev.Total,
	}
	if ev.Result.Err != nil {
		te.Err = ev.Result.Err.Error()
	}
	line, err := json.Marshal(te)
	if err != nil {
		return
	}
	s.traceMu.Lock()
	s.trace.Write(append(line, '\n'))
	s.traceMu.Unlock()
}
