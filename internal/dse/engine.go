package dse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"efficsense/internal/core"
)

// PointEvaluator scores one design point. *core.Evaluator implements it;
// tests and alternative backends can substitute their own.
//
// Evaluate must be safe for concurrent calls on different points.
type PointEvaluator interface {
	Evaluate(core.DesignPoint) core.Result
}

// Fingerprinter is optionally implemented by evaluators (notably
// *core.Evaluator) whose scoring is a pure function of construction-time
// state. The fingerprint becomes part of every cache key, so evaluators
// with equal fingerprints share cached results and evaluators with
// different fingerprints never collide.
type Fingerprinter interface {
	Fingerprint() string
}

// anonEvalID hands out process-unique identities for evaluators that
// carry no fingerprint, so caching stays safe (a shared cache can never
// serve one anonymous evaluator the results of another).
var anonEvalID atomic.Int64

// Sweep evaluates design points in parallel: the production engine behind
// every figure reproduction. Construct with NewSweep; the zero value is
// not usable.
//
// A Sweep provides, on top of a bare worker pool:
//
//   - cancellation: Run honours its context and returns promptly with the
//     results completed so far;
//   - memoisation: with a Cache attached, each (evaluator, point) pair is
//     evaluated once, so repeated constrained queries over the same grid
//     (the Fig 9 area-capped and Fig 10 minimum-accuracy searches over
//     the Fig 7 cloud) cost nothing after the first sweep;
//   - fault tolerance: a panic while evaluating one point is recovered in
//     the worker and degraded into an error-carrying result instead of
//     killing the run;
//   - observability: atomic counters, per-point duration statistics, ETA
//     and an optional JSONL trace sink.
//
// A Sweep may be reused for any number of Runs; metrics accumulate across
// them. Concurrent Runs on one Sweep are safe but interleave the per-run
// progress window (Total/Done/ETA).
type Sweep struct {
	ev       PointEvaluator
	evalID   string
	workers  int
	progress func(done, total int)
	cache    Cache
	metrics  Metrics

	traceMu sync.Mutex
	trace   io.Writer
}

// Option configures a Sweep at construction.
type Option func(*Sweep) error

// WithWorkers bounds parallelism. n = 0 selects GOMAXPROCS; negative n is
// a construction error.
func WithWorkers(n int) Option {
	return func(s *Sweep) error {
		if n < 0 {
			return fmt.Errorf("dse: negative worker count %d", n)
		}
		s.workers = n
		return nil
	}
}

// WithProgress installs a progress callback. The engine invokes it
// serially — never from two workers at once — with strictly increasing
// done counts, ending at done == total for a completed run. Keep it
// fast: it runs under the engine's completion lock. A nil fn is a no-op.
func WithProgress(fn func(done, total int)) Option {
	return func(s *Sweep) error {
		s.progress = fn
		return nil
	}
}

// WithCache attaches a memoisation cache. Entries are keyed on the
// evaluator identity plus core.DesignPoint.Key, so a single cache may be
// shared between sweeps and across evaluator rebuilds (see
// Fingerprinter). Error-carrying results are never cached. A nil cache
// is a no-op.
func WithCache(c Cache) Option {
	return func(s *Sweep) error {
		s.cache = c
		return nil
	}
}

// WithTrace attaches a JSONL trace sink: one JSON object per completed
// point ({index, point, cached, duration_ms, done, total, err?}), written
// serially. A nil writer is a no-op.
func WithTrace(w io.Writer) Option {
	return func(s *Sweep) error {
		s.trace = w
		return nil
	}
}

// WithEvaluatorID overrides the evaluator identity used in cache keys.
// Use it to share a cache between evaluators the engine cannot prove
// equivalent (no Fingerprint), when the caller knows they are.
func WithEvaluatorID(id string) Option {
	return func(s *Sweep) error {
		if id == "" {
			return errors.New("dse: empty evaluator ID")
		}
		s.evalID = id
		return nil
	}
}

// NewSweep builds a sweep engine over ev. It validates its inputs — a
// nil evaluator or an invalid option is a construction error, not a
// panic at Run time.
func NewSweep(ev PointEvaluator, opts ...Option) (*Sweep, error) {
	if ev == nil {
		return nil, errors.New("dse: sweep requires an evaluator")
	}
	if ce, ok := ev.(*core.Evaluator); ok && ce == nil {
		return nil, errors.New("dse: sweep requires a non-nil evaluator")
	}
	s := &Sweep{ev: ev}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.evalID == "" {
		if f, ok := ev.(Fingerprinter); ok {
			s.evalID = f.Fingerprint()
		} else {
			s.evalID = fmt.Sprintf("anon-ev-%d", anonEvalID.Add(1))
		}
	}
	return s, nil
}

// Metrics returns a snapshot of the engine's counters (see Snapshot).
func (s *Sweep) Metrics() Snapshot { return s.metrics.Snapshot() }

// Evaluate scores one point through the engine — cache lookup, panic
// recovery and metrics included — so a Sweep is itself a PointEvaluator.
// Single-point paths (local refinement, variant studies, the CLI's
// `point` subcommand) share the sweep cache this way.
func (s *Sweep) Evaluate(p core.DesignPoint) core.Result {
	res, _, _ := s.evalPoint(p)
	return res
}

// EvaluatorID returns the identity under which this sweep's results are
// cached.
func (s *Sweep) EvaluatorID() string { return s.evalID }

// Run evaluates every point and returns results in point order.
//
// Cancellation contract: when ctx is cancelled mid-sweep, Run stops
// dispatching, waits only for the evaluations already in flight (at most
// one point's evaluation time per worker), and returns the completed
// results — still in point order, but possibly fewer than len(points) —
// together with ctx.Err(). A nil error means results has exactly one
// sound-or-degraded entry per input point.
//
// A point whose evaluation panics yields a Result with Err set and the
// run continues; Run itself only returns a non-nil error for context
// cancellation.
func (s *Sweep) Run(ctx context.Context, points []core.DesignPoint) ([]core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.metrics.beginRun(len(points))
	results := make([]core.Result, len(points))
	if len(points) == 0 {
		return results, ctx.Err()
	}
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex // guards results, completed, done, progress
		completed = make([]bool, len(points))
		done      int
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				res, cached, dur := s.evalPoint(points[idx])
				mu.Lock()
				results[idx] = res
				completed[idx] = true
				done++
				d := done
				s.metrics.done.Store(int64(d))
				if s.progress != nil {
					s.progress(d, len(points))
				}
				mu.Unlock()
				s.writeTrace(idx, points[idx], res, cached, dur, d, len(points))
			}
		}()
	}
dispatch:
	for i := range points {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		partial := make([]core.Result, 0, len(points))
		for i, ok := range completed {
			if ok {
				partial = append(partial, results[i])
			}
		}
		return partial, err
	}
	return results, nil
}

// evalPoint serves one point from the cache or the evaluator, recovering
// panics into error-carrying results.
func (s *Sweep) evalPoint(p core.DesignPoint) (res core.Result, cached bool, dur time.Duration) {
	key := s.evalID + "/" + p.Key()
	if s.cache != nil {
		if r, ok := s.cache.Get(key); ok {
			s.metrics.cacheHits.Add(1)
			return r, true, 0
		}
	}
	start := time.Now()
	res = s.safeEvaluate(p)
	dur = time.Since(start)
	s.metrics.observeEval(dur)
	if s.cache != nil && res.Err == nil {
		s.cache.Put(key, res)
	}
	return res, false, dur
}

func (s *Sweep) safeEvaluate(p core.DesignPoint) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			res = core.Result{Point: p, Err: fmt.Errorf("dse: evaluating %s panicked: %v", p, r)}
		}
	}()
	return s.ev.Evaluate(p)
}

// traceEvent is one JSONL trace line.
type traceEvent struct {
	Index      int     `json:"index"`
	Point      string  `json:"point"`
	Cached     bool    `json:"cached"`
	DurationMS float64 `json:"duration_ms"`
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	Err        string  `json:"err,omitempty"`
}

func (s *Sweep) writeTrace(idx int, p core.DesignPoint, res core.Result, cached bool, dur time.Duration, done, total int) {
	if s.trace == nil {
		return
	}
	ev := traceEvent{
		Index:      idx,
		Point:      p.String(),
		Cached:     cached,
		DurationMS: float64(dur) / float64(time.Millisecond),
		Done:       done,
		Total:      total,
	}
	if res.Err != nil {
		ev.Err = res.Err.Error()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.traceMu.Lock()
	s.trace.Write(append(line, '\n'))
	s.traceMu.Unlock()
}

// LegacySweep mirrors the original field-configured sweep API.
//
// Deprecated: use NewSweep and (*Sweep).Run, which validate their inputs,
// honour a context, cache evaluations and survive panicking points. This
// wrapper exists so pre-engine call sites keep compiling; it returns nil
// (instead of the old panic) when misconfigured.
type LegacySweep struct {
	// Evaluator scores the points.
	Evaluator *core.Evaluator
	// Workers bounds parallelism (0 → GOMAXPROCS).
	Workers int
	// Progress, if set, is called after each completed point.
	Progress func(done, total int)
}

// Run evaluates every point and returns results in point order, or nil
// if the sweep is misconfigured (nil evaluator, negative workers).
func (s *LegacySweep) Run(points []core.DesignPoint) []core.Result {
	eng, err := NewSweep(s.Evaluator, WithWorkers(max(s.Workers, 0)), WithProgress(s.Progress))
	if err != nil {
		return nil
	}
	rs, _ := eng.Run(context.Background(), points)
	return rs
}
