package dse

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"efficsense/internal/classify"
	"efficsense/internal/core"
	"efficsense/internal/eeg"
	"efficsense/internal/tech"
)

func TestGeomRange(t *testing.T) {
	v := GeomRange(1e-6, 20e-6, 5)
	if len(v) != 5 {
		t.Fatalf("length %d", len(v))
	}
	if math.Abs(v[0]-1e-6) > 1e-15 || math.Abs(v[4]-20e-6) > 1e-12 {
		t.Fatalf("endpoints %g, %g", v[0], v[4])
	}
	// Geometric: constant ratio.
	r := v[1] / v[0]
	for i := 2; i < 5; i++ {
		if math.Abs(v[i]/v[i-1]-r) > 1e-9 {
			t.Fatalf("not geometric at %d", i)
		}
	}
	if got := GeomRange(5, 1, 3); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate range %v", got)
	}
}

func TestLinRange(t *testing.T) {
	v := LinRange(0, 10, 6)
	for i, want := range []float64{0, 2, 4, 6, 8, 10} {
		if math.Abs(v[i]-want) > 1e-12 {
			t.Fatalf("LinRange[%d] = %g", i, v[i])
		}
	}
	if got := LinRange(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("single-point range %v", got)
	}
}

func TestPaperSpaceGeometry(t *testing.T) {
	s := PaperSpace(8)
	pts := s.Points()
	// baseline: 3 bits × 8 noise; CS: ×3 M × 1 CHold.
	want := 3*8 + 3*8*3
	if len(pts) != want {
		t.Fatalf("paper space size %d, want %d", len(pts), want)
	}
	if s.Size() != want {
		t.Fatalf("Size() disagrees")
	}
	nBase := 0
	for _, p := range pts {
		if p.Arch == core.ArchBaseline {
			nBase++
			if p.M != 0 {
				t.Fatal("baseline point carries M")
			}
		} else if p.M != 75 && p.M != 150 && p.M != 192 {
			t.Fatalf("unexpected M %d", p.M)
		}
	}
	if nBase != 24 {
		t.Fatalf("baseline point count %d", nBase)
	}
}

func TestSpaceDefaultsForEmptyCSAxes(t *testing.T) {
	s := Space{
		Architectures: []core.Architecture{core.ArchCS},
		Bits:          []int{8},
		LNANoise:      []float64{5e-6},
	}
	pts := s.Points()
	if len(pts) != 1 || pts[0].M != 150 || pts[0].CHold != 0 {
		t.Fatalf("defaulted CS point %+v", pts)
	}
}

// fakeResults builds a synthetic result set for Pareto/filter tests.
func fakeResults() []core.Result {
	mk := func(pwr, snr, acc, area float64, arch core.Architecture) core.Result {
		return core.Result{
			Point:      core.DesignPoint{Arch: arch, Bits: 8, LNANoise: 1e-6},
			MeanSNRdB:  snr,
			Accuracy:   acc,
			TotalPower: pwr,
			AreaCaps:   area,
		}
	}
	return []core.Result{
		mk(1e-6, 10, 0.90, 300, core.ArchBaseline),
		mk(2e-6, 20, 0.95, 400, core.ArchBaseline),
		mk(3e-6, 15, 0.93, 500, core.ArchBaseline), // dominated by the 2µW point
		mk(4e-6, 30, 0.99, 9000, core.ArchCS),
		mk(5e-6, 25, 0.97, 12000, core.ArchCS), // dominated
		mk(6e-6, 40, 0.995, 15000, core.ArchCS),
	}
}

func TestParetoFront(t *testing.T) {
	front := ParetoFront(fakeResults(), QualitySNR)
	if len(front) != 4 {
		t.Fatalf("front size %d, want 4", len(front))
	}
	// Sorted by power, strictly improving quality.
	for i := 1; i < len(front); i++ {
		if front[i].TotalPower < front[i-1].TotalPower {
			t.Fatal("front not sorted by power")
		}
		if QualitySNR(front[i]) <= QualitySNR(front[i-1]) {
			t.Fatal("front quality not strictly improving")
		}
	}
	if ParetoFront(nil, QualitySNR) != nil {
		t.Fatal("empty input should give nil front")
	}
}

func TestParetoFrontProperty(t *testing.T) {
	// No front member may be dominated by any input point.
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		var rs []core.Result
		for i := 0; i < 30; i++ {
			rs = append(rs, core.Result{
				TotalPower: rng(),
				MeanSNRdB:  rng() * 40,
			})
		}
		front := ParetoFront(rs, QualitySNR)
		for _, fm := range front {
			for _, r := range rs {
				if r.TotalPower <= fm.TotalPower && r.MeanSNRdB >= fm.MeanSNRdB &&
					(r.TotalPower < fm.TotalPower || r.MeanSNRdB > fm.MeanSNRdB) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newTestRand(seed int64) func() float64 {
	s := uint64(seed)*2654435761 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1e6) / 1e6
	}
}

func TestFilterArea(t *testing.T) {
	rs := fakeResults()
	kept := FilterArea(rs, 1000)
	if len(kept) != 3 {
		t.Fatalf("kept %d, want 3 baseline-sized designs", len(kept))
	}
	if got := FilterArea(rs, 0); len(got) != len(rs) {
		t.Fatal("zero cap should keep everything")
	}
}

func TestFilterArch(t *testing.T) {
	rs := fakeResults()
	if got := FilterArch(rs, core.ArchCS); len(got) != 3 {
		t.Fatalf("CS filter kept %d", len(got))
	}
}

func TestOptimum(t *testing.T) {
	rs := fakeResults()
	best, ok := Optimum(rs, QualityAccuracy, 0.98)
	if !ok {
		t.Fatal("no optimum found")
	}
	if best.TotalPower != 4e-6 {
		t.Fatalf("optimum power %g, want the cheapest >= 0.98 point", best.TotalPower)
	}
	if _, ok := Optimum(rs, QualityAccuracy, 0.999); ok {
		t.Fatal("impossible constraint should report no optimum")
	}
}

func TestSweepRunsAllPointsInParallel(t *testing.T) {
	ds := eeg.Synthesize(eeg.DefaultConfig(11, 8))
	train, test := ds.Split(0.25)
	det := classify.TrainDetector(train, classify.DetectorConfig{
		Seed: 11, Train: classify.TrainOptions{Epochs: 40},
	})
	ev, err := core.NewEvaluator(core.Config{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(),
		Dataset: test, Detector: det, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := []core.DesignPoint{
		{Arch: core.ArchBaseline, Bits: 6, LNANoise: 2e-6},
		{Arch: core.ArchBaseline, Bits: 8, LNANoise: 2e-6},
		{Arch: core.ArchBaseline, Bits: 8, LNANoise: 10e-6},
		{Arch: core.ArchCS, Bits: 8, LNANoise: 5e-6, M: 96},
	}
	var calls []int
	sweep, err := NewSweep(ev, WithWorkers(3), WithProgress(func(done, total int) {
		// The engine invokes Progress serially, so no locking is needed.
		calls = append(calls, done)
		if total != len(pts) {
			t.Errorf("total = %d", total)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sweep.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(pts) {
		t.Fatalf("result count %d", len(rs))
	}
	for i, r := range rs {
		if r.Point != pts[i] {
			t.Fatalf("result %d out of order: %+v", i, r.Point)
		}
		if r.TotalPower <= 0 || r.Err != nil {
			t.Fatalf("point %d unevaluated: %v", i, r.Err)
		}
	}
	if len(calls) != len(pts) {
		t.Fatalf("progress callbacks %d", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress counts not monotonic: %v", calls)
		}
	}
	// Sequential and parallel runs agree bit-for-bit; the serial engine
	// also shares cached evaluations with an equivalent evaluator rebuilt
	// from the same config (fingerprint-keyed cache).
	cache := NewMemoryCache()
	serial, err := NewSweep(ev, WithWorkers(1), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	again, err := serial.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if rs[i].MeanSNRdB != again[i].MeanSNRdB || rs[i].TotalPower != again[i].TotalPower {
			t.Fatalf("parallel and serial sweeps disagree at %d", i)
		}
	}
	ev2, err := core.NewEvaluator(core.Config{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(),
		Dataset: test, Detector: det, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Fingerprint() != ev.Fingerprint() {
		t.Fatal("equal configs should produce equal fingerprints")
	}
	rebuilt, err := NewSweep(ev2, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := rebuilt.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rebuilt.Metrics().CacheHits; got != int64(len(pts)) {
		t.Fatalf("rebuilt evaluator hit the cache %d times, want %d", got, len(pts))
	}
	for i := range cached {
		if cached[i].TotalPower != rs[i].TotalPower {
			t.Fatalf("cached result %d diverged", i)
		}
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(fakeResults()[0])
	if s == "" {
		t.Fatal("empty description")
	}
}

func TestBisectNoiseFloor(t *testing.T) {
	ds := eeg.Synthesize(eeg.DefaultConfig(12, 8))
	train, test := ds.Split(0.25)
	det := classify.TrainDetector(train, classify.DetectorConfig{
		Seed: 12, Train: classify.TrainOptions{Epochs: 40},
	})
	ev, err := core.NewEvaluator(core.Config{
		Tech: tech.GPDK045(), Sys: tech.DefaultSystem(),
		Dataset: test, Detector: det, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DesignPoint{Arch: core.ArchBaseline, Bits: 8}
	best, ok := BisectNoiseFloor(ev, p, QualityAccuracy, 0.9, 1e-6, 20e-6, 4)
	if !ok {
		t.Fatal("bisection found no acceptable design")
	}
	if best.Accuracy < 0.9 {
		t.Fatalf("refined design misses the constraint: %g", best.Accuracy)
	}
	// The refined point must be no more expensive than the quietest one.
	quiet := ev.Evaluate(core.DesignPoint{Arch: core.ArchBaseline, Bits: 8, LNANoise: 1e-6})
	if best.TotalPower > quiet.TotalPower {
		t.Fatalf("refinement made things worse: %g vs %g", best.TotalPower, quiet.TotalPower)
	}
	// An impossible constraint reports ok=false.
	if _, ok := BisectNoiseFloor(ev, p, QualityAccuracy, 1.1, 1e-6, 20e-6, 3); ok {
		t.Fatal("impossible constraint accepted")
	}
}

// thresholdEval is an analytic refinement target: quality 1 below the
// vn threshold and 0 above it, power 1/vn, every call recorded.
type thresholdEval struct {
	threshold float64
	errAt     func(vn float64) bool
	calls     []float64
}

func (e *thresholdEval) Evaluate(p core.DesignPoint) core.Result {
	e.calls = append(e.calls, p.LNANoise)
	if e.errAt != nil && e.errAt(p.LNANoise) {
		return core.Result{Point: p, Err: errors.New("injected")}
	}
	r := core.Result{Point: p, TotalPower: 1 / p.LNANoise}
	if p.LNANoise <= e.threshold {
		r.Accuracy = 1
	}
	return r
}

// TestBisectNoiseFloorEdgeCases pins the refinement contract on the
// boundaries: degenerate intervals collapse to one evaluation at lo,
// iters <= 0 selects the default depth, an unreachable floor reports
// ok=false after a single probe, and error rows never satisfy the floor.
func TestBisectNoiseFloorEdgeCases(t *testing.T) {
	p := core.DesignPoint{Arch: core.ArchBaseline, Bits: 8}
	cases := []struct {
		name      string
		threshold float64
		errAt     func(float64) bool
		minQ      float64
		lo, hi    float64
		iters     int
		wantOK    bool
		wantCalls int
		wantVnMin float64 // accepted vn must be in [wantVnMin, threshold]
	}{
		{name: "default iters", threshold: 5e-6, minQ: 0.5,
			lo: 1e-6, hi: 20e-6, iters: 0, wantOK: true, wantCalls: 7, wantVnMin: 4e-6},
		{name: "explicit iters", threshold: 5e-6, minQ: 0.5,
			lo: 1e-6, hi: 20e-6, iters: 10, wantOK: true, wantCalls: 11, wantVnMin: 4.9e-6},
		{name: "non-bracketing interval", threshold: 5e-6, minQ: 0.5,
			lo: 20e-6, hi: 1e-6, iters: 4, wantOK: false, wantCalls: 1},
		{name: "inverted but feasible at lo", threshold: 5e-6, minQ: 0.5,
			lo: 2e-6, hi: 1e-6, iters: 4, wantOK: true, wantCalls: 1, wantVnMin: 2e-6},
		{name: "nonpositive lo", threshold: 5e-6, minQ: 0.5,
			lo: 0, hi: 20e-6, iters: 4, wantOK: true, wantCalls: 1, wantVnMin: 0},
		{name: "nan bound", threshold: 5e-6, minQ: 0.5,
			lo: 1e-6, hi: math.NaN(), iters: 4, wantOK: true, wantCalls: 1, wantVnMin: 1e-6},
		{name: "floor unreachable", threshold: 5e-7, minQ: 0.5,
			lo: 1e-6, hi: 20e-6, iters: 4, wantOK: false, wantCalls: 1},
		{name: "floor met everywhere", threshold: 1, minQ: 0.5,
			lo: 1e-6, hi: 20e-6, iters: 8, wantOK: true, wantCalls: 9, wantVnMin: 19e-6},
		{name: "point interval", threshold: 5e-6, minQ: 0.5,
			lo: 2e-6, hi: 2e-6, iters: 4, wantOK: true, wantCalls: 5, wantVnMin: 2e-6},
		{name: "error row at lo", threshold: 5e-6, minQ: 0,
			errAt: func(vn float64) bool { return vn == 1e-6 },
			lo:    1e-6, hi: 20e-6, iters: 4, wantOK: false, wantCalls: 1},
		{name: "error rows shrink from above", threshold: 5e-6, minQ: 0.5,
			errAt: func(vn float64) bool { return vn > 5e-6 },
			lo:    1e-6, hi: 20e-6, iters: 6, wantOK: true, wantCalls: 7, wantVnMin: 3e-6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ev := &thresholdEval{threshold: c.threshold, errAt: c.errAt}
			best, ok := BisectNoiseFloor(ev, p, QualityAccuracy, c.minQ, c.lo, c.hi, c.iters)
			if ok != c.wantOK {
				t.Fatalf("ok = %v, want %v (best %+v)", ok, c.wantOK, best)
			}
			if len(ev.calls) != c.wantCalls {
				t.Fatalf("evaluations %d (%v), want %d", len(ev.calls), ev.calls, c.wantCalls)
			}
			for _, vn := range ev.calls {
				if vn > max(c.lo, c.hi) || math.IsNaN(vn) && !math.IsNaN(c.lo) && !math.IsNaN(c.hi) {
					t.Fatalf("evaluated vn=%g outside the given interval (%v)", vn, ev.calls)
				}
			}
			if !ok {
				return
			}
			if best.Err != nil {
				t.Fatalf("accepted an error row: %v", best.Err)
			}
			if best.Accuracy < c.minQ {
				t.Fatalf("accepted design misses the floor: %+v", best)
			}
			if vn := best.Point.LNANoise; vn < c.wantVnMin || vn > c.threshold && c.threshold >= c.lo {
				t.Fatalf("accepted vn=%g, want within [%g, %g]", vn, c.wantVnMin, c.threshold)
			}
		})
	}
}
