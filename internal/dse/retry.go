package dse

import (
	"context"
	"fmt"
	"sync"
	"time"

	"efficsense/internal/core"
	"efficsense/internal/xrand"
)

// RetryPolicy bounds per-point retries: an evaluation whose result
// carries a transient error is re-attempted with exponential backoff and
// jitter instead of degrading the point on first failure. Retries run
// inside the engine's evaluation path, so they happen under the
// singleflight (concurrent callers of a flaky key share one retrying
// computation) and every attempt is observed by the duration metrics.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per point, first try
	// included; it must be at least 2 (a policy that never retries is a
	// configuration error — omit WithRetry instead).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms);
	// attempt n waits BaseDelay * 2^(n-1), capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 100 * BaseDelay).
	MaxDelay time.Duration
	// Jitter in [0, 1] randomises each delay down by up to that fraction
	// (full delay at 0), de-synchronising retry storms across workers.
	Jitter float64
	// Retryable classifies errors: only errors it accepts are retried.
	// nil retries every error-carrying result.
	Retryable func(error) bool
	// Seed drives the jitter PRNG, so a retry schedule reproduces
	// exactly in tests.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * p.BaseDelay
	}
	return p
}

func (p RetryPolicy) validate() error {
	if p.MaxAttempts < 2 {
		return fmt.Errorf("dse: retry needs at least 2 attempts, got %d", p.MaxAttempts)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("dse: retry jitter %g outside [0, 1]", p.Jitter)
	}
	if p.MaxDelay < p.BaseDelay && p.MaxDelay > 0 {
		return fmt.Errorf("dse: retry max delay %s below base delay %s", p.MaxDelay, p.BaseDelay)
	}
	return nil
}

// WithRetry opts a Sweep into bounded per-point retries under the given
// policy. Off by default: the engine's historical contract (one attempt,
// errors degrade the point) is unchanged without it.
func WithRetry(p RetryPolicy) Option {
	return func(s *Sweep) error {
		p = p.withDefaults()
		if err := p.validate(); err != nil {
			return err
		}
		s.retry = &retrier{policy: p, rng: xrand.Derive(p.Seed, "dse/retry")}
		return nil
	}
}

// retrier is a Sweep's armed retry policy plus its seeded jitter source
// (locked: workers draw concurrently).
type retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    *xrand.Source
}

func (r *retrier) retryable(err error) bool {
	if r.policy.Retryable == nil {
		return true
	}
	return r.policy.Retryable(err)
}

// backoff computes the jittered delay before retry n (1-based).
func (r *retrier) backoff(n int) time.Duration {
	d := r.policy.BaseDelay << (n - 1)
	if d > r.policy.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = r.policy.MaxDelay
	}
	if r.policy.Jitter > 0 {
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		d = time.Duration(float64(d) * (1 - r.policy.Jitter*u))
	}
	return d
}

// evaluate runs the engine's full per-point evaluation policy: the
// evaluation failpoint, panic recovery, and — when WithRetry armed it —
// bounded backoff retries of transient failures. Each real attempt is
// observed by the duration metrics; ctx bounds the backoff sleeps so a
// cancelled run stops retrying promptly (the last failed result stands).
func (s *Sweep) evaluate(ctx context.Context, p core.DesignPoint) core.Result {
	return s.retryLoop(ctx, p, s.attempt(p))
}

// retryLoop applies the armed retry policy to a first attempt's result:
// while the result is a retryable failure and attempts remain, back off
// and re-attempt per point. The batch path reuses it directly — a point
// whose batch degraded it (an error row, an injected batch fault, a
// panic) gets the same per-point recovery as the per-point path, so
// batching never weakens the retry contract. A nil policy or a sound
// result returns res unchanged.
func (s *Sweep) retryLoop(ctx context.Context, p core.DesignPoint, res core.Result) core.Result {
	if s.retry == nil || res.Err == nil {
		return res
	}
	for n := 1; n < s.retry.policy.MaxAttempts && res.Err != nil && s.retry.retryable(res.Err); n++ {
		timer := time.NewTimer(s.retry.backoff(n))
		select {
		case <-ctx.Done():
			timer.Stop()
			return res
		case <-timer.C:
		}
		s.metrics.retries.Add(1)
		res = s.attempt(p)
	}
	return res
}

// attempt is one observed evaluation: failpoint, panic recovery, timing.
func (s *Sweep) attempt(p core.DesignPoint) core.Result {
	start := time.Now()
	res := s.safeEvaluate(p)
	s.metrics.observeEval(time.Since(start))
	return res
}
