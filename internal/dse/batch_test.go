package dse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"efficsense/internal/core"
	"efficsense/internal/fault"
)

func legacyBits(v float64) uint64 { return math.Float64bits(v) }

// fakeBatchEvaluator upgrades fakeEvaluator with the BatchEvaluator
// contract; rows, when set, overrides the produced results wholesale
// (wrong-length returns, injected error rows).
type fakeBatchEvaluator struct {
	fakeEvaluator
	batchCalls  atomic.Int64
	batchPoints atomic.Int64
	maxBatch    atomic.Int64
	rows        func(pts []core.DesignPoint) []core.Result
	panicOnCall bool
}

func (f *fakeBatchEvaluator) EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result {
	f.batchCalls.Add(1)
	f.batchPoints.Add(int64(len(pts)))
	for {
		cur := f.maxBatch.Load()
		if int64(len(pts)) <= cur || f.maxBatch.CompareAndSwap(cur, int64(len(pts))) {
			break
		}
	}
	if f.panicOnCall {
		panic("injected batch panic")
	}
	if f.rows != nil {
		return f.rows(pts)
	}
	rs := make([]core.Result, len(pts))
	for i, p := range pts {
		rs[i] = f.fakeEvaluator.Evaluate(p)
	}
	return rs
}

// batchPoints builds n points spread over two GroupKey groups (Bits is
// the only axis that differs within a group).
func batchTestPoints(n int) []core.DesignPoint {
	pts := make([]core.DesignPoint, n)
	for i := range pts {
		pts[i] = core.DesignPoint{
			Arch: core.ArchCS, Bits: 6 + i%3, LNANoise: float64(1+i%2) * 1e-6, M: 100,
		}
	}
	return pts
}

func TestWithBatchSizeValidation(t *testing.T) {
	if _, err := NewSweep(&fakeBatchEvaluator{}, WithBatchSize(-1)); err == nil {
		t.Fatal("negative batch size accepted")
	}
	s, err := NewSweep(&fakeBatchEvaluator{}, WithBatchSize(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.batchSize != DefaultBatchSize {
		t.Fatalf("batch size 0 should select the default %d, got %d", DefaultBatchSize, s.batchSize)
	}
}

func TestChunkByGroupOrdersAndBounds(t *testing.T) {
	pts := batchTestPoints(12) // two groups of 6, interleaved in input order
	chunks := chunkByGroup(pts, 4)
	var flat []int
	for _, c := range chunks {
		if len(c) == 0 || len(c) > 4 {
			t.Fatalf("chunk size %d outside (0, 4]", len(c))
		}
		flat = append(flat, c...)
	}
	if len(flat) != len(pts) {
		t.Fatalf("chunks cover %d of %d points", len(flat), len(pts))
	}
	seen := make(map[int]bool)
	for _, idx := range flat {
		if seen[idx] {
			t.Fatalf("index %d dispatched twice", idx)
		}
		seen[idx] = true
	}
	// Group-equal points must be adjacent in the flattened order.
	lastGroup := make(map[core.DesignPoint]int)
	for pos, idx := range flat {
		k := pts[idx].GroupKey()
		if last, ok := lastGroup[k]; ok && pos != last+1 {
			t.Fatalf("group %v split: positions %d and %d", k, last, pos)
		}
		lastGroup[k] = pos
	}
}

// TestRunPrefersBatchDispatch pins the upgrade contract: a sweep over a
// BatchEvaluator dispatches misses in group-ordered multi-point calls,
// the batch metrics see them, and the results match the per-point path.
func TestRunPrefersBatchDispatch(t *testing.T) {
	pts := batchTestPoints(12)
	ev := &fakeBatchEvaluator{}
	s, err := NewSweep(ev, WithCache(NewMemoryCache()), WithEvaluatorID("batch"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if ev.batchCalls.Load() == 0 || ev.maxBatch.Load() < 2 {
		t.Fatalf("batch evaluator not used in batches: %d calls, max %d points",
			ev.batchCalls.Load(), ev.maxBatch.Load())
	}
	snap := s.Metrics()
	if snap.Batches != ev.batchCalls.Load() || snap.BatchPoints != ev.batchPoints.Load() {
		t.Fatalf("batch metrics %d/%d disagree with evaluator %d/%d",
			snap.Batches, snap.BatchPoints, ev.batchCalls.Load(), ev.batchPoints.Load())
	}
	if snap.BatchSizeHist.Count == 0 || snap.BatchLatencyHist.Count == 0 {
		t.Fatal("batch histograms unobserved")
	}
	perPoint, err := NewSweep(&fakeEvaluator{}, WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := perPoint.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if fmt.Sprintf("%+v", rs[i]) != fmt.Sprintf("%+v", want[i]) {
			t.Fatalf("point %d: batch %+v != per-point %+v", i, rs[i], want[i])
		}
	}
}

// TestSweepEvaluateBatch exercises the Sweep-as-BatchEvaluator surface
// the serving layer uses: per-point results in input order, cache
// participation, and ctx degradation.
func TestSweepEvaluateBatch(t *testing.T) {
	pts := batchTestPoints(8)
	cache := NewMemoryCache()
	ev := &fakeBatchEvaluator{}
	s, err := NewSweep(ev, WithCache(cache), WithEvaluatorID("srv"))
	if err != nil {
		t.Fatal(err)
	}
	rs := s.EvaluateBatch(context.Background(), pts)
	if len(rs) != len(pts) {
		t.Fatalf("%d results for %d points", len(rs), len(pts))
	}
	for i, r := range rs {
		if r.Err != nil || r.Point != pts[i] {
			t.Fatalf("row %d: %+v", i, r)
		}
	}
	calls := ev.calls.Load()
	// A second pass is all warm: no further evaluator calls.
	s.EvaluateBatch(context.Background(), pts)
	if got := ev.calls.Load(); got != calls {
		t.Fatalf("warm batch re-evaluated: %d → %d calls", calls, got)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range s.EvaluateBatch(cancelled, batchTestPoints(99)[90:]) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("row %d of cancelled batch: err %v", i, r.Err)
		}
	}
}

// TestBatchFaultDegradesOnlyItsBatch pins the blast-radius contract of
// the dse/evaluate-batch failpoint: one injected batch fault degrades
// exactly the points of that batch into error rows; every other batch
// completes clean, and the job as a whole still returns len(points)
// results.
func TestBatchFaultDegradesOnlyItsBatch(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.PointBatch, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: 1,
	}); err != nil {
		t.Fatal(err)
	}
	pts := batchTestPoints(24)
	s, err := NewSweep(&fakeBatchEvaluator{}, WithWorkers(1), WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	var degraded int
	for _, r := range rs {
		if r.Err != nil {
			if !errors.Is(r.Err, fault.ErrInjected) {
				t.Fatalf("unexpected error kind: %v", r.Err)
			}
			degraded++
		}
	}
	if degraded != 4 {
		t.Fatalf("one injected batch fault degraded %d points, want exactly the batch of 4", degraded)
	}
}

// TestBatchFaultRetriedPerPoint: with WithRetry armed, points degraded
// by a batch-level fault fall back to per-point retries and recover.
func TestBatchFaultRetriedPerPoint(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.PointBatch, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewSweep(&fakeBatchEvaluator{}, WithWorkers(1), WithBatchSize(4),
		WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(context.Background(), batchTestPoints(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("point %s not recovered by per-point retry: %v", r.Point, r.Err)
		}
	}
	if s.Metrics().Retries == 0 {
		t.Fatal("no retries recorded for the degraded batch")
	}
}

// TestBatchPanicDegradesBatch: a panic inside EvaluateBatch degrades
// that batch's points and is counted, instead of killing the worker.
func TestBatchPanicDegradesBatch(t *testing.T) {
	ev := &fakeBatchEvaluator{panicOnCall: true}
	s, err := NewSweep(ev, WithWorkers(1), WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	pts := batchTestPoints(8)
	rs, err := s.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Err == nil {
			t.Fatalf("point %s survived a batch panic", r.Point)
		}
	}
	if s.Metrics().Panics == 0 {
		t.Fatal("batch panic not counted")
	}
}

// TestBatchLengthMismatchDegrades: an evaluator that breaks the
// one-result-per-point contract degrades the batch, never misaligns it.
func TestBatchLengthMismatchDegrades(t *testing.T) {
	ev := &fakeBatchEvaluator{rows: func(pts []core.DesignPoint) []core.Result {
		return make([]core.Result, len(pts)-1)
	}}
	s, err := NewSweep(ev, WithWorkers(1), WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(context.Background(), batchTestPoints(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Err == nil {
			t.Fatal("length-breaking batch evaluator not degraded")
		}
	}
}

// TestEvaluateWarmZeroAllocs pins the allocation-lean hot path: a warm
// memoised Evaluate (key build, byte-key cache hit, metrics) must not
// allocate.
func TestEvaluateWarmZeroAllocs(t *testing.T) {
	s, err := NewSweep(&fakeEvaluator{}, WithCache(NewMemoryCache()), WithEvaluatorID("alloc"))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DesignPoint{Arch: core.ArchCS, Bits: 8, LNANoise: 2e-6, M: 100, CHold: 80e-15}
	s.Evaluate(p) // prime
	avg := testing.AllocsPerRun(1000, func() {
		if r := s.Evaluate(p); r.Err != nil {
			t.Fatal(r.Err)
		}
	})
	if avg > 0.1 {
		t.Fatalf("warm Evaluate allocates %.2f allocs/op, want 0", avg)
	}
}

// TestAppendKeyMatchesLegacyFormat pins the zero-alloc key builder to
// the historical fmt.Sprintf cache-key format: existing persisted or
// shared caches keep hitting across the upgrade.
func TestAppendKeyMatchesLegacyFormat(t *testing.T) {
	for _, p := range append(batchTestPoints(6), core.DesignPoint{}) {
		legacy := fmt.Sprintf("a%d:n%d:v%016x:m%d:c%016x",
			p.Arch, p.Bits, legacyBits(p.LNANoise), p.M, legacyBits(p.CHold))
		if got := string(p.AppendKey(nil)); got != legacy {
			t.Fatalf("AppendKey %q != legacy key %q", got, legacy)
		}
		if p.Key() != legacy {
			t.Fatalf("Key %q != legacy key %q", p.Key(), legacy)
		}
	}
}
