package dse

import (
	"sync/atomic"
	"time"

	"efficsense/internal/obs"
)

// Metrics is the observability layer of a Sweep: lock-free counters
// updated by the workers, snapshotted on demand. Counters are cumulative
// across Runs of the same Sweep (a second constrained query keeps adding
// to the same hit counts); Total/Done and the wall clock restart per Run
// so progress displays and ETA stay meaningful.
type Metrics struct {
	total     atomic.Int64
	done      atomic.Int64
	evaluated atomic.Int64
	cacheHits atomic.Int64
	deduped   atomic.Int64
	panics    atomic.Int64
	retries   atomic.Int64
	evalNanos atomic.Int64
	minNanos  atomic.Int64
	maxNanos  atomic.Int64
	startNano atomic.Int64

	batches     atomic.Int64
	batchPoints atomic.Int64

	// evalHist distributes per-point evaluation durations over fixed
	// buckets (obs.EvalBuckets), feeding the Snapshot quantiles and the
	// serving layer's Prometheus histogram. Set once by initHistogram
	// before any worker runs; nil (zero-value Metrics) disables it.
	evalHist *obs.Histogram
	// batchSizeHist and batchHist describe batch dispatch: how many
	// points each EvaluateBatch call carried, and how long it took.
	batchSizeHist *obs.Histogram
	batchHist     *obs.Histogram
}

// BatchSizeBuckets are the batch-size histogram bounds (points per
// EvaluateBatch call): powers of two up to well past DefaultBatchSize.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// initHistogram attaches the eval-duration and batch histograms. NewSweep
// calls it exactly once at construction, before any worker can observe.
func (m *Metrics) initHistogram() {
	m.evalHist = obs.NewHistogram(obs.EvalBuckets)
	m.batchSizeHist = obs.NewHistogram(BatchSizeBuckets)
	m.batchHist = obs.NewHistogram(obs.EvalBuckets)
}

// observeBatch records one batched evaluator call of n points.
func (m *Metrics) observeBatch(n int, d time.Duration) {
	m.batches.Add(1)
	m.batchPoints.Add(int64(n))
	if m.batchSizeHist != nil {
		m.batchSizeHist.Observe(float64(n))
	}
	if m.batchHist != nil {
		m.batchHist.Observe(d.Seconds())
	}
}

// beginRun resets the per-run progress window.
func (m *Metrics) beginRun(total int) {
	m.total.Store(int64(total))
	m.done.Store(0)
	m.startNano.Store(time.Now().UnixNano())
}

func (m *Metrics) observeEval(d time.Duration) {
	n := int64(d)
	m.evaluated.Add(1)
	m.evalNanos.Add(n)
	if m.evalHist != nil {
		m.evalHist.Observe(d.Seconds())
	}
	for {
		cur := m.minNanos.Load()
		if cur != 0 && cur <= n {
			break
		}
		if m.minNanos.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := m.maxNanos.Load()
		if cur >= n {
			break
		}
		if m.maxNanos.CompareAndSwap(cur, n) {
			break
		}
	}
}

// Snapshot is a point-in-time reading of a sweep's Metrics.
type Snapshot struct {
	// Total and Done describe the current (or last) Run.
	Total, Done int
	// Evaluated counts real evaluator calls; CacheHits counts points
	// served from the memoisation cache; Deduped counts points served by
	// joining an identical in-flight evaluation (singleflight, caches
	// implementing Flight); Panics counts evaluations that panicked and
	// were degraded into error-carrying results. All four are cumulative
	// across Runs.
	Evaluated, CacheHits, Deduped, Panics int64
	// Retries counts re-attempted evaluations under WithRetry (each
	// counted attempt is also in Evaluated); cumulative across Runs.
	Retries int64
	// Batches counts batched evaluator calls (BatchEvaluator dispatch)
	// and BatchPoints the cache-miss points they carried; cumulative
	// across Runs. Zero on per-point engines.
	Batches, BatchPoints int64
	// Elapsed is the wall-clock time since the current Run started.
	Elapsed time.Duration
	// MeanEval, MinEval, MaxEval summarise per-point evaluation time
	// (cache hits excluded — they cost microseconds).
	MeanEval, MinEval, MaxEval time.Duration
	// P50Eval, P90Eval, P99Eval are eval-duration quantiles estimated
	// from EvalHist by linear interpolation within its fixed buckets —
	// the tail the mean hides. Zero when no evaluation has happened (or
	// on a zero-value Metrics with no histogram attached).
	P50Eval, P90Eval, P99Eval time.Duration
	// EvalHist is the raw eval-duration histogram snapshot, cumulative
	// across Runs; the serving layer merges these across engines into
	// the efficsense_eval_duration_seconds exposition.
	EvalHist obs.Snapshot
	// BatchSizeHist and BatchLatencyHist are the batch-dispatch
	// histograms (points per batched call; seconds per batched call),
	// feeding the serving layer's efficsense_batch_size_points and
	// efficsense_batch_duration_seconds expositions.
	BatchSizeHist, BatchLatencyHist obs.Snapshot
	// Throughput is completed points per second in the current Run.
	Throughput float64
	// ETA estimates the time to finish the current Run at the observed
	// throughput; zero when done or when no point has completed yet.
	ETA time.Duration
}

// Snapshot returns a consistent-enough view for progress displays; it
// does not pause the workers.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Total:       int(m.total.Load()),
		Done:        int(m.done.Load()),
		Evaluated:   m.evaluated.Load(),
		CacheHits:   m.cacheHits.Load(),
		Deduped:     m.deduped.Load(),
		Panics:      m.panics.Load(),
		Retries:     m.retries.Load(),
		Batches:     m.batches.Load(),
		BatchPoints: m.batchPoints.Load(),
		MinEval:     time.Duration(m.minNanos.Load()),
		MaxEval:     time.Duration(m.maxNanos.Load()),
	}
	if s.Evaluated > 0 {
		s.MeanEval = time.Duration(m.evalNanos.Load() / s.Evaluated)
	}
	if m.evalHist != nil {
		s.EvalHist = m.evalHist.Snapshot()
		s.P50Eval = time.Duration(s.EvalHist.Quantile(0.50) * float64(time.Second))
		s.P90Eval = time.Duration(s.EvalHist.Quantile(0.90) * float64(time.Second))
		s.P99Eval = time.Duration(s.EvalHist.Quantile(0.99) * float64(time.Second))
	}
	if m.batchSizeHist != nil {
		s.BatchSizeHist = m.batchSizeHist.Snapshot()
	}
	if m.batchHist != nil {
		s.BatchLatencyHist = m.batchHist.Snapshot()
	}
	if start := m.startNano.Load(); start > 0 {
		s.Elapsed = time.Since(time.Unix(0, start))
	}
	if s.Done > 0 && s.Elapsed > 0 {
		s.Throughput = float64(s.Done) / s.Elapsed.Seconds()
		if remaining := s.Total - s.Done; remaining > 0 {
			s.ETA = time.Duration(float64(s.Elapsed) / float64(s.Done) * float64(remaining))
		}
	}
	return s
}
