package dse

import (
	"context"
	"fmt"
	"sync"
	"time"

	"efficsense/internal/core"
	"efficsense/internal/fault"
)

// BatchEvaluator is optionally implemented by evaluators that can score
// several design points in one call — the batch-first contract of the
// evaluation redesign. The engine prefers it over per-point Evaluate
// (the same upgrade pattern as the Flight cache interface): cache-miss
// points are dispatched to EvaluateBatch in group-ordered chunks, so an
// evaluator that shares work across points (notably *core.Evaluator,
// which amplifies and encodes each record once per GroupKey group)
// actually receives the points that can share it together.
//
// EvaluateBatch must return exactly one Result per input point, in input
// order, with Result.Err set on per-point failures (the degradation
// contract: an error row, never a lost point), and must be safe for
// concurrent calls. Results must be identical to evaluating each point
// alone — batching is a performance contract, not a semantic one.
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result
}

// DefaultBatchSize is the chunk size the engine dispatches to a
// BatchEvaluator when WithBatchSize is not given. Large enough to cover
// several ADC-resolution groups per call (the paper grid has three Bits
// values per group), small enough to keep the worker pool's progress
// granularity and cancellation latency reasonable.
const DefaultBatchSize = 16

// WithBatchSize bounds how many cache-miss points the engine hands to a
// batch evaluator per EvaluateBatch call. n = 0 selects
// DefaultBatchSize; n = 1 disables batch dispatch (every point takes the
// historical per-point path); negative n is a construction error. The
// option is inert when the evaluator does not implement BatchEvaluator.
//
// Batched misses trade singleflight de-duplication for work sharing: a
// chunk with two or more misses evaluates them in one EvaluateBatch call
// outside any Flight cache's flight table (results are still Put, so
// concurrent identical sweeps can at worst duplicate work, never corrupt
// it). A chunk with a single miss keeps the per-point path and with it
// the exactly-once flight guarantee.
func WithBatchSize(n int) Option {
	return func(s *Sweep) error {
		if n < 0 {
			return fmt.Errorf("dse: negative batch size %d", n)
		}
		s.batchSize = n
		return nil
	}
}

// BytesCache is optionally implemented by caches that can serve lookups
// for a key built in a caller-owned byte buffer, sparing the hot warm
// path the string conversion. GetBytes must behave exactly like
// Get(string(key)) and must not retain key.
type BytesCache interface {
	GetBytes(key []byte) (core.Result, bool)
}

// keyBuf is a pooled cache-key buffer: the warm path builds
// "evalID/pointKey" into it and looks the bytes up directly, so a
// memoised Evaluate allocates nothing.
type keyBuf struct{ b []byte }

var keyBufPool = sync.Pool{New: func() any { return &keyBuf{b: make([]byte, 0, 160)} }}

// appendKey builds the cache key for p into dst.
func (s *Sweep) appendKey(dst []byte, p core.DesignPoint) []byte {
	dst = append(dst, s.evalID...)
	dst = append(dst, '/')
	return p.AppendKey(dst)
}

// cacheGetBytes looks key up, using the cache's byte-key fast path when
// it has one.
func (s *Sweep) cacheGetBytes(key []byte) (core.Result, bool) {
	if bc, ok := s.cache.(BytesCache); ok {
		return bc.GetBytes(key)
	}
	return s.cache.Get(string(key))
}

// EvaluateBatch scores a batch of points through the engine — cache
// lookups, batch dispatch to a BatchEvaluator, panic recovery, retries
// and metrics included — returning one result per point in input order,
// so a Sweep is itself a BatchEvaluator. Serving layers hand a
// `{"points": [...]}` request straight to it and get the PR 5
// degradation shape back: per-point error rows, never a lost batch. A
// cancelled ctx degrades the not-yet-dispatched points with ctx.Err().
func (s *Sweep) EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result {
	out := make([]core.Result, len(pts))
	if len(pts) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	complete := func(idx int, res core.Result, cached bool, dur time.Duration) {
		out[idx] = res
	}
	if s.batch == nil || s.batchSize == 1 || len(pts) == 1 {
		for i := range pts {
			if err := ctx.Err(); err != nil {
				out[i] = core.Result{Point: pts[i], Err: err}
				continue
			}
			out[i], _, _ = s.evalPoint(ctx, pts[i])
		}
		return out
	}
	for _, chunk := range chunkByGroup(pts, s.batchSize) {
		if err := ctx.Err(); err != nil {
			for _, idx := range chunk {
				out[idx] = core.Result{Point: pts[idx], Err: err}
			}
			continue
		}
		s.evalChunk(ctx, pts, chunk, complete)
	}
	return out
}

// chunkByGroup orders point indices so points equal under GroupKey are
// adjacent (first-seen group order, input order within a group) and
// slices the ordering into chunks of at most size. Grid enumerations
// interleave the ADC-resolution axis with the others, so without this
// reordering a contiguous chunk would almost never contain the points
// that can share an encoded waveform.
func chunkByGroup(pts []core.DesignPoint, size int) [][]int {
	groups := make(map[core.DesignPoint][]int)
	var order []core.DesignPoint
	for i, p := range pts {
		k := p.GroupKey()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	flat := make([]int, 0, len(pts))
	for _, k := range order {
		flat = append(flat, groups[k]...)
	}
	chunks := make([][]int, 0, (len(flat)+size-1)/size)
	for off := 0; off < len(flat); off += size {
		end := off + size
		if end > len(flat) {
			end = len(flat)
		}
		chunks = append(chunks, flat[off:end])
	}
	return chunks
}

// evalChunk serves one chunk of point indices: cache hits complete
// immediately, a lone miss takes the per-point path (keeping the
// singleflight guarantee of Flight caches), and two or more misses go to
// the batch evaluator in one call. Per-point faults — the dse/evaluate
// failpoint, error rows out of the batch — degrade (or retry) that point
// alone; a batch-level fault or panic degrades exactly the points of
// this batch.
func (s *Sweep) evalChunk(ctx context.Context, points []core.DesignPoint, idxs []int, complete func(idx int, res core.Result, cached bool, dur time.Duration)) {
	miss := make([]int, 0, len(idxs))
	if s.cache != nil {
		kb := keyBufPool.Get().(*keyBuf)
		for _, idx := range idxs {
			kb.b = s.appendKey(kb.b[:0], points[idx])
			if r, ok := s.cacheGetBytes(kb.b); ok {
				s.metrics.cacheHits.Add(1)
				complete(idx, r, true, 0)
				continue
			}
			miss = append(miss, idx)
		}
		keyBufPool.Put(kb)
	} else {
		miss = append(miss, idxs...)
	}
	// A partitioned cache (cluster peering) owns only part of the
	// keyspace: misses owned elsewhere leave the batch and take the
	// per-point path, where the cache can fetch them from the key's
	// owner instead of computing here. Owned misses keep batching.
	if part, ok := s.cache.(Partitioned); ok && len(miss) > 0 {
		owned := make([]int, 0, len(miss))
		kb := keyBufPool.Get().(*keyBuf)
		for _, idx := range miss {
			kb.b = s.appendKey(kb.b[:0], points[idx])
			if part.Owned(string(kb.b)) {
				owned = append(owned, idx)
				continue
			}
			res, cached, dur := s.evalPoint(ctx, points[idx])
			complete(idx, res, cached, dur)
		}
		keyBufPool.Put(kb)
		miss = owned
	}
	switch len(miss) {
	case 0:
		return
	case 1:
		res, cached, dur := s.evalPoint(ctx, points[miss[0]])
		complete(miss[0], res, cached, dur)
		return
	}
	// The per-point failpoint fires first, exactly as on the per-point
	// path: an injected fault degrades (or retries) its point alone and
	// the survivors still batch together.
	live := miss[:0]
	for _, idx := range miss {
		start := time.Now()
		if err := fault.Fire(fault.PointEvaluate); err != nil {
			s.metrics.observeEval(time.Since(start))
			res := s.retryLoop(ctx, points[idx], core.Result{Point: points[idx], Err: err})
			s.finishMiss(idx, points[idx], res, 0, complete)
			continue
		}
		live = append(live, idx)
	}
	if len(live) == 0 {
		return
	}
	pts := make([]core.DesignPoint, len(live))
	for k, idx := range live {
		pts[k] = points[idx]
	}
	start := time.Now()
	rs := s.evaluateBatchGuarded(ctx, pts)
	dur := time.Since(start)
	s.metrics.observeBatch(len(pts), dur)
	// Per-point duration metrics see each point's share of the batch.
	share := dur / time.Duration(len(pts))
	for k, idx := range live {
		s.metrics.observeEval(share)
		res := rs[k]
		if res.Err != nil {
			res = s.retryLoop(ctx, points[idx], res)
		}
		s.finishMiss(idx, points[idx], res, share, complete)
	}
}

// finishMiss caches a freshly evaluated result (sound ones only — the
// engine never pins errors) and completes its point.
func (s *Sweep) finishMiss(idx int, p core.DesignPoint, res core.Result, dur time.Duration, complete func(idx int, res core.Result, cached bool, dur time.Duration)) {
	if s.cache != nil && res.Err == nil {
		kb := keyBufPool.Get().(*keyBuf)
		kb.b = s.appendKey(kb.b[:0], p)
		s.cache.Put(string(kb.b), res)
		keyBufPool.Put(kb)
	}
	complete(idx, res, false, dur)
}

// evaluateBatchGuarded is one guarded batch evaluator call: the
// dse/evaluate-batch failpoint fires first, a panic anywhere in the
// batch is recovered, and a length-breaking evaluator is degraded — in
// every case into error rows for exactly this batch's points.
func (s *Sweep) evaluateBatchGuarded(ctx context.Context, pts []core.DesignPoint) (rs []core.Result) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			rs = batchErrorRows(pts, fmt.Errorf("dse: batch evaluation of %d points panicked: %v", len(pts), r))
		}
	}()
	if err := fault.Fire(fault.PointBatch); err != nil {
		return batchErrorRows(pts, fmt.Errorf("dse: batch of %d points: %w", len(pts), err))
	}
	rs = s.batch.EvaluateBatch(ctx, pts)
	if len(rs) != len(pts) {
		return batchErrorRows(pts, fmt.Errorf("dse: batch evaluator returned %d results for %d points", len(rs), len(pts)))
	}
	return rs
}

// batchErrorRows degrades every point of a batch into an error row.
func batchErrorRows(pts []core.DesignPoint, err error) []core.Result {
	rs := make([]core.Result, len(pts))
	for i, p := range pts {
		rs[i] = core.Result{Point: p, Err: err}
	}
	return rs
}

// runBatched is Run's worker pool in batch mode: workers drain
// group-ordered chunks instead of single indices. Cancellation stops
// dispatching further chunks; in-flight chunks run to completion (the
// batch evaluator itself degrades its remaining groups on a cancelled
// ctx, so the wait is bounded).
func (s *Sweep) runBatched(ctx context.Context, points []core.DesignPoint, workers int, complete func(idx int, res core.Result, cached bool, dur time.Duration)) {
	chunks := chunkByGroup(points, s.batchSize)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	jobs := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idxs := range jobs {
				s.evalChunk(ctx, points, idxs, complete)
			}
		}()
	}
dispatch:
	for _, c := range chunks {
		select {
		case jobs <- c:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
}
