package dse

import (
	"context"
	"sync"
	"sync/atomic"

	"efficsense/internal/core"
)

// Cache memoises design-point evaluations. Implementations must be safe
// for concurrent use by many sweep workers. Keys already encode both the
// design point and the evaluator identity (see Sweep), so one cache can
// back any number of sweeps and evaluators without cross-contamination.
type Cache interface {
	// Get returns the cached result for key, if present.
	Get(key string) (core.Result, bool)
	// Put stores a result under key. Implementations may evict.
	Put(key string, r core.Result)
}

// Flight is optionally implemented by caches that can collapse
// concurrent misses on one key into a single computation (singleflight).
// Do returns the value for key, calling fn to compute it on a cold
// miss: hit reports the value was already cached; shared reports fn ran
// in another goroutine and its result was handed over without a second
// evaluation. The engine prefers Do over Get/Put when the attached
// cache provides it, so N concurrent sweeps over one design point cost
// one evaluation (see internal/cache.LRU, the bounded implementation).
type Flight interface {
	Do(key string, fn func() core.Result) (r core.Result, hit, shared bool)
}

// PointFlight extends Flight for caches that need the evaluation
// context and the design point itself to fill a miss — the cluster
// peering cache, which may fetch the result from the key's owner over
// the network instead of running fn. The engine prefers DoPoint over Do
// when the cache provides it. The (r, hit, shared) contract matches
// Flight.Do, with one addition: a peer-served result reports hit=true,
// since it cost this node a lookup rather than an evaluation.
type PointFlight interface {
	DoPoint(ctx context.Context, key string, p core.DesignPoint, fn func() core.Result) (r core.Result, hit, shared bool)
}

// Partitioned is optionally implemented by caches that own only a
// segment of the keyspace (cluster peering). Owned reports whether key
// should be computed on this node. The batch dispatcher keeps owned
// misses together for the batch evaluator and routes remote misses
// through the per-point path, where the cache can fetch them from
// their owners.
type Partitioned interface {
	Owned(key string) bool
}

// MemoryCache is an unbounded in-memory Cache with hit/miss accounting.
// The zero value is not usable; construct with NewMemoryCache. A full
// Table III sweep is ~10² points of a few hundred bytes each, so an
// unbounded map is the right default for CLI one-shots; long-running
// servers should bound their memory with the evicting, singleflight
// internal/cache.LRU instead.
type MemoryCache struct {
	mu     sync.RWMutex
	m      map[string]core.Result
	hits   atomic.Int64
	misses atomic.Int64
}

// NewMemoryCache returns an empty cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{m: make(map[string]core.Result)}
}

// Get implements Cache.
func (c *MemoryCache) Get(key string) (core.Result, bool) {
	c.mu.RLock()
	r, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

// GetBytes implements BytesCache: a Get for a key built in a reused
// byte buffer. The map lookup converts the bytes in place (the compiler
// elides the allocation for a direct m[string(b)] expression), which is
// what keeps the engine's warm path allocation-free.
func (c *MemoryCache) GetBytes(key []byte) (core.Result, bool) {
	c.mu.RLock()
	r, ok := c.m[string(key)]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

// Put implements Cache.
func (c *MemoryCache) Put(key string, r core.Result) {
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
}

// Len returns the number of cached results.
func (c *MemoryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats returns the cumulative hit and miss counts.
func (c *MemoryCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
