package dse

import (
	"context"
	"errors"
	"testing"
	"time"

	"efficsense/internal/cache"
	"efficsense/internal/core"
	"efficsense/internal/fault"
)

// chaosPoints builds n distinct design points.
func chaosPoints(n int) []core.DesignPoint {
	pts := make([]core.DesignPoint, n)
	for i := range pts {
		pts[i] = core.DesignPoint{Arch: core.ArchBaseline, Bits: 4 + i, LNANoise: 1e-6}
	}
	return pts
}

// TestRetryRecoversScheduledFaultsExactly pins the headline reconcile:
// schedule exactly K injected evaluation errors with a retry budget no
// point can exhaust, and the run must complete with zero degraded
// points and Retries == K — every failed attempt retried, no matter how
// the workers interleave over the schedule.
func TestRetryRecoversScheduledFaultsExactly(t *testing.T) {
	t.Cleanup(fault.Reset)
	const scheduled = 5
	if err := fault.Enable(fault.PointEvaluate, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: scheduled,
	}); err != nil {
		t.Fatal(err)
	}
	// MaxAttempts exceeds the whole fault budget, so even the worst-case
	// schedule (one point absorbing every injection) recovers.
	s, err := NewSweep(okEval{}, WithWorkers(4), WithRetry(RetryPolicy{
		MaxAttempts: scheduled + 2, BaseDelay: time.Microsecond,
		Retryable: func(err error) bool { return errors.Is(err, fault.ErrInjected) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(context.Background(), chaosPoints(20))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("point %s degraded despite retries: %v", r.Point, r.Err)
		}
	}
	snap := s.Metrics()
	if snap.Retries != scheduled {
		t.Fatalf("Retries = %d, want exactly the %d scheduled faults", snap.Retries, scheduled)
	}
	if got := fault.Injected(fault.PointEvaluate); got != scheduled {
		t.Fatalf("failpoint injected %d, scheduled %d", got, scheduled)
	}
	if snap.Evaluated != int64(len(rs))+snap.Retries {
		t.Fatalf("Evaluated = %d, want %d points + %d retries", snap.Evaluated, len(rs), snap.Retries)
	}
}

// TestRetryExhaustionDegradesPoint: when every attempt fails, the point
// degrades with the last error and the run still completes.
func TestRetryExhaustionDegradesPoint(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.PointEvaluate, fault.Config{
		Kind: fault.KindError, Probability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewSweep(okEval{}, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(context.Background(), chaosPoints(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !errors.Is(r.Err, fault.ErrInjected) {
			t.Fatalf("want injected error on %s, got %v", r.Point, r.Err)
		}
	}
	if snap := s.Metrics(); snap.Retries != 2*2 {
		t.Fatalf("Retries = %d, want 2 points x 2 retries", snap.Retries)
	}
}

// TestRetryPredicateGatesRetries: non-retryable errors degrade on first
// failure, with no attempts burned.
func TestRetryPredicateGatesRetries(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.PointEvaluate, fault.Config{
		Kind: fault.KindError, Probability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewSweep(okEval{}, WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Microsecond,
		Retryable: func(error) bool { return false },
	}))
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := s.Run(context.Background(), chaosPoints(3))
	for _, r := range rs {
		if r.Err == nil {
			t.Fatal("non-retryable failure unexpectedly recovered")
		}
	}
	if snap := s.Metrics(); snap.Retries != 0 {
		t.Fatalf("Retries = %d for a predicate that rejects everything", snap.Retries)
	}
}

// TestInjectedPanicsDegradeThroughFlight drives panic injection through
// the bounded cache's singleflight: the engine's no-panic contract must
// hold across the cache layer, the panics must be visible in both the
// engine metrics and the cache stats, and the bound must hold.
func TestInjectedPanicsDegradeThroughFlight(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.PointFlight, fault.Config{
		Kind: fault.KindPanic, Probability: 1, MaxInjections: 4,
	}); err != nil {
		t.Fatal(err)
	}
	store := cache.New(4)
	s, err := NewSweep(okEval{}, WithWorkers(4), WithCache(store), WithEvaluatorID("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Run(context.Background(), chaosPoints(12))
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for _, r := range rs {
		if r.Err != nil {
			degraded++
		}
	}
	if degraded != 4 {
		t.Fatalf("%d degraded points, scheduled 4 panics", degraded)
	}
	snap := s.Metrics()
	if snap.Panics != 4 {
		t.Fatalf("engine Panics = %d, want 4", snap.Panics)
	}
	if st := store.Stats(); st.FlightPanics != 4 {
		t.Fatalf("cache FlightPanics = %d, want 4", st.FlightPanics)
	}
	if store.Len() > store.Cap() {
		t.Fatalf("cache bound violated: %d > %d", store.Len(), store.Cap())
	}
}

// TestChaosScheduleIsSeedDeterministic replays one probabilistic fault
// schedule twice from the same seed and demands identical degradation —
// the property that makes a chaos failure reproducible. Each point
// fires the failpoint exactly once (no retries: retried failures feed
// back into the draw count, which is the schedule's one source of
// non-determinism under concurrency), so 4 racing workers must still
// land on the same fault count.
func TestChaosScheduleIsSeedDeterministic(t *testing.T) {
	t.Cleanup(fault.Reset)
	run := func(seed int64) int {
		fault.Reset()
		if err := fault.Enable(fault.PointEvaluate, fault.Config{
			Kind: fault.KindError, Probability: 0.4, Seed: seed,
		}); err != nil {
			t.Fatal(err)
		}
		s, err := NewSweep(okEval{}, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Run(context.Background(), chaosPoints(30))
		if err != nil {
			t.Fatal(err)
		}
		degraded := 0
		for _, r := range rs {
			if r.Err != nil {
				degraded++
			}
		}
		if int64(degraded) != fault.Injected(fault.PointEvaluate) {
			t.Fatalf("degraded %d points but schedule injected %d", degraded, fault.Injected(fault.PointEvaluate))
		}
		return degraded
	}
	d1 := run(11)
	d2 := run(11)
	if d1 != d2 {
		t.Fatalf("same seed diverged: degraded %d then %d", d1, d2)
	}
	if d1 == 0 || d1 == 30 {
		t.Fatalf("probability 0.4 over 30 points degraded %d — degenerate seed", d1)
	}
}

// TestCancellationCutsBackoffShort: a cancelled run must not sit out its
// remaining backoff sleeps.
func TestCancellationCutsBackoffShort(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.PointEvaluate, fault.Config{
		Kind: fault.KindError, Probability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := NewSweep(okEval{}, WithWorkers(1), WithRetry(RetryPolicy{
		MaxAttempts: 10, BaseDelay: 30 * time.Second, MaxDelay: 30 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Run(ctx, chaosPoints(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled run took %v — backoff ignored the context", d)
	}
}

// okEval always succeeds instantly; faults come from the failpoints.
type okEval struct{}

func (okEval) Evaluate(p core.DesignPoint) core.Result {
	return core.Result{Point: p, MeanSNRdB: float64(p.Bits), Accuracy: 0.99, TotalPower: 1}
}
