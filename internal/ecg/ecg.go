// Package ecg is the ECG-telemonitoring workload substrate: a parametric
// single-lead ECG synthesiser in the spirit of the wireless-telemonitoring
// setting of Liu et al. (arXiv:1309.7843), where raw physiological
// waveforms are compressed at the sensor and must be reconstructed to
// diagnostic quality at the receiver. Records are labelled normal or
// arrhythmic (premature ventricular beats over an irregular rhythm), and
// quality is judged by an SNDR gate on the reconstruction rather than by
// a trained classifier — telemonitoring ships the waveform, it does not
// classify in the sensor.
//
// The synthesiser is a sum-of-Gaussians PQRST model per beat (the
// McSharry/ECGSYN lineage, reduced to what the front-end study needs):
// each wave of the complex is one Gaussian bump at a fixed angular offset
// within the beat, beats are placed by a wandering RR process, and
// baseline wander plus electrode noise complete the record. Amplitudes
// are volts at the electrode (~1 mV R peaks), the scale the LNA models
// expect once Config.InputPeak is raised to match.
package ecg

import (
	"fmt"
	"math"

	"efficsense/internal/eeg"
	"efficsense/internal/siggen"
	"efficsense/internal/xrand"
)

// Record geometry: MIT-BIH-like rate, short telemonitoring epochs.
const (
	// NativeRate is the recording rate in Hz (the MIT-BIH rate).
	NativeRate = 360.0
	// RecordSeconds is the epoch duration per record.
	RecordSeconds = 8.0
	// DefaultRecordCount mirrors the EEG default evaluation size.
	DefaultRecordCount = 40
)

// Config parameterises the synthesiser.
type Config struct {
	// Seed makes the dataset reproducible.
	Seed int64
	// Records is the total record count (split evenly between classes).
	Records int
	// HeartRateBPM is the mean normal heart rate (default 72).
	HeartRateBPM float64
	// RPeak is the R-wave amplitude (V). Default 1.1 mV.
	RPeak float64
	// NoiseRMS is the broadband electrode/muscle noise level (V).
	// Default 25 µV.
	NoiseRMS float64
	// WanderAmp is the respiratory baseline-wander amplitude (V).
	// Default 120 µV.
	WanderAmp float64
	// PVCRate is the per-beat probability of a premature ventricular
	// complex in arrhythmic records (default 0.28).
	PVCRate float64
}

// DefaultConfig returns the tuned synthesiser configuration with the
// given seed and record count (0 → DefaultRecordCount).
func DefaultConfig(seed int64, records int) Config {
	if records <= 0 {
		records = DefaultRecordCount
	}
	return Config{
		Seed:         seed,
		Records:      records,
		HeartRateBPM: 72,
		RPeak:        1.1e-3,
		NoiseRMS:     25e-6,
		WanderAmp:    120e-6,
		PVCRate:      0.28,
	}
}

// gaussWave is one wave of the PQRST complex: a Gaussian bump of the
// given amplitude centred at offset (fraction of the RR interval past the
// beat fiducial) with the given width (seconds).
type gaussWave struct {
	amp    float64 // relative to RPeak
	offset float64 // fraction of the RR interval
	width  float64 // seconds
}

// pqrst is the normal-beat morphology (amplitudes relative to the R peak,
// classic lead-II proportions).
var pqrst = []gaussWave{
	{amp: 0.14, offset: -0.20, width: 0.035},   // P
	{amp: -0.12, offset: -0.028, width: 0.010}, // Q
	{amp: 1.00, offset: 0.0, width: 0.011},     // R
	{amp: -0.22, offset: 0.030, width: 0.012},  // S
	{amp: 0.28, offset: 0.26, width: 0.060},    // T
}

// pvc is the premature-ventricular morphology: no P wave, a wide
// high-amplitude biphasic QRS, discordant T.
var pvc = []gaussWave{
	{amp: 1.35, offset: 0.0, width: 0.030},
	{amp: -0.55, offset: 0.065, width: 0.040},
	{amp: -0.35, offset: 0.30, width: 0.075},
}

// Synthesize builds the dataset in the shared labelled-record container.
// Classes alternate — eeg.Interictal labels normal rhythm, eeg.Ictal
// labels arrhythmic records — so any prefix is approximately balanced,
// matching the EEG substrate's contract.
func Synthesize(cfg Config) *eeg.Dataset {
	if cfg.Records <= 0 {
		cfg.Records = DefaultRecordCount
	}
	ds := &eeg.Dataset{Rate: NativeRate, Records: make([]eeg.Record, cfg.Records)}
	for i := range ds.Records {
		label := eeg.Interictal
		if i%2 == 1 {
			label = eeg.Ictal
		}
		rng := xrand.Derive(cfg.Seed, fmt.Sprintf("ecg-record-%d", i))
		ds.Records[i] = eeg.Record{
			Samples: synthesizeRecord(rng, cfg, label),
			Rate:    NativeRate,
			Label:   label,
			ID:      i,
		}
	}
	return ds
}

// synthesizeRecord builds one native-rate record.
func synthesizeRecord(rng *xrand.Source, cfg Config, label eeg.Class) []float64 {
	n := int(RecordSeconds * NativeRate)
	v := make([]float64, n)
	// Per-record physiology: rate and amplitude vary between subjects.
	bpm := cfg.HeartRateBPM * (0.9 + 0.2*rng.Float64())
	rPeak := cfg.RPeak * (0.85 + 0.3*rng.Float64())
	meanRR := 60 / bpm
	// Beat train: normal rhythm has mild respiratory sinus variation;
	// arrhythmic rhythm adds PVCs (early, wide, followed by a
	// compensatory pause) over a jitterier base rhythm.
	rrJitter := 0.03
	if label == eeg.Ictal {
		rrJitter = 0.10
	}
	t := meanRR * rng.Float64() // first fiducial
	for t < RecordSeconds+meanRR {
		rr := meanRR * (1 + rrJitter*rng.Normal(0, 1))
		if rr < 0.3*meanRR {
			rr = 0.3 * meanRR
		}
		morph := pqrst
		amp := rPeak
		if label == eeg.Ictal && rng.Bernoulli(cfg.PVCRate) {
			// Premature ventricular beat: fires early, distorted
			// morphology, then a compensatory pause.
			morph = pvc
			amp = rPeak * (1 + 0.25*rng.Float64())
			t -= 0.25 * meanRR
			rr = 1.45 * meanRR
		}
		addBeat(v, t, rr, amp, morph)
		t += rr
	}
	// Respiratory baseline wander plus broadband electrode noise.
	wanderHz := 0.2 + 0.15*rng.Float64()
	phase := rng.Float64() * 2 * math.Pi
	for i := range v {
		v[i] += cfg.WanderAmp * math.Sin(2*math.Pi*wanderHz*float64(i)/NativeRate+phase)
	}
	noise := siggen.ColoredNoise(rng.Derive("noise"), n, 0.4, cfg.NoiseRMS)
	for i := range v {
		v[i] += noise[i]
	}
	return v
}

// addBeat superimposes one beat's morphology at fiducial time t (seconds).
func addBeat(v []float64, t, rr, amp float64, morph []gaussWave) {
	for _, w := range morph {
		center := t + w.offset*rr
		// ±4 widths covers the bump.
		lo := int((center - 4*w.width) * NativeRate)
		hi := int((center + 4*w.width) * NativeRate)
		if lo < 0 {
			lo = 0
		}
		if hi >= len(v) {
			hi = len(v) - 1
		}
		for i := lo; i <= hi; i++ {
			dt := float64(i)/NativeRate - center
			v[i] += amp * w.amp * math.Exp(-dt*dt/(2*w.width*w.width))
		}
	}
}
