package ecg

import (
	"math"
	"testing"

	"efficsense/internal/classify"
	"efficsense/internal/core"
	"efficsense/internal/eeg"
)

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(DefaultConfig(42, 6))
	b := Synthesize(DefaultConfig(42, 6))
	if len(a.Records) != 6 || len(b.Records) != 6 {
		t.Fatalf("record counts %d/%d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if len(ra.Samples) != len(rb.Samples) {
			t.Fatalf("record %d: lengths differ", i)
		}
		for j := range ra.Samples {
			if ra.Samples[j] != rb.Samples[j] {
				t.Fatalf("record %d sample %d: %g vs %g (not bit-identical)",
					i, j, ra.Samples[j], rb.Samples[j])
			}
		}
	}
	c := Synthesize(DefaultConfig(43, 6))
	same := true
	for j, s := range a.Records[0].Samples {
		if c.Records[0].Samples[j] != s {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical records")
	}
}

func TestSynthesizeShape(t *testing.T) {
	ds := Synthesize(DefaultConfig(7, 0))
	if len(ds.Records) != DefaultRecordCount {
		t.Fatalf("zero records should default to %d, got %d", DefaultRecordCount, len(ds.Records))
	}
	if ds.Rate != NativeRate {
		t.Fatalf("dataset rate %g", ds.Rate)
	}
	wantLen := int(RecordSeconds * NativeRate)
	for i, r := range ds.Records {
		if len(r.Samples) != wantLen {
			t.Fatalf("record %d: %d samples, want %d", i, len(r.Samples), wantLen)
		}
		if r.Rate != NativeRate || r.ID != i {
			t.Fatalf("record %d: rate %g id %d", i, r.Rate, r.ID)
		}
		// Classes alternate so any prefix is balanced.
		want := eeg.Interictal
		if i%2 == 1 {
			want = eeg.Ictal
		}
		if r.Label != want {
			t.Fatalf("record %d: label %v, want %v", i, r.Label, want)
		}
		// Electrode-scale amplitudes: R peaks live near a millivolt, so
		// the record peak must sit well above noise and below 10 mV.
		peak := 0.0
		for _, s := range r.Samples {
			if a := math.Abs(s); a > peak {
				peak = a
			}
		}
		if peak < 0.5e-3 || peak > 10e-3 {
			t.Fatalf("record %d: peak %g V outside electrode ECG scale", i, peak)
		}
	}
}

// TestQualityGate drives the metric with hand-built reconstructions: a
// perfect copy passes, a destroyed one fails, and the confusion matrix
// follows the rhythm labels.
func TestQualityGate(t *testing.T) {
	ds := Synthesize(DefaultConfig(3, 4))
	refs := make([][]float64, len(ds.Records))
	waves := make([][]float64, len(ds.Records))
	labels := make([]eeg.Class, len(ds.Records))
	for i, r := range ds.Records {
		refs[i] = r.Samples
		labels[i] = r.Label
		if i < 2 {
			waves[i] = r.Samples // perfect reconstruction
		} else {
			waves[i] = make([]float64, len(r.Samples)) // all-zero: fails any floor
		}
	}
	acc, conf := QualityGate{}.Score(core.MetricContext{Waves: waves, Refs: refs, Labels: labels})
	want := classify.Confusion{TN: 1, TP: 1, FN: 1, FP: 1}
	if conf != want {
		t.Fatalf("confusion %+v, want %+v", conf, want)
	}
	if acc != 0.5 {
		t.Fatalf("accuracy %g, want 0.5", acc)
	}
}

func TestQualityGateFingerprint(t *testing.T) {
	def := QualityGate{}.Fingerprint()
	if def != (QualityGate{ThresholdDB: DefaultThresholdDB}).Fingerprint() {
		t.Fatal("zero threshold must fingerprint as the default threshold")
	}
	if def == (QualityGate{ThresholdDB: 6}.Fingerprint()) {
		t.Fatal("distinct thresholds collide")
	}
}
