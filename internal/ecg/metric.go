package ecg

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"efficsense/internal/classify"
	"efficsense/internal/core"
	"efficsense/internal/dsp"
	"efficsense/internal/eeg"
)

// DefaultThresholdDB is the reconstruction-SNDR floor a record must meet
// to count as diagnostically usable. Telemonitoring literature treats
// low-teens output SNR as the clinical floor for rhythm reading; the
// default sits there so the gate responds smoothly across the front-end
// design space instead of saturating at 0 or 1.
const DefaultThresholdDB = 12.0

// QualityGate is the ECG-telemonitoring quality metric: the fraction of
// records whose reconstructed waveform reaches ThresholdDB of SNDR
// against the band-limited reference. Unlike the EEG detector it needs
// no training — the telemonitoring application ships waveforms, so
// quality is fidelity, not classification — yet it still fills the
// confusion matrix (a passing record counts as a correct handling of its
// rhythm label) so accuracy-goal searches and fronts work unchanged.
type QualityGate struct {
	// ThresholdDB is the per-record SNDR floor (0 → DefaultThresholdDB).
	ThresholdDB float64
}

// Score implements core.Metric.
func (q QualityGate) Score(ctx core.MetricContext) (float64, classify.Confusion) {
	thr := q.ThresholdDB
	if thr == 0 {
		thr = DefaultThresholdDB
	}
	var conf classify.Confusion
	for i, w := range ctx.Waves {
		ref := ctx.Refs[i]
		n := len(w)
		if len(ref) < n {
			n = len(ref)
		}
		pass := dsp.SNRVersusReference(ref[:n], w[:n]) >= thr
		arrhythmic := i < len(ctx.Labels) && ctx.Labels[i] == eeg.Ictal
		switch {
		case pass && arrhythmic:
			conf.TP++
		case pass:
			conf.TN++
		case arrhythmic:
			conf.FN++
		default:
			conf.FP++
		}
	}
	return conf.Accuracy(), conf
}

// Fingerprint implements core.Metric: the gate is fully determined by its
// kind and threshold.
func (q QualityGate) Fingerprint() uint64 {
	thr := q.ThresholdDB
	if thr == 0 {
		thr = DefaultThresholdDB
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte("ecg-sndr-gate:"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(thr))
	_, _ = h.Write(buf[:])
	return h.Sum64()
}
