package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1.5)
	tb.AddRow("a-much-longer-name", "x")
	var sb strings.Builder
	tb.Render(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count %d: %q", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator line %q", lines[1])
	}
	// Column two starts at the same offset on every row.
	idx := strings.Index(lines[2], "1.5")
	if idx < 0 {
		t.Fatalf("value missing: %q", lines[2])
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(2.44e-6)
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "2.44e-06") {
		t.Fatalf("float formatting: %q", sb.String())
	}
}

func TestTableCellFormatting(t *testing.T) {
	type microwatts float64
	cases := []struct {
		cell interface{}
		want string
	}{
		{float64(2.44e-6), "2.44e-06"},
		{float32(2.5e-6), "2.5e-06"},
		{microwatts(1.234567e-6), "1.235e-06"}, // named float type, %.4g
		{150, "150"},
		// Integer kinds render exactly: %.4g would mangle anything with
		// five or more significant digits into scientific notation.
		{int64(1234567), "1234567"},
		{12345, "12345"},
		{uint(32000), "32000"},
		{int64(-9007199254740993), "-9007199254740993"}, // beyond float64 exactness
		{uint64(18446744073709551615), "18446744073709551615"},
		{true, "true"}, // non-numerics keep %v
	}
	for _, c := range cases {
		tb := NewTable("v")
		tb.AddRow(c.cell)
		var sb strings.Builder
		tb.Render(&sb)
		if !strings.Contains(sb.String(), c.want) {
			t.Errorf("AddRow(%v): got %q, want cell %q", c.cell, sb.String(), c.want)
		}
	}
}

func TestScatterRendersAllSeries(t *testing.T) {
	var sc Scatter
	sc.Title = "test plot"
	sc.XLabel = "power"
	sc.YLabel = "snr"
	sc.Add("baseline", 'o', []float64{1, 2, 3}, []float64{10, 20, 30})
	sc.Add("cs", 'x', []float64{0.5, 1.5}, []float64{15, 35})
	var sb strings.Builder
	sc.Render(&sb)
	out := sb.String()
	for _, want := range []string{"test plot", "o", "x", "legend", "baseline", "cs", "power", "snr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scatter output missing %q:\n%s", want, out)
		}
	}
}

// TestScatterAddRejectsMismatchedSeries is the regression test for the
// silent-truncation defect: Add used to accept unequal X/Y slices and
// Render quietly plotted only the shorter prefix.
func TestScatterAddRejectsMismatchedSeries(t *testing.T) {
	var sc Scatter
	if err := sc.Add("lopsided", '*', []float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched series lengths accepted")
	}
	if len(sc.Series) != 0 {
		t.Fatalf("rejected series still appended: %d series", len(sc.Series))
	}
	if err := sc.Add("square", '*', []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatalf("matched series rejected: %v", err)
	}
	if len(sc.Series) != 1 {
		t.Fatalf("series count %d", len(sc.Series))
	}
}

func TestScatterEmpty(t *testing.T) {
	var sc Scatter
	var sb strings.Builder
	sc.Render(&sb)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatalf("empty scatter output %q", sb.String())
	}
}

func TestScatterLogAxis(t *testing.T) {
	var sc Scatter
	sc.LogX = true
	sc.Add("s", '*', []float64{1e-6, 1e-3, 1}, []float64{1, 2, 3})
	var sb strings.Builder
	sc.Render(&sb)
	if !strings.Contains(sb.String(), "(log)") {
		t.Fatal("log axis not tagged")
	}
}

func TestScatterIgnoresNaN(t *testing.T) {
	var sc Scatter
	nan := 0.0
	nan = nan / nan // NaN without importing math
	sc.Add("s", '*', []float64{1, nan}, []float64{1, 2})
	var sb strings.Builder
	sc.Render(&sb) // must not panic
	if sb.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestScatterConstantAxis(t *testing.T) {
	var sc Scatter
	sc.Add("s", '*', []float64{5, 5}, []float64{1, 1})
	var sb strings.Builder
	sc.Render(&sb) // degenerate ranges must not divide by zero
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"a", "b"}, [][]interface{}{
		{1.5, "plain"},
		{2.44e-6, `with,comma "and quotes"`},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "2.44e-06") {
		t.Fatalf("float cell: %q", out)
	}
	if !strings.Contains(out, `"with,comma ""and quotes"""`) {
		t.Fatalf("escaping: %q", out)
	}
}

func TestCSVFloat32(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"v"}, [][]interface{}{{float32(2.5e-6)}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2.5e-06") {
		t.Fatalf("float32 cell: %q", sb.String())
	}
}

func TestNDJSON(t *testing.T) {
	var sb strings.Builder
	nan := 0.0
	nan /= nan
	err := NDJSON(&sb, []string{"arch", "bits", "total_w", "acc"}, [][]interface{}{
		{"baseline", 8, 8.3e-06, nan},
		{"cs", 7, 2.44e-06}, // short row: trailing columns omitted
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("line count %d: %q", len(lines), sb.String())
	}
	var first map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["arch"] != "baseline" || first["bits"] != float64(8) {
		t.Fatalf("line 1 fields: %v", first)
	}
	if v, ok := first["acc"]; !ok || v != nil {
		t.Fatalf("NaN must become null, got %v", v)
	}
	// Key order follows the headers, making the stream diff-friendly.
	if !strings.HasPrefix(lines[0], `{"arch":`) {
		t.Fatalf("header order not preserved: %q", lines[0])
	}
	var second map[string]interface{}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if _, ok := second["acc"]; ok {
		t.Fatalf("short row grew a column: %v", second)
	}
}

func TestNDJSONBigIntegersStayExact(t *testing.T) {
	line, err := NDJSONRow([]string{"count"}, []interface{}{int64(1234567)})
	if err != nil {
		t.Fatal(err)
	}
	if string(line) != `{"count":1234567}` {
		t.Fatalf("big integer mangled: %s", line)
	}
}

func TestNDJSONRowIsSingleLine(t *testing.T) {
	line, err := NDJSONRow([]string{"s"}, []interface{}{"multi\nline"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsRune(string(line), '\n') {
		t.Fatalf("row payload spans lines: %q", line)
	}
}

func TestBar(t *testing.T) {
	var sb strings.Builder
	Bar(&sb, "breakdown", []string{"LNA", "TX"}, []float64{1e-6, 4e-6}, nil)
	out := sb.String()
	if !strings.Contains(out, "LNA") || !strings.Contains(out, "TX") {
		t.Fatalf("labels missing: %q", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	lnaBar := strings.Count(lines[1], "#")
	txBar := strings.Count(lines[2], "#")
	if txBar <= lnaBar {
		t.Fatalf("bar lengths: lna %d tx %d", lnaBar, txBar)
	}
}

func TestBarZeroValues(t *testing.T) {
	var sb strings.Builder
	Bar(&sb, "", []string{"a"}, []float64{0}, nil) // no division by zero
	if !strings.Contains(sb.String(), "a") {
		t.Fatal("label missing")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if strings.Join(got, "") != "abc" {
		t.Fatalf("sorted keys %v", got)
	}
}
