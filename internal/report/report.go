// Package report renders the framework's outputs: aligned ASCII tables,
// terminal scatter plots (the closest offline equivalent of the paper's
// figures), and CSV emitters so the sweeps can be re-plotted with external
// tooling.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row. Strings pass through; float cells — float64,
// float32 and named float types — render with %.4g so float columns
// keep one notation; integer kinds render exactly (counts and indices
// must not round: %.4g would turn 1234567 into 1.235e+06); anything
// else renders with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return fmt.Sprintf("%.4g", v)
	case float32:
		return fmt.Sprintf("%.4g", float64(v))
	}
	switch rv := reflect.ValueOf(c); rv.Kind() {
	case reflect.Float32, reflect.Float64:
		return fmt.Sprintf("%.4g", rv.Float())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(rv.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(rv.Uint(), 10)
	}
	return fmt.Sprintf("%v", c)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = runeLen(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && runeLen(c) > widths[i] {
				widths[i] = runeLen(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(t.headers))
		for i := range t.headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i, width := range widths {
		seps[i] = strings.Repeat("-", width)
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}

func runeLen(s string) int { return len([]rune(s)) }

func pad(s string, w int) string {
	if d := w - runeLen(s); d > 0 {
		return s + strings.Repeat(" ", d)
	}
	return s
}

// Series is one named point set of a scatter plot.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Scatter renders point series on a character grid — the terminal stand-in
// for figures like the paper's Fig 7 Pareto plots.
type Scatter struct {
	Title      string
	XLabel     string
	YLabel     string
	Width      int // plot columns (default 72)
	Height     int // plot rows (default 20)
	LogX, LogY bool
	Series     []Series
}

// Add appends a series. The X and Y slices must pair up point for
// point; a mismatch is rejected rather than silently truncated to the
// shorter slice, which would plot a subset of the data and misrepresent
// the sweep.
func (s *Scatter) Add(name string, marker rune, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("scatter series %q: %d x values but %d y values", name, len(x), len(y))
	}
	s.Series = append(s.Series, Series{Name: name, Marker: marker, X: x, Y: y})
	return nil
}

// Render draws the plot.
func (s *Scatter) Render(w io.Writer) {
	width, height := s.Width, s.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if s.LogX {
			return math.Log10(math.Max(v, 1e-300))
		}
		return v
	}
	ty := func(v float64) float64 {
		if s.LogY {
			return math.Log10(math.Max(v, 1e-300))
		}
		return v
	}
	any := false
	for _, ser := range s.Series {
		for i := range ser.X {
			if i >= len(ser.Y) {
				break
			}
			x, y := tx(ser.X[i]), ty(ser.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if s.Title != "" {
		fmt.Fprintln(w, s.Title)
	}
	if !any {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, ser := range s.Series {
		marker := ser.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range ser.X {
			if i >= len(ser.Y) {
				break
			}
			x, y := tx(ser.X[i]), ty(ser.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = marker
		}
	}
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   x: %s [%.4g .. %.4g]%s   y: %s [%.4g .. %.4g]%s\n",
		s.XLabel, untx(xmin, s.LogX), untx(xmax, s.LogX), logTag(s.LogX),
		s.YLabel, untx(ymin, s.LogY), untx(ymax, s.LogY), logTag(s.LogY))
	var legend []string
	for _, ser := range s.Series {
		marker := ser.Marker
		if marker == 0 {
			marker = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, ser.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "   legend: %s\n", strings.Join(legend, "   "))
	}
}

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func logTag(log bool) string {
	if log {
		return " (log)"
	}
	return ""
}

// CSV writes a rectangular table with a header row; cells are rendered
// with %v (floats with full precision via %g).
func CSV(w io.Writer, headers []string, rows [][]interface{}) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			switch v := c.(type) {
			case float64:
				parts[i] = fmt.Sprintf("%g", v)
			case float32:
				// Shortest 32-bit representation, not the widened float64.
				parts[i] = strconv.FormatFloat(float64(v), 'g', -1, 32)
			case string:
				parts[i] = escapeCSV(v)
			default:
				parts[i] = escapeCSV(fmt.Sprintf("%v", c))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

func escapeCSV(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// NDJSON writes one JSON object per row — newline-delimited JSON, the
// line-by-line streaming counterpart of CSV. Keys follow the header
// order; rows shorter than the header emit only the cells present, longer
// rows are truncated to it.
func NDJSON(w io.Writer, headers []string, rows [][]interface{}) error {
	for _, row := range rows {
		line, err := NDJSONRow(headers, row)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// NDJSONRow renders one row as a single-line JSON object without a
// trailing newline, so line-oriented transports (SSE data frames, log
// pipelines) can embed rows one at a time. Non-finite floats, which JSON
// cannot carry, become null.
func NDJSONRow(headers []string, row []interface{}) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, h := range headers {
		if i >= len(row) {
			break
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		key, err := json.Marshal(h)
		if err != nil {
			return nil, err
		}
		buf.Write(key)
		buf.WriteByte(':')
		v := row[i]
		switch f := v.(type) {
		case float64:
			if math.IsNaN(f) || math.IsInf(f, 0) {
				v = nil
			}
		case float32:
			if f64 := float64(f); math.IsNaN(f64) || math.IsInf(f64, 0) {
				v = nil
			}
		}
		val, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		buf.Write(val)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Bar renders a horizontal bar chart of labelled values (the stand-in for
// the paper's Fig 8 power-breakdown bars). Values must be non-negative.
func Bar(w io.Writer, title string, labels []string, values []float64, format func(float64) string) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.4g", v) }
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && runeLen(labels[i]) > maxL {
			maxL = runeLen(labels[i])
		}
	}
	const barWidth = 44
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * barWidth)
		}
		fmt.Fprintf(w, "  %s %s %s\n", pad(label, maxL), pad(strings.Repeat("#", n), barWidth), format(v))
	}
}

// SortedKeys returns map keys sorted, a helper for deterministic output.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
