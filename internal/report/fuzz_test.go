package report

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzNDJSONRow checks the single-row emitter's invariants over
// arbitrary headers and cells: it never errors on marshal-safe values,
// never emits a newline (the whole point of the row form is embedding
// in line-oriented transports), and always produces one valid JSON
// object — including for NaN/Inf floats, which must degrade to null
// rather than corrupt the stream.
func FuzzNDJSONRow(f *testing.F) {
	f.Add("arch,bits,total_w", "baseline", int64(8), 8.3e-6)
	f.Add("a", "x", int64(-1), 0.0)
	f.Add("", "", int64(0), -1.5)
	f.Add("k\nv,  ,\"q\"", "multi\nline \" cell", int64(1234567), 1e308)
	f.Fuzz(func(t *testing.T, headerCSV, s string, i int64, fv float64) {
		headers := strings.Split(headerCSV, ",")
		row := []interface{}{s, i, fv}
		line, err := NDJSONRow(headers, row)
		if err != nil {
			t.Fatalf("NDJSONRow(%q, %v): %v", headers, row, err)
		}
		if strings.ContainsRune(string(line), '\n') {
			t.Fatalf("row payload spans lines: %q", line)
		}
		if len(line) < 2 || line[0] != '{' || line[len(line)-1] != '}' {
			t.Fatalf("row is not a braced object: %q", line)
		}
		if !json.Valid(line) {
			t.Fatalf("row is not valid JSON: %q", line)
		}
	})
}
