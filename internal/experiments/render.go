package experiments

import (
	"fmt"
	"io"

	"efficsense/internal/core"
	"efficsense/internal/power"
	"efficsense/internal/report"
	"efficsense/internal/units"
)

// RenderFig4 writes the Fig 4 sweep as a table plus two scatter panels
// (SNDR and power versus noise floor) mirroring the paper's layout.
func RenderFig4(w io.Writer, pts []Fig4Point) {
	fmt.Fprintln(w, "Fig 4 — LNA input-referred noise sweep (baseline system, sine input)")
	tb := report.NewTable("vn (µVrms)", "SNDR (dB)", "ENOB", "P total", "P LNA", "P TX")
	var xs, sndr, pw []float64
	for _, p := range pts {
		tb.AddRow(
			fmt.Sprintf("%.2f", p.NoiseRMS*1e6),
			fmt.Sprintf("%.1f", p.SNDRdB),
			fmt.Sprintf("%.2f", p.ENOB),
			units.Format(p.TotalPower, "W"),
			units.Format(p.Breakdown[power.CompLNA], "W"),
			units.Format(p.Breakdown[power.CompTransmitter], "W"),
		)
		xs = append(xs, p.NoiseRMS*1e6)
		sndr = append(sndr, p.SNDRdB)
		pw = append(pw, p.TotalPower*1e6)
	}
	tb.Render(w)
	fmt.Fprintln(w)
	sc := report.Scatter{Title: "SNDR vs noise floor", XLabel: "vn (µVrms)", YLabel: "SNDR (dB)", LogX: true, Height: 12}
	sc.Add("baseline", 'o', xs, sndr)
	sc.Render(w)
	fmt.Fprintln(w)
	sp := report.Scatter{Title: "Total power vs noise floor", XLabel: "vn (µVrms)", YLabel: "P (µW)", LogX: true, LogY: true, Height: 12}
	sp.Add("baseline", 'o', xs, pw)
	sp.Render(w)
	if len(pts) > 0 {
		fmt.Fprintln(w)
		RenderBreakdown(w, "Power distribution at the lowest noise floor", pts[0].Breakdown)
	}
}

// RenderBreakdown writes one power breakdown as a bar chart.
func RenderBreakdown(w io.Writer, title string, b power.Breakdown) {
	comps := b.Components()
	labels := make([]string, len(comps))
	values := make([]float64, len(comps))
	for i, c := range comps {
		labels[i] = string(c)
		values[i] = b[c]
	}
	report.Bar(w, title, labels, values, func(v float64) string { return units.Format(v, "W") })
}

func frontSeries(rs []core.Result, q func(core.Result) float64) (x, y []float64) {
	for _, r := range rs {
		x = append(x, r.TotalPower*1e6)
		y = append(y, q(r))
	}
	return x, y
}

// RenderFig7a writes the SNR-goal Pareto fronts.
func RenderFig7a(w io.Writer, f Fronts) {
	fmt.Fprintln(w, "Fig 7a — Pareto fronts, SNR vs power")
	sc := report.Scatter{XLabel: "P (µW)", YLabel: "SNR (dB)", LogX: true, Height: 16}
	bx, by := frontSeries(f.Baseline, func(r core.Result) float64 { return r.MeanSNRdB })
	cx, cy := frontSeries(f.CS, func(r core.Result) float64 { return r.MeanSNRdB })
	sc.Add("baseline front", 'o', bx, by)
	sc.Add("cs front", 'x', cx, cy)
	sc.Render(w)
	fmt.Fprintln(w)
	tb := report.NewTable("front", "point", "SNR (dB)", "power")
	for _, r := range f.Baseline {
		tb.AddRow("baseline", r.Point.String(), fmt.Sprintf("%.1f", r.MeanSNRdB), units.Format(r.TotalPower, "W"))
	}
	for _, r := range f.CS {
		tb.AddRow("cs", r.Point.String(), fmt.Sprintf("%.1f", r.MeanSNRdB), units.Format(r.TotalPower, "W"))
	}
	tb.Render(w)
}

// RenderFig7b writes the accuracy-goal fronts and the headline optima.
func RenderFig7b(w io.Writer, f Fig7b) {
	fmt.Fprintln(w, "Fig 7b — Pareto fronts, detection accuracy vs power")
	sc := report.Scatter{XLabel: "P (µW)", YLabel: "accuracy", LogX: true, Height: 16}
	bx, by := frontSeries(f.Baseline, func(r core.Result) float64 { return r.Accuracy })
	cx, cy := frontSeries(f.CS, func(r core.Result) float64 { return r.Accuracy })
	sc.Add("baseline front", 'o', bx, by)
	sc.Add("cs front", 'x', cx, cy)
	sc.Render(w)
	fmt.Fprintln(w)
	if f.HaveBaseline {
		fmt.Fprintf(w, "baseline optimum (accuracy >= %.2f): %s, accuracy %.3f, power %s\n",
			f.MinAccuracy, f.BaselineOpt.Point, f.BaselineOpt.Accuracy,
			units.Format(f.BaselineOpt.TotalPower, "W"))
	} else {
		fmt.Fprintf(w, "baseline: no configuration met accuracy >= %.2f\n", f.MinAccuracy)
	}
	if f.HaveCS {
		fmt.Fprintf(w, "cs optimum       (accuracy >= %.2f): %s, accuracy %.3f, power %s\n",
			f.MinAccuracy, f.CSOpt.Point, f.CSOpt.Accuracy,
			units.Format(f.CSOpt.TotalPower, "W"))
	} else {
		fmt.Fprintf(w, "cs: no configuration met accuracy >= %.2f\n", f.MinAccuracy)
	}
	if f.PowerSavingsX > 0 {
		fmt.Fprintf(w, "power saving of the CS system: %.2fx (paper: 3.6x)\n", f.PowerSavingsX)
	}
	if f.MetricsDiverge {
		fmt.Fprintln(w, "note: SNR and accuracy goal functions select different optima (paper Step 5)")
	}
}

// RenderFig8 writes the two optimal-point breakdowns side by side.
func RenderFig8(w io.Writer, baseline, cs core.Result) {
	fmt.Fprintln(w, "Fig 8 — power distribution of the optimal design points")
	fmt.Fprintf(w, "\nbaseline optimum: %s (total %s)\n", baseline.Point, units.Format(baseline.TotalPower, "W"))
	RenderBreakdown(w, "", baseline.Power)
	fmt.Fprintf(w, "\ncs optimum: %s (total %s)\n", cs.Point, units.Format(cs.TotalPower, "W"))
	RenderBreakdown(w, "", cs.Power)
	// The paper's reading: the CS savings come from the transmitter and
	// the LNA, at a marginal digital cost.
	dTX := baseline.Power[power.CompTransmitter] - cs.Power[power.CompTransmitter]
	dLNA := baseline.Power[power.CompLNA] - cs.Power[power.CompLNA]
	fmt.Fprintf(w, "\nsavings: transmitter %s, LNA %s; CS logic cost %s\n",
		units.Format(dTX, "W"), units.Format(dLNA, "W"),
		units.Format(cs.Power[power.CompCSEncoder], "W"))
}

// RenderFig9 writes the accuracy-vs-area cloud.
func RenderFig9(w io.Writer, pts []Fig9Point) {
	fmt.Fprintln(w, "Fig 9 — accuracy vs total capacitance (multiples of Cu,min)")
	sc := report.Scatter{XLabel: "area (Cu,min)", YLabel: "accuracy", LogX: true, Height: 16}
	var bx, by, cx, cy []float64
	for _, p := range pts {
		if p.Arch == core.ArchBaseline {
			bx = append(bx, p.AreaCaps)
			by = append(by, p.Accuracy)
		} else {
			cx = append(cx, p.AreaCaps)
			cy = append(cy, p.Accuracy)
		}
	}
	sc.Add("baseline", 'o', bx, by)
	sc.Add("cs", 'x', cx, cy)
	sc.Render(w)
}

// RenderFig10 writes the area-constrained fronts.
func RenderFig10(w io.Writer, fronts []Fig10Front) {
	fmt.Fprintln(w, "Fig 10 — accuracy vs power under area constraints")
	sc := report.Scatter{XLabel: "P (µW)", YLabel: "accuracy", LogX: true, Height: 16}
	markers := []rune{'1', '2', '3', '4', '5', '6'}
	tb := report.NewTable("max area (Cu,min)", "best accuracy", "min power @ constraint", "optimal design", "front points")
	for i, f := range fronts {
		x, y := frontSeries(f.Front, func(r core.Result) float64 { return r.Accuracy })
		m := markers[i%len(markers)]
		sc.Add(fmt.Sprintf("area <= %.0f", f.MaxAreaCaps), m, x, y)
		optPower, optName := "—", "—"
		if f.HaveOptimum {
			optPower = units.Format(f.Optimum.TotalPower, "W")
			optName = f.Optimum.Point.String()
		}
		tb.AddRow(fmt.Sprintf("%.0f", f.MaxAreaCaps), fmt.Sprintf("%.3f", f.BestAccuracy),
			optPower, optName, len(f.Front))
	}
	sc.Render(w)
	fmt.Fprintln(w)
	tb.Render(w)
}

// CSVFig4 emits the Fig 4 sweep as CSV rows.
func CSVFig4(w io.Writer, pts []Fig4Point) error {
	headers := []string{"noise_vrms", "sndr_db", "enob", "total_w",
		"lna_w", "sh_w", "comparator_w", "sar_logic_w", "dac_w", "tx_w"}
	rows := make([][]interface{}, len(pts))
	for i, p := range pts {
		rows[i] = []interface{}{
			p.NoiseRMS, p.SNDRdB, p.ENOB, p.TotalPower,
			p.Breakdown[power.CompLNA], p.Breakdown[power.CompSampleHold],
			p.Breakdown[power.CompComparator], p.Breakdown[power.CompSARLogic],
			p.Breakdown[power.CompDAC], p.Breakdown[power.CompTransmitter],
		}
	}
	return report.CSV(w, headers, rows)
}

// ResultHeaders are the columns of the sweep-result tabulations
// (CSVResults, NDJSONResults, the serving layer's SSE payloads).
var ResultHeaders = []string{"arch", "bits", "noise_vrms", "m", "chold_f",
	"snr_db", "accuracy", "total_w", "area_caps"}

// ResultRow renders one result as a ResultHeaders-ordered row.
func ResultRow(r core.Result) []interface{} {
	return []interface{}{
		r.Point.Arch.String(), r.Point.Bits, r.Point.LNANoise,
		r.Point.M, r.Point.CHold,
		r.MeanSNRdB, r.Accuracy, r.TotalPower, r.AreaCaps,
	}
}

func resultRows(rs []core.Result) [][]interface{} {
	rows := make([][]interface{}, len(rs))
	for i, r := range rs {
		rows[i] = ResultRow(r)
	}
	return rows
}

// CSVResults emits a result cloud as CSV rows (used for Figs 7, 9, 10).
func CSVResults(w io.Writer, rs []core.Result) error {
	return report.CSV(w, ResultHeaders, resultRows(rs))
}

// NDJSONResults emits a result cloud as NDJSON — one JSON object per
// line with the CSVResults columns — so sweep results stream line by
// line through HTTP responses and log pipelines. A degraded point (a
// result carrying an error: evaluator failure, recovered panic,
// exhausted retries) gains an extra "err" field, so partial clouds are
// self-describing row by row; sound rows omit it.
func NDJSONResults(w io.Writer, rs []core.Result) error {
	headers := append(append(make([]string, 0, len(ResultHeaders)+1), ResultHeaders...), "err")
	rows := make([][]interface{}, len(rs))
	for i, r := range rs {
		rows[i] = ResultRow(r)
		if r.Err != nil {
			rows[i] = append(rows[i], r.Err.Error())
		}
	}
	return report.NDJSON(w, headers, rows)
}
