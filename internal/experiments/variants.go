package experiments

import (
	"fmt"
	"io"

	"efficsense/internal/core"
	"efficsense/internal/power"
	"efficsense/internal/report"
	"efficsense/internal/units"
)

// VariantsResult compares the four front-end architectures at a matched
// operating point — the "digital vs analog, active vs passive" exploration
// the paper's Section III motivates the framework with.
type VariantsResult struct {
	// Points holds one result per architecture, in enum order: baseline,
	// passive CS, digital CS, active CS.
	Points []core.Result
	// Bits, LNANoise, M are the shared operating point.
	Bits     int
	LNANoise float64
	M        int
}

// Variants evaluates all four architectures at one operating point.
// Zero-valued arguments select the defaults (N=8, vn=6 µV, M=150).
func (s *Suite) Variants(bits int, lnaNoise float64, m int) VariantsResult {
	s.init()
	if bits <= 0 {
		bits = 8
	}
	if lnaNoise <= 0 {
		lnaNoise = 6e-6
	}
	if m <= 0 {
		m = 150
	}
	archs := []core.Architecture{
		core.ArchBaseline, core.ArchCS, core.ArchCSDigital, core.ArchCSActive,
	}
	out := VariantsResult{Bits: bits, LNANoise: lnaNoise, M: m}
	for _, a := range archs {
		p := core.DesignPoint{Arch: a, Bits: bits, LNANoise: lnaNoise}
		if a != core.ArchBaseline {
			p.M = m
		}
		// Through the engine, so variant studies share the sweep cache.
		out.Points = append(out.Points, s.engine.Evaluate(p))
	}
	return out
}

// RenderVariants writes the architecture comparison.
func RenderVariants(w io.Writer, v VariantsResult) {
	fmt.Fprintf(w, "Front-end variants at N=%d, vn=%s, M=%d (passive/active/digital CS)\n",
		v.Bits, units.Format(v.LNANoise, "V"), v.M)
	tb := report.NewTable("architecture", "accuracy", "SNR (dB)", "power", "area (Cu)", "dominant block")
	for _, r := range v.Points {
		comps := r.Power.Components()
		dominant := ""
		if len(comps) > 0 {
			dominant = string(comps[0])
		}
		tb.AddRow(
			r.Point.Arch.String(),
			fmt.Sprintf("%.3f", r.Accuracy),
			fmt.Sprintf("%.1f", r.MeanSNRdB),
			units.Format(r.TotalPower, "W"),
			fmt.Sprintf("%.0f", r.AreaCaps),
			dominant,
		)
	}
	tb.Render(w)
	// The Section III narrative: passive beats active (no OTAs) and beats
	// digital (ADC runs at the reduced rate).
	byArch := map[core.Architecture]core.Result{}
	for _, r := range v.Points {
		byArch[r.Point.Arch] = r
	}
	passive := byArch[core.ArchCS]
	if active, ok := byArch[core.ArchCSActive]; ok && passive.TotalPower > 0 {
		fmt.Fprintf(w, "\npassive vs active analog CS: %.2fx cheaper (the paper's [10] argument)\n",
			active.TotalPower/passive.TotalPower)
	}
	if digital, ok := byArch[core.ArchCSDigital]; ok && passive.TotalPower > 0 {
		fmt.Fprintf(w, "passive analog vs digital CS: %.2fx cheaper (ADC at the reduced rate)\n",
			digital.TotalPower/passive.TotalPower)
	}
	if _, ok := byArch[core.ArchCSActive]; ok {
		fmt.Fprintf(w, "active CS integrator bank: %s\n",
			units.Format(byArch[core.ArchCSActive].Power[power.CompIntegrators], "W"))
	}
}
