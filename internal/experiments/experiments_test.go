package experiments

import (
	"strings"
	"sync"
	"testing"

	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/power"
)

// The suite is expensive (detector training + full sweep), so the tests
// share one small instance.
var (
	suiteOnce sync.Once
	suiteInst *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	suiteOnce.Do(func() {
		suiteInst = NewSuite(Options{
			Seed:         3,
			Records:      12,
			TrainRecords: 60,
			NoiseSteps:   4,
			Epochs:       80,
		})
	})
	return suiteInst
}

func TestSharedCacheInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two (tiny) detectors")
	}
	cache := dse.NewMemoryCache()
	opts := Options{Seed: 5, Records: 1, TrainRecords: 4, NoiseSteps: 1, Epochs: 1, Cache: cache}
	optsB := opts
	optsB.Seed = 6
	a, b := NewSuite(opts), NewSuite(optsB)
	if a.Cache() != cache || b.Cache() != cache {
		t.Fatal("injected cache not adopted by the suites")
	}
	p := core.DesignPoint{Arch: core.ArchBaseline, Bits: 6, LNANoise: 10e-6}
	a.Engine().Evaluate(p)
	n := cache.Len()
	if n == 0 {
		t.Fatal("evaluation did not reach the shared cache")
	}
	// A suite with different options computes a different function — its
	// evaluator fingerprint differs, so the shared store grows instead of
	// cross-contaminating.
	b.Engine().Evaluate(p)
	if cache.Len() <= n {
		t.Fatalf("distinct evaluators collided in the shared cache (len %d)", cache.Len())
	}
	// A rebuilt suite with identical options computes the identical
	// function: the value-hashed fingerprint matches and it reuses the
	// first suite's entries instead of re-evaluating.
	m := cache.Len()
	c := NewSuite(opts)
	c.Engine().Evaluate(p)
	if cache.Len() != m {
		t.Fatalf("identical evaluators did not share cache entries (len %d → %d)", m, cache.Len())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Records != 40 || o.NoiseSteps != 8 || o.MinAccuracy != 0.98 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	s := testSuite(t)
	pts := s.Fig4(8)
	if len(pts) != s.Options().NoiseSteps {
		t.Fatalf("point count %d", len(pts))
	}
	// SNDR falls and power falls as the noise floor rises (Fig 4 trend).
	first, last := pts[0], pts[len(pts)-1]
	if first.SNDRdB <= last.SNDRdB {
		t.Fatalf("SNDR should fall with noise floor: %.1f → %.1f dB", first.SNDRdB, last.SNDRdB)
	}
	if first.TotalPower <= last.TotalPower {
		t.Fatalf("power should fall with noise floor: %g → %g", first.TotalPower, last.TotalPower)
	}
	// At the quietest point the LNA dominates (the paper's bottom panel).
	if first.Breakdown[power.CompLNA] < first.Breakdown[power.CompTransmitter] {
		t.Fatal("LNA should dominate the quiet end of the sweep")
	}
	// At the noisiest point the transmitter dominates.
	if last.Breakdown[power.CompTransmitter] < last.Breakdown[power.CompLNA] {
		t.Fatal("transmitter should dominate the noisy end of the sweep")
	}
}

func TestSweepAndFig7Shapes(t *testing.T) {
	s := testSuite(t)
	rs := s.SweepResults()
	wantPoints := 3*4 + 3*4*3 // PaperSpace(4)
	if len(rs) != wantPoints {
		t.Fatalf("sweep size %d, want %d", len(rs), wantPoints)
	}
	// Cached: second call returns the identical slice.
	rs2 := s.SweepResults()
	if &rs[0] != &rs2[0] {
		t.Fatal("sweep should be cached")
	}
	f7a := s.Fig7a()
	if len(f7a.Baseline) == 0 || len(f7a.CS) == 0 {
		t.Fatal("empty Pareto fronts")
	}
	// Baseline should reach the higher SNR end (paper: classical wins at
	// high SNR).
	maxB, maxC := 0.0, 0.0
	for _, r := range f7a.Baseline {
		if r.MeanSNRdB > maxB {
			maxB = r.MeanSNRdB
		}
	}
	for _, r := range f7a.CS {
		if r.MeanSNRdB > maxC {
			maxC = r.MeanSNRdB
		}
	}
	if maxB <= maxC {
		t.Errorf("baseline max SNR %.1f should exceed CS max %.1f (Fig 7a trend)", maxB, maxC)
	}
}

func TestFig7bHeadlineResult(t *testing.T) {
	s := testSuite(t)
	f := s.Fig7b()
	if !f.HaveBaseline || !f.HaveCS {
		t.Fatalf("missing optima: baseline=%v cs=%v", f.HaveBaseline, f.HaveCS)
	}
	if f.BaselineOpt.Accuracy < f.MinAccuracy || f.CSOpt.Accuracy < f.MinAccuracy {
		t.Fatal("optima violate the accuracy constraint")
	}
	// The paper's headline: CS saves ~3.6×. At this deliberately tiny test
	// scale (12 records quantise accuracy to 8.3 % steps, so the 98 %
	// constraint means "perfect") the measured saving is understated —
	// EXPERIMENTS.md records the at-scale number (~1.6–1.8×). Here only
	// the direction and a loose band are asserted.
	if f.PowerSavingsX < 1.1 || f.PowerSavingsX > 8 {
		t.Fatalf("power saving %.2fx outside the plausible band (paper: 3.6x)", f.PowerSavingsX)
	}
	// Paper scale: baseline ~8.8 µW, CS ~2.44 µW.
	if f.BaselineOpt.TotalPower < 3e-6 || f.BaselineOpt.TotalPower > 20e-6 {
		t.Errorf("baseline optimum power %g outside band", f.BaselineOpt.TotalPower)
	}
	if f.CSOpt.TotalPower < 0.5e-6 || f.CSOpt.TotalPower > 6e-6 {
		t.Errorf("CS optimum power %g outside band", f.CSOpt.TotalPower)
	}
}

func TestFig8SavingsComposition(t *testing.T) {
	s := testSuite(t)
	base, cs, ok := s.Fig8()
	if !ok {
		t.Fatal("no optima")
	}
	// Fig 8 reading: TX and LNA shrink, CS logic appears but is marginal
	// relative to the savings.
	dTX := base.Power[power.CompTransmitter] - cs.Power[power.CompTransmitter]
	dLNA := base.Power[power.CompLNA] - cs.Power[power.CompLNA]
	csLogic := cs.Power[power.CompCSEncoder]
	if dTX <= 0 {
		t.Error("transmitter power should shrink under CS")
	}
	if dLNA < 0 {
		t.Error("LNA power should not grow under CS")
	}
	if csLogic <= 0 {
		t.Error("CS logic power missing")
	}
	if csLogic > dTX+dLNA {
		t.Errorf("CS logic cost %g should be marginal vs savings %g", csLogic, dTX+dLNA)
	}
}

func TestFig9AreaSeparation(t *testing.T) {
	s := testSuite(t)
	pts := s.Fig9()
	var minCS, maxBase float64
	minCS = 1e18
	for _, p := range pts {
		if p.Arch == core.ArchCS && p.AreaCaps < minCS {
			minCS = p.AreaCaps
		}
		if p.Arch == core.ArchBaseline && p.AreaCaps > maxBase {
			maxBase = p.AreaCaps
		}
	}
	if minCS <= maxBase {
		t.Fatalf("every CS design should out-area every baseline design: minCS %g vs maxBase %g",
			minCS, maxBase)
	}
}

func TestFig10ConstraintMonotone(t *testing.T) {
	s := testSuite(t)
	fronts := s.Fig10(nil)
	if len(fronts) != len(DefaultAreaCaps) {
		t.Fatalf("front count %d", len(fronts))
	}
	// Looser caps can only improve the best achievable accuracy.
	for i := 1; i < len(fronts); i++ {
		if fronts[i].BestAccuracy+1e-12 < fronts[i-1].BestAccuracy {
			t.Fatalf("best accuracy fell from %.4f to %.4f as the cap loosened",
				fronts[i-1].BestAccuracy, fronts[i].BestAccuracy)
		}
	}
	// The tightest cap excludes all CS designs (they are area-hungry).
	for _, r := range fronts[0].Front {
		if r.Point.Arch == core.ArchCS {
			t.Fatalf("CS design %s survived the %0.f-cap", r.Point, fronts[0].MaxAreaCaps)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	s := testSuite(t)
	var sb strings.Builder
	RenderFig4(&sb, s.Fig4(8))
	RenderFig7a(&sb, s.Fig7a())
	RenderFig7b(&sb, s.Fig7b())
	if base, cs, ok := s.Fig8(); ok {
		RenderFig8(&sb, base, cs)
	}
	RenderFig9(&sb, s.Fig9())
	RenderFig10(&sb, s.Fig10(nil))
	out := sb.String()
	for _, want := range []string{"Fig 4", "Fig 7a", "Fig 7b", "Fig 8", "Fig 9", "Fig 10", "legend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
	var csv strings.Builder
	if err := CSVFig4(&csv, s.Fig4(8)); err != nil {
		t.Fatal(err)
	}
	if err := CSVResults(&csv, s.SweepResults()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "noise_vrms") || !strings.Contains(csv.String(), "accuracy") {
		t.Fatal("CSV headers missing")
	}
}

func TestVariantsComparison(t *testing.T) {
	s := testSuite(t)
	v := s.Variants(8, 6e-6, 96)
	if len(v.Points) != 4 {
		t.Fatalf("variant count %d", len(v.Points))
	}
	byArch := map[core.Architecture]core.Result{}
	for _, r := range v.Points {
		byArch[r.Point.Arch] = r
	}
	passive := byArch[core.ArchCS].TotalPower
	if passive <= 0 {
		t.Fatal("passive CS unevaluated")
	}
	// Section III ordering: passive cheapest of the CS family.
	if passive >= byArch[core.ArchCSActive].TotalPower {
		t.Error("passive should beat active CS on power")
	}
	if passive >= byArch[core.ArchCSDigital].TotalPower {
		t.Error("passive should beat digital CS on power")
	}
	// Digital CS has no analog array: baseline-sized area.
	if byArch[core.ArchCSDigital].AreaCaps != byArch[core.ArchBaseline].AreaCaps {
		t.Error("digital CS area should equal the baseline's")
	}
	var sb strings.Builder
	RenderVariants(&sb, v)
	if !strings.Contains(sb.String(), "cs-active") || !strings.Contains(sb.String(), "cs-digital") {
		t.Fatal("variant rendering incomplete")
	}
}

func TestFig10OptimumPricing(t *testing.T) {
	s := testSuite(t)
	fronts := s.Fig10(nil)
	// Looser area caps can only cheapen (or keep) the constrained optimum.
	prev := -1.0
	for _, f := range fronts {
		if !f.HaveOptimum {
			continue
		}
		if prev > 0 && f.Optimum.TotalPower > prev+1e-18 {
			t.Fatalf("constrained optimum got more expensive as the cap loosened: %g > %g",
				f.Optimum.TotalPower, prev)
		}
		prev = f.Optimum.TotalPower
	}
	if prev < 0 {
		t.Fatal("no cap admitted an optimum")
	}
}
