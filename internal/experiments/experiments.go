// Package experiments reproduces every table and figure of the paper's
// evaluation: the Fig 4 LNA-noise sweep, the Fig 7 Pareto fronts under
// both goal functions, the Fig 8 optimal-point power breakdowns, the Fig 9
// accuracy-vs-area cloud and the Fig 10 area-constrained fronts. The CLI
// (cmd/efficsense), the examples and the benchmark harness all drive these
// pipelines, so the numbers in EXPERIMENTS.md regenerate from one place.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"efficsense/internal/cache"
	"efficsense/internal/classify"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/power"
	"efficsense/internal/scenario"
	"efficsense/internal/tech"
)

// Options configures a reproduction suite.
type Options struct {
	// Scenario names the registered workload to evaluate (see
	// internal/scenario). Empty selects the default EEG epilepsy chain,
	// bit-identical to the historical hard-wired behaviour.
	Scenario string
	// Seed drives every stochastic element.
	Seed int64
	// Records is the number of evaluation records (paper: 500). The
	// default 40 keeps a full suite run in CPU-minutes; scale up with the
	// CLI's -records for paper-scale runs.
	Records int
	// TrainRecords sizes the detector training set (default 120).
	TrainRecords int
	// NoiseSteps sets the LNA-noise grid resolution (default 8).
	NoiseSteps int
	// Workers bounds sweep parallelism (0 → GOMAXPROCS).
	Workers int
	// BatchSize bounds how many cache-miss points the engine hands to
	// the evaluator per batched call (see dse.WithBatchSize): 0 selects
	// dse.DefaultBatchSize, 1 disables batch dispatch entirely.
	BatchSize int
	// Epochs for detector training (default 150).
	Epochs int
	// MinAccuracy is the application constraint (paper: 0.98).
	MinAccuracy float64
	// WindowSeconds sets the detection-window duration for the windowed
	// protocol (ref [20] classifies ≈3 s segments). The default 0 scores
	// whole records, which proved markedly more stable with the
	// feature-MLP detector substitute; the windowed protocol remains
	// available for studies.
	WindowSeconds float64
	// Progress, if set, receives sweep progress (serial, monotonic done
	// counts — see dse.WithProgress).
	Progress func(done, total int)
	// Trace, if set, receives the sweep engine's JSONL per-point trace
	// (see dse.WithTrace).
	Trace io.Writer
	// Cache, if set, replaces the suite's private memoisation cache, so
	// many suites (for example a server's per-option-set instances) share
	// one warm store. Entries are keyed on the evaluator fingerprint, so
	// sharing is always safe. Pass a cache.LRU to bound the store and
	// de-duplicate concurrent evaluations (singleflight).
	Cache dse.Cache
	// CacheEntries bounds the suite's private cache when Cache is nil:
	// a positive value builds a sharded LRU of that capacity (with
	// singleflight de-duplication); 0 keeps the historical unbounded
	// MemoryCache, the right default for CLI one-shots over finite paper
	// spaces.
	CacheEntries int
	// Retry, if set, opts the suite's engine into bounded per-point
	// retries with backoff (see dse.WithRetry) — the daemon's resilience
	// knob against transient evaluation failures. A zero policy Seed
	// inherits the suite Seed, so retry jitter is reproducible alongside
	// everything else.
	Retry *dse.RetryPolicy
}

func (o Options) withDefaults() Options {
	if o.Records <= 0 {
		o.Records = 40
	}
	if o.TrainRecords <= 0 {
		o.TrainRecords = 120
	}
	if o.NoiseSteps <= 0 {
		o.NoiseSteps = 8
	}
	if o.Epochs <= 0 {
		o.Epochs = 150
	}
	if o.MinAccuracy <= 0 {
		o.MinAccuracy = 0.98
	}
	if o.WindowSeconds < 0 {
		o.WindowSeconds = 0
	}
	return o
}

// Suite owns the shared state of a reproduction run: the synthesized
// dataset, the trained detector, the evaluator and the (lazily computed,
// cached) full-space sweep that Figs 7–10 are different views of.
type Suite struct {
	opts Options
	tp   tech.Params
	sys  tech.System

	once      sync.Once
	scn       *scenario.Scenario
	evaluator *core.Evaluator
	metric    core.Metric
	detector  *classify.Detector
	engine    *dse.Sweep
	cache     dse.Cache

	sweepMu sync.Mutex
	sweep   []core.Result
}

// NewSuite builds a suite with the gpdk045 technology and Table III system
// constants.
func NewSuite(opts Options) *Suite {
	return &Suite{opts: opts.withDefaults(), tp: tech.GPDK045(), sys: tech.DefaultSystem()}
}

// Options returns the effective (defaulted) options.
func (s *Suite) Options() Options { return s.opts }

// init lazily resolves the scenario, builds its quality metric (training
// the detector, for workloads that have one) and assembles the evaluator.
func (s *Suite) init() {
	s.once.Do(func() {
		scn, err := scenario.Lookup(s.opts.Scenario)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		s.scn = scn
		if scn.NewMetric != nil {
			s.metric = scn.NewMetric(scenario.MetricConfig{
				Seed:          s.opts.Seed,
				TrainRecords:  s.opts.TrainRecords,
				WindowSeconds: s.opts.WindowSeconds,
				Epochs:        s.opts.Epochs,
			})
		}
		if dm, ok := s.metric.(core.DetectorMetric); ok {
			s.detector = dm.Detector
		}
		cfg := scn.EvaluatorConfig()
		cfg.Tech = s.tp
		cfg.Sys = s.sys
		cfg.Dataset = scn.Synthesize(s.opts.Seed, s.opts.Records)
		cfg.Metric = s.metric
		cfg.WindowSeconds = s.opts.WindowSeconds
		cfg.Seed = s.opts.Seed
		ev, err := core.NewEvaluator(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		s.evaluator = ev
		// One engine + one cache per suite: every figure reproduction and
		// ad-hoc query shares the same memoised evaluations, so the Fig 9
		// and Fig 10 constrained re-queries never recompute the Fig 7
		// cloud. An injected Options.Cache widens the sharing to every
		// suite built over it.
		s.cache = s.opts.Cache
		if s.cache == nil {
			if s.opts.CacheEntries > 0 {
				s.cache = cache.New(s.opts.CacheEntries)
			} else {
				s.cache = dse.NewMemoryCache()
			}
		}
		sweepOpts := []dse.Option{
			dse.WithWorkers(max(s.opts.Workers, 0)),
			dse.WithBatchSize(max(s.opts.BatchSize, 0)),
			dse.WithProgress(s.opts.Progress),
			dse.WithCache(s.cache),
			dse.WithTrace(s.opts.Trace),
		}
		if s.opts.Retry != nil {
			policy := *s.opts.Retry
			if policy.Seed == 0 {
				policy.Seed = s.opts.Seed
			}
			sweepOpts = append(sweepOpts, dse.WithRetry(policy))
		}
		engine, err := dse.NewSweep(ev, sweepOpts...)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		s.engine = engine
	})
}

// Evaluator exposes the shared evaluator (building it on first use).
func (s *Suite) Evaluator() *core.Evaluator {
	s.init()
	return s.evaluator
}

// Detector exposes the trained detector, when the scenario's quality
// metric is detector-based (nil otherwise — e.g. the SNDR-gated
// telemonitoring workloads).
func (s *Suite) Detector() *classify.Detector {
	s.init()
	return s.detector
}

// Metric exposes the scenario's quality metric (nil for SNR-only
// scenarios).
func (s *Suite) Metric() core.Metric {
	s.init()
	return s.metric
}

// Scenario exposes the resolved workload (building the suite on first
// use, since resolution and construction share the init path).
func (s *Suite) Scenario() *scenario.Scenario {
	s.init()
	return s.scn
}

// Fig4Point is one x-position of the Fig 4 sweep.
type Fig4Point struct {
	NoiseRMS   float64
	SNDRdB     float64
	ENOB       float64
	TotalPower float64
	Breakdown  power.Breakdown
}

// Fig4 sweeps the LNA input-referred noise of the baseline system with a
// sine stimulus and reports SNDR, total power and the per-block breakdown
// (paper Fig 4). bits of 0 selects the paper's 8-bit configuration.
func (s *Suite) Fig4(bits int) []Fig4Point {
	if bits <= 0 {
		bits = 8
	}
	cfg := core.Config{Tech: s.tp, Sys: s.sys, Seed: s.opts.Seed}
	noises := dse.GeomRange(1e-6, 20e-6, s.opts.NoiseSteps)
	out := make([]Fig4Point, len(noises))
	for i, vn := range noises {
		r := core.EvaluateSine(cfg, core.DesignPoint{
			Arch: core.ArchBaseline, Bits: bits, LNANoise: vn,
		}, 0, 20)
		out[i] = Fig4Point{
			NoiseRMS:   vn,
			SNDRdB:     r.SNDRdB,
			ENOB:       r.ENOB,
			TotalPower: r.TotalPower,
			Breakdown:  r.Power,
		}
	}
	return out
}

// Engine exposes the suite's sweep engine (building it on first use):
// every figure reproduction runs through it, so its metrics and cache
// describe the whole suite.
func (s *Suite) Engine() *dse.Sweep {
	s.init()
	return s.engine
}

// Cache exposes the suite-wide memoisation cache.
func (s *Suite) Cache() dse.Cache {
	s.init()
	return s.cache
}

// SweepMetrics snapshots the engine's counters (throughput, cache hits,
// per-point durations, ETA of a running sweep).
func (s *Suite) SweepMetrics() dse.Snapshot {
	s.init()
	return s.engine.Metrics()
}

// SweepResultsContext runs (once) the full Table III design-space sweep
// shared by Figs 7–10, honouring ctx: on cancellation it returns the
// completed partial results and ctx.Err() without memoising, so a later
// call can finish the sweep (the per-point cache makes the retry resume
// where it stopped rather than start over).
func (s *Suite) SweepResultsContext(ctx context.Context) ([]core.Result, error) {
	s.init()
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.sweep != nil {
		return s.sweep, nil
	}
	space := s.scn.Space(s.opts.NoiseSteps)
	if err := space.Validate(); err != nil {
		return nil, err
	}
	rs, err := s.engine.Run(ctx, space.Points())
	if err != nil {
		return rs, err
	}
	s.sweep = rs
	return rs, nil
}

// SweepResults is SweepResultsContext without cancellation.
func (s *Suite) SweepResults() []core.Result {
	rs, err := s.SweepResultsContext(context.Background())
	if err != nil {
		// Unreachable for a background context and a validated paper
		// space; keep the old infallible signature for the figure paths.
		panic(fmt.Sprintf("experiments: sweep failed: %v", err))
	}
	return rs
}

// Fronts holds the per-architecture Pareto fronts of one goal function.
type Fronts struct {
	Baseline []core.Result
	CS       []core.Result
	// All is the full (unfiltered) result cloud the fronts came from.
	All []core.Result
}

// Fig7a extracts the SNR-goal Pareto fronts (paper Fig 7a).
func (s *Suite) Fig7a() Fronts {
	rs := s.SweepResults()
	return Fronts{
		Baseline: dse.ParetoFront(dse.FilterArch(rs, core.ArchBaseline), dse.QualitySNR),
		CS:       dse.ParetoFront(dse.FilterArch(rs, core.ArchCS), dse.QualitySNR),
		All:      rs,
	}
}

// Fig7b holds the accuracy-goal fronts plus the constrained optima the
// paper headlines (baseline 98.1 % @ 8.8 µW vs CS 99.3 % @ 2.44 µW).
type Fig7b struct {
	Fronts
	BaselineOpt    core.Result
	CSOpt          core.Result
	HaveBaseline   bool
	HaveCS         bool
	PowerSavingsX  float64
	MinAccuracy    float64
	MetricsDiverge bool // whether the SNR and accuracy goals pick different optima
}

// Fig7b extracts the accuracy-goal fronts and optima (paper Fig 7b).
func (s *Suite) Fig7b() Fig7b {
	rs := s.SweepResults()
	out := Fig7b{
		Fronts: Fronts{
			Baseline: dse.ParetoFront(dse.FilterArch(rs, core.ArchBaseline), dse.QualityAccuracy),
			CS:       dse.ParetoFront(dse.FilterArch(rs, core.ArchCS), dse.QualityAccuracy),
			All:      rs,
		},
		MinAccuracy: s.opts.MinAccuracy,
	}
	out.BaselineOpt, out.HaveBaseline = dse.Optimum(
		dse.FilterArch(rs, core.ArchBaseline), dse.QualityAccuracy, s.opts.MinAccuracy)
	out.CSOpt, out.HaveCS = dse.Optimum(
		dse.FilterArch(rs, core.ArchCS), dse.QualityAccuracy, s.opts.MinAccuracy)
	if out.HaveBaseline && out.HaveCS && out.CSOpt.TotalPower > 0 {
		out.PowerSavingsX = out.BaselineOpt.TotalPower / out.CSOpt.TotalPower
	}
	// Step 5's lesson: the goal-function choice can change the optimum.
	// Compare the best-SNR and best-accuracy points of the whole cloud.
	var bestSNR, bestAcc core.Result
	for i, r := range rs {
		if i == 0 || r.MeanSNRdB > bestSNR.MeanSNRdB {
			bestSNR = r
		}
		if i == 0 || r.Accuracy > bestAcc.Accuracy {
			bestAcc = r
		}
	}
	out.MetricsDiverge = len(rs) > 0 && bestSNR.Point != bestAcc.Point
	return out
}

// Fig8 returns the power breakdowns of the two Fig 7b optima.
func (s *Suite) Fig8() (baseline, cs core.Result, ok bool) {
	f := s.Fig7b()
	return f.BaselineOpt, f.CSOpt, f.HaveBaseline && f.HaveCS
}

// Fig9Point pairs accuracy with capacitor area for the Fig 9 cloud.
type Fig9Point struct {
	Arch     core.Architecture
	Accuracy float64
	AreaCaps float64
	Power    float64
}

// Fig9 projects the sweep onto (accuracy, area) — paper Fig 9.
func (s *Suite) Fig9() []Fig9Point {
	rs := s.SweepResults()
	out := make([]Fig9Point, len(rs))
	for i, r := range rs {
		out[i] = Fig9Point{
			Arch:     r.Point.Arch,
			Accuracy: r.Accuracy,
			AreaCaps: r.AreaCaps,
			Power:    r.TotalPower,
		}
	}
	return out
}

// Fig10Front is one area-capped Pareto front (paper Fig 10).
type Fig10Front struct {
	MaxAreaCaps float64
	Front       []core.Result
	// BestAccuracy is the highest accuracy achievable under the cap.
	BestAccuracy float64
	// Optimum is the cheapest design meeting the suite's accuracy
	// constraint under the cap (HaveOptimum false if none qualifies) —
	// how the area budget prices the application constraint.
	Optimum     core.Result
	HaveOptimum bool
}

// DefaultAreaCaps are the Fig 10 constraint levels in C_u,min multiples —
// spanning "ADC only" to "generous analog area".
var DefaultAreaCaps = []float64{500, 2000, 8000, 32000}

// Fig10 computes area-constrained accuracy fronts over the full cloud
// (both architectures pooled, as a designer free to pick either).
func (s *Suite) Fig10(caps []float64) []Fig10Front {
	if len(caps) == 0 {
		caps = DefaultAreaCaps
	}
	rs := s.SweepResults()
	out := make([]Fig10Front, len(caps))
	for i, limit := range caps {
		kept := dse.FilterArea(rs, limit)
		front := dse.ParetoFront(kept, dse.QualityAccuracy)
		best := 0.0
		for _, r := range kept {
			if r.Accuracy > best {
				best = r.Accuracy
			}
		}
		opt, ok := dse.Optimum(kept, dse.QualityAccuracy, s.opts.MinAccuracy)
		out[i] = Fig10Front{
			MaxAreaCaps: limit, Front: front, BestAccuracy: best,
			Optimum: opt, HaveOptimum: ok,
		}
	}
	return out
}
