package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"efficsense/internal/core"
)

// LoadResults parses a sweep CSV previously written by CSVResults back
// into results, so figures can be re-rendered or re-filtered without
// repeating a multi-minute sweep (`efficsense fig9 -from sweep.csv`).
// Only the columns CSVResults emits are read; power breakdowns are not
// persisted, so re-loaded results carry totals only.
func LoadResults(r io.Reader) ([]core.Result, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("experiments: reading sweep header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, need := range []string{"arch", "bits", "noise_vrms", "m", "chold_f",
		"snr_db", "accuracy", "total_w", "area_caps"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("experiments: sweep CSV missing column %q", need)
		}
	}
	var out []core.Result
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: reading sweep row: %w", err)
		}
		line++
		get := func(name string) string { return rec[col[name]] }
		num := func(name string) (float64, error) {
			v, err := strconv.ParseFloat(get(name), 64)
			if err != nil {
				return 0, fmt.Errorf("experiments: line %d, column %s: %w", line, name, err)
			}
			return v, nil
		}
		var res core.Result
		arch, err := core.ParseArchitecture(get("arch"))
		if err != nil {
			return nil, fmt.Errorf("experiments: line %d: unknown architecture %q", line, get("arch"))
		}
		res.Point.Arch = arch
		bits, err := strconv.Atoi(get("bits"))
		if err != nil {
			return nil, fmt.Errorf("experiments: line %d: bits: %w", line, err)
		}
		m, err := strconv.Atoi(get("m"))
		if err != nil {
			return nil, fmt.Errorf("experiments: line %d: m: %w", line, err)
		}
		res.Point.Bits = bits
		res.Point.M = m
		fields := []struct {
			name string
			dst  *float64
		}{
			{"noise_vrms", &res.Point.LNANoise},
			{"chold_f", &res.Point.CHold},
			{"snr_db", &res.MeanSNRdB},
			{"accuracy", &res.Accuracy},
			{"total_w", &res.TotalPower},
			{"area_caps", &res.AreaCaps},
		}
		for _, f := range fields {
			v, err := num(f.name)
			if err != nil {
				return nil, err
			}
			*f.dst = v
		}
		out = append(out, res)
	}
	return out, nil
}

// FigsFromResults rebuilds the Fig 7/9/10 payloads from a loaded result
// cloud (no evaluator needed). minAccuracy <= 0 selects the paper's 0.98.
type FigsFromResults struct {
	results     []core.Result
	minAccuracy float64
}

// NewFigsFromResults wraps a loaded cloud.
func NewFigsFromResults(rs []core.Result, minAccuracy float64) *FigsFromResults {
	if minAccuracy <= 0 {
		minAccuracy = 0.98
	}
	return &FigsFromResults{results: rs, minAccuracy: minAccuracy}
}

// staticSuite builds a Suite whose (lazy) evaluator and sweep are already
// satisfied by the loaded data, so the Fig 7/9/10 extraction methods work
// without any re-evaluation.
func (f *FigsFromResults) staticSuite() *Suite {
	s := &Suite{opts: Options{MinAccuracy: f.minAccuracy}.withDefaults()}
	s.once.Do(func() {}) // no evaluator needed for front extraction
	s.sweep = f.results  // pre-satisfy the sweep memo
	return s
}

// Fig7a recomputes the SNR-goal fronts.
func (f *FigsFromResults) Fig7a() Fronts { return f.staticSuite().Fig7a() }

// Fig7b recomputes the accuracy-goal fronts and optima.
func (f *FigsFromResults) Fig7b() Fig7b { return f.staticSuite().Fig7b() }

// Fig9 projects the cloud onto (accuracy, area).
func (f *FigsFromResults) Fig9() []Fig9Point { return f.staticSuite().Fig9() }

// Fig10 recomputes the area-constrained fronts.
func (f *FigsFromResults) Fig10(caps []float64) []Fig10Front {
	return f.staticSuite().Fig10(caps)
}
