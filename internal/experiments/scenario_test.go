package experiments

import (
	"testing"

	"efficsense/internal/core"
	"efficsense/internal/scenario"
)

// tinyOpts keeps suite construction cheap: 1-record evaluation, a
// 4-record training split, one epoch.
func tinyOpts(scn string) Options {
	return Options{Scenario: scn, Seed: 11, Records: 1, TrainRecords: 4, NoiseSteps: 1, Epochs: 1}
}

// TestDefaultScenarioBitIdentical is the regression gate for the
// registry redesign: an unnamed scenario and an explicit "eeg-epilepsy"
// must build evaluators with equal fingerprints and produce identical
// results — the pre-registry behaviour under a new spelling.
func TestDefaultScenarioBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two (tiny) detectors")
	}
	implicit := NewSuite(tinyOpts(""))
	explicit := NewSuite(tinyOpts(scenario.DefaultName))
	if implicit.Scenario().Name != scenario.DefaultName {
		t.Fatalf("implicit suite resolved scenario %q", implicit.Scenario().Name)
	}
	fa, fb := implicit.Evaluator().Fingerprint(), explicit.Evaluator().Fingerprint()
	if fa != fb {
		t.Fatalf("fingerprints diverge:\n implicit %s\n explicit %s", fa, fb)
	}
	p := core.DesignPoint{Arch: core.ArchCS, Bits: 6, LNANoise: 5e-6, M: 75}
	ra, rb := implicit.Evaluator().Evaluate(p), explicit.Evaluator().Evaluate(p)
	if ra.MeanSNRdB != rb.MeanSNRdB || ra.Accuracy != rb.Accuracy || ra.TotalPower != rb.TotalPower {
		t.Fatalf("results diverge:\n implicit %+v\n explicit %+v", ra, rb)
	}
}

// TestScenarioFingerprintsDisjoint pins the cache-safety property the
// serving layer relies on: evaluators of different scenarios can never
// share a fingerprint, so cross-workload cache hits are impossible.
func TestScenarioFingerprintsDisjoint(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a (tiny) detector")
	}
	eeg := NewSuite(tinyOpts(""))
	ecg := NewSuite(tinyOpts("ecg-telemonitoring"))
	if ecg.Scenario().Name != "ecg-telemonitoring" {
		t.Fatalf("ecg suite resolved scenario %q", ecg.Scenario().Name)
	}
	if eeg.Evaluator().Fingerprint() == ecg.Evaluator().Fingerprint() {
		t.Fatalf("EEG and ECG evaluators share fingerprint %s", eeg.Evaluator().Fingerprint())
	}
	// The ECG workload's metric is training-free and must still produce
	// sound results over its own architecture set.
	for _, arch := range ecg.Scenario().Architectures {
		p := core.DesignPoint{Arch: arch, Bits: 8, LNANoise: 5e-6, M: 75}
		r := ecg.Evaluator().Evaluate(p)
		if r.Err != nil {
			t.Fatalf("ecg %v: %v", arch, r.Err)
		}
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("ecg %v: accuracy %g outside [0,1]", arch, r.Accuracy)
		}
		if r.TotalPower <= 0 {
			t.Fatalf("ecg %v: non-positive power %g", arch, r.TotalPower)
		}
	}
}

// TestSuiteUnknownScenarioPanics pins failure locality: a bad name
// fails at suite construction, not deep inside an evaluation.
func TestSuiteUnknownScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("suite with an unknown scenario did not panic on init")
		}
	}()
	NewSuite(tinyOpts("no-such-workload")).Scenario()
}
