package experiments

import (
	"strings"
	"testing"

	"efficsense/internal/core"
)

// sampleCloud builds a small synthetic result cloud, round-trips it
// through the CSV emitter and loader, and returns both sides.
func sampleCloud(t *testing.T) ([]core.Result, []core.Result) {
	t.Helper()
	orig := []core.Result{
		{Point: core.DesignPoint{Arch: core.ArchBaseline, Bits: 8, LNANoise: 2e-6},
			MeanSNRdB: 18.5, Accuracy: 1.0, TotalPower: 8.3e-6, AreaCaps: 257},
		{Point: core.DesignPoint{Arch: core.ArchCS, Bits: 8, LNANoise: 6e-6, M: 150, CHold: 80e-15},
			MeanSNRdB: 5.5, Accuracy: 0.99, TotalPower: 2.7e-6, AreaCaps: 12266},
		{Point: core.DesignPoint{Arch: core.ArchCSDigital, Bits: 6, LNANoise: 1e-6, M: 75},
			MeanSNRdB: 7.0, Accuracy: 0.97, TotalPower: 3.8e-6, AreaCaps: 65},
		{Point: core.DesignPoint{Arch: core.ArchCSActive, Bits: 7, LNANoise: 3e-6, M: 192},
			MeanSNRdB: 6.0, Accuracy: 0.95, TotalPower: 7.3e-6, AreaCaps: 15000},
	}
	var sb strings.Builder
	if err := CSVResults(&sb, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadResults(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return orig, loaded
}

func TestLoadResultsRoundTrip(t *testing.T) {
	orig, loaded := sampleCloud(t)
	if len(loaded) != len(orig) {
		t.Fatalf("loaded %d results, want %d", len(loaded), len(orig))
	}
	for i := range orig {
		a, b := orig[i], loaded[i]
		if a.Point != b.Point {
			t.Fatalf("row %d: point %+v != %+v", i, b.Point, a.Point)
		}
		if a.MeanSNRdB != b.MeanSNRdB || a.Accuracy != b.Accuracy ||
			a.TotalPower != b.TotalPower || a.AreaCaps != b.AreaCaps {
			t.Fatalf("row %d scalar mismatch: %+v vs %+v", i, b, a)
		}
	}
}

func TestLoadResultsErrors(t *testing.T) {
	if _, err := LoadResults(strings.NewReader("bogus,header\n1,2\n")); err == nil {
		t.Fatal("missing columns should error")
	}
	bad := "arch,bits,noise_vrms,m,chold_f,snr_db,accuracy,total_w,area_caps\n" +
		"martian,8,1e-6,0,0,1,1,1,1\n"
	if _, err := LoadResults(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown architecture should error")
	}
	bad2 := "arch,bits,noise_vrms,m,chold_f,snr_db,accuracy,total_w,area_caps\n" +
		"baseline,eight,1e-6,0,0,1,1,1,1\n"
	if _, err := LoadResults(strings.NewReader(bad2)); err == nil {
		t.Fatal("non-numeric bits should error")
	}
}

func TestFigsFromResults(t *testing.T) {
	_, loaded := sampleCloud(t)
	figs := NewFigsFromResults(loaded, 0.98)
	f7a := figs.Fig7a()
	if len(f7a.Baseline) == 0 || len(f7a.CS) == 0 {
		t.Fatal("static fronts empty")
	}
	f7b := figs.Fig7b()
	if !f7b.HaveBaseline || !f7b.HaveCS {
		t.Fatalf("static optima missing: %+v", f7b)
	}
	if f7b.CSOpt.TotalPower != 2.7e-6 {
		t.Fatalf("static CS optimum %g", f7b.CSOpt.TotalPower)
	}
	if pts := figs.Fig9(); len(pts) != len(loaded) {
		t.Fatalf("fig9 points %d", len(pts))
	}
	fronts := figs.Fig10([]float64{100, 20000})
	if len(fronts) != 2 {
		t.Fatalf("fig10 fronts %d", len(fronts))
	}
	if fronts[0].HaveOptimum {
		t.Fatal("100-cap should admit no >=0.98 design in this cloud")
	}
	if !fronts[1].HaveOptimum || fronts[1].Optimum.TotalPower != 2.7e-6 {
		t.Fatalf("20000-cap optimum wrong: %+v", fronts[1].Optimum)
	}
}
