// Package units provides physical constants, SI unit helpers and
// conversions shared by the EffiCSense models. All framework quantities are
// plain float64 SI values (volts, amps, watts, farads, hertz, seconds);
// this package centralises the constants and the pretty-printing used by
// reports so that magnitudes stay legible (µW, fF, ...).
package units

import (
	"fmt"
	"math"
)

// Physical constants (SI).
const (
	// Boltzmann is the Boltzmann constant in J/K.
	Boltzmann = 1.380649e-23
	// RoomTemperature is the nominal simulation temperature in kelvin.
	RoomTemperature = 300.0
	// ElementaryCharge is the elementary charge in coulombs.
	ElementaryCharge = 1.602176634e-19
)

// KT returns k·T at temperature t (kelvin).
func KT(t float64) float64 { return Boltzmann * t }

// KTRoom is k·T at RoomTemperature, the value used throughout the power
// models (Table II uses kT without an explicit temperature).
var KTRoom = KT(RoomTemperature)

// Common engineering prefixes as multipliers.
const (
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
)

// DB converts a power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// DBV converts an amplitude (voltage) ratio to decibels.
func DBV(ratio float64) float64 { return 20 * math.Log10(ratio) }

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// FromDBV converts decibels to an amplitude ratio.
func FromDBV(db float64) float64 { return math.Pow(10, db/20) }

// ENOB converts an SNDR in dB to effective number of bits using the
// standard (SNDR-1.76)/6.02 relation.
func ENOB(sndrDB float64) float64 { return (sndrDB - 1.76) / 6.02 }

// SNDRFromENOB is the inverse of ENOB.
func SNDRFromENOB(bits float64) float64 { return bits*6.02 + 1.76 }

var siPrefixes = []struct {
	mult   float64
	symbol string
}{
	{1e-18, "a"},
	{1e-15, "f"},
	{1e-12, "p"},
	{1e-9, "n"},
	{1e-6, "µ"},
	{1e-3, "m"},
	{1, ""},
	{1e3, "k"},
	{1e6, "M"},
	{1e9, "G"},
	{1e12, "T"},
}

// Format renders v with an SI prefix and the given unit, e.g.
// Format(2.44e-6, "W") == "2.44µW". Values of exactly zero render as "0<unit>".
func Format(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	if math.IsNaN(v) {
		return "NaN" + unit
	}
	if math.IsInf(v, 0) {
		if v > 0 {
			return "+Inf" + unit
		}
		return "-Inf" + unit
	}
	abs := math.Abs(v)
	best := siPrefixes[0]
	for _, p := range siPrefixes {
		if abs >= p.mult*0.9995 {
			best = p
		}
	}
	scaled := v / best.mult
	return trimFloat(scaled) + best.symbol + unit
}

// trimFloat formats with three significant decimals and trims trailing
// zeros, matching the compact style used in the paper's figures.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros, then a trailing dot.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (or absolute tolerance abs for values near zero).
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}
