package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKTRoom(t *testing.T) {
	want := 1.380649e-23 * 300
	if !ApproxEqual(KTRoom, want, 1e-12, 0) {
		t.Fatalf("KTRoom = %g, want %g", KTRoom, want)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, r := range []float64{0.001, 0.5, 1, 2, 1000, 123456} {
		if got := FromDB(DB(r)); !ApproxEqual(got, r, 1e-12, 0) {
			t.Errorf("FromDB(DB(%g)) = %g", r, got)
		}
		if got := FromDBV(DBV(r)); !ApproxEqual(got, r, 1e-12, 0) {
			t.Errorf("FromDBV(DBV(%g)) = %g", r, got)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %g, want 20", got)
	}
	if got := DBV(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("DBV(10) = %g, want 20", got)
	}
}

func TestENOBRoundTrip(t *testing.T) {
	for _, bits := range []float64{4, 6, 8, 10.5, 12} {
		if got := ENOB(SNDRFromENOB(bits)); !ApproxEqual(got, bits, 1e-12, 0) {
			t.Errorf("ENOB round trip for %g bits = %g", bits, got)
		}
	}
	// 8-bit ideal quantiser: SNDR = 49.92 dB.
	if got := SNDRFromENOB(8); math.Abs(got-49.92) > 1e-9 {
		t.Errorf("SNDRFromENOB(8) = %g, want 49.92", got)
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{2.44e-6, "W", "2.44µW"},
		{8.8e-6, "W", "8.8µW"},
		{1e-15, "F", "1fF"},
		{0, "W", "0W"},
		{1.5, "V", "1.5V"},
		{537.6, "Hz", "537.6Hz"},
		{4.8384e3, "Hz", "4.838kHz"},
		{-3.3e-3, "A", "-3.3mA"},
		{math.NaN(), "W", "NaNW"},
		{math.Inf(1), "W", "+InfW"},
		{math.Inf(-1), "W", "-InfW"},
	}
	for _, c := range cases {
		if got := Format(c.v, c.unit); got != c.want {
			t.Errorf("Format(%g, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %g", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %g", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		got := Clamp(v, -1, 1)
		return got >= -1 && got <= 1 && (v < -1 || v > 1 || got == v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBMonotonicProperty(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Abs(a)+1e-9, math.Abs(b)+1e-9
		if x == y {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return DB(x) < DB(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Error("values within rel tolerance should be equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-3, 0) {
		t.Error("values outside rel tolerance should differ")
	}
	if !ApproxEqual(0, 1e-15, 1e-12, 1e-12) {
		t.Error("values within abs tolerance should be equal")
	}
}
