package search

import (
	"strings"
	"testing"
)

// FuzzParseGoal throws arbitrary strings at the query parser and checks
// its contracts: never panic, never return a spec that fails validation
// once a budget is attached, and render accepted specs canonically so
// that Query() round-trips to the identical spec.
func FuzzParseGoal(f *testing.F) {
	seeds := []string{
		"max-accuracy@power<=3e-6",
		"min-power@accuracy>=0.98",
		"max-snr@power<=5e-6@area<=2000",
		"min-power@snr>=20@area<=500",
		"max-accuracy",
		"",
		"min-power",
		"max-accuracy@power>=1",
		"max-accuracy@power<=1e309",
		"max-accuracy@@",
		"max-accuracy@power<=-0",
		"min-power@accuracy>=0.9@snr>=10",
		"max-accuracy@area<=1e-300",
		"max-snr@power<=0x1p-3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseQuery(s)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "search: ") {
				t.Fatalf("ParseQuery(%q) error without package prefix: %v", s, err)
			}
			return
		}
		spec.MaxEvaluations = 1
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseQuery(%q) accepted a spec Validate rejects: %v (%+v)", s, verr, spec)
		}
		canon := spec.Query()
		back, err := ParseQuery(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
		}
		back.MaxEvaluations = 1
		if back != spec {
			t.Fatalf("round trip of %q: %+v != %+v (via %q)", s, back, spec, canon)
		}
	})
}
