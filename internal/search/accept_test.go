package search

import (
	"context"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"efficsense/internal/core"
	"efficsense/internal/dse"
)

// The acceptance harness pits the adaptive search against exhaustive
// ground truth on paper-shaped studies (the Fig 7 quality/power fronts
// and the Fig 9/10 area-capped variant) and gates on the issue's bar:
// the search must recover >= 95% of the exhaustive Pareto front while
// spending <= 10% of the exhaustive evaluation count.
//
// The evaluator is a closed-form stand-in for the full signal chain,
// built so the studies have the structure that makes adaptive search
// meaningful (and honest): quality metrics are quantised the way the
// real pipeline's are (accuracy moves in confusion-matrix steps, SNR is
// reported to 0.01 dB), the baseline and CS curves cross (each owns a
// segment of the front), and most (M, C_hold) variants are dominated —
// the regions the probe rungs exist to discard.

const (
	amSignal  = 0.1 // signal power at the ADC input, V²
	amGain    = 500 // LNA gain referring its noise to the ADC input
	amKT      = 4.14e-21
	amNyquist = 384.0 // Nyquist samples per window (M's reference)
)

// acceptModel is the closed-form evaluator. Pure and deterministic.
type acceptModel struct{}

func (acceptModel) Evaluate(p core.DesignPoint) core.Result {
	frac := 1.0
	hold := p.CHold
	if hold <= 0 {
		hold = 80e-15
	}
	// Noise at the ADC input: quantisation + referred LNA noise, plus
	// the CS penalties (subsampling distortion shrinking with M, kT/C of
	// the hold capacitor).
	step := math.Pow(2, -float64(p.Bits))
	noise := step*step/12 + (amGain*p.LNANoise)*(amGain*p.LNANoise)
	if p.Arch != core.ArchBaseline {
		frac = float64(p.M) / amNyquist
		noise += amSignal*1e-9*(1-frac) + 30*amKT/hold
	}
	snr := 10 * math.Log10(amSignal/noise)
	snr = math.Round(snr*100) / 100 // reported to 0.01 dB
	acc := 0.55 + 0.44/(1+math.Exp(-(snr-26)/2.5))
	acc = math.Round(acc*400) / 400 // confusion-matrix quantisation

	// Power: LNA noise-power trade (NEF law), ADC and TX scaling with
	// resolution and sample rate. The CS encoder's buffer has to settle
	// small hold capacitors fast, so its power falls as C_hold grows —
	// the price of a big hold capacitor is area, not power.
	pLNA := 2e-18 / (p.LNANoise * p.LNANoise)
	pADC := 3.1e-9 * math.Pow(2, float64(p.Bits)) * frac
	pTX := 0.2e-6 * float64(p.Bits) * frac
	pENC := 0.0
	if p.Arch != core.ArchBaseline {
		pENC = 0.1e-6 + 0.8e-6*(40e-15/hold)*frac
	}

	// Area in unit capacitors: the baseline pays for a full binary DAC;
	// CS trades DAC area for the measurement path and hold capacitor.
	area := 3 * math.Pow(2, float64(p.Bits))
	if p.Arch != core.ArchBaseline {
		area = math.Pow(2, float64(p.Bits)) + 0.5*float64(p.M) + 2*hold/1e-15
	}

	return core.Result{
		Point: p, MeanSNRdB: snr, Accuracy: acc,
		TotalPower: pLNA + pADC + pTX + pENC, AreaCaps: area,
	}
}

// acceptSpace is the study grid: 48 (arch, bits, M, C_hold) groups of
// 128 noise points — 6144 designs, big enough that exhaustive sweeps
// are the expensive path the search is meant to replace, with most of
// the CS variants dominated (the regions pruning exists to discard).
func acceptSpace() dse.Space {
	return dse.Space{
		Architectures: []core.Architecture{core.ArchBaseline, core.ArchCS},
		Bits:          []int{6, 7, 8},
		LNANoise:      dse.GeomRange(1e-6, 20e-6, 128),
		M:             []int{50, 75, 100, 150, 192},
		CHold:         []float64{40e-15, 80e-15, 160e-15},
	}
}

// exhaustiveFront evaluates the whole space closed-form and returns the
// ground-truth front under the spec's metric and area cap.
func exhaustiveFront(t *testing.T, space dse.Space, spec Spec) []core.Result {
	t.Helper()
	q, err := spec.Quality()
	if err != nil {
		t.Fatal(err)
	}
	var all []core.Result
	for _, p := range space.Points() {
		all = append(all, acceptModel{}.Evaluate(p))
	}
	return dse.ParetoFront(dse.FilterArea(all, spec.MaxAreaCaps), q)
}

// recall is the fraction of ground-truth front points the search front
// covers: a truth point counts as recovered when some search point
// matches or dominates it (no more power, no less quality).
func recall(truth, found []core.Result, q dse.Quality) float64 {
	if len(truth) == 0 {
		return 1
	}
	hit := 0
	for _, g := range truth {
		for _, s := range found {
			if s.TotalPower <= g.TotalPower && q(s) >= q(g) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(truth))
}

// runStudy executes one search over the study grid through a real
// *dse.Sweep (cache, batch dispatch, fault seams — the production path).
func runStudy(t *testing.T, space dse.Space, spec Spec) Outcome {
	t.Helper()
	sweep, err := dse.NewSweep(acceptModel{}, dse.WithWorkers(4),
		dse.WithCache(dse.NewMemoryCache()), dse.WithEvaluatorID("accept"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), Config{
		Space: space, Spec: spec,
		Fidelities: []Fidelity{{Name: "full", Eval: sweep}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

type studyRow struct {
	name   string
	spec   Spec
	space  int
	out    Outcome
	truth  int
	recall float64
}

func runAcceptance(t *testing.T) []studyRow {
	t.Helper()
	space := acceptSpace()
	size := space.Size()
	budget := size / 10
	studies := []struct {
		name string
		spec Spec
	}{
		{"fig7-snr", Spec{Goal: MaxQuality, Metric: "snr", MaxEvaluations: budget, Seed: 7}},
		{"fig7-accuracy", Spec{Goal: MaxQuality, Metric: "accuracy", MaxEvaluations: budget, Seed: 7}},
		{"fig10-area-capped", Spec{Goal: MaxQuality, Metric: "accuracy", MaxAreaCaps: 500, MaxEvaluations: budget, Seed: 7}},
	}
	rows := make([]studyRow, 0, len(studies))
	for _, st := range studies {
		truth := exhaustiveFront(t, space, st.spec)
		out := runStudy(t, space, st.spec)
		q, _ := st.spec.Quality()
		rows = append(rows, studyRow{
			name: st.name, spec: st.spec, space: size, out: out,
			truth: len(truth), recall: recall(truth, out.Front, q),
		})
	}
	return rows
}

// acceptTable renders the search-vs-exhaustive comparison uploaded as a
// CI artifact (SEARCH_ACCEPT_OUT) and logged on every run.
func acceptTable(rows []studyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "search vs exhaustive ground truth (bar: recall >= 95%% at <= 10%% of evaluations)\n\n")
	fmt.Fprintf(&b, "%-18s %-40s %6s %7s %6s %6s %6s %7s\n",
		"study", "query", "space", "evals", "used%", "truth", "found", "recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-40s %6d %7d %5.1f%% %6d %6d %6.1f%%\n",
			r.name, r.spec.Query(), r.space, r.out.Evaluations,
			100*float64(r.out.Evaluations)/float64(r.space),
			r.truth, len(r.out.Front), 100*r.recall)
	}
	return b.String()
}

// TestSearchAcceptanceGroundTruth is the gating acceptance test.
func TestSearchAcceptanceGroundTruth(t *testing.T) {
	rows := runAcceptance(t)
	table := acceptTable(rows)
	t.Logf("\n%s", table)
	if path := os.Getenv("SEARCH_ACCEPT_OUT"); path != "" {
		if err := os.WriteFile(path, []byte(table), 0o644); err != nil {
			t.Fatalf("writing comparison table: %v", err)
		}
	}
	for _, r := range rows {
		if r.out.Evaluations > r.out.Budget {
			t.Errorf("%s: spent %d of %d evaluations", r.name, r.out.Evaluations, r.out.Budget)
		}
		if frac := float64(r.out.Evaluations) / float64(r.space); frac > 0.10 {
			t.Errorf("%s: used %.1f%% of the exhaustive evaluation count, bar is 10%%", r.name, 100*frac)
		}
		if r.out.Partial {
			t.Errorf("%s: search did not converge within budget (%d/%d used, %d errors)",
				r.name, r.out.Evaluations, r.out.Budget, r.out.Errors)
		}
		if r.recall < 0.95 {
			t.Errorf("%s: front recall %.1f%%, bar is 95%% (truth %d, found %d)",
				r.name, 100*r.recall, r.truth, len(r.out.Front))
		}
	}
}

// TestSearchAcceptanceDeterminism pins the engine-level determinism
// contract: identical seed and budget yield the identical front.
func TestSearchAcceptanceDeterminism(t *testing.T) {
	space := acceptSpace()
	spec := Spec{Goal: MaxQuality, Metric: "snr", MaxEvaluations: space.Size() / 10, Seed: 11}
	a := runStudy(t, space, spec)
	b := runStudy(t, space, spec)
	if a.Evaluations != b.Evaluations || a.Errors != b.Errors || len(a.Front) != len(b.Front) {
		t.Fatalf("outcome differs across identical runs: %+v vs %+v", a, b)
	}
	for i := range a.Front {
		if a.Front[i].Point.Key() != b.Front[i].Point.Key() {
			t.Fatalf("front[%d] differs: %v vs %v", i, a.Front[i].Point, b.Front[i].Point)
		}
	}
}

// TestSearchAcceptanceMinPowerQuery exercises the other goal direction
// against ground truth: the returned design must be the true cheapest
// design meeting the quality floor.
func TestSearchAcceptanceMinPowerQuery(t *testing.T) {
	space := acceptSpace()
	spec := Spec{Goal: MinPower, Metric: "accuracy", MinQuality: 0.95,
		MaxEvaluations: space.Size() / 10, Seed: 3}
	best := core.Result{TotalPower: math.Inf(1)}
	for _, p := range space.Points() {
		r := acceptModel{}.Evaluate(p)
		if r.Accuracy >= spec.MinQuality && r.TotalPower < best.TotalPower {
			best = r
		}
	}
	out := runStudy(t, space, spec)
	if !out.HaveBest {
		t.Fatalf("no feasible design found (truth: %v at %g W)", best.Point, best.TotalPower)
	}
	if out.Best.TotalPower > best.TotalPower || out.Best.Accuracy < spec.MinQuality {
		t.Fatalf("min-power answer %v (%g W, acc %g); truth %v (%g W)",
			out.Best.Point, out.Best.TotalPower, out.Best.Accuracy, best.Point, best.TotalPower)
	}
}
