package search

import (
	"math"
	"sort"

	"efficsense/internal/core"
	"efficsense/internal/dse"
)

// nearFrontFrac is the slack of the "promising" test: a result survives
// pruning (and keeps its intervals active) when its quality is within
// this fraction of the observed quality range of the front's value at
// its power. Zero would prune anything not exactly on the interim
// front — too aggressive while the front is still a rough sketch from a
// handful of probes; a large value stops pruning anything.
const nearFrontFrac = 0.05

// Halving is the bundled adaptive strategy: successive halving over the
// design-space grid with front-guided local refinement.
//
// The grid is decomposed into groups — one per (architecture, bits, M,
// C_hold) combination, each a 1-D curve along the continuous LNA-noise
// axis, the same decomposition the engine's batch dispatch groups by.
// The search then runs in phases:
//
//  1. Probe: every group evaluates a handful of quantile indices of its
//     noise axis (ends plus midpoints) at the cheapest fidelity rung.
//  2. Prune: groups none of whose probes land near the interim Pareto
//     front are discarded — the "early discard of dominated regions".
//     Survivors are promoted to the next fidelity rung and re-probed,
//     until the final (authoritative) rung is reached.
//  3. Fill: on the surviving groups, intervals of the noise axis that
//     could still improve the full-fidelity front are recursively
//     bisected (widest first). This generalises dse.BisectNoiseFloor —
//     the same midpoint refinement of the noise axis, but driven by
//     front membership across every surviving curve at once instead of
//     a single quality threshold on a single point.
//
// The strategy is fully deterministic: group order follows the space's
// axis order, probe indices are fixed quantiles, and the fill queue is
// ordered by (width, group, index). It holds no map-ordered state and
// never consults the clock or a random source.
type Halving struct {
	spec  Spec
	q     dse.Quality
	rungs int
	noise []float64 // ascending, deduplicated

	groups []*hGroup

	phase int // phasing → probing rungs → filling → done
	rung  int

	// pending is the queue of not-yet-proposed evaluations;
	// outstanding the slice handed out by the last Propose.
	pending     []hRef
	outstanding []hRef

	// rungSound collects the current probe rung's sound results for the
	// prune step once the rung's probes are all observed.
	rungSound   []core.Result
	rungPending int // proposals of the current rung not yet observed

	// front mirrors the driver's full-fidelity front (area cap applied)
	// for activity tests; qLo/qHi track the observed quality extremes
	// that scale the near-front slack.
	front    *Front
	qLo, qHi float64

	intervals []hInterval
	splitting []hInterval // intervals whose midpoints are in flight
}

const (
	phaseProbe = iota
	phaseFill
	phaseDone
)

// hRef addresses one evaluation: group index × noise index.
type hRef struct{ g, idx int }

// hInterval is a fill-phase candidate: noise indices (lo, hi) of one
// group, both endpoints evaluated, hi > lo+1.
type hInterval struct{ g, lo, hi int }

// hGroup is one 1-D curve of the grid.
type hGroup struct {
	base  core.DesignPoint // LNANoise left unset
	alive bool
	// got holds the final-rung result per noise index (nil = not
	// evaluated; error rows are recorded so an index is never retried).
	got []*core.Result
}

// NewHalving builds the strategy for a space, spec and fidelity count
// (rungs >= 1; the last rung is the authoritative one).
func NewHalving(space dse.Space, spec Spec, rungs int) *Halving {
	if rungs < 1 {
		rungs = 1
	}
	q, err := spec.Quality()
	if err != nil {
		q = dse.QualityAccuracy
	}
	noise := append([]float64(nil), space.LNANoise...)
	sort.Float64s(noise)
	uniq := noise[:0]
	for i, v := range noise {
		if i == 0 || v != noise[i-1] {
			uniq = append(uniq, v)
		}
	}
	noise = uniq

	h := &Halving{
		spec: spec, q: q, rungs: rungs, noise: noise,
		front: NewFront(q),
		qLo:   math.Inf(1), qHi: math.Inf(-1),
	}
	// Group enumeration mirrors Space.Points: architectures outermost,
	// then bits; CS-only axes (M, CHold) expand non-baseline groups.
	for _, arch := range space.Architectures {
		for _, bits := range space.Bits {
			if arch == core.ArchBaseline {
				h.addGroup(core.DesignPoint{Arch: arch, Bits: bits})
				continue
			}
			ms := space.M
			if len(ms) == 0 {
				ms = []int{150}
			}
			chs := space.CHold
			if len(chs) == 0 {
				chs = []float64{0}
			}
			for _, m := range ms {
				for _, ch := range chs {
					h.addGroup(core.DesignPoint{Arch: arch, Bits: bits, M: m, CHold: ch})
				}
			}
		}
	}
	h.queueProbes()
	return h
}

func (h *Halving) addGroup(base core.DesignPoint) {
	h.groups = append(h.groups, &hGroup{
		base: base, alive: true, got: make([]*core.Result, len(h.noise)),
	})
}

// probeIndices are the quantile indices one probe rung evaluates: the
// interval ends plus the midpoint (a tiny axis is probed exhaustively).
func (h *Halving) probeIndices() []int {
	n := len(h.noise)
	if n <= 3 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return []int{0, (n - 1) / 2, n - 1}
}

// queueProbes schedules the current rung's probes for every alive group.
func (h *Halving) queueProbes() {
	idx := h.probeIndices()
	for g, grp := range h.groups {
		if !grp.alive {
			continue
		}
		for _, i := range idx {
			// At the final rung, skip indices already carrying a
			// final-fidelity result (re-probing after promotion from a
			// cheaper rung is what pays for the fidelity upgrade;
			// within a rung nothing repeats).
			if h.rung == h.rungs-1 && grp.got[i] != nil {
				continue
			}
			h.pending = append(h.pending, hRef{g: g, idx: i})
		}
	}
	h.rungPending = len(h.pending)
	h.rungSound = h.rungSound[:0]
}

func (h *Halving) point(ref hRef) core.DesignPoint {
	p := h.groups[ref.g].base
	p.LNANoise = h.noise[ref.idx]
	return p
}

// Propose implements Strategy.
func (h *Halving) Propose(n int) ([]core.DesignPoint, int) {
	if n <= 0 {
		return nil, h.fidelity()
	}
	if len(h.pending) == 0 {
		h.advance()
	}
	if h.phase == phaseDone || len(h.pending) == 0 {
		return nil, h.fidelity()
	}
	take := min(n, len(h.pending))
	h.outstanding = append(h.outstanding[:0], h.pending[:take]...)
	h.pending = h.pending[take:]
	pts := make([]core.DesignPoint, take)
	for i, ref := range h.outstanding {
		pts[i] = h.point(ref)
	}
	return pts, h.fidelity()
}

// fidelity is the rung current proposals run at: the probe rung while
// probing, the final rung once filling.
func (h *Halving) fidelity() int {
	if h.phase == phaseProbe {
		return h.rung
	}
	return h.rungs - 1
}

// Observe implements Strategy. rs carries one result per proposed point
// in proposal order; a clipped batch (the driver ran out of budget)
// simply observes fewer rows and the unobserved tail is requeued.
func (h *Halving) Observe(rung int, rs []core.Result) {
	seen := min(len(rs), len(h.outstanding))
	if tail := h.outstanding[seen:]; len(tail) > 0 {
		h.pending = append(append([]hRef{}, tail...), h.pending...)
	}
	final := rung == h.rungs-1
	for i := 0; i < seen; i++ {
		ref, r := h.outstanding[i], rs[i]
		if h.phase == phaseProbe {
			h.rungPending--
		}
		if final {
			rc := r
			h.groups[ref.g].got[ref.idx] = &rc
		}
		if r.Err != nil {
			continue
		}
		if h.phase == phaseProbe {
			h.rungSound = append(h.rungSound, r)
		}
		if final {
			if v := h.q(r); v < h.qLo || v > h.qHi {
				h.qLo, h.qHi = math.Min(h.qLo, v), math.Max(h.qHi, v)
			}
			if h.spec.MaxAreaCaps <= 0 || r.AreaCaps <= h.spec.MaxAreaCaps {
				h.front.Add(r)
			}
		}
	}
	h.outstanding = h.outstanding[:0]
	if h.phase == phaseFill {
		// Midpoints observed: split their parents around the new point.
		for _, iv := range h.splitting {
			mid := (iv.lo + iv.hi) / 2
			if mid-iv.lo > 1 {
				h.intervals = append(h.intervals, hInterval{g: iv.g, lo: iv.lo, hi: mid})
			}
			if iv.hi-mid > 1 {
				h.intervals = append(h.intervals, hInterval{g: iv.g, lo: mid, hi: iv.hi})
			}
		}
		h.splitting = h.splitting[:0]
	}
}

// advance moves the phase machine until proposals exist or the search
// has converged.
func (h *Halving) advance() {
	for len(h.pending) == 0 && h.phase != phaseDone {
		switch h.phase {
		case phaseProbe:
			if h.rungPending > 0 {
				return // clipped mid-rung: the driver is out of budget
			}
			h.prune()
			if h.rung < h.rungs-1 {
				h.rung++
				h.queueProbes()
				continue
			}
			h.phase = phaseFill
			h.seedIntervals()
		case phaseFill:
			h.scheduleSplits()
			if len(h.pending) == 0 && len(h.splitting) == 0 {
				h.phase = phaseDone
			}
			return
		}
	}
}

// prune discards every group none of whose current-rung probes landed
// near the rung's interim front. A rung with no sound results at all
// prunes nothing — degraded probes must not silently erase the space.
func (h *Halving) prune() {
	if len(h.rungSound) == 0 {
		return
	}
	rungFront := NewFront(h.q)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range h.rungSound {
		if h.spec.MaxAreaCaps > 0 && r.AreaCaps > h.spec.MaxAreaCaps {
			continue
		}
		rungFront.Add(r)
		lo, hi = math.Min(lo, h.q(r)), math.Max(hi, h.q(r))
	}
	if rungFront.Size() == 0 {
		return // every sound probe was area-capped out; keep probing
	}
	eps := nearFrontFrac * (hi - lo)
	idx := h.probeIndices()
	for _, grp := range h.groups {
		if !grp.alive {
			continue
		}
		promising := false
		for _, i := range idx {
			r := h.probeResult(grp, i)
			if r == nil || r.Err != nil {
				continue
			}
			if h.promising(rungFront, *r, eps) {
				promising = true
				break
			}
		}
		grp.alive = promising
	}
}

// probeResult looks one probe up in the rung's sound results; for the
// final rung the per-group storage answers directly.
func (h *Halving) probeResult(grp *hGroup, idx int) *core.Result {
	if h.rung == h.rungs-1 {
		return grp.got[idx]
	}
	p := grp.base
	p.LNANoise = h.noise[idx]
	key := p.Key()
	for i := range h.rungSound {
		if h.rungSound[i].Point.Key() == key {
			return &h.rungSound[i]
		}
	}
	return nil
}

// promising is the near-front test: the result's quality is within eps
// of the best quality the front attains at or below its power.
func (h *Halving) promising(f *Front, r core.Result, eps float64) bool {
	if h.spec.MaxAreaCaps > 0 && r.AreaCaps > h.spec.MaxAreaCaps {
		return false
	}
	best, ok := f.QualityAt(r.TotalPower)
	return !ok || h.q(r) >= best-eps
}

// seedIntervals builds the initial fill queue: every gap between
// consecutively evaluated noise indices of a surviving group.
func (h *Halving) seedIntervals() {
	for g, grp := range h.groups {
		if !grp.alive {
			continue
		}
		prev := -1
		for i, r := range grp.got {
			if r == nil {
				continue
			}
			if prev >= 0 && i-prev > 1 {
				h.intervals = append(h.intervals, hInterval{g: g, lo: prev, hi: i})
			}
			prev = i
		}
	}
}

// scheduleSplits moves every currently active interval into flight,
// widest first, proposing its midpoint. Inactive intervals (regions the
// front already dominates) are dropped — not worth the budget.
func (h *Halving) scheduleSplits() {
	keep := h.intervals[:0]
	var active []hInterval
	for _, iv := range h.intervals {
		if h.intervalActive(iv) {
			active = append(active, iv)
		}
	}
	h.intervals = keep[:0]
	sort.SliceStable(active, func(i, j int) bool {
		wi, wj := active[i].hi-active[i].lo, active[j].hi-active[j].lo
		if wi != wj {
			return wi > wj
		}
		if active[i].g != active[j].g {
			return active[i].g < active[j].g
		}
		return active[i].lo < active[j].lo
	})
	for _, iv := range active {
		mid := (iv.lo + iv.hi) / 2
		if h.groups[iv.g].got[mid] != nil {
			// Midpoint already known (seeded by a probe): split in place
			// without spending an evaluation.
			if mid-iv.lo > 1 {
				h.intervals = append(h.intervals, hInterval{g: iv.g, lo: iv.lo, hi: mid})
			}
			if iv.hi-mid > 1 {
				h.intervals = append(h.intervals, hInterval{g: iv.g, lo: mid, hi: iv.hi})
			}
			continue
		}
		h.pending = append(h.pending, hRef{g: iv.g, idx: mid})
		h.splitting = append(h.splitting, iv)
	}
	// In-place splits may have re-filled the queue without proposing
	// anything; loop until proposals exist or the queue drains.
	if len(h.pending) == 0 && len(h.splitting) == 0 && len(h.intervals) > 0 {
		h.scheduleSplits()
	}
}

// intervalActive: an interval stays worth bisecting while an interior
// point could still enter the front — the front's quality at the
// interval's cheapest end is strictly below the best quality either
// endpoint attains. Unlike the probe-rung prune this test has no eps
// slack: the front here is authoritative (full fidelity), so a region
// it already matches point-for-point is settled. In particular a flat
// quantised-quality run (a saturated accuracy plateau) stops bisecting
// as soon as a cheaper point with the same quality is on the front.
// An endpoint that degraded (error row) counts as unknown and keeps the
// interval alive through its partner only.
func (h *Halving) intervalActive(iv hInterval) bool {
	pMin, qMax := math.Inf(1), math.Inf(-1)
	known := false
	for _, idx := range [2]int{iv.lo, iv.hi} {
		r := h.groups[iv.g].got[idx]
		if r == nil || r.Err != nil {
			continue
		}
		if h.spec.MaxAreaCaps > 0 && r.AreaCaps > h.spec.MaxAreaCaps {
			continue
		}
		known = true
		pMin = math.Min(pMin, r.TotalPower)
		qMax = math.Max(qMax, h.q(*r))
	}
	if !known {
		return false
	}
	best, ok := h.front.QualityAt(pMin)
	return !ok || best < qMax
}
