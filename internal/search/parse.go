package search

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseQuery parses the compact goal/constraint grammar shared by the
// CLI's search mode and the HTTP API's "query" field:
//
//	query      := goal *( "@" constraint )
//	goal       := "max-accuracy" | "max-snr" | "min-power"
//	constraint := "power<=" number      (only with max-* goals)
//	            | "accuracy>=" number   (required by min-power)
//	            | "snr>=" number        (required by min-power)
//	            | "area<=" number       (any goal)
//
// Examples:
//
//	max-accuracy@power<=3e-6
//	min-power@accuracy>=0.98
//	max-snr@power<=5e-6@area<=2000
//
// Budget and seed are not part of the grammar — they arrive through
// their own flags and request fields — so the returned Spec has
// MaxEvaluations zero and needs it set before Validate passes.
func ParseQuery(s string) (Spec, error) {
	var spec Spec
	parts := strings.Split(strings.TrimSpace(s), "@")
	switch parts[0] {
	case "max-accuracy":
		spec.Goal, spec.Metric = MaxQuality, "accuracy"
	case "max-snr":
		spec.Goal, spec.Metric = MaxQuality, "snr"
	case "min-power":
		spec.Goal = MinPower
	case "":
		return spec, fmt.Errorf("search: empty query (want e.g. max-accuracy@power<=3e-6)")
	default:
		return spec, fmt.Errorf("search: unknown goal %q (want max-accuracy, max-snr or min-power)", parts[0])
	}
	for _, c := range parts[1:] {
		name, op, val, err := splitConstraint(c)
		if err != nil {
			return spec, err
		}
		switch name {
		case "power":
			if spec.Goal != MaxQuality {
				return spec, fmt.Errorf("search: constraint %q: a power ceiling only bounds max-* goals", c)
			}
			if op != "<=" {
				return spec, fmt.Errorf("search: constraint %q: power takes <= (a ceiling)", c)
			}
			if spec.MaxPower != 0 {
				return spec, fmt.Errorf("search: duplicate power constraint %q", c)
			}
			if val <= 0 {
				return spec, fmt.Errorf("search: constraint %q: the power ceiling must be positive", c)
			}
			spec.MaxPower = val
		case "accuracy", "snr":
			if spec.Goal != MinPower {
				return spec, fmt.Errorf("search: constraint %q: a quality floor only bounds min-power", c)
			}
			if op != ">=" {
				return spec, fmt.Errorf("search: constraint %q: %s takes >= (a floor)", c, name)
			}
			if spec.Metric != "" {
				return spec, fmt.Errorf("search: duplicate quality constraint %q", c)
			}
			if val <= 0 {
				return spec, fmt.Errorf("search: constraint %q: the quality floor must be positive", c)
			}
			spec.Metric, spec.MinQuality = name, val
		case "area":
			if op != "<=" {
				return spec, fmt.Errorf("search: constraint %q: area takes <= (a cap)", c)
			}
			if spec.MaxAreaCaps != 0 {
				return spec, fmt.Errorf("search: duplicate area constraint %q", c)
			}
			if val <= 0 {
				return spec, fmt.Errorf("search: constraint %q: the area cap must be positive", c)
			}
			spec.MaxAreaCaps = val
		default:
			return spec, fmt.Errorf("search: unknown constraint %q (want power<=, accuracy>=, snr>= or area<=)", c)
		}
	}
	if spec.Goal == MinPower && spec.Metric == "" {
		return spec, fmt.Errorf("search: min-power needs a quality floor (accuracy>=Q or snr>=Q)")
	}
	return spec, nil
}

// splitConstraint parses one "name<op>value" token.
func splitConstraint(c string) (name, op string, val float64, err error) {
	i := strings.IndexAny(c, "<>")
	if i < 0 || i+2 > len(c) || c[i+1] != '=' {
		return "", "", 0, fmt.Errorf("search: constraint %q is not name<=value or name>=value", c)
	}
	name, op = c[:i], c[i:i+2]
	val, err = strconv.ParseFloat(c[i+2:], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("search: constraint %q: bad number %q", c, c[i+2:])
	}
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return "", "", 0, fmt.Errorf("search: constraint %q: value must be finite", c)
	}
	return name, op, val, nil
}

// Query renders the spec back into the grammar ParseQuery accepts — the
// canonical form used in outcomes, logs and round-trip tests.
func (s Spec) Query() string {
	var b strings.Builder
	switch s.Goal {
	case MinPower:
		b.WriteString("min-power")
		fmt.Fprintf(&b, "@%s>=%g", s.Metric, s.MinQuality)
	default:
		b.WriteString("max-" + s.Metric)
		if s.MaxPower > 0 {
			fmt.Fprintf(&b, "@power<=%g", s.MaxPower)
		}
	}
	if s.MaxAreaCaps > 0 {
		fmt.Fprintf(&b, "@area<=%g", s.MaxAreaCaps)
	}
	return b.String()
}
