package search

import (
	"math"
	"sort"

	"efficsense/internal/core"
	"efficsense/internal/dse"
)

// Front is an incremental non-dominated set under (minimise power,
// maximise quality) — the online counterpart of dse.ParetoFront. The
// invariant after every Add: results are sorted by strictly ascending
// power AND strictly ascending quality, so membership and domination
// checks are binary searches and an insertion evicts exactly the
// contiguous run of points the newcomer dominates.
type Front struct {
	q  dse.Quality
	rs []core.Result
}

// NewFront builds an empty front over the given quality metric.
func NewFront(q dse.Quality) *Front { return &Front{q: q} }

// Add offers a result to the front. It returns true when the result
// enters (possibly evicting dominated members), false when it is
// dominated by or duplicates an existing member. Error rows never
// enter.
func (f *Front) Add(r core.Result) bool {
	if r.Err != nil {
		return false
	}
	v := f.q(r)
	if math.IsNaN(v) || math.IsNaN(r.TotalPower) {
		return false // NaN compares false everywhere and would corrupt the ordering invariant
	}
	// First member with power >= r's.
	i := sort.Search(len(f.rs), func(k int) bool { return f.rs[k].TotalPower >= r.TotalPower })
	// Dominated (or tied on both axes) by something at or below r's
	// power? Members left of i all have strictly lower power; the
	// nearest one has the highest quality among them, so one check
	// suffices. A member exactly at r's power dominates unless r's
	// quality is strictly higher.
	if i > 0 && f.q(f.rs[i-1]) >= v {
		return false
	}
	if i < len(f.rs) && f.rs[i].TotalPower == r.TotalPower && f.q(f.rs[i]) >= v {
		return false
	}
	// r enters: evict the run of members at >= power with <= quality.
	j := i
	for j < len(f.rs) && f.q(f.rs[j]) <= v {
		j++
	}
	f.rs = append(f.rs[:i], append([]core.Result{r}, f.rs[j:]...)...)
	return true
}

// Size returns the number of front members.
func (f *Front) Size() int { return len(f.rs) }

// Results returns a copy of the front, ascending power.
func (f *Front) Results() []core.Result {
	out := make([]core.Result, len(f.rs))
	copy(out, f.rs)
	return out
}

// QualityAt returns the best quality attained at or below the given
// power, and whether any member qualifies — the front read as a step
// function, used by the halving strategy's near-front test.
func (f *Front) QualityAt(power float64) (float64, bool) {
	i := sort.Search(len(f.rs), func(k int) bool { return f.rs[k].TotalPower > power })
	if i == 0 {
		return 0, false
	}
	return f.q(f.rs[i-1]), true
}

// Hypervolume returns the area of the quality×power region dominated by
// the front relative to a reference corner (refPower, refQuality): the
// sum over members of (refPower - power) × (quality gain over the
// previous member), counting only the part inside the reference box.
// Larger is better; the figure is a progress metric comparable within a
// run (against a fixed reference), not across metrics.
func (f *Front) Hypervolume(refPower, refQuality float64) float64 {
	hv := 0.0
	prevQ := refQuality
	for _, r := range f.rs {
		if r.TotalPower >= refPower {
			break // members at or beyond the corner dominate zero area inside it
		}
		q := f.q(r)
		if q <= prevQ {
			continue
		}
		hv += (refPower - r.TotalPower) * (q - prevQ)
		prevQ = q
	}
	return hv
}
