package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"efficsense/internal/core"
	"efficsense/internal/dse"
)

func res(power, acc float64) core.Result {
	return core.Result{
		Point:      core.DesignPoint{Arch: core.ArchBaseline, Bits: 8, LNANoise: power},
		TotalPower: power, Accuracy: acc, MeanSNRdB: acc,
	}
}

func TestFrontIncrementalInvariants(t *testing.T) {
	f := NewFront(dse.QualityAccuracy)
	if !f.Add(res(5, 0.90)) || !f.Add(res(1, 0.50)) || !f.Add(res(3, 0.80)) {
		t.Fatal("non-dominated additions rejected")
	}
	if f.Add(res(4, 0.70)) {
		t.Fatal("dominated point entered the front")
	}
	if f.Add(res(3, 0.80)) {
		t.Fatal("duplicate point entered the front")
	}
	// A sweep from below evicts the two middle members at once.
	if !f.Add(res(0.5, 0.85)) {
		t.Fatal("dominating point rejected")
	}
	got := f.Results()
	if len(got) != 2 || got[0].TotalPower != 0.5 || got[1].TotalPower != 5 {
		t.Fatalf("front after eviction: %+v", got)
	}
	// Invariant: ascending power AND ascending quality.
	for i := 1; i < len(got); i++ {
		if got[i].TotalPower <= got[i-1].TotalPower || got[i].Accuracy <= got[i-1].Accuracy {
			t.Fatalf("front invariant broken at %d: %+v", i, got)
		}
	}
	if f.Add(res(1, math.NaN())) {
		t.Fatal("NaN-quality point entered a non-empty front region it does not dominate")
	}
	if f.Add(core.Result{TotalPower: 0.1, Accuracy: 1, Err: errors.New("boom")}) {
		t.Fatal("error row entered the front")
	}
}

func TestFrontMatchesExhaustiveParetoFront(t *testing.T) {
	// The incremental front over any insertion order must equal the
	// batch dse.ParetoFront over the same cloud.
	var cloud []core.Result
	for i := 0; i < 40; i++ {
		p := float64((i*37)%40) + 1
		q := math.Sin(float64(i)*0.7)*0.3 + p*0.01
		r := res(p, q)
		r.Point.LNANoise = float64(i) // distinct points
		cloud = append(cloud, r)
	}
	f := NewFront(dse.QualityAccuracy)
	for _, r := range cloud {
		f.Add(r)
	}
	want := dse.ParetoFront(cloud, dse.QualityAccuracy)
	got := f.Results()
	if len(got) != len(want) {
		t.Fatalf("front size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].TotalPower != want[i].TotalPower || got[i].Accuracy != want[i].Accuracy {
			t.Fatalf("front[%d] = (%g, %g), want (%g, %g)", i,
				got[i].TotalPower, got[i].Accuracy, want[i].TotalPower, want[i].Accuracy)
		}
	}
}

func TestFrontQualityAtAndHypervolume(t *testing.T) {
	f := NewFront(dse.QualityAccuracy)
	f.Add(res(1, 0.5))
	f.Add(res(3, 0.8))
	if _, ok := f.QualityAt(0.5); ok {
		t.Fatal("QualityAt below the cheapest member reported a value")
	}
	if v, ok := f.QualityAt(2); !ok || v != 0.5 {
		t.Fatalf("QualityAt(2) = %g, %v", v, ok)
	}
	if v, ok := f.QualityAt(3); !ok || v != 0.8 {
		t.Fatalf("QualityAt(3) = %g, %v", v, ok)
	}
	// Reference corner (4, 0): two rectangles, (4-1)*0.5 + (4-3)*0.3.
	if hv := f.Hypervolume(4, 0); math.Abs(hv-1.8) > 1e-12 {
		t.Fatalf("hypervolume = %g, want 1.8", hv)
	}
	// Hypervolume grows when the front improves.
	f.Add(res(2, 0.7))
	if hv := f.Hypervolume(4, 0); hv <= 1.8 {
		t.Fatalf("hypervolume did not grow: %g", hv)
	}
	if hv := NewFront(dse.QualityAccuracy).Hypervolume(4, 0); hv != 0 {
		t.Fatalf("empty front hypervolume = %g", hv)
	}
}

func TestParseQueryTable(t *testing.T) {
	cases := []struct {
		in      string
		want    Spec
		wantErr string
	}{
		{in: "max-accuracy@power<=3e-6",
			want: Spec{Goal: MaxQuality, Metric: "accuracy", MaxPower: 3e-6}},
		{in: "max-snr@power<=5e-6@area<=2000",
			want: Spec{Goal: MaxQuality, Metric: "snr", MaxPower: 5e-6, MaxAreaCaps: 2000}},
		{in: "max-accuracy",
			want: Spec{Goal: MaxQuality, Metric: "accuracy"}},
		{in: "min-power@accuracy>=0.98",
			want: Spec{Goal: MinPower, Metric: "accuracy", MinQuality: 0.98}},
		{in: "min-power@snr>=20@area<=500",
			want: Spec{Goal: MinPower, Metric: "snr", MinQuality: 20, MaxAreaCaps: 500}},
		{in: "", wantErr: "empty query"},
		{in: "best-accuracy", wantErr: "unknown goal"},
		{in: "min-power", wantErr: "needs a quality floor"},
		{in: "min-power@power<=1e-6", wantErr: "only bounds max-"},
		{in: "max-accuracy@accuracy>=0.9", wantErr: "only bounds min-power"},
		{in: "max-accuracy@power>=1e-6", wantErr: "takes <="},
		{in: "min-power@accuracy<=0.9", wantErr: "takes >="},
		{in: "max-accuracy@power<=zero", wantErr: "bad number"},
		{in: "max-accuracy@power<=-1", wantErr: "must be positive"},
		{in: "max-accuracy@power<=1e-6@power<=2e-6", wantErr: "duplicate power"},
		{in: "min-power@accuracy>=0.9@snr>=10", wantErr: "duplicate quality"},
		{in: "max-accuracy@volume<=3", wantErr: "unknown constraint"},
		{in: "max-accuracy@power", wantErr: "not name<=value"},
	}
	for _, c := range cases {
		got, err := ParseQuery(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseQuery(%q) err = %v, want mention of %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseQuery(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// The canonical rendering must round-trip.
		back, err := ParseQuery(got.Query())
		if err != nil || back != got {
			t.Errorf("round trip of %q via %q: %+v, %v", c.in, got.Query(), back, err)
		}
	}
}

// scriptedStrategy replays fixed proposals for driver tests.
type scriptedStrategy struct {
	batches  [][]core.DesignPoint
	rungs    []int
	observed [][]core.Result
	cursor   int
}

func (s *scriptedStrategy) Propose(n int) ([]core.DesignPoint, int) {
	if s.cursor >= len(s.batches) {
		return nil, 0
	}
	b := s.batches[s.cursor]
	if len(b) > n {
		b = b[:n]
	}
	r := 0
	if s.rungs != nil {
		r = s.rungs[s.cursor]
	}
	return b, r
}

func (s *scriptedStrategy) Observe(rung int, rs []core.Result) {
	s.observed = append(s.observed, rs)
	s.cursor++
}

// unitEval scores points with a fixed formula; errIdx points degrade.
type unitEval struct {
	calls  int
	errKey string
}

func (e *unitEval) EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result {
	out := make([]core.Result, len(pts))
	for i, p := range pts {
		e.calls++
		r := core.Result{Point: p, TotalPower: p.LNANoise, Accuracy: 1 - p.LNANoise, MeanSNRdB: 1 - p.LNANoise}
		if p.Key() == e.errKey {
			r.Err = errors.New("injected")
		}
		out[i] = r
	}
	return out
}

func pt(vn float64) core.DesignPoint {
	return core.DesignPoint{Arch: core.ArchBaseline, Bits: 8, LNANoise: vn}
}

func unitSpace() dse.Space {
	return dse.Space{
		Architectures: []core.Architecture{core.ArchBaseline},
		Bits:          []int{8},
		LNANoise:      dse.GeomRange(1e-6, 20e-6, 16),
	}
}

func unitConfig(strat Strategy, ev Evaluator, budget int) Config {
	return Config{
		Space:      unitSpace(),
		Spec:       Spec{Goal: MaxQuality, Metric: "accuracy", MaxEvaluations: budget, Seed: 1},
		Fidelities: []Fidelity{{Name: "full", Eval: ev}},
		Strategy:   strat,
	}
}

func TestRunEnforcesBudgetExactly(t *testing.T) {
	// Three batches of 4, budget 10: the driver must clip the third
	// batch to 2 and never dispatch point 11.
	var batches [][]core.DesignPoint
	for b := 0; b < 3; b++ {
		var pts []core.DesignPoint
		for i := 0; i < 4; i++ {
			pts = append(pts, pt(float64(b*4+i+1)*1e-6))
		}
		batches = append(batches, pts)
	}
	ev := &unitEval{}
	strat := &scriptedStrategy{batches: batches}
	out, err := Run(context.Background(), unitConfig(strat, ev, 10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Evaluations != 10 || ev.calls != 10 {
		t.Fatalf("evaluations %d (evaluator saw %d), want exactly 10", out.Evaluations, ev.calls)
	}
	if out.Budget-out.Evaluations != 0 {
		t.Fatalf("budget accounting: %d used of %d", out.Evaluations, out.Budget)
	}
	// Budget ran out while the strategy still had proposals: partial.
	if !out.Partial {
		t.Fatal("budget-exhausted run not marked partial")
	}
	// Clipped batch: the strategy observed only the rows that ran.
	if got := len(strat.observed[2]); got != 2 {
		t.Fatalf("clipped batch observed %d rows, want 2", got)
	}
}

func TestRunConvergedCleanRunIsNotPartial(t *testing.T) {
	ev := &unitEval{}
	strat := &scriptedStrategy{batches: [][]core.DesignPoint{{pt(1e-6), pt(2e-6)}}}
	out, err := Run(context.Background(), unitConfig(strat, ev, 100))
	if err != nil {
		t.Fatal(err)
	}
	if out.Partial || out.Errors != 0 || out.Evaluations != 2 {
		t.Fatalf("clean run outcome: %+v", out)
	}
	if len(out.Front) != 1 || out.Front[0].TotalPower != 1e-6 {
		t.Fatalf("front: %+v", out.Front)
	}
	if !out.HaveBest || out.Best.TotalPower != 1e-6 {
		t.Fatalf("best: %+v (have %v)", out.Best, out.HaveBest)
	}
}

func TestRunDegradedRowsCountAgainstBudgetNotFront(t *testing.T) {
	ev := &unitEval{errKey: pt(2e-6).Key()}
	strat := &scriptedStrategy{batches: [][]core.DesignPoint{{pt(1e-6), pt(2e-6), pt(3e-6)}}}
	out, err := Run(context.Background(), unitConfig(strat, ev, 100))
	if err != nil {
		t.Fatal(err)
	}
	if out.Evaluations != 3 || out.Errors != 1 || !out.Partial {
		t.Fatalf("degraded outcome: %+v", out)
	}
	for _, r := range out.Front {
		if r.Err != nil {
			t.Fatalf("error row on the front: %+v", r)
		}
		if r.Point.Key() == pt(2e-6).Key() {
			t.Fatal("degraded point entered the front")
		}
	}
}

func TestRunCancelReturnsPartialFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ev := &unitEval{}
	cancelAfter := &cancellingEval{inner: ev, cancel: cancel}
	var batches [][]core.DesignPoint
	for b := 0; b < 5; b++ {
		batches = append(batches, []core.DesignPoint{pt(float64(b+1) * 1e-6)})
	}
	strat := &scriptedStrategy{batches: batches}
	out, err := Run(ctx, unitConfig(strat, cancelAfter, 100))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !out.Partial {
		t.Fatal("cancelled run not partial")
	}
	if out.Evaluations != 1 || len(out.Front) != 1 {
		t.Fatalf("partial outcome after first batch: %+v", out)
	}
}

// cancellingEval cancels the run after its first batch.
type cancellingEval struct {
	inner  Evaluator
	cancel context.CancelFunc
	done   bool
}

func (e *cancellingEval) EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result {
	rs := e.inner.EvaluateBatch(ctx, pts)
	if !e.done {
		e.done = true
		e.cancel()
	}
	return rs
}

func TestRunRoutesRungsToFidelities(t *testing.T) {
	cheap, full := &unitEval{}, &unitEval{}
	strat := &scriptedStrategy{
		batches: [][]core.DesignPoint{{pt(1e-6), pt(2e-6)}, {pt(1e-6)}},
		rungs:   []int{0, 1},
	}
	cfg := unitConfig(strat, nil, 100)
	cfg.Fidelities = []Fidelity{{Name: "probe", Eval: cheap}, {Name: "full", Eval: full}}
	out, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.calls != 2 || full.calls != 1 {
		t.Fatalf("fidelity routing: probe %d, full %d", cheap.calls, full.calls)
	}
	// Only the full-fidelity result reaches the front.
	if len(out.Front) != 1 || out.Front[0].Point.Key() != pt(1e-6).Key() {
		t.Fatalf("front built from wrong rung: %+v", out.Front)
	}
	if out.Evaluations != 3 {
		t.Fatalf("all rungs must consume budget: %d", out.Evaluations)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	ev := &unitEval{}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero budget", func(c *Config) { c.Spec.MaxEvaluations = 0 }},
		{"bad metric", func(c *Config) { c.Spec.Metric = "watts" }},
		{"no fidelities", func(c *Config) { c.Fidelities = nil }},
		{"nil evaluator", func(c *Config) { c.Fidelities = []Fidelity{{Name: "x"}} }},
		{"empty space", func(c *Config) { c.Space = dse.Space{} }},
		{"min-power without floor", func(c *Config) { c.Spec.Goal = MinPower; c.Spec.MinQuality = 0 }},
	}
	for _, c := range cases {
		cfg := unitConfig(&scriptedStrategy{}, ev, 10)
		c.mut(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", c.name)
		}
	}
}

// tradeEval models a genuine trade-off: quality and power both grow
// with the knob, so every point is Pareto-optimal.
type tradeEval struct{}

func (tradeEval) EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result {
	out := make([]core.Result, len(pts))
	for i, p := range pts {
		out[i] = core.Result{Point: p, TotalPower: p.LNANoise, Accuracy: p.LNANoise, MeanSNRdB: p.LNANoise}
	}
	return out
}

func TestRunMinPowerAnswersFromFront(t *testing.T) {
	strat := &scriptedStrategy{batches: [][]core.DesignPoint{
		{pt(0.1), pt(0.2), pt(0.3), pt(0.4)},
	}}
	cfg := unitConfig(strat, tradeEval{}, 100)
	cfg.Spec.Goal, cfg.Spec.MinQuality = MinPower, 0.15
	out, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Front) != 4 {
		t.Fatalf("trade-off front size %d, want 4", len(out.Front))
	}
	// Cheapest point with accuracy >= 0.15 on the 0.1..0.4 grid is 0.2.
	if !out.HaveBest || out.Best.TotalPower != 0.2 {
		t.Fatalf("min-power answer: %+v (have %v)", out.Best, out.HaveBest)
	}
	// An unreachable floor yields no answer but still a front.
	strat2 := &scriptedStrategy{batches: [][]core.DesignPoint{{pt(0.1), pt(0.2)}}}
	cfg2 := unitConfig(strat2, tradeEval{}, 100)
	cfg2.Spec.Goal, cfg2.Spec.MinQuality = MinPower, 0.99
	out2, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if out2.HaveBest || len(out2.Front) == 0 {
		t.Fatalf("unreachable floor: %+v", out2)
	}
}

func TestRunProgressReportsMonotonicBudget(t *testing.T) {
	ev := &unitEval{}
	var batches [][]core.DesignPoint
	for b := 0; b < 4; b++ {
		batches = append(batches, []core.DesignPoint{pt(float64(b+1) * 1e-6)})
	}
	var seen []Progress
	cfg := unitConfig(&scriptedStrategy{batches: batches}, ev, 100)
	cfg.OnProgress = func(p Progress) { seen = append(seen, p) }
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("progress rounds: %d, want 4", len(seen))
	}
	for i, p := range seen {
		if p.Evaluations != i+1 || p.Budget != 100 {
			t.Fatalf("progress[%d] = %+v", i, p)
		}
		if p.FrontSize != 1 { // cheapest point dominates all later ones
			t.Fatalf("progress[%d] front size %d", i, p.FrontSize)
		}
	}
	if !seen[0].Improved || seen[1].Improved {
		t.Fatalf("improvement flags: %+v", seen[:2])
	}
}

func TestHalvingDeterministicUnderSeedAndBudget(t *testing.T) {
	run := func() Outcome {
		ev := &unitEval{}
		cfg := Config{
			Space:      unitSpace(),
			Spec:       Spec{Goal: MaxQuality, Metric: "accuracy", MaxEvaluations: 9, Seed: 42},
			Fidelities: []Fidelity{{Name: "full", Eval: ev}},
			BatchSize:  4,
		}
		out, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Evaluations != b.Evaluations || len(a.Front) != len(b.Front) || a.Hypervolume != b.Hypervolume {
		t.Fatalf("non-deterministic outcome: %+v vs %+v", a, b)
	}
	for i := range a.Front {
		if a.Front[i].Point.Key() != b.Front[i].Point.Key() {
			t.Fatalf("front[%d] differs: %v vs %v", i, a.Front[i].Point, b.Front[i].Point)
		}
	}
}

func TestHalvingObserveRequeuesClippedTail(t *testing.T) {
	// A halving run whose every batch is clipped to 1 point must still
	// converge and visit each point at most once.
	ev := &unitEval{}
	cfg := Config{
		Space:      unitSpace(),
		Spec:       Spec{Goal: MaxQuality, Metric: "accuracy", MaxEvaluations: 1000, Seed: 1},
		Fidelities: []Fidelity{{Name: "full", Eval: ev}},
		BatchSize:  1,
	}
	out, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Partial {
		t.Fatalf("single-point batches failed to converge: %+v", out)
	}
	if ev.calls > unitSpace().Size() {
		t.Fatalf("%d evaluations for a %d-point space: points repeated", ev.calls, unitSpace().Size())
	}
}

func TestSpecQueryStringsAreStable(t *testing.T) {
	s := Spec{Goal: MaxQuality, Metric: "accuracy", MaxPower: 3e-6, MaxAreaCaps: 2000}
	if got := s.Query(); got != "max-accuracy@power<=3e-06@area<=2000" {
		t.Fatalf("Query() = %q", got)
	}
	s2 := Spec{Goal: MinPower, Metric: "snr", MinQuality: 20}
	if got := s2.Query(); got != "min-power@snr>=20" {
		t.Fatalf("Query() = %q", got)
	}
	if fmt.Sprint(MaxQuality, MinPower) != "max-quality min-power" {
		t.Fatalf("goal strings: %v %v", MaxQuality, MinPower)
	}
}
