// Package search answers goal-directed design-space queries —
// "maximise quality subject to power ≤ B", "minimise power subject to
// quality ≥ Q" — in a fraction of the evaluations an exhaustive
// dse.Sweep spends on the full Table III lattice.
//
// The architecture is a propose/observe loop: a Strategy proposes
// batches of core.DesignPoint, the driver evaluates them through a
// dse.BatchEvaluator-shaped surface (so every probe rides the engines'
// batch dispatch and shared memoisation cache), feeds the results back,
// and maintains an incremental Pareto front. The driver — not the
// strategy — enforces a hard evaluation budget, honours context
// cancellation (returning the partial front built so far), and accounts
// for every dispatched point exactly once.
//
// Determinism contract: given the same Space, Spec (including Seed and
// MaxEvaluations) and evaluator behaviour, Run visits the same points
// in the same order and returns the identical front. The bundled
// strategy contains no map-order or wall-clock dependence; batches are
// evaluated through interfaces that return results in input order.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"

	"efficsense/internal/core"
	"efficsense/internal/dse"
)

// Goal selects the direction of a query.
type Goal int

const (
	// MaxQuality maximises the quality metric subject to an optional
	// power ceiling (Spec.MaxPower).
	MaxQuality Goal = iota
	// MinPower minimises total power subject to a quality floor
	// (Spec.MinQuality).
	MinPower
)

// String renders the goal token the query grammar uses ("max" goals are
// rendered with their metric by Spec.Query).
func (g Goal) String() string {
	if g == MinPower {
		return "min-power"
	}
	return "max-quality"
}

// Spec is one goal-directed query over a design space.
type Spec struct {
	// Goal is the optimisation direction.
	Goal Goal
	// Metric names the quality function: "accuracy" (Fig 7b) or "snr"
	// (Fig 7a).
	Metric string
	// MaxPower is the power ceiling in watts for MaxQuality goals
	// (0 = unconstrained).
	MaxPower float64
	// MinQuality is the quality floor for MinPower goals.
	MinQuality float64
	// MaxAreaCaps, when positive, excludes designs above this capacitor
	// budget (the Fig 10 constraint) from the front and the answer.
	MaxAreaCaps float64
	// MaxEvaluations is the hard evaluation budget the driver enforces:
	// every dispatched point, at any fidelity, consumes one unit.
	MaxEvaluations int
	// Seed makes any stochastic strategy reproducible. The bundled
	// halving strategy is fully deterministic and records the seed
	// without consuming it.
	Seed int64
}

// Quality resolves the spec's metric to its goal function.
func (s Spec) Quality() (dse.Quality, error) {
	switch s.Metric {
	case "accuracy":
		return dse.QualityAccuracy, nil
	case "snr":
		return dse.QualitySNR, nil
	}
	return nil, fmt.Errorf("search: unknown quality metric %q (want accuracy or snr)", s.Metric)
}

// Validate rejects specs the driver cannot run.
func (s Spec) Validate() error {
	if _, err := s.Quality(); err != nil {
		return err
	}
	if s.MaxEvaluations <= 0 {
		return fmt.Errorf("search: max_evaluations must be positive, got %d", s.MaxEvaluations)
	}
	if s.MaxPower < 0 || math.IsNaN(s.MaxPower) {
		return fmt.Errorf("search: max power %g is not a valid ceiling", s.MaxPower)
	}
	if math.IsNaN(s.MinQuality) {
		return errors.New("search: min quality is NaN")
	}
	if s.Goal == MinPower && s.MinQuality <= 0 {
		return errors.New("search: min-power queries need a positive quality floor")
	}
	if s.MaxAreaCaps < 0 || math.IsNaN(s.MaxAreaCaps) {
		return fmt.Errorf("search: area cap %g is not a valid bound", s.MaxAreaCaps)
	}
	return nil
}

// feasible reports whether a sound result satisfies the spec's hard
// constraints for the final answer (the front itself only applies the
// area cap, so a budget-violating front still shows the trade-off).
func (s Spec) feasible(r core.Result, q dse.Quality) bool {
	if s.MaxAreaCaps > 0 && r.AreaCaps > s.MaxAreaCaps {
		return false
	}
	switch s.Goal {
	case MaxQuality:
		return s.MaxPower <= 0 || r.TotalPower <= s.MaxPower
	case MinPower:
		return q(r) >= s.MinQuality
	}
	return false
}

// Evaluator is the batch evaluation surface a search drives. *dse.Sweep
// satisfies it directly, which is the production path: cache hits,
// singleflight, retries, panic recovery and the fault seams all apply
// to search probes exactly as they do to sweep points. The contract is
// dse.BatchEvaluator's: one result per point, in input order, failures
// as error rows, never a short slice.
type Evaluator interface {
	EvaluateBatch(ctx context.Context, pts []core.DesignPoint) []core.Result
}

// Fidelity is one rung of the evaluation-fidelity schedule: a cheaper
// evaluator (fewer records or seeds per point) used for early probes,
// ordered cheap → authoritative. Only results from the final rung enter
// the front; earlier rungs exist to discard dominated regions before
// the expensive evaluations run.
type Fidelity struct {
	// Name labels the rung in progress output ("probe", "full").
	Name string
	// Eval evaluates proposals at this rung's fidelity.
	Eval Evaluator
}

// Strategy is the propose/observe loop the driver runs. Calls strictly
// alternate: every Propose is followed by exactly one Observe carrying
// the results of the proposed points in proposal order (the driver may
// have clipped the batch to the remaining budget before evaluating, so
// strategies must treat the Observe slice, not their own bookkeeping,
// as the set of points that actually ran).
type Strategy interface {
	// Propose returns up to n points to evaluate next and the fidelity
	// rung to run them at. An empty batch means the strategy has
	// converged.
	Propose(n int) (pts []core.DesignPoint, rung int)
	// Observe feeds back the evaluated results of the last proposal.
	Observe(rung int, rs []core.Result)
}

// Progress is the driver's per-round progress report, delivered
// serially after each observed batch.
type Progress struct {
	// Evaluations used so far against Budget.
	Evaluations int
	Budget      int
	// Rung is the fidelity index the round ran at; RungName its label.
	Rung     int
	RungName string
	// FrontSize and Hypervolume describe the full-fidelity front after
	// the round; Improved is true when the round changed it.
	FrontSize   int
	Hypervolume float64
	Improved    bool
}

// Config wires one search run.
type Config struct {
	// Space is the grid being searched.
	Space dse.Space
	// Spec is the query, including the budget and seed.
	Spec Spec
	// Fidelities is the evaluation schedule, cheap → authoritative; at
	// least one rung is required and the last is the one front results
	// come from. A single entry means every evaluation runs at full
	// fidelity.
	Fidelities []Fidelity
	// Strategy overrides the bundled adaptive-halving strategy (tests,
	// alternative searchers). nil selects NewHalving.
	Strategy Strategy
	// BatchSize caps points per proposal round (default 16, the sweep
	// engine's batch default): large enough to fill the batch dispatch,
	// small enough that refinement reacts to fresh results.
	BatchSize int
	// OnProgress, when set, receives one Progress per observed round,
	// serially from the driver goroutine.
	OnProgress func(Progress)
}

// Outcome is the result of a search run.
type Outcome struct {
	// Front is the discovered Pareto front over full-fidelity sound
	// results (ascending power, after the spec's area cap). On a
	// cancelled or budget-exhausted run it is the partial front built
	// so far.
	Front []core.Result
	// Best answers the query: the feasible front point with the highest
	// quality (MaxQuality) or the lowest power (MinPower). HaveBest is
	// false when nothing feasible was found.
	Best     core.Result
	HaveBest bool
	// Evaluations counts every point dispatched to any fidelity rung;
	// Budget echoes the spec. Evaluations + remaining == Budget always:
	// the driver clips the last batch rather than overshooting.
	Evaluations int
	Budget      int
	// Errors counts degraded rows (evaluator faults, recovered panics,
	// cancellation mid-batch). Degraded rows consume budget — they were
	// dispatched — but never enter the front.
	Errors int
	// Partial is true when the run did not converge cleanly: the
	// context was cancelled, the budget ran out with proposals pending,
	// or rows degraded. The front is then a sound subset, a lower bound
	// on the true front.
	Partial bool
	// Hypervolume is the front's dominated area against the run's
	// observed extremes — a progress figure, comparable within a run.
	Hypervolume float64
}

// Run executes one goal-directed search. It returns ctx.Err() alongside
// the partial outcome when cancelled; any other error means the
// configuration was invalid and nothing ran.
func Run(ctx context.Context, cfg Config) (Outcome, error) {
	out := Outcome{Budget: cfg.Spec.MaxEvaluations}
	if err := cfg.Spec.Validate(); err != nil {
		return out, err
	}
	if err := cfg.Space.Validate(); err != nil {
		return out, fmt.Errorf("search: %w", err)
	}
	if len(cfg.Fidelities) == 0 {
		return out, errors.New("search: at least one fidelity rung is required")
	}
	for i, f := range cfg.Fidelities {
		if f.Eval == nil {
			return out, fmt.Errorf("search: fidelity %d (%s) has no evaluator", i, f.Name)
		}
	}
	q, _ := cfg.Spec.Quality()
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = dse.DefaultBatchSize
	}
	strat := cfg.Strategy
	if strat == nil {
		strat = NewHalving(cfg.Space, cfg.Spec, len(cfg.Fidelities))
	}

	front := NewFront(q)
	full := len(cfg.Fidelities) - 1
	budget := cfg.Spec.MaxEvaluations
	// Hypervolume reference corner: the worst observed power and quality,
	// frozen as they expand so the figure only grows within a run.
	refPower, refQuality := math.Inf(-1), math.Inf(1)

	converged := false
	for out.Evaluations < budget {
		if ctx.Err() != nil {
			break
		}
		pts, rung := strat.Propose(min(batchSize, budget-out.Evaluations))
		if len(pts) == 0 {
			converged = true
			break
		}
		if rung < 0 || rung >= len(cfg.Fidelities) {
			return out, fmt.Errorf("search: strategy proposed fidelity rung %d of %d", rung, len(cfg.Fidelities))
		}
		if len(pts) > budget-out.Evaluations { // defensive: a strategy that ignores n
			pts = pts[:budget-out.Evaluations]
		}
		rs := cfg.Fidelities[rung].Eval.EvaluateBatch(ctx, pts)
		out.Evaluations += len(pts)
		improved := false
		for _, r := range rs {
			if r.Err != nil {
				out.Errors++
				continue
			}
			if rung == full {
				if r.TotalPower > refPower {
					refPower = r.TotalPower
				}
				if v := q(r); v < refQuality {
					refQuality = v
				}
				if cfg.Spec.MaxAreaCaps > 0 && r.AreaCaps > cfg.Spec.MaxAreaCaps {
					continue
				}
				if front.Add(r) {
					improved = true
				}
			}
		}
		strat.Observe(rung, rs)
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{
				Evaluations: out.Evaluations, Budget: budget,
				Rung: rung, RungName: cfg.Fidelities[rung].Name,
				FrontSize: front.Size(), Hypervolume: front.Hypervolume(refPower, refQuality),
				Improved: improved,
			})
		}
	}

	out.Front = front.Results()
	out.Hypervolume = front.Hypervolume(refPower, refQuality)
	out.Partial = out.Errors > 0 || ctx.Err() != nil || !converged
	for _, r := range out.Front {
		if !cfg.Spec.feasible(r, q) {
			continue
		}
		switch cfg.Spec.Goal {
		case MaxQuality:
			if !out.HaveBest || q(r) > q(out.Best) {
				out.Best, out.HaveBest = r, true
			}
		case MinPower:
			if !out.HaveBest || r.TotalPower < out.Best.TotalPower {
				out.Best, out.HaveBest = r, true
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
