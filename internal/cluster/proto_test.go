package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestPeerRequestRoundTrip(t *testing.T) {
	spec := []byte(`{ "options": {"seed": 5},
		"point": {"architecture":"baseline","bits":6} }`)
	body, err := EncodePeerRequest("eval/arch=baseline,bits=6", spec)
	if err != nil {
		t.Fatalf("EncodePeerRequest: %v", err)
	}
	req, err := DecodePeerRequest(body)
	if err != nil {
		t.Fatalf("DecodePeerRequest: %v", err)
	}
	if req.Key != "eval/arch=baseline,bits=6" {
		t.Fatalf("Key = %q", req.Key)
	}
	var compact bytes.Buffer
	json.Compact(&compact, spec)
	if !bytes.Equal(req.Spec, compact.Bytes()) {
		t.Fatalf("Spec = %s, want compacted %s", req.Spec, compact.Bytes())
	}
	// Re-encoding a decoded request is byte-identical: the payload is
	// already compact, so the checksum is canonical.
	again, err := EncodePeerRequest(req.Key, req.Spec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(again, body) {
		t.Fatalf("re-encode differs:\n got %s\nwant %s", again, body)
	}
}

func TestPeerResponseRoundTrip(t *testing.T) {
	body, err := EncodePeerResponse("k1", []byte(`{"r":{"mean_snr_db":12.5}}`))
	if err != nil {
		t.Fatalf("EncodePeerResponse: %v", err)
	}
	resp, err := DecodePeerResponse(body)
	if err != nil {
		t.Fatalf("DecodePeerResponse: %v", err)
	}
	if resp.Key != "k1" || string(resp.Result) != `{"r":{"mean_snr_db":12.5}}` {
		t.Fatalf("decoded %+v", resp)
	}
}

func TestDecodePeerRequestRejectsCorruption(t *testing.T) {
	good, err := EncodePeerRequest("key", []byte(`{"a":1}`))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"whitespace":     []byte("  \n\t"),
		"not json":       []byte("hello"),
		"trailing data":  append(append([]byte{}, good...), []byte(`{"k":"x"}`)...),
		"unknown field":  []byte(`{"k":"key","d":{"a":1},"c":1,"extra":true}`),
		"empty key":      []byte(`{"k":"","d":{"a":1},"c":1}`),
		"empty payload":  []byte(`{"k":"key","c":1}`),
		"non-compact":    []byte(`{"k":"key","d":{"a": 1},"c":1}`),
		"wrong checksum": []byte(`{"k":"key","d":{"a":1},"c":12345}`),
	}
	// Flipped payload byte: the stored CRC no longer matches.
	flipped := append([]byte{}, good...)
	flipped[bytes.IndexByte(flipped, '1')] = '2'
	cases["flipped byte"] = flipped
	for name, body := range cases {
		if _, err := DecodePeerRequest(body); err == nil {
			t.Errorf("%s: DecodePeerRequest accepted %q", name, body)
		}
	}
	if _, err := DecodePeerRequest(good); err != nil {
		t.Fatalf("control: DecodePeerRequest rejected a good body: %v", err)
	}
}

func TestEncodePeerRequestRejectsBadInput(t *testing.T) {
	if _, err := EncodePeerRequest("", []byte(`{}`)); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := EncodePeerRequest("k", []byte(`not json`)); err == nil {
		t.Error("invalid payload accepted")
	}
	if _, err := EncodePeerResponse("k", nil); err == nil {
		t.Error("nil response payload accepted")
	}
}

// FuzzDecodePeerRequest pins the wire decoder's contract: arbitrary
// bytes never panic, and every accepted body re-encodes byte-identically
// (the decoder admits only canonical messages).
func FuzzDecodePeerRequest(f *testing.F) {
	seed, _ := EncodePeerRequest("eval/arch=baseline,bits=6", []byte(`{"point":{"bits":6}}`))
	f.Add(seed)
	f.Add([]byte(`{"k":"key","d":{"a":1},"c":12345}`))
	f.Add([]byte(`{"k":"","d":null,"c":0}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodePeerRequest(body)
		if err != nil {
			return
		}
		again, err := EncodePeerRequest(req.Key, req.Spec)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		back, err := DecodePeerRequest(again)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if back.Key != req.Key || !bytes.Equal(back.Spec, req.Spec) || back.CRC != req.CRC {
			t.Fatalf("round trip drifted: %+v vs %+v", back, req)
		}
	})
}
