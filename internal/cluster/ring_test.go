package cluster

import (
	"fmt"
	"math"
	"testing"
)

func threeMembers() []Member {
	return []Member{
		{Name: "alpha", Addr: "http://a:1"},
		{Name: "beta", Addr: "http://b:1"},
		{Name: "gamma", Addr: "http://c:1"},
	}
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("test-eval/arch=baseline,bits=%d,noise=%d", i%16, i)
	}
	return keys
}

func TestRingPlacementIgnoresListOrder(t *testing.T) {
	ms := threeMembers()
	a := NewRing(64, ms)
	b := NewRing(64, []Member{ms[2], ms[0], ms[1]})
	for _, key := range ringKeys(500) {
		ma, ok := a.Owner(key)
		if !ok {
			t.Fatalf("Owner(%q) not found", key)
		}
		mb, _ := b.Owner(key)
		if ma.Name != mb.Name {
			t.Fatalf("key %q: order-dependent placement %s vs %s", key, ma.Name, mb.Name)
		}
	}
}

func TestRingPlacementIgnoresAddresses(t *testing.T) {
	// A node keeps its keyspace segment when it restarts on a new port:
	// only names feed the hash.
	ms := threeMembers()
	moved := threeMembers()
	for i := range moved {
		moved[i].Addr = fmt.Sprintf("http://other:%d", 9000+i)
	}
	a, b := NewRing(32, ms), NewRing(32, moved)
	for _, key := range ringKeys(300) {
		ma, _ := a.Owner(key)
		mb, _ := b.Owner(key)
		if ma.Name != mb.Name {
			t.Fatalf("key %q moved from %s to %s on address change", key, ma.Name, mb.Name)
		}
	}
}

func TestRingMinimalMovementOnJoin(t *testing.T) {
	// Consistent hashing's defining property: adding a member only
	// reassigns keys to the newcomer, never between survivors.
	two := NewRing(64, threeMembers()[:2])
	three := NewRing(64, threeMembers())
	moved := 0
	keys := ringKeys(1000)
	for _, key := range keys {
		before, _ := two.Owner(key)
		after, _ := three.Owner(key)
		if before.Name != after.Name {
			moved++
			if after.Name != "gamma" {
				t.Fatalf("key %q moved %s -> %s, not to the joining member", key, before.Name, after.Name)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joining member")
	}
	if moved > len(keys)/2 {
		t.Fatalf("%d/%d keys moved on join; expected roughly a third", moved, len(keys))
	}
}

func TestRingSharesBalanced(t *testing.T) {
	r := NewRing(DefaultVNodes, threeMembers())
	shares := r.Shares()
	sum := 0.0
	for name, s := range shares {
		sum += s
		if s < 0.15 || s > 0.55 {
			t.Errorf("member %s owns %.1f%% of the keyspace; want a roughly even split", name, 100*s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestRingDuplicateNamesCollapse(t *testing.T) {
	r := NewRing(8, []Member{
		{Name: "a", Addr: "http://first:1"},
		{Name: "a", Addr: "http://second:1"},
		{Name: "b", Addr: "http://b:1"},
	})
	if r.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", r.Size())
	}
	m, ok := r.Owner("any")
	if !ok {
		t.Fatal("Owner on a populated ring returned ok=false")
	}
	if m.Name == "a" && m.Addr != "http://first:1" {
		t.Fatalf("duplicate name resolved to %s, want first occurrence", m.Addr)
	}
}

func TestRingEmptyAndNil(t *testing.T) {
	var nilRing *Ring
	if _, ok := nilRing.Owner("k"); ok {
		t.Fatal("nil ring claimed an owner")
	}
	if nilRing.Size() != 0 || nilRing.VNodes() != 0 || nilRing.Members() != nil {
		t.Fatal("nil ring reported non-empty shape")
	}
	empty := NewRing(0, nil)
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := empty.VNodes(); got != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want default %d", got, DefaultVNodes)
	}
	if len(empty.Shares()) != 0 {
		t.Fatal("empty ring reported shares")
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r := NewRing(4, []Member{{Name: "solo", Addr: "http://s:1"}})
	for _, key := range ringKeys(50) {
		m, ok := r.Owner(key)
		if !ok || m.Name != "solo" {
			t.Fatalf("Owner(%q) = %v, %v; want solo", key, m, ok)
		}
	}
	if s := r.Shares()["solo"]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("solo share = %v, want 1", s)
	}
}

func TestCheckNameRejectsReservedCharacters(t *testing.T) {
	for _, bad := range []string{"", "a/b", "a=b", "a,b", `a"b`, "a b", "a\tb", "a\nb"} {
		if err := checkName(bad); err == nil {
			t.Errorf("checkName(%q) accepted a reserved name", bad)
		}
	}
	for _, good := range []string{"node-1", "a", "rack2.node7", "n_0"} {
		if err := checkName(good); err != nil {
			t.Errorf("checkName(%q) = %v, want nil", good, err)
		}
	}
}
