package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"efficsense/internal/fault"
)

// echoPeer serves PeerPath by answering every decoded request with the
// same key and a fixed result payload, counting requests.
func echoPeer(t *testing.T, result string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PeerPath, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		body, _ := io.ReadAll(r.Body)
		req, err := DecodePeerRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := EncodePeerResponse(req.Key, []byte(result))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &calls
}

func testPeers(t *testing.T, cfg Config) *Peers {
	t.Helper()
	if cfg.Self.Name == "" {
		cfg.Self = Member{Name: "self"}
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	p, err := NewPeers(cfg)
	if err != nil {
		t.Fatalf("NewPeers: %v", err)
	}
	return p
}

func TestPeersFetchSuccess(t *testing.T) {
	srv, calls := echoPeer(t, `{"r":{"mean_snr_db":9}}`)
	p := testPeers(t, Config{})
	owner := Member{Name: "owner", Addr: srv.URL}
	p.SetMembers([]Member{owner})

	got, err := p.Fetch(context.Background(), owner, "key-1", []byte(`{"point":{"bits":4}}`))
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if string(got) != `{"r":{"mean_snr_db":9}}` {
		t.Fatalf("payload = %s", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("peer served %d requests, want 1", calls.Load())
	}
	st := p.Status()
	if st.Errors != 0 {
		t.Fatalf("group errors = %d after a clean fetch", st.Errors)
	}
	for _, ps := range st.Peers {
		if ps.Member.Name == "owner" && (ps.Requests != 1 || ps.Errors != 0) {
			t.Fatalf("owner health = %+v, want 1 request, 0 errors", ps)
		}
	}
}

func TestPeersRetryRecoversTransientError(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PeerPath, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		req, _ := DecodePeerRequest(body)
		resp, _ := EncodePeerResponse(req.Key, []byte(`{"ok":true}`))
		w.Write(resp)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p := testPeers(t, Config{Seed: 42, Retries: 1})
	owner := Member{Name: "flaky", Addr: srv.URL}
	p.SetMembers([]Member{owner})
	got, err := p.Fetch(context.Background(), owner, "k", []byte(`{}`))
	if err != nil {
		t.Fatalf("Fetch after transient failure: %v", err)
	}
	if string(got) != `{"ok":true}` {
		t.Fatalf("payload = %s", got)
	}
	if calls.Load() != 2 {
		t.Fatalf("peer saw %d requests, want 2 (failure + retry)", calls.Load())
	}
	st := p.Status()
	if st.Errors != 0 {
		t.Fatalf("recovered fetch still counted a group error: %d", st.Errors)
	}
	for _, ps := range st.Peers {
		if ps.Member.Name == "flaky" {
			if ps.Requests != 2 || ps.Errors != 1 || ps.Consecutive != 0 {
				t.Fatalf("flaky health = %+v, want 2 requests, 1 error, streak reset", ps)
			}
		}
	}
}

func TestPeersRetryExhaustedCountsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	p := testPeers(t, Config{Retries: 2})
	owner := Member{Name: "down", Addr: srv.URL}
	p.SetMembers([]Member{owner})
	if _, err := p.Fetch(context.Background(), owner, "k", []byte(`{}`)); err == nil {
		t.Fatal("Fetch against a dead peer succeeded")
	}
	st := p.Status()
	if st.Errors != 1 {
		t.Fatalf("group errors = %d, want 1 (counted once per degraded fetch)", st.Errors)
	}
	for _, ps := range st.Peers {
		if ps.Member.Name == "down" {
			if ps.Requests != 3 || ps.Errors != 3 || ps.Consecutive != 3 {
				t.Fatalf("down health = %+v, want 3/3/3", ps)
			}
			if ps.LastError == "" {
				t.Fatal("LastError empty after repeated failures")
			}
		}
	}
}

func TestPeersFaultInjectDegradesFetch(t *testing.T) {
	// Arm the peer-fetch failpoint at probability 1: every attempt fails
	// before touching the network, exactly as `-chaos
	// cluster/peer-fetch=error:1` would in efficsensed, and the caller
	// falls back to local compute.
	if err := fault.EnableSpec(fault.PointPeerFetch+"=error:1", 7); err != nil {
		t.Fatalf("EnableSpec: %v", err)
	}
	t.Cleanup(fault.Reset)
	srv, calls := echoPeer(t, `{"ok":true}`)
	p := testPeers(t, Config{Retries: 1})
	owner := Member{Name: "owner", Addr: srv.URL}
	p.SetMembers([]Member{owner})
	if _, err := p.Fetch(context.Background(), owner, "k", []byte(`{}`)); err == nil {
		t.Fatal("Fetch succeeded with the failpoint armed")
	}
	if calls.Load() != 0 {
		t.Fatalf("injected fault still reached the peer %d times", calls.Load())
	}
	if st := p.Status(); st.Errors != 1 {
		t.Fatalf("group errors = %d, want 1", st.Errors)
	}
}

func TestPeersFetchRejectsKeyMismatch(t *testing.T) {
	// A skewed owner answering under a different fingerprint must not be
	// trusted: the response's key is checked against the request's.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, _ := EncodePeerResponse("some-other-key", []byte(`{"ok":true}`))
		w.Write(resp)
	}))
	defer srv.Close()
	p := testPeers(t, Config{Retries: -1})
	owner := Member{Name: "skewed", Addr: srv.URL}
	p.SetMembers([]Member{owner})
	if _, err := p.Fetch(context.Background(), owner, "asked-key", []byte(`{}`)); err == nil {
		t.Fatal("mismatched response key accepted")
	}
}

func TestPeersOwnerAndOwned(t *testing.T) {
	p := testPeers(t, Config{Self: Member{Name: "a"}, VNodes: 16})
	// Empty ring: everything computes locally.
	if !p.Owned("anything") {
		t.Fatal("empty ring should own every key locally")
	}
	p.SetMembers([]Member{
		{Name: "a", Addr: "http://a:1"},
		{Name: "b", Addr: "http://b:1"},
	})
	var local, remote int
	for _, key := range ringKeys(200) {
		owner, isRemote := p.Owner(key)
		if isRemote {
			remote++
			if owner.Name != "b" {
				t.Fatalf("remote owner = %s, want b", owner.Name)
			}
			if p.Owned(key) {
				t.Fatalf("key %q both remote and owned", key)
			}
		} else {
			local++
		}
	}
	if local == 0 || remote == 0 {
		t.Fatalf("two-node split degenerate: %d local, %d remote", local, remote)
	}
}

func TestPeersSelfResolvesAddrFromMembership(t *testing.T) {
	p := testPeers(t, Config{Self: Member{Name: "n1"}})
	if got := p.Self(); got.Addr != "" {
		t.Fatalf("Self().Addr = %q before membership", got.Addr)
	}
	p.SetMembers([]Member{{Name: "n1", Addr: "http://n1:8080"}})
	if got := p.Self(); got.Addr != "http://n1:8080" {
		t.Fatalf("Self().Addr = %q, want membership address", got.Addr)
	}
}

func TestPeersSetMembersPreservesHealth(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()
	p := testPeers(t, Config{Retries: -1})
	owner := Member{Name: "peer", Addr: srv.URL}
	p.SetMembers([]Member{owner})
	p.Fetch(context.Background(), owner, "k", []byte(`{}`))

	// The peer restarts on a new address: counters survive, the address
	// updates, and a departed member's state is gone.
	p.SetMembers([]Member{{Name: "peer", Addr: "http://moved:1"}})
	m, ok := p.Lookup("peer")
	if !ok || m.Addr != "http://moved:1" {
		t.Fatalf("Lookup after addr change = %v, %v", m, ok)
	}
	for _, ps := range p.Status().Peers {
		if ps.Member.Name == "peer" && ps.Requests != 1 {
			t.Fatalf("health lost across SetMembers: %+v", ps)
		}
	}
	p.SetMembers(nil)
	if _, ok := p.Lookup("peer"); ok {
		t.Fatal("departed member still resolvable")
	}
	if got := p.Members(); len(got) != 1 || got[0].Name != "self" {
		t.Fatalf("Members() = %v, want just self", got)
	}
}

func TestPeersRejectsBadConfig(t *testing.T) {
	if _, err := NewPeers(Config{}); err == nil {
		t.Error("empty self name accepted")
	}
	if _, err := NewPeers(Config{Self: Member{Name: "a=b"}}); err == nil {
		t.Error("reserved character in self name accepted")
	}
	if _, err := NewPeers(Config{Self: Member{Name: "a", Addr: "not-a-url"}}); err == nil {
		t.Error("bad self addr accepted")
	}
}

func TestWithoutPeering(t *testing.T) {
	ctx := context.Background()
	if PeeringDisabled(ctx) {
		t.Fatal("fresh context reports peering disabled")
	}
	if !PeeringDisabled(WithoutPeering(ctx)) {
		t.Fatal("marked context reports peering enabled")
	}
}
