// Package cluster turns a set of efficsensed processes into a peer
// group: a consistent-hash ring assigns each node a segment of the
// evaluation keyspace, and a groupcache-style peering client fetches a
// missing result from the key's owner before computing it locally.
//
// The ring hashes with FNV-1a 64 — a fixed, platform-independent
// function — so every node derives the same placement from the same
// membership list, with no coordination. Placement must survive process
// restarts and mixed architectures; a seeded or per-process hash
// (maphash) would silently partition the fleet.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when the
// configuration leaves it zero. More virtual nodes smooth the keyspace
// split (the coefficient of variation of segment sizes falls roughly
// with 1/sqrt(vnodes)) at the cost of a larger sorted ring.
const DefaultVNodes = 64

// Member identifies one node of the group: Name is its stable identity
// (ring placement and job-ID routing hash the name, so a node keeps its
// keyspace segment across address changes), Addr its reachable base URL
// ("http://host:port").
type Member struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

func (m Member) String() string { return m.Name + "=" + m.Addr }

// hashString is FNV-1a 64 of s, finalised with the SplitMix64 mixer.
// FNV alone has weak avalanche on short, nearly-identical inputs — the
// vnode labels "a#0", "a#1", … cluster on the ring badly enough to skew
// a 3-node split past 50/10 — and the mixer restores a uniform spread.
// Both stages are fixed functions of the bytes, so placement stays
// identical across processes and platforms.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a member set. Build a
// new one on every membership change; lookups are lock-free.
type Ring struct {
	members []Member // sorted by name, deduplicated
	points  []ringPoint
	vnodes  int
}

// NewRing places each member at vnodes positions derived from its name
// (hash of "name#i"). Members with duplicate names collapse to the
// first occurrence; vnodes <= 0 selects DefaultVNodes. Placement
// depends only on the name set and vnode count — never on the order
// members were listed, their addresses, or the process.
func NewRing(vnodes int, members []Member) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := make([]Member, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Name == "" || seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		sorted = append(sorted, m)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	r := &Ring{members: sorted, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for i, m := range sorted {
		label := m.Name + "#"
		for v := 0; v < vnodes; v++ {
			h := hashString(label + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, member: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare in a 64-bit space) break by member
		// name so placement stays deterministic across build orders.
		return r.members[a.member].Name < r.members[b.member].Name
	})
	return r
}

// Owner maps key to the member owning its ring segment: the first
// virtual node clockwise from the key's hash. ok is false only for an
// empty ring.
func (r *Ring) Owner(key string) (Member, bool) {
	if r == nil || len(r.points) == 0 {
		return Member{}, false
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member], true
}

// Members returns the deduplicated member set in name order.
func (r *Ring) Members() []Member {
	if r == nil {
		return nil
	}
	return append([]Member(nil), r.members...)
}

// Size is the number of members on the ring.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// VNodes is the per-member virtual-node count the ring was built with.
func (r *Ring) VNodes() int {
	if r == nil {
		return 0
	}
	return r.vnodes
}

// Shares reports the fraction of the 2^64 hash space each member owns.
// The fractions sum to 1 for a non-empty ring; /v1/cluster surfaces
// them so operators can see how even the split is.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64)
	if r == nil || len(r.points) == 0 {
		return shares
	}
	const span = float64(1 << 63) * 2 // 2^64 as a float64
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		width := p.hash - prev // wraps correctly in uint64 arithmetic
		if len(r.points) == 1 {
			width = ^uint64(0)
		}
		shares[r.members[p.member].Name] += float64(width) / span
	}
	return shares
}

// checkName rejects member names that cannot embed in job IDs or metric
// labels: empty, or containing '/', '=', ',', '"', or whitespace.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("cluster: member name must not be empty")
	}
	for _, c := range name {
		switch {
		case c == '/' || c == '=' || c == ',' || c == '"':
			return fmt.Errorf("cluster: member name %q contains reserved character %q", name, c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			return fmt.Errorf("cluster: member name %q contains whitespace", name)
		}
	}
	return nil
}
