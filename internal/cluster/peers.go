package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"efficsense/internal/fault"
	"efficsense/internal/obs"
	"efficsense/internal/xrand"
)

// Peer-protocol client defaults. The peer hop sits inside an
// interactive evaluation, so the budget is tight: one retry with
// seeded jitter, then the caller computes locally.
const (
	defaultTimeout   = 2 * time.Second
	defaultRetries   = 1
	defaultRetryBase = 25 * time.Millisecond
	maxPeerBody      = 1 << 20
)

// Config sizes a peer group client.
type Config struct {
	// Self is this node. Name is required; Addr may stay empty until the
	// listener is bound (membership updates carrying the name fill it).
	Self Member
	// VNodes is the per-member virtual-node count (0 → DefaultVNodes).
	// Every node of a fleet must agree on it.
	VNodes int
	// Seed derives the retry-jitter schedule (xrand.Derive), so chaos
	// runs replay identical backoff timing.
	Seed int64
	// Retries is how many extra attempts follow a failed fetch
	// (default 1; negative disables retry).
	Retries int
	// RetryBase scales the jittered pause between attempts (default 25ms).
	RetryBase time.Duration
	// Timeout bounds one peer HTTP attempt (default 2s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil uses a dedicated
	// client with Timeout applied per request via context.
	Client *http.Client
}

// peerHealth accumulates per-peer observability: request/error counts,
// consecutive failures, the last error string and a latency histogram.
type peerHealth struct {
	member      Member
	hist        *obs.Histogram
	requests    atomic.Int64
	errors      atomic.Int64
	consecutive atomic.Int64

	mu      sync.Mutex
	lastErr string
}

// Peers is the node-local view of the group: the current ring, a
// protocol client with per-peer health, and the hit/miss/fill/error
// accounting surfaced by /v1/cluster and the efficsense_cluster_*
// Prometheus series. All methods are goroutine-safe.
type Peers struct {
	self      Member
	vnodes    int
	retries   int
	retryBase time.Duration
	timeout   time.Duration
	client    *http.Client

	jitterMu sync.Mutex
	jitter   *xrand.Source

	mu     sync.RWMutex
	ring   *Ring
	health map[string]*peerHealth

	hits   atomic.Int64 // peer answered from its cache
	misses atomic.Int64 // peer computed for us (still a success)
	fills  atomic.Int64 // requests this node served as owner
	errors atomic.Int64 // fetches that degraded to local compute
}

// NewPeers builds a client for self. The group is empty until
// SetMembers installs a membership list; an empty ring owns nothing, so
// every key computes locally.
func NewPeers(cfg Config) (*Peers, error) {
	if err := checkName(cfg.Self.Name); err != nil {
		return nil, err
	}
	if cfg.Self.Addr != "" {
		if err := checkAddr(cfg.Self.Addr); err != nil {
			return nil, err
		}
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Retries == 0 {
		cfg.Retries = defaultRetries
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Peers{
		self:      cfg.Self,
		vnodes:    cfg.VNodes,
		retries:   cfg.Retries,
		retryBase: cfg.RetryBase,
		timeout:   cfg.Timeout,
		client:    client,
		jitter:    xrand.Derive(cfg.Seed, "cluster/peer-retry"),
		ring:      NewRing(cfg.VNodes, nil),
		health:    make(map[string]*peerHealth),
	}, nil
}

// Self returns this node's identity, with the address from the current
// membership when the list carries one (the listener address is often
// unknown at construction time).
func (p *Peers) Self() Member {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if h, ok := p.health[p.self.Name]; ok && h.member.Addr != "" {
		return h.member
	}
	return p.self
}

// SetMembers replaces the membership and rebuilds the ring. Self is
// added if the list omits it, so a node always owns part of its own
// keyspace. Health state (histograms, counters) survives for members
// present before and after the change; departed members drop theirs.
func (p *Peers) SetMembers(members []Member) {
	p.mu.Lock()
	defer p.mu.Unlock()
	withSelf := members
	found := false
	for _, m := range members {
		if m.Name == p.self.Name {
			found = true
			break
		}
	}
	if !found {
		withSelf = append(append([]Member(nil), members...), p.self)
	}
	ring := NewRing(p.vnodes, withSelf)
	health := make(map[string]*peerHealth, ring.Size())
	for _, m := range ring.Members() {
		if prev, ok := p.health[m.Name]; ok {
			prev.member = m // address may have changed (restart)
			health[m.Name] = prev
			continue
		}
		health[m.Name] = &peerHealth{member: m, hist: obs.NewHistogram(obs.DurationBuckets)}
	}
	p.ring, p.health = ring, health
}

// Members returns the current membership in name order.
func (p *Peers) Members() []Member {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ring.Members()
}

// Lookup resolves a member by name (sticky job routing).
func (p *Peers) Lookup(name string) (Member, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	h, ok := p.health[name]
	if !ok {
		return Member{}, false
	}
	return h.member, true
}

// Owner maps key to its owning member. remote is true only when the
// owner is another node — the only case where the caller should fetch.
func (p *Peers) Owner(key string) (owner Member, remote bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	m, ok := p.ring.Owner(key)
	if !ok {
		return Member{}, false
	}
	return m, m.Name != p.self.Name
}

// Owned reports whether key computes locally: true for an empty ring
// and for segments this node owns. The batch dispatcher keeps owned
// misses together and routes the rest through the per-point peer path.
func (p *Peers) Owned(key string) bool {
	_, remote := p.Owner(key)
	return !remote
}

// Fetch asks owner to produce the result for key, with one jittered
// retry on failure. It returns the verified response payload: transport
// errors, non-200 statuses, undecodable or checksum-failing bodies and
// key mismatches (ring skew: the owner evaluated a different
// fingerprint) all come back as errors, after which the caller computes
// locally. Failures are accounted per peer and in the group error
// counter; they are never fatal to the evaluation above.
func (p *Peers) Fetch(ctx context.Context, owner Member, key string, spec []byte) ([]byte, error) {
	body, err := EncodePeerRequest(key, spec)
	if err != nil {
		return nil, err
	}
	h := p.healthFor(owner)
	var lastErr error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			if err := p.sleepJitter(ctx, attempt); err != nil {
				break
			}
		}
		payload, err := p.fetchOnce(ctx, owner, key, body, h)
		if err == nil {
			return payload, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	p.errors.Add(1)
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, fmt.Errorf("cluster: fetch %s from %s: %w", key, owner.Name, lastErr)
}

func (p *Peers) fetchOnce(ctx context.Context, owner Member, key string, body []byte, h *peerHealth) ([]byte, error) {
	if h != nil {
		h.requests.Add(1)
	}
	start := time.Now()
	payload, err := p.doFetch(ctx, owner, key, body)
	if h != nil {
		h.hist.Observe(time.Since(start).Seconds())
		if err != nil {
			h.errors.Add(1)
			h.consecutive.Add(1)
			h.mu.Lock()
			h.lastErr = err.Error()
			h.mu.Unlock()
		} else {
			h.consecutive.Store(0)
		}
	}
	return payload, err
}

func (p *Peers) doFetch(ctx context.Context, owner Member, key string, body []byte) ([]byte, error) {
	if err := fault.Fire(fault.PointPeerFetch); err != nil {
		return nil, err
	}
	if owner.Addr == "" {
		return nil, fmt.Errorf("member %s has no address", owner.Name)
	}
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL(owner.Addr), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer status %d", resp.StatusCode)
	}
	pr, err := DecodePeerResponse(raw)
	if err != nil {
		return nil, err
	}
	if pr.Key != key {
		return nil, fmt.Errorf("peer answered key %q, asked %q", pr.Key, key)
	}
	return pr.Result, nil
}

func peerURL(addr string) string {
	for len(addr) > 0 && addr[len(addr)-1] == '/' {
		addr = addr[:len(addr)-1]
	}
	return addr + PeerPath
}

func (p *Peers) healthFor(m Member) *peerHealth {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.health[m.Name]
}

// sleepJitter pauses before retry attempt n: a seeded-uniform fraction
// of n*RetryBase, context-aware.
func (p *Peers) sleepJitter(ctx context.Context, attempt int) error {
	p.jitterMu.Lock()
	f := p.jitter.Float64()
	p.jitterMu.Unlock()
	d := time.Duration((0.5 + 0.5*f) * float64(attempt) * float64(p.retryBase))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// CountHit / CountMiss / CountFill record protocol outcomes the client
// cannot see by itself: the peering cache reports whether a successful
// fetch was served hot (hit) or computed by the owner (miss), and the
// serving side reports each request it filled. CountError covers
// payload-level failures discovered above Fetch (an undecodable result,
// an error-carrying row), which also degrade to local compute.
func (p *Peers) CountHit()   { p.hits.Add(1) }
func (p *Peers) CountMiss()  { p.misses.Add(1) }
func (p *Peers) CountFill()  { p.fills.Add(1) }
func (p *Peers) CountError() { p.errors.Add(1) }

// PeerStatus is one member's health in a Status snapshot.
type PeerStatus struct {
	Member      Member
	Self        bool
	Share       float64
	Requests    int64
	Errors      int64
	Consecutive int64
	LastError   string
	Latency     obs.Snapshot
}

// Status is a point-in-time view of the group: ring shape, group-wide
// hit accounting and per-peer health, in member-name order.
type Status struct {
	Self     Member
	VNodes   int
	RingSize int
	Hits     int64
	Misses   int64
	Fills    int64
	Errors   int64
	Peers    []PeerStatus
}

// Status snapshots the group for /v1/cluster and /metrics.
func (p *Peers) Status() Status {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := Status{
		Self:     p.self,
		VNodes:   p.vnodes,
		RingSize: p.ring.Size(),
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Fills:    p.fills.Load(),
		Errors:   p.errors.Load(),
	}
	shares := p.ring.Shares()
	for _, m := range p.ring.Members() {
		h := p.health[m.Name]
		ps := PeerStatus{Member: m, Self: m.Name == p.self.Name, Share: shares[m.Name]}
		if h != nil {
			ps.Requests = h.requests.Load()
			ps.Errors = h.errors.Load()
			ps.Consecutive = h.consecutive.Load()
			h.mu.Lock()
			ps.LastError = h.lastErr
			h.mu.Unlock()
			ps.Latency = h.hist.Snapshot()
		}
		st.Peers = append(st.Peers, ps)
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Member.Name < st.Peers[j].Member.Name })
	return st
}

// checkAddr validates a member base URL: absolute http/https with a host.
func checkAddr(addr string) error {
	u, err := url.Parse(addr)
	if err != nil {
		return fmt.Errorf("cluster: member addr %q: %w", addr, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("cluster: member addr %q must be an absolute http(s) URL", addr)
	}
	return nil
}

// peeringKey marks a context as already one peer hop deep.
type peeringKey struct{}

// WithoutPeering marks ctx so the peering cache computes locally
// instead of fetching again. The serving side applies it before
// evaluating a peer request: with membership views momentarily skewed,
// two nodes can each believe the other owns a key, and an unmarked
// context would bounce the request between them. One hop, then compute.
func WithoutPeering(ctx context.Context) context.Context {
	return context.WithValue(ctx, peeringKey{}, true)
}

// PeeringDisabled reports whether ctx forbids another peer hop.
func PeeringDisabled(ctx context.Context) bool {
	v, _ := ctx.Value(peeringKey{}).(bool)
	return v
}
