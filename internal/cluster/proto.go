package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// PeerPath is the internal peer-protocol endpoint a node serves for the
// keys it owns. It lives outside /v1 deliberately: it is node-to-node
// plumbing, not public API, and its shape may change between releases
// as long as a fleet upgrades together.
const PeerPath = "/internal/peer/eval"

// The peer wire format mirrors the WAL record discipline: a key, an
// opaque JSON payload, and a CRC over both. The requester reuses the
// engine's cache fingerprint (evalID + "/" + point key) as the key, so
// a response can be verified to answer the question that was asked —
// a ring-skewed owner evaluating under different options produces a
// different fingerprint and the requester falls back to local compute
// instead of caching a stranger's result.

// PeerRequest asks the key's owner to produce the evaluation the key
// fingerprints. Spec carries the requester's option set and design
// point so the owner can compute on a cold cache.
type PeerRequest struct {
	Key  string          `json:"k"`
	Spec json.RawMessage `json:"d"`
	CRC  uint32          `json:"c"`
}

// PeerResponse carries the owner's result payload under the owner's own
// fingerprint for the requested point.
type PeerResponse struct {
	Key    string          `json:"k"`
	Result json.RawMessage `json:"d"`
	CRC    uint32          `json:"c"`
}

// peerChecksum covers the key and payload with a separator so moving a
// byte between them cannot cancel out: CRC32-IEEE over key + 0x00 + data.
func peerChecksum(key string, data []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write([]byte(key))
	crc.Write([]byte{0})
	crc.Write(data)
	return crc.Sum32()
}

// EncodePeerRequest renders a self-checking request body. spec must be
// valid JSON; it is compacted so the checksum is canonical.
func EncodePeerRequest(key string, spec []byte) ([]byte, error) {
	return encodePeer("request", key, spec, func(k string, d json.RawMessage, c uint32) interface{} {
		return PeerRequest{Key: k, Spec: d, CRC: c}
	})
}

// EncodePeerResponse renders a self-checking response body.
func EncodePeerResponse(key string, result []byte) ([]byte, error) {
	return encodePeer("response", key, result, func(k string, d json.RawMessage, c uint32) interface{} {
		return PeerResponse{Key: k, Result: d, CRC: c}
	})
}

func encodePeer(what, key string, payload []byte, wrap func(string, json.RawMessage, uint32) interface{}) ([]byte, error) {
	if key == "" {
		return nil, fmt.Errorf("cluster: peer %s key must not be empty", what)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return nil, fmt.Errorf("cluster: peer %s payload is not valid JSON: %w", what, err)
	}
	data := buf.Bytes()
	out, err := json.Marshal(wrap(key, json.RawMessage(data), peerChecksum(key, data)))
	if err != nil {
		return nil, fmt.Errorf("cluster: encode peer %s: %w", what, err)
	}
	return out, nil
}

// DecodePeerRequest parses and checksum-verifies a request body. Any
// input either yields a request whose re-encoding is byte-identical or
// a clean error — never a panic and never a silently corrupted spec.
// The peer endpoint feeds it whatever arrives on the wire, so it is
// fuzzed like the WAL decoder (FuzzDecodePeerRequest).
func DecodePeerRequest(body []byte) (PeerRequest, error) {
	var req PeerRequest
	err := decodePeer("request", body, &req, func() (string, []byte, uint32) {
		return req.Key, req.Spec, req.CRC
	})
	if err != nil {
		return PeerRequest{}, err
	}
	return req, nil
}

// DecodePeerResponse parses and checksum-verifies a response body.
func DecodePeerResponse(body []byte) (PeerResponse, error) {
	var resp PeerResponse
	err := decodePeer("response", body, &resp, func() (string, []byte, uint32) {
		return resp.Key, resp.Result, resp.CRC
	})
	if err != nil {
		return PeerResponse{}, err
	}
	return resp, nil
}

func decodePeer(what string, body []byte, into interface{}, fields func() (string, []byte, uint32)) error {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return fmt.Errorf("cluster: empty peer %s", what)
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("cluster: parse peer %s: %w", what, err)
	}
	// A trailing second JSON value means the body was not one message.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("cluster: trailing data after peer %s", what)
	}
	key, payload, crc := fields()
	if key == "" {
		return fmt.Errorf("cluster: peer %s has empty key", what)
	}
	if len(payload) == 0 {
		return fmt.Errorf("cluster: peer %s has empty payload", what)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return fmt.Errorf("cluster: peer %s payload is not valid JSON: %w", what, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		return fmt.Errorf("cluster: peer %s payload is not compact", what)
	}
	if got := peerChecksum(key, payload); got != crc {
		return fmt.Errorf("cluster: peer %s checksum mismatch: stored %08x, computed %08x", what, crc, got)
	}
	return nil
}
