package cluster

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"
)

// ParseMember parses one "name=addr" entry.
func ParseMember(s string) (Member, error) {
	name, addr, ok := strings.Cut(strings.TrimSpace(s), "=")
	if !ok {
		return Member{}, fmt.Errorf("cluster: member %q: want name=addr", s)
	}
	m := Member{Name: strings.TrimSpace(name), Addr: strings.TrimSpace(addr)}
	if err := checkName(m.Name); err != nil {
		return Member{}, err
	}
	if err := checkAddr(m.Addr); err != nil {
		return Member{}, err
	}
	return m, nil
}

// ParseMembers parses a comma-separated "name=addr,name=addr" list (the
// -peers flag). Empty elements are skipped; duplicate names are an
// error, since the ring would silently drop all but the first.
func ParseMembers(s string) ([]Member, error) {
	return parseMemberList(strings.Split(s, ","))
}

// LoadMembersFile reads a membership file: one name=addr per line,
// blank lines and #-comments ignored.
func LoadMembersFile(path string) ([]Member, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read members file: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	for i, l := range lines {
		if c := strings.IndexByte(l, '#'); c >= 0 {
			l = l[:c]
		}
		lines[i] = l
	}
	return parseMemberList(lines)
}

func parseMemberList(entries []string) ([]Member, error) {
	var ms []Member
	seen := make(map[string]bool)
	for _, e := range entries {
		if strings.TrimSpace(e) == "" {
			continue
		}
		m, err := ParseMember(e)
		if err != nil {
			return nil, err
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		ms = append(ms, m)
	}
	return ms, nil
}

// WatchFile polls a membership file and installs each successful parse
// whose content differs from the last one, so nodes join and leave the
// ring without a restart. A read or parse failure keeps the previous
// membership (a half-written file must not empty the ring) and is
// reported through onErr (nil ignores). Blocks until ctx is done; run
// it in a goroutine.
func (p *Peers) WatchFile(ctx context.Context, path string, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	var last string
	if data, err := os.ReadFile(path); err == nil {
		last = string(data)
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		data, err := os.ReadFile(path)
		if err != nil {
			if onErr != nil {
				onErr(err)
			}
			continue
		}
		if string(data) == last {
			continue
		}
		ms, err := LoadMembersFile(path)
		if err != nil {
			if onErr != nil {
				onErr(err)
			}
			continue
		}
		last = string(data)
		p.SetMembers(ms)
	}
}
