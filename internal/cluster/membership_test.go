package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseMember(t *testing.T) {
	m, err := ParseMember(" n1 = http://host:8080 ")
	if err != nil {
		t.Fatalf("ParseMember: %v", err)
	}
	if m.Name != "n1" || m.Addr != "http://host:8080" {
		t.Fatalf("parsed %+v", m)
	}
	for _, bad := range []string{"", "n1", "n1=", "=http://h:1", "n1=ftp://h:1", "n 1=http://h:1"} {
		if _, err := ParseMember(bad); err == nil {
			t.Errorf("ParseMember(%q) accepted", bad)
		}
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=http://a:1, b=http://b:2 ,,")
	if err != nil {
		t.Fatalf("ParseMembers: %v", err)
	}
	if len(ms) != 2 || ms[0].Name != "a" || ms[1].Addr != "http://b:2" {
		t.Fatalf("parsed %v", ms)
	}
	if _, err := ParseMembers("a=http://a:1,a=http://a:2"); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestLoadMembersFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	content := "# fleet roster\na=http://a:1\n\nb=http://b:2  # rack 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := LoadMembersFile(path)
	if err != nil {
		t.Fatalf("LoadMembersFile: %v", err)
	}
	if len(ms) != 2 || ms[0].Name != "a" || ms[1].Name != "b" {
		t.Fatalf("loaded %v", ms)
	}
	if _, err := LoadMembersFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWatchFileInstallsUpdates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	if err := os.WriteFile(path, []byte("self=http://s:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := testPeers(t, Config{})
	ms, _ := LoadMembersFile(path)
	p.SetMembers(ms)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.WatchFile(ctx, path, 5*time.Millisecond, func(err error) {
			select {
			case errs <- err:
			default:
			}
		})
	}()

	// rewriteUntil keeps writing body (with a changing comment, so every
	// write differs byte-wise from whatever the watcher last latched —
	// its initial read races with the first rewrite) until ok holds.
	rewriteUntil := func(body string, ok func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for rev := 0; !ok(); rev++ {
			if time.Now().After(deadline) {
				t.Fatalf("%s; members = %v", what, p.Members())
			}
			content := fmt.Sprintf("# rev %d\n%s", rev, body)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// A good rewrite installs the new roster.
	rewriteUntil("self=http://s:1\njoiner=http://j:2\n",
		func() bool { return len(p.Members()) == 2 }, "joiner never installed")

	// A bad rewrite keeps the previous membership and reports the error.
	gotErr := func() bool {
		select {
		case <-errs:
			return true
		default:
			return false
		}
	}
	rewriteUntil("broken line\n", gotErr, "parse error never reported")
	if got := p.Members(); len(got) != 2 {
		t.Fatalf("bad file changed membership: %v", got)
	}

	// Recovery: a later good rewrite takes effect.
	rewriteUntil("self=http://s:1\n",
		func() bool { return len(p.Members()) == 1 }, "departure never installed")
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WatchFile did not stop on context cancel")
	}
}
