package wal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRecord pins the WAL record decoder's safety contract: no
// input panics it, and any line it accepts must survive an
// encode/decode round trip unchanged — the property replay and
// compaction both lean on.
func FuzzDecodeRecord(f *testing.F) {
	seed, err := Encode("job", map[string]interface{}{"id": "sweep-1", "n": 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"k":"row","d":{"i":0},"c":0}`))
	f.Add([]byte(`{"k":"","d":null,"c":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"k":"future-kind","d":{"anything":true},"c":123}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := Decode(line)
		if err != nil {
			return
		}
		// Accepted records must round-trip exactly.
		reline, err := Encode(rec.Kind, rec.Data)
		if err != nil {
			t.Fatalf("re-encoding accepted record: %v", err)
		}
		rec2, err := Decode(reline)
		if err != nil {
			t.Fatalf("re-decoding re-encoded record: %v", err)
		}
		if rec2.Kind != rec.Kind {
			t.Fatalf("kind drifted: %q -> %q", rec.Kind, rec2.Kind)
		}
		var v1, v2 interface{}
		if json.Unmarshal(rec.Data, &v1) == nil {
			if err := json.Unmarshal(rec2.Data, &v2); err != nil {
				t.Fatalf("payload no longer parses after round trip: %v", err)
			}
		}
		if !bytes.Equal(compact(t, rec.Data), compact(t, rec2.Data)) {
			t.Fatalf("payload drifted: %s -> %s", rec.Data, rec2.Data)
		}
	})
}

func compact(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return buf.Bytes()
}
