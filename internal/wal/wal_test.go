package wal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

func openT(t *testing.T, dir string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openT(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []payload{{"job-1", 1}, {"job-2", 2}, {"job-3", 3}}
	for _, p := range want {
		if err := l.Append("job", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Appends != 3 || st.Fsyncs != 1 || st.SizeBytes == 0 {
		t.Fatalf("stats = %+v, want 3 appends, 1 fsync, non-zero size", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs2 := openT(t, dir)
	if len(recs2) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs2), len(want))
	}
	for i, rec := range recs2 {
		if rec.Kind != "job" {
			t.Fatalf("record %d kind = %q", i, rec.Kind)
		}
		var p payload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, p, want[i])
		}
	}
}

// TestTruncatedLastLineDropped is the crash-mid-append scenario: the
// final record is torn (partial write, no terminating newline), replay
// must keep everything before it and truncate the tail so appends
// resume on a record boundary.
func TestTruncatedLastLineDropped(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		// Half the final line gone: not even valid JSON.
		"partial-json": func(b []byte) []byte { return b[:len(b)-len(b)/4] },
		// The full line but no newline: valid JSON, torn write.
		"missing-newline": func(b []byte) []byte { return b[:len(b)-1] },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir)
			for i := 0; i < 3; i++ {
				if err := l.Append("row", payload{"job-1", i}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, FileName)
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(buf), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, recs := openT(t, dir)
			if len(recs) != 2 {
				t.Fatalf("replayed %d records after torn tail, want 2", len(recs))
			}
			if st := l2.Stats(); st.Dropped != 1 {
				t.Fatalf("dropped = %d, want 1", st.Dropped)
			}
			// Appends after recovery land on a clean boundary.
			if err := l2.Append("row", payload{"job-1", 9}); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			_, recs3 := openT(t, dir)
			if len(recs3) != 3 {
				t.Fatalf("replayed %d records after recovery+append, want 3", len(recs3))
			}
			var p payload
			if err := json.Unmarshal(recs3[2].Data, &p); err != nil {
				t.Fatal(err)
			}
			if p.N != 9 {
				t.Fatalf("post-recovery record = %+v, want N=9", p)
			}
		})
	}
}

// TestCorruptMiddleRecordSkipped: bit rot mid-log loses that record
// only, never the journal behind it.
func TestCorruptMiddleRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 3; i++ {
		if err := l.Append("row", payload{"job-1", i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(buf, []byte("\n"))
	// Flip a payload byte in the middle record: the CRC must catch it.
	mid := bytes.Replace(lines[1], []byte(`"n":1`), []byte(`"n":7`), 1)
	if bytes.Equal(mid, lines[1]) {
		t.Fatal("test setup: middle record not mangled")
	}
	if err := os.WriteFile(path, bytes.Join([][]byte{lines[0], mid, lines[2]}, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := openT(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (corrupt middle skipped)", len(recs))
	}
	if st := l2.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	var p0, p1 payload
	if err := json.Unmarshal(recs[0].Data, &p0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recs[1].Data, &p1); err != nil {
		t.Fatal(err)
	}
	if p0.N != 0 || p1.N != 2 {
		t.Fatalf("surviving records = %d,%d, want 0,2", p0.N, p1.N)
	}
}

func TestCompactReplacesJournalAtomically(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 10; i++ {
		if err := l.Append("row", payload{"job-1", i}); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Stats().SizeBytes
	// Snapshot keeps two records.
	keep := make([]Record, 0, 2)
	for _, n := range []int{3, 7} {
		line, err := Encode("row", payload{"job-1", n})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Decode(line)
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, rec)
	}
	if err := l.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SizeBytes >= sizeBefore {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", sizeBefore, st.SizeBytes)
	}
	// The log stays appendable after compaction.
	if err := l.Append("row", payload{"job-1", 99}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, dir)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after compaction+append, want 3", len(recs))
	}
	var ns []int
	for _, rec := range recs {
		var p payload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatal(err)
		}
		ns = append(ns, p.N)
	}
	if ns[0] != 3 || ns[1] != 7 || ns[2] != 99 {
		t.Fatalf("post-compaction records = %v, want [3 7 99]", ns)
	}
	// No temp file left behind.
	if _, err := os.Stat(filepath.Join(dir, FileName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("snapshot temp file left behind (stat err: %v)", err)
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("row", payload{}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDecodeRejectsTampering(t *testing.T) {
	line, err := Encode("job", payload{"job-1", 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"payload bit flip": bytes.Replace(line, []byte(`"n":1`), []byte(`"n":2`), 1),
		"kind swap":        bytes.Replace(line, []byte(`"k":"job"`), []byte(`"k":"row"`), 1),
		"empty":            []byte(""),
		"not json":         []byte("definitely not json"),
		"trailing data":    append(bytes.TrimRight(append([]byte{}, line...), "\n"), []byte(` {"x":1}`)...),
	}
	for name, mangled := range cases {
		if _, err := Decode(mangled); err == nil {
			t.Errorf("%s: Decode accepted tampered record", name)
		}
	}
	if _, err := Decode(line); err != nil {
		t.Errorf("Decode rejected its own Encode output: %v", err)
	}
}
