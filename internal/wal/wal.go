// Package wal is a crash-safe append-only journal for the serving
// layer's durable jobs: one JSON record per line, each line carrying a
// CRC32 of its payload so torn or corrupted writes are detected on
// replay instead of silently mis-parsing. The package is deliberately
// payload-agnostic — it frames, checksums, persists and replays opaque
// records; what a "job" or a "row" means lives in the caller
// (internal/serve), so a future record kind is data this package passes
// through, never a decode failure.
//
// Durability contract:
//
//   - Append writes the record to the file immediately (no userspace
//     buffering), so an in-process reader reopening the file sees every
//     appended record even without an fsync.
//   - Sync fsyncs; callers fsync on the transitions that must survive a
//     power cut (job accepted, job finished) and skip it on high-rate
//     appends (result rows), trading at most the un-synced tail for
//     throughput — a replayed job re-evaluates exactly that tail.
//   - Open recovers from a crash mid-append: a torn final line is
//     dropped and the file truncated back to the last intact record.
//     A corrupt record in the middle of the log (bit rot, torn sector)
//     is counted and skipped, never fatal — losing one row must not
//     discard the journal behind it.
//   - Compact atomically replaces the log with a snapshot (write temp,
//     fsync, rename, fsync dir), the clean-shutdown path that stops the
//     journal growing without bound.
package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FileName is the journal's name inside its directory.
const FileName = "wal.jsonl"

// Record is one journaled entry: an opaque payload under a caller-chosen
// kind discriminator. Unknown kinds must be skipped by replayers, not
// rejected — that is the forward-compatibility contract that lets an old
// binary start against a newer journal.
type Record struct {
	// Kind discriminates the payload ("job", "row", "state", ...).
	Kind string `json:"k"`
	// Data is the payload, verbatim.
	Data json.RawMessage `json:"d"`
	// CRC is the IEEE CRC32 of Kind and Data, set by Encode and checked
	// by Decode.
	CRC uint32 `json:"c"`
}

// checksum covers the kind and the exact payload bytes.
func checksum(kind string, data []byte) uint32 {
	h := crc32.NewIEEE()
	_, _ = h.Write([]byte(kind))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write(data)
	return h.Sum32()
}

// Encode renders one record as a single self-checking JSONL line
// (terminating newline included). The payload must itself be compact
// single-line JSON; Encode compacts it to make sure.
func Encode(kind string, payload interface{}) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding %s payload: %w", kind, err)
	}
	rec := Record{Kind: kind, Data: raw, CRC: checksum(kind, raw)}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	return append(line, '\n'), nil
}

// Decode parses one journal line back into a Record, verifying its
// checksum. It never panics on hostile input (the fuzz target pins
// this); any framing or integrity failure is an error.
func Decode(line []byte) (Record, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return Record{}, errors.New("wal: empty record line")
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("wal: decoding record: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return Record{}, errors.New("wal: trailing data after record")
	}
	if rec.Kind == "" {
		return Record{}, errors.New("wal: record without a kind")
	}
	if len(rec.Data) == 0 {
		return Record{}, errors.New("wal: record without a payload")
	}
	if got := checksum(rec.Kind, rec.Data); got != rec.CRC {
		return Record{}, fmt.Errorf("wal: checksum mismatch (want %08x, got %08x)", rec.CRC, got)
	}
	return rec, nil
}

// Stats is a Log's point-in-time accounting, rendered under /metrics as
// the efficsense_wal_* series.
type Stats struct {
	// Appends counts records written since Open; Fsyncs the explicit
	// syncs. Dropped counts records discarded during Open — a torn final
	// line after a crash, or corrupt records mid-log.
	Appends int64
	Fsyncs  int64
	Dropped int64
	// SizeBytes is the journal file's current length.
	SizeBytes int64
}

// Log is an open journal: goroutine-safe appends to one file.
type Log struct {
	mu    sync.Mutex
	f     *os.File
	dir   string
	path  string
	stats Stats
}

// Open opens (creating if needed) the journal in dir, replays every
// intact record and returns the log positioned for appending. A torn
// final line — the signature of a crash mid-append — is dropped and the
// file truncated back to the last intact record; corrupt records
// elsewhere are counted in Stats.Dropped and skipped. Decoding is
// framing-level only: unknown record kinds are returned like any other
// and are the caller's to skip.
func Open(dir string) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	records, goodEnd, dropped, err := replayFile(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate a torn tail so the next append starts on a record
	// boundary instead of concatenating into the torn line.
	if fi, statErr := f.Stat(); statErr == nil && goodEnd < fi.Size() {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	l := &Log{f: f, dir: dir, path: path}
	l.stats.Dropped = dropped
	l.stats.SizeBytes = goodEnd
	return l, records, nil
}

// replayFile scans the journal, returning the intact records, the byte
// offset just past the last intact *terminated* record, and how many
// records were dropped as corrupt. The writer emits "line\n" in one
// write, so an unterminated final line — even one that happens to parse
// as JSON — is a torn write and is dropped like any other partial
// record.
func replayFile(f *os.File) (records []Record, goodEnd int64, dropped int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, fmt.Errorf("wal: seeking: %w", err)
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: reading: %w", err)
	}
	var offset int64
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			// Torn tail: a write that never reached its newline.
			dropped++
			break
		}
		line := buf[:nl]
		lineEnd := offset + int64(nl) + 1
		if rec, derr := Decode(line); derr == nil {
			records = append(records, rec)
			goodEnd = lineEnd
		} else {
			dropped++
		}
		offset = lineEnd
		buf = buf[nl+1:]
	}
	return records, goodEnd, dropped, nil
}

// Append journals one record. The write reaches the file before Append
// returns (no userspace buffering); call Sync to force it to stable
// storage.
func (l *Log) Append(kind string, payload interface{}) error {
	line, err := Encode(kind, payload)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("wal: appending: %w", err)
	}
	l.stats.Appends++
	l.stats.SizeBytes += int64(len(line))
	return nil
}

// Sync fsyncs the journal.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.stats.Fsyncs++
	return nil
}

// AppendSync journals one record and fsyncs — the job-state-transition
// path, where the record must survive a power cut.
func (l *Log) AppendSync(kind string, payload interface{}) error {
	if err := l.Append(kind, payload); err != nil {
		return err
	}
	return l.Sync()
}

// Compact atomically replaces the journal with exactly the given
// records — the clean-shutdown snapshot+truncate. The replacement is
// write-temp / fsync / rename / fsync-dir, so a crash mid-compaction
// leaves either the old journal or the new one, never a mix.
func (l *Log) Compact(records []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	tmpPath := l.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot: %w", err)
	}
	var size int64
	w := bufio.NewWriter(tmp)
	for _, rec := range records {
		line, err := Encode(rec.Kind, rec.Data)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("wal: writing snapshot: %w", err)
		}
		size += int64(len(line))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: flushing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	syncDir(l.dir)
	old := l.f
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening after compaction: %w", err)
	}
	old.Close()
	l.f = f
	l.stats.SizeBytes = size
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable. Best
// effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Stats snapshots the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Path returns the journal file's location (tests and log lines).
func (l *Log) Path() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.path
}

// Close fsyncs and closes the journal. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return fmt.Errorf("wal: closing: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: closing: %w", closeErr)
	}
	return nil
}
