package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// ridKey is the context key for the request ID; unexported so only this
// package's accessors touch it.
type ridKey struct{}

// WithRequestID attaches a request ID to the context. The serving
// middleware calls it once per request; everything downstream — handler
// log lines, job lifecycle records — reads it back with RequestID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "" when the work
// is not request-scoped (CLI runs, tests driving the Manager directly).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-character request ID (64 random
// bits — collision-free for any realistic daemon lifetime, short enough
// to read in a log line).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; degrade to
		// a constant rather than panicking the serving path.
		return "rid-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen caps caller-supplied IDs so a hostile header cannot
// bloat every log line and job record.
const maxRequestIDLen = 128

// ValidRequestID reports whether a caller-supplied X-Request-ID is safe
// to echo and log: non-empty, at most maxRequestIDLen bytes, visible
// ASCII only (no spaces, no control bytes, nothing that could split a
// log line or smuggle a header).
func ValidRequestID(s string) bool {
	if len(s) == 0 || len(s) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= 0x20 || s[i] >= 0x7f {
			return false
		}
	}
	return true
}
