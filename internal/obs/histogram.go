// Package obs holds the request-scoped observability primitives the
// serving stack shares: a fixed-bucket, allocation-free latency
// histogram (rendered by hand into the Prometheus text exposition, like
// the rest of /metrics) and X-Request-ID generation/propagation.
//
// The histogram exists so the engine and HTTP layers can attribute
// latency per pipeline stage — tail quantiles per endpoint and per
// evaluation — instead of the single mean the first serving cut
// exported. Observe is lock-free and performs no allocation, so it is
// safe on the sweep engine's hot path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// maxBuckets bounds the finite-bucket count so a Histogram's counters
// live in a fixed-size array: no allocation per Observe, no resizing,
// and the zero-ish construction cost is one slice header.
const maxBuckets = 32

// DurationBuckets are the HTTP request-latency bounds in seconds:
// 1ms … 10s, roughly logarithmic, matching the Prometheus defaults so
// dashboards transfer.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// EvalBuckets are the per-point evaluation-duration bounds in seconds.
// Evaluations span microseconds (warm analytic paths in tests) to tens
// of seconds (detector-backed points at paper scale), so the range is
// wider and starts finer than DurationBuckets.
var EvalBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket cumulative histogram with lock-free,
// allocation-free observation. Bucket semantics match Prometheus: a
// bucket's bound is its inclusive upper edge (le), and an implicit
// +Inf bucket catches everything beyond the last bound.
//
// Construct with NewHistogram; the zero value has no buckets and drops
// observations into +Inf only.
type Histogram struct {
	bounds []float64
	counts [maxBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on unsorted bounds or more than maxBuckets of them
// — bucket layouts are compile-time decisions, not request data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) > maxBuckets {
		panic(fmt.Sprintf("obs: %d histogram buckets, max %d", len(bounds), maxBuckets))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at index %d (%g after %g)",
				i, bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{bounds: make([]float64, len(bounds))}
	copy(h.bounds, bounds)
	return h
}

// Observe records one value. It is safe for concurrent use, lock-free,
// and allocates nothing.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram. Buckets are
// read without pausing writers, so a snapshot taken mid-Observe may be
// off by the in-flight observation — fine for monitoring, which is the
// only consumer.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a point-in-time histogram reading: per-bucket
// (non-cumulative) counts, with Counts[len(Bounds)] the +Inf bucket.
// The zero value is an empty histogram that merges with anything.
type Snapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Merge accumulates o into s. An empty receiver adopts o's bucket
// layout; mismatched layouts merge only the totals (Count/Sum), so
// aggregate quantiles degrade rather than lie.
func (s *Snapshot) Merge(o Snapshot) {
	if o.Count == 0 && len(o.Counts) == 0 {
		return
	}
	if len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Count, s.Sum = o.Count, o.Sum
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if len(o.Counts) != len(s.Counts) {
		return
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Values in the
// +Inf bucket clamp to the largest finite bound. An empty histogram
// reports 0.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp to the last finite edge
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WritePrometheus renders the snapshot as one Prometheus histogram
// series: cumulative _bucket lines with le labels ending at +Inf, then
// _sum and _count. labels is either empty or a rendered label list
// (`endpoint="POST /v1/evaluate"`); the caller writes # HELP/# TYPE
// once per metric name, since one name may carry many label sets.
func (s Snapshot) WritePrometheus(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}
