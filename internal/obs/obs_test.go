package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.05, 0.1} {
		h.Observe(v)
	}
	h.Observe(0.5)
	h.Observe(10)
	h.Observe(11) // +Inf
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Errorf("count %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-21.65) > 1e-9 {
		t.Errorf("sum %g, want 21.65", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 4 observations spread one per finite bucket plus one in +Inf.
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// rank(0.5) = 2 → second bucket (1,2], full rank → its upper edge.
	if q := s.Quantile(0.5); math.Abs(q-2) > 1e-9 {
		t.Errorf("p50 %g, want 2", q)
	}
	// rank(0.25) = 1 → first bucket [0,1], full rank → 1.
	if q := s.Quantile(0.25); math.Abs(q-1) > 1e-9 {
		t.Errorf("p25 %g, want 1", q)
	}
	// Interpolation inside a bucket: rank 2.5 is halfway through (2,4].
	if q := s.Quantile(0.625); math.Abs(q-3) > 1e-9 {
		t.Errorf("p62.5 %g, want 3", q)
	}
	// The +Inf bucket clamps to the largest finite bound.
	if q := s.Quantile(1); math.Abs(q-4) > 1e-9 {
		t.Errorf("p100 %g, want 4 (clamped)", q)
	}
	if q := (Snapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 %g, want 0", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2}).Snapshot()
	var agg Snapshot
	agg.Merge(a) // empty receiver adopts layout
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	agg.Merge(h.Snapshot())
	if agg.Count != 2 || agg.Counts[0] != 1 || agg.Counts[2] != 1 {
		t.Fatalf("merged snapshot %+v", agg)
	}
	// Mismatched layouts merge only the totals.
	other := NewHistogram([]float64{5})
	other.Observe(4)
	agg.Merge(other.Snapshot())
	if agg.Count != 3 || agg.Counts[0] != 1 {
		t.Fatalf("mismatched merge %+v", agg)
	}
}

// TestHistogramPrometheusRendering pins the exposition byte for byte:
// le labels in 'g' format, cumulative bucket counts, the +Inf bucket
// equal to the total, then _sum and _count.
func TestHistogramPrometheusRendering(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.0025, 0.005})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.01} {
		h.Observe(v)
	}
	var b strings.Builder
	h.Snapshot().WritePrometheus(&b, "x_seconds", `endpoint="GET /healthz"`)
	want := `x_seconds_bucket{endpoint="GET /healthz",le="0.001"} 1
x_seconds_bucket{endpoint="GET /healthz",le="0.0025"} 3
x_seconds_bucket{endpoint="GET /healthz",le="0.005"} 3
x_seconds_bucket{endpoint="GET /healthz",le="+Inf"} 4
x_seconds_sum{endpoint="GET /healthz"} 0.0145
x_seconds_count{endpoint="GET /healthz"} 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}

	// Unlabelled series carry no braces on _sum/_count.
	var u strings.Builder
	h.Snapshot().WritePrometheus(&u, "y_seconds", "")
	if !strings.Contains(u.String(), "y_seconds_sum 0.0145\n") ||
		!strings.Contains(u.String(), `y_seconds_bucket{le="+Inf"} 4`) {
		t.Errorf("unlabelled exposition:\n%s", u.String())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%13) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"too many":   make([]float64, maxBuckets+1),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			if name == "too many" {
				for i := range bounds {
					bounds[i] = float64(i + 1)
				}
			}
			NewHistogram(bounds)
		}()
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("bare context carries request ID %q", got)
	}
	ctx = WithRequestID(ctx, "abc-123")
	if got := RequestID(ctx); got != "abc-123" {
		t.Fatalf("round trip: %q", got)
	}
}

func TestNewRequestIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 || !ValidRequestID(id) {
			t.Fatalf("generated ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate generated ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidRequestID(t *testing.T) {
	cases := map[string]bool{
		"abc-123":                true,
		"0123456789abcdef":       true,
		"":                       false,
		"has space":              false,
		"tab\there":              false,
		"newline\n":              false,
		"ctrl\x01":               false,
		"über":                   false, // non-ASCII
		strings.Repeat("x", 128): true,
		strings.Repeat("x", 129): false,
	}
	for id, want := range cases {
		if got := ValidRequestID(id); got != want {
			t.Errorf("ValidRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

// BenchmarkHistogramObserve pins the hot-path contract: lock-free and
// allocation-free (run with -benchmem; allocs/op must be 0).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(EvalBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.0007)
	}
}

// BenchmarkHistogramSnapshotQuantile measures the read side the status
// endpoint hits per request.
func BenchmarkHistogramSnapshotQuantile(b *testing.B) {
	h := NewHistogram(EvalBuckets)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i%100) * 0.0007)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.5) + s.Quantile(0.9) + s.Quantile(0.99)
	}
}
