// Package eeg is the EEG-dataset substrate of the reproduction. The paper
// evaluates on 500 single-channel 23.6 s records sampled at 173.61 Hz from
// the Bonn university epilepsy dataset, upsampled to 512 Hz (Step 4 of the
// framework). The dataset itself is not redistributable, so this package
// synthesises Bonn-like records: interictal (non-seizure) records are
// 1/f-coloured background with a wandering alpha rhythm; ictal (seizure)
// records superimpose high-amplitude rhythmic 3–5 Hz spike-wave
// discharges. Amplitudes are in volts at the electrode (tens of µV), the
// scale the LNA models expect.
package eeg

import (
	"fmt"
	"math"

	"efficsense/internal/dsp"
	"efficsense/internal/siggen"
	"efficsense/internal/xrand"
)

// Bonn dataset geometry (paper Step 4 and Section IV).
const (
	// NativeRate is the Bonn recording rate in Hz.
	NativeRate = 173.61
	// NativeSamples is the record length in samples (23.6 s).
	NativeSamples = 4097
	// UpsampledRate is the rate the paper upsamples to (Hz).
	UpsampledRate = 512.0
	// RecordSeconds is the record duration.
	RecordSeconds = 23.6
	// PaperRecordCount is the full evaluation size used in Fig 7.
	PaperRecordCount = 500
)

// Class labels a record.
type Class int

const (
	// Interictal is seizure-free activity.
	Interictal Class = iota
	// Ictal is seizure activity.
	Ictal
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Interictal:
		return "interictal"
	case Ictal:
		return "ictal"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Record is one EEG signal with its ground-truth label.
type Record struct {
	// Samples holds the waveform in volts.
	Samples []float64
	// Rate is the sample rate in Hz.
	Rate float64
	// Label is the ground-truth class.
	Label Class
	// ID identifies the record within its dataset.
	ID int
}

// Config parameterises the synthesiser. The defaults are tuned so that a
// simple detector reaches the paper's ~99 % clean accuracy and degrades
// through the 95–99.5 % range as front-end noise grows.
type Config struct {
	// Seed makes the dataset reproducible.
	Seed int64
	// Records is the total record count (split evenly between classes).
	Records int
	// BackgroundRMS is the interictal background level (V). Default 13 µV.
	BackgroundRMS float64
	// AlphaRMS is the posterior-rhythm level (V). Default 6 µV.
	AlphaRMS float64
	// SeizureAmp is the spike-wave discharge peak amplitude (V).
	// Default 85 µV — ictal Bonn records are several-fold larger than
	// interictal ones.
	SeizureAmp float64
	// DischargeHz is the nominal spike-wave rate (Hz). Default 4.
	DischargeHz float64
	// AmpSpreadLow/High bound the per-record seizure-amplitude factor
	// (uniform draw). Weak-discharge records are the ones a noisy
	// front-end misclassifies first, which is what makes detection
	// accuracy respond smoothly to front-end quality — the property the
	// paper's Fig 7b optimisation depends on. Defaults 0.3 / 1.15.
	AmpSpreadLow, AmpSpreadHigh float64
	// Upsample controls whether records are resampled from NativeRate to
	// UpsampledRate (the paper's Step 4). Default true via DefaultConfig.
	Upsample bool
	// Artifacts adds the recording artefacts the paper's Step 4 notes
	// real databases contain: ocular (eye-blink) transients, EMG (muscle)
	// bursts and mains interference. Off by default — the Bonn records
	// the paper evaluates on are artefact-screened — and available for
	// robustness studies.
	Artifacts bool
	// MainsHz is the powerline frequency used when Artifacts is on
	// (default 50 Hz).
	MainsHz float64
}

// DefaultConfig returns the tuned synthesiser configuration with the given
// seed and record count (0 → PaperRecordCount).
func DefaultConfig(seed int64, records int) Config {
	if records <= 0 {
		records = PaperRecordCount
	}
	return Config{
		Seed:          seed,
		Records:       records,
		BackgroundRMS: 13e-6,
		AlphaRMS:      6e-6,
		SeizureAmp:    110e-6,
		DischargeHz:   4,
		AmpSpreadLow:  0.3,
		AmpSpreadHigh: 1.15,
		Upsample:      true,
	}
}

// Dataset is a labelled collection of records.
type Dataset struct {
	Records []Record
	// Rate is the common sample rate of all records (Hz).
	Rate float64
}

// Synthesize builds the dataset. Classes alternate so any prefix is
// approximately balanced, which keeps reduced-record evaluations fair.
func Synthesize(cfg Config) *Dataset {
	if cfg.Records <= 0 {
		cfg.Records = PaperRecordCount
	}
	rate := NativeRate
	if cfg.Upsample {
		rate = UpsampledRate
	}
	ds := &Dataset{Rate: rate, Records: make([]Record, cfg.Records)}
	for i := range ds.Records {
		label := Interictal
		if i%2 == 1 {
			label = Ictal
		}
		rng := xrand.Derive(cfg.Seed, fmt.Sprintf("eeg-record-%d", i))
		raw := synthesizeRecord(rng, cfg, label)
		if cfg.Upsample {
			raw = dsp.Resample(raw, NativeRate, UpsampledRate)
		}
		ds.Records[i] = Record{Samples: raw, Rate: rate, Label: label, ID: i}
	}
	return ds
}

// synthesizeRecord builds a single native-rate record.
func synthesizeRecord(rng *xrand.Source, cfg Config, label Class) []float64 {
	n := NativeSamples
	// Shared background: pink noise + alpha rhythm, present in both classes.
	bg := siggen.ColoredNoise(rng.Derive("background"), n, 1.1, cfg.BackgroundRMS)
	alphaHz := 9 + 2.5*rng.Float64() // 9–11.5 Hz posterior rhythm
	alpha := siggen.Rhythm(rng.Derive("alpha"), n, NativeRate, alphaHz, cfg.AlphaRMS)
	v := make([]float64, n)
	for i := range v {
		v[i] = bg[i] + alpha[i]
	}
	if label == Ictal {
		// Rhythmic discharge covering most of the record, with a ramp-in
		// envelope and per-record rate variation (3–5 Hz). The amplitude
		// factor grades difficulty: weak discharges sit near the noise.
		hz := cfg.DischargeHz * (0.8 + 0.4*rng.Float64())
		amp := cfg.SeizureAmp
		if cfg.AmpSpreadHigh > cfg.AmpSpreadLow && cfg.AmpSpreadLow > 0 {
			amp *= cfg.AmpSpreadLow + (cfg.AmpSpreadHigh-cfg.AmpSpreadLow)*rng.Float64()
		}
		sw := siggen.SpikeWave(rng.Derive("discharge"), n, NativeRate, hz, amp, 0.06)
		start := int(float64(n) * 0.05 * rng.Float64())
		length := n - start - int(float64(n)*0.05*rng.Float64())
		siggen.Burst(sw, start, length)
		for i := range v {
			v[i] += sw[i]
		}
	} else {
		// Occasional benign theta burst so the classes are not trivially
		// separable by variance alone.
		if rng.Bernoulli(0.4) {
			th := siggen.Rhythm(rng.Derive("theta"), n, NativeRate, 5+2*rng.Float64(), cfg.AlphaRMS*0.8)
			start := rng.Intn(n / 2)
			siggen.Burst(th, start, n/4)
			for i := range v {
				v[i] += th[i]
			}
		}
	}
	if cfg.Artifacts {
		addArtifacts(rng.Derive("artifacts"), cfg, v)
	}
	return v
}

// addArtifacts superimposes ocular, muscular and mains contamination.
func addArtifacts(rng *xrand.Source, cfg Config, v []float64) {
	n := len(v)
	// Eye blinks: 2–5 large biphasic lumps of ~0.5 s.
	blinks := 2 + rng.Intn(4)
	rate := float64(NativeRate)
	width := int(0.25 * rate)
	for b := 0; b < blinks; b++ {
		center := rng.Intn(n)
		amp := 120e-6 * (0.7 + 0.6*rng.Float64())
		for i := center - 3*width; i <= center+3*width; i++ {
			if i < 0 || i >= n {
				continue
			}
			t := float64(i-center) / float64(width)
			// Biphasic: a Gaussian bump with a shallow rebound.
			v[i] += amp * (math.Exp(-t*t) - 0.3*math.Exp(-(t-1.5)*(t-1.5)))
		}
	}
	// Muscle bursts: 1–3 wideband high-frequency bursts.
	bursts := 1 + rng.Intn(3)
	for b := 0; b < bursts; b++ {
		emg := siggen.ColoredNoise(rng.Derive("emg"), n, 0, 25e-6)
		// High-pass-ish shaping: first difference emphasises > 20 Hz.
		for i := n - 1; i > 0; i-- {
			emg[i] = (emg[i] - emg[i-1]) * 2
		}
		start := rng.Intn(n)
		length := n / 10
		siggen.Burst(emg, start, length)
		for i := range v {
			v[i] += emg[i]
		}
	}
	// Mains pickup.
	mains := cfg.MainsHz
	if mains <= 0 {
		mains = 50
	}
	phase := rng.Float64() * 2 * math.Pi
	for i := range v {
		v[i] += 6e-6 * math.Sin(2*math.Pi*mains*float64(i)/NativeRate+phase)
	}
}

// Split partitions the dataset into train and test subsets with the given
// test fraction, preserving class balance (records alternate classes, so a
// stride split is balanced). frac is clamped to (0, 1).
func (d *Dataset) Split(testFrac float64) (train, test *Dataset) {
	if testFrac <= 0 {
		testFrac = 0.25
	}
	if testFrac >= 1 {
		testFrac = 0.75
	}
	stride := int(1 / testFrac)
	if stride < 2 {
		stride = 2
	}
	train = &Dataset{Rate: d.Rate}
	test = &Dataset{Rate: d.Rate}
	// Walk in class pairs so both splits stay balanced.
	for i := 0; i+1 < len(d.Records); i += 2 {
		pair := d.Records[i : i+2]
		if (i/2)%stride == stride-1 {
			test.Records = append(test.Records, pair...)
		} else {
			train.Records = append(train.Records, pair...)
		}
	}
	if len(d.Records)%2 == 1 {
		train.Records = append(train.Records, d.Records[len(d.Records)-1])
	}
	return train, test
}

// CountByClass returns the number of records per class.
func (d *Dataset) CountByClass() map[Class]int {
	out := map[Class]int{}
	for _, r := range d.Records {
		out[r.Label]++
	}
	return out
}

// Subset returns a dataset view containing the first n records (or all if
// n exceeds the dataset size). Records alternate classes, so prefixes stay
// balanced.
func (d *Dataset) Subset(n int) *Dataset {
	if n >= len(d.Records) || n <= 0 {
		return d
	}
	return &Dataset{Rate: d.Rate, Records: d.Records[:n]}
}
