package eeg

import (
	"math"
	"testing"

	"efficsense/internal/dsp"
)

func smallConfig(seed int64, n int) Config {
	cfg := DefaultConfig(seed, n)
	return cfg
}

func TestSynthesizeGeometry(t *testing.T) {
	ds := Synthesize(smallConfig(1, 6))
	if len(ds.Records) != 6 {
		t.Fatalf("record count = %d", len(ds.Records))
	}
	if ds.Rate != UpsampledRate {
		t.Fatalf("rate = %g, want %g", ds.Rate, UpsampledRate)
	}
	wantLen := int(math.Floor(float64(NativeSamples-1)*UpsampledRate/NativeRate)) + 1
	for _, r := range ds.Records {
		if len(r.Samples) != wantLen {
			t.Fatalf("record %d length %d, want %d", r.ID, len(r.Samples), wantLen)
		}
	}
	// ~23.6 seconds.
	sec := float64(wantLen) / UpsampledRate
	if math.Abs(sec-RecordSeconds) > 0.1 {
		t.Fatalf("record duration %g s, want ~%g", sec, RecordSeconds)
	}
}

func TestSynthesizeNativeRate(t *testing.T) {
	cfg := smallConfig(1, 2)
	cfg.Upsample = false
	ds := Synthesize(cfg)
	if ds.Rate != NativeRate {
		t.Fatalf("rate = %g", ds.Rate)
	}
	if len(ds.Records[0].Samples) != NativeSamples {
		t.Fatalf("length = %d, want %d", len(ds.Records[0].Samples), NativeSamples)
	}
}

func TestClassBalanceAndAlternation(t *testing.T) {
	ds := Synthesize(smallConfig(2, 20))
	counts := ds.CountByClass()
	if counts[Interictal] != 10 || counts[Ictal] != 10 {
		t.Fatalf("class counts = %v", counts)
	}
	for i, r := range ds.Records {
		want := Interictal
		if i%2 == 1 {
			want = Ictal
		}
		if r.Label != want {
			t.Fatalf("record %d label %v, want %v", i, r.Label, want)
		}
	}
}

func TestReproducible(t *testing.T) {
	a := Synthesize(smallConfig(7, 4))
	b := Synthesize(smallConfig(7, 4))
	for i := range a.Records {
		for j := range a.Records[i].Samples {
			if a.Records[i].Samples[j] != b.Records[i].Samples[j] {
				t.Fatalf("record %d sample %d differs across identical seeds", i, j)
			}
		}
	}
	c := Synthesize(smallConfig(8, 4))
	if a.Records[0].Samples[100] == c.Records[0].Samples[100] {
		t.Fatal("different seeds should give different records")
	}
}

func TestIctalLargerAndLowFrequencyDominated(t *testing.T) {
	ds := Synthesize(smallConfig(3, 12))
	var ictalRMS, interRMS float64
	var ictalN, interN int
	for _, r := range ds.Records {
		rms := dsp.RMS(r.Samples)
		if r.Label == Ictal {
			ictalRMS += rms
			ictalN++
		} else {
			interRMS += rms
			interN++
		}
	}
	ictalRMS /= float64(ictalN)
	interRMS /= float64(interN)
	// Seizure amplitude is spread per record (graded difficulty), so the
	// class-mean ratio is moderate but must stay clearly above 1.
	if ictalRMS < 1.5*interRMS {
		t.Fatalf("ictal RMS %g not clearly above interictal RMS %g", ictalRMS, interRMS)
	}
	// Ictal records concentrate power in the discharge band (2.5-6 Hz).
	for _, r := range ds.Records[:4] {
		psd := dsp.Welch(r.Samples, r.Rate, 2048)
		band := psd.BandPower(2.5, 6.5)
		total := psd.TotalPower()
		frac := band / total
		if r.Label == Ictal && frac < 0.3 {
			t.Errorf("ictal record %d discharge-band fraction = %g, want > 0.3", r.ID, frac)
		}
		if r.Label == Interictal && frac > 0.5 {
			t.Errorf("interictal record %d discharge-band fraction = %g, want < 0.5", r.ID, frac)
		}
	}
}

func TestAmplitudesPhysiological(t *testing.T) {
	ds := Synthesize(smallConfig(4, 8))
	for _, r := range ds.Records {
		peak := dsp.MaxAbs(r.Samples)
		if peak < 1e-6 || peak > 1e-3 {
			t.Fatalf("record %d peak %g V outside electrode-scale range", r.ID, peak)
		}
	}
}

func TestSplitBalancedDisjoint(t *testing.T) {
	ds := Synthesize(smallConfig(5, 40))
	train, test := ds.Split(0.25)
	if len(train.Records)+len(test.Records) != 40 {
		t.Fatalf("split sizes %d + %d != 40", len(train.Records), len(test.Records))
	}
	if len(test.Records) < 8 || len(test.Records) > 12 {
		t.Fatalf("test size = %d, want ~10", len(test.Records))
	}
	tc := test.CountByClass()
	if tc[Ictal] != tc[Interictal] {
		t.Fatalf("test split unbalanced: %v", tc)
	}
	seen := map[int]bool{}
	for _, r := range train.Records {
		seen[r.ID] = true
	}
	for _, r := range test.Records {
		if seen[r.ID] {
			t.Fatalf("record %d in both splits", r.ID)
		}
	}
}

func TestSplitClampsFraction(t *testing.T) {
	ds := Synthesize(smallConfig(6, 8))
	train, test := ds.Split(-1)
	if len(train.Records) == 0 || len(test.Records) == 0 {
		t.Fatal("degenerate split with clamped fraction")
	}
}

func TestSubset(t *testing.T) {
	ds := Synthesize(smallConfig(9, 10))
	sub := ds.Subset(4)
	if len(sub.Records) != 4 {
		t.Fatalf("subset size = %d", len(sub.Records))
	}
	c := sub.CountByClass()
	if c[Ictal] != 2 || c[Interictal] != 2 {
		t.Fatalf("subset unbalanced: %v", c)
	}
	if ds.Subset(100) != ds {
		t.Fatal("oversized subset should return the original dataset")
	}
	if ds.Subset(0) != ds {
		t.Fatal("zero subset should return the original dataset")
	}
}

func TestClassString(t *testing.T) {
	if Interictal.String() != "interictal" || Ictal.String() != "ictal" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still render")
	}
}

func TestDefaultConfigRecordFallback(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	if cfg.Records != PaperRecordCount {
		t.Fatalf("default records = %d, want %d", cfg.Records, PaperRecordCount)
	}
}

func TestArtifactsAddContamination(t *testing.T) {
	clean := Synthesize(smallConfig(30, 4))
	cfg := smallConfig(30, 4)
	cfg.Artifacts = true
	dirty := Synthesize(cfg)
	// Mains pickup: a 50 Hz line should appear in the dirty records.
	for i := range dirty.Records {
		c, d := clean.Records[i], dirty.Records[i]
		psdC := dsp.Welch(c.Samples, c.Rate, 2048)
		psdD := dsp.Welch(d.Samples, d.Rate, 2048)
		mainsC := psdC.BandPower(48, 52)
		mainsD := psdD.BandPower(48, 52)
		if mainsD < 3*mainsC {
			t.Fatalf("record %d: mains power %g not clearly above clean %g", i, mainsD, mainsC)
		}
		// Contamination raises total power.
		if dsp.Energy(d.Samples) <= dsp.Energy(c.Samples) {
			t.Fatalf("record %d: artifacts did not add energy", i)
		}
	}
}

func TestDetectorSurvivesArtifacts(t *testing.T) {
	// With artifacts present in both training and evaluation data, the
	// detector must stay usable (>= 0.85 clean-chain accuracy) — the
	// robustness property that makes artifact-rich datasets viable.
	cfg := DefaultConfig(31, 60)
	cfg.Artifacts = true
	_ = cfg // detector training lives in classify; this test only checks
	// that ictal records remain the low-frequency dominated class.
	ds := Synthesize(cfg)
	var ictalFrac, interFrac float64
	var nIc, nIn int
	for _, r := range ds.Records {
		psd := dsp.Welch(r.Samples, r.Rate, 2048)
		frac := psd.BandPower(2.5, 6.5) / psd.TotalPower()
		if r.Label == Ictal {
			ictalFrac += frac
			nIc++
		} else {
			interFrac += frac
			nIn++
		}
	}
	if ictalFrac/float64(nIc) <= interFrac/float64(nIn) {
		t.Fatal("artifacts destroyed the class separation")
	}
}
