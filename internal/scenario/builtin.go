package scenario

import (
	"efficsense/internal/classify"
	"efficsense/internal/core"
	"efficsense/internal/cs"
	"efficsense/internal/dse"
	"efficsense/internal/ecg"
	"efficsense/internal/eeg"
)

// The built-in workloads register at package load, so every importer of
// the registry — the experiments engine, the serving layer, the CLIs —
// sees the same catalogue.
func init() {
	Register(eegEpilepsy())
	Register(ecgTelemonitoring())
}

// eegEpilepsy is the paper's workload: Bonn-like EEG records through the
// front-end, scored by the trained seizure detector. Its synthesiser,
// metric recipe and space reproduce the pre-registry Suite wiring
// exactly, so selecting it (or selecting nothing) stays bit-identical to
// the historical behaviour.
func eegEpilepsy() *Scenario {
	return &Scenario{
		Name:          DefaultName,
		Description:   "EEG epilepsy detection (Bonn-like records, trained seizure detector) — the paper's workload",
		Architectures: core.Architectures(),
		Synthesize: func(seed int64, records int) *eeg.Dataset {
			return eeg.Synthesize(eeg.DefaultConfig(seed, records))
		},
		NewMetric: func(cfg MetricConfig) core.Metric {
			// The training split derives from an offset seed so train and
			// test records never coincide (the historical recipe).
			train := eeg.Synthesize(eeg.DefaultConfig(cfg.Seed+1000, cfg.TrainRecords))
			det := classify.TrainDetector(train, classify.DetectorConfig{
				Seed:          cfg.Seed,
				WindowSeconds: cfg.WindowSeconds,
				Train:         classify.TrainOptions{Epochs: cfg.Epochs},
			})
			return core.DetectorMetric{Detector: det}
		},
		Space: dse.PaperSpace,
	}
}

// ecgTelemonitoring is the wireless-ECG workload of Liu et al.
// (arXiv:1309.7843): raw single-lead ECG compressed at the sensor, with
// quality judged by an SNDR gate on the reconstruction — no classifier
// in the loop. The CS path reconstructs with block-OMP (the block-sparse
// prior of the BSBL line of work), and the LNA gain is designed for
// millivolt R peaks instead of microvolt EEG.
func ecgTelemonitoring() *Scenario {
	return &Scenario{
		Name:          "ecg-telemonitoring",
		Description:   "ECG wireless telemonitoring (PQRST synthesiser, block-sparse reconstruction, SNDR gate) — after Liu et al. 1309.7843",
		Architectures: []core.Architecture{core.ArchBaseline, core.ArchCS},
		Synthesize: func(seed int64, records int) *eeg.Dataset {
			return ecg.Synthesize(ecg.DefaultConfig(seed, records))
		},
		NewMetric: func(cfg MetricConfig) core.Metric {
			return ecg.QualityGate{}
		},
		Space: func(noiseSteps int) dse.Space {
			s := dse.PaperSpace(noiseSteps)
			s.Architectures = []core.Architecture{core.ArchBaseline, core.ArchCS}
			// Millivolt signals tolerate a higher noise floor: sweep
			// 2–50 µVrms where the EEG chain sweeps 1–20 µVrms.
			s.LNANoise = dse.GeomRange(2e-6, 50e-6, len(s.LNANoise))
			return s
		},
		InputPeak:   1.5e-3,
		ReconMethod: cs.MethodBOMP,
	}
}
