package scenario

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"efficsense/internal/core"
)

func TestLookup(t *testing.T) {
	def, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != DefaultName {
		t.Fatalf("empty name resolved %q, want %q", def.Name, DefaultName)
	}
	explicit, err := Lookup(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	if explicit != def {
		t.Fatal("explicit default and implicit default are distinct scenarios")
	}
	ecg, err := Lookup("ecg-telemonitoring")
	if err != nil {
		t.Fatal(err)
	}
	if ecg.Name != "ecg-telemonitoring" {
		t.Fatalf("lookup returned %q", ecg.Name)
	}

	if _, err := Lookup("no-such-workload"); err == nil {
		t.Fatal("unknown name did not error")
	} else if !strings.Contains(err.Error(), DefaultName) {
		t.Fatalf("unknown-name error should list the registry: %v", err)
	}
	if _, err := Lookup("Not-Kebab"); err == nil {
		t.Fatal("malformed name did not error")
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"eeg-epilepsy":                    true,
		"a":                               true,
		"a1-b2":                           true,
		"":                                false,
		"-leading":                        false,
		"trailing-":                       false,
		"double--hyphen":                  false,
		"Upper":                           false,
		"under_score":                     false,
		"spa ce":                          false,
		"dot.name":                        false,
		strings.Repeat("a", maxNameLen):   true,
		strings.Repeat("a", maxNameLen+1): false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestParseArchScoped pins the scoping contract: a name parses only
// inside a scenario that includes the architecture, even though the
// global registry knows it.
func TestParseArchScoped(t *testing.T) {
	eeg, _ := Lookup(DefaultName)
	ecg, _ := Lookup("ecg-telemonitoring")
	if a, err := eeg.ParseArch("cs-digital"); err != nil || a != core.ArchCSDigital {
		t.Fatalf("eeg cs-digital: %v %v", a, err)
	}
	if _, err := ecg.ParseArch("cs-digital"); err == nil {
		t.Fatal("ecg accepted an architecture outside its set")
	} else if !strings.Contains(err.Error(), "ecg-telemonitoring") {
		t.Fatalf("scoped parse error should name the scenario: %v", err)
	}
	for _, sc := range All() {
		for _, want := range sc.Architectures {
			got, err := sc.ParseArch(want.String())
			if err != nil || got != want {
				t.Fatalf("%s: round-trip %v: got %v, err %v", sc.Name, want, got, err)
			}
		}
		if !reflect.DeepEqual(len(sc.ArchNames()), len(sc.Architectures)) {
			t.Fatalf("%s: ArchNames length mismatch", sc.Name)
		}
	}
}

func TestRegistryOrdering(t *testing.T) {
	names := Names()
	if len(names) < 2 {
		t.Fatalf("registry holds %d scenarios, want >= 2", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All/Names disagree: %d vs %d", len(all), len(names))
	}
	for i, sc := range all {
		if sc.Name != names[i] {
			t.Fatalf("All()[%d] = %s, Names()[%d] = %s", i, sc.Name, i, names[i])
		}
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	mustPanic := func(name string, s *Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	ok, _ := Lookup(DefaultName)
	mustPanic("nil", nil)
	mustPanic("bad name", &Scenario{Name: "Bad Name", Architectures: ok.Architectures,
		Synthesize: ok.Synthesize, Space: ok.Space})
	mustPanic("no archs", &Scenario{Name: "no-archs",
		Synthesize: ok.Synthesize, Space: ok.Space})
	mustPanic("nil synth", &Scenario{Name: "nil-synth", Architectures: ok.Architectures,
		Space: ok.Space})
	mustPanic("nil space", &Scenario{Name: "nil-space", Architectures: ok.Architectures,
		Synthesize: ok.Synthesize})
	mustPanic("duplicate", &Scenario{Name: DefaultName, Architectures: ok.Architectures,
		Synthesize: ok.Synthesize, Space: ok.Space})
}

// FuzzParseScenarioName hammers the wire-name validator and Lookup with
// arbitrary bytes: no panic, and the two must agree — Lookup never
// resolves a name ValidName rejects, and every registered name both
// validates and resolves to itself.
func FuzzParseScenarioName(f *testing.F) {
	f.Add("")
	f.Add(DefaultName)
	f.Add("ecg-telemonitoring")
	f.Add("-")
	f.Add("a--b")
	f.Add(strings.Repeat("a-", 40))
	f.Add("EEG-EPILEPSY")
	f.Add("eeg-epilepsy\x00")
	f.Fuzz(func(t *testing.T, name string) {
		sc, err := Lookup(name)
		if err != nil {
			if sc != nil {
				t.Fatal("Lookup returned both a scenario and an error")
			}
			return
		}
		if name != "" && !ValidName(name) {
			t.Fatalf("Lookup(%q) resolved a name ValidName rejects", name)
		}
		if name != "" && sc.Name != name {
			t.Fatalf("Lookup(%q) resolved to %q", name, sc.Name)
		}
		if name == "" && sc.Name != DefaultName {
			t.Fatalf("Lookup(\"\") resolved to %q", sc.Name)
		}
		// Resolved scenarios are well-formed.
		if len(sc.Architectures) == 0 || sc.Synthesize == nil || sc.Space == nil {
			t.Fatalf("registered scenario %q fails its own validation", sc.Name)
		}
	})
}
