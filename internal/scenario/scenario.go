// Package scenario is the registry of named workloads the pathfinding
// framework evaluates. The paper positions EffiCSense as a general
// architectural-pathfinding methodology; a Scenario bundles everything
// that makes one application concrete — the signal synthesiser, the
// application-quality metric, the architecture set, the design-space
// generator and the evaluator knobs — behind a name, so the experiments
// engine, the serving layer and the CLIs select workloads instead of
// hard-wiring the EEG chain. The serving/caching/search stack amortises
// across every registered scenario (ROADMAP "Scenario diversity").
package scenario

import (
	"fmt"
	"sort"
	"sync"

	"efficsense/internal/core"
	"efficsense/internal/cs"
	"efficsense/internal/dse"
	"efficsense/internal/eeg"
)

// DefaultName is the scenario selected when none is named: the paper's
// EEG epilepsy-detection chain, bit-identical to the pre-registry
// behaviour.
const DefaultName = "eeg-epilepsy"

// MetricConfig carries the per-run options a scenario's metric factory
// may depend on (the EEG detector trains on a seed-derived split; a
// training-free metric ignores all of it).
type MetricConfig struct {
	// Seed drives every stochastic choice of the metric build.
	Seed int64
	// TrainRecords sizes the training split, when the metric trains.
	TrainRecords int
	// WindowSeconds is the windowed classification protocol length.
	WindowSeconds float64
	// Epochs bounds metric training.
	Epochs int
}

// Scenario is one registered workload. All fields are immutable after
// registration; a Scenario is safe for concurrent use.
type Scenario struct {
	// Name is the registry key and wire identity (lowercase kebab-case).
	Name string
	// Description is the one-line summary surfaced by GET /v1/scenarios.
	Description string
	// Architectures is the set of front-end architectures this workload
	// accepts on the wire; arch-name parsing is scoped to it.
	Architectures []core.Architecture
	// Synthesize builds the labelled evaluation dataset.
	Synthesize func(seed int64, records int) *eeg.Dataset
	// NewMetric builds the application-quality metric (nil Metric means
	// the scenario scores SNR only).
	NewMetric func(cfg MetricConfig) core.Metric
	// Space returns the default design-space grid for the workload.
	Space func(noiseSteps int) dse.Space
	// InputPeak is the expected electrode-signal peak (V) the LNA gain
	// is designed for; 0 keeps the chain default (250 µV).
	InputPeak float64
	// ReconMethod selects the CS reconstruction algorithm (OMP default).
	ReconMethod cs.Method
}

// ArchNames returns the wire names of the scenario's architecture set,
// derived from core.Architecture.String — the single source of truth.
func (s *Scenario) ArchNames() []string {
	names := make([]string, len(s.Architectures))
	for i, a := range s.Architectures {
		names[i] = a.String()
	}
	return names
}

// ParseArch resolves a wire architecture name within this scenario's
// architecture set. Names outside the set fail even when another
// scenario defines them, so a request can never evaluate an architecture
// its workload does not support.
func (s *Scenario) ParseArch(name string) (core.Architecture, error) {
	for _, a := range s.Architectures {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("scenario %s: unknown architecture %q (want one of %v)",
		s.Name, name, s.ArchNames())
}

// EvaluatorConfig seeds a core.Config with the scenario's evaluator
// identity and knobs; the caller fills dataset, metric and run options.
func (s *Scenario) EvaluatorConfig() core.Config {
	return core.Config{
		Scenario:    s.Name,
		InputPeak:   s.InputPeak,
		ReconMethod: s.ReconMethod,
	}
}

var (
	mu       sync.RWMutex
	registry = map[string]*Scenario{}
)

// Register adds a scenario to the registry. It panics on an invalid
// definition or a duplicate name — registration happens at init time,
// where a panic is a build error, not a runtime hazard.
func Register(s *Scenario) {
	if err := validate(s); err != nil {
		panic("scenario: " + err.Error())
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("scenario: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

func validate(s *Scenario) error {
	if s == nil {
		return fmt.Errorf("nil scenario")
	}
	if !ValidName(s.Name) {
		return fmt.Errorf("invalid name %q (want lowercase kebab-case, at most %d chars)", s.Name, maxNameLen)
	}
	if len(s.Architectures) == 0 {
		return fmt.Errorf("%s: empty architecture set", s.Name)
	}
	if s.Synthesize == nil {
		return fmt.Errorf("%s: nil synthesiser", s.Name)
	}
	if s.Space == nil {
		return fmt.Errorf("%s: nil space generator", s.Name)
	}
	return nil
}

const maxNameLen = 64

// ValidName reports whether name is a well-formed scenario name on the
// wire: non-empty lowercase kebab-case (letters, digits, single hyphens)
// of bounded length. Lookup rejects invalid names before touching the
// registry, so hostile inputs cost O(len) and cannot alias a registered
// name.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > maxNameLen {
		return false
	}
	prevHyphen := true // leading hyphen is invalid
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevHyphen = false
		case c == '-':
			if prevHyphen {
				return false
			}
			prevHyphen = true
		default:
			return false
		}
	}
	return !prevHyphen // trailing hyphen is invalid
}

// Lookup resolves a scenario name. The empty string selects the default
// workload; unknown or malformed names return an error listing what is
// registered.
func Lookup(name string) (*Scenario, error) {
	if name == "" {
		name = DefaultName
	}
	if !ValidName(name) {
		return nil, fmt.Errorf("scenario: invalid name %q", name)
	}
	mu.RLock()
	s := registry[name]
	mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("scenario: unknown scenario %q (registered: %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	mu.RLock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	mu.RUnlock()
	sort.Strings(names)
	return names
}

// All returns the registered scenarios in Name order.
func All() []*Scenario {
	mu.RLock()
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
