package classify

import (
	"math"
	"testing"

	"efficsense/internal/dsp"
	"efficsense/internal/eeg"
	"efficsense/internal/siggen"
	"efficsense/internal/xrand"
)

func TestFeaturesGainInvariantExceptScale(t *testing.T) {
	rng := xrand.New(1)
	v := siggen.ColoredNoise(rng, 4096, 1, 1e-5)
	f1 := Features(v, 512)
	f2 := Features(dsp.Scale(dsp.Clone(v), 1e4), 512)
	for i := 0; i < FeatureCount-1; i++ {
		if math.Abs(f1[i]-f2[i]) > 1e-9*(1+math.Abs(f1[i])) {
			t.Fatalf("feature %d (%s) not gain invariant: %g vs %g",
				i, FeatureNames[i], f1[i], f2[i])
		}
	}
	// The scale feature moves by exactly the gain in decades.
	if math.Abs((f2[13]-f1[13])-4) > 1e-9 {
		t.Fatalf("log-rms moved by %g decades, want 4", f2[13]-f1[13])
	}
}

func TestFeaturesRhythmicitySeparatesDischargeFromNoise(t *testing.T) {
	rng := xrand.New(21)
	const rate = 537.6
	sw := siggen.SpikeWave(rng.Derive("sw"), 8192, rate, 4, 50e-6, 0.03)
	noise := siggen.ColoredNoise(rng.Derive("n"), 8192, 1.5, 50e-6)
	fsw := Features(sw, rate)
	fn := Features(noise, rate)
	if fsw[11] <= fn[11] {
		t.Fatalf("rhythmicity should favour the discharge: %g vs %g", fsw[11], fn[11])
	}
}

func TestFeaturesSeparateClasses(t *testing.T) {
	ds := eeg.Synthesize(eeg.DefaultConfig(2, 10))
	// Delta+theta relative power must be systematically higher for ictal
	// records (3–5 Hz discharges).
	var ictal, inter float64
	var nIc, nIn int
	for _, r := range ds.Records {
		f := Features(r.Samples, r.Rate)
		lowFrac := f[0] + f[1]
		if r.Label == eeg.Ictal {
			ictal += lowFrac
			nIc++
		} else {
			inter += lowFrac
			nIn++
		}
	}
	ictal /= float64(nIc)
	inter /= float64(nIn)
	if ictal <= inter {
		t.Fatalf("low-band fraction: ictal %g <= interictal %g", ictal, inter)
	}
}

func TestFeaturesDegenerateInputs(t *testing.T) {
	if f := Features(nil, 512); len(f) != FeatureCount {
		t.Fatal("nil input feature length")
	}
	if f := Features(make([]float64, 1000), 512); dsp.MaxAbs(f) != 0 {
		t.Fatal("all-zero input should give zero features")
	}
	short := Features([]float64{1, 2}, 512)
	if len(short) != FeatureCount {
		t.Fatal("short input feature length")
	}
}

func TestScalerStandardises(t *testing.T) {
	rng := xrand.New(3)
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.Normal(5, 2), rng.Normal(-1, 0.1)}
	}
	s := FitScaler(rows)
	var mean0, mean1, var0, var1 float64
	for _, r := range rows {
		tr := s.Transform(r)
		mean0 += tr[0]
		mean1 += tr[1]
		var0 += tr[0] * tr[0]
		var1 += tr[1] * tr[1]
	}
	n := float64(len(rows))
	if math.Abs(mean0/n) > 1e-9 || math.Abs(mean1/n) > 1e-9 {
		t.Fatal("standardised mean not zero")
	}
	if math.Abs(var0/n-1) > 1e-9 || math.Abs(var1/n-1) > 1e-9 {
		t.Fatal("standardised variance not one")
	}
}

func TestScalerConstantFeature(t *testing.T) {
	s := FitScaler([][]float64{{1, 7}, {2, 7}})
	tr := s.Transform([]float64{1.5, 7})
	if math.IsNaN(tr[1]) || math.IsInf(tr[1], 0) {
		t.Fatal("constant feature produced NaN/Inf")
	}
}

func TestScalerEmpty(t *testing.T) {
	s := FitScaler(nil)
	got := s.Transform([]float64{1, 2})
	if got[0] != 1 || got[1] != 2 {
		t.Fatal("empty scaler should pass through")
	}
}

func TestMLPLearnsXORLike(t *testing.T) {
	// A linearly inseparable problem: the MLP must beat a linear model.
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0, 1, 1, 0}
	// Replicate for batching.
	var bx [][]float64
	var by []float64
	for i := 0; i < 50; i++ {
		bx = append(bx, x...)
		by = append(by, y...)
	}
	net := NewMLP(2, 8, 4)
	loss := net.Train(bx, by, TrainOptions{Epochs: 300, Seed: 4})
	if loss > 0.1 {
		t.Fatalf("XOR training loss = %g", loss)
	}
	for i, xi := range x {
		p := net.Predict(xi)
		if (p >= 0.5) != (y[i] == 1) {
			t.Fatalf("XOR case %v misclassified: p=%g", xi, p)
		}
	}
}

func TestMLPDeterministic(t *testing.T) {
	mk := func() float64 {
		net := NewMLP(3, 5, 9)
		x := [][]float64{{1, 0, 0}, {0, 1, 0}}
		y := []float64{0, 1}
		net.Train(x, y, TrainOptions{Epochs: 10, Seed: 9})
		return net.Predict([]float64{0.5, 0.5, 0})
	}
	if mk() != mk() {
		t.Fatal("training not deterministic for fixed seeds")
	}
}

func TestMLPPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-dim MLP should panic")
		}
	}()
	NewMLP(0, 4, 1)
}

func TestMLPTrainEmpty(t *testing.T) {
	net := NewMLP(2, 2, 1)
	if loss := net.Train(nil, nil, TrainOptions{}); loss != 0 {
		t.Fatal("empty training should be a no-op")
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 45, TN: 40, FP: 10, FN: 5}
	if got := c.Accuracy(); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("accuracy = %g", got)
	}
	if got := c.Sensitivity(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("sensitivity = %g", got)
	}
	if got := c.Specificity(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("specificity = %g", got)
	}
	var zero Confusion
	if zero.Accuracy() != 0 || zero.Sensitivity() != 0 || zero.Specificity() != 0 {
		t.Error("zero confusion should yield zero metrics")
	}
}

func TestDetectorCleanAccuracy(t *testing.T) {
	// The substitute detector must reach the paper's ~99 % regime on
	// clean records — the premise of the Fig 7 accuracy goal function.
	ds := eeg.Synthesize(eeg.DefaultConfig(5, 80))
	train, test := ds.Split(0.25)
	det := TrainDetector(train, DetectorConfig{Seed: 5, Train: TrainOptions{Epochs: 150}})
	conf := det.EvaluateDataset(test)
	if acc := conf.Accuracy(); acc < 0.95 {
		t.Fatalf("clean test accuracy = %g, want >= 0.95 (confusion %+v)", acc, conf)
	}
}

func TestDetectorDegradesWithNoise(t *testing.T) {
	ds := eeg.Synthesize(eeg.DefaultConfig(6, 60))
	train, test := ds.Split(0.25)
	det := TrainDetector(train, DetectorConfig{Seed: 6, Train: TrainOptions{Epochs: 150}})
	rng := xrand.New(66)
	noisy := func(level float64) float64 {
		waves := make([][]float64, len(test.Records))
		labels := make([]eeg.Class, len(test.Records))
		for i, r := range test.Records {
			w := dsp.Clone(r.Samples)
			sigma := level * dsp.RMS(w)
			for j := range w {
				w[j] += rng.Normal(0, sigma)
			}
			waves[i] = w
			labels[i] = r.Label
		}
		return det.EvaluateWaves(waves, test.Rate, labels).Accuracy()
	}
	clean := noisy(0)
	drowned := noisy(20)
	if clean < 0.9 {
		t.Fatalf("clean accuracy = %g", clean)
	}
	if drowned > clean-0.2 {
		t.Fatalf("accuracy did not degrade with overwhelming noise: clean %g vs drowned %g", clean, drowned)
	}
}

func TestDetectorExpectsElectrodeScale(t *testing.T) {
	// The detector contract: waveforms are referred to electrode scale.
	// A correctly referred copy classifies identically to the original; a
	// copy left at ADC scale (gain not removed) is out of contract and
	// may not.
	ds := eeg.Synthesize(eeg.DefaultConfig(7, 20))
	train, test := ds.Split(0.25)
	det := TrainDetector(train, DetectorConfig{Seed: 7, Train: TrainOptions{Epochs: 100}})
	const gain = 2800.0
	for _, r := range test.Records {
		amplified := dsp.Scale(dsp.Clone(r.Samples), gain)
		referred := dsp.Scale(dsp.Clone(amplified), 1/gain)
		a := det.Classify(r.Samples, r.Rate)
		b := det.Classify(referred, r.Rate)
		if a != b {
			t.Fatalf("record %d classification changed after gain round trip", r.ID)
		}
	}
}

func TestClassifyWindowedFallbacks(t *testing.T) {
	ds := eeg.Synthesize(eeg.DefaultConfig(8, 12))
	train, test := ds.Split(0.25)
	det := TrainDetector(train, DetectorConfig{Seed: 8, Train: TrainOptions{Epochs: 60}})
	r := test.Records[0]
	// windowSamples <= 0 or longer than the record: whole-record result.
	whole := det.Classify(r.Samples, r.Rate)
	if det.ClassifyWindowed(r.Samples, r.Rate, 0) != whole {
		t.Fatal("zero window should fall back to whole-record classification")
	}
	if det.ClassifyWindowed(r.Samples, r.Rate, len(r.Samples)+1) != whole {
		t.Fatal("oversized window should fall back to whole-record classification")
	}
}

func TestEvaluateWavesWindowedRuns(t *testing.T) {
	ds := eeg.Synthesize(eeg.DefaultConfig(9, 12))
	train, test := ds.Split(0.25)
	det := TrainDetector(train, DetectorConfig{
		Seed: 9, WindowSeconds: 3, Train: TrainOptions{Epochs: 60},
	})
	waves := make([][]float64, len(test.Records))
	labels := make([]eeg.Class, len(test.Records))
	for i, r := range test.Records {
		waves[i] = r.Samples
		labels[i] = r.Label
	}
	win := int(3 * test.Rate)
	conf := det.EvaluateWavesWindowed(waves, test.Rate, labels, win)
	if conf.TP+conf.TN+conf.FP+conf.FN != len(test.Records) {
		t.Fatalf("confusion does not cover all records: %+v", conf)
	}
	// Window-trained detector should still be decent on clean records.
	if conf.Accuracy() < 0.7 {
		t.Fatalf("windowed clean accuracy = %g", conf.Accuracy())
	}
}
