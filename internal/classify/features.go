// Package classify provides the seizure detector used as the
// application-accuracy goal function (paper Section IV). The paper uses
// the pre-trained deep network of Ullah et al. [20] as a black box; this
// reproduction substitutes a feature-based multilayer perceptron trained
// in pure Go. Features are deliberately gain-invariant (relative band
// powers, normalised line length, shape statistics) so the detector
// responds to what the front-end actually degrades — in-band SNR and
// waveform fidelity — and not to the chain's arbitrary gain.
package classify

import (
	"math"

	"efficsense/internal/dsp"
)

// FeatureCount is the dimensionality of the feature vector.
const FeatureCount = 14

// FeatureNames labels the vector entries for reports. All features except
// log-rms are gain-invariant; log-rms assumes the waveform is referred to
// electrode scale (volts at the sensor), which the evaluation framework
// guarantees by dividing chain outputs by their known design gain.
var FeatureNames = [FeatureCount]string{
	"relpow-delta", "relpow-theta", "relpow-alpha", "relpow-beta", "relpow-gamma",
	"line-length", "zero-cross", "median-freq", "edge-90", "peak-factor", "mobility",
	"rhythmicity", "harmonic-ratio", "log-rms",
}

// eegBands are the canonical EEG bands (Hz); the discharge fundamental of
// ictal records falls in delta/theta, its spike harmonics spread upward.
var eegBands = [5][2]float64{
	{0.5, 4},  // delta
	{4, 8},    // theta
	{8, 13},   // alpha
	{13, 30},  // beta
	{30, 100}, // gamma (upper edge clamped to Nyquist at runtime)
}

// Features computes the gain-invariant feature vector of a waveform
// sampled at rate Hz. It is safe for arbitrary amplitude scales (the
// front-end output may be volts after gain while the electrode signal is
// microvolts).
func Features(v []float64, rate float64) []float64 {
	out := make([]float64, FeatureCount)
	if len(v) < 32 || rate <= 0 {
		return out
	}
	w := dsp.RemoveMean(dsp.Clone(v))
	rms := dsp.RMS(w)
	if rms == 0 {
		return out
	}
	seg := 512
	if len(w) < seg {
		seg = len(w)
	}
	psd := dsp.Welch(w, rate, seg)
	total := psd.TotalPower()
	nyq := rate / 2
	for i, band := range eegBands {
		hi := math.Min(band[1], nyq)
		if total > 0 && hi > band[0] {
			out[i] = psd.BandPower(band[0], hi) / total
		}
	}
	// Line length normalised by RMS and sample count: mean absolute
	// derivative in units of the signal scale.
	var ll float64
	for i := 1; i < len(w); i++ {
		ll += math.Abs(w[i] - w[i-1])
	}
	out[5] = ll / (float64(len(w)-1) * rms)
	// Zero-crossing rate.
	var zc float64
	for i := 1; i < len(w); i++ {
		if (w[i] >= 0) != (w[i-1] >= 0) {
			zc++
		}
	}
	out[6] = zc / float64(len(w)-1)
	// Spectral shape.
	out[7] = psd.MedianFrequency() / nyq
	out[8] = psd.SpectralEdge(0.9) / nyq
	// Peak factor (crest): peak over RMS, log-compressed.
	out[9] = math.Log1p(dsp.MaxAbs(w) / rms)
	// Hjorth mobility: RMS of derivative over RMS of signal, in cycles.
	deriv := make([]float64, len(w)-1)
	for i := range deriv {
		deriv[i] = w[i+1] - w[i]
	}
	out[10] = dsp.RMS(deriv) / rms
	// Rhythmicity: ictal spike-wave discharges are narrowband (a sharp
	// 3–5 Hz peak), while broadband noise — including compressive-sensing
	// reconstruction residue — spreads across the low band. The peak-to-
	// mean PSD ratio in the discharge band separates the two where plain
	// band power cannot.
	peak, meanLow := psdPeakAndMean(psd, 2.5, 6.5, 0.5, 16)
	if meanLow > 0 {
		out[11] = math.Log1p(peak / meanLow)
	}
	// Harmonic ratio: a spike train puts energy at 2× the discharge
	// fundamental; an unstructured low-frequency blob does not.
	f0 := psdArgmax(psd, 2.5, 6.5)
	if f0 > 0 && total > 0 {
		fund := psd.BandPower(f0-0.7, f0+0.7)
		harm := psd.BandPower(2*f0-1, 2*f0+1)
		if fund > 0 {
			out[12] = harm / (fund + 1e-30)
		}
	}
	// Absolute scale: seizure discharges are several-fold larger than
	// background at the electrode, and front-end noise blobs are small —
	// the one cue that survives any spectral distortion. Expressed as
	// decades above 1 µVrms.
	out[13] = math.Log10(rms / 1e-6)
	return out
}

// psdPeakAndMean returns the maximum PSD bin inside [peakLo, peakHi] and
// the mean PSD over [meanLo, meanHi].
func psdPeakAndMean(psd dsp.PSD, peakLo, peakHi, meanLo, meanHi float64) (peak, mean float64) {
	n := 0
	for i, f := range psd.Freqs {
		d := psd.Density[i]
		if f >= peakLo && f <= peakHi && d > peak {
			peak = d
		}
		if f >= meanLo && f <= meanHi {
			mean += d
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
	}
	return peak, mean
}

// psdArgmax returns the frequency of the strongest PSD bin in [lo, hi].
func psdArgmax(psd dsp.PSD, lo, hi float64) float64 {
	best, bestF := -1.0, 0.0
	for i, f := range psd.Freqs {
		if f >= lo && f <= hi && psd.Density[i] > best {
			best = psd.Density[i]
			bestF = f
		}
	}
	return bestF
}

// Scaler standardises feature vectors to zero mean and unit variance
// using statistics frozen at fit time.
type Scaler struct {
	Mean  []float64
	Scale []float64
}

// FitScaler computes standardisation statistics over the rows of x.
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return &Scaler{}
	}
	d := len(x[0])
	s := &Scaler{Mean: make([]float64, d), Scale: make([]float64, d)}
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Scale[j] += d * d
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / float64(len(x)))
		if s.Scale[j] < 1e-12 {
			s.Scale[j] = 1
		}
	}
	return s
}

// Transform returns the standardised copy of row.
func (s *Scaler) Transform(row []float64) []float64 {
	if len(s.Mean) == 0 {
		return dsp.Clone(row)
	}
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Scale[j]
	}
	return out
}
