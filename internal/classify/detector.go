package classify

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"efficsense/internal/dsp"
	"efficsense/internal/eeg"
	"efficsense/internal/xrand"
)

// DefaultWindowSeconds is the nominal decision-window duration of the
// windowed protocol (≈ the 512-sample windows of ref [20] at the Bonn
// native rate).
const DefaultWindowSeconds = 3.0

// Detector is the trained seizure classifier: feature extraction,
// standardisation and the MLP, bundled behind a waveform-level API so the
// pathfinding framework can treat it as the black-box accuracy metric the
// paper treats its network [20] as.
type Detector struct {
	scaler *Scaler
	net    *MLP
	// Threshold converts the ictal probability into a decision (0.5).
	Threshold float64
}

// DetectorConfig controls training.
type DetectorConfig struct {
	// Hidden is the MLP hidden width (default 12).
	Hidden int
	// AugmentNoise lists relative white-noise levels (fraction of each
	// record's RMS) added as extra training copies, teaching the detector
	// the front-end's noise regime. Default {0, 0.1, 0.25, 0.5}.
	AugmentNoise []float64
	// AugmentSparse additionally trains on DCT-sparsified copies of each
	// noisy variant — the waveform class a compressive-sensing
	// reconstruction produces. Without it the detector mistakes sparse
	// low-frequency noise residue for a discharge (all-false-positive
	// collapse at high noise floors). Default on; set SkipSparse to
	// disable for ablations.
	SkipSparse bool
	// SparseFrame and SparseKeep control the sparsifier (defaults 384 and
	// 24, matching the CS chain's frame length and atom budget).
	SparseFrame, SparseKeep int
	// WindowSeconds switches training to window-level examples of this
	// duration (the protocol of the paper's detector [20], which
	// classifies ≈3 s segments). Each window inherits its record's label.
	// Zero trains on whole records.
	WindowSeconds float64
	// Train are the optimiser options.
	Train TrainOptions
	// Seed drives initialisation and augmentation.
	Seed int64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Hidden <= 0 {
		c.Hidden = 12
	}
	if c.AugmentNoise == nil {
		c.AugmentNoise = []float64{0, 0.1, 0.25, 0.5}
	}
	if c.SparseFrame <= 0 {
		c.SparseFrame = 384
	}
	if c.SparseKeep <= 0 {
		c.SparseKeep = 24
	}
	if c.Train.Seed == 0 {
		c.Train.Seed = c.Seed
	}
	return c
}

// sparsify projects v frame-by-frame onto its SparseKeep strongest DCT
// atoms — a cheap stand-in for what a CS reconstruction does to a record.
func sparsify(v []float64, frame, keep int) []float64 {
	d := dsp.NewDCT(frame)
	out := make([]float64, len(v))
	copy(out, v)
	for start := 0; start+frame <= len(v); start += frame {
		c := d.Forward(out[start : start+frame])
		keepTopK(c, keep)
		copy(out[start:start+frame], d.Inverse(c))
	}
	return out
}

// keepTopK zeroes all but the k largest-magnitude entries of c.
func keepTopK(c []float64, k int) {
	if k >= len(c) {
		return
	}
	idx := make([]int, len(c))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(c[idx[a]]) > math.Abs(c[idx[b]])
	})
	for _, i := range idx[k:] {
		c[i] = 0
	}
}

// TrainDetector fits a detector on the labelled dataset.
func TrainDetector(ds *eeg.Dataset, cfg DetectorConfig) *Detector {
	cfg = cfg.withDefaults()
	rng := xrand.Derive(cfg.Seed, "detector-augment")
	var x [][]float64
	var y []float64
	for _, rec := range ds.Records {
		label := 0.0
		if rec.Label == eeg.Ictal {
			label = 1.0
		}
		rms := rmsOf(rec.Samples)
		for _, lvl := range cfg.AugmentNoise {
			v := rec.Samples
			if lvl > 0 {
				noisy := make([]float64, len(v))
				sigma := lvl * rms
				for i, s := range v {
					noisy[i] = s + rng.Normal(0, sigma)
				}
				v = noisy
			}
			variants := [][]float64{v}
			if !cfg.SkipSparse {
				variants = append(variants, sparsify(v, cfg.SparseFrame, cfg.SparseKeep))
			}
			win := 0
			if cfg.WindowSeconds > 0 {
				win = int(cfg.WindowSeconds * rec.Rate)
			}
			for _, w := range variants {
				if win > 0 && len(w) >= win {
					for start := 0; start+win <= len(w); start += win {
						x = append(x, Features(w[start:start+win], rec.Rate))
						y = append(y, label)
					}
				} else {
					x = append(x, Features(w, rec.Rate))
					y = append(y, label)
				}
			}
		}
	}
	scaler := FitScaler(x)
	for i, row := range x {
		x[i] = scaler.Transform(row)
	}
	net := NewMLP(FeatureCount, cfg.Hidden, cfg.Seed)
	net.Train(x, y, cfg.Train)
	return &Detector{scaler: scaler, net: net, Threshold: 0.5}
}

func rmsOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var ss float64
	for _, s := range v {
		ss += s * s
	}
	return math.Sqrt(ss / float64(len(v)))
}

// Fingerprint digests the trained parameters — scaler statistics, every
// network weight and the decision threshold — so two detectors with equal
// fingerprints classify identically. Unlike a pointer identity, the value
// is stable across processes and across retrainings that converge to the
// same weights, which is what lets evaluation caches keyed on it outlive
// the detector instance.
func (d *Detector) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeS := func(v []float64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(v)))
		h.Write(buf[:])
		for _, x := range v {
			writeF(x)
		}
	}
	if d.scaler != nil {
		writeS(d.scaler.Mean)
		writeS(d.scaler.Scale)
	}
	if d.net != nil {
		writeS(d.net.w1)
		writeS(d.net.b1)
		writeS(d.net.w2)
		writeF(d.net.b2)
	}
	writeF(d.Threshold)
	return h.Sum64()
}

// Probability returns the ictal probability of a waveform.
func (d *Detector) Probability(v []float64, rate float64) float64 {
	return d.net.Predict(d.scaler.Transform(Features(v, rate)))
}

// Classify returns the predicted class of a waveform.
func (d *Detector) Classify(v []float64, rate float64) eeg.Class {
	if d.Probability(v, rate) >= d.Threshold {
		return eeg.Ictal
	}
	return eeg.Interictal
}

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Accuracy returns (TP+TN)/total, the paper's detection-accuracy metric.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.TN + c.FP + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Sensitivity returns TP/(TP+FN).
func (c Confusion) Sensitivity() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Specificity returns TN/(TN+FP).
func (c Confusion) Specificity() float64 {
	if c.TN+c.FP == 0 {
		return 0
	}
	return float64(c.TN) / float64(c.TN+c.FP)
}

// ClassifyWindowed splits the waveform into windowSamples-long segments,
// classifies each, and returns the majority vote — the protocol of the
// paper's detector [20], which operates on short (≈3 s) windows rather
// than whole 23.6 s records. windowSamples <= 0, or a record shorter than
// one window, falls back to whole-record classification. Ties go to
// Ictal (a miss is the costlier error in seizure monitoring).
func (d *Detector) ClassifyWindowed(v []float64, rate float64, windowSamples int) eeg.Class {
	if windowSamples <= 0 || len(v) < windowSamples {
		return d.Classify(v, rate)
	}
	// Soft vote: average the per-window ictal probabilities. Averaging
	// probabilities is markedly more stable than hard majority voting
	// when individual windows sit near the decision boundary.
	var sum float64
	total := 0
	for start := 0; start+windowSamples <= len(v); start += windowSamples {
		sum += d.Probability(v[start:start+windowSamples], rate)
		total++
	}
	if sum/float64(total) >= d.Threshold {
		return eeg.Ictal
	}
	return eeg.Interictal
}

// EvaluateWaves scores front-end output waveforms against ground-truth
// labels. waves[i] is the chain output for the record with labels[i]; all
// waveforms share the given sample rate.
func (d *Detector) EvaluateWaves(waves [][]float64, rate float64, labels []eeg.Class) Confusion {
	return d.EvaluateWavesWindowed(waves, rate, labels, 0)
}

// EvaluateWavesWindowed is EvaluateWaves with per-window voting (see
// ClassifyWindowed).
func (d *Detector) EvaluateWavesWindowed(waves [][]float64, rate float64, labels []eeg.Class, windowSamples int) Confusion {
	var c Confusion
	for i, w := range waves {
		pred := d.ClassifyWindowed(w, rate, windowSamples)
		switch {
		case pred == eeg.Ictal && labels[i] == eeg.Ictal:
			c.TP++
		case pred == eeg.Interictal && labels[i] == eeg.Interictal:
			c.TN++
		case pred == eeg.Ictal && labels[i] == eeg.Interictal:
			c.FP++
		default:
			c.FN++
		}
	}
	return c
}

// EvaluateDataset scores the detector on raw dataset records.
func (d *Detector) EvaluateDataset(ds *eeg.Dataset) Confusion {
	waves := make([][]float64, len(ds.Records))
	labels := make([]eeg.Class, len(ds.Records))
	for i, r := range ds.Records {
		waves[i] = r.Samples
		labels[i] = r.Label
	}
	return d.EvaluateWaves(waves, ds.Rate, labels)
}
