package classify

import (
	"math"

	"efficsense/internal/xrand"
)

// MLP is a single-hidden-layer perceptron with tanh activations and a
// sigmoid output, trained with Adam on binary cross-entropy. It stands in
// for the paper's deep detector [20]; at this feature dimensionality a
// small network reaches the same ~99 % clean accuracy regime.
type MLP struct {
	in, hidden int
	w1         []float64 // hidden×in
	b1         []float64 // hidden
	w2         []float64 // hidden
	b2         float64
}

// NewMLP initialises a network with Xavier-scaled weights.
func NewMLP(in, hidden int, seed int64) *MLP {
	if in < 1 || hidden < 1 {
		panic("classify: MLP dimensions must be positive")
	}
	rng := xrand.Derive(seed, "mlp-init")
	m := &MLP{
		in: in, hidden: hidden,
		w1: make([]float64, hidden*in),
		b1: make([]float64, hidden),
		w2: make([]float64, hidden),
	}
	s1 := math.Sqrt(2.0 / float64(in+hidden))
	for i := range m.w1 {
		m.w1[i] = rng.Normal(0, s1)
	}
	s2 := math.Sqrt(2.0 / float64(hidden+1))
	for i := range m.w2 {
		m.w2[i] = rng.Normal(0, s2)
	}
	return m
}

// Predict returns the ictal probability for a (standardised) feature row.
func (m *MLP) Predict(x []float64) float64 {
	h := make([]float64, m.hidden)
	m.forward(x, h)
	return m.output(h)
}

func (m *MLP) forward(x []float64, h []float64) {
	for j := 0; j < m.hidden; j++ {
		sum := m.b1[j]
		row := m.w1[j*m.in : (j+1)*m.in]
		for i, xi := range x {
			sum += row[i] * xi
		}
		h[j] = math.Tanh(sum)
	}
}

func (m *MLP) output(h []float64) float64 {
	sum := m.b2
	for j, hj := range h {
		sum += m.w2[j] * hj
	}
	return sigmoid(sum)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// TrainOptions controls MLP optimisation.
type TrainOptions struct {
	// Epochs over the training set (default 200).
	Epochs int
	// LearnRate is the Adam step size (default 0.01).
	LearnRate float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
	// BatchSize for mini-batching (default 16).
	BatchSize int
	// Seed orders the shuffling.
	Seed int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 200
	}
	if o.LearnRate <= 0 {
		o.LearnRate = 0.01
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	return o
}

// adamState holds first/second moment estimates for one parameter slice.
type adamState struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adamState { return &adamState{m: make([]float64, n), v: make([]float64, n)} }

func (a *adamState) step(params, grads []float64, lr float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	a.t++
	c1 := 1 - math.Pow(beta1, float64(a.t))
	c2 := 1 - math.Pow(beta2, float64(a.t))
	for i := range params {
		a.m[i] = beta1*a.m[i] + (1-beta1)*grads[i]
		a.v[i] = beta2*a.v[i] + (1-beta2)*grads[i]*grads[i]
		params[i] -= lr * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + eps)
	}
}

// Train fits the network on rows x with binary labels y (0/1) using Adam
// and mini-batch SGD. It returns the final average training loss.
func (m *MLP) Train(x [][]float64, y []float64, opts TrainOptions) float64 {
	opts = opts.withDefaults()
	n := len(x)
	if n == 0 || len(y) != n {
		return 0
	}
	rng := xrand.Derive(opts.Seed, "mlp-shuffle")
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	gW1 := make([]float64, len(m.w1))
	gB1 := make([]float64, len(m.b1))
	gW2 := make([]float64, len(m.w2))
	gB2 := make([]float64, 1)
	aW1, aB1, aW2, aB2 := newAdam(len(m.w1)), newAdam(len(m.b1)), newAdam(len(m.w2)), newAdam(1)
	h := make([]float64, m.hidden)
	var lastLoss float64
	b2slice := []float64{m.b2}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(idx)
		var epochLoss float64
		for start := 0; start < n; start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > n {
				end = n
			}
			batch := idx[start:end]
			for i := range gW1 {
				gW1[i] = 0
			}
			for i := range gB1 {
				gB1[i] = 0
			}
			for i := range gW2 {
				gW2[i] = 0
			}
			gB2[0] = 0
			for _, k := range batch {
				xi := x[k]
				m.forward(xi, h)
				p := m.output(h)
				t := y[k]
				epochLoss += bce(p, t)
				// dL/dz_out for sigmoid+BCE is (p - t).
				dOut := (p - t) / float64(len(batch))
				gB2[0] += dOut
				for j := 0; j < m.hidden; j++ {
					gW2[j] += dOut * h[j]
					// Backprop through tanh.
					dH := dOut * m.w2[j] * (1 - h[j]*h[j])
					gB1[j] += dH
					row := gW1[j*m.in : (j+1)*m.in]
					for i, xv := range xi {
						row[i] += dH * xv
					}
				}
			}
			if opts.L2 > 0 {
				for i, w := range m.w1 {
					gW1[i] += opts.L2 * w
				}
				for i, w := range m.w2 {
					gW2[i] += opts.L2 * w
				}
			}
			aW1.step(m.w1, gW1, opts.LearnRate)
			aB1.step(m.b1, gB1, opts.LearnRate)
			aW2.step(m.w2, gW2, opts.LearnRate)
			b2slice[0] = m.b2
			aB2.step(b2slice, gB2, opts.LearnRate)
			m.b2 = b2slice[0]
		}
		lastLoss = epochLoss / float64(n)
	}
	return lastLoss
}

func bce(p, t float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return -(t*math.Log(p) + (1-t)*math.Log(1-p))
}
