// Package xrand provides the deterministic random-number substrate used by
// every stochastic model in EffiCSense (thermal noise, capacitor mismatch,
// sensing-matrix generation, EEG synthesis). Each model derives an
// independent, reproducible stream from a root seed and a string label, so
// that changing one block's consumption pattern never perturbs another
// block's realisation — the property that makes design-space sweeps
// comparable point to point.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distributions the simulator needs.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with the given value.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Derive returns an independent child stream identified by label. Streams
// derived from the same (seed, label) pair are identical across runs;
// different labels give (practically) independent streams.
func Derive(seed int64, label string) *Source {
	h := fnv.New64a()
	// Hash the label and mix in the seed; FNV is stable across platforms.
	_, _ = h.Write([]byte(label))
	const golden = int64(0x9E3779B97F4A7C15 >> 1)
	mixed := int64(h.Sum64()) ^ (seed * golden)
	return New(mixed)
}

// Derive returns a child stream of s identified by label, advancing s by
// one draw so repeated Derive calls with the same label on the same parent
// yield different children.
func (s *Source) Derive(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(int64(h.Sum64()) ^ s.rng.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform value in [0, n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation. A non-positive sigma returns mean exactly (a disabled noise
// source draws nothing so streams stay aligned across noise settings).
func (s *Source) Normal(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*s.rng.NormFloat64()
}

// FillUnitNormal fills dst with raw standard-normal draws, one per
// element. Because Normal(0, sigma) is computed as 0 + sigma·NormFloat64,
// a caller holding a bank of unit draws u can reproduce any Normal(0, s)
// stream as s·u[i] — the trick the evaluation session uses to pay for a
// noise stream once and replay it at every noise level of a batch.
func (s *Source) FillUnitNormal(dst []float64) {
	for i := range dst {
		dst[i] = s.rng.NormFloat64()
	}
}

// FillNormal fills dst with independent N(mean, sigma²) samples.
func (s *Source) FillNormal(dst []float64, mean, sigma float64) {
	for i := range dst {
		dst[i] = s.Normal(mean, sigma)
	}
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Choose returns k distinct indices drawn uniformly from [0, n) in
// ascending order. It panics if k > n or k < 0.
func (s *Source) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Choose requires 0 <= k <= n")
	}
	// Floyd's algorithm: O(k) memory, uniform.
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := s.rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, k)
	for i := 0; i < n && len(out) < k; i++ {
		if _, ok := chosen[i]; ok {
			out = append(out, i)
		}
	}
	return out
}

// Shuffle permutes the ints in place.
func (s *Source) Shuffle(v []int) {
	s.rng.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
}

// OneOverF fills dst with 1/f^alpha ("coloured") noise of unit RMS using
// the Voss–McCartney-like spectral shaping method: white Gaussian noise is
// generated, shaped in a cascade of first-order lowpass sections whose
// cutoffs are octave-spaced, then normalised. alpha in [0, 2]; alpha=0 is
// white, alpha=2 is Brownian-like.
func (s *Source) OneOverF(dst []float64, alpha float64) {
	n := len(dst)
	if n == 0 {
		return
	}
	if alpha <= 0 {
		s.FillNormal(dst, 0, 1)
		normaliseRMS(dst)
		return
	}
	// Sum of octave-spaced one-pole filtered white sources approximates a
	// 1/f^alpha slope; the per-stage weight sets the slope.
	const stages = 10
	states := make([]float64, stages)
	for i := 0; i < n; i++ {
		var v float64
		for k := 0; k < stages; k++ {
			// Pole frequency halves per stage.
			a := math.Exp(-2 * math.Pi * math.Pow(0.5, float64(k)) * 0.25)
			states[k] = a*states[k] + (1-a)*s.rng.NormFloat64()
			// Stage weight sets overall slope: weight 2^(k*alpha/2) boosts
			// low-frequency stages for larger alpha.
			v += states[k] * math.Pow(2, float64(k)*alpha/2) / math.Pow(2, float64(stages)*alpha/4)
		}
		dst[i] = v
	}
	removeMean(dst)
	normaliseRMS(dst)
}

func removeMean(v []float64) {
	var m float64
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	for i := range v {
		v[i] -= m
	}
}

func normaliseRMS(v []float64) {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	rms := math.Sqrt(ss / float64(len(v)))
	if rms == 0 {
		return
	}
	for i := range v {
		v[i] /= rms
	}
}
