package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(1, "lna")
	b := Derive(1, "adc")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams with different labels look correlated: %d identical draws", same)
	}
}

func TestDeriveStableAcrossRuns(t *testing.T) {
	x := Derive(7, "matrix").Float64()
	y := Derive(7, "matrix").Float64()
	if x != y {
		t.Fatalf("Derive not reproducible: %g vs %g", x, y)
	}
}

func TestNormalDisabledSigma(t *testing.T) {
	s := New(1)
	if got := s.Normal(3.5, 0); got != 3.5 {
		t.Fatalf("Normal with sigma=0 = %g, want mean", got)
	}
	if got := s.Normal(3.5, -1); got != 3.5 {
		t.Fatalf("Normal with sigma<0 = %g, want mean", got)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("sample mean = %g, want 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("sample variance = %g, want 9", variance)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 10; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %g", rate)
	}
}

func TestChooseProperties(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed)
		got := s.Choose(n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		prev := -1
		for _, v := range got {
			if v < 0 || v >= n || seen[v] || v <= prev {
				return false
			}
			seen[v] = true
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseUniform(t *testing.T) {
	// Each of 10 indices should be chosen ~k/n of the time.
	s := New(123)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, idx := range s.Choose(10, 3) {
			counts[idx]++
		}
	}
	for i, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-0.3) > 0.02 {
			t.Errorf("index %d selection rate = %g, want 0.3", i, rate)
		}
	}
}

func TestChoosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choose(3, 5) should panic")
		}
	}()
	New(1).Choose(3, 5)
}

func TestOneOverFUnitRMS(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1, 2} {
		s := New(17)
		v := make([]float64, 8192)
		s.OneOverF(v, alpha)
		var ss float64
		for _, x := range v {
			ss += x * x
		}
		rms := math.Sqrt(ss / float64(len(v)))
		if math.Abs(rms-1) > 1e-9 {
			t.Errorf("alpha=%g: RMS = %g, want 1", alpha, rms)
		}
	}
}

func TestOneOverFSpectralSlope(t *testing.T) {
	// Pink-ish noise should have substantially more low-frequency energy
	// than white noise. Compare energy in the lowest vs highest octave via
	// a crude DFT at two frequencies.
	n := 16384
	white := make([]float64, n)
	pink := make([]float64, n)
	New(3).OneOverF(white, 0)
	New(3).OneOverF(pink, 1.5)
	lowW, highW := bandEnergy(white, 2, 40), bandEnergy(white, 2000, 4000)
	lowP, highP := bandEnergy(pink, 2, 40), bandEnergy(pink, 2000, 4000)
	ratioW := lowW / highW
	ratioP := lowP / highP
	if ratioP < 5*ratioW {
		t.Fatalf("coloured noise not low-frequency dominated: pink ratio %g vs white ratio %g", ratioP, ratioW)
	}
}

// bandEnergy sums |DFT|^2 over bins [lo, hi) using a direct (slow) DFT at a
// few frequencies — adequate for a coarse spectral check.
func bandEnergy(v []float64, lo, hi int) float64 {
	n := len(v)
	var e float64
	step := (hi - lo) / 8
	if step == 0 {
		step = 1
	}
	for k := lo; k < hi; k += step {
		var re, im float64
		for i, x := range v {
			ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			re += x * math.Cos(ang)
			im += x * math.Sin(ang)
		}
		e += re*re + im*im
	}
	return e
}

func TestOneOverFEmpty(t *testing.T) {
	s := New(1)
	s.OneOverF(nil, 1) // must not panic
}

func TestShufflePermutes(t *testing.T) {
	s := New(10)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(v)
	seen := make([]bool, 8)
	for _, x := range v {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d missing after shuffle", i)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(2).Perm(20)
	seen := make([]bool, 20)
	for _, x := range p {
		if x < 0 || x >= 20 || seen[x] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[x] = true
	}
}
