package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Fire("anything"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if Armed() {
		t.Fatal("registry reports armed with no points enabled")
	}
}

func TestErrorInjectionWrapsSentinel(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("x", Config{Kind: KindError, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	err := Fire("x")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !strings.Contains(err.Error(), "x") {
		t.Fatalf("injected error should name the point: %v", err)
	}
	// An armed registry leaves other points alone.
	if err := Fire("y"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("boom", Config{Kind: KindPanic, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic injection did not panic")
		}
	}()
	_ = Fire("boom")
}

func TestLatencyInjectionSleeps(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("slow", Config{Kind: KindLatency, Probability: 1, Latency: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Fire("slow"); err != nil {
		t.Fatalf("latency injection returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency injection returned after %v, want >= 20ms", d)
	}
}

func TestMaxInjectionsBoundsTheSchedule(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("k", Config{Kind: KindError, Probability: 1, MaxInjections: 3}); err != nil {
		t.Fatal(err)
	}
	injected := 0
	for i := 0; i < 10; i++ {
		if Fire("k") != nil {
			injected++
		}
	}
	if injected != 3 {
		t.Fatalf("injected %d faults, scheduled exactly 3", injected)
	}
	if got := Injected("k"); got != 3 {
		t.Fatalf("Injected reports %d, want 3", got)
	}
}

// TestInjectionCountIsSeedDeterministic is the property the chaos suite
// rests on: for a fixed seed and call count, the number of injections is
// identical across runs — even when the calls race.
func TestInjectionCountIsSeedDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	const calls, workers = 400, 8
	count := func(seed int64) int64 {
		Reset()
		if err := Enable("det", Config{Kind: KindError, Probability: 0.3, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls/workers; i++ {
					_ = Fire("det")
				}
			}()
		}
		wg.Wait()
		return Injected("det")
	}
	first := count(42)
	if first == 0 || first == calls {
		t.Fatalf("probability 0.3 over %d calls injected %d — degenerate draw", calls, first)
	}
	for i := 0; i < 3; i++ {
		if again := count(42); again != first {
			t.Fatalf("same seed, different injection count: %d then %d", first, again)
		}
	}
	if other := count(43); other == first {
		t.Logf("note: seeds 42 and 43 drew equal counts (%d) — possible but unusual", other)
	}
}

func TestSnapshotAccounting(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("b", Config{Kind: KindError, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Enable("a", Config{Kind: KindLatency, Probability: 0, Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = Fire("a")
		_ = Fire("b")
	}
	snap := Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot not sorted by name: %+v", snap)
	}
	if snap[0].Calls != 5 || snap[0].Injected != 0 {
		t.Fatalf("point a accounting: %+v", snap[0])
	}
	if snap[1].Calls != 5 || snap[1].Injected != 5 {
		t.Fatalf("point b accounting: %+v", snap[1])
	}
	Disable("b")
	if len(Snapshot()) != 1 || !Armed() {
		t.Fatal("disabling one point should leave the other armed")
	}
	Disable("a")
	if Armed() {
		t.Fatal("registry still armed after last point disabled")
	}
}

func TestEnableValidates(t *testing.T) {
	t.Cleanup(Reset)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"", Config{Kind: KindError, Probability: 1}},
		{"p", Config{Kind: KindError, Probability: -0.1}},
		{"p", Config{Kind: KindError, Probability: 1.1}},
		{"p", Config{Kind: KindLatency, Probability: 1}}, // no latency
		{"p", Config{Kind: KindError, Probability: 1, MaxInjections: -1}},
	}
	for _, c := range cases {
		if err := Enable(c.name, c.cfg); err == nil {
			t.Errorf("Enable(%q, %+v) accepted an invalid config", c.name, c.cfg)
		}
	}
	if Armed() {
		t.Fatal("rejected configs must not arm the registry")
	}
}

func TestParseSpec(t *testing.T) {
	good := []struct {
		spec string
		want map[string]Config
	}{
		{"dse/evaluate=error", map[string]Config{
			"dse/evaluate": {Kind: KindError, Probability: 1, Seed: 7}}},
		{"dse/evaluate=error:0.25", map[string]Config{
			"dse/evaluate": {Kind: KindError, Probability: 0.25, Seed: 7}}},
		{" a=panic:0.5 , b=latency:1:15ms ", map[string]Config{
			"a": {Kind: KindPanic, Probability: 0.5, Seed: 7},
			"b": {Kind: KindLatency, Probability: 1, Latency: 15 * time.Millisecond, Seed: 7}}},
	}
	for _, c := range good {
		got, err := ParseSpec(c.spec, 7)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		for name, want := range c.want {
			if got[name] != want {
				t.Errorf("ParseSpec(%q)[%s] = %+v, want %+v", c.spec, name, got[name], want)
			}
		}
	}
	bad := []string{
		"", ",", "noequals", "a=", "a=badkind", "a=error:nope",
		"a=latency:0.5", "a=latency:0.5:xyz", "a=error:2",
		"a=error:0.5:10ms:extra", "a=error,a=panic",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted an invalid spec", spec)
		}
	}
}

func TestEnableSpecArmsEveryClause(t *testing.T) {
	t.Cleanup(Reset)
	if err := EnableSpec("a=error:1,b=panic:0", 99); err != nil {
		t.Fatal(err)
	}
	if !Armed() || len(Snapshot()) != 2 {
		t.Fatalf("EnableSpec armed %d points, want 2", len(Snapshot()))
	}
	if err := Fire("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed point a: %v", err)
	}
	if err := Fire("b"); err != nil {
		t.Fatalf("probability-0 point b injected: %v", err)
	}
}

// BenchmarkFireDisarmed pins the tentpole's zero-overhead claim: a
// disarmed failpoint in a hot loop is one atomic load.
func BenchmarkFireDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire(PointEvaluate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFireArmedMiss(b *testing.B) {
	b.Cleanup(Reset)
	if err := Enable(PointEvaluate, Config{Kind: KindError, Probability: 0}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire(PointEvaluate); err != nil {
			b.Fatal(err)
		}
	}
}
