// Package fault is a deterministic, seedable fault-injection registry
// for the serving stack: named failpoints that production code fires at
// its hot seams and that tests (or the efficsensed -chaos flag) arm with
// an error, a latency or a panic at a configured probability.
//
// The design goals, in order:
//
//   - Zero overhead when disarmed. Fire's fast path is one atomic load
//     and a return — small enough to inline into the caller — so leaving
//     failpoints compiled into hot loops costs nothing in production.
//   - Determinism. Every armed failpoint draws from its own PRNG,
//     derived from a root seed and the point's name, and draws happen
//     under the registry lock: for a fixed seed and a fixed number of
//     Fire calls the number of injections is exactly reproducible, no
//     matter how goroutines interleave. A failing chaos run replays
//     from its seed.
//   - Observability. Every armed point counts its calls and injections
//     (Snapshot), so a chaos test can assert that the stack's retry and
//     degradation metrics match the injected fault schedule exactly.
//
// The registry is process-global, like the seams it instruments; tests
// that arm failpoints must not run in parallel with each other and
// should disarm with Reset (typically via t.Cleanup).
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"efficsense/internal/xrand"
)

// Failpoint names wired into the serving stack. The constants live here
// so the vocabulary is greppable in one place; arming an unregistered
// name is not an error (the point simply never fires), which keeps specs
// forward-compatible.
const (
	// PointEvaluate fires before every real evaluator call in the sweep
	// engine (cache hits never reach it). A panic here is recovered by
	// the engine's per-point recovery; an error degrades the point.
	PointEvaluate = "dse/evaluate"
	// PointBatch fires once per batched evaluator call, after the
	// per-point failpoint has filtered the batch and before the batch
	// evaluator runs. An error (or panic) degrades every point of that
	// batch into error-carrying results — and only that batch: the
	// engine's other batches, and the job above them, continue.
	PointBatch = "dse/evaluate-batch"
	// PointFlight fires inside the bounded cache's singleflight, in the
	// computing goroutine, before the evaluation closure runs. A panic
	// exercises the waiter-release path.
	PointFlight = "cache/flight"
	// PointJob fires in the job goroutine between engine resolution and
	// the sweep itself. An error fails the job; a panic exercises the
	// manager's job-goroutine recovery.
	PointJob = "serve/job"
	// PointSSEFlush fires before each SSE flush. An error drops the
	// stream mid-job (the client reconnects with Last-Event-ID); a
	// latency stalls the flush.
	PointSSEFlush = "serve/sse-flush"
	// PointPeerFetch fires before each peer-protocol HTTP attempt in the
	// cluster client. An error simulates an unreachable owner: the
	// requester retries with seeded jitter, then degrades to local
	// compute — never an error row.
	PointPeerFetch = "cluster/peer-fetch"
)

// Kind selects what an armed failpoint injects when it fires.
type Kind int

const (
	// KindError: Fire returns ErrInjected wrapped with the point name.
	KindError Kind = iota
	// KindLatency: Fire sleeps for Config.Latency, then returns nil.
	KindLatency
	// KindPanic: Fire panics with a message naming the point.
	KindPanic
)

// String names the kind the way specs spell it.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the sentinel every injected error wraps; retry
// predicates and tests branch on it with errors.Is.
var ErrInjected = errors.New("injected fault")

// Config arms one failpoint.
type Config struct {
	// Kind selects the injected effect.
	Kind Kind
	// Probability in [0, 1] that one Fire call injects; 1 injects on
	// every call.
	Probability float64
	// Latency is the injected delay for KindLatency (ignored otherwise).
	Latency time.Duration
	// MaxInjections, when positive, stops injecting after that many
	// faults — the way a test schedules an exact fault count (pair it
	// with Probability 1).
	MaxInjections int64
	// Seed drives the point's private PRNG. EnableSpec derives it from
	// the root seed and the point name; direct Enable callers pick it.
	Seed int64
}

func (c Config) validate(name string) error {
	if name == "" {
		return errors.New("fault: empty failpoint name")
	}
	if c.Probability < 0 || c.Probability > 1 {
		return fmt.Errorf("fault: %s: probability %g outside [0, 1]", name, c.Probability)
	}
	if c.Kind == KindLatency && c.Latency <= 0 {
		return fmt.Errorf("fault: %s: latency injection needs a positive duration", name)
	}
	if c.MaxInjections < 0 {
		return fmt.Errorf("fault: %s: negative injection bound %d", name, c.MaxInjections)
	}
	return nil
}

// point is one armed failpoint.
type point struct {
	cfg             Config
	rng             *xrand.Source
	calls, injected int64
}

var (
	// armed gates the fast path: true while at least one failpoint is
	// enabled. Checked on every Fire with a single atomic load.
	armed atomic.Bool

	mu     sync.Mutex
	points = make(map[string]*point)
)

// Fire consults the failpoint name and performs the armed injection, if
// any: it returns a non-nil error (wrapping ErrInjected) for an error
// injection, sleeps and returns nil for a latency injection, and panics
// for a panic injection. Disarmed — the production steady state — it
// costs one atomic load and returns nil.
func Fire(name string) error {
	if !armed.Load() {
		return nil
	}
	return fire(name)
}

// fire is the armed slow path, kept out of Fire so the fast path stays
// within the inlining budget.
func fire(name string) error {
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	p.calls++
	inject := p.cfg.Probability >= 1 || p.rng.Float64() < p.cfg.Probability
	if inject && p.cfg.MaxInjections > 0 && p.injected >= p.cfg.MaxInjections {
		inject = false
	}
	if inject {
		p.injected++
	}
	cfg := p.cfg
	mu.Unlock()
	if !inject {
		return nil
	}
	switch cfg.Kind {
	case KindLatency:
		time.Sleep(cfg.Latency)
		return nil
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", name))
	default:
		return fmt.Errorf("fault: %w at %s", ErrInjected, name)
	}
}

// Enable arms one failpoint, replacing any previous configuration (and
// resetting its counters).
func Enable(name string, cfg Config) error {
	if err := cfg.validate(name); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{cfg: cfg, rng: xrand.Derive(cfg.Seed, "fault/"+name)}
	armed.Store(true)
	return nil
}

// Disable disarms one failpoint; unknown names are a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every failpoint and clears all counters — call it from
// t.Cleanup in any test that arms the registry.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = make(map[string]*point)
	armed.Store(false)
}

// Armed reports whether any failpoint is enabled.
func Armed() bool { return armed.Load() }

// PointStats is one armed failpoint's accounting: Calls counts Fire
// calls that consulted it, Injected the subset that actually injected.
type PointStats struct {
	Name            string
	Kind            Kind
	Calls, Injected int64
}

// Snapshot returns the armed failpoints' accounting, sorted by name so
// expositions and logs are deterministic.
func Snapshot() []PointStats {
	mu.Lock()
	defer mu.Unlock()
	out := make([]PointStats, 0, len(points))
	for name, p := range points {
		out = append(out, PointStats{Name: name, Kind: p.cfg.Kind, Calls: p.calls, Injected: p.injected})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Injected returns how many faults the named point has injected (0 for
// disarmed names) — the number chaos tests reconcile their stack
// metrics against.
func Injected(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.injected
	}
	return 0
}

// ParseSpec parses the efficsensed -chaos flag grammar: a comma-
// separated list of
//
//	name=kind[:probability[:latency]]
//
// where kind is error, latency or panic, probability defaults to 1 and
// latency (required for latency injections) is a Go duration. Each
// point's PRNG seed is derived from the root seed and the point name,
// so one -chaos-seed reproduces the whole schedule. Examples:
//
//	dse/evaluate=error:0.1
//	dse/evaluate=latency:0.5:20ms,serve/sse-flush=error:0.05
func ParseSpec(spec string, seed int64) (map[string]Config, error) {
	out := make(map[string]Config)
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("fault: clause %q: want name=kind[:probability[:latency]]", clause)
		}
		parts := strings.Split(rest, ":")
		cfg := Config{Probability: 1, Seed: seed}
		switch parts[0] {
		case "error":
			cfg.Kind = KindError
		case "latency":
			cfg.Kind = KindLatency
		case "panic":
			cfg.Kind = KindPanic
		default:
			return nil, fmt.Errorf("fault: clause %q: unknown kind %q (want error, latency or panic)", clause, parts[0])
		}
		if len(parts) > 1 {
			p, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: bad probability %q: %v", clause, parts[1], err)
			}
			cfg.Probability = p
		}
		if len(parts) > 2 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: bad latency %q: %v", clause, parts[2], err)
			}
			cfg.Latency = d
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("fault: clause %q: too many fields", clause)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("fault: point %s configured twice", name)
		}
		if err := cfg.validate(name); err != nil {
			return nil, err
		}
		out[name] = cfg
	}
	if len(out) == 0 {
		return nil, errors.New("fault: empty chaos spec")
	}
	return out, nil
}

// EnableSpec parses spec and arms every clause (see ParseSpec). On a
// parse or validation error nothing is armed.
func EnableSpec(spec string, seed int64) error {
	cfgs, err := ParseSpec(spec, seed)
	if err != nil {
		return err
	}
	for name, cfg := range cfgs {
		if err := Enable(name, cfg); err != nil {
			return err
		}
	}
	return nil
}
