package power

import (
	"math"
	"testing"
	"testing/quick"

	"efficsense/internal/tech"
)

var (
	tp = tech.GPDK045()
	ts = tech.DefaultSystem()
)

func TestLNANoiseLimitedRegime(t *testing.T) {
	// At small noise floors the noise term dominates and follows 1/vn².
	d := LNAParams{GBW: 1e6, CLoad: 80e-15, Bandwidth: ts.LNABandwidth(), FClk: ts.FClk(8)}
	d.NoiseRMS = 1e-6
	p1 := LNA(tp, ts, d)
	d.NoiseRMS = 2e-6
	p2 := LNA(tp, ts, d)
	if ratio := p1 / p2; math.Abs(ratio-4) > 0.01 {
		t.Fatalf("noise-limited power should scale 1/vn²: ratio = %g", ratio)
	}
	// Sanity: ~16 µW at 1 µVrms with NEF 2 (hand computation).
	want := 2 * math.Pow(2/1e-6, 2) * 2 * math.Pi * 4 * tp.KT() * 768 * tp.VT
	if math.Abs(p1-want) > 1e-9 {
		t.Fatalf("LNA noise-limited power = %g, want %g", p1, want)
	}
	if p1 < 10e-6 || p1 > 25e-6 {
		t.Fatalf("LNA power at 1 µVrms = %g W, expected tens of µW", p1)
	}
}

func TestLNASpeedLimitedRegime(t *testing.T) {
	// With a relaxed noise floor the GBW term takes over and scales with
	// Cload.
	d := LNAParams{GBW: 1e7, CLoad: 1e-12, NoiseRMS: 20e-6,
		Bandwidth: ts.LNABandwidth(), FClk: ts.FClk(8)}
	p1 := LNA(tp, ts, d)
	d.CLoad = 2e-12
	p2 := LNA(tp, ts, d)
	if math.Abs(p2/p1-2) > 0.01 {
		t.Fatalf("speed-limited power should scale with Cload: ratio %g", p2/p1)
	}
	want := ts.VDD * 2 * math.Pi * 1e7 * 1e-12 / tp.GmOverId
	if math.Abs(p1-want) > 1e-12 {
		t.Fatalf("speed-limited power = %g, want %g", p1, want)
	}
}

func TestLNAMaxSemantics(t *testing.T) {
	// The model takes the max of the three currents, so power is
	// monotonically non-increasing in the noise floor.
	d := LNAParams{GBW: 1e6, CLoad: 80e-15, Bandwidth: 768, FClk: 4838}
	prev := math.Inf(1)
	for vn := 1e-6; vn <= 20e-6; vn += 1e-6 {
		d.NoiseRMS = vn
		p := LNA(tp, ts, d)
		if p > prev+1e-18 {
			t.Fatalf("LNA power increased with noise floor at %g", vn)
		}
		prev = p
	}
}

func TestSampleHoldTableII(t *testing.T) {
	fclk := ts.FClk(8)
	got := SampleHold(tp, ts, 8, fclk)
	want := ts.VRef * fclk * 12 * tp.KT() * math.Pow(2, 16) / 4
	if math.Abs(got-want) > 1e-20 {
		t.Fatalf("S&H power = %g, want %g", got, want)
	}
	// Each extra bit quadruples it.
	if r := SampleHold(tp, ts, 9, fclk) / got; math.Abs(r-4) > 1e-9 {
		t.Fatalf("S&H scaling per bit = %g, want 4", r)
	}
}

func TestMinSampleCapFloorsAtUnit(t *testing.T) {
	// 6-bit: bound is far below 1 fF → floored.
	if got := MinSampleCap(tp, ts, 6); got != tp.CUnitMin {
		t.Fatalf("6-bit min cap = %g, want floor %g", got, tp.CUnitMin)
	}
	// 14-bit: bound exceeds the floor.
	if got := MinSampleCap(tp, ts, 14); got <= tp.CUnitMin {
		t.Fatalf("14-bit min cap = %g, want above floor", got)
	}
}

func TestComparatorTableII(t *testing.T) {
	fclk, fs := ts.FClk(8), ts.FSample()
	got := Comparator(tp, ts, 8, fclk, fs, 1e-15)
	want := 16 * math.Ln2 * (fclk - fs) * 1e-15 * ts.VFS * tp.VEff
	if math.Abs(got-want) > 1e-25 {
		t.Fatalf("comparator power = %g, want %g", got, want)
	}
	// Default load when zero.
	if got := Comparator(tp, ts, 8, fclk, fs, 0); got != want {
		t.Fatalf("default comparator load not CLogic: %g vs %g", got, want)
	}
}

func TestSARLogicTableII(t *testing.T) {
	fclk, fs := ts.FClk(8), ts.FSample()
	got := SARLogic(tp, ts, 8, fclk, fs)
	want := 0.4 * 17 * 1e-15 * 4 * (fclk - fs)
	if math.Abs(got-want) > 1e-25 {
		t.Fatalf("SAR logic power = %g, want %g", got, want)
	}
}

func TestDACTableII(t *testing.T) {
	got := DAC(ts, 8, ts.FClk(8), 1e-15, 0.5, 0)
	n := 8.0
	brace := (5.0/6-math.Pow(0.5, n)-math.Pow(0.5, 2*n)/3)*4 - 0.5*0.25
	want := 256 * ts.FClk(8) * 1e-15 / 9 * brace
	if math.Abs(got-want) > 1e-20 {
		t.Fatalf("DAC power = %g, want %g", got, want)
	}
	// Never negative even for extreme inputs.
	if DAC(ts, 1, 1e6, 1e-12, 10, 10) < 0 {
		t.Fatal("DAC model went negative")
	}
}

func TestTransmitterTableII(t *testing.T) {
	// fclk/(N+1) = fsample: at N=8, 537.6 Hz × 8 bit × 1 nJ = 4.3 µW.
	got := Transmitter(tp, 8, ts.FClk(8))
	want := 537.6 * 8 * 1e-9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("transmitter power = %g, want %g", got, want)
	}
}

func TestTransmitterCSReduction(t *testing.T) {
	// CS word rate = fsample·M/NΦ: the transmitter saving is exactly the
	// compression ratio.
	base := Transmitter(tp, 8, ts.FClk(8))
	csFs := ts.FSample() * 150 / 384
	cs := Transmitter(tp, 8, 9*csFs)
	if r := base / cs; math.Abs(r-384.0/150) > 1e-9 {
		t.Fatalf("transmitter saving = %g, want %g", r, 384.0/150)
	}
}

func TestCSEncoderLogicTableII(t *testing.T) {
	fclk := ts.FClk(8)
	got := CSEncoderLogic(tp, ts, 384, fclk)
	want := (9.0 + 1) * 384 * 8 * 1e-15 * 4 * fclk
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("CS encoder logic power = %g, want %g", got, want)
	}
	// ~0.6 µW at the paper's operating point — "marginal" vs the LNA/TX.
	if got < 0.1e-6 || got > 2e-6 {
		t.Fatalf("CS logic power %g W outside the paper's marginal range", got)
	}
}

func TestLeakage(t *testing.T) {
	if got := Leakage(tp, ts, 100); math.Abs(got-100*1e-12*2) > 1e-20 {
		t.Fatalf("leakage = %g", got)
	}
}

func TestBreakdownTotalAndOrder(t *testing.T) {
	b := Breakdown{CompLNA: 3e-6, CompTransmitter: 4e-6, CompDAC: 1e-9}
	if math.Abs(b.Total()-7.001e-6) > 1e-12 {
		t.Fatalf("total = %g", b.Total())
	}
	order := b.Components()
	if order[0] != CompTransmitter || order[1] != CompLNA || order[2] != CompDAC {
		t.Fatalf("order = %v", order)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{CompLNA: 1}
	b := Breakdown{CompLNA: 2, CompDAC: 3}
	sum := a.Add(b)
	if sum[CompLNA] != 3 || sum[CompDAC] != 3 {
		t.Fatalf("sum = %v", sum)
	}
	if a[CompLNA] != 1 {
		t.Fatal("Add must not mutate the receiver")
	}
}

func TestAreaModels(t *testing.T) {
	// 8-bit DAC with 1 fF units + 1 fF S&H = 257 C_u,min.
	c := ADCCapacitance(8, 1e-15, 1e-15)
	if got := CapCount(tp, c); math.Abs(got-257) > 1e-9 {
		t.Fatalf("ADC cap count = %g, want 257", got)
	}
	// CS encoder: 2 sampling + 150 hold capacitors.
	cc := CSEncoderCapacitance(2, 150, 5e-15, 80e-15)
	want := 2*5e-15 + 150*80e-15
	if math.Abs(cc-want) > 1e-20 {
		t.Fatalf("CS encoder capacitance = %g, want %g", cc, want)
	}
}

func TestPowerModelsNonNegativeProperty(t *testing.T) {
	f := func(bitsRaw uint8, vnRaw, cloadRaw uint16) bool {
		bits := int(bitsRaw%12) + 1
		vn := (float64(vnRaw) + 1) * 1e-8
		cload := (float64(cloadRaw) + 1) * 1e-16
		fclk, fs := ts.FClk(bits), ts.FSample()
		d := LNAParams{GBW: 1e6, CLoad: cload, NoiseRMS: vn, Bandwidth: 768, FClk: fclk}
		vals := []float64{
			LNA(tp, ts, d),
			SampleHold(tp, ts, bits, fclk),
			Comparator(tp, ts, bits, fclk, fs, cload),
			SARLogic(tp, ts, bits, fclk, fs),
			DAC(ts, bits, fclk, 1e-15, 0.5, 0.1),
			Transmitter(tp, bits, fclk),
			CSEncoderLogic(tp, ts, 384, fclk),
		}
		for _, v := range vals {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperScaleBaselineOptimum(t *testing.T) {
	// A baseline design near the paper's optimum (N=8, vn ≈ 2 µVrms)
	// should land near the reported 8.8 µW, dominated by TX + LNA.
	fclk, fs := ts.FClk(8), ts.FSample()
	d := LNAParams{GBW: 8000 * 768, CLoad: MinSampleCap(tp, ts, 8),
		NoiseRMS: 2e-6, Bandwidth: 768, FClk: fclk}
	b := Breakdown{
		CompLNA:         LNA(tp, ts, d),
		CompSampleHold:  SampleHold(tp, ts, 8, fclk),
		CompComparator:  Comparator(tp, ts, 8, fclk, fs, 0),
		CompSARLogic:    SARLogic(tp, ts, 8, fclk, fs),
		CompDAC:         DAC(ts, 8, fclk, 1e-15, 0.3, 0),
		CompTransmitter: Transmitter(tp, 8, fclk),
	}
	total := b.Total()
	if total < 5e-6 || total > 15e-6 {
		t.Fatalf("baseline optimum total = %g W, want the paper's ~8.8 µW band", total)
	}
	if b[CompTransmitter] < b[CompDAC] || b[CompLNA] < b[CompSARLogic] {
		t.Fatal("TX and LNA should dominate the baseline breakdown")
	}
}
