package power

import (
	"math"
	"testing"
)

func TestTransmitterRateConsistency(t *testing.T) {
	// TransmitterRate generalises the Table II form.
	fclk := ts.FClk(8)
	want := Transmitter(tp, 8, fclk)
	got := TransmitterRate(tp, 8, fclk/9)
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("TransmitterRate %g vs Transmitter %g", got, want)
	}
}

func TestDigitalMACScaling(t *testing.T) {
	p1 := DigitalMAC(tp, ts, 12, 1000)
	p2 := DigitalMAC(tp, ts, 24, 1000)
	if math.Abs(p2/p1-2) > 1e-9 {
		t.Fatalf("MAC power should scale with word width: %g", p2/p1)
	}
	p3 := DigitalMAC(tp, ts, 12, 2000)
	if math.Abs(p3/p1-2) > 1e-9 {
		t.Fatalf("MAC power should scale with rate: %g", p3/p1)
	}
	// At the paper's operating point the MAC is sub-µW ("marginal").
	opPoint := DigitalMAC(tp, ts, 13, 2*537.6)
	if opPoint <= 0 || opPoint > 1e-6 {
		t.Fatalf("MAC power %g W outside the marginal range", opPoint)
	}
}

func TestAccumulatorBits(t *testing.T) {
	if got := AccumulatorBits(8, 16); got != 13 {
		t.Fatalf("AccumulatorBits(8,16) = %d, want 13", got)
	}
	if got := AccumulatorBits(8, 1); got != 9 {
		t.Fatalf("AccumulatorBits(8,1) = %d, want 9", got)
	}
	if got := AccumulatorBits(6, 0); got != 7 {
		t.Fatalf("AccumulatorBits(6,0) = %d, want 7", got)
	}
}

func TestIntegratorBankScalesWithChannels(t *testing.T) {
	d := IntegratorParams{GBW: 4 * 537.6, CInt: 80e-15, NoiseRMS: 10e-6, Bandwidth: 268.8}
	p1 := IntegratorBank(tp, ts, 75, d)
	p2 := IntegratorBank(tp, ts, 150, d)
	if math.Abs(p2/p1-2) > 1e-9 {
		t.Fatalf("bank power should scale with M: %g", p2/p1)
	}
	// OTA banks are the power sink of active CS: µW scale at M=150.
	if p2 < 0.2e-6 || p2 > 50e-6 {
		t.Fatalf("M=150 integrator bank = %g W, outside plausible range", p2)
	}
}

func TestIntegratorBankNoiseTerm(t *testing.T) {
	// Tight noise budget → noise-limited current dominates and follows 1/vn².
	d := IntegratorParams{GBW: 1000, CInt: 10e-15, NoiseRMS: 1e-6, Bandwidth: 268.8}
	p1 := IntegratorBank(tp, ts, 1, d)
	d.NoiseRMS = 2e-6
	p2 := IntegratorBank(tp, ts, 1, d)
	if math.Abs(p1/p2-4) > 0.01 {
		t.Fatalf("noise-limited integrator should scale 1/vn²: %g", p1/p2)
	}
}

func TestMinHoldCapForDroop(t *testing.T) {
	// Frame = 384 / 537.6 Hz ≈ 0.714 s at 1 pA; holding droop under half
	// an 8-bit LSB (3.9 mV) needs ~183 pF — far beyond the fF holds of
	// the sweep, which is exactly what the droop ablation shows failing.
	lsb := ts.VFS / 256
	c := MinHoldCapForDroop(tp, ts, 384, lsb/2)
	want := 1e-12 * (384 / ts.FSample()) / (lsb / 2)
	if math.Abs(c-want) > 1e-18 {
		t.Fatalf("min hold cap = %g, want %g", c, want)
	}
	if c < 100e-12 {
		t.Fatalf("droop-safe hold cap %g unexpectedly small", c)
	}
	// Generous droop budgets floor at the technology minimum.
	if got := MinHoldCapForDroop(tp, ts, 384, 1e6); got != tp.CUnitMin {
		t.Fatalf("floor = %g", got)
	}
	if got := MinHoldCapForDroop(tp, ts, 0, 0.001); got != tp.CUnitMin {
		t.Fatalf("degenerate frame = %g", got)
	}
}
