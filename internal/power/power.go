// Package power implements the analytical power models of paper Table II —
// the second half of EffiCSense's key contribution: every behavioural
// block has a companion power-bound model expressed in the same design
// parameters, so a functional sweep simultaneously yields consumption.
// The models are the published closed forms (Steyaert LNA bound, Sundström
// ADC bounds, Saberi DAC switching energy, Bos SAR logic activity,
// Bortolotti/Bellasi transmitter energy-per-bit, and the paper's own CS
// encoder logic expression).
package power

import (
	"math"
	"sort"

	"efficsense/internal/tech"
)

// Component names a power consumer, matching the paper's Fig 4/8 legend.
type Component string

// The components of the EffiCSense block library.
const (
	CompLNA         Component = "LNA"
	CompSampleHold  Component = "S&H"
	CompComparator  Component = "Comparator"
	CompSARLogic    Component = "SAR Logic"
	CompDAC         Component = "DAC"
	CompTransmitter Component = "Transmitter"
	CompCSEncoder   Component = "CS Encoder"
	CompIntegrators Component = "Integrators"
	CompLeakage     Component = "Leakage"
)

// Breakdown maps components to watts.
type Breakdown map[Component]float64

// Total sums the breakdown. Components are summed in sorted name order so
// the result is bit-identical regardless of map iteration order — sweeps
// rely on evaluations being exactly reproducible.
func (b Breakdown) Total() float64 {
	names := make([]string, 0, len(b))
	for c := range b {
		names = append(names, string(c))
	}
	sort.Strings(names)
	var t float64
	for _, n := range names {
		t += b[Component(n)]
	}
	return t
}

// Components returns the component names sorted by descending power, for
// stable reporting.
func (b Breakdown) Components() []Component {
	out := make([]Component, 0, len(b))
	for c := range b {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if b[out[i]] != b[out[j]] {
			return b[out[i]] > b[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Add returns the sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	out := Breakdown{}
	for c, p := range b {
		out[c] += p
	}
	for c, p := range o {
		out[c] += p
	}
	return out
}

// LNAParams collects the design variables of the LNA power model.
type LNAParams struct {
	// GBW is the required gain-bandwidth product (Hz): closed-loop gain ×
	// LNA bandwidth.
	GBW float64
	// CLoad is the load capacitance (F) — for the CS architecture this is
	// C_hold (the encoder input), as the paper notes.
	CLoad float64
	// NoiseRMS is the input-referred noise integrated over the LNA band
	// (V), the swept variable of Fig 4.
	NoiseRMS float64
	// Bandwidth is BW_LNA (Hz).
	Bandwidth float64
	// FClk is the switching clock seen by the LNA output (Hz).
	FClk float64
}

// LNA evaluates the Table II LNA model: Vdd times the maximum of the
// speed-, slewing- and noise-limited supply currents ([16]).
func LNA(p tech.Params, s tech.System, d LNAParams) float64 {
	iSpeed := 2 * math.Pi * d.GBW * d.CLoad / p.GmOverId
	iSlew := s.VRef * d.FClk * d.CLoad
	var iNoise float64
	if d.NoiseRMS > 0 {
		r := p.NEF / d.NoiseRMS
		iNoise = r * r * 2 * math.Pi * 4 * p.KT() * d.Bandwidth * p.VT
	}
	return s.VDD * math.Max(iSpeed, math.Max(iSlew, iNoise))
}

// SampleHold evaluates the Table II kT/C-limited track-and-hold model
// ([14]): P = Vref·fclk·12kT·2^(2N)/VFS².
func SampleHold(p tech.Params, s tech.System, bits int, fclk float64) float64 {
	return s.VRef * fclk * 12 * p.KT() * math.Pow(2, 2*float64(bits)) / (s.VFS * s.VFS)
}

// MinSampleCap returns the sampling capacitor implied by the same bound:
// C >= 12kT·2^(2N)/VFS², floored at the technology minimum. The
// behavioural S&H model uses this capacitor for its kT/C noise so that
// the functional and power models stay coupled.
func MinSampleCap(p tech.Params, s tech.System, bits int) float64 {
	c := 12 * p.KT() * math.Pow(2, 2*float64(bits)) / (s.VFS * s.VFS)
	if c < p.CUnitMin {
		return p.CUnitMin
	}
	return c
}

// Comparator evaluates the Table II comparator model ([14]):
// P = 2N·ln2·(fclk − fsample)·Cload·VFS·Veff.
func Comparator(p tech.Params, s tech.System, bits int, fclk, fsample, cload float64) float64 {
	if cload <= 0 {
		cload = p.CLogic
	}
	return 2 * float64(bits) * math.Ln2 * (fclk - fsample) * cload * s.VFS * p.VEff
}

// SARLogic evaluates the Table II SAR controller model ([17]):
// P = α·(2N+1)·Clogic·Vdd²·(fclk − fsample) with α = 0.4.
func SARLogic(p tech.Params, s tech.System, bits int, fclk, fsample float64) float64 {
	const alpha = 0.4
	return alpha * (2*float64(bits) + 1) * p.CLogic * s.VDD * s.VDD * (fclk - fsample)
}

// DAC evaluates the Table II capacitive-DAC switching model ([15]) for an
// N-bit converter with unit capacitor cu. vinRMS and vinMean describe the
// converted signal (the model's Vin² and Vin terms are signal dependent).
func DAC(s tech.System, bits int, fclk, cu, vinRMS, vinMean float64) float64 {
	n := float64(bits)
	half := math.Pow(0.5, n)
	brace := (5.0/6-half-math.Pow(0.5, 2*n)/3)*s.VRef*s.VRef -
		0.5*vinRMS*vinRMS - half*vinMean*s.VRef
	if brace < 0 {
		brace = 0
	}
	return math.Pow(2, n) * fclk * cu / (n + 1) * brace
}

// Transmitter evaluates the Table II transmitter model ([4], [12]):
// P = fclk/(N+1)·N·E_bit, i.e. the output word rate times bits per word
// times energy per transmitted bit. For compressive sensing the word rate
// is the measurement rate, which is how the M/N_Φ saving enters.
func Transmitter(p tech.Params, bits int, fclk float64) float64 {
	n := float64(bits)
	return fclk / (n + 1) * n * p.EBit
}

// CSEncoderLogic evaluates the paper's CS encoder digital model
// (Table II, derived in Section III): the shift register storing the
// sensing matrix plus the switch drivers,
// P = α·(⌈log2(N_Φ)⌉+1)·N_Φ·8·Clogic·Vdd²·fclk with α = 1.
func CSEncoderLogic(p tech.Params, s tech.System, nPhi int, fclk float64) float64 {
	const alpha = 1.0
	bits := math.Ceil(math.Log2(float64(nPhi)))
	return alpha * (bits + 1) * float64(nPhi) * 8 * p.CLogic * s.VDD * s.VDD * fclk
}

// Leakage returns the static leakage of nSwitches switch devices.
func Leakage(p tech.Params, s tech.System, nSwitches int) float64 {
	return float64(nSwitches) * p.ILeak * s.VDD
}

// Area accounting: the paper (Fig 9/10) measures design area as the total
// capacitance expressed in multiples of the minimum technology capacitor.

// CapCount converts a total capacitance to C_u,min multiples.
func CapCount(p tech.Params, totalCap float64) float64 {
	return totalCap / p.CUnitMin
}

// ADCCapacitance returns the capacitance of an N-bit binary DAC array
// (2^N units of cu) plus the track-and-hold capacitor.
func ADCCapacitance(bits int, cu, sampleCap float64) float64 {
	return math.Pow(2, float64(bits))*cu + sampleCap
}

// CSEncoderCapacitance returns the encoder array capacitance: S sampling
// capacitors plus M hold capacitors (paper Fig 5).
func CSEncoderCapacitance(s, m int, cSample, cHold float64) float64 {
	return float64(s)*cSample + float64(m)*cHold
}
