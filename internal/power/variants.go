package power

import (
	"math"

	"efficsense/internal/tech"
)

// Models for the alternative compressive-sensing front-ends the paper
// positions its passive charge-sharing encoder against (Section III and
// refs [2], [12]): a fully digital CS system (Nyquist ADC + MAC unit) and
// an active analog CS system (one OTA integrator per measurement row).

// TransmitterRate is the transmitter model generalised to an arbitrary
// word rate and word width: P = wordRate·bitsPerWord·E_bit. The Table II
// form Transmitter(p, N, fclk) equals TransmitterRate(p, N, fclk/(N+1)).
func TransmitterRate(p tech.Params, bitsPerWord int, wordRate float64) float64 {
	return wordRate * float64(bitsPerWord) * p.EBit
}

// DigitalMAC models the accumulate unit of a digital CS encoder: a
// W-bit adder plus result register built from standard cells, clocked
// once per sparse-matrix addition. Following the gate-counting style of
// the paper's own CS-logic expression ([17]), each accumulator bit costs
// gatesPerBit minimum-size gates of capacitance Clogic at activity alpha.
func DigitalMAC(p tech.Params, s tech.System, accBits int, addsPerSecond float64) float64 {
	const (
		alpha       = 0.5
		gatesPerBit = 12 // mirrored full adder + flip-flop
	)
	return alpha * gatesPerBit * float64(accBits) * p.CLogic * s.VDD * s.VDD * addsPerSecond
}

// AccumulatorBits returns the word width a digital CS accumulator needs:
// the ADC resolution plus headroom for the largest row count.
func AccumulatorBits(adcBits, maxRowCount int) int {
	if maxRowCount < 1 {
		maxRowCount = 1
	}
	return adcBits + int(math.Ceil(math.Log2(float64(maxRowCount)))) + 1
}

// MinHoldCapForDroop sizes the charge-sharing hold capacitor so that
// switch-leakage droop over one full frame stays below maxDroopVolts:
// C >= I_leak · N_Φ / f_sample / ΔV, floored at the technology minimum.
// The droop ablation shows the Table III leakage (1 pA) destroys
// femtofarad holds over the paper's 0.71 s frame; this helper turns that
// finding into a design rule (e.g. ΔV = LSB/2 keeps droop sub-quantum).
func MinHoldCapForDroop(p tech.Params, s tech.System, nPhi int, maxDroopVolts float64) float64 {
	if maxDroopVolts <= 0 || nPhi <= 0 {
		return p.CUnitMin
	}
	frameSeconds := float64(nPhi) / s.FSample()
	c := p.ILeak * frameSeconds / maxDroopVolts
	if c < p.CUnitMin {
		return p.CUnitMin
	}
	return c
}

// IntegratorParams collects the design variables of one active-CS
// integrator channel.
type IntegratorParams struct {
	// GBW is the required gain-bandwidth product (Hz) — settling once per
	// input sample.
	GBW float64
	// CInt is the integration capacitor (F).
	CInt float64
	// NoiseRMS is the integrator's input-referred noise budget (V).
	NoiseRMS float64
	// Bandwidth is the noise bandwidth (Hz).
	Bandwidth float64
}

// IntegratorBank evaluates the OTA bound for m parallel integrators using
// the same three-term structure as the Table II LNA model ([16], applied
// per channel as in the analysis of [2]): the OTAs are what make active
// analog CS power-hungry, which is the motivation for the paper's passive
// technique.
func IntegratorBank(p tech.Params, s tech.System, m int, d IntegratorParams) float64 {
	iSpeed := 2 * math.Pi * d.GBW * d.CInt / p.GmOverId
	var iNoise float64
	if d.NoiseRMS > 0 {
		r := p.NEF / d.NoiseRMS
		iNoise = r * r * 2 * math.Pi * 4 * p.KT() * d.Bandwidth * p.VT
	}
	return float64(m) * s.VDD * math.Max(iSpeed, iNoise)
}
